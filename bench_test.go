// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Each benchmark reports the headline quantity of its table
// or figure as a custom metric, so `go test -bench=.` reproduces the
// paper's numbers in one run:
//
//	BenchmarkTable1Calibration   ld Z and B fit (Table 1)
//	BenchmarkTable2Workload      total MAC-MA load delta (Table 2)
//	BenchmarkTable3Bounds        average t_MACS CPL (Table 3)
//	BenchmarkTable4Comparison    harmonic-mean MFLOPS (Table 4)
//	BenchmarkTable5AX            average t_a and t_x CPL (Table 5)
//	BenchmarkFigure2Chaining     chained/unchained chime cycles
//	BenchmarkFigure3Contention   multi-process slowdown
//	BenchmarkAblation*           measured average CPL under each ablation
//	BenchmarkLFK*                per-kernel simulation rate
//	BenchmarkFastTier            per-kernel analytical-tier prediction time
package macs_test

import (
	"context"
	"fmt"
	"testing"

	"macs"
	"macs/internal/asm"
	"macs/internal/calib"
	"macs/internal/compiler"
	"macs/internal/core"
	"macs/internal/experiments"
	"macs/internal/explore"
	"macs/internal/fasttier"
	"macs/internal/isa"
	"macs/internal/lfk"
	"macs/internal/mem"
	"macs/internal/vm"
)

func BenchmarkTable1Calibration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := calib.CalibrateAll(vm.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				if r.Op == isa.OpLd {
					b.ReportMetric(r.Fit.Z, "ld-Z")
					b.ReportMetric(float64(r.Fit.B), "ld-B")
				}
			}
		}
	}
}

func BenchmarkTable2Workload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			delta := 0
			for _, r := range rows {
				delta += r.MAC.Loads - r.MA.Loads
			}
			b.ReportMetric(float64(delta), "extra-loads")
		}
	}
}

func BenchmarkTable3Bounds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sum float64
			for _, r := range rows {
				sum += r.TMACS
			}
			b.ReportMetric(sum/float64(len(rows)), "avg-tMACS-CPL")
		}
	}
}

func BenchmarkTable4Comparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t4, err := experiments.RunTable4(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(t4.MFLOPS[3], "measured-MFLOPS")
			b.ReportMetric(t4.MFLOPS[2], "MACS-MFLOPS")
			b.ReportMetric(t4.MFLOPS[0], "MA-MFLOPS")
		}
	}
}

func BenchmarkTable5AX(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable5(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var ta, tx float64
			for _, r := range rows {
				ta += r.TA
				tx += r.TX
			}
			n := float64(len(rows))
			b.ReportMetric(ta/n, "avg-ta-CPL")
			b.ReportMetric(tx/n, "avg-tx-CPL")
		}
	}
}

func BenchmarkFigure1Hierarchy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(experiments.Default()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Chaining(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure2(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(fig.ChainedCycles), "chained-cycles")
			b.ReportMetric(float64(fig.UnchainedCycles), "unchained-cycles")
			b.ReportMetric(fig.SteadyChime, "steady-chime-cycles")
		}
	}
}

func BenchmarkFigure3Contention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, slow, err := experiments.RunFigure3(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(slow, "mem-slowdown")
			var ratio float64
			for _, r := range rows {
				ratio += r.Multi / r.Single
			}
			b.ReportMetric(ratio/float64(len(rows)), "avg-degradation")
		}
	}
}

// averageMeasuredCPL runs the whole suite under a configuration and
// returns the mean measured CPL (ablation metric).
func averageMeasuredCPL(b *testing.B, cfg experiments.Config) float64 {
	b.Helper()
	results, err := experiments.RunAll(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var sum float64
	for _, r := range results {
		sum += r.Kernel.CPL(r.Cycles)
	}
	return sum / float64(len(results))
}

func benchmarkAblation(b *testing.B, mutate func(*experiments.Config)) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Default()
		mutate(&cfg)
		cpl := averageMeasuredCPL(b, cfg)
		if i == 0 {
			b.ReportMetric(cpl, "avg-CPL")
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	b.ReportAllocs()
	benchmarkAblation(b, func(cfg *experiments.Config) {})
}

func BenchmarkAblationNoChaining(b *testing.B) {
	b.ReportAllocs()
	benchmarkAblation(b, func(cfg *experiments.Config) { cfg.VM.Rules.Chaining = false })
}

func BenchmarkAblationNoBubbles(b *testing.B) {
	b.ReportAllocs()
	benchmarkAblation(b, func(cfg *experiments.Config) { cfg.VM.Rules.Bubbles = false })
}

func BenchmarkAblationNoRefresh(b *testing.B) {
	b.ReportAllocs()
	benchmarkAblation(b, func(cfg *experiments.Config) {
		cfg.VM.RefreshStalls = false
		cfg.VM.Rules.Refresh = false
	})
}

func BenchmarkAblationNoPairRule(b *testing.B) {
	b.ReportAllocs()
	benchmarkAblation(b, func(cfg *experiments.Config) { cfg.VM.Rules.PairRule = false })
}

func BenchmarkAblationNoSplitRule(b *testing.B) {
	b.ReportAllocs()
	benchmarkAblation(b, func(cfg *experiments.Config) { cfg.VM.Rules.SplitRule = false })
}

// BenchmarkAblationScalarBaseline compiles every kernel with
// vectorization disabled: the scalar machine the VP is compared against.
func BenchmarkAblationScalarBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := compiler.DefaultOptions()
		opts.ForceScalar = true
		var sum float64
		for _, k := range lfk.All() {
			c, err := lfk.Compile(k, opts)
			if err != nil {
				b.Fatal(err)
			}
			st, _, err := c.Run(vm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			sum += k.CPL(st.Cycles)
		}
		if i == 0 {
			b.ReportMetric(sum/10, "avg-CPL")
		}
	}
}

// Per-kernel simulation benches: how fast the simulator itself runs.
// BenchmarkLFK is the fast path (pooled simulator, memoized stream-stall
// table); BenchmarkLFKNaive is the reference path (fresh simulator per
// run, naive bank walk). Both report the simulation rate in simulated
// cycles per wall-clock second; the benchgate regression tool tracks the
// fast path's aggregate rate.
func BenchmarkLFK(b *testing.B) {
	pool := vm.NewPool(vm.DefaultConfig())
	for _, k := range lfk.All() {
		k := k
		b.Run(fmt.Sprintf("lfk%d", k.ID), func(b *testing.B) {
			b.ReportAllocs()
			c, err := lfk.Compile(k, compiler.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			var cycles, total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cpu := pool.Get()
				st, err := c.RunOn(cpu)
				pool.Put(cpu)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
				total += st.Cycles
			}
			b.StopTimer()
			b.ReportMetric(k.CPL(cycles), "CPL")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(total)/secs, "cycles/sec")
			}
		})
	}
}

// BenchmarkLFKNaive runs the same kernels over a fresh simulator and the
// naive bank walk every iteration: the before picture the fast path is
// measured against.
func BenchmarkLFKNaive(b *testing.B) {
	cfg := vm.DefaultConfig()
	cfg.NaiveMemPath = true
	for _, k := range lfk.All() {
		k := k
		b.Run(fmt.Sprintf("lfk%d", k.ID), func(b *testing.B) {
			b.ReportAllocs()
			c, err := lfk.Compile(k, compiler.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, _, err := c.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += st.Cycles
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(total)/secs, "cycles/sec")
			}
		})
	}
}

// BenchmarkFastTier measures the analytical serving tier per kernel in
// its steady state: repeated identical requests over one predictor, the
// pattern the service actually sees (first sight replays the schedule,
// every later request answers from the prediction memo). Compile is
// outside the timer like BenchmarkLFK. The per-kernel ratio of
// BenchmarkLFK ns/op to BenchmarkFastTier ns/op is the fast tier's
// serving speedup over pooled simulation; benchgate gates its floor.
// BenchmarkFastTierCold is the first-sight cost.
func BenchmarkFastTier(b *testing.B) {
	pred := fasttier.NewPredictor(calib.FastTierConfig(vm.DefaultConfig()))
	for _, k := range lfk.All() {
		k := k
		b.Run(fmt.Sprintf("lfk%d", k.ID), func(b *testing.B) {
			b.ReportAllocs()
			c, err := lfk.Compile(k, compiler.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			ints := k.DataInts()
			var p fasttier.Prediction
			if _, err := pred.Predict(c.Program, int64(k.Elements), ints); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err = pred.Predict(c.Program, int64(k.Elements), ints)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(p.CPL, "predicted-CPL")
		})
	}
}

// BenchmarkFastTierCold measures the fast tier's first-sight cost: a
// fresh predictor — empty memo, cold stream-stall table — replays the
// schedule from scratch every iteration.
func BenchmarkFastTierCold(b *testing.B) {
	cfg := calib.FastTierConfig(vm.DefaultConfig())
	for _, k := range lfk.All() {
		k := k
		b.Run(fmt.Sprintf("lfk%d", k.ID), func(b *testing.B) {
			b.ReportAllocs()
			c, err := lfk.Compile(k, compiler.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			ints := k.DataInts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pred := fasttier.NewPredictor(cfg)
				if _, err := pred.Predict(c.Program, int64(k.Elements), ints); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeSourceVM measures the service's cold path — compile,
// bound, simulate — one-shot (fresh simulator per call) and pooled
// (Analyzer), on LFK1 source.
func BenchmarkAnalyzeSourceVM(b *testing.B) {
	k := lfk.All()[0]
	cfg := macs.DefaultVMConfig()
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := macs.AnalyzeSourceVM(k.Source, int64(k.Elements), cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		an := macs.NewAnalyzer(cfg)
		for i := 0; i < b.N; i++ {
			if _, err := an.AnalyzeSource(k.Source, int64(k.Elements), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChimePartitioner measures the bounds model itself (pure
// arithmetic, no simulation).
func BenchmarkChimePartitioner(b *testing.B) {
	b.ReportAllocs()
	k, err := lfk.ByID(8)
	if err != nil {
		b.Fatal(err)
	}
	c, err := lfk.Compile(k, compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	loop, ok := asmInnerLoop(c)
	if !ok {
		b.Fatal("no loop")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.MACSBound(loop, 128, core.DefaultRules())
		if res.CPL == 0 {
			b.Fatal("zero bound")
		}
	}
}

// BenchmarkContentionArbiter measures the 4-port bank arbiter.
func BenchmarkContentionArbiter(b *testing.B) {
	b.ReportAllocs()
	cfg := mem.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if s := mem.ContentionSlowdown(cfg, 4, true, 2000); s < 1 {
			b.Fatal("impossible slowdown")
		}
	}
}

// asmInnerLoop extracts the vector inner loop body of a compiled kernel.
func asmInnerLoop(c *lfk.Compiled) ([]isa.Instr, bool) {
	loop, ok := asm.InnerVectorLoop(c.Program)
	if !ok {
		return nil, false
	}
	return loop.Body, true
}

// BenchmarkExtensionBounds regenerates the extension table (t_MACS+ and
// t_MACSD for every kernel).
func BenchmarkExtensionBounds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunExtended(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var plain, plus float64
			for _, r := range rows {
				plain += r.PctMACS
				plus += r.PctPlus
			}
			n := float64(len(rows))
			b.ReportMetric(100*plain/n, "avg-pct-MACS")
			b.ReportMetric(100*plus/n, "avg-pct-MACS+")
		}
	}
}

// BenchmarkClusterCoSimulation co-simulates four copies of every kernel
// over the shared banks (the paper's same-executable lockstep case).
func BenchmarkClusterCoSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunClusterContention(experiments.Default())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var d float64
			for _, r := range rows {
				d += r.Degradation
			}
			b.ReportMetric(d/float64(len(rows)), "avg-lockstep-degradation")
		}
	}
}

// BenchmarkMachineComparison runs the suite across machine presets
// (C-240, Cray-1-like, Cray-2-like).
func BenchmarkMachineComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunMachineComparison()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			names := []string{"MFLOPS-C240", "MFLOPS-Cray1like", "MFLOPS-Cray2like"}
			for j, r := range rows {
				if j < len(names) {
					b.ReportMetric(r.MFLOPS, names[j])
				}
			}
		}
	}
}

// BenchmarkExplore measures the design-space exploration engine per
// kernel: one op is a full two-stage sweep of a 120-point machine grid
// (compile once, fast-tier score every point, simulate the top 5%).
// It reports the sweep throughput in grid points per wall-clock second
// and the pruning economy (points swept per point simulated); benchgate
// holds points/sec above the 1000/kernel floor and the prune ratio above
// 10x, and gates points/sec against the committed baseline.
func BenchmarkExplore(b *testing.B) {
	grid := explore.Grid{Axes: []explore.Axis{
		{Param: "banks", Values: []float64{8, 16, 24, 32, 48, 64}},
		{Param: "refresh-period", Values: []float64{200, 300, 400, 500, 600}},
		{Param: "vlmax", Values: []float64{32, 64, 96, 128}},
	}}
	// One shared evaluator registry: repeated sweeps keep per-machine
	// simulator pools and prediction memos warm, the serving steady state.
	evals := explore.NewEvaluators(vm.DefaultConfig())
	for _, k := range lfk.All() {
		k := k
		b.Run(fmt.Sprintf("lfk%d", k.ID), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := explore.New(grid, explore.Options{Evaluators: evals})
			if err != nil {
				b.Fatal(err)
			}
			req := explore.Request{
				Source:     k.Source,
				Iterations: int64(k.Elements),
				Ints:       k.DataInts(),
				Prime:      k.PrimeFunc(),
			}
			ctx := context.Background()
			// One untimed warm-up sweep builds this kernel's per-machine
			// prediction memos and simulator pools; the timed loop then
			// measures the serving steady state (cold-start cost is what
			// BenchmarkLFKNaive and BenchmarkFastTierCold cover).
			if _, err := eng.Sweep(ctx, req); err != nil {
				b.Fatal(err)
			}
			var swept, simulated int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw, err := eng.Sweep(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				swept += sw.Swept
				simulated += sw.Simulated
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(swept)/secs, "points/sec")
			}
			if simulated > 0 {
				b.ReportMetric(float64(swept)/float64(simulated), "prune-x")
			}
		})
	}
}
