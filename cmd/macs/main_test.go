package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const saxpySrc = `
PROGRAM SAXPY
REAL X(2048), Y(2048), A
INTEGER N, K
DO K = 1, N
  Y(K) = Y(K) + A*X(K)
ENDDO
END
`

func writeKernel(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "saxpy.f")
	if err := os.WriteFile(path, []byte(saxpySrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdCompile(t *testing.T) {
	var out strings.Builder
	if err := cmdCompile(&out, []string{writeKernel(t)}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		".data d_X", // data segment for the arrays
		".data d_Y",
		"mul.d", // the A*X multiply, vectorized
		"add.d",
		"mov s0,vl", // strip-mined vector length setup
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compile output missing %q\n%s", want, got)
		}
	}
}

func TestCmdCheck(t *testing.T) {
	var out strings.Builder
	if err := cmdCheck(&out, []string{writeKernel(t)}); err != nil {
		t.Fatalf("check on compiled SAXPY failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no errors") {
		t.Errorf("check output missing summary line:\n%s", out.String())
	}
}

func TestCmdBound(t *testing.T) {
	var out strings.Builder
	if err := cmdBound(&out, []string{writeKernel(t)}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"MA workload:",
		"MAC workload:",
		"t_MACS",
		"fa=1 fm=1 l=2 s=1", // SAXPY: one add, one multiply, two loads, one store
	} {
		if !strings.Contains(got, want) {
			t.Errorf("bound output missing %q\n%s", want, got)
		}
	}
}

func TestCmdCompileMissingFile(t *testing.T) {
	var out strings.Builder
	if err := cmdCompile(&out, nil); err == nil {
		t.Fatal("cmdCompile with no args succeeded; want error")
	}
	if err := cmdCompile(&out, []string{"/nonexistent/kernel.f"}); err == nil {
		t.Fatal("cmdCompile with missing file succeeded; want error")
	}
}

func TestCmdAttr(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := cmdAttr(&out, []string{writeKernel(t), "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Stall attribution",
		"issue",
		"asu",
		"load/store",
		"total",
		"wrote",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("attr output missing %q\n%s", want, got)
		}
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"traceEvents"`) {
		t.Errorf("trace file is not Chrome trace_event JSON:\n%.200s", b)
	}
}

func TestCmdAttrRingOnly(t *testing.T) {
	var out strings.Builder
	if err := cmdAttr(&out, []string{writeKernel(t), "-ring", "16"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Stall attribution") {
		t.Errorf("attr output missing table:\n%s", out.String())
	}
}
