// Command macs is the MACS toolchain driver: it compiles Fortran-subset
// kernels to Convex-style assembly, computes the MA/MAC/MACS bounds
// hierarchy, runs programs on the cycle-level C-240 simulator, generates
// A/X codes, and runs the instruction calibration loops.
//
// Usage:
//
//	macs compile <kernel.f>        print the compiled assembly
//	macs check   <kernel.f>        statically verify the compiled code and
//	                               print every diagnostic; exits non-zero
//	                               when the checker finds errors
//	macs bound   <kernel.f>        print the bounds hierarchy
//	macs sim     <kernel.f> [-n N] compile and simulate (N inner iterations
//	                               for the CPL conversion)
//	macs analyze <kernel.f> [-tier exact|fast|auto] [-n N] [-ints N=1001]
//	             [-trace out.json]
//	                               serve through a selectable tier: exact
//	                               simulates, fast predicts analytically in
//	                               microseconds, auto does both and reports
//	                               the divergence; -trace writes the
//	                               pipeline spans merged with the simulator
//	                               lanes as one Chrome trace_event timeline
//	macs attr    <kernel.f> [-n N] [-trace out.json] [-ring N]
//	                               simulate and print the per-lane stall
//	                               attribution table; -trace writes the
//	                               vector timing as Chrome trace_event JSON
//	macs deps    <kernel.f>        print the inner-loop dependence graph
//	                               analysis: edge census, critical path,
//	                               initiation-interval bounds and what the
//	                               interval analysis proved about each
//	                               vector memory stream
//	macs ax      <kernel.f>        print the A-process and X-process codes
//	macs batch [-addr URL] [-tier T] [-n N] [-ints N=1001] k1.f k2.f ...
//	                               analyze many kernels in one batch and
//	                               stream per-kernel NDJSON results; with
//	                               -addr they go through a running macsd's
//	                               /v1/batch, otherwise in-process
//	macs calib                     run the Table 1 calibration loops
//	macs explore [kernel.f | -lfk id|all] [-grid spec.json] [-axis p=v1,v2]
//	             [-top F] [-losers N] [-attr] [-params]
//	                               design-space exploration: compile the
//	                               kernel once, sweep a grid of machine
//	                               variants, fast-tier score every point and
//	                               simulate only the top fraction; prints the
//	                               ranked table (and the winner's stall
//	                               attribution with -attr)
//	macs lfk <id>                  analyze one case-study kernel
//
// A filename of "-" reads from standard input.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"macs"
	"macs/internal/asm"
	"macs/internal/ax"
	"macs/internal/calib"
	"macs/internal/depgraph"
	"macs/internal/mem"
	"macs/internal/obs"
	"macs/internal/report"
	"macs/internal/service"
	"macs/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compile":
		err = cmdCompile(os.Stdout, args)
	case "check":
		err = cmdCheck(os.Stdout, args)
	case "bound":
		err = cmdBound(os.Stdout, args)
	case "sim":
		err = cmdSim(os.Stdout, args)
	case "analyze":
		err = cmdAnalyze(os.Stdout, args)
	case "deps":
		err = cmdDeps(os.Stdout, args)
	case "attr":
		err = cmdAttr(os.Stdout, args)
	case "ax":
		err = cmdAX(os.Stdout, args)
	case "batch":
		err = cmdBatch(os.Stdout, args)
	case "calib":
		err = cmdCalib(os.Stdout, args)
	case "sweep":
		err = cmdSweep(os.Stdout)
	case "explore":
		err = cmdExplore(os.Stdout, args)
	case "lfk":
		err = cmdLFK(os.Stdout, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "macs:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: macs {compile|check|bound|sim|analyze|deps|attr|ax|explore} <kernel.f> | macs batch <k1.f> <k2.f> ... | macs calib | macs sweep | macs explore -lfk <id|all> | macs lfk <id>")
	os.Exit(2)
}

func readSource(args []string) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf("missing source file")
	}
	if args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

func cmdCompile(w io.Writer, args []string) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	p, err := macs.Compile(src, macs.DefaultCompilerOptions())
	if err != nil {
		return err
	}
	fmt.Fprint(w, p.String())
	return nil
}

// cmdCheck compiles a kernel and runs the static checker, printing every
// finding anchored to its instruction. Error-severity findings make the
// command fail, so it gates CI and scripted pipelines.
func cmdCheck(w io.Writer, args []string) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	p, err := macs.Compile(src, macs.DefaultCompilerOptions())
	if err != nil {
		return err
	}
	ds := macs.Verify(p)
	nerr := 0
	for _, d := range ds {
		if d.Severity == macs.SevError {
			nerr++
		}
		fmt.Fprintln(w, d.Render(p))
	}
	if nerr > 0 {
		return fmt.Errorf("check failed: %d error(s), %d finding(s) total", nerr, len(ds))
	}
	fmt.Fprintf(w, "ok: %d instruction(s), %d finding(s), no errors\n", len(p.Instrs), len(ds))
	return nil
}

func cmdBound(w io.Writer, args []string) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	res, err := macs.AnalyzeSource(src, 0, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Report())
	return nil
}

// cmdDeps compiles a kernel and prints the static dependence analysis of
// its inner vectorized loop: the edge census, the critical-path chain
// with its chaining-aware length, the initiation-interval bounds behind
// t_CP, and the interval analysis' verdict on every vector memory stream.
func cmdDeps(w io.Writer, args []string) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	p, err := macs.Compile(src, macs.DefaultCompilerOptions())
	if err != nil {
		return err
	}
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		return fmt.Errorf("compiled code has no vectorized inner loop")
	}
	vl := macs.DefaultVMConfig().VLMax
	cp, g, _ := depgraph.Analyze(p, vl, depgraph.DefaultParams())

	shape := "straight-line"
	if !cp.StraightLine {
		shape = "with internal control flow"
	}
	fmt.Fprintf(w, "inner loop %s: %d instructions, %s\n", loop.Label, len(loop.Body), shape)
	fmt.Fprintf(w, "edges: %d true, %d anti, %d output (%d loop-carried)\n",
		g.KindCount(depgraph.EdgeTrue), g.KindCount(depgraph.EdgeAnti),
		g.KindCount(depgraph.EdgeOutput), g.Carried())
	fmt.Fprintf(w, "critical path at VL=%d: %d cycles\n", cp.VL, cp.Len)
	for _, i := range cp.Crit {
		fmt.Fprintf(w, "  [%2d] %s\n", i, loop.Body[i].String())
	}
	fmt.Fprintf(w, "initiation interval: serial %d, carried %d -> II %d\n",
		cp.IISerial, cp.IICarried, cp.II)
	if cp.CPL > 0 {
		fmt.Fprintf(w, "t_CP = %.3f CPL\n", cp.CPL)
	} else {
		fmt.Fprintln(w, "t_CP: no per-element claim (body not straight-line)")
	}

	iv := depgraph.Intervals(p)
	facts := depgraph.StreamFacts(p, iv, mem.DefaultConfig())
	if len(facts) > 0 {
		fmt.Fprintln(w, "vector memory streams:")
		for _, f := range facts {
			verdict := "unproven (stride not statically bounded)"
			switch {
			case f.ConflictFree:
				verdict = "provably bank-conflict-free"
			case f.Conflicting:
				verdict = "provably bank-conflicting"
			}
			fmt.Fprintf(w, "  [%2d] %-24s stride %-12s %s\n",
				f.Idx, f.Instr.String(), f.Stride.String(), verdict)
		}
	}
	return nil
}

func cmdSim(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	n := fs.Int64("n", 0, "inner-loop iterations for CPL conversion")
	var file string
	if len(args) > 0 && args[0][0] != '-' {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := readSource([]string{file})
	if err != nil {
		return err
	}
	res, err := macs.AnalyzeSource(src, *n, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Report())
	fmt.Fprintf(w, "stats: %d instrs (%d vector), %d chimes, %d memory stall cycles\n",
		res.Stats.Instrs, res.Stats.VectorInstrs, res.Stats.Chimes, res.Stats.MemStalls)
	return nil
}

// cmdAnalyze serves a kernel through a selectable tier: "exact" simulates
// (like sim), "fast" predicts analytically in microseconds, "auto" serves
// the fast prediction and then verifies it against the simulator,
// reporting the divergence.
func cmdAnalyze(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	tierName := fs.String("tier", "exact", "serving tier: exact, fast or auto")
	n := fs.Int64("n", 0, "inner-loop iterations for CPL conversion")
	ints := fs.String("ints", "", "integer inputs to prime, e.g. N=1001,LOOP=20")
	traceOut := fs.String("trace", "", "write the pipeline trace merged with the simulator lanes as Chrome trace_event JSON to this file")
	var file string
	if len(args) > 0 && args[0][0] != '-' {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	tier, err := macs.ParseTier(*tierName)
	if err != nil {
		return err
	}
	src, err := readSource([]string{file})
	if err != nil {
		return err
	}
	primeInts, err := parseInts(*ints)
	if err != nil {
		return err
	}

	// With -trace, every pipeline stage records a span on tr and the
	// simulated run's lane events merge into the same timeline.
	ctx := context.Background()
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("")
		ctx = obs.NewContext(ctx, tr)
	}
	ctx, root := obs.Start(ctx, "analyze")

	runFast := func() (macs.FastResult, error) {
		start := time.Now()
		fr, err := macs.NewAnalyzer(macs.DefaultVMConfig()).PredictSourceCtx(ctx, src, *n, primeInts)
		if err != nil {
			return fr, err
		}
		fmt.Fprintf(w, "tier: fast (%s)\n", time.Since(start).Round(time.Microsecond))
		fmt.Fprint(w, fr.Report())
		fmt.Fprintln(w)
		fmt.Fprint(w, report.PredictionTable(fr.Prediction))
		return fr, nil
	}
	runExact := func() (macs.Result, error) {
		start := time.Now()
		cfg := macs.DefaultVMConfig()
		if tr != nil {
			cfg.Trace = true
		}
		res, err := macs.AnalyzeSourceVMCtx(ctx, src, *n, cfg, primeFunc(primeInts))
		if err != nil {
			return res, err
		}
		fmt.Fprintf(w, "tier: exact (%s)\n", time.Since(start).Round(time.Microsecond))
		fmt.Fprint(w, res.Report())
		return res, nil
	}
	writeTrace := func() error {
		root.End()
		if tr == nil {
			return nil
		}
		v := tr.View()
		b, err := obs.ChromeTrace(v)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace %s: %d spans, %d lane events -> %s\n",
			v.ID, len(v.Spans), len(v.Lanes), *traceOut)
		return nil
	}

	switch tier {
	case macs.TierFast:
		if _, err := runFast(); err != nil {
			return err
		}
		return writeTrace()
	case macs.TierExact:
		if _, err := runExact(); err != nil {
			return err
		}
		return writeTrace()
	case macs.TierAuto:
		fr, err := runFast()
		if err != nil {
			if errors.Is(err, macs.ErrDataDependent) {
				fmt.Fprintf(w, "fast tier declined (%v); falling back to exact\n\n", err)
				if _, err = runExact(); err != nil {
					return err
				}
				return writeTrace()
			}
			return err
		}
		fmt.Fprintln(w)
		res, err := runExact()
		if err != nil {
			return err
		}
		if res.MeasuredCPL > 0 && fr.Prediction.CPL > 0 {
			rel := (fr.Prediction.CPL - res.MeasuredCPL) / res.MeasuredCPL
			ok := "within"
			if rel > fr.Prediction.ErrorBand || rel < -fr.Prediction.ErrorBand {
				ok = "OUTSIDE"
			}
			fmt.Fprintf(w, "divergence: predicted %.3f vs measured %.3f CPL (%+.3f%%, %s the ±%.1f%% band)\n",
				fr.Prediction.CPL, res.MeasuredCPL, 100*rel, ok, 100*fr.Prediction.ErrorBand)
		}
		return writeTrace()
	}
	return fmt.Errorf("unhandled tier %v", tier)
}

// parseInts parses "N=1001,LOOP=20" into a data-symbol priming map.
func parseInts(s string) (map[string]int64, error) {
	raw, err := parseIntsRaw(s)
	if err != nil || raw == nil {
		return nil, err
	}
	out := make(map[string]int64, len(raw))
	for name, v := range raw {
		out[macs.DataSymbol(name)] = v
	}
	return out, nil
}

// parseIntsRaw parses "N=1001,LOOP=20" keeping the variable names as
// written — the form the service's Priming wants.
func parseIntsRaw(s string) (map[string]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int64)
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -ints entry %q (want name=value)", kv)
		}
		var v int64
		if _, err := fmt.Sscanf(val, "%d", &v); err != nil {
			return nil, fmt.Errorf("bad -ints value %q: %v", kv, err)
		}
		out[name] = v
	}
	return out, nil
}

// cmdBatch analyzes many kernels in one batch, streaming one NDJSON
// result line per kernel as it completes. With -addr the batch goes
// through a running macsd's /v1/batch endpoint; without it the batch
// runs in-process through the same service engine.
func cmdBatch(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	addr := fs.String("addr", "", "macsd base URL (e.g. http://localhost:8723); empty runs in-process")
	tierName := fs.String("tier", "", "serving tier for every kernel: exact, fast or auto")
	n := fs.Int64("n", 0, "inner-loop iterations for CPL conversion, applied to every kernel")
	ints := fs.String("ints", "", "integer inputs to prime every kernel, e.g. N=1001,LOOP=20")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("missing kernel files")
	}
	if *tierName != "" {
		if _, err := macs.ParseTier(*tierName); err != nil {
			return err
		}
	}
	primeInts, err := parseIntsRaw(*ints)
	if err != nil {
		return err
	}

	var req service.BatchRequest
	for _, f := range files {
		src, err := readSource([]string{f})
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		req.Items = append(req.Items, service.AnalyzeRequest{
			Source:     src,
			Iterations: *n,
			Prime:      service.Priming{Ints: primeInts},
			Tier:       *tierName,
		})
	}
	if *addr != "" {
		return batchRemote(w, *addr, req)
	}
	return batchLocal(w, req)
}

// batchLocal runs the batch through an in-process service, printing
// each result line as the engine emits it.
func batchLocal(w io.Writer, req service.BatchRequest) error {
	svc := service.New(service.Config{})
	defer svc.Close()
	enc := json.NewEncoder(w)
	failed := 0
	err := svc.AnalyzeBatch(context.Background(), req, func(item service.BatchItemResult) {
		if item.Error != "" {
			failed++
		}
		enc.Encode(item) //nolint:errcheck // stdout
	})
	if err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d kernels failed", failed, len(req.Items))
	}
	return nil
}

// batchRemote POSTs the batch to a running macsd and relays the NDJSON
// stream line by line as it arrives.
func batchRemote(w io.Writer, addr string, req service.BatchRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("batch status %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	failed := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		var item service.BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			return fmt.Errorf("bad batch line: %w", err)
		}
		if item.Error != "" {
			failed++
		}
		fmt.Fprintf(w, "%s\n", sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d kernels failed", failed, len(req.Items))
	}
	return nil
}

// primeFunc turns a data-symbol priming map into the simulator priming
// hook AnalyzeSource takes, so both tiers see the same inputs.
func primeFunc(ints map[string]int64) func(*macs.CPU) error {
	if len(ints) == 0 {
		return nil
	}
	return func(cpu *macs.CPU) error {
		m := cpu.Memory()
		for sym, v := range ints {
			base, ok := m.SymbolAddr(sym)
			if !ok {
				return fmt.Errorf("priming unknown symbol %q", sym)
			}
			if err := m.WriteI64(base, v); err != nil {
				return err
			}
		}
		return nil
	}
}

// cmdAttr simulates a kernel and prints where every cycle of every lane
// went: the per-lane stall attribution table, plus optionally the vector
// timing trace as Chrome trace_event JSON.
func cmdAttr(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("attr", flag.ExitOnError)
	n := fs.Int64("n", 0, "inner-loop iterations for CPL conversion")
	traceOut := fs.String("trace", "", "write Chrome trace_event JSON to this file")
	ring := fs.Int("ring", 4096, "bounded trace ring capacity (0 disables)")
	var file string
	if len(args) > 0 && args[0][0] != '-' {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := readSource([]string{file})
	if err != nil {
		return err
	}
	cfg := macs.DefaultVMConfig()
	if *traceOut != "" {
		cfg.Trace = true // unbounded: the export should cover the whole run
	} else {
		cfg.TraceRing = *ring
	}
	res, err := macs.AnalyzeSourceVM(src, *n, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Report())
	fmt.Fprintln(w)
	fmt.Fprint(w, report.AttributionTable(res.Stats))
	if err := res.Stats.Attr.Conserved(res.Stats.Cycles); err != nil {
		return err
	}
	if *traceOut != "" {
		b, err := macs.ChromeTrace(res.Trace)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %d trace events to %s\n", len(res.Trace), *traceOut)
	}
	return nil
}

func cmdAX(w io.Writer, args []string) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	p, err := macs.Compile(src, macs.DefaultCompilerOptions())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "; ===== A-process (vector FP deleted) =====")
	fmt.Fprint(w, ax.AProcess(p).String())
	fmt.Fprintln(w, "; ===== X-process (vector memory deleted) =====")
	fmt.Fprint(w, ax.XProcess(p).String())
	return nil
}

func cmdCalib(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("calib", flag.ExitOnError)
	residuals := fs.String("residuals", "", `fit fast-tier residuals and write the generated Go table to this file ("-" prints to stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *residuals != "" {
		fits, err := calib.FitResiduals(vm.DefaultConfig())
		if err != nil {
			return err
		}
		src := calib.RenderResiduals(fits)
		for _, f := range fits {
			fmt.Fprintf(os.Stderr, "%-6s class %-12s sim CPL %8.4f  raw %8.4f  scale %.6f\n",
				f.Kernel, f.Class, f.SimCPL, f.RawCPL, f.Scale)
		}
		if *residuals == "-" {
			fmt.Fprint(w, src)
			return nil
		}
		if err := os.WriteFile(*residuals, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d signature residuals to %s\n", len(fits), *residuals)
		return nil
	}
	res, err := calib.CalibrateAll(vm.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report.Table1(res))
	return nil
}

// cmdSweep prints the VL sweep and half-performance lengths of every
// Table 1 instruction type.
func cmdSweep(w io.Writer) error {
	vls := []int{4, 8, 16, 32, 64, 128}
	fmt.Fprintf(w, "%-6s", "instr")
	for _, vl := range vls {
		fmt.Fprintf(w, "  VL=%-5d", vl)
	}
	fmt.Fprintf(w, "  n1/2(cold)  n1/2(steady)\n")
	for _, op := range calib.Table1Ops() {
		pts, err := calib.VLSweep(op, vls, vm.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s", op)
		for _, p := range pts {
			fmt.Fprintf(w, "  %-8.2f", p.CyclesPerElem)
		}
		cold, steady, err := calib.HalfPerformanceLength(op)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10.1f  %.1f\n", cold, steady)
	}
	fmt.Fprintln(w, "\ncycles per element in steady state; n1/2 is Hockney's half-performance length")
	return nil
}

func cmdLFK(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("missing kernel id")
	}
	var id int
	if _, err := fmt.Sscanf(args[0], "%d", &id); err != nil {
		return err
	}
	k, err := macs.KernelByID(id)
	if err != nil {
		return err
	}
	r, err := macs.RunKernel(k, macs.DefaultExperimentConfig())
	if err != nil {
		return err
	}
	tma, tmac, tmacs, tp := r.CPLs()
	fmt.Fprintf(w, "LFK%d (%s), n=%d, %d flops/iteration\n", k.ID, k.Name, k.N, k.FlopsPerIteration())
	fmt.Fprintf(w, "  t_MA   = %7.3f CPL\n", tma)
	fmt.Fprintf(w, "  t_MAC  = %7.3f CPL\n", tmac)
	fmt.Fprintf(w, "  t_MACS = %7.3f CPL\n", tmacs)
	fmt.Fprintf(w, "  t_p    = %7.3f CPL (measured, output validated: %v)\n", tp, r.Validated)
	fmt.Fprintf(w, "  t_a    = %7.3f CPL, t_x = %7.3f CPL (A/X measurements)\n",
		k.CPL(r.AX.TA), k.CPL(r.AX.TX))
	fmt.Fprintf(w, "  paper (CPF): t_MA %.3f, t_MAC %.3f, t_MACS %.3f, t_p %.3f\n",
		k.Paper.TMA, k.Paper.TMAC, k.Paper.TMACS, k.Paper.TP)

	// Extended bound (short vectors, startup, reductions, outer scalars).
	prog, err := macs.Compile(k.Source, macs.DefaultCompilerOptions())
	if err != nil {
		return err
	}
	shape := macs.LoopShape{Elements: k.Elements, Entries: k.Entries, OuterScalarOps: 30}
	if ext, err := macs.ExtendedBoundOf(prog, shape, macs.DefaultRules()); err == nil {
		fmt.Fprintf(w, "  t_MACS+ = %7.3f CPL (extended: strips, startup, reductions, scalar)\n", ext)
	}
	if d, err := macs.MACSDBoundOf(prog, 128, macs.DefaultRules()); err == nil {
		fmt.Fprintf(w, "  t_MACSD = %7.3f CPL (decomposition-aware)\n", d)
	}

	// Diagnosis per the paper's section 4.4.
	diag := macs.Diagnose(macs.DiagnosisInputs{
		Analysis: r.Analysis,
		TP:       k.CPL(r.AX.TP),
		TA:       k.CPL(r.AX.TA),
		TX:       k.CPL(r.AX.TX),
		Attr:     &r.Stats.Attr,
	})
	fmt.Fprintf(w, "\ndiagnosis:\n%s", diag)
	fmt.Fprintln(w)
	fmt.Fprint(w, report.AttributionTable(r.Stats))
	return nil
}
