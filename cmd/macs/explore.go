package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"macs/internal/explore"
	"macs/internal/lfk"
	"macs/internal/report"
	"macs/internal/vm"
)

// axisFlags collects repeatable -axis param=v1,v2,... flags.
type axisFlags []explore.Axis

func (a *axisFlags) String() string { return fmt.Sprintf("%v", []explore.Axis(*a)) }

func (a *axisFlags) Set(s string) error {
	name, vals, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("bad -axis %q (want param=v1,v2,...)", s)
	}
	ax := explore.Axis{Param: strings.TrimSpace(name)}
	for _, f := range strings.Split(vals, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("bad -axis value %q: %v", f, err)
		}
		ax.Values = append(ax.Values, v)
	}
	*a = append(*a, ax)
	return nil
}

// cmdExplore sweeps a machine-parameter grid over one or more kernels:
// compile once, fast-tier score every grid point, simulate only the top
// fraction, print the ranked table (and optionally the winner's stall
// attribution).
func cmdExplore(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	gridFile := fs.String("grid", "", "JSON grid spec file {\"base\":{...},\"axes\":[{\"param\":...,\"values\":[...]}]}")
	var axes axisFlags
	fs.Var(&axes, "axis", "swept parameter, e.g. -axis banks=16,32,64 (repeatable; see -params)")
	listParams := fs.Bool("params", false, "list the sweepable parameters and exit")
	lfkSel := fs.String("lfk", "", "sweep a case-study kernel: an id (1-12) or \"all\"")
	n := fs.Int64("n", 0, "inner-loop iterations for CPL conversion (ignored with -lfk)")
	ints := fs.String("ints", "", "integer inputs to prime, e.g. N=1001 (ignored with -lfk)")
	top := fs.Float64("top", 0, "fraction of points promoted to exact simulation (0 takes the default 5%)")
	workers := fs.Int("workers", 0, "sweep concurrency (0 uses all cores)")
	losers := fs.Int("losers", 3, "pruned points to show under the survivors")
	attr := fs.Bool("attr", false, "print the winner's per-lane stall attribution")
	var file string
	if len(args) > 0 && args[0][0] != '-' {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listParams {
		for _, line := range explore.Params() {
			fmt.Fprintln(w, line)
		}
		return nil
	}

	var grid explore.Grid
	if *gridFile != "" {
		b, err := os.ReadFile(*gridFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &grid); err != nil {
			return fmt.Errorf("grid spec %s: %w", *gridFile, err)
		}
	}
	grid.Axes = append(grid.Axes, axes...)

	eng, err := explore.New(grid, explore.Options{TopFrac: *top, Workers: *workers})
	if err != nil {
		return err
	}

	ref := grid.Base
	if ref == (vm.Machine{}) {
		ref = vm.DefaultMachine()
	}

	var reqs []explore.Request
	switch {
	case *lfkSel != "":
		var kernels []*lfk.Kernel
		if *lfkSel == "all" {
			kernels = lfk.All()
		} else {
			id, err := strconv.Atoi(*lfkSel)
			if err != nil {
				return fmt.Errorf("bad -lfk %q", *lfkSel)
			}
			k, err := lfk.ByID(id)
			if err != nil {
				return err
			}
			kernels = []*lfk.Kernel{k}
		}
		for _, k := range kernels {
			reqs = append(reqs, explore.Request{
				Name:       fmt.Sprintf("lfk%d (%s)", k.ID, k.Name),
				Source:     k.Source,
				Iterations: int64(k.Elements),
				Ints:       k.DataInts(),
				Prime:      k.PrimeFunc(),
			})
		}
	case file != "":
		src, err := readSource([]string{file})
		if err != nil {
			return err
		}
		primeInts, err := parseInts(*ints)
		if err != nil {
			return err
		}
		reqs = append(reqs, explore.Request{
			Name: file, Source: src, Iterations: *n,
			Ints: primeInts, Prime: primeFunc(primeInts),
		})
	default:
		return fmt.Errorf("missing kernel: give a source file or -lfk")
	}

	for i, req := range reqs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		sw, err := eng.Sweep(context.Background(), req)
		if err != nil {
			return fmt.Errorf("%s: %w", req.Name, err)
		}
		fmt.Fprint(w, report.ExploreTable(sw, ref, *losers))
		if *attr {
			best := sw.Best()
			if best.Stats != nil {
				fmt.Fprintf(w, "\nwinner %s:\n", report.MachineLabel(best.Machine, ref))
				fmt.Fprint(w, report.AttributionTable(*best.Stats))
			}
		}
	}
	return nil
}
