// Command benchgate guards the simulation engine's fast path against
// performance regressions. It runs the per-kernel LFK benchmarks
// (BenchmarkLFK, the pooled/memoized fast path, and BenchmarkLFKNaive,
// the fresh-simulator reference), writes a machine-readable report, and
// compares against a committed baseline.
//
// Absolute simulation rates vary with hardware, so the gate is on
// machine-neutral quantities measured in the same process: the fast/naive
// speedup ratio and the fast path's allocations per run. A >10% drop in
// speedup, or allocation growth beyond tolerance, fails the gate.
//
// Usage:
//
//	benchgate                      # run, compare against BENCH_5.json
//	benchgate -update              # run and rewrite the baseline
//	benchgate -count 3             # best-of-3 to damp benchtime=1x noise
//	benchgate -tolerance 0.10     # allowed relative regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// KernelBench is one kernel's benchmark outcome.
type KernelBench struct {
	NsPerOp      float64 `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// Aggregate summarizes a whole pass: total simulated cycles divided by
// total wall time, and summed allocations for one run of every kernel.
type Aggregate struct {
	FastCyclesPerSec  float64 `json:"fast_cycles_per_sec"`
	NaiveCyclesPerSec float64 `json:"naive_cycles_per_sec"`
	// Speedup is the machine-neutral gate metric: fast aggregate rate
	// over naive aggregate rate, both measured in this process.
	Speedup     float64 `json:"speedup"`
	FastAllocs  float64 `json:"fast_allocs_per_sweep"`
	NaiveAllocs float64 `json:"naive_allocs_per_sweep"`
}

// Report is the BENCH_5.json document.
type Report struct {
	Fast      map[string]KernelBench `json:"fast"`
	Naive     map[string]KernelBench `json:"naive"`
	Aggregate Aggregate              `json:"aggregate"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_5.json", "committed baseline to gate against")
	out := flag.String("out", "BENCH_5.json", "where to write this run's report")
	update := flag.Bool("update", false, "rewrite the baseline instead of gating")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative regression")
	count := flag.Int("count", 1, "benchmark repetitions; the best run per kernel is kept")
	dir := flag.String("dir", ".", "module directory containing the benchmarks")
	flag.Parse()

	if err := run(*baseline, *out, *update, *tolerance, *count, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baseline, out string, update bool, tolerance float64, count int, dir string) error {
	if count < 1 {
		count = 1
	}
	rep, err := measure(count, dir)
	if err != nil {
		return err
	}
	printReport(rep)

	if !update {
		if err := gate(rep, baseline, tolerance); err != nil {
			return err
		}
	}
	if out != "" && (update || out != baseline) {
		if err := writeReport(out, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// measure runs the LFK benchmarks and folds the output into a Report,
// keeping the best (highest-rate) run per kernel.
func measure(count int, dir string) (Report, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", "^(BenchmarkLFK|BenchmarkLFKNaive)$",
		"-benchtime", "1x", "-benchmem",
		"-count", strconv.Itoa(count),
		".",
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		return Report{}, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, outBytes)
	}
	rep := Report{Fast: map[string]KernelBench{}, Naive: map[string]KernelBench{}}
	for _, line := range strings.Split(string(outBytes), "\n") {
		name, kb, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		kernel := name[strings.Index(name, "/")+1:]
		var into map[string]KernelBench
		switch {
		case strings.HasPrefix(name, "BenchmarkLFKNaive/"):
			into = rep.Naive
		case strings.HasPrefix(name, "BenchmarkLFK/"):
			into = rep.Fast
		default:
			continue
		}
		if prev, seen := into[kernel]; !seen || kb.CyclesPerSec > prev.CyclesPerSec {
			into[kernel] = kb
		}
	}
	if len(rep.Fast) == 0 || len(rep.Naive) == 0 {
		return rep, fmt.Errorf("no benchmark lines parsed from go test output:\n%s", outBytes)
	}
	rep.Aggregate = aggregate(rep)
	return rep, nil
}

// parseBenchLine reads one `go test -bench` result line. Values are
// `<number> <unit>` pairs after the iteration count.
func parseBenchLine(line string) (string, KernelBench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", KernelBench{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip -GOMAXPROCS
	}
	var kb KernelBench
	got := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", KernelBench{}, false
		}
		switch f[i+1] {
		case "ns/op":
			kb.NsPerOp = v
			got = true
		case "cycles/sec":
			kb.CyclesPerSec = v
		case "B/op":
			kb.BytesPerOp = v
		case "allocs/op":
			kb.AllocsPerOp = v
		}
	}
	return name, kb, got
}

// aggregate computes whole-sweep rates: per-kernel simulated cycles are
// recovered from rate × time, then totals are divided.
func aggregate(rep Report) Aggregate {
	rate := func(m map[string]KernelBench) (cps, allocs float64) {
		var cycles, ns float64
		for _, kb := range m {
			cycles += kb.CyclesPerSec * kb.NsPerOp / 1e9
			ns += kb.NsPerOp
			allocs += kb.AllocsPerOp
		}
		if ns == 0 {
			return 0, allocs
		}
		return cycles / (ns / 1e9), allocs
	}
	var a Aggregate
	a.FastCyclesPerSec, a.FastAllocs = rate(rep.Fast)
	a.NaiveCyclesPerSec, a.NaiveAllocs = rate(rep.Naive)
	if a.NaiveCyclesPerSec > 0 {
		a.Speedup = a.FastCyclesPerSec / a.NaiveCyclesPerSec
	}
	return a
}

// gate compares this run against the baseline report.
func gate(rep Report, baseline string, tolerance float64) error {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("no baseline %s; run with -update to create one", baseline)
		}
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baseline, err)
	}
	floor := base.Aggregate.Speedup * (1 - tolerance)
	if rep.Aggregate.Speedup < floor {
		return fmt.Errorf("sim-rate regression: fast/naive speedup %.2fx is below %.2fx (baseline %.2fx - %.0f%%)",
			rep.Aggregate.Speedup, floor, base.Aggregate.Speedup, tolerance*100)
	}
	ceil := base.Aggregate.FastAllocs * (1 + tolerance)
	if base.Aggregate.FastAllocs > 0 && rep.Aggregate.FastAllocs > ceil {
		return fmt.Errorf("allocation regression: fast sweep allocates %.0f objects, baseline %.0f (+%.0f%% allowed)",
			rep.Aggregate.FastAllocs, base.Aggregate.FastAllocs, tolerance*100)
	}
	fmt.Printf("gate ok: speedup %.2fx (baseline %.2fx, floor %.2fx), sweep allocs %.0f (ceiling %.0f)\n",
		rep.Aggregate.Speedup, base.Aggregate.Speedup, floor, rep.Aggregate.FastAllocs, ceil)
	return nil
}

func writeReport(path string, rep Report) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func printReport(rep Report) {
	kernels := make([]string, 0, len(rep.Fast))
	for k := range rep.Fast {
		kernels = append(kernels, k)
	}
	sort.Slice(kernels, func(i, j int) bool {
		return kernelOrd(kernels[i]) < kernelOrd(kernels[j])
	})
	fmt.Printf("%-8s %15s %15s %10s %12s\n", "kernel", "fast cyc/s", "naive cyc/s", "speedup", "allocs/op")
	for _, k := range kernels {
		f, n := rep.Fast[k], rep.Naive[k]
		sp := 0.0
		if n.CyclesPerSec > 0 {
			sp = f.CyclesPerSec / n.CyclesPerSec
		}
		fmt.Printf("%-8s %15.0f %15.0f %9.1fx %12.0f\n", k, f.CyclesPerSec, n.CyclesPerSec, sp, f.AllocsPerOp)
	}
	a := rep.Aggregate
	fmt.Printf("%-8s %15.0f %15.0f %9.1fx %12.0f\n", "all", a.FastCyclesPerSec, a.NaiveCyclesPerSec, a.Speedup, a.FastAllocs)
}

// kernelOrd sorts lfk2 before lfk10.
func kernelOrd(name string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(name, "lfk"))
	if err != nil {
		return 1 << 20
	}
	return n
}
