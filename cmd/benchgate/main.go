// Command benchgate guards the simulation engine's fast path, the
// analytical fast tier and the design-space exploration engine against
// performance regressions. It runs the per-kernel benchmarks
// (BenchmarkLFK, the pooled/memoized simulation path; BenchmarkLFKNaive,
// the fresh-simulator reference; BenchmarkFastTier, the schedule-replay
// prediction; and BenchmarkExplore, the two-stage grid sweep), writes a
// machine-readable report, and compares against a committed baseline.
//
// Absolute rates vary with hardware, so most gates are on
// machine-neutral quantities measured in the same process: the
// fast/naive simulation speedup ratio, the fast path's allocations per
// run, the fast tier's speedup over pooled simulation, and the explore
// engine's pruning ratio (points swept per point simulated). Two
// absolute floors ride along — every kernel must predict at least 100x
// faster than it simulates, and every kernel's sweep must clear 1000
// grid points per second with at least 10x fewer simulations than an
// exhaustive sweep — plus a relative gate on sweep throughput against
// the committed baseline. A >10% drop in a gated ratio or rate,
// allocation growth beyond tolerance, or a broken floor fails the gate.
//
// Usage:
//
//	benchgate                      # run, compare against BENCH_10.json
//	benchgate -update              # run and rewrite the baseline
//	benchgate -count 3             # best-of-3 to damp benchtime=1x noise
//	benchgate -tolerance 0.10     # allowed relative regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// KernelBench is one kernel's benchmark outcome.
type KernelBench struct {
	NsPerOp      float64 `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	// PointsPerSec and PruneRatio are reported only by the explore
	// family: grid points swept per second and swept-to-simulated ratio.
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	PruneRatio   float64 `json:"prune_ratio,omitempty"`
}

// Aggregate summarizes a whole pass: total simulated cycles divided by
// total wall time, and summed allocations for one run of every kernel.
type Aggregate struct {
	FastCyclesPerSec  float64 `json:"fast_cycles_per_sec"`
	NaiveCyclesPerSec float64 `json:"naive_cycles_per_sec"`
	// Speedup is the machine-neutral gate metric: fast aggregate rate
	// over naive aggregate rate, both measured in this process.
	Speedup     float64 `json:"speedup"`
	FastAllocs  float64 `json:"fast_allocs_per_sweep"`
	NaiveAllocs float64 `json:"naive_allocs_per_sweep"`
	// FastTierSpeedup is the whole-sweep ratio of pooled-simulation time
	// to fast-tier prediction time; FastTierMinKernelSpeedup is the worst
	// per-kernel ratio, gated against the 100x floor.
	FastTierSpeedup          float64 `json:"fast_tier_speedup"`
	FastTierMinKernelSpeedup float64 `json:"fast_tier_min_kernel_speedup"`
	FastTierAllocs           float64 `json:"fast_tier_allocs_per_sweep"`
	// ExplorePointsPerSec is the aggregate sweep throughput (total grid
	// points over total wall time); ExploreMinKernelPointsPerSec the worst
	// kernel, gated against the 1000/sec floor. ExploreMinPruneRatio is
	// the worst swept-to-simulated ratio, gated against the 10x floor.
	ExplorePointsPerSec          float64 `json:"explore_points_per_sec"`
	ExploreMinKernelPointsPerSec float64 `json:"explore_min_kernel_points_per_sec"`
	ExploreMinPruneRatio         float64 `json:"explore_min_prune_ratio"`
}

// fastTierFloor is the per-kernel speedup the fast tier must keep over
// pooled simulation: each LFK must predict at least this many times
// faster than it simulates.
const fastTierFloor = 100.0

// exploreFloor is the sweep throughput every kernel must clear: grid
// points evaluated (scored or simulated) per wall-clock second.
const exploreFloor = 1000.0

// pruneFloor is the minimum swept-to-simulated ratio: the two-stage
// sweep must run at least this many times fewer simulations than an
// exhaustive sweep.
const pruneFloor = 10.0

// Report is the BENCH_10.json document.
type Report struct {
	Fast     map[string]KernelBench `json:"fast"`
	Naive    map[string]KernelBench `json:"naive"`
	FastTier map[string]KernelBench `json:"fasttier"`
	Explore  map[string]KernelBench `json:"explore"`
	// Aggregate holds the machine-neutral gate metrics.
	Aggregate Aggregate `json:"aggregate"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_10.json", "committed baseline to gate against")
	out := flag.String("out", "BENCH_10.json", "where to write this run's report")
	update := flag.Bool("update", false, "rewrite the baseline instead of gating")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative regression")
	count := flag.Int("count", 1, "benchmark repetitions; the best run per kernel is kept")
	dir := flag.String("dir", ".", "module directory containing the benchmarks")
	flag.Parse()

	if err := run(*baseline, *out, *update, *tolerance, *count, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baseline, out string, update bool, tolerance float64, count int, dir string) error {
	if count < 1 {
		count = 1
	}
	rep, err := measure(count, dir)
	if err != nil {
		return err
	}
	printReport(rep)

	if !update {
		if err := gate(rep, baseline, tolerance); err != nil {
			return err
		}
	}
	if out != "" && (update || out != baseline) {
		if err := writeReport(out, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// measure runs the LFK benchmarks and folds the output into a Report,
// keeping the best (highest-rate) run per kernel. The simulation
// benchmarks run at -benchtime 1x (a single full kernel execution);
// the fast-tier family runs in a second invocation at 1000x so each
// op is a steady-state memo hit rather than a single timer read — at
// b.N=1 the ~600ns monotonic-clock overhead would triple the ~300ns
// serving cost.
func measure(count int, dir string) (Report, error) {
	simArgs := []string{
		"test", "-run", "^$",
		"-bench", "^(BenchmarkLFK|BenchmarkLFKNaive)$",
		"-benchtime", "1x", "-benchmem",
		"-count", strconv.Itoa(count),
		".",
	}
	tierArgs := []string{
		"test", "-run", "^$",
		"-bench", "^BenchmarkFastTier$",
		"-benchtime", "1000x", "-benchmem",
		"-count", strconv.Itoa(count),
		".",
	}
	// The explore family runs each op as a full 120-point sweep; the
	// benchmark warms per-kernel evaluator state with an untimed sweep
	// first, so this measures the serving steady state. 8 sweeps per run
	// keeps the timed window long enough (hundreds of ms per kernel) that
	// the relative points/sec gate is stable against scheduler noise.
	exploreArgs := []string{
		"test", "-run", "^$",
		"-bench", "^BenchmarkExplore$",
		"-benchtime", "8x", "-benchmem",
		"-count", strconv.Itoa(count),
		".",
	}
	var outBytes []byte
	for _, args := range [][]string{simArgs, tierArgs, exploreArgs} {
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			return Report{}, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
		}
		outBytes = append(outBytes, out...)
	}
	rep := Report{
		Fast:     map[string]KernelBench{},
		Naive:    map[string]KernelBench{},
		FastTier: map[string]KernelBench{},
		Explore:  map[string]KernelBench{},
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		name, kb, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		kernel := name[strings.Index(name, "/")+1:]
		var into map[string]KernelBench
		switch {
		case strings.HasPrefix(name, "BenchmarkLFKNaive/"):
			into = rep.Naive
		case strings.HasPrefix(name, "BenchmarkFastTier/"):
			into = rep.FastTier
		case strings.HasPrefix(name, "BenchmarkExplore/"):
			into = rep.Explore
		case strings.HasPrefix(name, "BenchmarkLFK/"):
			into = rep.Fast
		default:
			continue
		}
		// Best run per kernel: highest simulation rate, or — for the fast
		// tier and explore families, which have no cycle rate — lowest
		// wall time.
		prev, seen := into[kernel]
		better := kb.CyclesPerSec > prev.CyclesPerSec
		if kb.CyclesPerSec == 0 && prev.CyclesPerSec == 0 {
			better = kb.NsPerOp < prev.NsPerOp
		}
		if !seen || better {
			into[kernel] = kb
		}
	}
	if len(rep.Fast) == 0 || len(rep.Naive) == 0 || len(rep.FastTier) == 0 || len(rep.Explore) == 0 {
		return rep, fmt.Errorf("no benchmark lines parsed from go test output:\n%s", outBytes)
	}
	rep.Aggregate = aggregate(rep)
	return rep, nil
}

// parseBenchLine reads one `go test -bench` result line. Values are
// `<number> <unit>` pairs after the iteration count.
func parseBenchLine(line string) (string, KernelBench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", KernelBench{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip -GOMAXPROCS
	}
	var kb KernelBench
	got := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", KernelBench{}, false
		}
		switch f[i+1] {
		case "ns/op":
			kb.NsPerOp = v
			got = true
		case "cycles/sec":
			kb.CyclesPerSec = v
		case "B/op":
			kb.BytesPerOp = v
		case "allocs/op":
			kb.AllocsPerOp = v
		case "points/sec":
			kb.PointsPerSec = v
		case "prune-x":
			kb.PruneRatio = v
		}
	}
	return name, kb, got
}

// aggregate computes whole-sweep rates: per-kernel simulated cycles are
// recovered from rate × time, then totals are divided.
func aggregate(rep Report) Aggregate {
	rate := func(m map[string]KernelBench) (cps, allocs float64) {
		var cycles, ns float64
		for _, kb := range m {
			cycles += kb.CyclesPerSec * kb.NsPerOp / 1e9
			ns += kb.NsPerOp
			allocs += kb.AllocsPerOp
		}
		if ns == 0 {
			return 0, allocs
		}
		return cycles / (ns / 1e9), allocs
	}
	var a Aggregate
	a.FastCyclesPerSec, a.FastAllocs = rate(rep.Fast)
	a.NaiveCyclesPerSec, a.NaiveAllocs = rate(rep.Naive)
	if a.NaiveCyclesPerSec > 0 {
		a.Speedup = a.FastCyclesPerSec / a.NaiveCyclesPerSec
	}
	var simNs, tierNs float64
	for kernel, sim := range rep.Fast {
		tier, ok := rep.FastTier[kernel]
		if !ok || tier.NsPerOp <= 0 {
			continue
		}
		simNs += sim.NsPerOp
		tierNs += tier.NsPerOp
		a.FastTierAllocs += tier.AllocsPerOp
		sp := sim.NsPerOp / tier.NsPerOp
		if a.FastTierMinKernelSpeedup == 0 || sp < a.FastTierMinKernelSpeedup {
			a.FastTierMinKernelSpeedup = sp
		}
	}
	if tierNs > 0 {
		a.FastTierSpeedup = simNs / tierNs
	}
	var explorePoints, exploreNs float64
	for _, kb := range rep.Explore {
		explorePoints += kb.PointsPerSec * kb.NsPerOp / 1e9
		exploreNs += kb.NsPerOp
		if a.ExploreMinKernelPointsPerSec == 0 || kb.PointsPerSec < a.ExploreMinKernelPointsPerSec {
			a.ExploreMinKernelPointsPerSec = kb.PointsPerSec
		}
		if a.ExploreMinPruneRatio == 0 || kb.PruneRatio < a.ExploreMinPruneRatio {
			a.ExploreMinPruneRatio = kb.PruneRatio
		}
	}
	if exploreNs > 0 {
		a.ExplorePointsPerSec = explorePoints / (exploreNs / 1e9)
	}
	return a
}

// gate compares this run against the baseline report.
func gate(rep Report, baseline string, tolerance float64) error {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("no baseline %s; run with -update to create one", baseline)
		}
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baseline, err)
	}
	floor := base.Aggregate.Speedup * (1 - tolerance)
	if rep.Aggregate.Speedup < floor {
		return fmt.Errorf("sim-rate regression: fast/naive speedup %.2fx is below %.2fx (baseline %.2fx - %.0f%%)",
			rep.Aggregate.Speedup, floor, base.Aggregate.Speedup, tolerance*100)
	}
	ceil := base.Aggregate.FastAllocs * (1 + tolerance)
	if base.Aggregate.FastAllocs > 0 && rep.Aggregate.FastAllocs > ceil {
		return fmt.Errorf("allocation regression: fast sweep allocates %.0f objects, baseline %.0f (+%.0f%% allowed)",
			rep.Aggregate.FastAllocs, base.Aggregate.FastAllocs, tolerance*100)
	}
	if rep.Aggregate.FastTierMinKernelSpeedup < fastTierFloor {
		return fmt.Errorf("fast-tier floor broken: worst kernel predicts only %.0fx faster than pooled simulation (floor %.0fx)",
			rep.Aggregate.FastTierMinKernelSpeedup, fastTierFloor)
	}
	if base.Aggregate.FastTierSpeedup > 0 {
		tierFloor := base.Aggregate.FastTierSpeedup * (1 - tolerance)
		if rep.Aggregate.FastTierSpeedup < tierFloor {
			return fmt.Errorf("fast-tier regression: prediction speedup %.0fx is below %.0fx (baseline %.0fx - %.0f%%)",
				rep.Aggregate.FastTierSpeedup, tierFloor, base.Aggregate.FastTierSpeedup, tolerance*100)
		}
	}
	if rep.Aggregate.ExploreMinKernelPointsPerSec < exploreFloor {
		return fmt.Errorf("explore floor broken: worst kernel sweeps only %.0f points/sec (floor %.0f)",
			rep.Aggregate.ExploreMinKernelPointsPerSec, exploreFloor)
	}
	if rep.Aggregate.ExploreMinPruneRatio < pruneFloor {
		return fmt.Errorf("explore prune floor broken: worst kernel simulates 1 in %.1f points (floor 1 in %.0f)",
			rep.Aggregate.ExploreMinPruneRatio, pruneFloor)
	}
	if base.Aggregate.ExplorePointsPerSec > 0 {
		expFloor := base.Aggregate.ExplorePointsPerSec * (1 - tolerance)
		if rep.Aggregate.ExplorePointsPerSec < expFloor {
			return fmt.Errorf("explore regression: sweep rate %.0f points/sec is below %.0f (baseline %.0f - %.0f%%)",
				rep.Aggregate.ExplorePointsPerSec, expFloor, base.Aggregate.ExplorePointsPerSec, tolerance*100)
		}
	}
	fmt.Printf("gate ok: sim speedup %.2fx (baseline %.2fx, floor %.2fx), sweep allocs %.0f (ceiling %.0f), fast-tier speedup %.0fx (min kernel %.0fx, floor %.0fx), explore %.0f points/sec (min kernel %.0f, floor %.0f; prune %.0fx)\n",
		rep.Aggregate.Speedup, base.Aggregate.Speedup, floor, rep.Aggregate.FastAllocs, ceil,
		rep.Aggregate.FastTierSpeedup, rep.Aggregate.FastTierMinKernelSpeedup, fastTierFloor,
		rep.Aggregate.ExplorePointsPerSec, rep.Aggregate.ExploreMinKernelPointsPerSec, exploreFloor,
		rep.Aggregate.ExploreMinPruneRatio)
	return nil
}

func writeReport(path string, rep Report) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func printReport(rep Report) {
	kernels := make([]string, 0, len(rep.Fast))
	for k := range rep.Fast {
		kernels = append(kernels, k)
	}
	sort.Slice(kernels, func(i, j int) bool {
		return kernelOrd(kernels[i]) < kernelOrd(kernels[j])
	})
	fmt.Printf("%-8s %15s %15s %10s %12s %12s %10s %12s %9s\n",
		"kernel", "fast cyc/s", "naive cyc/s", "speedup", "allocs/op", "tier ns/op", "tier-x", "explore p/s", "prune-x")
	for _, k := range kernels {
		f, n, t, e := rep.Fast[k], rep.Naive[k], rep.FastTier[k], rep.Explore[k]
		sp := 0.0
		if n.CyclesPerSec > 0 {
			sp = f.CyclesPerSec / n.CyclesPerSec
		}
		tsp := 0.0
		if t.NsPerOp > 0 {
			tsp = f.NsPerOp / t.NsPerOp
		}
		fmt.Printf("%-8s %15.0f %15.0f %9.1fx %12.0f %12.0f %9.0fx %12.0f %8.0fx\n",
			k, f.CyclesPerSec, n.CyclesPerSec, sp, f.AllocsPerOp, t.NsPerOp, tsp, e.PointsPerSec, e.PruneRatio)
	}
	a := rep.Aggregate
	fmt.Printf("%-8s %15.0f %15.0f %9.1fx %12.0f %12s %9.0fx %12.0f %8.0fx\n",
		"all", a.FastCyclesPerSec, a.NaiveCyclesPerSec, a.Speedup, a.FastAllocs, "", a.FastTierSpeedup,
		a.ExplorePointsPerSec, a.ExploreMinPruneRatio)
}

// kernelOrd sorts lfk2 before lfk10.
func kernelOrd(name string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(name, "lfk"))
	if err != nil {
		return 1 << 20
	}
	return n
}
