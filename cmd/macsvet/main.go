// Command macsvet runs the repo's custom static analyzers (see
// internal/macsvet): exhaustive switches over marked enums, the
// opcode/timing-table invariant of internal/isa, the fast-tier/simulator
// stall-taxonomy bijection (and a named entry for every serving tier),
// the dependence-edge taxonomy handled exhaustively in the critical-path
// solver, no naked panics in packages reachable from service request
// handling, and Must* panicking helpers confined to test files.
//
// Exit codes: 0 clean, 1 findings, 2 analysis failure. Every finding
// prints with a real file:line:col anchor.
//
// Usage:
//
//	macsvet [./...]
//
// It always analyzes the whole module; the optional argument names the
// module root (a trailing /... is accepted and ignored, so the familiar
// `go run ./cmd/macsvet ./...` invocation works). Findings print one per
// line as file:line:col: rule: message; any finding exits non-zero.
package main

import (
	"fmt"
	"os"
	"strings"

	"macs/internal/macsvet"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = strings.TrimSuffix(os.Args[1], "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	}
	findings, err := macsvet.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macsvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "macsvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
