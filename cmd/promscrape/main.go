// Command promscrape fetches a Prometheus text-exposition endpoint and
// validates it against the format's structural rules (HELP/TYPE
// ordering, family grouping, label escaping, histogram bucket
// monotonicity, +Inf/_count agreement) using the same parser the unit
// tests run against the exposition writer. CI points it at a live
// macsd's /metrics?format=prom as the observability gate.
//
// Usage:
//
//	promscrape [-require macsd_requests_total,...] URL|FILE
//
// The argument is fetched over HTTP when it starts with http:// or
// https://, otherwise read as a file (macsload -prom-out output, for
// example). Exit status: 0 when the document parses clean and every
// -require family is present, 1 on a violation, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"macs/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	quiet := flag.Bool("q", false, "suppress the per-family summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: promscrape [-require fam1,fam2] [-q] URL|FILE")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *require, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "promscrape:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, target, require string, quiet bool) error {
	text, err := fetch(target)
	if err != nil {
		return err
	}
	fams, err := obs.ParseProm(text)
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	byName := make(map[string]obs.PromFamily, len(fams))
	samples := 0
	for _, f := range fams {
		byName[f.Name] = f
		samples += len(f.Samples)
	}
	if !quiet {
		fmt.Fprintf(w, "%s: %d families, %d samples, format valid\n", target, len(fams), samples)
		for _, f := range fams {
			fmt.Fprintf(w, "  %-45s %-9s %d sample(s)\n", f.Name, f.Type, len(f.Samples))
		}
	}
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := byName[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required families missing: %s", strings.Join(missing, ", "))
	}
	return nil
}

func fetch(target string) (string, error) {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		resp, err := http.Get(target)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("%s: status %s", target, resp.Status)
		}
		return string(b), nil
	}
	b, err := os.ReadFile(target)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
