// Command lfkbench regenerates the tables and figures of the paper's
// evaluation (Boyd & Davidson, ISCA 1993) on the simulated Convex C-240.
//
// Usage:
//
//	lfkbench              # everything
//	lfkbench -table 4     # one table (1-5)
//	lfkbench -figure 3    # one figure (1-3)
//	lfkbench -parallel 0  # fan each sweep out over all cores
package main

import (
	"flag"
	"fmt"
	"os"

	"macs/internal/experiments"
	"macs/internal/report"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8; 6 extension, 7 co-simulation, 8 machines); 0 = all")
	figure := flag.Int("figure", 0, "regenerate one figure (1-3); 0 = all")
	parallel := flag.Int("parallel", 1, "kernels simulated concurrently per sweep; 0 = one per core")
	flag.Parse()

	cfg := experiments.Default()
	cfg.Parallel = *parallel
	if *parallel == 0 {
		cfg.Parallel = -1 // experiments: negative = one worker per core
	}
	all := *table == 0 && *figure == 0
	if err := run(cfg, *table, *figure, all); err != nil {
		fmt.Fprintln(os.Stderr, "lfkbench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, table, figure int, all bool) error {
	if all || table == 1 {
		res, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Table1(res))
	}
	if all || table == 2 {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Table2(rows))
	}
	if all || table == 3 {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Table3(rows))
	}
	if all || table == 4 {
		t4, err := experiments.RunTable4(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Table4(t4))
	}
	if all || table == 5 {
		rows, err := experiments.RunTable5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Table5(rows))
	}
	if all || figure == 1 {
		hs, err := experiments.Figure1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Figure1(hs))
	}
	if all || figure == 2 {
		fig, err := experiments.RunFigure2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Figure2(fig))
	}
	if all || figure == 3 {
		rows, slow, err := experiments.RunFigure3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Figure3(rows, slow))
	}
	if all || table == 6 {
		rows, err := experiments.RunExtended(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Extended(rows))
	}
	if all || table == 7 {
		rows, err := experiments.RunClusterContention(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.Cluster(rows))
	}
	if all || table == 8 {
		rows, err := experiments.RunMachineComparison()
		if err != nil {
			return err
		}
		fmt.Println(report.MachinesTable(rows))
	}
	return nil
}
