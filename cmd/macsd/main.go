// Command macsd is the MACS analysis daemon: a long-lived HTTP/JSON
// server over the compile → bound → simulate → A/X → diagnose pipeline,
// with a bounded worker pool, a content-addressed result cache with
// singleflight deduplication, and JSON metrics.
//
// Usage:
//
//	macsd [-addr :8723] [-workers N] [-queue N] [-cache N]
//	      [-cache-dir DIR] [-timeout 30s] [-drain 30s]
//	      [-log text|json] [-tier exact] [-pprof]
//	      [-runtime-sample 10s]
//
// -pprof mounts net/http/pprof under /debug/pprof/ on the same listener
// and turns on the periodic Go-runtime sampler (heap, GC pauses,
// goroutines), whose latest sample rides /metrics in both the JSON and
// Prometheus formats. -runtime-sample adjusts the sampling interval.
//
// With -cache-dir set, results also persist to a disk-backed segment
// store keyed by the same content addresses as the in-memory cache, so
// a restarted daemon serves yesterday's kernels without re-running the
// pipeline. Segments self-invalidate when the daemon's pipeline
// configuration (or the persisted schema) changes.
//
// Endpoints:
//
//	POST /v1/analyze   {"source": "...", "iterations": N, "prime": {...}};
//	                   ?tier=exact|fast|auto picks the serving tier
//	                   (fast: analytical prediction in microseconds;
//	                   auto: fast answer now, exact verification async
//	                   with divergence tracked on /metrics)
//	POST /v1/batch     {"items": [{...}, ...]}; per-kernel results
//	                   stream back as NDJSON in completion order
//	POST /v1/bound     {"source": "..."}
//	POST /v1/ax        {"source": "...", "prime": {...}}
//	GET  /v1/lfk/{id}  one case-study kernel (1,2,3,4,6,7,8,9,10,12)
//	GET  /v1/trace/{id} one request trace as Chrome trace_event JSON
//	GET  /healthz      liveness
//	GET  /metrics      counters, cache/queue stats, latency histograms,
//	                   fast-tier divergence per kernel class
//	                   (?format=prom: Prometheus text exposition)
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight and queued jobs, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // handlers registered on DefaultServeMux; exposed only with -pprof
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"macs"
	"macs/internal/service"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent pipeline executions")
	queue := flag.Int("queue", 2*runtime.NumCPU(), "pending-job queue depth (beyond it: 429)")
	cacheSize := flag.Int("cache", 512, "result cache capacity, entries")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory (empty: memory only)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout, queue wait included")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	logFormat := flag.String("log", "text", "log format: text or json")
	tier := flag.String("tier", "exact", "default serving tier for requests that name none: exact, fast or auto")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ and enable the runtime sampler")
	runtimeSample := flag.Duration("runtime-sample", 10*time.Second, "Go-runtime sampling interval (with -pprof; 0 disables)")
	flag.Parse()

	if _, err := macs.ParseTier(*tier); err != nil {
		fmt.Fprintln(os.Stderr, "macsd:", err)
		os.Exit(2)
	}

	var handler slog.Handler
	if *logFormat == "json" {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	cfg := service.Config{
		Workers:        *workers,
		QueueSize:      *queue,
		CacheSize:      *cacheSize,
		CacheDir:       *cacheDir,
		RequestTimeout: *timeout,
		DefaultTier:    *tier,
		Logger:         log,
	}
	if *pprofOn {
		cfg.RuntimeSample = *runtimeSample
	}
	svc := service.New(cfg)
	var httpHandler http.Handler = service.NewHandler(svc)
	if *pprofOn {
		// net/http/pprof registers on http.DefaultServeMux at import; route
		// only its prefix there so the API mux keeps everything else.
		root := http.NewServeMux()
		root.Handle("/debug/pprof/", http.DefaultServeMux)
		root.Handle("/", httpHandler)
		httpHandler = root
		log.Info("pprof enabled", "path", "/debug/pprof/", "runtime_sample", *runtimeSample)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpHandler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("macsd listening", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cacheSize)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "macsd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Info("shutdown: draining", "budget", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Warn("shutdown: server", "err", err)
		}
		svc.Close() // wait for queued + in-flight jobs
		log.Info("shutdown: complete")
	}
}
