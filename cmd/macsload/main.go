// Command macsload is a load generator for macsd. It drives the
// /v1/analyze endpoint with the case-study Livermore kernels (real
// sources, real priming data), first one cold pass over the distinct
// kernels, then a hot phase of repeated requests, and reports req/s,
// latency and the server's cache statistics — a direct measurement of
// how much the content-addressed cache buys.
//
// Usage:
//
//	macsload [-addr http://localhost:8723] [-n 200] [-c 8] [-kernels 4]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"macs"
	"macs/internal/service"
)

func main() {
	addr := flag.String("addr", "http://localhost:8723", "macsd base URL")
	n := flag.Int("n", 200, "hot-phase request count")
	c := flag.Int("c", 8, "concurrent clients")
	nk := flag.Int("kernels", 4, "distinct kernels in the workload (max 10)")
	flag.Parse()

	if err := run(*addr, *n, *c, *nk); err != nil {
		fmt.Fprintln(os.Stderr, "macsload:", err)
		os.Exit(1)
	}
}

func run(addr string, n, c, nk int) error {
	kernels := macs.Kernels()
	if nk < 1 {
		nk = 1
	}
	if nk > len(kernels) {
		nk = len(kernels)
	}
	reqs := make([][]byte, nk)
	for i, k := range kernels[:nk] {
		body, err := json.Marshal(service.AnalyzeRequest{
			Source:     k.Source,
			Iterations: int64(k.Elements),
			Prime: service.Priming{
				Ints:   k.Ints,
				Reals:  k.Reals,
				Arrays: k.Arrays,
			},
		})
		if err != nil {
			return err
		}
		reqs[i] = body
	}

	client := &http.Client{Timeout: 60 * time.Second}

	// Cold pass: every distinct kernel once, sequentially.
	coldStart := time.Now()
	for i, body := range reqs {
		if _, err := analyze(client, addr, body); err != nil {
			return fmt.Errorf("cold pass, kernel %d: %w", kernels[i].ID, err)
		}
	}
	coldDur := time.Since(coldStart)
	fmt.Printf("cold: %d kernels in %v (%.1f req/s)\n",
		nk, coldDur.Round(time.Millisecond), float64(nk)/coldDur.Seconds())

	// Hot phase: n requests over the same kernels from c clients.
	var (
		idx     atomic.Int64
		rejects atomic.Int64
		mu      sync.Mutex
		lats    []time.Duration
	)
	hotStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := idx.Add(1) - 1
				if i >= int64(n) {
					return
				}
				t0 := time.Now()
				status, err := analyze(client, addr, reqs[i%int64(nk)])
				if err != nil {
					fmt.Fprintln(os.Stderr, "macsload:", err)
					continue
				}
				if status == http.StatusTooManyRequests {
					rejects.Add(1)
					time.Sleep(50 * time.Millisecond) // honor backpressure
					continue
				}
				mu.Lock()
				lats = append(lats, time.Since(t0))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	hotDur := time.Since(hotStart)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("hot:  %d requests, %d clients in %v (%.1f req/s, %d rejected)\n",
		len(lats), c, hotDur.Round(time.Millisecond),
		float64(len(lats))/hotDur.Seconds(), rejects.Load())
	if len(lats) > 0 {
		fmt.Printf("      p50 %v  p90 %v  p99 %v  max %v\n",
			pct(lats, 50).Round(time.Microsecond), pct(lats, 90).Round(time.Microsecond),
			pct(lats, 99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}

	// Server-side view: cache effectiveness from /metrics.
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	fmt.Printf("server: cache %d/%d hit (%.1f%%), %d evictions, %d pipeline runs, %d deduped\n",
		snap.Cache.Hits, snap.Cache.Hits+snap.Cache.Misses, 100*snap.Cache.HitRate,
		snap.Cache.Evictions, snap.PipelineRuns, snap.DedupShared)
	return nil
}

// analyze POSTs one request and returns the HTTP status. Non-2xx and
// non-429 statuses are errors.
func analyze(client *http.Client, addr string, body []byte) (int, error) {
	resp, err := client.Post(addr+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		return resp.StatusCode, fmt.Errorf("status %s", resp.Status)
	}
	return resp.StatusCode, nil
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := p * len(sorted) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
