// Command macsload is a load harness for macsd. It drives the
// /v1/analyze endpoint (or /v1/batch with -batch) with the case-study
// Livermore kernels (real sources, real priming data), first one cold
// pass over the distinct kernels, then a hot phase with a fixed request
// budget, and reports attempted/completed/error counts, req/s, latency
// percentiles and the server's cache statistics — a direct measurement
// of how much the content-addressed cache buys.
//
// The hot phase issues exactly -n requests: a 429 from the server's
// backpressure gate retries the same request after a short sleep (it is
// load the server asked to defer, not load to drop), and transport or
// server errors are counted and reported separately instead of silently
// shrinking the run.
//
// With -slo-p50 / -slo-p99 set, macsload becomes a gate: it exits 1
// when the measured percentile exceeds its threshold or when the run is
// incomplete (any request errored), which is what CI runs against the
// LFK workload.
//
// Usage:
//
//	macsload [-addr http://localhost:8723] [-n 200] [-c 8] [-kernels 4]
//	         [-tier exact|fast|auto] [-batch B]
//	         [-slo-p50 5ms] [-slo-p99 50ms]
//	         [-hist] [-prom-out FILE]
//
// -hist prints the full hot-phase latency histogram (cumulative counts
// per bucket with a bar chart) instead of just the percentiles.
// -prom-out writes the client-side results in the Prometheus text
// exposition format to FILE — drop it in a node_exporter textfile
// collector directory to scrape a load run's outcome.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"macs"
	"macs/internal/obs"
	"macs/internal/service"
)

func main() {
	addr := flag.String("addr", "http://localhost:8723", "macsd base URL")
	n := flag.Int("n", 200, "hot-phase request budget (each is issued exactly once)")
	c := flag.Int("c", 8, "concurrent clients")
	nk := flag.Int("kernels", 4, "distinct kernels in the workload (max 10)")
	tier := flag.String("tier", "", "serving tier for every request: exact, fast or auto (server default when empty)")
	batch := flag.Int("batch", 0, "batch mode: items per /v1/batch request (0 = single /v1/analyze requests)")
	sloP50 := flag.Duration("slo-p50", 0, "fail (exit 1) if hot-phase p50 exceeds this (0 disables)")
	sloP99 := flag.Duration("slo-p99", 0, "fail (exit 1) if hot-phase p99 exceeds this (0 disables)")
	hist := flag.Bool("hist", false, "print the full hot-phase latency histogram")
	promOut := flag.String("prom-out", "", "write client-side results as a Prometheus textfile to this path")
	flag.Parse()

	if err := run(*addr, *n, *c, *nk, *tier, *batch, *sloP50, *sloP99, *hist, *promOut); err != nil {
		fmt.Fprintln(os.Stderr, "macsload:", err)
		os.Exit(1)
	}
}

// counters aggregates the hot phase. attempted is the fixed budget that
// was actually issued; completed are requests that got a 200 (after any
// 429 retries); errored is everything else. attempted == completed +
// errored at the end of a run.
type counters struct {
	attempted atomic.Int64
	completed atomic.Int64
	errored   atomic.Int64
	retries   atomic.Int64 // 429s honored with a retry of the same request

	mu   sync.Mutex
	lats []time.Duration
}

func (ct *counters) record(d time.Duration) {
	ct.mu.Lock()
	ct.lats = append(ct.lats, d)
	ct.mu.Unlock()
}

func run(addr string, n, c, nk int, tier string, batch int, sloP50, sloP99 time.Duration, hist bool, promOut string) error {
	kernels := macs.Kernels()
	if nk < 1 {
		nk = 1
	}
	if nk > len(kernels) {
		nk = len(kernels)
	}
	reqs := make([]service.AnalyzeRequest, nk)
	bodies := make([][]byte, nk)
	for i, k := range kernels[:nk] {
		reqs[i] = service.AnalyzeRequest{
			Source:     k.Source,
			Iterations: int64(k.Elements),
			Prime: service.Priming{
				Ints:   k.Ints,
				Reals:  k.Reals,
				Arrays: k.Arrays,
			},
			Tier: tier,
		}
		body, err := json.Marshal(reqs[i])
		if err != nil {
			return err
		}
		bodies[i] = body
	}

	client := &http.Client{Timeout: 60 * time.Second}

	// Cold pass: every distinct kernel once, sequentially. 429s retry —
	// the cold pass must warm all nk kernels or the hot phase measures
	// the wrong thing.
	coldStart := time.Now()
	for i, body := range bodies {
		for {
			status, err := analyze(client, addr, body)
			if err != nil {
				return fmt.Errorf("cold pass, kernel %d: %w", kernels[i].ID, err)
			}
			if status == http.StatusTooManyRequests {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			break
		}
	}
	coldDur := time.Since(coldStart)
	fmt.Printf("cold: %d kernels in %v (%.1f req/s)\n",
		nk, coldDur.Round(time.Millisecond), float64(nk)/coldDur.Seconds())

	// Hot phase: exactly n requests over the same kernels from c clients.
	var (
		ct  counters
		idx atomic.Int64
	)
	hotStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := idx.Add(1) - 1
				if i >= int64(n) {
					return
				}
				ct.attempted.Add(1)
				if batch > 0 {
					hotBatch(client, addr, tier, bodies, reqs, int(i), batch, &ct)
				} else {
					hotOne(client, addr, bodies[i%int64(len(bodies))], &ct)
				}
			}
		}()
	}
	wg.Wait()
	hotDur := time.Since(hotStart)

	ct.mu.Lock()
	lats := ct.lats
	ct.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	unit := "requests"
	if batch > 0 {
		unit = fmt.Sprintf("batches of %d", batch)
	}
	fmt.Printf("hot:  %d/%d %s completed, %d errors, %d clients in %v (%.1f req/s, %d retried after 429)\n",
		ct.completed.Load(), ct.attempted.Load(), unit, ct.errored.Load(), c,
		hotDur.Round(time.Millisecond),
		float64(ct.completed.Load())/hotDur.Seconds(), ct.retries.Load())
	p50, p99 := pct(lats, 50), pct(lats, 99)
	if len(lats) > 0 {
		fmt.Printf("      p50 %v  p90 %v  p99 %v  max %v\n",
			p50.Round(time.Microsecond), pct(lats, 90).Round(time.Microsecond),
			p99.Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	if hist && len(lats) > 0 {
		printHist(os.Stdout, lats)
	}
	if promOut != "" {
		if err := writePromText(promOut, &ct, lats, hotDur); err != nil {
			return fmt.Errorf("prom-out: %w", err)
		}
		fmt.Printf("wrote Prometheus textfile: %s\n", promOut)
	}

	// Server-side view: cache effectiveness from /metrics.
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	fmt.Printf("server: cache %d/%d hit (%.1f%%), %d evictions, %d pipeline runs, %d deduped\n",
		snap.Cache.Hits, snap.Cache.Hits+snap.Cache.Misses, 100*snap.Cache.HitRate,
		snap.Cache.Evictions, snap.PipelineRuns, snap.DedupShared)
	if snap.Persistent.Enabled {
		fmt.Printf("        persistent cache: %d entries, %d hits, %d writes\n",
			snap.Persistent.Entries, snap.Persistent.Hits, snap.Persistent.Writes)
	}

	// SLO gate.
	var breaches []string
	if errs := ct.errored.Load(); errs > 0 && (sloP50 > 0 || sloP99 > 0) {
		breaches = append(breaches, fmt.Sprintf("incomplete run: %d of %d requests errored", errs, ct.attempted.Load()))
	}
	if sloP50 > 0 && p50 > sloP50 {
		breaches = append(breaches, fmt.Sprintf("p50 %v exceeds SLO %v", p50.Round(time.Microsecond), sloP50))
	}
	if sloP99 > 0 && p99 > sloP99 {
		breaches = append(breaches, fmt.Sprintf("p99 %v exceeds SLO %v", p99.Round(time.Microsecond), sloP99))
	}
	if len(breaches) > 0 {
		for _, b := range breaches {
			fmt.Fprintln(os.Stderr, "macsload: SLO:", b)
		}
		return fmt.Errorf("%d SLO breach(es)", len(breaches))
	}
	return nil
}

// hotOne issues one /v1/analyze request, retrying the same request
// after a 429 so the budget is spent, never dropped.
func hotOne(client *http.Client, addr string, body []byte, ct *counters) {
	for {
		t0 := time.Now()
		status, err := analyze(client, addr, body)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsload:", err)
			ct.errored.Add(1)
			return
		}
		if status == http.StatusTooManyRequests {
			ct.retries.Add(1)
			time.Sleep(50 * time.Millisecond) // honor backpressure, then retry
			continue
		}
		ct.record(time.Since(t0))
		ct.completed.Add(1)
		return
	}
}

// hotBatch issues one /v1/batch request of size items, reading the
// NDJSON stream to completion. Latency covers the whole stream (the
// last kernel's completion); a per-item error inside the stream counts
// the batch as errored.
func hotBatch(client *http.Client, addr, tier string, bodies [][]byte, reqs []service.AnalyzeRequest, seq, size int, ct *counters) {
	items := make([]service.AnalyzeRequest, size)
	for j := 0; j < size; j++ {
		items[j] = reqs[(seq*size+j)%len(reqs)]
	}
	body, err := json.Marshal(service.BatchRequest{Items: items})
	if err != nil {
		fmt.Fprintln(os.Stderr, "macsload:", err)
		ct.errored.Add(1)
		return
	}
	for {
		t0 := time.Now()
		lines, status, err := postBatch(client, addr, body, size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsload:", err)
			ct.errored.Add(1)
			return
		}
		if status == http.StatusTooManyRequests {
			ct.retries.Add(1)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if lines != size {
			fmt.Fprintf(os.Stderr, "macsload: batch returned %d clean results, want %d\n", lines, size)
			ct.errored.Add(1)
			return
		}
		ct.record(time.Since(t0))
		ct.completed.Add(1)
		return
	}
}

// postBatch POSTs one batch and counts the clean NDJSON result lines as
// they arrive. Error lines (per-item failures) are reported but not
// counted as clean.
func postBatch(client *http.Client, addr string, body []byte, size int) (int, int, error) {
	resp, err := client.Post(addr+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return 0, resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return 0, resp.StatusCode, fmt.Errorf("batch status %s", resp.Status)
	}
	clean := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		var item service.BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			return clean, resp.StatusCode, fmt.Errorf("bad batch line: %w", err)
		}
		if item.Error != "" {
			fmt.Fprintf(os.Stderr, "macsload: batch item %d: %s\n", item.Index, item.Error)
			continue
		}
		clean++
	}
	if err := sc.Err(); err != nil {
		return clean, resp.StatusCode, err
	}
	return clean, resp.StatusCode, nil
}

// analyze POSTs one request and returns the HTTP status. Non-2xx and
// non-429 statuses are errors.
func analyze(client *http.Client, addr string, body []byte) (int, error) {
	resp, err := client.Post(addr+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		return resp.StatusCode, fmt.Errorf("status %s", resp.Status)
	}
	return resp.StatusCode, nil
}

// histBucketsMS bound the client-side latency histogram, log-spaced from
// 100µs to 5s.
var histBucketsMS = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// bucketize folds sorted latencies into cumulative counts per histogram
// bucket (one extra for +Inf).
func bucketize(sorted []time.Duration) []int64 {
	cum := make([]int64, len(histBucketsMS)+1)
	for i, le := range histBucketsMS {
		ms := time.Duration(le * float64(time.Millisecond))
		cum[i] = int64(sort.Search(len(sorted), func(j int) bool { return sorted[j] > ms }))
	}
	cum[len(histBucketsMS)] = int64(len(sorted))
	return cum
}

// printHist renders the full latency distribution: one line per bucket
// with its cumulative count, share of the total and a bar.
func printHist(w io.Writer, sorted []time.Duration) {
	cum := bucketize(sorted)
	total := int64(len(sorted))
	fmt.Fprintln(w, "      latency histogram (cumulative):")
	prev := int64(0)
	for i := range cum {
		label := "+Inf"
		if i < len(histBucketsMS) {
			label = fmt.Sprintf("%gms", histBucketsMS[i])
		}
		inBucket := cum[i] - prev
		prev = cum[i]
		if cum[i] == 0 {
			continue // nothing at or below this bound yet
		}
		bar := strings.Repeat("#", int(40*inBucket/total))
		fmt.Fprintf(w, "      <= %8s %6d (%5.1f%%) %s\n", label, cum[i], 100*float64(cum[i])/float64(total), bar)
		if cum[i] == total && i >= len(histBucketsMS) {
			break
		}
	}
}

// writePromText writes the client-side run results in the Prometheus
// text exposition format (textfile-collector shaped), self-validated
// with the same parser the CI scrape gate uses.
func writePromText(path string, ct *counters, sorted []time.Duration, hotDur time.Duration) error {
	w := obs.NewPromWriter()
	w.Counter("macsload_requests_total", "Hot-phase requests by outcome.",
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "completed"}}, Value: float64(ct.completed.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "errored"}}, Value: float64(ct.errored.Load())},
	)
	w.Counter("macsload_retries_total", "Requests retried after a 429.",
		obs.Sample{Value: float64(ct.retries.Load())})
	w.Gauge("macsload_hot_duration_seconds", "Wall-clock duration of the hot phase.",
		obs.Sample{Value: hotDur.Seconds()})
	var sum float64
	for _, d := range sorted {
		sum += d.Seconds()
	}
	h := obs.HistSample{Count: int64(len(sorted)), Sum: sum}
	for i, cumCount := range bucketize(sorted) {
		if i >= len(histBucketsMS) {
			break // +Inf: the writer appends it from Count
		}
		h.Buckets = append(h.Buckets, obs.Bucket{LE: histBucketsMS[i] / 1e3, CumCount: cumCount})
	}
	w.Histogram("macsload_request_duration_seconds", "Hot-phase request latency.", h)
	if _, err := obs.ParseProm(string(w.Bytes())); err != nil {
		return fmt.Errorf("generated exposition invalid: %w", err)
	}
	return os.WriteFile(path, w.Bytes(), 0o644)
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := p * len(sorted) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
