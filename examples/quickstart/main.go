// Quickstart: compile a small kernel, compute its MACS bounds hierarchy,
// run it on the simulated Convex C-240 and compare measured performance
// with the bounds — the whole pipeline of the paper in a dozen lines.
package main

import (
	"fmt"
	"log"

	"macs"
)

const src = `
PROGRAM SAXPY
REAL X(2048), Y(2048), A
INTEGER N, K
DO K = 1, N
  Y(K) = Y(K) + A*X(K)
ENDDO
END
`

func main() {
	const n = 2000
	res, err := macs.AnalyzeSource(src, n, func(c *macs.CPU) error {
		m := c.Memory()
		nb, _ := m.SymbolAddr("d_N")
		if err := m.WriteI64(nb, n); err != nil {
			return err
		}
		ab, _ := m.SymbolAddr("d_A")
		if err := m.WriteF64(ab, 2.5); err != nil {
			return err
		}
		xb, _ := m.SymbolAddr("d_X")
		yb, _ := m.SymbolAddr("d_Y")
		for i := 0; i < n; i++ {
			if err := m.WriteF64(xb+int64(i*8), float64(i)); err != nil {
				return err
			}
			if err := m.WriteF64(yb+int64(i*8), 1.0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SAXPY on the simulated Convex C-240")
	fmt.Println("-----------------------------------")
	fmt.Print(res.Report())
	fmt.Println()
	fmt.Println("Compiled inner loop:")
	fmt.Print(res.Program.String())

	// The gap between each pair of levels tells you where time goes:
	// MA->MAC is compiler-inserted work, MAC->MACS is schedule effects
	// (startup bubbles, refresh), MACS->measured is everything unmodeled.
	a := res.Analysis
	fmt.Printf("\ngap analysis: compiler +%.3f CPL, schedule +%.3f CPL, unmodeled +%.3f CPL\n",
		a.TMAC-a.TMA, a.MACS.CPL-a.TMAC, res.MeasuredCPL-a.MACS.CPL)
}
