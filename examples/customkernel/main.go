// Customkernel: bring your own loop. This example writes a small
// wave-propagation stencil in the Fortran subset, compiles it, inspects
// the chime structure the machine will execute, computes the full bounds
// hierarchy, and runs the A/X decomposition to locate the bottleneck —
// exactly the methodology §4.4 of the paper applies to the LFKs.
package main

import (
	"fmt"
	"log"

	"macs"
)

// A 5-point smoothing stencil with a scaling: 4 adds, 2 multiplies,
// reading one array at five offsets (one reused stream for MA).
const src = `
PROGRAM WAVE
REAL U(4096), OUT(4096)
REAL C1, C2
INTEGER N, K
DO K = 3, N
  OUT(K) = C1*U(K) + C2*(U(K-2) + U(K-1) + U(K+1) + U(K+2))
ENDDO
END
`

func main() {
	const n = 3000
	res, err := macs.AnalyzeSource(src, n-2, func(c *macs.CPU) error {
		m := c.Memory()
		nb, _ := m.SymbolAddr("d_N")
		if err := m.WriteI64(nb, n); err != nil {
			return err
		}
		for name, v := range map[string]float64{"d_C1": 0.5, "d_C2": 0.125} {
			b, _ := m.SymbolAddr(name)
			if err := m.WriteF64(b, v); err != nil {
				return err
			}
		}
		ub, _ := m.SymbolAddr("d_U")
		for i := 0; i < n+4; i++ {
			if err := m.WriteF64(ub+int64(i*8), float64(i%17)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Custom kernel: 5-point stencil")
	fmt.Println("------------------------------")
	fmt.Print(res.Report())

	a := res.Analysis
	fmt.Printf("\nchime structure (%d chimes):\n", len(a.MACS.Chimes))
	for i, ch := range a.MACS.Chimes {
		fmt.Printf("  chime %d (%d members, Zmax=%.2f, bubbles=%d):\n", i+1, len(ch.Members), ch.ZMax, ch.SumB)
		for _, in := range ch.Members {
			fmt.Printf("      %s\n", in)
		}
	}

	// A/X decomposition: is the loop memory- or compute-bound?
	m, err := macs.MeasureAX(res.Program, macs.DefaultVMConfig(), func(c *macs.CPU) error {
		nb, _ := c.Memory().SymbolAddr("d_N")
		return c.Memory().WriteI64(nb, n)
	})
	if err != nil {
		log.Fatal(err)
	}
	iters := float64(n - 2)
	ta, tx := float64(m.TA)/iters, float64(m.TX)/iters
	fmt.Printf("\nA/X: t_a = %.3f CPL (access), t_x = %.3f CPL (execute)\n", ta, tx)
	switch {
	case ta > 1.2*tx:
		fmt.Println("=> memory-bound: the MA->MAC load gap is where to optimize")
	case tx > 1.2*ta:
		fmt.Println("=> compute-bound: the FP pipes are the bottleneck")
	default:
		fmt.Println("=> balanced: access and execute overlap well")
	}
}
