// Chaining: reproduce the paper's Figure 2 — a chained ld/add/mul chime
// finishing in ~162 cycles where the unchained equivalent needs ~422, and
// the steady-state chime cost of VL + bubbles — then sweep the vector
// length to show where chaining pays off.
package main

import (
	"fmt"
	"log"

	"macs"
	"macs/internal/experiments"
	"macs/internal/report"
)

func main() {
	fig, err := experiments.RunFigure2(experiments.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Figure2(fig))

	// Sweep VL: startup dominates short vectors, streaming long ones.
	fmt.Println("\nVL sweep of the chained chime (cycles, cycles/element):")
	for _, vl := range []int{8, 16, 32, 64, 128} {
		cycles, err := chainedChime(vl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  VL=%3d  %4d cycles  %.2f cycles/element\n",
			vl, cycles, float64(cycles)/float64(vl))
	}
}

func chainedChime(vl int) (int64, error) {
	src := fmt.Sprintf(`
.data a 2048
	mov #8,vs
	mov #%d,s0
	mov s0,vl
	ld.l a(a0),v0
	add.d v0,v1,v2
	mul.d v2,v3,v5
`, vl)
	p, err := macs.ParseAsm(src)
	if err != nil {
		return 0, err
	}
	cfg := macs.DefaultVMConfig()
	cfg.RefreshStalls = false
	cpu := macs.NewCPU(cfg)
	if err := cpu.Load(p); err != nil {
		return 0, err
	}
	st, err := cpu.Run()
	if err != nil {
		return 0, err
	}
	return st.Cycles, nil
}
