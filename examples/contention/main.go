// Contention: the paper's §4.2 multi-process study. Four CPUs share the
// 32-bank memory; four copies of the same executable fall into lockstep
// (5-10% degradation) while four different programs contend much harder
// (one access per 56-64 ns instead of 40 ns). The derived slowdown then
// drives the Figure 3 "multiple process" bars for every kernel.
package main

import (
	"fmt"
	"log"

	"macs/internal/experiments"
	"macs/internal/mem"
	"macs/internal/report"
)

func main() {
	cfg := mem.DefaultConfig()

	fmt.Println("Memory contention on the shared 32-bank memory")
	fmt.Println("----------------------------------------------")
	for _, streams := range []int{1, 2, 3, 4} {
		lock := mem.ContentionSlowdown(cfg, streams, false, 4000)
		diff := mem.ContentionSlowdown(cfg, streams, true, 4000)
		fmt.Printf("  %d CPUs: lockstep (same executable) %.2fx, different programs %.2fx\n",
			streams, lock, diff)
	}
	slow := mem.ContentionSlowdown(cfg, 4, true, 4000)
	fmt.Printf("\nEffective access interval under full load: %.1f ns (paper: 56-64 ns; peak 40 ns)\n\n",
		40*slow)

	ecfg := experiments.Default()
	rows, used, err := experiments.RunFigure3(ecfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Figure3(rows, used))
}
