// Decomposition: the paper's proposed "D" degree of freedom (§3.1) in
// action. Summing a row of a matrix whose leading dimension is a power
// of two makes every vector element hit the same memory bank; padding
// the leading dimension to an odd size restores full bandwidth. The
// MACS-D bound predicts the penalty before running anything, and the
// advisor names the fix.
package main

import (
	"fmt"
	"log"

	"macs"
	"macs/internal/isa"
)

// rowSum builds a kernel summing row 1 of A(LD, 128): the vector index J
// strides LD elements.
func rowSum(ld int) string {
	return fmt.Sprintf(`
PROGRAM ROWSUM
REAL A(%d,128), Q
INTEGER N, J
DO J = 1, N
  Q = Q + A(1,J)
ENDDO
END
`, ld)
}

func analyze(name string, ld int) (measured float64, err error) {
	const n = 128
	res, err := macs.AnalyzeSource(rowSum(ld), n, func(c *macs.CPU) error {
		m := c.Memory()
		nb, _ := m.SymbolAddr("d_N")
		if err := m.WriteI64(nb, n); err != nil {
			return err
		}
		ab, _ := m.SymbolAddr("d_A")
		for j := 0; j < n; j++ {
			if err := m.WriteF64(ab+int64(j*ld*8), 1.5); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	macsd, err := macs.MACSDBoundOf(res.Program, isa.VLMax, macs.DefaultRules())
	if err != nil {
		return 0, err
	}
	fmt.Printf("%s (leading dimension %d):\n", name, ld)
	fmt.Printf("  t_MACS  = %6.3f CPL (decomposition-blind)\n", res.Analysis.MACS.CPL)
	fmt.Printf("  t_MACSD = %6.3f CPL (bank-aware bound)\n", macsd)
	fmt.Printf("  t_p     = %6.3f CPL (measured)\n", res.MeasuredCPL)

	d := macs.Diagnose(macs.DiagnosisInputs{
		Analysis: res.Analysis,
		TP:       res.MeasuredCPL,
		TA:       res.MeasuredCPL, // the loop is all memory
		TX:       0.5,
		TMACSD:   macsd,
	})
	if d.Has("data-decomposition") {
		fmt.Println("  advisor: data-decomposition — pad the leading dimension to an odd size")
	} else {
		fmt.Println("  advisor: decomposition is clean")
	}
	fmt.Println()
	return res.MeasuredCPL, nil
}

func main() {
	fmt.Println("The D degree of freedom: data decomposition in the 32 banks")
	fmt.Println("============================================================")
	// 256 elements = 32 words x 8: stride lands on one bank.
	bad, err := analyze("power-of-two layout", 256)
	if err != nil {
		log.Fatal(err)
	}
	// 257: odd leading dimension visits every bank.
	good, err := analyze("padded layout", 257)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("padding the leading dimension 256 -> 257 is %.1fx faster\n", bad/good)
}
