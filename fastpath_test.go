package macs_test

import (
	"reflect"
	"testing"

	"macs"
	"macs/internal/compiler"
	"macs/internal/lfk"
	"macs/internal/vm"
)

// TestFastPathBitEquivalence is the gate on the fast simulation engine:
// for all ten LFKs, a pooled simulator using the memoized stream-stall
// table must produce Stats (attribution ledger included) identical to a
// fresh simulator running the naive reference walk. The pool is reused
// across kernels, so later kernels run on state dirtied by earlier ones —
// exactly the service's steady state.
func TestFastPathBitEquivalence(t *testing.T) {
	fastCfg := vm.DefaultConfig()
	naiveCfg := vm.DefaultConfig()
	naiveCfg.NaiveMemPath = true
	pool := vm.NewPool(fastCfg)

	for _, k := range lfk.All() {
		c, err := lfk.Compile(k, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}

		naiveStats, _, err := c.Run(naiveCfg)
		if err != nil {
			t.Fatalf("lfk%d naive: %v", k.ID, err)
		}

		cpu := pool.Get()
		fastStats, err := c.RunOn(cpu)
		if err != nil {
			t.Fatalf("lfk%d fast: %v", k.ID, err)
		}
		if err := c.Validate(cpu); err != nil {
			t.Fatalf("lfk%d fast path numerical validation: %v", k.ID, err)
		}
		pool.Put(cpu)

		if !reflect.DeepEqual(fastStats, naiveStats) {
			t.Fatalf("lfk%d: fast-path stats diverge from naive reference:\nfast  %+v\nnaive %+v",
				k.ID, fastStats, naiveStats)
		}
		if err := fastStats.Attr.Conserved(fastStats.Cycles); err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
	}

	if created, returned := pool.Stats(); returned == 0 || created > 2 {
		t.Fatalf("pool reuse broken: created=%d returned=%d", created, returned)
	}
}

// TestAnalyzerMatchesAnalyzeSourceVM checks the pooled facade front door
// against the one-shot path: same bounds, same simulator outcome, same
// measured CPL — on repeated calls, so the second run exercises a warm
// pool and memo table.
func TestAnalyzerMatchesAnalyzeSourceVM(t *testing.T) {
	cfg := macs.DefaultVMConfig()
	an := macs.NewAnalyzer(cfg)
	for _, k := range lfk.All() {
		want, err := macs.AnalyzeSourceVM(k.Source, int64(k.Elements), cfg, nil)
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		for round := 0; round < 2; round++ {
			got, err := an.AnalyzeSource(k.Source, int64(k.Elements), nil)
			if err != nil {
				t.Fatalf("lfk%d round %d: %v", k.ID, round, err)
			}
			if !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatalf("lfk%d round %d: pooled Stats diverge:\ngot  %+v\nwant %+v",
					k.ID, round, got.Stats, want.Stats)
			}
			if !reflect.DeepEqual(got.Analysis, want.Analysis) {
				t.Fatalf("lfk%d round %d: pooled Analysis diverges", k.ID, round)
			}
			if got.MeasuredCPL != want.MeasuredCPL {
				t.Fatalf("lfk%d round %d: MeasuredCPL %v, want %v",
					k.ID, round, got.MeasuredCPL, want.MeasuredCPL)
			}
		}
	}
}
