package verify_test

import (
	"errors"
	"strings"
	"testing"

	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/isa"
	"macs/internal/lfk"
	"macs/internal/verify"
)

// TestLFKKernelsVerifyClean is the paper-facing golden test: the
// compiled form of every case-study kernel passes the checker with zero
// errors, and the resource pass reproduces the paper's narrative — LFK8
// suffers register-pair pressure, LFK8 and LFK9 single-memory-port chime
// splits.
func TestLFKKernelsVerifyClean(t *testing.T) {
	warnings := map[int][]string{}
	for _, k := range lfk.All() {
		p, err := compiler.Compile(k.Source, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("LFK%d does not compile: %v", k.ID, err)
		}
		ds := verify.Check(p)
		for _, d := range ds {
			if d.Severity == verify.SevError {
				t.Errorf("LFK%d: unexpected error: %s", k.ID, d.Render(p))
			}
			if d.Severity == verify.SevWarning {
				warnings[k.ID] = append(warnings[k.ID], d.Message)
			}
		}
		if err := verify.Must(p); err != nil {
			t.Errorf("LFK%d: Must rejected a clean kernel: %v", k.ID, err)
		}
	}
	wantWarn := func(id int, sub string) {
		for _, w := range warnings[id] {
			if strings.Contains(w, sub) {
				return
			}
		}
		t.Errorf("LFK%d: no warning containing %q; got %v", id, sub, warnings[id])
	}
	wantWarn(8, "register pair pressure")
	wantWarn(8, "single memory port")
	wantWarn(9, "single memory port")
}

// badCase is one crafted bad program and the diagnostics it must
// produce. Every want entry is (severity, message substring).
type badCase struct {
	name string
	src  string
	want []struct {
		sev verify.Severity
		sub string
	}
}

func wants(pairs ...any) []struct {
	sev verify.Severity
	sub string
} {
	out := make([]struct {
		sev verify.Severity
		sub string
	}, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, struct {
			sev verify.Severity
			sub string
		}{pairs[i].(verify.Severity), pairs[i+1].(string)})
	}
	return out
}

func TestBadProgramCorpus(t *testing.T) {
	cases := []badCase{
		{
			name: "use-before-def",
			src:  "add s0,s1,s2\nhalt\n",
			want: wants(
				verify.SevError, "use of s0 before definition",
				verify.SevError, "use of s1 before definition",
			),
		},
		{
			name: "vl-unset",
			src:  "mov #8,vs\nld.d d_X,v0\nhalt\n.data d_X 1024\n",
			want: wants(verify.SevError, "vector instruction before vl is set"),
		},
		{
			name: "vs-unset",
			src:  "mov #4,vl\nld.d d_X,v0\nhalt\n.data d_X 1024\n",
			want: wants(verify.SevError, "vector memory access before vs is set"),
		},
		{
			name: "oob-vector-store",
			src: "mov #1,s0\nmov #8,vl\nmov #8,vs\nmov s0,v0\n" +
				"st.d v0,d_Y\nhalt\n.data d_Y 32\n",
			want: wants(verify.SevError,
				"vector store spans [0,64) of d_Y (32 bytes): out of bounds for 8 elements, stride 8"),
		},
		{
			name: "oob-scalar-load",
			src:  "ld.l d_X+64,s0\nhalt\n.data d_X 64\n",
			want: wants(verify.SevError,
				"scalar access at d_X+64 is out of bounds (d_X is 64 bytes)"),
		},
		{
			name: "bank-conflict-stride",
			src: "mov #1,s0\nmov #4,vl\nmov #256,vs\nmov s0,v0\n" +
				"ld.d d_X,v0\nhalt\n.data d_X 2048\n",
			want: wants(verify.SevWarning,
				"stride 256 bytes ≡ 0 mod 32 banks: every element hits the same memory bank"),
		},
		{
			name: "vector-compare-untimed",
			src:  "mov #4,vl\nle.d v0,v1\nhalt\n",
			want: wants(verify.SevError, "le has no vector form (no Table 1 timing)"),
		},
		{
			name: "unreachable-code",
			src:  "jmp out\nmov #1,s0\nout:\n  halt\n",
			want: wants(verify.SevInfo, "unreachable code"),
		},
		{
			name: "vl-zero-noop",
			src:  "mov #0,s0\nmov s0,vl\nmov s0,v0\nhalt\n",
			want: wants(verify.SevInfo, "vector instruction with vl=0 is a no-op"),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := asm.Parse(tc.src)
			if err != nil {
				t.Fatalf("corpus program does not parse: %v", err)
			}
			ds := verify.Check(p)
			for _, w := range tc.want {
				if !hasDiag(ds, w.sev, w.sub) {
					t.Errorf("missing %v diagnostic containing %q; got:\n%s",
						w.sev, w.sub, renderAll(ds, p))
				}
			}
		})
	}
}

// TestConstBranchFolding is the regression test for the const-prop gap
// where compares were never folded into the T flag: the checker merged
// branch paths the machine can never take, and a register assigned only
// on the (always-taken) feasible side was reported as use-before-def.
// With the compare folded, the impossible side is pruned and surfaces as
// unreachable code instead.
func TestConstBranchFolding(t *testing.T) {
	src := `mov #0,a0
eq.w #0,a0
jbrs.t Ldef
jmp Luse
Ldef:
mov #7,a1
Luse:
st.l a1,d_out
halt
.data d_out 8
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ds := verify.Check(p)
	if hasDiag(ds, verify.SevError, "before definition") {
		t.Errorf("spurious use-before-def via an infeasible branch path:\n%s", renderAll(ds, p))
	}
	if !hasDiag(ds, verify.SevInfo, "unreachable code") {
		t.Errorf("pruned branch side not reported unreachable:\n%s", renderAll(ds, p))
	}
}

// TestIntervalMemCheck covers the value-range upgrade of the static
// memory checker: loop-variant addresses with symbolic trip counts are
// decided from their intervals — proven in bounds (silent), possibly out
// of bounds (warning), or certainly out of bounds (error) — where the
// exact-const path had to stay silent.
func TestIntervalMemCheck(t *testing.T) {
	t.Run("proven-in-bounds", func(t *testing.T) {
		src := `mov #0,a0
L:
mov #8,vl
mov #8,vs
ld.l d_X(a0),v0
add.w #64,a0
lt.w a0,#960
jbrs.t L
halt
.data d_X 2048
`
		p, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		ds := verify.Check(p)
		for _, d := range ds {
			if d.Severity != verify.SevInfo {
				t.Errorf("bounded in-bounds stream flagged: %s", d.Render(p))
			}
		}
	})
	t.Run("may-be-out-of-bounds", func(t *testing.T) {
		src := `mov #0,a0
mov #1,s0
L:
mov #64,vl
mov #8,vs
mov s0,v0
st.l v0,d_Y(a0)
add.w #512,a0
lt.w a0,#4096
jbrs.t L
halt
.data d_Y 1024
`
		p, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		ds := verify.Check(p)
		if !hasDiag(ds, verify.SevWarning, "may be out of bounds") {
			t.Errorf("missing may-be-out-of-bounds warning:\n%s", renderAll(ds, p))
		}
	})
	t.Run("certainly-out-of-bounds", func(t *testing.T) {
		src := `mov #128,a0
L:
add.w #8,a0
lt.w a0,#256
jbrs.t L
ld.l d_X(a0),s0
halt
.data d_X 64
`
		p, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		ds := verify.Check(p)
		if !hasDiag(ds, verify.SevError, "out of bounds for every admitted address") {
			t.Errorf("missing certain-out-of-bounds error:\n%s", renderAll(ds, p))
		}
	})
}

// TestDanglingLabel covers the one corpus case the parser already
// rejects at Parse time (Validate refuses undefined labels), so the
// verify-level diagnostic needs an API-built program.
func TestDanglingLabel(t *testing.T) {
	if _, err := asm.Parse("jmp nowhere\nhalt\n"); err == nil {
		t.Error("Parse accepted a dangling label; Validate gate is gone")
	}
	p := &asm.Program{
		Instrs: []isa.Instr{
			{Op: isa.OpJmp, Ops: []isa.Operand{isa.LabelOp("nowhere")}},
			{Op: isa.OpHalt},
		},
		Labels: map[string]int{},
	}
	ds := verify.Check(p)
	if !hasDiag(ds, verify.SevError, `branch to undefined label "nowhere"`) {
		t.Errorf("missing dangling-label error; got:\n%s", renderAll(ds, p))
	}
}

// TestMustError checks the gate's error shape: errors.As reaches the
// full diagnostic list and the summary names the first error.
func TestMustError(t *testing.T) {
	p, err := asm.Parse("add s0,s1,s2\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	gateErr := verify.Must(p)
	if gateErr == nil {
		t.Fatal("Must accepted a use-before-def program")
	}
	var verr *verify.Error
	if !errors.As(gateErr, &verr) {
		t.Fatalf("Must error is %T, want *verify.Error", gateErr)
	}
	if len(verify.Errors(verr.Diags)) != 2 {
		t.Errorf("gate carries %d errors, want 2:\n%s", len(verify.Errors(verr.Diags)), renderAll(verr.Diags, p))
	}
	if msg := gateErr.Error(); !strings.Contains(msg, "use of s0 before definition") ||
		!strings.Contains(msg, "and 1 more") {
		t.Errorf("gate error summary = %q", msg)
	}
}

// TestCheckOrdering: findings come back sorted by instruction index with
// program-level findings first, deduplicated.
func TestCheckOrdering(t *testing.T) {
	p, err := asm.Parse("mov #4,vl\nld.d d_X,v0\nadd s0,s1,s2\nhalt\n.data d_X 1024\n")
	if err != nil {
		t.Fatal(err)
	}
	ds := verify.Check(p)
	for i := 1; i < len(ds); i++ {
		if ds[i].Instr < ds[i-1].Instr {
			t.Fatalf("findings not sorted by instruction: %v", ds)
		}
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.String()] {
			t.Errorf("duplicate diagnostic %s", d)
		}
		seen[d.String()] = true
	}
}

func hasDiag(ds []verify.Diagnostic, sev verify.Severity, sub string) bool {
	for _, d := range ds {
		if d.Severity == sev && strings.Contains(d.Message, sub) {
			return true
		}
	}
	return false
}

func renderAll(ds []verify.Diagnostic, p *asm.Program) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.Render(p) + "\n")
	}
	if b.Len() == 0 {
		return "  (no diagnostics)\n"
	}
	return b.String()
}
