package verify

import (
	"fmt"

	"macs/internal/asm"
	"macs/internal/isa"
)

// structural checks every instruction's shape against the execution
// contract of the simulator and the bounds model: operand counts and
// classes per opcode, register numbers in range, branch targets resolved,
// and vector forms that have no Table 1 timing (and so can be neither
// bounded nor simulated).
func structural(p *asm.Program) []Diagnostic {
	var ds []Diagnostic
	errf := func(i int, format string, args ...any) {
		ds = append(ds, Diagnostic{SevError, i, fmt.Sprintf(format, args...)})
	}
	for name, idx := range p.Labels {
		if idx < 0 || idx > len(p.Instrs) {
			ds = append(ds, Diagnostic{SevError, -1,
				fmt.Sprintf("label %q index %d outside the program", name, idx)})
		}
	}
	for i, in := range p.Instrs {
		for _, o := range in.Ops {
			switch o.Kind {
			case isa.KindReg:
				if msg, ok := badReg(o.Reg); ok {
					errf(i, "%s", msg)
				}
			case isa.KindMem:
				if o.Base.Class != isa.ClassA && o.Base.Class != isa.ClassNone {
					errf(i, "memory base %s is not an a-register", o.Base)
				} else if o.Base.Class == isa.ClassA {
					if msg, ok := badReg(o.Base); ok {
						errf(i, "%s", msg)
					}
				}
				if o.Sym != "" {
					if _, ok := p.FindData(o.Sym); !ok {
						errf(i, "undefined data symbol %q", o.Sym)
					}
				}
			case isa.KindLabel:
				if _, ok := p.Labels[o.Label]; !ok {
					errf(i, "branch to undefined label %q", o.Label)
				}
			}
		}
		if in.IsVector() {
			checkVectorShape(in, i, errf)
		} else {
			checkScalarShape(in, i, errf)
		}
	}
	return ds
}

func badReg(r isa.Reg) (string, bool) {
	switch r.Class {
	case isa.ClassA:
		if r.N < 0 || r.N >= isa.NumARegs {
			return fmt.Sprintf("register a%d out of range", r.N), true
		}
	case isa.ClassS:
		if r.N < 0 || r.N >= isa.NumSRegs {
			return fmt.Sprintf("register s%d out of range", r.N), true
		}
	case isa.ClassV:
		if r.N < 0 || r.N >= isa.NumVRegs {
			return fmt.Sprintf("register v%d out of range", r.N), true
		}
	case isa.ClassVL, isa.ClassVS:
		// Singletons.
	default:
		return "invalid register class", true
	}
	return "", false
}

// checkScalarShape mirrors vm.execScalar's operand requirements.
func checkScalarShape(in isa.Instr, i int, errf func(int, string, ...any)) {
	switch in.Op {
	case isa.OpNop, isa.OpHalt:
	case isa.OpMov:
		if len(in.Ops) != 2 {
			errf(i, "mov needs 2 operands, has %d", len(in.Ops))
		} else if in.Ops[1].Kind != isa.KindReg {
			errf(i, "mov destination must be a register")
		}
	case isa.OpLd:
		if len(in.Ops) != 2 {
			errf(i, "scalar load needs 2 operands, has %d", len(in.Ops))
			return
		}
		if in.Ops[0].Kind != isa.KindMem {
			errf(i, "scalar load source must be a memory operand")
		}
		if d := in.Ops[1]; d.Kind != isa.KindReg ||
			(d.Reg.Class != isa.ClassA && d.Reg.Class != isa.ClassS) {
			errf(i, "scalar load destination must be an a- or s-register")
		}
	case isa.OpSt:
		if len(in.Ops) != 2 {
			errf(i, "scalar store needs 2 operands, has %d", len(in.Ops))
			return
		}
		if s := in.Ops[0]; s.Kind != isa.KindReg ||
			(s.Reg.Class != isa.ClassA && s.Reg.Class != isa.ClassS) {
			errf(i, "scalar store source must be an a- or s-register")
		}
		if in.Ops[1].Kind != isa.KindMem {
			errf(i, "scalar store destination must be a memory operand")
		}
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpNeg, isa.OpAnd, isa.OpOr, isa.OpShf:
		if len(in.Ops) != 2 && len(in.Ops) != 3 {
			errf(i, "%s needs 2 or 3 operands, has %d", in.Op, len(in.Ops))
			return
		}
		if d := in.Ops[len(in.Ops)-1]; d.Kind != isa.KindReg {
			errf(i, "%s destination must be a register", in.Op)
		}
	case isa.OpLe, isa.OpLt, isa.OpGt, isa.OpGe, isa.OpEq, isa.OpNe:
		if len(in.Ops) != 2 {
			errf(i, "compare needs 2 operands, has %d", len(in.Ops))
		}
	case isa.OpJbrs, isa.OpJmp:
		if !hasLabelOp(in) {
			errf(i, "branch without a label operand")
		}
	case isa.OpSum, isa.OpSqrt, isa.OpCvt:
		errf(i, "%s has no scalar form in this subset", in.Op)
	default:
		errf(i, "unimplemented scalar op %s", in.Op)
	}
}

// checkVectorShape mirrors vm.execVector/execVectorFunc's operand
// requirements and rejects vector forms with no Table 1 timing.
func checkVectorShape(in isa.Instr, i int, errf func(int, string, ...any)) {
	if _, ok := isa.VectorTiming(in.Op); !ok {
		errf(i, "%s has no vector form (no Table 1 timing)", in.Op)
		return
	}
	switch in.Op {
	case isa.OpLd:
		if !hasMemOp(in) {
			errf(i, "vector load without a memory operand")
			return
		}
		if d := in.Ops[len(in.Ops)-1]; d.Kind != isa.KindReg || d.Reg.Class != isa.ClassV {
			errf(i, "vector load destination must be a v-register")
		}
	case isa.OpSt:
		if !hasMemOp(in) {
			errf(i, "vector store without a memory operand")
			return
		}
		if s := in.Ops[0]; s.Kind != isa.KindReg || s.Reg.Class != isa.ClassV {
			errf(i, "vector store source must be a v-register")
		}
	case isa.OpSum:
		if len(in.Ops) != 2 || in.Ops[0].Kind != isa.KindReg || in.Ops[0].Reg.Class != isa.ClassV ||
			in.Ops[1].Kind != isa.KindReg || in.Ops[1].Reg.Class != isa.ClassS {
			errf(i, "sum needs v,s operands")
		}
	case isa.OpNeg, isa.OpMov, isa.OpSqrt:
		if len(in.Ops) != 2 {
			errf(i, "vector %s needs 2 operands, has %d", in.Op, len(in.Ops))
			return
		}
		if d := in.Ops[1]; d.Kind != isa.KindReg || d.Reg.Class != isa.ClassV {
			errf(i, "vector %s destination must be a v-register", in.Op)
		}
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv:
		if len(in.Ops) != 3 {
			errf(i, "vector %s needs 3 operands, has %d", in.Op, len(in.Ops))
			return
		}
		if d := in.Ops[2]; d.Kind != isa.KindReg || d.Reg.Class != isa.ClassV {
			errf(i, "vector %s destination must be a v-register", in.Op)
		}
	default:
		// Timing exists but the simulator has no functional semantics
		// (vector and/or/shf/cvt): the program would fail mid-run.
		errf(i, "vector %s is not implemented by the simulator", in.Op)
	}
}

func hasMemOp(in isa.Instr) bool {
	for _, o := range in.Ops {
		if o.Kind == isa.KindMem {
			return true
		}
	}
	return false
}

func hasLabelOp(in isa.Instr) bool {
	for _, o := range in.Ops {
		if o.Kind == isa.KindLabel {
			return true
		}
	}
	return false
}
