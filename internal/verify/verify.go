// Package verify is the static checker that runs between codegen (or an
// untrusted assembly upload) and the VM/bounds pipeline. It never executes
// a program; it walks the instruction stream and reports structured
// findings, so a malformed or buggy-codegen program is rejected with a
// diagnosis instead of surfacing as a panic or a silent mis-bound deep in
// internal/vm or internal/core.
//
// Check runs four passes over an asm.Program:
//
//   - structural legality: operand shapes per opcode mirroring the
//     simulator's execution contract, register ranges, branch targets,
//     vector forms with no Table 1 timing;
//   - forward dataflow (must-defined analysis with constant propagation
//     over a/s registers, VL and VS): use before definition, vector
//     instructions before VL/VS are set, unreachable code;
//   - static memory bounds: every statically resolvable effective address
//     (absolute operands, or bases with propagated constants) checked
//     against its DataDef size, vector streams checked over their whole
//     VL×VS span;
//   - resource conflicts on the inner vector loop: single-memory-port
//     chime splits, register-pair pressure, and bank-conflict strides
//     (stride ≡ 0 mod the 32 memory banks serializes the stream).
//
// Findings are Diagnostics; Must converts error-severity findings into an
// *Error so callers (the macs facade, the service, macs check) can gate.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"macs/internal/asm"
)

// Severity grades a finding.
//
// macsvet:exhaustive
type Severity int

// Severities, least to most severe.
const (
	// SevInfo marks observations that need no action (unreachable code,
	// VL=0 no-ops).
	SevInfo Severity = iota
	// SevWarning marks legal constructs that cost performance or suggest
	// a codegen bug (chime splits, bank-conflict strides).
	SevWarning
	// SevError marks programs the VM or bounds model would reject or
	// mis-analyze; Must refuses them.
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is one finding of the checker.
type Diagnostic struct {
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Instr is the index into Program.Instrs the finding anchors to, or
	// -1 for program-level findings.
	Instr int `json:"instr"`
	// Message describes the finding.
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	if d.Instr < 0 {
		return fmt.Sprintf("%s: %s", d.Severity, d.Message)
	}
	return fmt.Sprintf("%s: instr %d: %s", d.Severity, d.Instr, d.Message)
}

// Render formats a diagnostic with the instruction text it anchors to.
func (d Diagnostic) Render(p *asm.Program) string {
	if p != nil && d.Instr >= 0 && d.Instr < len(p.Instrs) {
		return fmt.Sprintf("%s: instr %d (%s): %s", d.Severity, d.Instr, p.Instrs[d.Instr], d.Message)
	}
	return d.String()
}

// Error carries the full diagnostic list of a rejected program. Only
// error-severity findings cause rejection, but the whole list rides along
// so callers can render warnings for context.
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	errs := Errors(e.Diags)
	if len(errs) == 0 {
		return "verify: program rejected"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d error(s): %s", len(errs), errs[0].Message)
	if len(errs) > 1 {
		fmt.Fprintf(&b, " (and %d more)", len(errs)-1)
	}
	return b.String()
}

// Errors filters a diagnostic list down to error severity.
func Errors(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any finding is error severity.
func HasErrors(ds []Diagnostic) bool { return len(Errors(ds)) > 0 }

// Check runs every pass and returns the findings ordered by instruction
// index (program-level first), most severe first within an instruction.
func Check(p *asm.Program) []Diagnostic {
	var ds []Diagnostic
	ds = append(ds, structural(p)...)
	ds = append(ds, dataflow(p)...)
	ds = append(ds, resources(p)...)
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Instr != ds[j].Instr {
			return ds[i].Instr < ds[j].Instr
		}
		return ds[i].Severity > ds[j].Severity
	})
	return dedupe(ds)
}

// Must gates a program: nil when Check finds no errors, otherwise an
// *Error holding every finding.
func Must(p *asm.Program) error {
	ds := Check(p)
	if HasErrors(ds) {
		return &Error{Diags: ds}
	}
	return nil
}

func dedupe(ds []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(ds))
	out := ds[:0]
	for _, d := range ds {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}
