package verify

import (
	"fmt"

	"macs/internal/asm"
	"macs/internal/depgraph"
	"macs/internal/isa"
)

// The dataflow pass runs a forward must-defined analysis with constant
// propagation over the program's control flow graph. Lattice per register:
// (defined, known constant). At joins both degrade monotonically
// (defined: AND, constant: equal-or-unknown), so the fixpoint iteration
// terminates and a register is only reported used-before-defined when some
// path from the entry reaches the use without an assignment.
//
// The propagated constants feed the static memory-bounds check (absolute
// operands and bases with known values, vector streams over their whole
// VL×VS span with VL clamped to the hardware maximum like the machine
// does) and the bank-conflict stride warning.

// Register slots: a0-7, s0-7, v0-7, vl, vs, and the scalar comparison
// flag T (written by compares, read by jbrs).
const (
	slotA   = 0
	slotS   = 8
	slotV   = 16
	slotVL  = 24
	slotVS  = 25
	slotT   = 26
	numSlot = 27
)

func regSlot(r isa.Reg) int {
	switch r.Class {
	case isa.ClassA:
		if r.N >= 0 && r.N < isa.NumARegs {
			return slotA + r.N
		}
	case isa.ClassS:
		if r.N >= 0 && r.N < isa.NumSRegs {
			return slotS + r.N
		}
	case isa.ClassV:
		if r.N >= 0 && r.N < isa.NumVRegs {
			return slotV + r.N
		}
	case isa.ClassVL:
		return slotVL
	case isa.ClassVS:
		return slotVS
	}
	return -1
}

// absVal is one register's abstract state.
type absVal struct {
	def   bool // definitely assigned on every path from entry
	known bool // constant value known
	c     int64
}

type state [numSlot]absVal

// merge joins two states (path intersection). changed reports whether dst
// degraded.
func (dst *state) merge(src *state) (changed bool) {
	for i := range dst {
		d, s := dst[i], src[i]
		n := absVal{
			def:   d.def && s.def,
			known: d.known && s.known && d.c == s.c,
		}
		if n.known {
			n.c = d.c
		}
		if n != d {
			dst[i] = n
			changed = true
		}
	}
	return changed
}

// block is one basic block [start, end) with successor block indices.
type block struct {
	start, end int
	succs      []int
}

// buildCFG partitions the program into basic blocks. entry is the block
// started by the load entry point (label "main" if present, else 0).
func buildCFG(p *asm.Program) (blocks []block, entry int) {
	n := len(p.Instrs)
	entryPC := 0
	if idx, ok := p.Labels["main"]; ok && idx >= 0 && idx < n {
		entryPC = idx
	}
	leader := make([]bool, n+1)
	leader[0] = true
	leader[entryPC] = true
	for i, in := range p.Instrs {
		if in.IsBranch() {
			if i+1 <= n {
				leader[i+1] = true
			}
			if t, ok := branchTarget(p, in); ok && t < n {
				leader[t] = true
			}
		}
		if in.Op == isa.OpHalt && i+1 <= n {
			leader[i+1] = true
		}
	}
	startOf := make(map[int]int) // instr index -> block index
	for i := 0; i < n; i++ {
		if leader[i] {
			startOf[i] = len(blocks)
			blocks = append(blocks, block{start: i})
		}
	}
	for bi := range blocks {
		end := n
		if bi+1 < len(blocks) {
			end = blocks[bi+1].start
		}
		blocks[bi].end = end
		if end == blocks[bi].start {
			continue
		}
		last := p.Instrs[end-1]
		switch {
		case last.Op == isa.OpHalt:
			// No successors.
		case last.IsBranch():
			if t, ok := branchTarget(p, last); ok && t < n {
				blocks[bi].succs = append(blocks[bi].succs, startOf[t])
			}
			if last.Op == isa.OpJbrs && end < n {
				blocks[bi].succs = append(blocks[bi].succs, startOf[end])
			}
		default:
			if end < n {
				blocks[bi].succs = append(blocks[bi].succs, startOf[end])
			}
		}
	}
	return blocks, startOf[entryPC]
}

// feasibleSuccs filters a block's successors through the folded T flag:
// a conditional branch whose condition is a propagated constant only
// reaches the branch side the machine would actually take, so registers
// assigned on the taken side are not reported as use-before-def via the
// impossible side. Blocks only reachable through pruned edges surface as
// "unreachable code".
func feasibleSuccs(p *asm.Program, b block, st *state) []int {
	if b.end == b.start || len(b.succs) != 2 {
		return b.succs
	}
	last := p.Instrs[b.end-1]
	if last.Op != isa.OpJbrs {
		return b.succs
	}
	t := st[slotT]
	if !t.def || !t.known {
		return b.succs
	}
	take := t.c != 0
	if last.Suffix == isa.SufF {
		take = !take
	}
	// succs order from buildCFG: [branch target, fallthrough].
	if take {
		return b.succs[:1]
	}
	return b.succs[1:]
}

func branchTarget(p *asm.Program, in isa.Instr) (int, bool) {
	for _, o := range in.Ops {
		if o.Kind == isa.KindLabel {
			t, ok := p.Labels[o.Label]
			return t, ok && t >= 0
		}
	}
	return 0, false
}

// dataflow runs the fixpoint iteration, then a reporting pass over the
// converged block-entry states.
func dataflow(p *asm.Program) []Diagnostic {
	if len(p.Instrs) == 0 {
		return nil
	}
	blocks, entry := buildCFG(p)
	in := make([]state, len(blocks))
	seen := make([]bool, len(blocks))
	seen[entry] = true

	work := []int{entry}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		st := in[bi]
		for i := blocks[bi].start; i < blocks[bi].end; i++ {
			step(&st, p.Instrs[i])
		}
		for _, si := range feasibleSuccs(p, blocks[bi], &st) {
			if !seen[si] {
				seen[si] = true
				in[si] = st
				work = append(work, si)
				continue
			}
			if in[si].merge(&st) {
				work = append(work, si)
			}
		}
	}

	var ds []Diagnostic
	rep := func(sev Severity, idx int, format string, args ...any) {
		ds = append(ds, Diagnostic{sev, idx, fmt.Sprintf(format, args...)})
	}
	// The interval analysis generalizes the const-prop above to value
	// ranges, deciding memory accesses whose addresses are loop-variant
	// but statically bounded (symbolic trip counts).
	iv := depgraph.Intervals(p)
	for bi, b := range blocks {
		if !seen[bi] {
			if b.end > b.start {
				rep(SevInfo, b.start, "unreachable code")
			}
			continue
		}
		st := in[bi]
		for i := b.start; i < b.end; i++ {
			inst := p.Instrs[i]
			reportUses(&st, inst, i, rep)
			checkMem(&st, iv, p, inst, i, rep)
			step(&st, inst)
		}
	}
	return ds
}

// reportUses flags reads of never-assigned registers, including the
// implicit VL/VS reads of vector instructions.
func reportUses(st *state, in isa.Instr, idx int, rep func(Severity, int, string, ...any)) {
	reported := [numSlot]bool{}
	for _, r := range in.Sources() {
		s := regSlot(r)
		if s < 0 || st[s].def || reported[s] {
			continue
		}
		reported[s] = true
		switch r.Class {
		case isa.ClassVL:
			rep(SevError, idx, "vector instruction before vl is set")
		case isa.ClassVS:
			rep(SevError, idx, "vector memory access before vs is set")
		default:
			rep(SevError, idx, "use of %s before definition", r)
		}
	}
	if in.IsVector() {
		if vl := st[slotVL]; vl.def && vl.known && vl.c == 0 {
			rep(SevInfo, idx, "vector instruction with vl=0 is a no-op")
		}
	}
}

// step applies one instruction's effect on the abstract state.
func step(st *state, in isa.Instr) {
	if isCompareOp(in.Op) && !in.IsVector() {
		// Fold the compare into the T flag so constant branch conditions
		// prune infeasible paths (a compare the VM folds but the checker
		// skipped used to merge impossible paths and report registers
		// defined on every feasible path as use-before-def).
		st[slotT] = compareVal(st, in)
		return
	}
	dst, hasDst := in.Dst()
	if !hasDst {
		return
	}
	s := regSlot(dst)
	if s < 0 {
		return
	}
	nv := absVal{def: true}
	switch {
	case in.Op == isa.OpMov && len(in.Ops) == 2:
		nv = operandVal(st, in.Ops[0])
		nv.def = true
	case in.Op == isa.OpLd:
		// Loaded values are runtime data: defined, unknown.
	case isScalarIntALU(in):
		nv = intALUVal(st, in)
	}
	if s == slotVL && nv.known {
		// The machine clamps VL writes to [0, VLMax].
		if nv.c < 0 {
			nv.c = 0
		}
		if nv.c > int64(isa.VLMax) {
			nv.c = int64(isa.VLMax)
		}
	}
	st[s] = nv
}

func isCompareOp(op isa.Op) bool {
	switch op {
	case isa.OpLe, isa.OpLt, isa.OpGt, isa.OpGe, isa.OpEq, isa.OpNe:
		return true
	}
	return false
}

// compareVal mirrors the VM's scalarCompare in the abstract domain:
// T = Ops[0] OP Ops[1]. Floating-point compares depend on runtime data
// and leave T defined-but-unknown.
func compareVal(st *state, in isa.Instr) absVal {
	out := absVal{def: true}
	if in.Suffix == isa.SufD || in.Suffix == isa.SufS || len(in.Ops) != 2 {
		return out
	}
	x := operandVal(st, in.Ops[0])
	y := operandVal(st, in.Ops[1])
	if !x.known || !y.known {
		return out
	}
	var tf bool
	switch in.Op {
	case isa.OpLe:
		tf = x.c <= y.c
	case isa.OpLt:
		tf = x.c < y.c
	case isa.OpGt:
		tf = x.c > y.c
	case isa.OpGe:
		tf = x.c >= y.c
	case isa.OpEq:
		tf = x.c == y.c
	case isa.OpNe:
		tf = x.c != y.c
	}
	out.known = true
	if tf {
		out.c = 1
	}
	return out
}

func isScalarIntALU(in isa.Instr) bool {
	if in.IsVector() || in.Suffix == isa.SufD || in.Suffix == isa.SufS {
		return false
	}
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpNeg, isa.OpAnd, isa.OpOr, isa.OpShf:
		return len(in.Ops) == 2 || len(in.Ops) == 3
	}
	return false
}

// operandVal evaluates an operand in the abstract domain.
func operandVal(st *state, o isa.Operand) absVal {
	switch o.Kind {
	case isa.KindImm:
		return absVal{def: true, known: true, c: o.Imm}
	case isa.KindReg:
		if s := regSlot(o.Reg); s >= 0 {
			return st[s]
		}
	}
	return absVal{}
}

// intALUVal mirrors the VM's integer ALU: two-operand form is
// dst = dst OP src, three-operand form is dst = op1 OP op2.
func intALUVal(st *state, in isa.Instr) absVal {
	out := absVal{def: true}
	var x, y absVal
	dst := in.Ops[len(in.Ops)-1]
	if len(in.Ops) == 2 {
		if in.Op == isa.OpNeg {
			x = operandVal(st, in.Ops[0])
			if x.known {
				out.known, out.c = true, -x.c
			}
			return out
		}
		x = operandVal(st, dst)
		y = operandVal(st, in.Ops[0])
	} else {
		x = operandVal(st, in.Ops[0])
		y = operandVal(st, in.Ops[1])
	}
	if !x.known || !y.known {
		return out
	}
	switch in.Op {
	case isa.OpAdd:
		out.known, out.c = true, x.c+y.c
	case isa.OpSub:
		out.known, out.c = true, x.c-y.c
	case isa.OpMul:
		out.known, out.c = true, x.c*y.c
	case isa.OpDiv:
		if y.c != 0 {
			out.known, out.c = true, x.c/y.c
		}
	case isa.OpAnd:
		out.known, out.c = true, x.c&y.c
	case isa.OpOr:
		out.known, out.c = true, x.c|y.c
	case isa.OpShf:
		if y.c >= 0 {
			out.known, out.c = true, x.c<<uint(y.c&63)
		} else {
			out.known, out.c = true, x.c>>uint((-y.c)&63)
		}
	}
	return out
}

// checkMem statically bounds-checks memory operands whose effective
// address is resolvable — exactly (no base register, or a base with a
// propagated constant) or as a bounded interval from the value-range
// analysis — and warns about bank-conflict strides on vector streams.
func checkMem(st *state, iv *depgraph.IntervalResult, p *asm.Program, in isa.Instr, idx int, rep func(Severity, int, string, ...any)) {
	if !in.IsMemory() {
		return
	}
	vector := in.IsVector()
	for _, o := range in.Ops {
		if o.Kind != isa.KindMem || o.Sym == "" {
			continue
		}
		d, ok := p.FindData(o.Sym)
		if !ok {
			continue // structural pass reports the undefined symbol
		}
		off, offKnown := o.Disp, true
		if o.Base.Class == isa.ClassA {
			b := st[regSlot(o.Base)]
			if b.known {
				off += b.c
			} else {
				offKnown = false
			}
		}
		if !vector {
			if offKnown && (off < 0 || off+isa.WordBytes > d.Size) {
				rep(SevError, idx, "scalar access at %s%+d is out of bounds (%s is %d bytes)",
					o.Sym, off, o.Sym, d.Size)
			}
			if !offKnown {
				checkMemInterval(iv, in, o, d.Size, idx, rep)
			}
			continue
		}
		vl, vs := st[slotVL], st[slotVS]
		count := int64(isa.VLMax) // the machine clamps VL to VLMax
		if vl.known {
			count = vl.c
		}
		if vs.known && count > 1 && vs.c%(isa.WordBytes*isa.MemBanks) == 0 {
			rep(SevWarning, idx,
				"stride %d bytes ≡ 0 mod %d banks: every element hits the same memory bank (%d-cycle bank busy serializes the stream)",
				vs.c, isa.MemBanks, isa.BankCycle)
		}
		if !offKnown || !vs.known || count <= 0 {
			if !(offKnown && vs.known) {
				checkMemInterval(iv, in, o, d.Size, idx, rep)
			}
			continue
		}
		lo, hi := off, off
		last := off + (count-1)*vs.c
		if last < lo {
			lo = last
		}
		if last > hi {
			hi = last
		}
		hi += isa.WordBytes
		if lo < 0 || hi > d.Size {
			rep(SevError, idx,
				"vector %s spans [%d,%d) of %s (%d bytes): out of bounds for %d elements, stride %d",
				memVerb(in), lo, hi, o.Sym, d.Size, count, vs.c)
		}
	}
}

// checkMemInterval decides accesses the exact const-prop could not,
// using the effective-address (and, for vector streams, whole-span)
// interval from the value-range analysis. A bounded range wholly inside
// the symbol is silently proven in bounds — the upgrade from
// exact-const-only checking that handles loop-variant bases with
// symbolic trip counts. A bounded range that can exceed the symbol may
// be out of bounds on some admitted path (warning); one that cannot
// possibly be in bounds is an error. Unbounded ranges stay silent: an
// over-approximation cannot prove a violation.
func checkMemInterval(iv *depgraph.IntervalResult, in isa.Instr, o isa.Operand, size int64, idx int, rep func(Severity, int, string, ...any)) {
	off := depgraph.Point(o.Disp)
	if o.Base.Class == isa.ClassA {
		off = off.Add(iv.Reg(idx, o.Base))
	}
	span := off
	if in.IsVector() {
		count := iv.Reg(idx, isa.VL()).Meet(depgraph.Range(1, int64(isa.VLMax)))
		if count.Empty() {
			return // provably zero-length stream: no access at all
		}
		stride := iv.Reg(idx, isa.VS())
		last := off.Add(count.Sub(depgraph.Point(1)).Mul(stride))
		span = span.Join(last)
	}
	if !span.Bounded() {
		return
	}
	lo, hi := span.Lo, span.Hi+isa.WordBytes
	kind := "scalar"
	if in.IsVector() {
		kind = "vector"
	}
	switch {
	case lo >= 0 && hi <= size:
		// Statically proven in bounds.
	case span.Lo+isa.WordBytes > size || span.Hi < 0:
		rep(SevError, idx,
			"%s %s range [%d,%d) of %s (%d bytes): out of bounds for every admitted address",
			kind, memVerb(in), lo, hi, o.Sym, size)
	default:
		rep(SevWarning, idx,
			"%s %s range [%d,%d) of %s (%d bytes): may be out of bounds",
			kind, memVerb(in), lo, hi, o.Sym, size)
	}
}

func memVerb(in isa.Instr) string {
	if in.IsStore() {
		return "store"
	}
	return "load"
}
