package verify

import (
	"fmt"

	"macs/internal/asm"
	"macs/internal/isa"
)

// resources walks the inner vectorized loop (the code the MACS model
// bounds) replaying the C-240 chime-formation rules, and warns where the
// single memory port or the register-pair limits force a chime split —
// legal programs that will run slower than their instruction mix
// suggests, the paper's LFK8 signature.
func resources(p *asm.Program) []Diagnostic {
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		return nil
	}
	var ds []Diagnostic
	warn := func(i int, msg string) {
		ds = append(ds, Diagnostic{SevWarning, loop.Start + i, msg})
	}

	var (
		pipesUsed  [4]bool
		pairReads  [4]int
		pairWrites [4]int
		hasMem     bool
		scalarMem  bool
		members    int
	)
	reset := func() {
		pipesUsed = [4]bool{}
		pairReads = [4]int{}
		pairWrites = [4]int{}
		hasMem, scalarMem, members = false, false, 0
	}
	reset()

	for i, in := range loop.Body {
		if !in.IsVector() {
			if in.IsMemory() {
				if hasMem {
					warn(i, "single memory port: scalar memory access splits a chime carrying vector memory traffic")
					reset()
				} else {
					scalarMem = true
				}
			}
			continue
		}
		if _, ok := isa.VectorTiming(in.Op); !ok {
			continue // structural pass reports the missing timing
		}
		split := false
		if members > 0 {
			if pipesUsed[in.Pipe()] {
				split = true // ordinary chime formation, not a finding
			}
			if scalarMem && in.IsMemory() {
				warn(i, "single memory port: vector memory access follows a scalar memory access and starts a new chime")
				split = true
			}
			var r, w [4]int
			r, w = pairReads, pairWrites
			accumulatePairs(in, &r, &w)
			for pr := 0; pr < 4; pr++ {
				if r[pr] > isa.PairMaxReads || w[pr] > isa.PairMaxWrites {
					warn(i, fmt.Sprintf("register pair pressure on {v%d,v%d}: more than %d reads or %d write per chime forces a split",
						pr, pr+4, isa.PairMaxReads, isa.PairMaxWrites))
					split = true
					break
				}
			}
		}
		if split {
			reset()
		}
		members++
		pipesUsed[in.Pipe()] = true
		if in.IsMemory() {
			hasMem = true
		}
		accumulatePairs(in, &pairReads, &pairWrites)
	}
	return ds
}

func accumulatePairs(in isa.Instr, reads, writes *[4]int) {
	for _, r := range in.VectorReads() {
		reads[r.Pair()]++
	}
	if w, ok := in.VectorWrite(); ok {
		writes[w.Pair()]++
	}
}
