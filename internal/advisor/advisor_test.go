package advisor

import (
	"strings"
	"testing"

	"macs/internal/asm"
	"macs/internal/ax"
	"macs/internal/compiler"
	"macs/internal/core"
	"macs/internal/lfk"
	"macs/internal/vm"
)

// diagnoseKernel runs one case-study kernel and feeds its numbers in.
// (It rebuilds the measurement inline rather than via
// internal/experiments, which itself imports this package.)
func diagnoseKernel(t *testing.T, id int) Diagnosis {
	t.Helper()
	return diagnoseKernelAttr(t, id, nil)
}

// diagnoseKernelAttr is diagnoseKernel with a measured stall-attribution
// ledger supplied.
func diagnoseKernelAttr(t *testing.T, id int, attr *vm.Attribution) Diagnosis {
	t.Helper()
	k, err := lfk.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	c, err := lfk.Compile(k, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := asm.InnerVectorLoop(c.Program)
	if !ok {
		t.Fatal("no vector loop")
	}
	analysis := core.Analyze(k.Paper.MA, loop.Body, 128, core.DefaultRules())
	m, err := ax.Measure(c.Program, vm.DefaultConfig(), func(cpu *vm.CPU) error {
		mem := cpu.Memory()
		for name, val := range k.Ints {
			base, _ := mem.SymbolAddr(compiler.DataSym(name))
			if err := mem.WriteI64(base, val); err != nil {
				return err
			}
		}
		for name, val := range k.Reals {
			base, _ := mem.SymbolAddr(compiler.DataSym(name))
			if err := mem.WriteF64(base, val); err != nil {
				return err
			}
		}
		for name, vals := range k.Arrays {
			base, _ := mem.SymbolAddr(compiler.DataSym(name))
			for i, v := range vals {
				if err := mem.WriteF64(base+int64(i*8), v); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return Diagnose(Inputs{
		Analysis: analysis,
		TP:       k.CPL(m.TP),
		TA:       k.CPL(m.TA),
		TX:       k.CPL(m.TX),
		TMACSD:   core.MACSDBound(loop.Body, 128, core.DefaultRules()).CPL,
		Attr:     attr,
	})
}

func TestLFK1Diagnosis(t *testing.T) {
	d := diagnoseKernel(t, 1)
	// Paper §4.4: "The gap between the MA bound and the MAC bound is
	// caused by the extra memory references inserted by the compiler."
	if !d.Has(CauseCompilerWork) {
		t.Errorf("LFK1 should report compiler-inserted work:\n%s", d)
	}
}

func TestLFK12Diagnosis(t *testing.T) {
	d := diagnoseKernel(t, 12)
	if !d.Has(CauseCompilerWork) {
		t.Errorf("LFK12 should report compiler-inserted work (reloaded Y):\n%s", d)
	}
}

func TestLFK8Diagnosis(t *testing.T) {
	d := diagnoseKernel(t, 8)
	// Paper §4.4: scalar loads splitting potential chimes; the A and X
	// processes are poorly overlapped.
	if !d.Has(CauseScalarSplit) {
		t.Errorf("LFK8 should report scalar-split chimes:\n%s", d)
	}
	if !d.Has(CausePoorOverlap) {
		t.Errorf("LFK8 should report poor A/X overlap:\n%s", d)
	}
}

func TestLFK2Diagnosis(t *testing.T) {
	d := diagnoseKernel(t, 2)
	// Paper §4.4: "unmodeled activity dominates the performance of this
	// kernel" — outer loop overhead, scalar code.
	if !d.Has(CauseUnmodeledScalar) && !d.Has(CausePoorOverlap) {
		t.Errorf("LFK2 should flag unmodeled scalar/overlap problems:\n%s", d)
	}
	if d.Primary() == CauseNearBound {
		t.Errorf("LFK2 is nowhere near its bound:\n%s", d)
	}
}

func TestLFK10Diagnosis(t *testing.T) {
	d := diagnoseKernel(t, 10)
	// Paper: LFK 3/9/10 achieve close to deliverable performance.
	if !d.Has(CauseNearBound) {
		t.Errorf("LFK10 should be near its bound:\n%s", d)
	}
	// And memory is the dominant resource (t_a >> t_x).
	if !d.Has(CauseMemoryBound) {
		t.Errorf("LFK10 should be memory-bound:\n%s", d)
	}
}

func TestDecompositionFinding(t *testing.T) {
	// A same-bank stride triggers the D-level finding.
	p := asm.MustParse(`
.data a 262144
	mov #256,vs
	ld.l a(a0),v0
	mul.d v0,v1,v2
`)
	a := core.Analyze(core.Workload{FA: 0, FM: 1, Loads: 1}, p.Instrs, 128, core.DefaultRules())
	dBound := core.MACSDBound(p.Instrs, 128, core.DefaultRules()).CPL
	d := Diagnose(Inputs{Analysis: a, TP: dBound * 1.05, TA: dBound, TX: 1.1, TMACSD: dBound})
	if !d.Has(CauseDecomposition) {
		t.Errorf("same-bank stride should report decomposition:\n%s", d)
	}
}

func TestDiagnoseEmptyInputs(t *testing.T) {
	d := Diagnose(Inputs{})
	if len(d.Findings) != 0 || d.Primary() != "" {
		t.Errorf("empty inputs produced findings: %+v", d)
	}
	if !strings.Contains(d.String(), "no findings") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestFindingsRankedByShare(t *testing.T) {
	d := diagnoseKernel(t, 2)
	for i := 1; i < len(d.Findings); i++ {
		if d.Findings[i].Share > d.Findings[i-1].Share {
			t.Errorf("findings not ranked: %v", d.Findings)
		}
	}
}

func TestStringRendering(t *testing.T) {
	d := diagnoseKernel(t, 1)
	s := d.String()
	if !strings.Contains(s, "1. [") || !strings.Contains(s, "->") {
		t.Errorf("diagnosis rendering:\n%s", s)
	}
}

func TestAllKernelsProduceFindings(t *testing.T) {
	for _, k := range lfk.All() {
		d := diagnoseKernel(t, k.ID)
		if len(d.Findings) == 0 {
			t.Errorf("lfk%d: no findings at all", k.ID)
		}
	}
}

func TestMeasuredShareSynthetic(t *testing.T) {
	// Chime-split dominates the pipes: 300 of 1000 cycles on each pipe.
	var attr vm.Attribution
	const cycles = 1000
	for lane := 0; lane < vm.NumLanes; lane++ {
		attr.Lanes[lane].Issue = 400
		attr.Lanes[lane].Stalls[vm.StallDrain] = cycles - 400
	}
	for lane := vm.LaneASU + 1; lane < vm.NumLanes; lane++ {
		attr.Lanes[lane].Stalls[vm.StallDrain] -= 300
		attr.Lanes[lane].Stalls[vm.StallChimeSplit] = 300
	}
	if err := attr.Conserved(cycles); err != nil {
		t.Fatal(err)
	}
	if got := measuredShare(&attr, CauseScalarSplit); got != 0.3 {
		t.Errorf("measuredShare(scalar-split) = %v, want 0.3", got)
	}
	// No attribution counterpart, nil ledger and empty ledger all yield 0.
	if got := measuredShare(&attr, CauseCompilerWork); got != 0 {
		t.Errorf("measuredShare(compiler-work) = %v, want 0", got)
	}
	if got := measuredShare(nil, CauseScalarSplit); got != 0 {
		t.Errorf("measuredShare(nil) = %v, want 0", got)
	}
	var empty vm.Attribution
	if got := measuredShare(&empty, CauseScalarSplit); got != 0 {
		t.Errorf("measuredShare(empty) = %v, want 0", got)
	}
}

// runKernelAttr simulates one kernel and returns its stall attribution.
func runKernelAttr(t *testing.T, id int) *vm.Attribution {
	t.Helper()
	k, err := lfk.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	c, err := lfk.Compile(k, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := c.Run(vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attr.Conserved(st.Cycles); err != nil {
		t.Fatal(err)
	}
	return &st.Attr
}

func TestDiagnosisWithMeasuredAttribution(t *testing.T) {
	// LFK8's signature is scalar loads splitting chimes; with the run's
	// ledger supplied the finding carries measured corroboration.
	attr := runKernelAttr(t, 8)
	d := diagnoseKernelAttr(t, 8, attr)
	if !d.Has(CauseScalarSplit) {
		t.Fatalf("LFK8 should report scalar-split chimes:\n%s", d)
	}
	for _, f := range d.Findings {
		if f.Cause != CauseScalarSplit {
			continue
		}
		if f.Measured <= 0 {
			t.Errorf("scalar-split finding has no measured share: %+v", f)
		}
		if !strings.Contains(f.Detail, "[measured:") {
			t.Errorf("detail lacks measured corroboration: %s", f.Detail)
		}
	}
	// Ranking is monotone in Share+Measured.
	for i := 1; i < len(d.Findings); i++ {
		a, b := d.Findings[i-1], d.Findings[i]
		if b.Share+b.Measured > a.Share+a.Measured {
			t.Errorf("findings not ranked by share+measured: %+v", d.Findings)
		}
	}
}

func TestDependenceLimitedFinding(t *testing.T) {
	// A loop whose dependence critical path (t_CP, from internal/depgraph)
	// charges more time than the resource bound is latency-limited: the
	// finding must surface and recommend attacking the recurrence.
	p := asm.MustParse(`
.data a 262144
	mov #8,vs
	ld.l a(a0),v0
	mul.d v0,v1,v2
`)
	a := core.Analyze(core.Workload{FA: 0, FM: 1, Loads: 1}, p.Instrs, 128, core.DefaultRules())
	a.TCP = a.MACS.CPL * 2.0
	d := Diagnose(Inputs{Analysis: a, TP: a.TCP * 1.05, TA: 1.0, TX: 1.0})
	if !d.Has(CauseDependenceLimited) {
		t.Fatalf("t_CP twice t_MACS should report dependence-limited:\n%s", d)
	}
	for _, f := range d.Findings {
		if f.Cause != CauseDependenceLimited {
			continue
		}
		if !strings.Contains(f.Detail, "critical path") {
			t.Errorf("detail does not name the critical path: %s", f.Detail)
		}
		if !strings.Contains(f.Suggestion, "reassociate") {
			t.Errorf("suggestion does not recommend reassociation: %s", f.Suggestion)
		}
	}

	// With t_CP below the resource bound the finding must stay silent.
	a.TCP = a.MACS.CPL * 0.5
	d = Diagnose(Inputs{Analysis: a, TP: a.MACS.CPL * 1.05, TA: 1.0, TX: 1.0})
	if d.Has(CauseDependenceLimited) {
		t.Errorf("t_CP below t_MACS reported dependence-limited:\n%s", d)
	}
}
