// Package advisor automates the performance diagnosis methodology of the
// paper's §4.4 and conclusion ("we believe that this approach can be
// generalized and automated... incorporated within a goal-directed
// optimizing compiler"): given a kernel's bounds hierarchy and its
// measured, A-process and X-process run times, it names the causes of
// each gap and ranks them by the share of run time they explain.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"macs/internal/core"
	"macs/internal/vm"
)

// Cause identifies one diagnosed performance loss.
type Cause string

// The causes the MACS hierarchy can distinguish.
const (
	// CauseCompilerWork: t_MAC > t_MA — operations the compiler inserted
	// (shifted-reuse reloads, spills).
	CauseCompilerWork Cause = "compiler-inserted-work"
	// CauseScheduleEffects: t_MACS > t_MAC — bubbles, refresh, and chime
	// splits charged by the schedule model.
	CauseScheduleEffects Cause = "schedule-effects"
	// CauseScalarSplit: t_MACS >> max(t_m', t_f') — scalar memory
	// accesses splitting potential chimes (the LFK8 signature).
	CauseScalarSplit Cause = "scalar-loads-split-chimes"
	// CausePoorOverlap: t_p > max(t_a, t_x) by a wide margin — the
	// access and execute processes do not overlap (paper Eq. 18).
	CausePoorOverlap Cause = "poor-access-execute-overlap"
	// CauseMemoryBound: t_a >> t_x and t_p ~ t_a — performance is
	// memory-port limited.
	CauseMemoryBound Cause = "memory-bound"
	// CauseExecuteBound: t_x >> t_a and t_p ~ t_x.
	CauseExecuteBound Cause = "execute-bound"
	// CauseUnmodeledScalar: both t_a and t_x far above their reduced
	// bounds — scalar code and short-vector overhead dominate (the
	// LFK 2/4/6 signature).
	CauseUnmodeledScalar Cause = "unmodeled-scalar-or-short-vectors"
	// CauseNearBound: measured within 10% of t_MACS — the loop achieves
	// its deliverable performance.
	CauseNearBound Cause = "near-bound"
	// CauseDecomposition: the MACS-D bound exceeds MACS — nonunit
	// strides collide in the memory banks.
	CauseDecomposition Cause = "data-decomposition"
	// CauseDependenceLimited: t_CP > t_MACS — the dependence critical
	// path through the loop body (internal/depgraph) charges more time
	// than any resource, so bandwidth and pipes are not the limiter.
	CauseDependenceLimited Cause = "dependence-limited"
)

// Finding is one diagnosed cause with its magnitude.
type Finding struct {
	Cause Cause
	// Share is the fraction of measured run time this cause explains
	// (0..1), used for ranking.
	Share float64
	// Measured is the fraction of VP pipe cycles the simulator's stall
	// attribution directly charged to this cause (0 when no attribution
	// was supplied or the cause has no attribution counterpart). It
	// corroborates the model-derived Share with measurement and breaks
	// ranking ties.
	Measured float64
	// Detail is a one-line human-readable explanation with numbers.
	Detail string
	// Suggestion names the level of the stack to attack (application,
	// compiler, machine), per the paper's goal-directed framing.
	Suggestion string
}

// Inputs collects everything the diagnosis reads, all in CPL.
type Inputs struct {
	Analysis core.Analysis
	TP       float64 // measured full-code time
	TA       float64 // access-only measurement
	TX       float64 // execute-only measurement
	// TMACSD, when nonzero, is the decomposition-aware bound.
	TMACSD float64
	// Attr, when non-nil, is the simulator's measured stall attribution
	// for the run; findings then carry measured corroboration and rank by
	// model share plus measured share.
	Attr *vm.Attribution
}

// attrCauses maps diagnosis causes to the attribution buckets that
// measure them directly on the VP pipes.
var attrCauses = map[Cause][]vm.StallCause{
	CauseScheduleEffects: {vm.StallStartup, vm.StallBubble, vm.StallChimeSync, vm.StallRefresh},
	CauseScalarSplit:     {vm.StallChimeSplit, vm.StallScalar},
	CauseMemoryBound:     {vm.StallBankConflict, vm.StallRefresh, vm.StallContention, vm.StallPortArb},
	CauseDecomposition:   {vm.StallBankConflict},
}

// measuredShare returns the fraction of VP pipe cycles (three lanes, ASU
// excluded) the ledger charges to the given diagnosis cause.
func measuredShare(attr *vm.Attribution, c Cause) float64 {
	if attr == nil || attr.Empty() {
		return 0
	}
	causes, ok := attrCauses[c]
	if !ok {
		return 0
	}
	// With a conserved ledger every lane totals the run's cycle count, so
	// lane 0's total is the per-lane denominator.
	denom := float64(3 * attr.Lanes[vm.LaneASU].Total())
	if denom == 0 {
		return 0
	}
	var sum int64
	for lane := vm.LaneASU + 1; lane < vm.NumLanes; lane++ {
		for _, sc := range causes {
			sum += attr.Lanes[lane].Stalls[sc]
		}
	}
	return float64(sum) / denom
}

// Diagnosis is the ranked findings for one kernel.
type Diagnosis struct {
	Findings []Finding
}

// Diagnose applies the §4.4 rules.
func Diagnose(in Inputs) Diagnosis {
	var d Diagnosis
	a := in.Analysis
	if in.TP <= 0 {
		return d
	}
	add := func(c Cause, share float64, detail, suggestion string) {
		if share < 0.02 {
			return // below noise
		}
		f := Finding{Cause: c, Share: share, Detail: detail, Suggestion: suggestion}
		if m := measuredShare(in.Attr, c); m > 0 {
			f.Measured = m
			f.Detail += fmt.Sprintf(" [measured: %.1f%% of pipe cycles]", 100*m)
		}
		d.Findings = append(d.Findings, f)
	}

	// Level 1: compiler-inserted work.
	if gap := a.TMAC - a.TMA; gap > 0 {
		add(CauseCompilerWork, gap/in.TP,
			fmt.Sprintf("t_MAC %.2f exceeds t_MA %.2f: the compiler adds %+.2f CPL of operations (reloads/spills)", a.TMAC, a.TMA, gap),
			"compiler: exploit shifted reuse in vector registers; application: restructure reuse")
	}

	// Level 2: schedule effects, with the scalar-split special case.
	if gap := a.MACS.CPL - a.TMAC; gap > 0 {
		compMax := a.MAC.TM()
		if f := a.MAC.TF(); f > compMax {
			compMax = f
		}
		if a.MACS.CPL > 1.15*compMax {
			add(CauseScalarSplit, gap/in.TP,
				fmt.Sprintf("t_MACS %.2f far exceeds the component bound %.2f: scalar memory accesses split potential chimes", a.MACS.CPL, compMax),
				"compiler: keep loop invariants in registers; machine: more scalar registers")
		} else {
			add(CauseScheduleEffects, gap/in.TP,
				fmt.Sprintf("t_MACS %.2f vs t_MAC %.2f: tailgating bubbles and refresh cost %+.2f CPL", a.MACS.CPL, a.TMAC, gap),
				"machine: reduce pipe restart penalty")
		}
	}

	// Decomposition (MACS-D extension).
	if in.TMACSD > a.MACS.CPL*1.02 {
		add(CauseDecomposition, (in.TMACSD-a.MACS.CPL)/in.TP,
			fmt.Sprintf("t_MACSD %.2f exceeds t_MACS %.2f: nonunit strides collide in the memory banks", in.TMACSD, a.MACS.CPL),
			"application: pad leading dimensions to odd sizes")
	}

	// Dependence critical path (depgraph extension): when the latency
	// chain through the loop body bounds tighter than the resource
	// model, more bandwidth or pipes will not help — the recurrence
	// itself must be shortened.
	if a.TCP > 1.10*a.MACS.CPL {
		add(CauseDependenceLimited, (a.TCP-a.MACS.CPL)/in.TP,
			fmt.Sprintf("t_CP %.2f exceeds t_MACS %.2f: the dependence critical path, not a resource, limits the loop", a.TCP, a.MACS.CPL),
			"compiler: reassociate the recurrence and chain producers to consumers; application: break the loop-carried dependence")
	}

	// Resource balance from the A/X decomposition — which process
	// dominates, independent of how well the bound explains t_p.
	if in.TA > 0 && in.TX > 0 {
		switch {
		case in.TA > 1.25*in.TX:
			add(CauseMemoryBound, (in.TA-in.TX)/in.TP,
				fmt.Sprintf("t_a %.2f dominates t_x %.2f: the memory port is the bottleneck", in.TA, in.TX),
				"application/compiler: reduce memory traffic (reuse, blocking)")
		case in.TX > 1.25*in.TA:
			add(CauseExecuteBound, (in.TX-in.TA)/in.TP,
				fmt.Sprintf("t_x %.2f dominates t_a %.2f: the FP pipes are the bottleneck", in.TX, in.TA),
				"application: reduce arithmetic or balance add/multiply pipes")
		}
	}

	// Level 3: the unmodeled gap, attributed via A/X.
	unmodeled := in.TP - a.MACS.CPL
	if unmodeled > 0.1*in.TP && in.TA > 0 && in.TX > 0 {
		maxAX := in.TA
		if in.TX > maxAX {
			maxAX = in.TX
		}
		if in.TP > 1.15*maxAX {
			add(CausePoorOverlap, (in.TP-maxAX)/in.TP,
				fmt.Sprintf("t_p %.2f well above max(t_a %.2f, t_x %.2f): access and execute serialize", in.TP, in.TA, in.TX),
				"compiler: interleave memory and FP chimes; remove chime-splitting scalar code")
		}
		// Both A and X far above their reduced bounds: scalar overhead.
		if a.MACSF.CPL > 0 && a.MACSM.CPL > 0 &&
			in.TX > 1.5*a.MACSF.CPL && in.TA > 1.5*a.MACSM.CPL {
			add(CauseUnmodeledScalar, unmodeled/in.TP,
				fmt.Sprintf("t_x %.2f >> t_MACS^f %.2f and t_a %.2f >> t_MACS^m %.2f: scalar code or short vectors dominate", in.TX, a.MACSF.CPL, in.TA, a.MACSM.CPL),
				"compiler: streamline loop setup; application: lengthen vectors")
		}
	}

	if in.TP <= 1.10*a.MACS.CPL {
		add(CauseNearBound, 1-unmodeled/in.TP,
			fmt.Sprintf("measured %.2f CPL is within 10%% of t_MACS %.2f: deliverable performance achieved", in.TP, a.MACS.CPL),
			"machine: only raising the bounds (bandwidth, pipes) helps further")
	}

	// Rank by model share plus measured corroboration; without an
	// attribution ledger this degenerates to the pure model ranking.
	sort.SliceStable(d.Findings, func(i, j int) bool {
		return d.Findings[i].Share+d.Findings[i].Measured > d.Findings[j].Share+d.Findings[j].Measured
	})
	return d
}

// Primary returns the top-ranked cause (CauseNearBound when the loop is
// already at its bound, empty when nothing was diagnosed).
func (d Diagnosis) Primary() Cause {
	if len(d.Findings) == 0 {
		return ""
	}
	return d.Findings[0].Cause
}

// Has reports whether a cause was diagnosed at any rank.
func (d Diagnosis) Has(c Cause) bool {
	for _, f := range d.Findings {
		if f.Cause == c {
			return true
		}
	}
	return false
}

// String renders the diagnosis as a ranked list.
func (d Diagnosis) String() string {
	if len(d.Findings) == 0 {
		return "no findings (insufficient data)\n"
	}
	var b strings.Builder
	for i, f := range d.Findings {
		fmt.Fprintf(&b, "%d. [%s] %.0f%% — %s\n   -> %s\n", i+1, f.Cause, 100*f.Share, f.Detail, f.Suggestion)
	}
	return b.String()
}
