// Package ax implements the paper's A/X performance measurement tooling
// (§3.6): from a compiled program it generates the A-process executable
// (all vector floating point operations deleted — the access-only code
// whose run time is t_a) and the X-process executable (all vector memory
// access operations deleted — the execute-only code whose run time is
// t_x). Control flow is preserved in both: scalar instructions, loop
// counters and branches are untouched.
//
// The numerical outputs of A/X runs are nonsense by construction; the
// X-process primes the vector registers with nonzero values so that
// arithmetic on never-loaded registers cannot fault.
package ax

import (
	"macs/internal/asm"
	"macs/internal/isa"
	"macs/internal/vm"
)

// AProcess returns a copy of the program with every vector floating point
// operation deleted. Running it measures t_a, the access-only time.
func AProcess(p *asm.Program) *asm.Program {
	return filterProgram(p, func(in isa.Instr) bool {
		if !in.IsVector() {
			return true
		}
		switch in.Class() {
		case isa.ClassFPAdd, isa.ClassFPMul:
			return false
		}
		return true
	})
}

// XProcess returns a copy of the program with every vector memory access
// operation deleted. Running it measures t_x, the execute-only time.
func XProcess(p *asm.Program) *asm.Program {
	return filterProgram(p, func(in isa.Instr) bool {
		return !(in.IsVector() && in.IsMemory())
	})
}

// filterProgram deletes instructions failing keep, remapping labels to
// the following surviving instruction so control flow is preserved.
func filterProgram(p *asm.Program, keep func(isa.Instr) bool) *asm.Program {
	q := p.Clone()
	newIndex := make([]int, len(q.Instrs)+1)
	var out []isa.Instr
	for i, in := range q.Instrs {
		newIndex[i] = len(out)
		if keep(in) {
			out = append(out, in)
		}
	}
	newIndex[len(q.Instrs)] = len(out)
	for name, idx := range q.Labels {
		q.Labels[name] = newIndex[idx]
	}
	// Instr.Label fields are cosmetic; rebuild them from the map.
	for i := range out {
		out[i].Label = ""
	}
	for name, idx := range q.Labels {
		if idx < len(out) && out[idx].Label == "" {
			out[idx].Label = name
		}
	}
	q.Instrs = out
	return q
}

// PrimeVectorRegisters fills every vector register with large, relatively
// prime, nonzero values (paper §3.6) so X-process arithmetic on
// never-loaded registers cannot produce floating point exceptions.
func PrimeVectorRegisters(cpu *vm.CPU) {
	primes := []float64{100003, 100019, 100043, 100057, 100069, 100103, 100109, 100129}
	for r := 0; r < isa.NumVRegs; r++ {
		vals := make([]float64, isa.VLMax)
		for k := range vals {
			vals[k] = primes[r] + float64(k)
		}
		cpu.SetV(r, vals)
	}
}

// Measurement is one kernel's A/X outcome in cycles.
type Measurement struct {
	TP int64 // full code
	TA int64 // access-only (A-process)
	TX int64 // execute-only (X-process)
}

// Measure runs the full program, the A-process and the X-process under
// the same configuration and returns their cycle counts. prime, when not
// nil, primes memory inputs before each run.
func Measure(p *asm.Program, cfg vm.Config, prime func(*vm.CPU) error) (Measurement, error) {
	var m Measurement
	run := func(prog *asm.Program, primeRegs bool) (int64, error) {
		cpu := vm.New(cfg)
		if err := cpu.Load(prog); err != nil {
			return 0, err
		}
		if prime != nil {
			if err := prime(cpu); err != nil {
				return 0, err
			}
		}
		if primeRegs {
			PrimeVectorRegisters(cpu)
		}
		st, err := cpu.Run()
		if err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}
	var err error
	if m.TP, err = run(p, false); err != nil {
		return m, err
	}
	if m.TA, err = run(AProcess(p), false); err != nil {
		return m, err
	}
	if m.TX, err = run(XProcess(p), true); err != nil {
		return m, err
	}
	return m, nil
}
