package ax

import (
	"testing"

	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/core"
	"macs/internal/isa"
	"macs/internal/lfk"
	"macs/internal/vm"
)

func compiled(t *testing.T, id int) *lfk.Compiled {
	t.Helper()
	k, err := lfk.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	c, err := lfk.Compile(k, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAProcessDeletesVectorFP(t *testing.T) {
	c := compiled(t, 1)
	a := AProcess(c.Program)
	for _, in := range a.Instrs {
		if in.IsVector() {
			switch in.Class() {
			case isa.ClassFPAdd, isa.ClassFPMul:
				t.Fatalf("A-process kept vector FP op %s", in)
			}
		}
	}
	// Vector memory operations survive: 3 loads + 1 store per strip.
	counts := asm.VectorCount(a.Instrs)
	if counts[isa.ClassLoad] == 0 || counts[isa.ClassStore] == 0 {
		t.Errorf("A-process lost memory operations: %v", counts)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("A-process program invalid: %v", err)
	}
}

func TestXProcessDeletesVectorMemory(t *testing.T) {
	c := compiled(t, 1)
	x := XProcess(c.Program)
	for _, in := range x.Instrs {
		if in.IsVector() && in.IsMemory() {
			t.Fatalf("X-process kept vector memory op %s", in)
		}
	}
	counts := asm.VectorCount(x.Instrs)
	if counts[isa.ClassFPMul] == 0 || counts[isa.ClassFPAdd] == 0 {
		t.Errorf("X-process lost FP operations: %v", counts)
	}
	// Scalar loads (constants, counters) must survive.
	var scalarLoads int
	for _, in := range x.Instrs {
		if !in.IsVector() && in.IsLoad() {
			scalarLoads++
		}
	}
	if scalarLoads == 0 {
		t.Error("X-process lost scalar loads (control flow would break)")
	}
	if err := x.Validate(); err != nil {
		t.Fatalf("X-process program invalid: %v", err)
	}
}

func TestLabelRemapping(t *testing.T) {
	// A label attached to a deleted instruction moves to the next
	// surviving one.
	p := asm.MustParse(`
.data a 2048
	mov #8,vs
	mov #128,s0
L1:
	mov s0,vl
	ld.l a(a0),v0
	add.d v0,v1,v2
	sub.w #128,s0
	lt.w #0,s0
	jbrs.t L1
`)
	x := XProcess(p)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := x.Labels["L1"]
	if idx >= len(x.Instrs) || x.Instrs[idx].Op != isa.OpMov {
		t.Errorf("label L1 remapped to %d (%v)", idx, x.Instrs[idx])
	}
	// The vector load is gone; the add survives.
	counts := asm.VectorCount(x.Instrs)
	if counts[isa.ClassLoad] != 0 || counts[isa.ClassFPAdd] != 1 {
		t.Errorf("X-process counts = %v", counts)
	}
}

// TestLFK1AXMeasurements reproduces the paper's Table 5 row for LFK1:
// t_x about 3.1 CPL (vs t_MACS^f = 3.04) and t_a about 4.2 CPL (vs
// t_MACS^m = 4.14), with t_p >= max(t_a, t_x).
func TestLFK1AXMeasurements(t *testing.T) {
	c := compiled(t, 1)
	cpuPrime := func(cpu *vm.CPU) error {
		fresh, err := c.NewCPU(vm.DefaultConfig())
		_ = fresh
		return err
	}
	_ = cpuPrime
	m, err := Measure(c.Program, vm.DefaultConfig(), func(cpu *vm.CPU) error {
		// Reuse the kernel priming (inputs only matter for the full run).
		return primeKernel(c, cpu)
	})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(c.Kernel.Elements)
	tp, ta, tx := float64(m.TP)/n, float64(m.TA)/n, float64(m.TX)/n
	if tx < 3.0 || tx > 3.6 {
		t.Errorf("t_x = %.3f CPL, want near 3.1 (paper 3.13)", tx)
	}
	if ta < 4.0 || ta > 4.6 {
		t.Errorf("t_a = %.3f CPL, want near 4.2 (paper 4.20)", ta)
	}
	if tp < ta-0.2 || tp < tx-0.2 {
		t.Errorf("t_p (%.3f) below max(t_a=%.3f, t_x=%.3f)", tp, ta, tx)
	}
	if tp > ta+tx {
		t.Errorf("t_p (%.3f) above t_a+t_x (%.3f): impossible overlap", tp, ta+tx)
	}
}

func primeKernel(c *lfk.Compiled, cpu *vm.CPU) error {
	k := c.Kernel
	m := cpu.Memory()
	for name, val := range k.Ints {
		base, _ := m.SymbolAddr(compiler.DataSym(name))
		if err := m.WriteI64(base, val); err != nil {
			return err
		}
	}
	for name, val := range k.Reals {
		base, _ := m.SymbolAddr(compiler.DataSym(name))
		if err := m.WriteF64(base, val); err != nil {
			return err
		}
	}
	for name, vals := range k.Arrays {
		base, _ := m.SymbolAddr(compiler.DataSym(name))
		for i, v := range vals {
			if err := m.WriteF64(base+int64(i*8), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// TestAXBoundsRelationAllKernels checks the Eq. 18 shape on every kernel:
// max(t_a, t_x) <= t_p (within measurement slack).
func TestAXBoundsRelationAllKernels(t *testing.T) {
	for _, k := range lfk.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			c, err := lfk.Compile(k, compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			m, err := Measure(c.Program, vm.DefaultConfig(), func(cpu *vm.CPU) error {
				return primeKernel(c, cpu)
			})
			if err != nil {
				t.Fatal(err)
			}
			slack := 1.02 // A/X codes keep all scalar work; tiny timing noise allowed
			if float64(m.TP)*slack < float64(m.TA) || float64(m.TP)*slack < float64(m.TX) {
				t.Errorf("t_p=%d below t_a=%d or t_x=%d", m.TP, m.TA, m.TX)
			}
			t.Logf("lfk%d: t_p=%.3f t_a=%.3f t_x=%.3f CPL", k.ID,
				k.CPL(m.TP), k.CPL(m.TA), k.CPL(m.TX))
		})
	}
}

// TestXProcessMatchesMACSF: the execute-only measurement tracks the
// reduced-list bound t_MACS^f for the well-behaved kernels.
func TestXProcessMatchesMACSF(t *testing.T) {
	c := compiled(t, 1)
	loop, _ := asm.InnerVectorLoop(c.Program)
	f := core.MACSBound(core.StripMemOps(loop.Body), 128, core.DefaultRules())
	m, err := Measure(c.Program, vm.DefaultConfig(), func(cpu *vm.CPU) error {
		return primeKernel(c, cpu)
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := float64(m.TX) / float64(c.Kernel.Elements)
	if tx < f.CPL {
		t.Errorf("measured t_x %.3f below bound t_MACS^f %.3f", tx, f.CPL)
	}
	if tx > f.CPL*1.25 {
		t.Errorf("measured t_x %.3f too far above bound %.3f", tx, f.CPL)
	}
}

func TestPrimeVectorRegisters(t *testing.T) {
	cpu := vm.New(vm.DefaultConfig())
	PrimeVectorRegisters(cpu)
	for r := 0; r < isa.NumVRegs; r++ {
		for k := 0; k < isa.VLMax; k += 17 {
			if cpu.VElem(r, k) == 0 {
				t.Fatalf("v%d[%d] is zero after priming", r, k)
			}
		}
	}
}
