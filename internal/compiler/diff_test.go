package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"macs/internal/ftn"
	"macs/internal/vm"
)

// This file differential-tests the whole pipeline: randomly generated
// kernels are executed twice — compiled to Convex assembly and run on the
// cycle-level simulator, and interpreted directly over the AST — and the
// results must agree. Any disagreement is a compiler or simulator bug.

// genKernel emits a random but well-formed kernel. Reads come from A and
// B, writes go to C and D (plus an optional reduction into Q), so the
// only possible dependences are write-write conflicts the dependence
// checker either proves safe or rejects into the scalar fallback — in
// both cases serial semantics hold and the interpreter is the oracle.
func genKernel(r *rand.Rand) string {
	lo := 2 + r.Intn(2)
	step := 1 + r.Intn(3)
	var b strings.Builder
	b.WriteString("PROGRAM FUZZ\n")
	b.WriteString("REAL A(4096), B(4096), C(4096), D(4096)\n")
	b.WriteString("REAL M2(7,512)\n") // 2D input: stride-7 column access
	b.WriteString("REAL Q, W1, W2\n")
	b.WriteString("INTEGER N, K, J\n")
	useJ := r.Intn(3) == 0
	if useJ {
		b.WriteString("J = 5\n")
	}
	fmt.Fprintf(&b, "DO K = %d, N, %d\n", lo, step)
	stmts := 1 + r.Intn(3)
	expanded := []string{}
	for s := 0; s < stmts; s++ {
		expr := genExpr(r, 0, lo, useJ, expanded)
		switch r.Intn(4) {
		case 0:
			// Reduction.
			op := "+"
			if r.Intn(2) == 0 {
				op = "-"
			}
			fmt.Fprintf(&b, "  Q = Q %s %s\n", op, expr)
		case 1:
			// Scalar expansion temp (used by later statements).
			name := fmt.Sprintf("W%d", len(expanded)+1)
			if len(expanded) < 2 {
				fmt.Fprintf(&b, "  %s = %s\n", name, expr)
				expanded = append(expanded, name)
				continue
			}
			fallthrough
		default:
			dst := []string{"C", "D"}[r.Intn(2)]
			off := r.Intn(3)
			fmt.Fprintf(&b, "  %s(K+%d) = %s\n", dst, off, expr)
		}
	}
	if useJ {
		b.WriteString("  J = J + 1\n")
	}
	b.WriteString("ENDDO\nEND\n")
	return b.String()
}

func genExpr(r *rand.Rand, depth, lo int, useJ bool, expanded []string) string {
	if depth >= 3 || r.Intn(3) == 0 {
		// Leaf.
		switch r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d.%d", 1+r.Intn(3), r.Intn(10))
		case 1:
			if len(expanded) > 0 {
				return expanded[r.Intn(len(expanded))]
			}
			fallthrough
		case 2:
			if useJ {
				return fmt.Sprintf("A(J+%d)", r.Intn(3))
			}
			return fmt.Sprintf("M2(%d,K)", 1+r.Intn(7))
		default:
			arr := []string{"A", "B"}[r.Intn(2)]
			off := r.Intn(4) - (lo - 1) // keep indices >= 1
			if off >= 0 {
				return fmt.Sprintf("%s(K+%d)", arr, off)
			}
			return fmt.Sprintf("%s(K-%d)", arr, -off)
		}
	}
	op := []string{"+", "-", "*"}[r.Intn(3)]
	return fmt.Sprintf("(%s %s %s)", genExpr(r, depth+1, lo, useJ, expanded),
		op, genExpr(r, depth+1, lo, useJ, expanded))
}

// TestDifferentialRandomKernels is the pipeline fuzz: AST interpretation
// is the oracle for compiled-and-simulated execution.
func TestDifferentialRandomKernels(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	const trials = 120
	const n = 300
	compiled := 0
	for trial := 0; trial < trials; trial++ {
		src := genKernel(r)
		prog, err := ftn.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generator produced invalid source: %v\n%s", trial, err, src)
		}
		opts := DefaultOptions()
		if trial%3 == 0 {
			// Exercise the scalar code generator on a third of the trials.
			opts.ForceScalar = true
		}
		code, err := Compile(src, opts)
		if err != nil {
			// Resource-limit rejections (stream groups) are acceptable.
			continue
		}
		compiled++

		// Deterministic inputs shared by both executions.
		aVals := make([]float64, 4096)
		bVals := make([]float64, 4096)
		mVals := make([]float64, 7*512)
		for i := range aVals {
			aVals[i] = 0.5 + float64((i*37)%19)/16
			bVals[i] = 0.25 + float64((i*53)%23)/32
		}
		for i := range mVals {
			mVals[i] = 0.125 + float64((i*11)%13)/8
		}

		// Oracle: direct AST interpretation.
		env := ftn.NewEnv(prog)
		copy(env.Reals["A"], aVals)
		copy(env.Reals["B"], bVals)
		copy(env.Reals["M2"], mVals)
		env.Ints["N"] = n
		if err := ftn.Interpret(prog, env); err != nil {
			t.Fatalf("trial %d: interpreter: %v\n%s", trial, err, src)
		}

		// Compiled execution on the simulator.
		cpu := vm.New(vm.DefaultConfig())
		if err := cpu.Load(code); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := cpu.Memory()
		for name, vals := range map[string][]float64{"A": aVals, "B": bVals, "M2": mVals} {
			base, _ := m.SymbolAddr(DataSym(name))
			for i, v := range vals {
				if err := m.WriteF64(base+int64(i*8), v); err != nil {
					t.Fatal(err)
				}
			}
		}
		nb, _ := m.SymbolAddr(DataSym("N"))
		if err := m.WriteI64(nb, n); err != nil {
			t.Fatal(err)
		}
		if _, err := cpu.Run(); err != nil {
			t.Fatalf("trial %d: simulator: %v\nsource:\n%s\nassembly:\n%s", trial, err, src, code)
		}

		// Compare outputs.
		for _, name := range []string{"C", "D", "Q"} {
			want, ok := env.Reals[name]
			if !ok {
				continue
			}
			base, ok := m.SymbolAddr(DataSym(name))
			if !ok {
				continue
			}
			for i, w := range want {
				got, err := m.ReadF64(base + int64(i*8))
				if err != nil {
					t.Fatal(err)
				}
				if !ftn.CloseEnough(got, w) {
					t.Fatalf("trial %d: %s(%d) = %v, want %v\nsource:\n%s\nassembly:\n%s",
						trial, name, i+1, got, w, src, code)
				}
			}
		}
	}
	if compiled < trials/2 {
		t.Errorf("only %d/%d generated kernels compiled — generator too aggressive", compiled, trials)
	}
	t.Logf("differential: %d/%d kernels compiled and matched the AST oracle", compiled, trials)
}

// TestInterpreterAgainstLFKReferences cross-checks the AST interpreter
// itself against the hand-written Go references on LFK1.
func TestInterpreterAgainstLFK1Reference(t *testing.T) {
	src := lfk1Src
	prog, err := ftn.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env := ftn.NewEnv(prog)
	env.Ints["N"] = 1001
	env.Reals["Q"][0] = 0.5
	env.Reals["R"][0] = 0.25
	env.Reals["T"][0] = 0.125
	for i := range env.Reals["Y"] {
		env.Reals["Y"][i] = 0.001*float64(i) + 0.5
	}
	for i := range env.Reals["ZX"] {
		env.Reals["ZX"][i] = 0.002*float64(i) + 0.25
	}
	if err := ftn.Interpret(prog, env); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 1001; k++ {
		y := 0.001*float64(k) + 0.5
		zx1 := 0.002*float64(k+10) + 0.25
		zx2 := 0.002*float64(k+11) + 0.25
		want := 0.5 + y*(0.25*zx1+0.125*zx2)
		if got := env.Reals["X"][k]; !ftn.CloseEnough(got, want) {
			t.Fatalf("X(%d) = %v, want %v", k+1, got, want)
		}
	}
}

// runBoth compiles (vector mode), simulates, interprets, and compares the
// named outputs; it is the harness for targeted pipeline cases.
func runBoth(t *testing.T, src string, n int64, outputs []string) {
	t.Helper()
	prog, err := ftn.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prime := func(name string, i int) float64 { return 0.25 + float64((i*31+len(name)*7)%17)/12 }

	env := ftn.NewEnv(prog)
	for _, d := range prog.Decls {
		if d.Kind != ftn.KindReal || !d.IsArray() {
			continue
		}
		for i := range env.Reals[d.Name] {
			env.Reals[d.Name][i] = prime(d.Name, i)
		}
	}
	env.Ints["N"] = n
	if err := ftn.Interpret(prog, env); err != nil {
		t.Fatal(err)
	}

	cpu := vm.New(vm.DefaultConfig())
	if err := cpu.Load(code); err != nil {
		t.Fatal(err)
	}
	m := cpu.Memory()
	for _, d := range prog.Decls {
		if d.Kind != ftn.KindReal || !d.IsArray() {
			continue
		}
		base, _ := m.SymbolAddr(DataSym(d.Name))
		for i := 0; i < d.Elems(); i++ {
			if err := m.WriteF64(base+int64(i*8), prime(d.Name, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	nb, _ := m.SymbolAddr(DataSym("N"))
	if err := m.WriteI64(nb, n); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(); err != nil {
		t.Fatalf("simulate: %v\n%s", err, code)
	}
	for _, name := range outputs {
		want := env.Reals[name]
		base, _ := m.SymbolAddr(DataSym(name))
		for i, w := range want {
			got, err := m.ReadF64(base + int64(i*8))
			if err != nil {
				t.Fatal(err)
			}
			if !ftn.CloseEnough(got, w) {
				t.Fatalf("%s(%d) = %v, want %v\n%s", name, i+1, got, w, code)
			}
		}
	}
}

// TestSpillPathFunctional forces vector-register spills (seven expanded
// temps live across two statements plus a reduction accumulator) and
// validates the spilled code end to end.
func TestSpillPathFunctional(t *testing.T) {
	src := `
PROGRAM SPILL
REAL A1(512), A2(512), A3(512), A4(512), A5(512), A6(512), A7(512)
REAL C(512), D(512)
REAL W1, W2, W3, W4, W5, W6, W7, Q
INTEGER N, I
DO I = 1, N
  W1 = A1(I)
  W2 = A2(I)
  W3 = A3(I)
  W4 = A4(I)
  W5 = A5(I)
  W6 = A6(I)
  W7 = A7(I)
  Q = Q + W1*W7
  C(I) = W1 + W2 + W3 + W4 + W5 + W6 + W7
  D(I) = W1 * W2 * W3 * W4 * W5 * W6 * W7
ENDDO
END
`
	code, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The point of the test: spill traffic must actually appear.
	if !strings.Contains(code.String(), "tmp_spill") {
		t.Errorf("no spill slots referenced — the register-pressure path is untested\n%s", code)
	}
	runBoth(t, src, 300, []string{"C", "D"})
}

// TestInvariantHoistingFunctional exercises the prologue evaluation of
// loop-invariant scalar arithmetic into constant slots.
func TestInvariantHoistingFunctional(t *testing.T) {
	src := `
PROGRAM HOIST
REAL A(512), C(512)
REAL P1, P2
INTEGER N, I
DO I = 1, N
  C(I) = (P1 + 2.0*P2) * A(I)
ENDDO
END
`
	runBoth(t, src, 400, []string{"C"})
}
