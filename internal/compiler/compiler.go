// Package compiler ties the Fortran-subset front end, the vectorizer and
// the code generator into the full compilation pipeline that stands in
// for the Convex fc compiler in this reproduction.
package compiler

import (
	"fmt"

	"macs/internal/asm"
	"macs/internal/codegen"
	"macs/internal/core"
	"macs/internal/ftn"
	"macs/internal/vectorize"
)

// Options re-exports the code generator options.
type Options = codegen.Options

// DefaultOptions returns the standard compilation options.
func DefaultOptions() Options { return codegen.DefaultOptions() }

// Compile parses, checks and lowers a Fortran-subset source.
func Compile(src string, opts Options) (*asm.Program, error) {
	prog, err := ftn.Parse(src)
	if err != nil {
		return nil, err
	}
	return codegen.Compile(prog, opts)
}

// CompileProgram lowers an already-parsed program.
func CompileProgram(p *ftn.Program, opts Options) (*asm.Program, error) {
	return codegen.Compile(p, opts)
}

// InnerLoop returns the deepest-nested DO loop of a program — the loop
// whose performance the MACS analysis targets.
func InnerLoop(p *ftn.Program) (*ftn.DoStmt, bool) {
	var best *ftn.DoStmt
	depth, bestDepth := 0, -1
	var walk func(body []ftn.Stmt)
	walk = func(body []ftn.Stmt) {
		for _, s := range body {
			if do, ok := s.(*ftn.DoStmt); ok {
				if depth > bestDepth {
					best, bestDepth = do, depth
				}
				depth++
				walk(do.Body)
				depth--
			}
		}
	}
	walk(p.Body)
	return best, best != nil
}

// MAWorkload computes the high-level MA workload (paper §3.1) of a
// source's inner loop.
func MAWorkload(src string) (core.Workload, error) {
	prog, err := ftn.Parse(src)
	if err != nil {
		return core.Workload{}, err
	}
	loop, ok := InnerLoop(prog)
	if !ok {
		return core.Workload{}, fmt.Errorf("compiler: no DO loop in program")
	}
	return vectorize.MAWorkload(prog, loop)
}

// DataSym returns the assembly data symbol of a Fortran variable, for
// priming inputs and reading outputs of compiled programs.
func DataSym(name string) string { return codegen.SymName(name) }
