package compiler

import (
	"math"
	"testing"

	"macs/internal/asm"
	"macs/internal/core"
	"macs/internal/ftn"
	"macs/internal/vm"
)

const lfk1Src = `
PROGRAM LFK1
REAL X(2001), Y(2001), ZX(2048)
REAL Q, R, T
INTEGER N, K
DO K = 1, N
  X(K) = Q + Y(K)*(R*ZX(K+10) + T*ZX(K+11))
ENDDO
END
`

// runCompiled compiles, primes and runs a program on the simulator.
func runCompiled(t *testing.T, src string, prime func(*vm.CPU)) (*vm.CPU, vm.Stats) {
	t.Helper()
	prog, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cpu := vm.New(vm.DefaultConfig())
	if err := cpu.Load(prog); err != nil {
		t.Fatal(err)
	}
	if prime != nil {
		prime(cpu)
	}
	st, err := cpu.Run()
	if err != nil {
		t.Fatalf("run failed: %v\nassembly:\n%s", err, prog)
	}
	return cpu, st
}

func setF(t *testing.T, c *vm.CPU, name string, idx int, v float64) {
	t.Helper()
	base, ok := c.Memory().SymbolAddr(DataSym(name))
	if !ok {
		t.Fatalf("symbol %s missing", name)
	}
	if err := c.Memory().WriteF64(base+int64(idx*8), v); err != nil {
		t.Fatal(err)
	}
}

func getF(t *testing.T, c *vm.CPU, name string, idx int) float64 {
	t.Helper()
	base, ok := c.Memory().SymbolAddr(DataSym(name))
	if !ok {
		t.Fatalf("symbol %s missing", name)
	}
	v, err := c.Memory().ReadF64(base + int64(idx*8))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func setI(t *testing.T, c *vm.CPU, name string, v int64) {
	t.Helper()
	base, ok := c.Memory().SymbolAddr(DataSym(name))
	if !ok {
		t.Fatalf("symbol %s missing", name)
	}
	if err := c.Memory().WriteI64(base, v); err != nil {
		t.Fatal(err)
	}
}

func TestCompileLFK1EndToEnd(t *testing.T) {
	const n = 1001
	q, r, tt := 0.5, 0.25, 0.125
	yv := func(k int) float64 { return 0.001*float64(k) + 0.5 }
	zxv := func(k int) float64 { return 0.002*float64(k) + 0.25 }
	cpu, st := runCompiled(t, lfk1Src, func(c *vm.CPU) {
		setI(t, c, "N", n)
		setF(t, c, "Q", 0, q)
		setF(t, c, "R", 0, r)
		setF(t, c, "T", 0, tt)
		for k := 0; k < 2048; k++ {
			if k < 2001 {
				setF(t, c, "Y", k, yv(k))
			}
			setF(t, c, "ZX", k, zxv(k))
		}
	})
	for k := 0; k < n; k++ {
		want := q + yv(k)*(r*zxv(k+10)+tt*zxv(k+11))
		got := getF(t, cpu, "X", k)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("X(%d) = %v, want %v", k+1, got, want)
		}
	}
	// Timing: the inner loop runs 8 strips of 4 chimes.
	if st.Chimes != 32 {
		t.Errorf("chimes = %d, want 32", st.Chimes)
	}
	cpl := float64(st.Cycles) / n
	if cpl < 4.20 || cpl > 4.65 {
		t.Errorf("measured CPL = %.3f, want in [4.20, 4.65] (paper: 4.26, bound 4.20)", cpl)
	}
}

func TestCompiledLFK1MatchesPaperStructure(t *testing.T) {
	prog, err := Compile(lfk1Src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := asm.InnerVectorLoop(prog)
	if !ok {
		t.Fatal("no vectorized inner loop in compiled LFK1")
	}
	mac := core.WorkloadFromAssembly(loop.Body)
	want := core.Workload{FA: 2, FM: 3, Loads: 3, Stores: 1}
	if mac != want {
		t.Fatalf("MAC workload = %+v, want %+v\n%s", mac, want, prog)
	}
	chimes := core.Partition(loop.Body, core.DefaultRules())
	if len(chimes) != 4 {
		t.Fatalf("chimes = %d, want 4 (paper §3.5)\n%s", len(chimes), prog)
	}
	res := core.MACSBound(loop.Body, 128, core.DefaultRules())
	if math.Abs(res.CPL-4.200) > 0.005 {
		t.Errorf("t_MACS = %.4f CPL, want 4.200\n%s", res.CPL, prog)
	}
}

func TestMAWorkloadHelper(t *testing.T) {
	w, err := MAWorkload(lfk1Src)
	if err != nil {
		t.Fatal(err)
	}
	if w != (core.Workload{FA: 2, FM: 3, Loads: 2, Stores: 1}) {
		t.Errorf("MA workload = %+v", w)
	}
}

func TestCompileReductionLoop(t *testing.T) {
	src := `
PROGRAM DOT
REAL Z(2048), X(2048), Q
INTEGER N, K
DO K = 1, N
  Q = Q + Z(K)*X(K)
ENDDO
END
`
	const n = 1001
	cpu, _ := runCompiled(t, src, func(c *vm.CPU) {
		setI(t, c, "N", n)
		setF(t, c, "Q", 0, 10.0)
		for k := 0; k < n; k++ {
			setF(t, c, "Z", k, float64(k%7)+0.5)
			setF(t, c, "X", k, float64(k%5)+0.25)
		}
	})
	want := 10.0
	for k := 0; k < n; k++ {
		want += (float64(k%7) + 0.5) * (float64(k%5) + 0.25)
	}
	got := getF(t, cpu, "Q", 0)
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("Q = %v, want %v", got, want)
	}
}

func TestCompileSecondaryInduction(t *testing.T) {
	src := `
PROGRAM SECIND
REAL X(2048), Y(2048), OUT(2048)
INTEGER N, J, LW
LW = 3
CDIR$ IVDEP
DO J = 5, N, 5
  OUT(J) = X(LW) + Y(J)
  LW = LW + 1
ENDDO
END
`
	const n = 500
	cpu, _ := runCompiled(t, src, func(c *vm.CPU) {
		setI(t, c, "N", n)
		for k := 0; k < 2048; k++ {
			setF(t, c, "X", k, float64(k))
			setF(t, c, "Y", k, 1000*float64(k))
		}
	})
	lw := 3
	for j := 5; j <= n; j += 5 {
		want := float64(lw-1) + 1000*float64(j-1)
		got := getF(t, cpu, "OUT", j-1)
		if got != want {
			t.Fatalf("OUT(%d) = %v, want %v", j, got, want)
		}
		lw++
	}
	// LW updated past the loop.
	base, _ := cpu.Memory().SymbolAddr(DataSym("LW"))
	v, _ := cpu.Memory().ReadI64(base)
	if int(v) != lw {
		t.Errorf("LW after loop = %d, want %d", v, lw)
	}
}

func TestCompileOuterScalarLoop(t *testing.T) {
	src := `
PROGRAM NEST
REAL A(64,8)
INTEGER I, J, N
DO J = 1, 8
DO I = 1, N
  A(I,J) = 2.0*A(I,J)
ENDDO
ENDDO
END
`
	const n = 64
	cpu, _ := runCompiled(t, src, func(c *vm.CPU) {
		setI(t, c, "N", n)
		for j := 0; j < 8; j++ {
			for i := 0; i < n; i++ {
				setF(t, c, "A", j*64+i, float64(j*64+i))
			}
		}
	})
	for j := 0; j < 8; j++ {
		for i := 0; i < n; i++ {
			want := 2 * float64(j*64+i)
			if got := getF(t, cpu, "A", j*64+i); got != want {
				t.Fatalf("A(%d,%d) = %v, want %v", i+1, j+1, got, want)
			}
		}
	}
}

func TestCompileGotoLoop(t *testing.T) {
	src := `
PROGRAM HALVE
INTEGER II, N, COUNT
II = N
COUNT = 0
100 CONTINUE
II = II / 2
COUNT = COUNT + 1
IF (II .GT. 1) GOTO 100
END
`
	cpu, _ := runCompiled(t, src, func(c *vm.CPU) {
		setI(t, c, "N", 64)
	})
	base, _ := cpu.Memory().SymbolAddr(DataSym("COUNT"))
	v, _ := cpu.Memory().ReadI64(base)
	if v != 6 {
		t.Errorf("COUNT = %d, want 6", v)
	}
}

func TestCompileScalarFallback(t *testing.T) {
	// A genuine recurrence cannot vectorize; the compiler must fall back
	// to scalar code and still compute correctly.
	src := `
PROGRAM REC
REAL A(256)
INTEGER I, N
DO I = 2, N
  A(I) = A(I-1) + 1.0
ENDDO
END
`
	const n = 100
	cpu, st := runCompiled(t, src, func(c *vm.CPU) {
		setI(t, c, "N", n)
		setF(t, c, "A", 0, 5.0)
	})
	if st.VectorInstrs != 0 {
		t.Errorf("recurrence loop used %d vector instructions", st.VectorInstrs)
	}
	for i := 1; i < n; i++ {
		want := 5.0 + float64(i)
		if got := getF(t, cpu, "A", i); got != want {
			t.Fatalf("A(%d) = %v, want %v", i+1, got, want)
		}
	}
}

func TestForceScalarOption(t *testing.T) {
	opts := DefaultOptions()
	opts.ForceScalar = true
	prog, err := Compile(lfk1Src, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range prog.Instrs {
		if in.IsVector() {
			t.Fatalf("ForceScalar emitted vector instruction %s", in)
		}
	}
}

func TestCompileZeroTripLoop(t *testing.T) {
	cpu, st := runCompiled(t, lfk1Src, func(c *vm.CPU) {
		setI(t, c, "N", 0)
	})
	_ = cpu
	if st.VectorInstrs != 0 {
		// The accumulator-free loop should skip entirely.
		t.Errorf("zero-trip loop executed %d vector instrs", st.VectorInstrs)
	}
}

func TestInnerLoopSelection(t *testing.T) {
	p := mustParse(t, `
PROGRAM P
REAL A(64)
INTEGER I, J, N
DO I = 1, N
DO J = 1, N
  A(J) = A(J) + 1.0
ENDDO
ENDDO
END
`)
	loop, ok := InnerLoop(p)
	if !ok || loop.Var != "J" {
		t.Fatalf("InnerLoop = %v, %v; want the J loop", loop, ok)
	}
}

func mustParse(t *testing.T, src string) *ftn.Program {
	t.Helper()
	p, err := ftn.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
