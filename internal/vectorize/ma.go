package vectorize

import (
	"fmt"

	"macs/internal/core"
	"macs/internal/ftn"
)

// MAWorkload performs the paper's MA analysis (§3.1) on the high-level
// inner loop: it counts the floating point additions and multiplications
// in the loop body, and the loads and stores that remain assuming perfect
// index analysis — array references with the same stride whose offsets
// fall in the same residue class form a single reused stream, values
// stored earlier in the iteration are forwarded in registers, and
// loop-invariant operands live in registers.
func MAWorkload(prog *ftn.Program, loop *ftn.DoStmt) (core.Workload, error) {
	sc, err := newScope(prog, loop)
	if err != nil {
		return core.Workload{}, err
	}
	var w core.Workload
	// Floating point operation counts from the statement expressions.
	for _, s := range loop.Body {
		a, ok := s.(*ftn.Assign)
		if !ok {
			return w, fmt.Errorf("vectorize: loop contains non-assignment statement %T", s)
		}
		if _, isInd := sc.secInds[a.LHS.Name]; isInd && len(a.LHS.Indices) == 0 {
			continue
		}
		fa, fm, err := countFlops(prog, a.RHS)
		if err != nil {
			return w, err
		}
		w.FA += fa
		w.FM += fm
	}
	// Memory streams with perfect reuse.
	accs, err := collectAccesses(sc)
	if err != nil {
		return w, err
	}
	loadStreams := make(map[string]bool)
	storeStreams := make(map[string]bool)
	written := make(map[string]bool)
	for _, a := range accs {
		if a.Aff.Invariant() {
			continue // register-resident
		}
		key := streamKey(a)
		if a.IsWrite {
			storeStreams[key] = true
			written[accessKey(a.Array, a.Aff)] = true
			continue
		}
		// A read of a location written earlier in the iteration is
		// forwarded in a register.
		if written[accessKey(a.Array, a.Aff)] {
			continue
		}
		loadStreams[key] = true
	}
	w.Loads = len(loadStreams)
	w.Stores = len(storeStreams)
	return w, nil
}

// streamKey groups accesses that perfect index analysis can serve from a
// single memory stream: same array, stride, symbolic base, and offset
// residue class modulo the stride.
func streamKey(a Access) string {
	stride := a.Aff.Stride
	if stride < 0 {
		stride = -stride
	}
	res := int64(0)
	if stride != 0 {
		res = ((a.Aff.Const % stride) + stride) % stride
	}
	return fmt.Sprintf("%s|%d|%s|%d", a.Array, a.Aff.Stride, a.Aff.BaseKey(), res)
}

// countFlops counts floating point additions (incl. subtractions and
// negations) and multiplications (incl. divisions) in a value expression,
// ignoring integer (index) arithmetic.
func countFlops(prog *ftn.Program, e ftn.Expr) (fa, fm int, err error) {
	switch x := e.(type) {
	case ftn.Bin:
		k, terr := ftn.TypeOf(prog, x)
		if terr != nil {
			return 0, 0, terr
		}
		la, lm, err := countFlops(prog, x.L)
		if err != nil {
			return 0, 0, err
		}
		ra, rm, err := countFlops(prog, x.R)
		if err != nil {
			return 0, 0, err
		}
		fa, fm = la+ra, lm+rm
		if k == ftn.KindReal {
			switch x.Op {
			case '+', '-':
				fa++
			case '*', '/':
				fm++
			}
		}
		return fa, fm, nil
	case ftn.Neg:
		fa, fm, err = countFlops(prog, x.X)
		if err != nil {
			return 0, 0, err
		}
		k, terr := ftn.TypeOf(prog, x)
		if terr != nil {
			return 0, 0, terr
		}
		if k == ftn.KindReal {
			fa++
		}
		return fa, fm, nil
	default:
		return 0, 0, nil
	}
}
