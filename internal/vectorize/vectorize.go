package vectorize

import (
	"fmt"

	"macs/internal/ftn"
)

// NodeKind classifies DAG nodes.
type NodeKind int

// Node kinds of the vector IR.
const (
	NLoad   NodeKind = iota // vector load from an array stream
	NStore                  // vector store to an array stream
	NConst                  // broadcast numeric constant
	NScalar                 // broadcast loop-invariant scalar (or array element)
	NBin                    // elementwise binary op (+ - * /)
	NNeg                    // elementwise negation
)

// Node is one value in the vectorized loop body DAG.
type Node struct {
	ID    int
	Kind  NodeKind
	Op    byte  // NBin: + - * /
	X, Y  *Node // operands (NStore: X is the stored value)
	Array string
	Aff   Affine
	Value float64 // NConst
	// Scalar is the invariant reference broadcast by an NScalar node (a
	// plain scalar or an invariant array element like Y(5)).
	Scalar *ftn.Ref
	// Src is the source expression of arithmetic nodes; code generation
	// uses it to hoist loop-invariant subtrees into scalar registers.
	Src ftn.Expr
	// After lists loads that must be emitted before this store: reads of
	// the same location in earlier statements (anti-dependences).
	After []*Node
}

func (n *Node) String() string {
	switch n.Kind {
	case NLoad:
		return fmt.Sprintf("load %s[%s+%d+%d*t]", n.Array, n.Aff.BaseKey(), n.Aff.Const, n.Aff.Stride)
	case NStore:
		return fmt.Sprintf("store %s[%s+%d+%d*t] <- n%d", n.Array, n.Aff.BaseKey(), n.Aff.Const, n.Aff.Stride, n.X.ID)
	case NConst:
		return fmt.Sprintf("const %g", n.Value)
	case NScalar:
		return "scalar " + n.Scalar.String()
	case NBin:
		return fmt.Sprintf("n%d %c n%d", n.X.ID, n.Op, n.Y.ID)
	case NNeg:
		return fmt.Sprintf("neg n%d", n.X.ID)
	}
	return "node?"
}

// Reduction is a recognized reduction: Target = Target Op sum(Expr over
// the loop). Target is a scalar or a loop-invariant array element.
type Reduction struct {
	Op     byte // '+' or '-'
	Expr   *Node
	Target *ftn.Ref
}

// Result is a vectorized inner loop.
type Result struct {
	Loop       *ftn.DoStmt
	Nodes      []*Node // topological (construction) order
	Stores     []*Node // store sinks, in statement order
	Reductions []Reduction
	SecInds    []SecInduction
	// Step is the constant loop step.
	Step int64
}

// builder constructs the DAG with common subexpression elimination and
// store-to-load forwarding.
type builder struct {
	sc     *scope
	nodes  []*Node
	cse    map[string]*Node
	stores []*Node
	// expanded maps scalar-expanded temporaries to their current node.
	expanded map[string]*Node
	// written maps "array|affine" of stores for forwarding; loadsOf maps
	// the same keys to load nodes for anti-dependence ordering.
	written map[string]*Node
	loadsOf map[string][]*Node
	reds    []Reduction
}

func (b *builder) intern(key string, mk func() *Node) *Node {
	if n, ok := b.cse[key]; ok {
		return n
	}
	n := mk()
	n.ID = len(b.nodes)
	b.nodes = append(b.nodes, n)
	b.cse[key] = n
	return n
}

func accessKey(arr string, a Affine) string {
	return fmt.Sprintf("%s|%s|%d|%d", arr, a.BaseKey(), a.Const, a.Stride)
}

// buildExpr converts a real-valued expression to a DAG node.
func (b *builder) buildExpr(e ftn.Expr) (*Node, error) {
	switch x := e.(type) {
	case ftn.Num:
		key := fmt.Sprintf("c|%v", x.Val)
		return b.intern(key, func() *Node { return &Node{Kind: NConst, Value: x.Val} }), nil
	case ftn.Neg:
		n, err := b.buildExpr(x.X)
		if err != nil {
			return nil, err
		}
		return b.intern(fmt.Sprintf("n|%d", n.ID), func() *Node { return &Node{Kind: NNeg, X: n, Src: x} }), nil
	case ftn.Bin:
		l, err := b.buildExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.buildExpr(x.R)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("b|%c|%d|%d", x.Op, l.ID, r.ID)
		return b.intern(key, func() *Node { return &Node{Kind: NBin, Op: x.Op, X: l, Y: r, Src: x} }), nil
	case *ftn.Ref:
		return b.buildRef(x)
	}
	return nil, fmt.Errorf("vectorize: unsupported expression %T", e)
}

func (b *builder) buildRef(r *ftn.Ref) (*Node, error) {
	if len(r.Indices) == 0 {
		if n, ok := b.expanded[r.Name]; ok {
			return n, nil
		}
		d, ok := b.sc.prog.Decl(r.Name)
		if !ok {
			return nil, fmt.Errorf("vectorize: undeclared %s", r.Name)
		}
		if d.Kind != ftn.KindReal {
			return nil, fmt.Errorf("vectorize: integer %s used as a value in vector context", r.Name)
		}
		if b.sc.realAssigned[r.Name] {
			// Assigned somewhere in the body but not yet on this scan:
			// reading last iteration's value is a loop-carried recurrence.
			return nil, fmt.Errorf("vectorize: %s carries a value across iterations (recurrence)", r.Name)
		}
		key := "s|" + r.Name
		return b.intern(key, func() *Node { return &Node{Kind: NScalar, Scalar: r} }), nil
	}
	acc, err := b.sc.refAccess(r, false)
	if err != nil {
		return nil, err
	}
	if acc.Aff.Invariant() {
		// Loop-invariant array element: broadcast like a scalar.
		key := "se|" + r.String()
		return b.intern(key, func() *Node { return &Node{Kind: NScalar, Scalar: r} }), nil
	}
	key := accessKey(acc.Array, acc.Aff)
	// Store-to-load forwarding: a read of a location written earlier in
	// the iteration reuses the stored value's register (the compiler
	// behaviour behind LFK8's MAC load count).
	if n, ok := b.written[key]; ok {
		return n, nil
	}
	ld := b.intern("l|"+key, func() *Node {
		return &Node{Kind: NLoad, Array: acc.Array, Aff: acc.Aff}
	})
	if len(b.loadsOf[key]) == 0 || b.loadsOf[key][len(b.loadsOf[key])-1] != ld {
		b.loadsOf[key] = append(b.loadsOf[key], ld)
	}
	return ld, nil
}

// Vectorize vectorizes an innermost loop. It returns an error when the
// loop cannot be vectorized (the caller then falls back to scalar code).
func Vectorize(prog *ftn.Program, loop *ftn.DoStmt) (*Result, error) {
	sc, err := newScope(prog, loop)
	if err != nil {
		return nil, err
	}
	for _, s := range loop.Body {
		if _, ok := s.(*ftn.Assign); !ok {
			return nil, fmt.Errorf("vectorize: loop contains non-assignment statement %T", s)
		}
	}
	if err := checkDependences(sc); err != nil {
		return nil, err
	}
	b := &builder{
		sc:       sc,
		cse:      make(map[string]*Node),
		expanded: make(map[string]*Node),
		written:  make(map[string]*Node),
		loadsOf:  make(map[string][]*Node),
	}
	res := &Result{Loop: loop, Step: sc.step}
	for _, s := range loop.Body {
		a := s.(*ftn.Assign)
		// Secondary induction updates become epilogue scalar code.
		if si, ok := sc.secInds[a.LHS.Name]; ok && len(a.LHS.Indices) == 0 {
			sc.incsSoFar[a.LHS.Name]++
			_ = si
			continue
		}
		if err := b.buildStmt(a); err != nil {
			return nil, err
		}
	}
	res.Nodes = b.nodes
	res.Stores = b.stores
	res.Reductions = b.reds
	for _, si := range sc.secInds {
		res.SecInds = append(res.SecInds, *si)
	}
	if len(res.Stores) == 0 && len(res.Reductions) == 0 {
		return nil, fmt.Errorf("vectorize: loop has no vectorizable work")
	}
	return res, nil
}

func (b *builder) buildStmt(a *ftn.Assign) error {
	sc := b.sc
	// Classify the LHS.
	if len(a.LHS.Indices) > 0 {
		acc, err := sc.refAccess(a.LHS, true)
		if err != nil {
			return err
		}
		if !acc.Aff.Invariant() {
			// Vector store. Loads of the same location issued by earlier
			// statements must precede it (anti-dependence).
			val, err := b.buildExpr(a.RHS)
			if err != nil {
				return err
			}
			key := accessKey(acc.Array, acc.Aff)
			st := &Node{
				ID:    len(b.nodes),
				Kind:  NStore,
				X:     val,
				Array: acc.Array,
				Aff:   acc.Aff,
				After: append([]*Node(nil), b.loadsOf[key]...),
			}
			b.nodes = append(b.nodes, st)
			b.stores = append(b.stores, st)
			b.written[key] = val
			return nil
		}
		// Invariant array element: must be a reduction.
		return b.buildReduction(a)
	}
	d, ok := sc.prog.Decl(a.LHS.Name)
	if !ok {
		return fmt.Errorf("vectorize: undeclared %s", a.LHS.Name)
	}
	if d.Kind != ftn.KindReal {
		return fmt.Errorf("vectorize: integer scalar %s assigned in loop and not an induction variable", a.LHS.Name)
	}
	// Reduction (T = T op e) or scalar expansion (T = vector value).
	if isReductionForm(a) {
		return b.buildReduction(a)
	}
	val, err := b.buildExpr(a.RHS)
	if err != nil {
		return err
	}
	b.expanded[a.LHS.Name] = val
	return nil
}

// isReductionForm matches "T = T + e" and "T = T - e" (also for invariant
// array element targets).
func isReductionForm(a *ftn.Assign) bool {
	bin, ok := a.RHS.(ftn.Bin)
	if !ok || (bin.Op != '+' && bin.Op != '-') {
		return false
	}
	l, ok := bin.L.(*ftn.Ref)
	return ok && l.String() == a.LHS.String()
}

func (b *builder) buildReduction(a *ftn.Assign) error {
	if !isReductionForm(a) {
		return fmt.Errorf("vectorize: assignment to loop-invariant %s is not a reduction", a.LHS)
	}
	bin := a.RHS.(ftn.Bin)
	expr, err := b.buildExpr(bin.R)
	if err != nil {
		return err
	}
	b.reds = append(b.reds, Reduction{Op: bin.Op, Expr: expr, Target: a.LHS})
	return nil
}
