package vectorize

import (
	"strings"
	"testing"

	"macs/internal/core"
	"macs/internal/ftn"
)

// innerLoop parses a program and returns it with its innermost DO.
func innerLoop(t *testing.T, src string) (*ftn.Program, *ftn.DoStmt) {
	t.Helper()
	p, err := ftn.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var inner *ftn.DoStmt
	ftn.Walk(p.Body, func(s ftn.Stmt) {
		if do, ok := s.(*ftn.DoStmt); ok {
			inner = do // Walk recurses, last DO seen is innermost
		}
	})
	if inner == nil {
		t.Fatal("no DO loop found")
	}
	return p, inner
}

const lfk1Src = `
PROGRAM LFK1
REAL X(2001), Y(2001), ZX(2048)
REAL Q, R, T
INTEGER N, K
DO K = 1, N
  X(K) = Q + Y(K)*(R*ZX(K+10) + T*ZX(K+11))
ENDDO
END
`

func TestMAWorkloadLFK1(t *testing.T) {
	p, do := innerLoop(t, lfk1Src)
	w, err := MAWorkload(p, do)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Workload{FA: 2, FM: 3, Loads: 2, Stores: 1}
	if w != want {
		t.Errorf("MA workload = %+v, want %+v (paper Table 2)", w, want)
	}
}

func TestVectorizeLFK1(t *testing.T) {
	p, do := innerLoop(t, lfk1Src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores, muls, adds int
	for _, n := range res.Nodes {
		switch n.Kind {
		case NLoad:
			loads++
		case NStore:
			stores++
		case NBin:
			switch n.Op {
			case '*':
				muls++
			case '+':
				adds++
			}
		}
	}
	// The compiler reloads the shifted ZX: 3 loads, 1 store (MAC counts).
	if loads != 3 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 3,1 (paper MAC for LFK1)", loads, stores)
	}
	if muls != 3 || adds != 2 {
		t.Errorf("muls=%d adds=%d, want 3,2", muls, adds)
	}
	if len(res.Reductions) != 0 || len(res.SecInds) != 0 {
		t.Errorf("unexpected reductions/inductions: %+v %+v", res.Reductions, res.SecInds)
	}
}

const lfk2Src = `
PROGRAM LFK2
REAL X(2048), V(2048)
INTEGER N, II, IPNT, IPNTP, I, K
II = N
IPNTP = 0
100 CONTINUE
IPNT = IPNTP
IPNTP = IPNTP + II
II = II / 2
I = IPNTP + 1
CDIR$ IVDEP
DO K = IPNT + 2, IPNTP, 2
  I = I + 1
  X(I) = X(K) - V(K)*X(K-1) - V(K+1)*X(K+1)
ENDDO
IF (II .GT. 1) GOTO 100
END
`

func TestMAWorkloadLFK2(t *testing.T) {
	p, do := innerLoop(t, lfk2Src)
	w, err := MAWorkload(p, do)
	if err != nil {
		t.Fatal(err)
	}
	// X(K-1) and X(K+1) share a stride-2 stream; X(K) is the other
	// residue; V(K) and V(K+1) are two streams: 4 loads + 1 store.
	want := core.Workload{FA: 2, FM: 2, Loads: 4, Stores: 1}
	if w != want {
		t.Errorf("MA workload = %+v, want %+v (t_m = 5, paper Table 3)", w, want)
	}
}

func TestVectorizeLFK2(t *testing.T) {
	p, do := innerLoop(t, lfk2Src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores int
	for _, n := range res.Nodes {
		switch n.Kind {
		case NLoad:
			loads++
		case NStore:
			stores++
		}
	}
	if loads != 5 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 5,1 (paper MAC t_m' = 6)", loads, stores)
	}
	if len(res.SecInds) != 1 || res.SecInds[0].Var != "I" || res.SecInds[0].Inc != 1 {
		t.Fatalf("secondary inductions = %+v, want I +1", res.SecInds)
	}
	if res.Step != 2 {
		t.Errorf("step = %d, want 2", res.Step)
	}
	// The store through I has element stride 1; loads through K stride 2.
	for _, n := range res.Nodes {
		if n.Kind == NStore && n.Aff.Stride != 1 {
			t.Errorf("store stride = %d, want 1 (secondary induction)", n.Aff.Stride)
		}
		if n.Kind == NLoad && n.Aff.Stride != 2 {
			t.Errorf("load stride = %d, want 2", n.Aff.Stride)
		}
	}
}

func TestLFK2RequiresIVDep(t *testing.T) {
	src := strings.Replace(lfk2Src, "CDIR$ IVDEP\n", "", 1)
	p, do := innerLoop(t, src)
	if _, err := Vectorize(p, do); err == nil {
		t.Fatal("LFK2 without IVDEP should be rejected")
	}
}

const lfk3Src = `
PROGRAM LFK3
REAL Z(2048), X(2048), Q
INTEGER N, K
DO K = 1, N
  Q = Q + Z(K)*X(K)
ENDDO
END
`

func TestVectorizeLFK3Reduction(t *testing.T) {
	p, do := innerLoop(t, lfk3Src)
	w, err := MAWorkload(p, do)
	if err != nil {
		t.Fatal(err)
	}
	if w != (core.Workload{FA: 1, FM: 1, Loads: 2, Stores: 0}) {
		t.Errorf("MA workload = %+v", w)
	}
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reductions) != 1 {
		t.Fatalf("reductions = %d, want 1", len(res.Reductions))
	}
	r := res.Reductions[0]
	if r.Op != '+' || r.Target.Name != "Q" {
		t.Errorf("reduction = %+v", r)
	}
	if r.Expr.Kind != NBin || r.Expr.Op != '*' {
		t.Errorf("reduction expr = %s", r.Expr)
	}
}

const lfk6Src = `
PROGRAM LFK6
REAL W(1024), B(64,64)
INTEGER N, I, K
DO I = 2, N
  W(I) = 0.0100
CDIR$ IVDEP
  DO K = 1, I-1
    W(I) = W(I) + B(K,I)*W(I-K)
  ENDDO
ENDDO
END
`

func TestVectorizeLFK6InvariantTargetReduction(t *testing.T) {
	p, do := innerLoop(t, lfk6Src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reductions) != 1 {
		t.Fatalf("reductions = %d, want 1", len(res.Reductions))
	}
	if res.Reductions[0].Target.String() != "W(I)" {
		t.Errorf("reduction target = %s, want W(I)", res.Reductions[0].Target)
	}
	// W(I-K) has stride -1; B(K,I) stride 1.
	var negStride, posStride bool
	for _, n := range res.Nodes {
		if n.Kind == NLoad && n.Array == "W" && n.Aff.Stride == -1 {
			negStride = true
		}
		if n.Kind == NLoad && n.Array == "B" && n.Aff.Stride == 1 {
			posStride = true
		}
	}
	if !negStride || !posStride {
		t.Errorf("expected W stride -1 and B stride 1 loads")
	}
}

const lfk10Src = `
PROGRAM LFK10
REAL PX(25,101), CX(25,101)
REAL T0, T1, T2
INTEGER N, I
DO I = 1, N
  T0 = CX(5,I)
  T1 = T0 - PX(5,I)
  PX(5,I) = T0
  T2 = T1 - PX(6,I)
  PX(6,I) = T1
  PX(7,I) = T2
ENDDO
END
`

func TestVectorizeScalarExpansion(t *testing.T) {
	p, do := innerLoop(t, lfk10Src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores, subs int
	for _, n := range res.Nodes {
		switch {
		case n.Kind == NLoad:
			loads++
			if n.Aff.Stride != 25 {
				t.Errorf("load stride = %d, want 25 (column-major PX(25,101))", n.Aff.Stride)
			}
		case n.Kind == NStore:
			stores++
		case n.Kind == NBin && n.Op == '-':
			subs++
		}
	}
	if loads != 3 || stores != 3 || subs != 2 {
		t.Errorf("loads=%d stores=%d subs=%d, want 3,3,2", loads, stores, subs)
	}
}

func TestStoreForwarding(t *testing.T) {
	// LFK8 pattern: DU(KY) written then read; the read reuses the stored
	// register, so only one load of U appears per distinct offset.
	src := `
PROGRAM P
REAL DU(128), U(128), OUT(128)
INTEGER N, KY
CDIR$ IVDEP
DO KY = 2, N
  DU(KY) = U(KY+1) - U(KY-1)
  OUT(KY) = 2.0*DU(KY)
ENDDO
END
`
	p, do := innerLoop(t, src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	var duLoads int
	for _, n := range res.Nodes {
		if n.Kind == NLoad && n.Array == "DU" {
			duLoads++
		}
	}
	if duLoads != 0 {
		t.Errorf("DU loads = %d, want 0 (store-to-load forwarding)", duLoads)
	}
	w, err := MAWorkload(p, do)
	if err != nil {
		t.Fatal(err)
	}
	// MA: U is one reused stream; DU forwarded; stores DU and OUT.
	if w.Loads != 1 || w.Stores != 2 {
		t.Errorf("MA loads=%d stores=%d, want 1,2", w.Loads, w.Stores)
	}
}

func TestDependenceRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"cross-iteration", `
PROGRAM P
REAL A(100)
INTEGER I, N
DO I = 2, N
  A(I) = A(I-1) + 1.0
ENDDO
END
`},
		{"recurrence temp", `
PROGRAM P
REAL A(100), T
INTEGER I, N
DO I = 1, N
  A(I) = T + 1.0
  T = A(I) * 2.0
ENDDO
END
`},
		{"different strides", `
PROGRAM P
REAL A(100)
INTEGER I, N
DO I = 1, N
  A(2*I) = A(I) + 1.0
ENDDO
END
`},
		{"nonlinear index", `
PROGRAM P
REAL A(100)
INTEGER I, N
DO I = 1, N
  A(I*I) = 1.0
ENDDO
END
`},
		{"non-assignment", `
PROGRAM P
REAL A(100)
INTEGER I, N
DO I = 1, N
  IF (I .GT. 3) GOTO 10
  A(I) = 1.0
10 CONTINUE
ENDDO
END
`},
	}
	for _, tc := range cases {
		p, do := innerLoop(t, tc.src)
		if _, err := Vectorize(p, do); err == nil {
			t.Errorf("%s: vectorization should fail", tc.name)
		}
	}
}

func TestIVDepOverridesDependence(t *testing.T) {
	src := `
PROGRAM P
REAL A(100)
INTEGER I, N
CDIR$ IVDEP
DO I = 2, N
  A(I) = A(I-1) + 1.0
ENDDO
END
`
	p, do := innerLoop(t, src)
	if _, err := Vectorize(p, do); err != nil {
		t.Errorf("IVDEP should force vectorization: %v", err)
	}
}

func TestSameLocationDependenceAllowed(t *testing.T) {
	// Read and write of the same element in one iteration is fine.
	src := `
PROGRAM P
REAL A(100), B(100)
INTEGER I, N
DO I = 1, N
  A(I) = A(I) + B(I)
ENDDO
END
`
	p, do := innerLoop(t, src)
	if _, err := Vectorize(p, do); err != nil {
		t.Errorf("same-location loop should vectorize: %v", err)
	}
}

func TestDistinctResiduesAllowed(t *testing.T) {
	// Write stride 25 at offset 0, reads at offsets 2..4: residues differ,
	// provably independent (the LFK9 pattern).
	src := `
PROGRAM P
REAL PX(25,101)
INTEGER I, N
DO I = 1, N
  PX(1,I) = PX(3,I) + PX(4,I)
ENDDO
END
`
	p, do := innerLoop(t, src)
	if _, err := Vectorize(p, do); err != nil {
		t.Errorf("distinct residues should vectorize: %v", err)
	}
}

func TestCSEDeduplicatesLoads(t *testing.T) {
	src := `
PROGRAM P
REAL A(100), B(100)
INTEGER I, N
DO I = 1, N
  B(I) = A(I)*A(I) + A(I)
ENDDO
END
`
	p, do := innerLoop(t, src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	var loads int
	for _, n := range res.Nodes {
		if n.Kind == NLoad {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("loads = %d, want 1 (CSE)", loads)
	}
}

func TestAffineSecondaryInductionPosition(t *testing.T) {
	// LFK4 pattern: LW increments after its use.
	src := `
PROGRAM P
REAL X(2048), Y(2048), TEMP
INTEGER N, J, LW
DO J = 5, N, 5
  TEMP = TEMP - X(LW)*Y(J)
  LW = LW + 1
ENDDO
END
`
	p, do := innerLoop(t, src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reductions) != 1 || res.Reductions[0].Op != '-' {
		t.Fatalf("reductions = %+v", res.Reductions)
	}
	var xLoad, yLoad *Node
	for _, n := range res.Nodes {
		if n.Kind == NLoad {
			switch n.Array {
			case "X":
				xLoad = n
			case "Y":
				yLoad = n
			}
		}
	}
	if xLoad == nil || xLoad.Aff.Stride != 1 || xLoad.Aff.Const != -1 || xLoad.Aff.BaseKey() != "LW" {
		t.Errorf("X(LW) affine = %+v", xLoad.Aff)
	}
	if yLoad == nil || yLoad.Aff.Stride != 5 || yLoad.Aff.Const != 4 {
		t.Errorf("Y(J) affine = %+v", yLoad.Aff)
	}
}

func TestMAWorkloadLFK7(t *testing.T) {
	src := `
PROGRAM LFK7
REAL X(2048), Y(2048), Z(2048), U(2048), R, T, Q
INTEGER N, K
DO K = 1, N
  X(K) = U(K) + R*(Z(K) + R*Y(K)) + T*(U(K+3) + R*(U(K+2) + R*U(K+1)) + T*(U(K+6) + Q*(U(K+5) + Q*U(K+4))))
ENDDO
END
`
	p, do := innerLoop(t, src)
	w, err := MAWorkload(p, do)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: fa=8, fm=8; U's seven offsets are one reused stream, plus Y
	// and Z: t_m = 3 loads + 1 store = 4 (Table 3).
	want := core.Workload{FA: 8, FM: 8, Loads: 3, Stores: 1}
	if w != want {
		t.Errorf("MA workload = %+v, want %+v", w, want)
	}
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	mac := countKinds(res)
	// MAC: 9 loads (7 U + Y + Z) + 1 store = 10 (paper t_m' = 10).
	if mac[NLoad] != 9 || mac[NStore] != 1 {
		t.Errorf("MAC loads=%d stores=%d, want 9,1", mac[NLoad], mac[NStore])
	}
}

func countKinds(res *Result) map[NodeKind]int {
	m := make(map[NodeKind]int)
	for _, n := range res.Nodes {
		m[n.Kind]++
	}
	return m
}

func TestAffineInvariantProduct(t *testing.T) {
	// LFK8 pattern: (NL1-1)*505 style invariant products stay symbolic.
	src := `
PROGRAM P
REAL U(5,101,2), OUT(101)
INTEGER N, KY, NL
CDIR$ IVDEP
DO KY = 2, N
  OUT(KY) = U(2,KY,NL)
ENDDO
END
`
	p, do := innerLoop(t, src)
	res, err := Vectorize(p, do)
	if err != nil {
		t.Fatal(err)
	}
	var load *Node
	for _, n := range res.Nodes {
		if n.Kind == NLoad && n.Array == "U" {
			load = n
		}
	}
	if load == nil {
		t.Fatal("no U load")
	}
	if load.Aff.Stride != 5 {
		t.Errorf("U stride = %d, want 5", load.Aff.Stride)
	}
	if load.Aff.BaseKey() == "" {
		t.Error("invariant NL term should appear in the base expression")
	}
}

func TestNegativeLoopStepRejected(t *testing.T) {
	src := `
PROGRAM P
REAL A(100), B(100)
INTEGER I, N
DO I = 100, 1, -1
  B(I) = A(I)
ENDDO
END
`
	p, do := innerLoop(t, src)
	if _, err := Vectorize(p, do); err == nil {
		t.Error("negative step should be rejected")
	}
}

func TestNonConstantStepRejected(t *testing.T) {
	src := `
PROGRAM P
REAL A(100), B(100)
INTEGER I, N, S
DO I = 1, N, S
  B(I) = A(I)
ENDDO
END
`
	p, do := innerLoop(t, src)
	if _, err := Vectorize(p, do); err == nil {
		t.Error("symbolic step should be rejected")
	}
}

func TestIndexDivisionRejected(t *testing.T) {
	src := `
PROGRAM P
REAL A(100), B(100)
INTEGER I, N
DO I = 1, N
  B(I) = A(I/2)
ENDDO
END
`
	p, do := innerLoop(t, src)
	if _, err := Vectorize(p, do); err == nil {
		t.Error("I/2 index should be rejected (non-affine)")
	}
}

func TestMAWorkloadDistinctResidues(t *testing.T) {
	// Stride 2 with offsets of both parities: two streams per array.
	src := `
PROGRAM P
REAL A(2048), B(2048)
INTEGER K, N
CDIR$ IVDEP
DO K = 2, N, 2
  B(K) = A(K) + A(K+1)
ENDDO
END
`
	p, do := innerLoop(t, src)
	w, err := MAWorkload(p, do)
	if err != nil {
		t.Fatal(err)
	}
	if w.Loads != 2 {
		t.Errorf("loads = %d, want 2 (distinct parities)", w.Loads)
	}
}

func TestMAWorkloadSharedResidue(t *testing.T) {
	// Stride 2 with offsets of the same parity: one reused stream.
	src := `
PROGRAM P
REAL A(2048), B(2048)
INTEGER K, N
CDIR$ IVDEP
DO K = 2, N, 2
  B(K) = A(K) + A(K+2)
ENDDO
END
`
	p, do := innerLoop(t, src)
	w, err := MAWorkload(p, do)
	if err != nil {
		t.Fatal(err)
	}
	if w.Loads != 1 {
		t.Errorf("loads = %d, want 1 (same residue class)", w.Loads)
	}
}
