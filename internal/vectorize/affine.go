// Package vectorize analyzes and vectorizes the innermost loops of
// Fortran-subset programs: affine index analysis (including secondary
// induction variables), cross-iteration dependence testing with IVDEP
// override, reduction recognition with partial-sum vectorization, scalar
// expansion of loop temporaries, and the MA workload analysis (perfect
// index analysis) that feeds the MA bound.
package vectorize

import (
	"fmt"

	"macs/internal/ftn"
)

// Affine describes an integer quantity of the form
//
//	value(t) = Base + Const + Stride*t
//
// where t is the 0-based iteration index of the inner loop, Base is a
// loop-invariant expression evaluated by scalar code at loop entry (nil
// when zero), and Const and Stride are compile-time constants. Units are
// array elements.
type Affine struct {
	Base   ftn.Expr
	Const  int64
	Stride int64
}

// BaseKey renders the Base expression for structural comparison; streams
// with equal BaseKey and Stride can share an address register.
func (a Affine) BaseKey() string {
	if a.Base == nil {
		return ""
	}
	return a.Base.String()
}

// Invariant reports whether the quantity does not vary with the loop.
func (a Affine) Invariant() bool { return a.Stride == 0 }

func (a Affine) add(b Affine) Affine {
	return Affine{Base: addExpr(a.Base, b.Base), Const: a.Const + b.Const, Stride: a.Stride + b.Stride}
}

func (a Affine) sub(b Affine) Affine {
	return Affine{Base: subExpr(a.Base, b.Base), Const: a.Const - b.Const, Stride: a.Stride - b.Stride}
}

func (a Affine) scale(c int64) Affine {
	return Affine{Base: mulExpr(a.Base, c), Const: a.Const * c, Stride: a.Stride * c}
}

func addExpr(x, y ftn.Expr) ftn.Expr {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	return ftn.Bin{Op: '+', L: x, R: y}
}

func subExpr(x, y ftn.Expr) ftn.Expr {
	if y == nil {
		return x
	}
	if x == nil {
		return ftn.Neg{X: y}
	}
	return ftn.Bin{Op: '-', L: x, R: y}
}

func mulExpr(x ftn.Expr, c int64) ftn.Expr {
	if x == nil || c == 0 {
		return nil
	}
	if c == 1 {
		return x
	}
	return ftn.Bin{Op: '*', L: ftn.Num{Val: float64(c), IsInt: true}, R: x}
}

// scope carries the analysis context of one inner loop.
type scope struct {
	prog    *ftn.Program
	loop    *ftn.DoStmt
	step    int64 // constant loop step
	secInds map[string]*SecInduction
	// incsSoFar counts, during a body scan, how many increments of each
	// secondary induction variable precede the current statement.
	incsSoFar map[string]int64
	// assigned tracks scalar temps assigned earlier in the body (scalar
	// expansion) — they are not loop-invariant.
	assigned map[string]bool
	// realAssigned names every real scalar assigned anywhere in the body
	// (other than reductions); a read before its assignment is a
	// loop-carried recurrence and blocks vectorization.
	realAssigned map[string]bool
}

// SecInduction is a variable updated exactly once per iteration as
// V = V + Inc (LFK2's I, LFK4's LW).
type SecInduction struct {
	Var string
	Inc int64
}

func newScope(prog *ftn.Program, loop *ftn.DoStmt) (*scope, error) {
	sc := &scope{
		prog:         prog,
		loop:         loop,
		secInds:      make(map[string]*SecInduction),
		incsSoFar:    make(map[string]int64),
		assigned:     make(map[string]bool),
		realAssigned: make(map[string]bool),
	}
	sc.step = 1
	if loop.Step != nil {
		n, ok := loop.Step.(ftn.Num)
		if !ok || !n.IsInt || int64(n.Val) == 0 {
			return nil, fmt.Errorf("vectorize: loop step of %s must be a nonzero integer constant", loop.Var)
		}
		sc.step = int64(n.Val)
	}
	if sc.step < 0 {
		return nil, fmt.Errorf("vectorize: negative loop steps are not supported")
	}
	// Find secondary induction variables: integer scalars assigned exactly
	// once in the body, as V = V +/- constant.
	counts := make(map[string]int)
	for _, s := range loop.Body {
		if a, ok := s.(*ftn.Assign); ok && len(a.LHS.Indices) == 0 {
			counts[a.LHS.Name]++
		}
	}
	for _, s := range loop.Body {
		a, ok := s.(*ftn.Assign)
		if !ok || len(a.LHS.Indices) != 0 {
			continue
		}
		d, ok := sc.prog.Decl(a.LHS.Name)
		if !ok || d.Kind != ftn.KindInt || counts[a.LHS.Name] != 1 {
			continue
		}
		if inc, ok := incrementOf(a); ok {
			sc.secInds[a.LHS.Name] = &SecInduction{Var: a.LHS.Name, Inc: inc}
		}
	}
	for _, s := range loop.Body {
		a, ok := s.(*ftn.Assign)
		if !ok || len(a.LHS.Indices) != 0 {
			continue
		}
		d, ok := sc.prog.Decl(a.LHS.Name)
		if !ok {
			continue
		}
		if d.Kind == ftn.KindReal && !isReductionForm(a) {
			sc.realAssigned[a.LHS.Name] = true
		}
		if d.Kind == ftn.KindInt {
			if _, isInd := sc.secInds[a.LHS.Name]; !isInd {
				// An integer scalar assigned in the loop that is not an
				// induction variable defeats affine analysis.
				sc.assigned[a.LHS.Name] = true
			}
		}
	}
	return sc, nil
}

// incrementOf matches V = V + c and V = V - c.
func incrementOf(a *ftn.Assign) (int64, bool) {
	b, ok := a.RHS.(ftn.Bin)
	if !ok || (b.Op != '+' && b.Op != '-') {
		return 0, false
	}
	l, ok := b.L.(*ftn.Ref)
	if !ok || l.Name != a.LHS.Name || len(l.Indices) != 0 {
		return 0, false
	}
	n, ok := b.R.(ftn.Num)
	if !ok || !n.IsInt {
		return 0, false
	}
	inc := int64(n.Val)
	if b.Op == '-' {
		inc = -inc
	}
	return inc, true
}

// exprAffine analyzes an integer expression as affine in the loop index.
func (sc *scope) exprAffine(e ftn.Expr) (Affine, error) {
	switch x := e.(type) {
	case ftn.Num:
		if !x.IsInt {
			return Affine{}, fmt.Errorf("vectorize: real value in index expression")
		}
		return Affine{Const: int64(x.Val)}, nil
	case ftn.Neg:
		a, err := sc.exprAffine(x.X)
		if err != nil {
			return Affine{}, err
		}
		return Affine{}.sub(a), nil
	case *ftn.Ref:
		if len(x.Indices) != 0 {
			return Affine{}, fmt.Errorf("vectorize: array reference %s in index expression", x.Name)
		}
		if x.Name == sc.loop.Var {
			// K = lo + step*t; a constant lo folds into Const so streams
			// group cleanly.
			if n, ok := sc.loop.Lo.(ftn.Num); ok && n.IsInt {
				return Affine{Const: int64(n.Val), Stride: sc.step}, nil
			}
			return Affine{Base: sc.loop.Lo, Stride: sc.step}, nil
		}
		if si, ok := sc.secInds[x.Name]; ok {
			// Value at this point of the body: V0 + Inc*t + Inc*(number of
			// increments already executed this iteration).
			return Affine{
				Base:   &ftn.Ref{Name: x.Name},
				Const:  si.Inc * sc.incsSoFar[x.Name],
				Stride: si.Inc,
			}, nil
		}
		if sc.assigned[x.Name] {
			return Affine{}, fmt.Errorf("vectorize: %s varies in the loop and is not an induction variable", x.Name)
		}
		// Loop-invariant integer variable.
		return Affine{Base: x}, nil
	case ftn.Bin:
		l, err := sc.exprAffine(x.L)
		if err != nil {
			return Affine{}, err
		}
		r, err := sc.exprAffine(x.R)
		if err != nil {
			return Affine{}, err
		}
		switch x.Op {
		case '+':
			return l.add(r), nil
		case '-':
			return l.sub(r), nil
		case '*':
			if r.Invariant() && r.Base == nil {
				return l.scale(r.Const), nil
			}
			if l.Invariant() && l.Base == nil {
				return r.scale(l.Const), nil
			}
			if l.Invariant() && r.Invariant() {
				// Invariant product: keep symbolic.
				return Affine{Base: ftn.Bin{Op: '*', L: affExpr(l), R: affExpr(r)}}, nil
			}
			return Affine{}, fmt.Errorf("vectorize: nonlinear index expression")
		case '/':
			if l.Invariant() && r.Invariant() {
				return Affine{Base: ftn.Bin{Op: '/', L: affExpr(l), R: affExpr(r)}}, nil
			}
			return Affine{}, fmt.Errorf("vectorize: division by loop index")
		}
	}
	return Affine{}, fmt.Errorf("vectorize: unsupported index expression %T", e)
}

// affExpr rebuilds an invariant Affine as a plain expression.
func affExpr(a Affine) ftn.Expr {
	e := a.Base
	if a.Const != 0 || e == nil {
		e = addExpr(e, ftn.Num{Val: float64(a.Const), IsInt: true})
	}
	return e
}

// Access is one array access with its linearized affine offset.
type Access struct {
	Array   string
	Aff     Affine
	IsWrite bool
}

// refAccess linearizes an array reference (column-major, 1-based) into an
// element-offset Affine.
func (sc *scope) refAccess(r *ftn.Ref, isWrite bool) (Access, error) {
	d, ok := sc.prog.Decl(r.Name)
	if !ok || !d.IsArray() {
		return Access{}, fmt.Errorf("vectorize: %s is not an array", r.Name)
	}
	if len(r.Indices) != len(d.Dims) {
		return Access{}, fmt.Errorf("vectorize: rank mismatch for %s", r.Name)
	}
	total := Affine{}
	mult := int64(1)
	var sumMult int64
	for i, ix := range r.Indices {
		a, err := sc.exprAffine(ix)
		if err != nil {
			return Access{}, err
		}
		total = total.add(a.scale(mult))
		sumMult += mult
		mult *= int64(d.Dims[i])
	}
	total.Const -= sumMult // the "-1" of each 1-based index
	return Access{Array: r.Name, Aff: total, IsWrite: isWrite}, nil
}
