package vectorize

import (
	"fmt"

	"macs/internal/ftn"
)

// collectAccesses scans the loop body in statement order and returns every
// array access with its affine offset, honoring secondary-induction
// positions. Reduction-target reads are excluded (they are scalars to the
// vectorizer). The scope's induction counters are reset afterwards.
func collectAccesses(sc *scope) ([]Access, error) {
	defer func() { sc.incsSoFar = make(map[string]int64) }()
	var accs []Access
	addRefs := func(e ftn.Expr) error {
		var err error
		walkRefs(e, func(r *ftn.Ref) {
			if err != nil || len(r.Indices) == 0 {
				return
			}
			a, e2 := sc.refAccess(r, false)
			if e2 != nil {
				err = e2
				return
			}
			accs = append(accs, a)
		})
		return err
	}
	for _, s := range sc.loop.Body {
		a, ok := s.(*ftn.Assign)
		if !ok {
			return nil, fmt.Errorf("vectorize: loop contains non-assignment statement %T", s)
		}
		if _, isInd := sc.secInds[a.LHS.Name]; isInd && len(a.LHS.Indices) == 0 {
			sc.incsSoFar[a.LHS.Name]++
			continue
		}
		var wAcc *Access
		if len(a.LHS.Indices) > 0 {
			w, err := sc.refAccess(a.LHS, true)
			if err != nil {
				return nil, err
			}
			wAcc = &w
		}
		// A reduction keeps its target in a register only when the target
		// is a scalar or a loop-invariant element; Y(K) = Y(K) + ... is an
		// ordinary load-modify-store stream.
		reduction := isReductionForm(a) && (wAcc == nil || wAcc.Aff.Invariant())
		rhs := a.RHS
		if reduction {
			rhs = a.RHS.(ftn.Bin).R
		}
		if err := addRefs(rhs); err != nil {
			return nil, err
		}
		// Index expressions of the LHS itself.
		for _, ix := range a.LHS.Indices {
			if err := addRefs(ix); err != nil {
				return nil, err
			}
		}
		if wAcc != nil && !(reduction && wAcc.Aff.Invariant()) {
			accs = append(accs, *wAcc)
		}
	}
	return accs, nil
}

func walkRefs(e ftn.Expr, f func(*ftn.Ref)) {
	switch x := e.(type) {
	case *ftn.Ref:
		f(x)
		for _, ix := range x.Indices {
			walkRefs(ix, f)
		}
	case ftn.Bin:
		walkRefs(x.L, f)
		walkRefs(x.R, f)
	case ftn.Neg:
		walkRefs(x.X, f)
	}
}

// checkDependences rejects loops with possible cross-iteration
// dependences unless the loop carries an IVDEP directive:
//
//   - a write and another access to the same array with different strides
//     or different symbolic bases is unanalyzable;
//   - with equal stride and base, an offset difference of zero is a safe
//     loop-independent dependence, a difference not divisible by the
//     stride proves independence, and a divisible difference is a
//     cross-iteration dependence.
func checkDependences(sc *scope) error {
	if sc.loop.IVDep {
		return nil
	}
	accs, err := collectAccesses(sc)
	if err != nil {
		return err
	}
	for i, w := range accs {
		if !w.IsWrite {
			continue
		}
		for j, a := range accs {
			if i == j || a.Array != w.Array {
				continue
			}
			if a.IsWrite && j < i {
				continue // each write pair once
			}
			if err := pairDependence(w, a); err != nil {
				return fmt.Errorf("%w (use CDIR$ IVDEP to assert independence)", err)
			}
		}
	}
	return nil
}

func pairDependence(w, a Access) error {
	if w.Aff.Invariant() || a.Aff.Invariant() {
		return fmt.Errorf("vectorize: %s is both indexed by the loop and accessed invariantly", w.Array)
	}
	if w.Aff.Stride != a.Aff.Stride || w.Aff.BaseKey() != a.Aff.BaseKey() {
		return fmt.Errorf("vectorize: accesses to %s have unanalyzable overlap", w.Array)
	}
	d := a.Aff.Const - w.Aff.Const
	if d == 0 {
		return nil // same location every iteration: statement order holds
	}
	stride := w.Aff.Stride
	if stride < 0 {
		stride = -stride
	}
	if stride != 0 && d%stride != 0 {
		return nil // distinct residues never collide
	}
	return fmt.Errorf("vectorize: cross-iteration dependence on %s (distance %d)", w.Array, d)
}
