package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"macs/internal/isa"
)

// lfk1Asm is the paper's compiled inner loop for LFK1 (§3.5), with the
// data symbols it references.
const lfk1Asm = `
.data space1 65536
L7:
	mov s0,vl        ; #145
	ld.l space1+40120(a5),v0 ; #146, ZX
	mul.d v0,s1,v1   ; #146
	ld.l space1+40128(a5),v2 ; #146, ZX
	mul.d v2,s3,v0   ; #146
	add.d v1,v0,v3   ; #146
	ld.l space1+32032(a5),v1 ; #146, Y
	mul.d v1,v3,v2   ; #146
	add.d v2,s7,v0   ; #146
	st.l v0,space1+24024(a5) ; #146, X
	add.w #1024,a5   ; #146
	sub.w #128,s0    ; #146
	lt.w #0,s0       ; #146
	jbrs.t L7        ; #146
`

func TestParseLFK1(t *testing.T) {
	p, err := Parse(lfk1Asm)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 14 {
		t.Fatalf("got %d instructions, want 14", len(p.Instrs))
	}
	if idx, ok := p.Labels["L7"]; !ok || idx != 0 {
		t.Fatalf("label L7 = %d,%v, want 0,true", idx, ok)
	}
	counts := VectorCount(p.Instrs)
	if counts[isa.ClassLoad] != 3 {
		t.Errorf("vector loads = %d, want 3", counts[isa.ClassLoad])
	}
	if counts[isa.ClassStore] != 1 {
		t.Errorf("vector stores = %d, want 1", counts[isa.ClassStore])
	}
	if counts[isa.ClassFPMul] != 3 {
		t.Errorf("vector multiplies = %d, want 3", counts[isa.ClassFPMul])
	}
	if counts[isa.ClassFPAdd] != 2 {
		t.Errorf("vector adds = %d, want 2", counts[isa.ClassFPAdd])
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := MustParse(lfk1Asm)
	text := p.String()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\ntext:\n%s", err, text)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("round trip changed instruction count: %d != %d", len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], q.Instrs[i]
		a.Comment, b.Comment = "", ""
		a.Label, b.Label = "", ""
		if a.String() != b.String() {
			t.Errorf("instr %d: %q != %q", i, a.String(), b.String())
		}
	}
}

func TestParseOperandForms(t *testing.T) {
	p := MustParse(`
.data x 1024
.data y 64 1.5 2.5
	mov #8,vs
	ld.l x(a1),v0
	ld.l 16(a2),s3
	ld.l x+8(a3),v1
	add.d v0,v1,v2
	mul.d v2,s3,v3
	sum.d v3,s4
	jmp L9
L9:
	halt
`)
	if len(p.Instrs) != 9 {
		t.Fatalf("got %d instrs, want 9", len(p.Instrs))
	}
	y, ok := p.FindData("y")
	if !ok || y.Size != 64 || len(y.Init) != 2 || y.Init[1] != 2.5 {
		t.Fatalf("data y = %+v, ok=%v", y, ok)
	}
	// ld.l 16(a2),s3 is scalar.
	if p.Instrs[2].IsVector() {
		t.Error("scalar load misclassified as vector")
	}
	if !p.Instrs[6].IsVector() {
		t.Error("sum.d v3,s4 must be a vector instruction")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frob.d v0,v1,v2",          // unknown opcode
		"add.q v0,v1,v2",           // unknown suffix
		"ld.l x(a1),v0",            // undefined symbol x
		"jmp L1",                   // undefined label
		"ld.l x(s1),v0\n.data x 8", // scalar base register
		"add.d v0,,v2",             // empty operand
		".data x -5",               // negative size
		".data x 8 1.0 2.0",        // init exceeds size
		"ld.l x(a9),v0\n.data x 8", // register out of range
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseHexImmediate(t *testing.T) {
	p := MustParse("add.w #0x400,a5")
	if p.Instrs[0].Ops[0].Imm != 1024 {
		t.Errorf("hex immediate = %d, want 1024", p.Instrs[0].Ops[0].Imm)
	}
}

func TestLabelOnOwnLine(t *testing.T) {
	p := MustParse("L1:\n\tnop\n\tjmp L1\nend:")
	if idx := p.Labels["L1"]; idx != 0 {
		t.Errorf("L1 at %d, want 0", idx)
	}
	if idx := p.Labels["end"]; idx != 2 {
		t.Errorf("end at %d, want 2 (one past last instr)", idx)
	}
}

func TestFindLoops(t *testing.T) {
	p := MustParse(lfk1Asm)
	loops := FindLoops(p)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Start != 0 || l.End != 14 || l.Label != "L7" {
		t.Fatalf("loop = %+v, want start 0 end 14 label L7", l)
	}
	if !l.IsVectorized() {
		t.Error("LFK1 loop must be vectorized")
	}
	if got := len(l.VectorInstrs()); got != 9 {
		t.Errorf("vector instrs = %d, want 9", got)
	}
}

func TestFindLoopsNested(t *testing.T) {
	p := MustParse(`
outer:
	mov #0,s1
inner:
	add.w #1,s1
	lt.w s1,s2
	jbrs.t inner
	add.w #1,s3
	lt.w s3,s4
	jbrs.t outer
`)
	loops := FindLoops(p)
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	if loops[0].Label != "inner" {
		t.Errorf("innermost-first order violated: first loop %q", loops[0].Label)
	}
	if loops[1].Label != "outer" {
		t.Errorf("second loop %q, want outer", loops[1].Label)
	}
}

func TestInnerVectorLoop(t *testing.T) {
	p := MustParse(lfk1Asm)
	l, ok := InnerVectorLoop(p)
	if !ok || l.Label != "L7" {
		t.Fatalf("InnerVectorLoop = %+v,%v", l, ok)
	}
	// A scalar-only loop program has no vector loop.
	q := MustParse("L1:\n\tadd.w #1,s0\n\tlt.w s0,s1\n\tjbrs.t L1")
	if _, ok := InnerVectorLoop(q); ok {
		t.Error("scalar loop reported as vectorized")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParse(lfk1Asm)
	q := p.Clone()
	q.Instrs[1].Ops[0] = isa.ImmOp(0)
	q.Labels["L8"] = 3
	q.Data[0].Init = append(q.Data[0].Init, 1.0)
	if p.Instrs[1].Ops[0].Kind == isa.KindImm {
		t.Error("clone shares operand storage with original")
	}
	if _, ok := p.Labels["L8"]; ok {
		t.Error("clone shares label map with original")
	}
	if len(p.Data[0].Init) != 0 {
		t.Error("clone shares data init with original")
	}
}

func TestValidateCatchesDanglingLabelIndex(t *testing.T) {
	p := &Program{}
	p.Add(isa.Instr{Op: isa.OpNop})
	p.SetLabel("bad")
	p.Labels["bad"] = 99
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range label")
	}
}

func TestSplitOperandsRespectsParens(t *testing.T) {
	got := splitOperands("space1+40120(a5),v0")
	if len(got) != 2 || got[0] != "space1+40120(a5)" || got[1] != "v0" {
		t.Errorf("splitOperands = %q", got)
	}
}

func TestVectorCountIgnoresScalar(t *testing.T) {
	p := MustParse(`
.data x 8
	ld.l x(a1),s0
	add.w #8,a1
	sub.w #1,s2
`)
	counts := VectorCount(p.Instrs)
	if len(counts) != 0 {
		t.Errorf("scalar-only program vector counts = %v, want empty", counts)
	}
}

// Property: printing then parsing any random well-formed ALU instruction is
// the identity on its rendered form.
func TestQuickRoundTripALU(t *testing.T) {
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpNeg, isa.OpAnd, isa.OpOr}
	f := func(opIdx, r1, r2, r3 uint8) bool {
		in := isa.Instr{
			Op:     ops[int(opIdx)%len(ops)],
			Suffix: isa.SufD,
			Ops: []isa.Operand{
				isa.RegOp(isa.V(int(r1) % 8)),
				isa.RegOp(isa.V(int(r2) % 8)),
				isa.RegOp(isa.V(int(r3) % 8)),
			},
		}
		if in.Op == isa.OpNeg {
			in.Ops = in.Ops[:2]
		}
		p := &Program{}
		p.Add(in)
		q, err := Parse(p.String())
		if err != nil {
			return false
		}
		return len(q.Instrs) == 1 && q.Instrs[0].String() == in.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramStringContainsData(t *testing.T) {
	p := MustParse(".data q 16 3.5\n\tnop")
	if !strings.Contains(p.String(), ".data q 16 3.5") {
		t.Errorf("String() missing data directive:\n%s", p.String())
	}
}

// TestParseNeverPanics: the parser returns errors, never panics, on
// arbitrary byte soup.
func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", data, r)
				t.FailNow()
			}
		}()
		Parse(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// A few structured near-misses.
	for _, src := range []string{
		"ld.l", "ld.l ,", "add.d v0 v1 v2", ".data", ".data x",
		"L1:L2:", "jmp", "ld.l x(a0", "mov #,s0", "add.w ##1,s0",
		"ld.l (a0),v0", "st.l v0,", "\x00\x01\x02",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			Parse(src)
		}()
	}
}
