package asm

import (
	"fmt"
	"strconv"
	"strings"

	"macs/internal/isa"
)

// Parse reads assembly text into a Program.
//
// Grammar (line oriented):
//
//	; comment                       full-line or trailing comment
//	.data NAME SIZE [v0 v1 ...]     data symbol, optional float64 init
//	LABEL:                          label (may share a line with an instr)
//	op[.suf] operand{,operand}      instruction
//
// Operands: #imm (decimal or 0x hex), a0..a7, s0..s7, v0..v7, vl, vs,
// sym+disp(aN), disp(aN), sym(aN), or a branch label.
func Parse(src string) (*Program, error) {
	p := &Program{}
	var pendingLabels []string
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".data") {
			d, err := parseData(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineno+1, err)
			}
			p.AddData(d)
			continue
		}
		// Leading labels (possibly several, possibly followed by an instr).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if name == "" || strings.ContainsAny(name, " \t,#()") {
				return nil, fmt.Errorf("line %d: bad label %q", lineno+1, name)
			}
			pendingLabels = append(pendingLabels, name)
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		in, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno+1, err)
		}
		for _, l := range pendingLabels {
			p.SetLabel(l)
		}
		if len(pendingLabels) > 0 {
			in.Label = pendingLabels[0]
		}
		pendingLabels = pendingLabels[:0]
		p.Instrs = append(p.Instrs, in)
	}
	for _, l := range pendingLabels {
		p.SetLabel(l)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse for known-good sources; it panics on error. It is a
// test fixture helper only — production code handles Parse's error, and
// macsvet enforces that no non-test file calls it.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseData(line string) (DataDef, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return DataDef{}, fmt.Errorf("bad .data directive %q", line)
	}
	size, err := strconv.ParseInt(fields[2], 0, 64)
	if err != nil || size < 0 {
		return DataDef{}, fmt.Errorf("bad .data size %q", fields[2])
	}
	d := DataDef{Name: fields[1], Size: size}
	for _, f := range fields[3:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return DataDef{}, fmt.Errorf("bad .data init value %q", f)
		}
		d.Init = append(d.Init, v)
	}
	if int64(len(d.Init))*8 > d.Size {
		return DataDef{}, fmt.Errorf(".data %s: %d init values exceed %d bytes", d.Name, len(d.Init), d.Size)
	}
	return d, nil
}

func parseInstr(line string) (isa.Instr, error) {
	var in isa.Instr
	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	opName := mn
	if i := strings.IndexByte(mn, '.'); i >= 0 {
		opName = mn[:i]
		suf, ok := isa.SuffixByName(mn[i+1:])
		if !ok {
			return in, fmt.Errorf("unknown suffix %q", mn[i+1:])
		}
		in.Suffix = suf
	}
	op, ok := isa.OpByName(opName)
	if !ok {
		return in, fmt.Errorf("unknown opcode %q", opName)
	}
	in.Op = op
	if rest != "" {
		for _, tok := range splitOperands(rest) {
			o, err := parseOperand(strings.TrimSpace(tok), op)
			if err != nil {
				return in, err
			}
			in.Ops = append(in.Ops, o)
		}
	}
	return in, nil
}

// splitOperands splits on commas outside parentheses.
func splitOperands(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func parseOperand(tok string, op isa.Op) (isa.Operand, error) {
	if tok == "" {
		return isa.Operand{}, fmt.Errorf("empty operand")
	}
	if tok[0] == '#' {
		v, err := strconv.ParseInt(tok[1:], 0, 64)
		if err != nil {
			return isa.Operand{}, fmt.Errorf("bad immediate %q", tok)
		}
		return isa.ImmOp(v), nil
	}
	if r, ok := parseReg(tok); ok {
		return isa.RegOp(r), nil
	}
	if strings.HasSuffix(tok, ")") {
		i := strings.LastIndexByte(tok, '(')
		if i < 0 {
			return isa.Operand{}, fmt.Errorf("bad memory operand %q", tok)
		}
		base, ok := parseReg(tok[i+1 : len(tok)-1])
		if !ok || base.Class != isa.ClassA {
			return isa.Operand{}, fmt.Errorf("bad memory base in %q", tok)
		}
		sym, disp, err := parseSymDisp(tok[:i])
		if err != nil {
			return isa.Operand{}, err
		}
		return isa.MemOp(sym, disp, base), nil
	}
	if op == isa.OpJbrs || op == isa.OpJmp {
		return isa.LabelOp(tok), nil
	}
	// Bare symbol or number: absolute memory operand without base register.
	sym, disp, err := parseSymDisp(tok)
	if err != nil {
		return isa.Operand{}, fmt.Errorf("bad operand %q", tok)
	}
	return isa.MemOp(sym, disp, isa.NoReg()), nil
}

func parseSymDisp(s string) (string, int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, nil
	}
	sym := s
	var dispStr string
	if i := strings.LastIndexByte(s, '+'); i > 0 {
		sym, dispStr = s[:i], s[i+1:]
	} else if i := strings.LastIndexByte(s, '-'); i > 0 {
		sym, dispStr = s[:i], s[i:]
	}
	if dispStr != "" {
		d, err := strconv.ParseInt(dispStr, 0, 64)
		if err != nil {
			return "", 0, fmt.Errorf("bad displacement in %q", s)
		}
		return sym, d, nil
	}
	// Pure numeric displacement, no symbol.
	if d, err := strconv.ParseInt(sym, 0, 64); err == nil {
		return "", d, nil
	}
	return sym, 0, nil
}

func parseReg(s string) (isa.Reg, bool) {
	switch s {
	case "vl":
		return isa.VL(), true
	case "vs":
		return isa.VS(), true
	}
	if len(s) != 2 {
		return isa.Reg{}, false
	}
	n := int(s[1] - '0')
	if n < 0 || n > 7 {
		return isa.Reg{}, false
	}
	switch s[0] {
	case 'a':
		return isa.A(n), true
	case 's':
		return isa.S(n), true
	case 'v':
		return isa.V(n), true
	}
	return isa.Reg{}, false
}
