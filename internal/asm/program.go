// Package asm provides the assembly-level program model for the Convex-style
// ISA in internal/isa: a Program with labeled instructions and data symbols,
// a text parser and printer for the paper's assembly syntax, and inner-loop
// discovery used by the MACS bounds model.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"macs/internal/isa"
)

// DataDef declares a data symbol: Size bytes of memory, optionally
// initialized with 64-bit floating point values (8 bytes each, from the
// start of the region).
type DataDef struct {
	Name string
	Size int64
	Init []float64
}

// Program is an assembled program: an instruction sequence with labels and
// data symbol definitions. The zero value is an empty program ready to use.
type Program struct {
	Instrs []isa.Instr
	Labels map[string]int // label -> index into Instrs
	Data   []DataDef
}

// Clone returns a deep copy of the program. Instruction operand slices are
// copied so the clone can be rewritten independently (the A/X generators
// rely on this).
func (p *Program) Clone() *Program {
	q := &Program{
		Instrs: make([]isa.Instr, len(p.Instrs)),
		Labels: make(map[string]int, len(p.Labels)),
		Data:   make([]DataDef, len(p.Data)),
	}
	for i, in := range p.Instrs {
		in.Ops = append([]isa.Operand(nil), in.Ops...)
		q.Instrs[i] = in
	}
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	for i, d := range p.Data {
		d.Init = append([]float64(nil), d.Init...)
		q.Data[i] = d
	}
	return q
}

// Add appends an instruction and returns its index.
func (p *Program) Add(in isa.Instr) int {
	if in.Label != "" {
		p.setLabel(in.Label, len(p.Instrs))
	}
	p.Instrs = append(p.Instrs, in)
	return len(p.Instrs) - 1
}

// SetLabel attaches a label to the next instruction to be added (index
// len(Instrs)); it is also applied retroactively by Add when the
// instruction carries a Label.
func (p *Program) SetLabel(name string) {
	p.setLabel(name, len(p.Instrs))
}

func (p *Program) setLabel(name string, idx int) {
	if p.Labels == nil {
		p.Labels = make(map[string]int)
	}
	p.Labels[name] = idx
}

// AddData declares a data symbol.
func (p *Program) AddData(d DataDef) { p.Data = append(p.Data, d) }

// FindData returns the definition of a data symbol.
func (p *Program) FindData(name string) (DataDef, bool) {
	for _, d := range p.Data {
		if d.Name == name {
			return d, true
		}
	}
	return DataDef{}, false
}

// Validate checks structural invariants: branch targets resolve, register
// numbers are in range, memory operands have address-register bases, and
// label indices are within the program.
func (p *Program) Validate() error {
	for name, idx := range p.Labels {
		if idx < 0 || idx > len(p.Instrs) {
			return fmt.Errorf("asm: label %q index %d out of range", name, idx)
		}
	}
	for i, in := range p.Instrs {
		for _, o := range in.Ops {
			switch o.Kind {
			case isa.KindReg:
				if err := checkReg(o.Reg); err != nil {
					return fmt.Errorf("asm: instr %d (%s): %v", i, in, err)
				}
			case isa.KindMem:
				if o.Base.Class != isa.ClassA && o.Base.Class != isa.ClassNone {
					return fmt.Errorf("asm: instr %d (%s): memory base must be an a-register", i, in)
				}
				if o.Base.Class == isa.ClassA {
					if err := checkReg(o.Base); err != nil {
						return fmt.Errorf("asm: instr %d (%s): %v", i, in, err)
					}
				}
				if o.Sym != "" {
					if _, ok := p.FindData(o.Sym); !ok {
						return fmt.Errorf("asm: instr %d (%s): undefined symbol %q", i, in, o.Sym)
					}
				}
			case isa.KindLabel:
				if _, ok := p.Labels[o.Label]; !ok {
					return fmt.Errorf("asm: instr %d (%s): undefined label %q", i, in, o.Label)
				}
			}
		}
	}
	return nil
}

func checkReg(r isa.Reg) error {
	switch r.Class {
	case isa.ClassA:
		if r.N < 0 || r.N >= isa.NumARegs {
			return fmt.Errorf("register a%d out of range", r.N)
		}
	case isa.ClassS:
		if r.N < 0 || r.N >= isa.NumSRegs {
			return fmt.Errorf("register s%d out of range", r.N)
		}
	case isa.ClassV:
		if r.N < 0 || r.N >= isa.NumVRegs {
			return fmt.Errorf("register v%d out of range", r.N)
		}
	case isa.ClassVL, isa.ClassVS:
		// singletons
	default:
		return fmt.Errorf("invalid register class")
	}
	return nil
}

// String renders the program in parseable assembly text.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Data {
		fmt.Fprintf(&b, ".data %s %d", d.Name, d.Size)
		for _, v := range d.Init {
			fmt.Fprintf(&b, " %g", v)
		}
		b.WriteByte('\n')
	}
	labelsAt := make(map[int][]string)
	for name, idx := range p.Labels {
		labelsAt[idx] = append(labelsAt[idx], name)
	}
	for _, names := range labelsAt {
		sort.Strings(names)
	}
	for i, in := range p.Instrs {
		for _, name := range labelsAt[i] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "\t%s\n", in)
	}
	for _, name := range labelsAt[len(p.Instrs)] {
		fmt.Fprintf(&b, "%s:\n", name)
	}
	return b.String()
}

// VectorCount returns the number of vector instructions in the slice,
// broken down by MACS class.
func VectorCount(instrs []isa.Instr) map[isa.OpClass]int {
	counts := make(map[isa.OpClass]int)
	for _, in := range instrs {
		if in.IsVector() {
			counts[in.Class()]++
		}
	}
	return counts
}
