package asm

import "macs/internal/isa"

// Loop is a backward-branch loop in a program: the instruction range
// [Start, End) where End-1 is a branch back to Start. Body aliases the
// program's instruction slice.
type Loop struct {
	Label      string
	Start, End int
	Body       []isa.Instr
}

// VectorInstrs returns the vector instructions of the loop body in order.
func (l Loop) VectorInstrs() []isa.Instr {
	var out []isa.Instr
	for _, in := range l.Body {
		if in.IsVector() {
			out = append(out, in)
		}
	}
	return out
}

// IsVectorized reports whether the loop body contains at least one vector
// instruction.
func (l Loop) IsVectorized() bool {
	for _, in := range l.Body {
		if in.IsVector() {
			return true
		}
	}
	return false
}

// FindLoops locates the backward-branch loops of a program, innermost
// first for nests. Each conditional or unconditional branch whose target
// label precedes it defines a loop.
func FindLoops(p *Program) []Loop {
	var loops []Loop
	for i, in := range p.Instrs {
		if !in.IsBranch() {
			continue
		}
		var target string
		for _, o := range in.Ops {
			if o.Kind == isa.KindLabel {
				target = o.Label
			}
		}
		if target == "" {
			continue
		}
		start, ok := p.Labels[target]
		if !ok || start > i {
			continue
		}
		loops = append(loops, Loop{
			Label: target,
			Start: start,
			End:   i + 1,
			Body:  p.Instrs[start : i+1],
		})
	}
	// Innermost first: shorter spans first, then by position.
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0; j-- {
			a, b := loops[j-1], loops[j]
			if span(b) < span(a) {
				loops[j-1], loops[j] = b, a
			}
		}
	}
	return loops
}

func span(l Loop) int { return l.End - l.Start }

// InnerVectorLoop returns the innermost vectorized loop of the program —
// the loop the MACS model analyzes. ok is false if the program has no
// vectorized loop.
func InnerVectorLoop(p *Program) (Loop, bool) {
	for _, l := range FindLoops(p) {
		if l.IsVectorized() {
			return l, true
		}
	}
	return Loop{}, false
}
