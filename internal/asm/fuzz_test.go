package asm_test

import (
	"testing"

	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/lfk"
)

// FuzzAsmParse asserts the assembly parser never panics on arbitrary
// input, and that parse→print→parse is a fixpoint: a parsed program's
// String() form parses back to a program with identical String(). Seeds
// are the compiled forms of the ten case-study kernels.
func FuzzAsmParse(f *testing.F) {
	for _, k := range lfk.All() {
		p, err := compiler.Compile(k.Source, compiler.DefaultOptions())
		if err != nil {
			f.Fatalf("LFK%d does not compile: %v", k.ID, err)
		}
		f.Add(p.String())
	}
	f.Add("main:\n  mov 8,vs\n  mov 4,vl\n  ld.d d_X(a0),v0\n.data d_X 64\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := asm.Parse(src)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		c1 := p1.String()
		p2, err := asm.Parse(c1)
		if err != nil {
			t.Fatalf("printed program does not re-parse: %v\ninput: %q\nprinted: %q", err, src, c1)
		}
		if c2 := p2.String(); c2 != c1 {
			t.Fatalf("String is not a fixpoint\ninput: %q\nfirst:  %q\nsecond: %q", src, c1, c2)
		}
	})
}
