// Package report renders experiment results as fixed-width text tables
// and simple bar charts, mirroring the layout of the paper's tables.
package report

import (
	"fmt"
	"strings"

	"macs/internal/calib"
	"macs/internal/experiments"
	"macs/internal/fasttier"
	"macs/internal/isa"
	"macs/internal/vm"
)

// Render formats a header row and data rows as a fixed-width table.
func Render(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Table1 renders calibration results in the layout of the paper's Table 1.
func Table1(results []calib.Result) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Op.String(), r.Format,
			fmt.Sprintf("%d", r.Fit.X), fmt.Sprintf("%d", r.Fit.Y), f2(r.Fit.Z), fmt.Sprintf("%d", r.Fit.B),
			fmt.Sprintf("%d", r.Spec.X), fmt.Sprintf("%d", r.Spec.Y), f2(r.Spec.Z), fmt.Sprintf("%d", r.Spec.B),
		})
	}
	return Render(
		fmt.Sprintf("Table 1: Vector Instruction Execution Times (VL = %d), calibrated vs specified", isa.VLMax),
		[]string{"instr", "format", "X", "Y", "Z", "B", "specX", "specY", "specZ", "specB"},
		rows)
}

// Table2 renders the LFK workload table.
func Table2(rows []experiments.Table2Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.ID),
			fmt.Sprintf("%d", r.MA.FA), fmt.Sprintf("%d", r.MA.FM),
			fmt.Sprintf("%d", r.MA.Loads), fmt.Sprintf("%d", r.MA.Stores),
			fmt.Sprintf("%d", r.MAC.FA), fmt.Sprintf("%d", r.MAC.FM),
			fmt.Sprintf("%d", r.MAC.Loads), fmt.Sprintf("%d", r.MAC.Stores),
		})
	}
	return Render("Table 2: LFK Work Load (MA counts | MAC counts)",
		[]string{"LFK", "fa", "fm", "l", "s", "fa'", "fm'", "l'", "s'"}, out)
}

// Table3 renders the performance-bounds table (CPL).
func Table3(rows []experiments.Table3Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.ID),
			f3(r.TM), f3(r.TMp), f3(r.TMACSm),
			f3(r.TF), f3(r.TFp), f3(r.TMACSf),
			f3(r.TMA), f3(r.TMAC), f3(r.TMACS),
		})
	}
	return Render("Table 3: Performance Bounds (CPL)",
		[]string{"LFK", "t_m", "t_m'", "t_MACS^m", "t_f", "t_f'", "t_MACS^f", "t_MA", "t_MAC", "t_MACS"}, out)
}

// Table4 renders the bounds-vs-measured comparison (CPF) with the paper's
// published values alongside.
func Table4(t experiments.Table4) string {
	out := make([][]string, 0, len(t.Rows)+2)
	for _, r := range t.Rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.ID),
			f3(r.TMA), f3(r.TMAC), f3(r.TMACS), f3(r.TP),
			pct(r.PctMA), pct(r.PctMAC), pct(r.PctMACS),
			f3(r.Paper.TMA), f3(r.Paper.TMACS), f3(r.Paper.TP),
		})
	}
	out = append(out, []string{
		"AVG", f3(t.Avg[0]), f3(t.Avg[1]), f3(t.Avg[2]), f3(t.Avg[3]),
		"", "", "", "1.080", "1.352", "1.900",
	})
	out = append(out, []string{
		"MFLOPS", f2(t.MFLOPS[0]), f2(t.MFLOPS[1]), f2(t.MFLOPS[2]), f2(t.MFLOPS[3]),
		"", "", "", "23.15", "17.79", "13.16",
	})
	return Render("Table 4: Comparison of Bounds with Measured Performance (CPF)",
		[]string{"LFK", "t_MA", "t_MAC", "t_MACS", "t_p", "%MA", "%MAC", "%MACS",
			"paper t_MA", "paper t_MACS", "paper t_p"}, out)
}

// Table5 renders the MACS bounds and A/X measurements (CPL).
func Table5(rows []experiments.Table5Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.ID),
			f2(r.TP), f2(r.TMACS),
			f2(r.TX), f2(r.TMACSf),
			f2(r.TA), f2(r.TMACSm),
		})
	}
	return Render("Table 5: MACS Bounds and A/X Measurements (CPL)",
		[]string{"LFK", "t_p", "t_MACS", "t_x", "t_MACS^f", "t_a", "t_MACS^m"}, out)
}

// Figure1 renders the per-kernel hierarchy of bounds and measurements.
func Figure1(hs []experiments.Hierarchy) string {
	out := make([][]string, 0, len(hs))
	for _, h := range hs {
		tcp := "-"
		if h.TCP > 0 {
			tcp = f2(h.TCP)
		}
		out = append(out, []string{
			fmt.Sprintf("%d", h.ID),
			f2(h.TMA), f2(h.TMAC), f2(h.TMACS), tcp,
			f2(h.TMACSf), f2(h.TX), f2(h.TMACSm), f2(h.TA), f2(h.TP),
		})
	}
	return Render("Figure 1: Hierarchy of Performance Models and Measurements (CPL)",
		[]string{"LFK", "t_MA", "t_MAC", "t_MACS", "t_CP", "t_MACS^f", "t_x", "t_MACS^m", "t_a", "t_p"}, out)
}

// Figure2 renders the chaining walkthrough timeline.
func Figure2(fig experiments.Figure2) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Chaining with Perfect Tailgating\n")
	fmt.Fprintf(&b, "chained ld/add/mul chime: %d cycles (paper: 162)\n", fig.ChainedCycles)
	fmt.Fprintf(&b, "without chaining:         %d cycles (paper: 422)\n", fig.UnchainedCycles)
	fmt.Fprintf(&b, "steady-state chime:       %.2f cycles (paper Eq. 13: VL + sum B = 132)\n\n", fig.SteadyChime)
	for _, e := range fig.Events {
		fmt.Fprintf(&b, "  chime %d  %-24s start=%-4d first=%-4d finish=%d\n",
			e.Chime, e.Instr.String(), e.Start, e.FirstResult, e.Finish)
	}
	b.WriteString("\n")
	b.WriteString(Timeline(fig.Events, 64))
	return b.String()
}

// Timeline draws vector instruction activity as an ASCII chart in the
// style of the paper's Figure 2: '.' for startup/fill, '#' while results
// stream out.
func Timeline(events []vm.TraceEvent, width int) string {
	if len(events) == 0 {
		return ""
	}
	t0, t1 := events[0].Start, events[0].Finish
	for _, e := range events {
		if e.Start < t0 {
			t0 = e.Start
		}
		if e.Finish > t1 {
			t1 = e.Finish
		}
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	col := func(t int64) int {
		c := int((t - t0) * int64(width) / span)
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d ('.' pipe fill, '#' results streaming)\n", t0, t1)
	for _, e := range events {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for c := col(e.Start); c <= col(e.FirstResult); c++ {
			row[c] = '.'
		}
		for c := col(e.FirstResult); c <= col(e.Finish); c++ {
			row[c] = '#'
		}
		fmt.Fprintf(&b, "%-22s |%s|\n", e.Instr.String(), row)
	}
	return b.String()
}

// AttributionTable renders a run's stall-attribution ledger as a table:
// one row per cycle class (issue plus each nonzero stall cause), one
// column per lane (ASU and the three VP pipes), a lane-summed total and
// its share of all accounted lane-cycles. With a conserved ledger every
// column sums to Stats.Cycles.
func AttributionTable(st vm.Stats) string {
	lanes := []int{vm.LaneASU, int(isa.PipeLoadStore), int(isa.PipeAdd), int(isa.PipeMul)}
	grand := float64(int64(vm.NumLanes) * st.Cycles)
	row := func(name string, get func(l vm.LaneAttribution) int64) []string {
		cells := []string{name}
		var sum int64
		for _, lane := range lanes {
			v := get(st.Attr.Lanes[lane])
			sum += v
			cells = append(cells, fmt.Sprintf("%d", v))
		}
		cells = append(cells, fmt.Sprintf("%d", sum))
		if grand > 0 {
			cells = append(cells, pct(float64(sum)/grand))
		} else {
			cells = append(cells, pct(0))
		}
		return cells
	}
	rows := [][]string{row("issue", func(l vm.LaneAttribution) int64 { return l.Issue })}
	for _, c := range vm.StallCauses() {
		c := c
		if st.Attr.Cause(c) == 0 {
			continue
		}
		rows = append(rows, row(c.String(), func(l vm.LaneAttribution) int64 { return l.Stalls[c] }))
	}
	rows = append(rows, row("total", func(l vm.LaneAttribution) int64 { return l.Total() }))
	headers := []string{"cycles"}
	for _, lane := range lanes {
		headers = append(headers, vm.LaneName(lane))
	}
	headers = append(headers, "all lanes", "share")
	return Render(fmt.Sprintf("Stall attribution (%d cycles; per-lane issue + stalls = total)", st.Cycles),
		headers, rows)
}

// PredictionTable renders the fast tier's predicted per-lane stall
// attribution in the same layout as AttributionTable, so the two are
// directly comparable side by side.
func PredictionTable(p fasttier.Prediction) string {
	lanes := []int{fasttier.LaneASU, int(isa.PipeLoadStore), int(isa.PipeAdd), int(isa.PipeMul)}
	grand := float64(int64(fasttier.NumLanes) * p.Cycles)
	row := func(name string, get func(l fasttier.LaneLedger) int64) []string {
		cells := []string{name}
		var sum int64
		for _, lane := range lanes {
			v := get(p.Attr.Lanes[lane])
			sum += v
			cells = append(cells, fmt.Sprintf("%d", v))
		}
		cells = append(cells, fmt.Sprintf("%d", sum))
		if grand > 0 {
			cells = append(cells, pct(float64(sum)/grand))
		} else {
			cells = append(cells, pct(0))
		}
		return cells
	}
	rows := [][]string{row("issue", func(l fasttier.LaneLedger) int64 { return l.Issue })}
	for _, c := range fasttier.Causes() {
		c := c
		if p.Attr.Cause(c) == 0 {
			continue
		}
		rows = append(rows, row(c.String(), func(l fasttier.LaneLedger) int64 { return l.Stalls[c] }))
	}
	rows = append(rows, row("total", func(l fasttier.LaneLedger) int64 { return l.Total() }))
	headers := []string{"cycles"}
	for _, lane := range lanes {
		headers = append(headers, fasttier.LaneName(lane))
	}
	headers = append(headers, "all lanes", "share")
	return Render(fmt.Sprintf("Predicted stall attribution (%d cycles; fast tier, no simulation)", p.Cycles),
		headers, rows)
}

// Extended renders the extension table: plain vs extended vs
// decomposition-aware bounds against measured CPL.
func Extended(rows []experiments.ExtendedRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.ID),
			f3(r.TMACS), f3(r.TPlus), f3(r.TD), f3(r.TP),
			pct(r.PctMACS), pct(r.PctPlus),
		})
	}
	return Render("Extension: plain vs extended (t_MACS+) vs decomposition (t_MACSD) bounds (CPL)",
		[]string{"LFK", "t_MACS", "t_MACS+", "t_MACSD", "t_p", "%MACS", "%MACS+"}, out)
}

// Cluster renders the four-CPU co-simulation results.
func Cluster(rows []experiments.ClusterRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.ID),
			f3(r.SoloCPL), f3(r.ClusterCPL),
			fmt.Sprintf("%.1f%%", 100*(r.Degradation-1)),
		})
	}
	return Render("Co-simulation: four copies of each kernel on the shared 32 banks (paper §4.2: same-executable lockstep costs 5-10%)",
		[]string{"LFK", "solo CPL", "4-copy CPL", "degradation"}, out)
}

// MachinesTable renders the cross-machine comparison.
func MachinesTable(rows []experiments.MachineRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		ok := "yes"
		if !r.Validated {
			ok = "NO"
		}
		out = append(out, []string{
			r.Name, f3(r.AvgMACSCPF), f3(r.AvgMeasuredCPF),
			f2(r.BoundMFLOPS), f2(r.MFLOPS), ok,
		})
	}
	return Render("Machine comparison: the MACS methodology across vector machines (10-kernel suite)",
		[]string{"machine", "avg t_MACS CPF", "avg t_p CPF", "bound MFLOPS", "MFLOPS", "validated"}, out)
}

// Figure3 renders the bounds-vs-measured bars per kernel as an ASCII
// chart (CPF; longer bar = slower).
func Figure3(rows []experiments.Figure3Row, slowdown float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Bounds vs Measured CPF (multi-process memory slowdown %.2fx)\n", slowdown)
	maxV := 0.0
	for _, r := range rows {
		if r.Multi > maxV {
			maxV = r.Multi
		}
	}
	bar := func(v float64) string {
		n := int(v / maxV * 48)
		return strings.Repeat("#", n)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "LFK%-2d\n", r.ID)
		fmt.Fprintf(&b, "  MA     %6.3f |%s\n", r.TMA, bar(r.TMA))
		fmt.Fprintf(&b, "  MAC    %6.3f |%s\n", r.TMAC, bar(r.TMAC))
		fmt.Fprintf(&b, "  MACS   %6.3f |%s\n", r.TMACS, bar(r.TMACS))
		fmt.Fprintf(&b, "  single %6.3f |%s\n", r.Single, bar(r.Single))
		fmt.Fprintf(&b, "  multi  %6.3f |%s\n", r.Multi, bar(r.Multi))
	}
	return b.String()
}
