package report

import (
	"strings"
	"testing"

	"macs/internal/calib"
	"macs/internal/experiments"
	"macs/internal/isa"
	"macs/internal/vm"
)

func TestRender(t *testing.T) {
	out := Render("title", []string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"333", "4"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "long-header") {
		t.Errorf("header line = %q", lines[1])
	}
	// Columns align: every data line has the same width as the header.
	if len(lines[3]) != len(lines[1]) || len(lines[4]) != len(lines[1]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestTable1Rendering(t *testing.T) {
	res := []calib.Result{{
		Op:     isa.OpLd,
		Format: "ld.l arr(a0),v0",
		Fit:    isa.Timing{X: 2, Y: 10, Z: 1.0, B: 2},
		Spec:   isa.Timing{X: 2, Y: 10, Z: 1.0, B: 2},
	}}
	out := Table1(res)
	for _, want := range []string{"Table 1", "ld", "1.00", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Rendering(t *testing.T) {
	t4 := experiments.Table4{
		Rows: []experiments.Table4Row{{
			ID: 1, TMA: 0.6, TMAC: 0.8, TMACS: 0.84, TP: 0.85,
			PctMA: 0.7, PctMAC: 0.94, PctMACS: 0.99,
		}},
		Avg:    [4]float64{0.6, 0.8, 0.84, 0.85},
		MFLOPS: [4]float64{41.7, 31.2, 29.8, 29.4},
	}
	out := Table4(t4)
	for _, want := range []string{"Table 4", "0.600", "AVG", "MFLOPS", "99.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Rendering(t *testing.T) {
	rows := []experiments.Figure3Row{
		{ID: 1, TMA: 0.6, TMAC: 0.8, TMACS: 0.84, Single: 0.85, Multi: 1.1},
	}
	out := Figure3(rows, 1.45)
	for _, want := range []string{"Figure 3", "LFK1", "multi", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Rendering(t *testing.T) {
	fig := experiments.Figure2{ChainedCycles: 162, UnchainedCycles: 422, SteadyChime: 132}
	out := Figure2(fig)
	for _, want := range []string{"162", "422", "132"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q:\n%s", want, out)
		}
	}
}

func TestEndToEndTables(t *testing.T) {
	// Smoke-render every table from real data.
	cfg := experiments.Default()
	t2, err := experiments.Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Table2(t2), "Table 2") {
		t.Error("Table2 render failed")
	}
	t3, err := experiments.Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := Table3(t3)
	if !strings.Contains(out, "t_MACS^m") || len(strings.Split(out, "\n")) < 12 {
		t.Errorf("Table3 render too short:\n%s", out)
	}
}

func TestTable5AndFigure1Rendering(t *testing.T) {
	t5 := []experiments.Table5Row{{ID: 1, TP: 4.57, TMACS: 4.2, TX: 3.25, TMACSf: 3.04, TA: 4.22, TMACSm: 4.16}}
	out := Table5(t5)
	for _, want := range []string{"Table 5", "4.57", "t_MACS^m"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q:\n%s", want, out)
		}
	}
	f1 := []experiments.Hierarchy{{ID: 1, TMA: 3, TMAC: 4, TMACS: 4.2, TMACSf: 3, TMACSm: 4.1, TX: 3.2, TA: 4.2, TP: 4.6}}
	out = Figure1(f1)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "4.60") {
		t.Errorf("Figure1 render:\n%s", out)
	}
}

func TestExtendedAndClusterRendering(t *testing.T) {
	ext := []experiments.ExtendedRow{{ID: 6, TMACS: 2.05, TPlus: 7.1, TD: 2.05, TP: 8.4, PctMACS: 0.24, PctPlus: 0.84}}
	out := Extended(ext)
	for _, want := range []string{"t_MACS+", "t_MACSD", "84.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Extended missing %q:\n%s", want, out)
		}
	}
	cl := []experiments.ClusterRow{{ID: 1, SoloCPL: 4.57, ClusterCPL: 4.80, Degradation: 1.051}}
	out = Cluster(cl)
	if !strings.Contains(out, "Co-simulation") || !strings.Contains(out, "5.1%") {
		t.Errorf("Cluster render:\n%s", out)
	}
}

func TestTimelineRendering(t *testing.T) {
	fig, err := experiments.RunFigure2(experiments.Default())
	if err != nil {
		t.Fatal(err)
	}
	out := Timeline(fig.Events, 40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("timeline lines = %d, want 4 (header + 3 instrs):\n%s", len(lines), out)
	}
	// The chained pattern: each row's '#' starts after the previous one's.
	idx := func(s string) int { return strings.IndexByte(s, '#') }
	if !(idx(lines[1]) < idx(lines[2]) && idx(lines[2]) < idx(lines[3])) {
		t.Errorf("chained stagger not visible:\n%s", out)
	}
	if Timeline(nil, 40) != "" {
		t.Error("empty timeline should render empty")
	}
}

func TestAttributionTableRendering(t *testing.T) {
	var st vm.Stats
	st.Cycles = 100
	for lane := 0; lane < vm.NumLanes; lane++ {
		st.Attr.Lanes[lane].Issue = 60
		st.Attr.Lanes[lane].Stalls[vm.StallStartup] = 10
		st.Attr.Lanes[lane].Stalls[vm.StallDrain] = 30
	}
	out := AttributionTable(st)
	for _, want := range []string{"issue", "startup", "drain", "asu", "load/store", "total", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "bank-conflict") {
		t.Errorf("zero cause should be omitted:\n%s", out)
	}
	// total row share is 100% of accounted lane-cycles.
	if !strings.Contains(out, "100.0%") {
		t.Errorf("conserved ledger should show 100.0%% total share:\n%s", out)
	}
}
