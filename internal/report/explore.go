package report

import (
	"fmt"
	"strings"

	"macs/internal/explore"
	"macs/internal/vm"
)

// MachineLabel describes a machine by how it differs from a reference
// (normally the grid base): "banks=16 vlmax=64". The reference itself
// reads "(base)". Sweep tables use it so a thousand-point grid stays
// readable — only the knobs actually varied appear.
func MachineLabel(m, ref vm.Machine) string {
	var parts []string
	add := func(name string, v, r any) {
		if v != r {
			parts = append(parts, fmt.Sprintf("%s=%v", name, v))
		}
	}
	add("vlmax", m.VLMax, ref.VLMax)
	add("banks", m.Banks, ref.Banks)
	add("bank-cycle", m.BankCycle, ref.BankCycle)
	add("refresh-period", m.RefreshPeriod, ref.RefreshPeriod)
	add("refresh-len", m.RefreshLen, ref.RefreshLen)
	add("bank-conflicts", m.BankConflicts, ref.BankConflicts)
	add("refresh-stalls", m.RefreshStalls, ref.RefreshStalls)
	add("mem-slowdown", m.MemSlowdown, ref.MemSlowdown)
	add("scalar-load-lat", m.ScalarLoadLat, ref.ScalarLoadLat)
	add("scalar-op-lat", m.ScalarOpLat, ref.ScalarOpLat)
	add("branch-penalty", m.BranchPenalty, ref.BranchPenalty)
	add("dispatch-lat", m.DispatchLat, ref.DispatchLat)
	if m.Rules != ref.Rules {
		add("chaining", m.Rules.Chaining, ref.Rules.Chaining)
		add("no-memory-chaining", m.Rules.NoMemoryChaining, ref.Rules.NoMemoryChaining)
		add("pair-rule", m.Rules.PairRule, ref.Rules.PairRule)
		add("split-rule", m.Rules.SplitRule, ref.Rules.SplitRule)
		add("bubbles", m.Rules.Bubbles, ref.Rules.Bubbles)
	}
	if len(parts) == 0 {
		return "(base)"
	}
	return strings.Join(parts, " ")
}

// ExploreTable renders a sweep's ranked outcome: the simulated survivors
// best-first with measured cycles and the t_MACS bound they ran against,
// then up to `losers` of the best pruned points with their fast-tier
// scores. ref is the machine the labels diff against (normally the grid
// base).
func ExploreTable(sw *explore.Sweep, ref vm.Machine, losers int) string {
	ranked := sw.Ranked()
	rows := make([][]string, 0, sw.Simulated+losers)
	for _, p := range ranked {
		if !p.Simulated {
			break
		}
		cpl := "-"
		if p.CPL > 0 {
			cpl = f3(p.CPL)
		}
		pcpl := "-"
		if p.PredictedCPL > 0 {
			pcpl = f3(p.PredictedCPL)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rank), "sim",
			fmt.Sprintf("%d", p.Cycles), cpl, pcpl,
			f3(p.Bounds.TMACS), MachineLabel(p.Machine, ref),
		})
	}
	shown := 0
	for _, p := range ranked[sw.Simulated:] {
		if shown >= losers {
			break
		}
		shown++
		pcpl := "-"
		if p.PredictedCPL > 0 {
			pcpl = f3(p.PredictedCPL)
		}
		rows = append(rows, []string{
			"-", "pruned",
			fmt.Sprintf("~%d", p.PredictedCycles), "-", pcpl,
			f3(p.Bounds.TMACS), MachineLabel(p.Machine, ref),
		})
	}
	title := fmt.Sprintf("Design-space sweep%s: %d points, %d simulated, %d pruned",
		labelSuffix(sw.Name), sw.Swept, sw.Simulated, sw.Pruned)
	if sw.Fallback {
		title += " (data-dependent: exhaustive)"
	}
	return Render(title,
		[]string{"rank", "stage", "cycles", "t_p", "t_pred", "t_MACS", "machine"},
		rows)
}

func labelSuffix(name string) string {
	if name == "" {
		return ""
	}
	return " of " + name
}
