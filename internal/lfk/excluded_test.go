package lfk

import (
	"testing"

	"macs/internal/compiler"
	"macs/internal/ftn"
	"macs/internal/vectorize"
	"macs/internal/vm"
)

func TestExcludedKernelsAreRecurrences(t *testing.T) {
	for _, k := range Excluded() {
		p, err := ftn.Parse(k.Source)
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		loop, ok := compiler.InnerLoop(p)
		if !ok {
			t.Fatalf("lfk%d: no loop", k.ID)
		}
		if _, err := vectorize.Vectorize(p, loop); err == nil {
			t.Errorf("lfk%d: the vectorizer accepted a true recurrence", k.ID)
		}
	}
}

func TestExcludedKernelsRunScalar(t *testing.T) {
	for _, k := range Excluded() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			c, err := Compile(k, compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			st, cpu, err := c.Run(vm.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if st.VectorInstrs != 0 {
				t.Errorf("lfk%d used %d vector instructions on a recurrence", k.ID, st.VectorInstrs)
			}
			if err := c.Validate(cpu); err != nil {
				t.Fatal(err)
			}
			// The scalar fallback is far slower than the vectorized
			// kernels — the reason the paper's case study excludes them.
			cpl := k.CPL(st.Cycles)
			if cpl < 10 {
				t.Errorf("lfk%d scalar CPL = %.1f, implausibly fast", k.ID, cpl)
			}
			t.Logf("lfk%d scalar: %.1f CPL", k.ID, cpl)
		})
	}
}

func TestExcludedNotInMainSuite(t *testing.T) {
	for _, k := range All() {
		if k.ID == 5 || k.ID == 11 {
			t.Errorf("excluded kernel %d in the main suite", k.ID)
		}
	}
	if _, err := ByID(5); err == nil {
		t.Error("ByID(5) should not resolve from the case-study set")
	}
}
