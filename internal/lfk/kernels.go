package lfk

import "macs/internal/core"

// LFK1 is the hydro fragment: X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11)).
func LFK1() *Kernel {
	const n = 1001
	k := &Kernel{
		ID:   1,
		Name: "hydro fragment",
		Source: `
PROGRAM LFK1
REAL X(2001), Y(2001), ZX(2048)
REAL Q, R, T
INTEGER N, K
DO K = 1, N
  X(K) = Q + Y(K)*(R*ZX(K+10) + T*ZX(K+11))
ENDDO
END
`,
		N:        n,
		Elements: n,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Reals:    map[string]float64{"Q": 0.5, "R": 0.25, "T": 0.125},
		Arrays: map[string][]float64{
			"Y":  fill(1, 2001),
			"ZX": fill(2, 2048),
		},
		Outputs: []string{"X"},
		Paper: PaperRow{
			TMA: 0.600, TMAC: 0.800, TMACS: 0.840, TP: 0.852,
			MA: core.Workload{FA: 2, FM: 3, Loads: 2, Stores: 1},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		y, zx := k.Arrays["Y"], k.Arrays["ZX"]
		q, r, t := k.Reals["Q"], k.Reals["R"], k.Reals["T"]
		x := make([]float64, 2001)
		for i := 1; i <= n; i++ {
			x[i-1] = q + y[i-1]*(r*zx[i+9]+t*zx[i+10])
		}
		return map[string][]float64{"X": x}
	}
	return k
}

// LFK2 is the excerpt from an incomplete Cholesky conjugate gradient:
// a halving cascade of stride-2 updates with an outer GOTO loop.
func LFK2() *Kernel {
	const n = 101
	k := &Kernel{
		ID:   2,
		Name: "ICCG excerpt",
		Source: `
PROGRAM LFK2
REAL X(2048), V(2048)
INTEGER N, II, IPNT, IPNTP, I, K
II = N
IPNTP = 0
100 CONTINUE
IPNT = IPNTP
IPNTP = IPNTP + II
II = II / 2
I = IPNTP + 1
CDIR$ IVDEP
DO K = IPNT + 2, IPNTP, 2
  I = I + 1
  X(I) = X(K) - V(K)*X(K-1) - V(K+1)*X(K+1)
ENDDO
IF (II .GT. 1) GOTO 100
END
`,
		N:       n,
		Entries: 6,
		Ints:    map[string]int64{"N": n},
		Arrays: map[string][]float64{
			"X": fill(3, 2048),
			"V": scale(fill(4, 2048), 0.1),
		},
		Outputs: []string{"X"},
		Paper: PaperRow{
			TMA: 1.250, TMAC: 1.500, TMACS: 1.566, TP: 3.773,
			MA: core.Workload{FA: 2, FM: 2, Loads: 4, Stores: 1},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		x := append([]float64(nil), k.Arrays["X"]...)
		v := k.Arrays["V"]
		elems := 0
		var lengths []int
		ii := n
		ipntp := 0
		for {
			ipnt := ipntp
			ipntp += ii
			ii /= 2
			i := ipntp + 1
			passLen := 0
			for kk := ipnt + 2; kk <= ipntp; kk += 2 {
				i++
				x[i-1] = x[kk-1] - v[kk-1]*x[kk-2] - v[kk]*x[kk]
				elems++
				passLen++
			}
			lengths = append(lengths, passLen)
			if ii <= 1 {
				break
			}
		}
		k.Elements = elems
		k.EntryLengths = lengths
		return map[string][]float64{"X": x}
	}
	// Fix the element count now (the reference is deterministic).
	k.Reference(k)
	return k
}

// LFK3 is the inner product: Q = Q + Z(k)*X(k).
func LFK3() *Kernel {
	const n = 1001
	k := &Kernel{
		ID:   3,
		Name: "inner product",
		Source: `
PROGRAM LFK3
REAL Z(2048), X(2048), Q
INTEGER N, K
DO K = 1, N
  Q = Q + Z(K)*X(K)
ENDDO
END
`,
		N:        n,
		Elements: n,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Reals:    map[string]float64{"Q": 0.0},
		Arrays: map[string][]float64{
			"Z": fill(5, 2048),
			"X": fill(6, 2048),
		},
		Outputs: []string{"Q"},
		Paper: PaperRow{
			TMA: 1.000, TMAC: 1.000, TMACS: 1.044, TP: 1.128,
			MA: core.Workload{FA: 1, FM: 1, Loads: 2, Stores: 0},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		z, x := k.Arrays["Z"], k.Arrays["X"]
		q := k.Reals["Q"]
		for i := 0; i < n; i++ {
			q += z[i] * x[i]
		}
		return map[string][]float64{"Q": {q}}
	}
	return k
}

// LFK4 is the banded linear equations kernel: strided dot products
// folded back into the band.
func LFK4() *Kernel {
	const n = 1001
	k := &Kernel{
		ID:   4,
		Name: "banded linear equations",
		Source: `
PROGRAM LFK4
REAL X(2048), Y(2048), TEMP
INTEGER N, J, K, LW
DO K = 7, 107, 50
  LW = K - 6
  TEMP = X(K-1)
  DO J = 5, N, 5
    TEMP = TEMP - X(LW)*Y(J)
    LW = LW + 1
  ENDDO
  X(K-1) = Y(5)*TEMP
ENDDO
END
`,
		N:        n,
		Elements: 3 * ((n-5)/5 + 1),
		Entries:  3,
		Ints:     map[string]int64{"N": n},
		Arrays: map[string][]float64{
			"X": scale(fill(7, 2048), 0.1),
			"Y": scale(fill(8, 2048), 0.1),
		},
		Outputs: []string{"X"},
		Paper: PaperRow{
			TMA: 1.000, TMAC: 1.000, TMACS: 1.226, TP: 1.863,
			MA: core.Workload{FA: 1, FM: 1, Loads: 2, Stores: 0},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		x := append([]float64(nil), k.Arrays["X"]...)
		y := k.Arrays["Y"]
		for kk := 7; kk <= 107; kk += 50 {
			lw := kk - 6
			temp := x[kk-2]
			for j := 5; j <= n; j += 5 {
				temp -= x[lw-1] * y[j-1]
				lw++
			}
			x[kk-2] = y[4] * temp
		}
		return map[string][]float64{"X": x}
	}
	return k
}

// LFK6 is the general linear recurrence: W(i) accumulates B(k,i)*W(i-k)
// over all earlier elements, giving short average vector lengths.
func LFK6() *Kernel {
	const n = 64
	elems := 0
	for i := 2; i <= n; i++ {
		elems += i - 1
	}
	var tri []int
	for i := 2; i <= n; i++ {
		tri = append(tri, i-1)
	}
	k := &Kernel{
		ID:   6,
		Name: "general linear recurrence",
		Source: `
PROGRAM LFK6
REAL W(1024), B(64,64)
INTEGER N, I, K
DO I = 2, N
  W(I) = 0.0100
CDIR$ IVDEP
  DO K = 1, I-1
    W(I) = W(I) + B(K,I)*W(I-K)
  ENDDO
ENDDO
END
`,
		N:            n,
		Elements:     elems,
		Entries:      63,
		EntryLengths: tri,
		Ints:         map[string]int64{"N": n},
		Arrays: map[string][]float64{
			"W": prefix(1024, []float64{0.01}),
			"B": scale(fill(9, 64*64), 0.01),
		},
		Outputs: []string{"W"},
		Paper: PaperRow{
			TMA: 1.000, TMAC: 1.000, TMACS: 1.220, TP: 2.632,
			MA: core.Workload{FA: 1, FM: 1, Loads: 2, Stores: 0},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		w := append([]float64(nil), k.Arrays["W"]...)
		b := k.Arrays["B"]
		for i := 2; i <= n; i++ {
			w[i-1] = 0.01
			for kk := 1; kk <= i-1; kk++ {
				w[i-1] += b[(kk-1)+(i-1)*64] * w[i-kk-1]
			}
		}
		return map[string][]float64{"W": w}
	}
	return k
}

// LFK7 is the equation-of-state fragment: 16 flops per element on four
// unit-stride streams.
func LFK7() *Kernel {
	const n = 995
	k := &Kernel{
		ID:   7,
		Name: "equation of state fragment",
		Source: `
PROGRAM LFK7
REAL X(2048), Y(2048), Z(2048), U(2048)
REAL R, T, Q
INTEGER N, K
DO K = 1, N
  X(K) = U(K) + R*(Z(K) + R*Y(K)) + T*(U(K+3) + R*(U(K+2) + R*U(K+1)) + T*(U(K+6) + Q*(U(K+5) + Q*U(K+4))))
ENDDO
END
`,
		N:        n,
		Elements: n,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Reals:    map[string]float64{"R": 0.5, "T": 0.25, "Q": 0.125},
		Arrays: map[string][]float64{
			"Y": fill(10, 2048),
			"Z": fill(11, 2048),
			"U": fill(12, 2048),
		},
		Outputs: []string{"X"},
		Paper: PaperRow{
			TMA: 0.500, TMAC: 0.625, TMACS: 0.656, TP: 0.681,
			MA: core.Workload{FA: 8, FM: 8, Loads: 3, Stores: 1},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		y, z, u := k.Arrays["Y"], k.Arrays["Z"], k.Arrays["U"]
		r, t, q := k.Reals["R"], k.Reals["T"], k.Reals["Q"]
		x := make([]float64, 2048)
		for i := 0; i < n; i++ {
			x[i] = u[i] + r*(z[i]+r*y[i]) +
				t*(u[i+3]+r*(u[i+2]+r*u[i+1])+
					t*(u[i+6]+q*(u[i+5]+q*u[i+4])))
		}
		return map[string][]float64{"X": x}
	}
	return k
}

// LFK8 is the ADI integration fragment: three coupled PDE updates whose
// eleven loop-invariant coefficients exceed the scalar register file, so
// the compiled loop reloads scalars and splits chimes (paper §4.4).
func LFK8() *Kernel {
	const n = 100
	k := &Kernel{
		ID:   8,
		Name: "ADI integration",
		Source: `
PROGRAM LFK8
REAL U1(5,101,2), U2(5,101,2), U3(5,101,2)
REAL DU1(101), DU2(101), DU3(101)
REAL A11, A12, A13, A21, A22, A23, A31, A32, A33, SIG
INTEGER N, KX, KY, NL1, NL2
NL1 = 1
NL2 = 2
DO KX = 2, 3
CDIR$ IVDEP
DO KY = 2, N
  DU1(KY) = U1(KX,KY+1,NL1) - U1(KX,KY-1,NL1)
  DU2(KY) = U2(KX,KY+1,NL1) - U2(KX,KY-1,NL1)
  DU3(KY) = U3(KX,KY+1,NL1) - U3(KX,KY-1,NL1)
  U1(KX,KY,NL2) = U1(KX,KY,NL1) + A11*DU1(KY) + A12*DU2(KY) + A13*DU3(KY) + SIG*(U1(KX+1,KY,NL1) - 2.0*U1(KX,KY,NL1) + U1(KX-1,KY,NL1))
  U2(KX,KY,NL2) = U2(KX,KY,NL1) + A21*DU1(KY) + A22*DU2(KY) + A23*DU3(KY) + SIG*(U2(KX+1,KY,NL1) - 2.0*U2(KX,KY,NL1) + U2(KX-1,KY,NL1))
  U3(KX,KY,NL2) = U3(KX,KY,NL1) + A31*DU1(KY) + A32*DU2(KY) + A33*DU3(KY) + SIG*(U3(KX+1,KY,NL1) - 2.0*U3(KX,KY,NL1) + U3(KX-1,KY,NL1))
ENDDO
ENDDO
END
`,
		N:        n,
		Elements: 2 * (n - 1),
		Entries:  2,
		Ints:     map[string]int64{"N": n},
		Reals: map[string]float64{
			"A11": 0.1, "A12": 0.2, "A13": 0.3,
			"A21": 0.4, "A22": 0.5, "A23": 0.6,
			"A31": 0.7, "A32": 0.8, "A33": 0.9,
			"SIG": 0.25,
		},
		Arrays: map[string][]float64{
			"U1": fill(13, 5*101*2),
			"U2": fill(14, 5*101*2),
			"U3": fill(15, 5*101*2),
		},
		Outputs: []string{"U1", "U2", "U3", "DU1", "DU2", "DU3"},
		Paper: PaperRow{
			TMA: 0.583, TMAC: 0.583, TMACS: 0.824, TP: 0.858,
			MA: core.Workload{FA: 21, FM: 15, Loads: 9, Stores: 6},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		u1 := append([]float64(nil), k.Arrays["U1"]...)
		u2 := append([]float64(nil), k.Arrays["U2"]...)
		u3 := append([]float64(nil), k.Arrays["U3"]...)
		du1 := make([]float64, 101)
		du2 := make([]float64, 101)
		du3 := make([]float64, 101)
		at := func(kx, ky, nl int) int { return (kx - 1) + (ky-1)*5 + (nl-1)*505 }
		r := k.Reals
		sig := r["SIG"]
		for kx := 2; kx <= 3; kx++ {
			for ky := 2; ky <= n; ky++ {
				du1[ky-1] = u1[at(kx, ky+1, 1)] - u1[at(kx, ky-1, 1)]
				du2[ky-1] = u2[at(kx, ky+1, 1)] - u2[at(kx, ky-1, 1)]
				du3[ky-1] = u3[at(kx, ky+1, 1)] - u3[at(kx, ky-1, 1)]
				u1[at(kx, ky, 2)] = u1[at(kx, ky, 1)] + r["A11"]*du1[ky-1] + r["A12"]*du2[ky-1] + r["A13"]*du3[ky-1] +
					sig*(u1[at(kx+1, ky, 1)]-2.0*u1[at(kx, ky, 1)]+u1[at(kx-1, ky, 1)])
				u2[at(kx, ky, 2)] = u2[at(kx, ky, 1)] + r["A21"]*du1[ky-1] + r["A22"]*du2[ky-1] + r["A23"]*du3[ky-1] +
					sig*(u2[at(kx+1, ky, 1)]-2.0*u2[at(kx, ky, 1)]+u2[at(kx-1, ky, 1)])
				u3[at(kx, ky, 2)] = u3[at(kx, ky, 1)] + r["A31"]*du1[ky-1] + r["A32"]*du2[ky-1] + r["A33"]*du3[ky-1] +
					sig*(u3[at(kx+1, ky, 1)]-2.0*u3[at(kx, ky, 1)]+u3[at(kx-1, ky, 1)])
			}
		}
		return map[string][]float64{
			"U1": u1, "U2": u2, "U3": u3,
			"DU1": du1, "DU2": du2, "DU3": du3,
		}
	}
	return k
}

// LFK9 is the integrate-predictors kernel: a nine-term polynomial update
// of the first row of PX with stride-25 streams.
func LFK9() *Kernel {
	const n = 101
	k := &Kernel{
		ID:   9,
		Name: "integrate predictors",
		Source: `
PROGRAM LFK9
REAL PX(25,101)
REAL DM28, DM27, DM26, DM25, DM24, DM23, DM22, C0
INTEGER N, I
DO I = 1, N
  PX(1,I) = DM28*PX(13,I) + DM27*PX(12,I) + DM26*PX(11,I) + DM25*PX(10,I) + DM24*PX(9,I) + DM23*PX(8,I) + DM22*PX(7,I) + C0*(PX(5,I) + PX(6,I)) + PX(3,I)
ENDDO
END
`,
		N:        n,
		Elements: n,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Reals: map[string]float64{
			"DM28": 0.1, "DM27": 0.2, "DM26": 0.3, "DM25": 0.4,
			"DM24": 0.5, "DM23": 0.6, "DM22": 0.7, "C0": 0.8,
		},
		Arrays: map[string][]float64{
			"PX": fill(16, 25*101),
		},
		Outputs: []string{"PX"},
		Paper: PaperRow{
			TMA: 0.647, TMAC: 0.647, TMACS: 0.679, TP: 0.749,
			MA: core.Workload{FA: 9, FM: 8, Loads: 10, Stores: 1},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		px := append([]float64(nil), k.Arrays["PX"]...)
		r := k.Reals
		at := func(j, i int) int { return (j - 1) + (i-1)*25 }
		for i := 1; i <= n; i++ {
			px[at(1, i)] = r["DM28"]*px[at(13, i)] + r["DM27"]*px[at(12, i)] +
				r["DM26"]*px[at(11, i)] + r["DM25"]*px[at(10, i)] +
				r["DM24"]*px[at(9, i)] + r["DM23"]*px[at(8, i)] +
				r["DM22"]*px[at(7, i)] + r["C0"]*(px[at(5, i)]+px[at(6, i)]) +
				px[at(3, i)]
		}
		return map[string][]float64{"PX": px}
	}
	return k
}

// LFK10 is the difference-predictors kernel: a cascade of nine
// subtractions rippling through rows 5..14 of PX.
func LFK10() *Kernel {
	const n = 101
	k := &Kernel{
		ID:   10,
		Name: "difference predictors",
		Source: `
PROGRAM LFK10
REAL PX(25,101), CX(25,101)
REAL T0, T1, T2, T3, T4, T5, T6, T7, T8, T9
INTEGER N, I
DO I = 1, N
  T0 = CX(5,I)
  T1 = T0 - PX(5,I)
  PX(5,I) = T0
  T2 = T1 - PX(6,I)
  PX(6,I) = T1
  T3 = T2 - PX(7,I)
  PX(7,I) = T2
  T4 = T3 - PX(8,I)
  PX(8,I) = T3
  T5 = T4 - PX(9,I)
  PX(9,I) = T4
  T6 = T5 - PX(10,I)
  PX(10,I) = T5
  T7 = T6 - PX(11,I)
  PX(11,I) = T6
  T8 = T7 - PX(12,I)
  PX(12,I) = T7
  T9 = T8 - PX(13,I)
  PX(13,I) = T8
  PX(14,I) = T9
ENDDO
END
`,
		N:        n,
		Elements: n,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Arrays: map[string][]float64{
			"PX": fill(17, 25*101),
			"CX": fill(18, 25*101),
		},
		Outputs: []string{"PX"},
		Paper: PaperRow{
			TMA: 2.222, TMAC: 2.222, TMACS: 2.328, TP: 2.442,
			MA: core.Workload{FA: 9, FM: 0, Loads: 10, Stores: 10},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		px := append([]float64(nil), k.Arrays["PX"]...)
		cx := k.Arrays["CX"]
		at := func(j, i int) int { return (j - 1) + (i-1)*25 }
		for i := 1; i <= n; i++ {
			t := make([]float64, 10)
			t[0] = cx[at(5, i)]
			for s := 1; s <= 9; s++ {
				t[s] = t[s-1] - px[at(4+s, i)]
				px[at(4+s, i)] = t[s-1]
			}
			px[at(14, i)] = t[9]
		}
		return map[string][]float64{"PX": px}
	}
	return k
}

// LFK12 is the first difference: X(k) = Y(k+1) - Y(k).
func LFK12() *Kernel {
	const n = 1000
	k := &Kernel{
		ID:   12,
		Name: "first difference",
		Source: `
PROGRAM LFK12
REAL X(2001), Y(2001)
INTEGER N, K
DO K = 1, N
  X(K) = Y(K+1) - Y(K)
ENDDO
END
`,
		N:        n,
		Elements: n,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Arrays: map[string][]float64{
			"Y": fill(19, 2001),
		},
		Outputs: []string{"X"},
		Paper: PaperRow{
			TMA: 2.000, TMAC: 3.000, TMACS: 3.132, TP: 3.182,
			MA: core.Workload{FA: 1, FM: 0, Loads: 1, Stores: 1},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		y := k.Arrays["Y"]
		x := make([]float64, 2001)
		for i := 0; i < n; i++ {
			x[i] = y[i+1] - y[i]
		}
		return map[string][]float64{"X": x}
	}
	return k
}

// scale multiplies every element by c.
func scale(a []float64, c float64) []float64 {
	for i := range a {
		a[i] *= c
	}
	return a
}

// prefix returns an n-element array starting with the given values.
func prefix(n int, vals []float64) []float64 {
	out := make([]float64, n)
	copy(out, vals)
	return out
}
