package lfk

import (
	"fmt"
	"math"

	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/vm"
)

// Compiled bundles a kernel with its compiled program.
type Compiled struct {
	Kernel  *Kernel
	Program *asm.Program
}

// Compile compiles a kernel with the given options.
func Compile(k *Kernel, opts compiler.Options) (*Compiled, error) {
	prog, err := compiler.Compile(k.Source, opts)
	if err != nil {
		return nil, fmt.Errorf("lfk%d: %w", k.ID, err)
	}
	return &Compiled{Kernel: k, Program: prog}, nil
}

// NewCPU creates a simulator, loads the program and primes the kernel's
// inputs.
func (c *Compiled) NewCPU(cfg vm.Config) (*vm.CPU, error) {
	cpu := vm.New(cfg)
	if err := c.Prime(cpu); err != nil {
		return nil, err
	}
	return cpu, nil
}

// Prime loads the kernel's program into a ready (fresh or pooled-and-
// reset) simulator and writes its input scalars and arrays into memory.
func (c *Compiled) Prime(cpu *vm.CPU) error {
	if err := cpu.Load(c.Program); err != nil {
		return err
	}
	return c.PrimeData(cpu)
}

// PrimeData writes the kernel's input scalars and arrays into the memory
// of a simulator that already has the program loaded.
func (c *Compiled) PrimeData(cpu *vm.CPU) error {
	m := cpu.Memory()
	k := c.Kernel
	for name, val := range k.Ints {
		base, ok := m.SymbolAddr(compiler.DataSym(name))
		if !ok {
			return fmt.Errorf("lfk%d: symbol %s missing", k.ID, name)
		}
		if err := m.WriteI64(base, val); err != nil {
			return err
		}
	}
	for name, val := range k.Reals {
		base, ok := m.SymbolAddr(compiler.DataSym(name))
		if !ok {
			return fmt.Errorf("lfk%d: symbol %s missing", k.ID, name)
		}
		if err := m.WriteF64(base, val); err != nil {
			return err
		}
	}
	for name, vals := range k.Arrays {
		base, ok := m.SymbolAddr(compiler.DataSym(name))
		if !ok {
			return fmt.Errorf("lfk%d: symbol %s missing", k.ID, name)
		}
		for i, v := range vals {
			if err := m.WriteF64(base+int64(i*8), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// DataInts returns the kernel's integer inputs keyed by compiled data
// symbol name ("N" becomes "d_N") — the priming map the analytical fast
// tier takes in place of a memory image.
func (k *Kernel) DataInts() map[string]int64 {
	out := make(map[string]int64, len(k.Ints))
	for name, val := range k.Ints {
		out[compiler.DataSym(name)] = val
	}
	return out
}

// PrimeFunc returns a priming callback that writes the kernel's input
// scalars and arrays into any simulator that already has the kernel's
// program loaded — the shape macs.AnalyzeSourceVM and the explore
// engine's Request.Prime take.
func (k *Kernel) PrimeFunc() func(*vm.CPU) error {
	c := &Compiled{Kernel: k}
	return c.PrimeData
}

// Run executes the primed kernel and returns the simulator statistics.
func (c *Compiled) Run(cfg vm.Config) (vm.Stats, *vm.CPU, error) {
	cpu, err := c.NewCPU(cfg)
	if err != nil {
		return vm.Stats{}, nil, err
	}
	st, err := cpu.Run()
	if err != nil {
		return st, cpu, fmt.Errorf("lfk%d: %w", c.Kernel.ID, err)
	}
	return st, cpu, nil
}

// RunOn primes the kernel into an existing simulator (typically one from
// a vm.Pool, already Reset) and runs it: the fast path of the per-kernel
// benchmarks and the parallel sweep runner.
func (c *Compiled) RunOn(cpu *vm.CPU) (vm.Stats, error) {
	if err := c.Prime(cpu); err != nil {
		return vm.Stats{}, err
	}
	st, err := cpu.Run()
	if err != nil {
		return st, fmt.Errorf("lfk%d: %w", c.Kernel.ID, err)
	}
	return st, nil
}

// Validate compares the simulator's memory against the kernel's Go
// reference implementation; it returns the first mismatch.
func (c *Compiled) Validate(cpu *vm.CPU) error {
	k := c.Kernel
	want := k.Reference(k)
	m := cpu.Memory()
	for _, name := range k.Outputs {
		expect, ok := want[name]
		if !ok {
			return fmt.Errorf("lfk%d: reference does not produce %s", k.ID, name)
		}
		base, ok := m.SymbolAddr(compiler.DataSym(name))
		if !ok {
			return fmt.Errorf("lfk%d: output symbol %s missing", k.ID, name)
		}
		for i, w := range expect {
			got, err := m.ReadF64(base + int64(i*8))
			if err != nil {
				return err
			}
			if !closeEnough(got, w) {
				return fmt.Errorf("lfk%d: %s(%d) = %v, want %v", k.ID, name, i+1, got, w)
			}
		}
	}
	return nil
}

func closeEnough(got, want float64) bool {
	if got == want {
		return true
	}
	diff := math.Abs(got - want)
	return diff <= 1e-9*(1+math.Abs(want))
}
