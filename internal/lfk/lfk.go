// Package lfk defines the ten Livermore Fortran Kernels of the paper's
// case study (LFK 1, 2, 3, 4, 6, 7, 8, 9, 10, 12): their Fortran-subset
// sources, deterministic input data, pure-Go reference implementations for
// functional validation of the simulator, and the paper's published
// numbers for shape comparison.
package lfk

import (
	"fmt"

	"macs/internal/core"
)

// Kernel is one benchmark kernel.
type Kernel struct {
	ID     int
	Name   string
	Source string
	// N is the problem size (the kernel's loop span).
	N int64
	// Elements is the total number of inner-loop iterations the kernel
	// executes — the divisor that converts cycles to CPL.
	Elements int
	// Entries is the number of times the inner loop is entered (outer
	// iterations or GOTO passes); it drives the extended short-vector
	// bound. 1 for flat loops.
	Entries int
	// EntryLengths, when set, gives each entry's exact element count
	// (LFK2's halving cascade, LFK6's triangular lengths).
	EntryLengths []int
	// Ints and Reals prime scalar variables; Arrays prime array contents.
	Ints   map[string]int64
	Reals  map[string]float64
	Arrays map[string][]float64
	// Outputs names the variables whose final contents the reference
	// validates (arrays compared element-wise, scalars as length 1).
	Outputs []string
	// Reference computes the expected final state from copies of the
	// primed inputs.
	Reference func(k *Kernel) map[string][]float64
	// Paper records the published Table 4 values (CPF) for this kernel.
	Paper PaperRow
}

// PaperRow holds the paper's Table 4 row: the bounds hierarchy and the
// measured single-process performance, all in cycles per flop.
type PaperRow struct {
	TMA, TMAC, TMACS, TP float64
	// MA is the paper's MA workload where derivable from Tables 2-3.
	MA core.Workload
}

// FlopsPerIteration returns the high-level flop count per inner-loop
// iteration (f_a + f_m of the MA workload).
func (k *Kernel) FlopsPerIteration() int { return k.Paper.MA.Flops() }

// CPL converts a cycle count for the whole kernel run into cycles per
// inner-loop iteration.
func (k *Kernel) CPL(cycles int64) float64 {
	return float64(cycles) / float64(k.Elements)
}

// CPF converts a cycle count into cycles per floating point operation.
func (k *Kernel) CPF(cycles int64) float64 {
	return k.CPL(cycles) / float64(k.FlopsPerIteration())
}

// All returns the ten kernels of the case study, in paper order.
func All() []*Kernel {
	return []*Kernel{
		LFK1(), LFK2(), LFK3(), LFK4(), LFK6(),
		LFK7(), LFK8(), LFK9(), LFK10(), LFK12(),
	}
}

// ByID returns one kernel.
func ByID(id int) (*Kernel, error) {
	for _, k := range All() {
		if k.ID == id {
			return k, nil
		}
	}
	return nil, fmt.Errorf("lfk: no kernel %d in the case study", id)
}

// gen produces deterministic, well-conditioned input data: values in
// [0.5, 1.5) with no short period.
func gen(seed, i int) float64 {
	x := uint64(i+1)*2654435761 + uint64(seed)*40503
	x ^= x >> 16
	return 0.5 + float64(x%1000)/1000.0
}

// fill builds an array of n generated values.
func fill(seed, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = gen(seed, i)
	}
	return out
}
