package lfk

import "macs/internal/core"

// The paper's case study uses "ten of the first twelve" Livermore
// kernels: LFK5 and LFK11 are excluded because they are true first-order
// linear recurrences, which the C-240's vectorizer cannot vectorize
// ("No true loop-carried dependence cycle appears in the ten LFKs",
// §3.1). They are included here as scalar-fallback demonstrations: the
// compiler must detect the recurrence, refuse vectorization, and still
// compute correct results on the ASU.

// Excluded returns LFK5 and LFK11.
func Excluded() []*Kernel { return []*Kernel{LFK5(), LFK11()} }

// LFK5 is the tri-diagonal elimination (below diagonal):
// X(i) = Z(i)*(Y(i) - X(i-1)), a true recurrence on X.
func LFK5() *Kernel {
	const n = 1001
	k := &Kernel{
		ID:   5,
		Name: "tri-diagonal elimination (excluded: recurrence)",
		Source: `
PROGRAM LFK5
REAL X(2048), Y(2048), Z(2048)
INTEGER N, I
DO I = 2, N
  X(I) = Z(I)*(Y(I) - X(I-1))
ENDDO
END
`,
		N:        n,
		Elements: n - 1,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Arrays: map[string][]float64{
			"X": scale(fill(20, 2048), 0.1),
			"Y": scale(fill(21, 2048), 0.1),
			"Z": scale(fill(22, 2048), 0.1),
		},
		Outputs: []string{"X"},
		Paper: PaperRow{
			// Not in the paper's tables; MA counts recorded for the
			// record: 1 add, 1 multiply, 3 loads (X reuse impossible
			// serially), 1 store.
			MA: core.Workload{FA: 1, FM: 1, Loads: 2, Stores: 1},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		x := append([]float64(nil), k.Arrays["X"]...)
		y, z := k.Arrays["Y"], k.Arrays["Z"]
		for i := 2; i <= n; i++ {
			x[i-1] = z[i-1] * (y[i-1] - x[i-2])
		}
		return map[string][]float64{"X": x}
	}
	return k
}

// LFK11 is the first sum: X(k) = X(k-1) + Y(k), a prefix-sum recurrence.
func LFK11() *Kernel {
	const n = 1001
	k := &Kernel{
		ID:   11,
		Name: "first sum (excluded: recurrence)",
		Source: `
PROGRAM LFK11
REAL X(2048), Y(2048)
INTEGER N, K
X(1) = Y(1)
DO K = 2, N
  X(K) = X(K-1) + Y(K)
ENDDO
END
`,
		N:        n,
		Elements: n - 1,
		Entries:  1,
		Ints:     map[string]int64{"N": n},
		Arrays: map[string][]float64{
			"Y": scale(fill(23, 2048), 0.01),
		},
		Outputs: []string{"X"},
		Paper: PaperRow{
			MA: core.Workload{FA: 1, FM: 0, Loads: 1, Stores: 1},
		},
	}
	k.Reference = func(k *Kernel) map[string][]float64 {
		y := k.Arrays["Y"]
		x := make([]float64, 2048)
		x[0] = y[0]
		for i := 2; i <= n; i++ {
			x[i-1] = x[i-2] + y[i-1]
		}
		return map[string][]float64{"X": x}
	}
	return k
}
