package lfk

import (
	"testing"

	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/core"
	"macs/internal/ftn"
	"macs/internal/vectorize"
	"macs/internal/vm"
)

func TestAllKernelsListed(t *testing.T) {
	ks := All()
	if len(ks) != 10 {
		t.Fatalf("got %d kernels, want 10", len(ks))
	}
	wantIDs := []int{1, 2, 3, 4, 6, 7, 8, 9, 10, 12}
	for i, k := range ks {
		if k.ID != wantIDs[i] {
			t.Errorf("kernel %d has ID %d, want %d", i, k.ID, wantIDs[i])
		}
		if k.Elements <= 0 {
			t.Errorf("lfk%d: Elements = %d", k.ID, k.Elements)
		}
		if k.Paper.MA.Flops() == 0 {
			t.Errorf("lfk%d: missing paper MA workload", k.ID)
		}
	}
	if _, err := ByID(5); err == nil {
		t.Error("ByID(5) should fail (not in the case study)")
	}
	if k, err := ByID(8); err != nil || k.ID != 8 {
		t.Errorf("ByID(8) = %v, %v", k, err)
	}
}

// TestMAWorkloadsMatchPaper checks the MA analyzer against the paper's
// Table 2/3 counts for every kernel.
func TestMAWorkloadsMatchPaper(t *testing.T) {
	for _, k := range All() {
		w, err := compiler.MAWorkload(k.Source)
		if err != nil {
			t.Errorf("lfk%d: %v", k.ID, err)
			continue
		}
		if w != k.Paper.MA {
			t.Errorf("lfk%d: MA workload = %+v, want %+v", k.ID, w, k.Paper.MA)
		}
	}
}

// TestKernelsCompileAndVectorize checks that every kernel compiles and
// its inner loop is vectorized.
func TestKernelsCompileAndVectorize(t *testing.T) {
	for _, k := range All() {
		c, err := Compile(k, compiler.DefaultOptions())
		if err != nil {
			t.Errorf("lfk%d: %v", k.ID, err)
			continue
		}
		if _, ok := asm.InnerVectorLoop(c.Program); !ok {
			t.Errorf("lfk%d: no vectorized inner loop", k.ID)
		}
	}
}

// TestKernelsFunctionalCorrectness runs every kernel on the simulator and
// validates every output against the Go reference.
func TestKernelsFunctionalCorrectness(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			c, err := Compile(k, compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			_, cpu, err := c.Run(vm.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(cpu); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScalarCompilationCorrectness validates the ForceScalar baseline too
// (every kernel must compute identical results without the VP).
func TestScalarCompilationCorrectness(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			opts := compiler.DefaultOptions()
			opts.ForceScalar = true
			c, err := Compile(k, opts)
			if err != nil {
				t.Fatal(err)
			}
			st, cpu, err := c.Run(vm.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if st.VectorInstrs != 0 {
				t.Errorf("scalar build used %d vector instrs", st.VectorInstrs)
			}
			if err := c.Validate(cpu); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMeasuredAboveMACSBound checks the core shape result: for every
// kernel, measured CPL >= t_MACS >= t_MAC >= t_MA.
func TestMeasuredAboveMACSBound(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			c, err := Compile(k, compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			loop, ok := asm.InnerVectorLoop(c.Program)
			if !ok {
				t.Fatal("no vector loop")
			}
			a := core.Analyze(k.Paper.MA, loop.Body, 128, core.DefaultRules())
			st, _, err := c.Run(vm.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			measured := k.CPL(st.Cycles)
			if a.TMA > a.TMAC+1e-9 {
				t.Errorf("t_MA (%.3f) > t_MAC (%.3f)", a.TMA, a.TMAC)
			}
			if a.TMAC > a.MACS.CPL+1e-9 {
				t.Errorf("t_MAC (%.3f) > t_MACS (%.3f)", a.TMAC, a.MACS.CPL)
			}
			if measured < a.MACS.CPL-1e-9 {
				t.Errorf("measured CPL %.3f below t_MACS %.3f", measured, a.MACS.CPL)
			}
			t.Logf("lfk%d: MA=%.3f MAC=%.3f MACS=%.3f measured=%.3f (paper CPF x flops: MA=%.3f MACS=%.3f tp=%.3f)",
				k.ID, a.TMA, a.TMAC, a.MACS.CPL, measured,
				k.Paper.TMA*float64(k.Paper.MA.Flops()),
				k.Paper.TMACS*float64(k.Paper.MA.Flops()),
				k.Paper.TP*float64(k.Paper.MA.Flops()))
		})
	}
}

// TestMACWorkloadShape: the compiled MAC workload must dominate the MA
// workload (the compiler only adds operations).
func TestMACWorkloadShape(t *testing.T) {
	for _, k := range All() {
		c, err := Compile(k, compiler.DefaultOptions())
		if err != nil {
			t.Errorf("lfk%d: %v", k.ID, err)
			continue
		}
		loop, _ := asm.InnerVectorLoop(c.Program)
		mac := core.WorkloadFromAssembly(loop.Body)
		ma := k.Paper.MA
		if mac.Loads < ma.Loads || mac.Stores < ma.Stores || mac.FA < ma.FA || mac.FM < ma.FM {
			t.Errorf("lfk%d: MAC %+v does not dominate MA %+v", k.ID, mac, ma)
		}
		t.Logf("lfk%d: MAC=%+v MA=%+v", k.ID, mac, ma)
	}
}

// TestInnerLoopsVectorizable double-checks the vectorizer accepts the
// inner loop of every kernel directly.
func TestInnerLoopsVectorizable(t *testing.T) {
	for _, k := range All() {
		p, err := ftn.Parse(k.Source)
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		loop, ok := compiler.InnerLoop(p)
		if !ok {
			t.Fatalf("lfk%d: no loop", k.ID)
		}
		if _, err := vectorize.Vectorize(p, loop); err != nil {
			t.Errorf("lfk%d: %v", k.ID, err)
		}
	}
}

func TestCPLCPFConversions(t *testing.T) {
	k := LFK1()
	// 1001 iterations, 5 flops each.
	if got := k.CPL(1001 * 4); got != 4 {
		t.Errorf("CPL = %v, want 4", got)
	}
	if got := k.CPF(1001 * 5); got != 1 {
		t.Errorf("CPF = %v, want 1", got)
	}
	if k.FlopsPerIteration() != 5 {
		t.Errorf("flops = %d, want 5", k.FlopsPerIteration())
	}
}

func TestLFK2ElementCount(t *testing.T) {
	k := LFK2()
	// Halving cascade from 101: 50+25+12+6+3 elements until II <= 1.
	if k.Elements != 96 && k.Elements != 97 {
		t.Errorf("LFK2 elements = %d, want 96..97 (halving cascade)", k.Elements)
	}
}

func TestDeterministicInputs(t *testing.T) {
	a, b := LFK1(), LFK1()
	for i := range a.Arrays["Y"] {
		if a.Arrays["Y"][i] != b.Arrays["Y"][i] {
			t.Fatal("inputs are not deterministic")
		}
	}
	if gen(1, 5) != gen(1, 5) {
		t.Error("gen not deterministic")
	}
	lo, hi := 2.0, 0.0
	for i := 0; i < 1000; i++ {
		v := gen(3, i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 0.5 || hi >= 1.5 {
		t.Errorf("gen range [%v, %v], want within [0.5, 1.5)", lo, hi)
	}
}

// TestInterpreterMatchesReferences is the three-way agreement check: the
// AST interpreter, the hand-written Go references, and (via the other
// tests) the compiled-and-simulated execution all compute the same
// results for every kernel.
func TestInterpreterMatchesReferences(t *testing.T) {
	for _, k := range append(All(), Excluded()...) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			p, err := ftn.Parse(k.Source)
			if err != nil {
				t.Fatal(err)
			}
			env := ftn.NewEnv(p)
			for name, v := range k.Ints {
				env.Ints[name] = v
			}
			for name, v := range k.Reals {
				env.Reals[name][0] = v
			}
			for name, vals := range k.Arrays {
				copy(env.Reals[name], vals)
			}
			if err := ftn.Interpret(p, env); err != nil {
				t.Fatal(err)
			}
			want := k.Reference(k)
			for _, name := range k.Outputs {
				expect := want[name]
				got := env.Reals[name]
				for i, w := range expect {
					if !ftn.CloseEnough(got[i], w) {
						t.Fatalf("%s(%d): interpreter %v, reference %v", name, i+1, got[i], w)
					}
				}
			}
		})
	}
}
