package fasttier

import (
	"errors"
	"fmt"
	"math"

	"macs/internal/asm"
	"macs/internal/core"
	"macs/internal/isa"
	"macs/internal/mem"
)

// vwriter records the in-flight producer of a vector register for the
// chaining and completion constraints (the simulator's record, verbatim).
type vwriter struct {
	valid bool
	chime int64
	start int64
	y     int
	z     float64
	fin   int64
}

// replay is one schedule replayer. It carries the simulator's *timing*
// state — chime formation, pipe tailgates, producer records, port times,
// attribution frontiers — plus a symbolic integer machine (registers and
// memory cells with known bits) that resolves trip counts and addresses
// without a memory image. There is deliberately no floating-point value
// state and no per-element work anywhere in this file.
type replay struct {
	cfg    Config
	prog   *asm.Program
	layout *mem.Layout

	// Symbolic integer state. Registers start zero and known, exactly as
	// the simulator zero-initializes them; a value becomes unknown only
	// when floating-point data flows in (float loads, float arithmetic).
	a       [isa.NumARegs]int64
	aKnown  [isa.NumARegs]bool
	s       [isa.NumSRegs]int64
	sKnown  [isa.NumSRegs]bool
	vl      int
	vlKnown bool
	vs      int64
	vsKnown bool
	tf      bool
	tfKnown bool
	pc      int

	// cells holds integer memory words (trip counts, loop bookkeeping);
	// unknownCells marks words holding floating-point or otherwise
	// unmodeled data. A word in neither map reads as zero, matching the
	// simulator's zeroed memory image.
	cells        map[int64]int64
	unknownCells map[int64]bool

	// Timing state, mirroring vm.CPU field for field.
	clock          int64
	pipeFree       [4]int64
	pipeUsed       [4]bool
	vw             [isa.NumVRegs]vwriter
	sReady         [isa.NumSRegs]int64
	vectorPortFree int64
	scalarPortFree int64
	builder        *core.ChimeBuilder
	chimeID        int64
	chimeStart     int64
	chimeMemStall  int64
	chimeVL        int
	lastChimeStart int64
	prevGate       int64
	prevGateSplit  bool
	maxEvent       int64
	laneTime       [NumLanes]int64

	bankCfg  mem.Config
	stallTab *mem.StallTable

	// Interval (path-enumeration) mode. When forking is true, a branch on
	// an unmodeled comparison consumes the next scripted outcome from
	// decisions instead of failing with ErrDataDependent; when the script
	// is exhausted the replay stops with errNeedDecision so the
	// enumerator can extend the script both ways and try again.
	forking     bool
	decisions   []bool
	decisionIdx int

	halted   bool
	finished bool
	pred     Prediction
}

// errNeedDecision reports that a forking replay reached a branch on an
// unmodeled comparison with no scripted outcome left. It never escapes
// the package: predictInterval catches it and deepens the script.
var errNeedDecision = errors.New("fasttier: undecided data-dependent branch")

func newReplay(cfg Config) *replay {
	r := &replay{
		cfg:          cfg,
		layout:       mem.NewLayout(),
		cells:        make(map[int64]int64),
		unknownCells: make(map[int64]bool),
		builder:      core.NewChimeBuilder(cfg.Rules),
	}
	r.bankCfg = cfg.bankConfig()
	if cfg.BankConflicts || cfg.RefreshStalls {
		r.stallTab = mem.NewStallTable(r.bankCfg)
	}
	return r
}

// bankConfig renders the fast tier's memory geometry as the bank model's
// configuration, with zero fields falling back to the C-240 defaults —
// the same convention as vm.Machine.BankConfig, so both tiers describe
// the same memory system for the same machine.
func (cfg Config) bankConfig() mem.Config {
	c := mem.DefaultConfig()
	if cfg.Banks > 0 {
		c.Banks = cfg.Banks
	}
	if cfg.BankCycle > 0 {
		c.BankCycle = cfg.BankCycle
	}
	if cfg.RefreshPeriod > 0 {
		c.RefreshPeriod = cfg.RefreshPeriod
	}
	if cfg.RefreshLen > 0 {
		c.RefreshLen = cfg.RefreshLen
	}
	c.RefreshEnabled = cfg.RefreshStalls
	return c
}

// reset prepares the replayer for the next prediction. The memoized
// stream-stall table survives — its answers depend only on configuration,
// and keeping it warm across pooled predictions is much of the tier's
// speed.
func (r *replay) reset() {
	r.prog = nil
	r.layout.Reset()
	clear(r.cells)
	clear(r.unknownCells)
	r.a = [isa.NumARegs]int64{}
	r.s = [isa.NumSRegs]int64{}
	for i := range r.aKnown {
		r.aKnown[i] = true
	}
	for i := range r.sKnown {
		r.sKnown[i] = true
	}
	r.vl, r.vlKnown = r.cfg.VLMax, true
	r.vs, r.vsKnown = isa.WordBytes, true
	r.tf, r.tfKnown = false, true
	r.pc = 0

	r.clock = 0
	r.pipeFree = [4]int64{}
	r.pipeUsed = [4]bool{}
	r.vw = [isa.NumVRegs]vwriter{}
	r.sReady = [isa.NumSRegs]int64{}
	r.vectorPortFree = 0
	r.scalarPortFree = 0
	r.builder.Reset()
	r.chimeID = 0
	r.chimeStart = 0
	r.chimeMemStall = 0
	r.chimeVL = 0
	r.lastChimeStart = 0
	r.prevGate = 0
	r.prevGateSplit = false
	r.maxEvent = 0
	r.laneTime = [NumLanes]int64{}

	r.forking = false
	r.decisions = nil
	r.decisionIdx = 0

	r.halted = false
	r.finished = false
	r.pred = Prediction{}
}

// predict replays one program. See Predictor.Predict for the contract.
func (r *replay) predict(prog *asm.Program, iterations int64, ints map[string]int64) (Prediction, error) {
	return r.run(prog, iterations, ints, nil, false)
}

// run replays one program, optionally under a branch-decision script
// (forking mode). See predict and predictInterval.
func (r *replay) run(prog *asm.Program, iterations int64, ints map[string]int64, decisions []bool, forking bool) (Prediction, error) {
	r.reset()
	r.forking = forking
	r.decisions = decisions
	if err := prog.Validate(); err != nil {
		return Prediction{}, err
	}
	r.prog = prog
	for _, d := range prog.Data {
		addr, err := r.layout.Place(d.Name, d.Size)
		if err != nil {
			return Prediction{}, err
		}
		// Initialized data is floating point: its words are real values
		// the fast tier does not carry.
		for i := range d.Init {
			r.unknownCells[addr+int64(i*8)] = true
		}
	}
	for name, v := range ints {
		addr, ok := r.layout.Addr(name)
		if !ok {
			return Prediction{}, fmt.Errorf("fasttier: priming unknown symbol %q", name)
		}
		r.cells[addr] = v
		delete(r.unknownCells, addr)
	}
	if idx, ok := prog.Labels["main"]; ok {
		r.pc = idx
	}
	for {
		done, err := r.step()
		if err != nil {
			return Prediction{}, err
		}
		if done {
			break
		}
	}
	pred := r.pred
	finishPrediction(&pred, prog, r.cfg.Rules, iterations)
	return pred, nil
}

func (r *replay) step() (bool, error) {
	if r.halted || r.pc < 0 || r.pc >= len(r.prog.Instrs) {
		r.finish()
		return true, nil
	}
	in := r.prog.Instrs[r.pc]
	r.pred.Instrs++
	if r.pred.Instrs > r.cfg.MaxInstrs {
		return true, fmt.Errorf("fasttier: replay limit exceeded at pc=%d (%s)", r.pc, in)
	}
	var jumped bool
	var err error
	if in.IsVector() {
		r.pred.VectorInstrs++
		err = r.execVector(in)
	} else {
		r.pred.ScalarInstrs++
		if in.Op == isa.OpHalt {
			r.halted = true
			r.finish()
			return true, nil
		}
		jumped, err = r.execScalar(in)
	}
	if err != nil {
		return true, fmt.Errorf("fasttier: pc=%d (%s): %w", r.pc, in, err)
	}
	if !jumped {
		r.pc++
	}
	if r.pc < 0 || r.pc >= len(r.prog.Instrs) {
		r.halted = true
		r.finish()
		return true, nil
	}
	return false, nil
}

func (r *replay) finish() {
	if r.finished {
		return
	}
	r.finished = true
	r.closeChime(false)
	r.pred.Cycles = maxI64(r.clock, r.maxEvent, r.prevGate)
	// Conservation: top every lane's ledger up to the final cycle count,
	// mirroring the simulator's drain accounting.
	for lane := 0; lane < NumLanes; lane++ {
		r.chargeStall(lane, r.pred.Cycles, CauseDrain)
	}
}

// Attribution frontiers, verbatim from the simulator's ledger mechanics.

func (r *replay) chargeStall(lane int, t int64, cause Cause) {
	if t > r.laneTime[lane] {
		r.pred.Attr.Lanes[lane].Stalls[cause] += t - r.laneTime[lane]
		r.laneTime[lane] = t
	}
}

func (r *replay) chargeIssue(lane int, t int64) {
	if t > r.laneTime[lane] {
		r.pred.Attr.Lanes[lane].Issue += t - r.laneTime[lane]
		r.laneTime[lane] = t
	}
}

func (r *replay) tickASU(n int64) {
	r.clock += n
	r.chargeIssue(LaneASU, r.clock)
}

// waitScalar delays the ASU until a vector-produced scalar is available.
func (r *replay) waitScalar(reg isa.Reg) {
	if reg.Class == isa.ClassS && r.sReady[reg.N] > r.clock {
		r.clock = r.sReady[reg.N]
		r.chargeStall(LaneASU, r.clock, CauseChain)
	}
}

// closeChime retires the forming chime, fixing the gate before which the
// next chime may not stream and bounding ASU runahead to one chime.
func (r *replay) closeChime(split bool) {
	cur, ok := r.builder.Flush()
	if !ok {
		r.chimeMemStall = 0
		return
	}
	r.pred.Chimes++
	cost := cur.ZMax * float64(r.chimeVL)
	if r.cfg.Rules.Bubbles {
		cost += float64(cur.SumB)
	}
	r.prevGate = r.chimeStart + int64(math.Ceil(cost)) + r.chimeMemStall
	r.prevGateSplit = split
	if r.prevGate > r.maxEvent {
		r.maxEvent = r.prevGate
	}
	r.lastChimeStart = r.chimeStart
	if r.clock < r.lastChimeStart {
		r.clock = r.lastChimeStart
		cause := CauseChimeSync
		if split {
			cause = CauseChimeSplit
		}
		r.chargeStall(LaneASU, r.clock, cause)
	}
	r.chimeID++
	r.chimeMemStall = 0
	r.chimeVL = 0
}

// effAddr resolves a memory operand. known is false when the base
// register's value carries unmodeled data.
func (r *replay) effAddr(o isa.Operand) (addr int64, known bool, err error) {
	addr = o.Disp
	known = true
	if o.Sym != "" {
		base, ok := r.layout.Addr(o.Sym)
		if !ok {
			return 0, false, fmt.Errorf("undefined symbol %q", o.Sym)
		}
		addr += base
	}
	if o.Base.Class == isa.ClassA {
		addr += r.a[o.Base.N]
		known = known && r.aKnown[o.Base.N]
	}
	return addr, known, nil
}

// cellVal reads one integer memory word: primed or stored words return
// their value, unmarked words read zero (the simulator's zeroed image),
// and words holding floating-point data are unknown.
func (r *replay) cellVal(addr int64) (int64, bool) {
	if r.unknownCells[addr] {
		return 0, false
	}
	return r.cells[addr], true
}

func (r *replay) setCell(addr, v int64, known bool) {
	if known {
		r.cells[addr] = v
		delete(r.unknownCells, addr)
		return
	}
	delete(r.cells, addr)
	r.unknownCells[addr] = true
}

// intVal reads an operand as an integer plus its known bit.
func (r *replay) intVal(o isa.Operand) (v int64, known bool, err error) {
	switch o.Kind {
	case isa.KindImm:
		return o.Imm, true, nil
	case isa.KindReg:
		switch o.Reg.Class {
		case isa.ClassA:
			return r.a[o.Reg.N], r.aKnown[o.Reg.N], nil
		case isa.ClassS:
			r.waitScalar(o.Reg)
			return r.s[o.Reg.N], r.sKnown[o.Reg.N], nil
		case isa.ClassVL:
			return int64(r.vl), r.vlKnown, nil
		case isa.ClassVS:
			return r.vs, r.vsKnown, nil
		}
	}
	return 0, false, fmt.Errorf("operand %s is not an integer source", o)
}

func (r *replay) setIntReg(reg isa.Reg, v int64, known bool) error {
	switch reg.Class {
	case isa.ClassA:
		r.a[reg.N] = v
		r.aKnown[reg.N] = known
	case isa.ClassS:
		r.s[reg.N] = v
		r.sKnown[reg.N] = known
	case isa.ClassVL:
		if !known {
			return fmt.Errorf("vector length set from unmodeled data: %w", ErrDataDependent)
		}
		r.vl = int(clampI64(v, 0, int64(r.cfg.VLMax)))
		r.vlKnown = true
	case isa.ClassVS:
		if !known {
			return fmt.Errorf("vector stride set from unmodeled data: %w", ErrDataDependent)
		}
		r.vs = v
		r.vsKnown = true
	default:
		return fmt.Errorf("cannot write integer to %s", reg)
	}
	return nil
}

// execScalar replays one ASU instruction: exact latency accounting, with
// integer effects tracked symbolically and float effects dropped.
func (r *replay) execScalar(in isa.Instr) (jumped bool, err error) {
	switch in.Op {
	case isa.OpNop:
		r.tickASU(int64(r.cfg.ScalarOpLat))
		return false, nil
	case isa.OpMov:
		if len(in.Ops) != 2 {
			return false, fmt.Errorf("mov needs 2 operands")
		}
		r.tickASU(int64(r.cfg.ScalarOpLat))
		dst := in.Ops[1].Reg
		if in.Suffix == isa.SufD && dst.Class == isa.ClassS && in.Ops[0].Kind == isa.KindReg && in.Ops[0].Reg.Class == isa.ClassS {
			src := in.Ops[0].Reg
			r.waitScalar(src)
			r.s[dst.N], r.sKnown[dst.N] = r.s[src.N], r.sKnown[src.N]
			return false, nil
		}
		v, known, err := r.intVal(in.Ops[0])
		if err != nil {
			return false, err
		}
		return false, r.setIntReg(dst, v, known)
	case isa.OpLd:
		return false, r.scalarLoad(in)
	case isa.OpSt:
		return false, r.scalarStore(in)
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpNeg, isa.OpAnd, isa.OpOr, isa.OpShf:
		return false, r.scalarALU(in)
	case isa.OpLe, isa.OpLt, isa.OpGt, isa.OpGe, isa.OpEq, isa.OpNe:
		return false, r.scalarCompare(in)
	case isa.OpJmp:
		r.tickASU(int64(r.cfg.ScalarOpLat + r.cfg.BranchPenalty))
		r.closeChime(false)
		return true, r.jumpTo(in)
	case isa.OpJbrs:
		r.tickASU(int64(r.cfg.ScalarOpLat))
		if !r.tfKnown {
			if !r.forking {
				return false, fmt.Errorf("branch on unmodeled comparison: %w", ErrDataDependent)
			}
			if r.decisionIdx >= len(r.decisions) {
				return false, errNeedDecision
			}
			// Adopt the scripted outcome as the T value so later branches
			// on the same (unrewritten) flag stay path-consistent.
			r.tf, r.tfKnown = r.decisions[r.decisionIdx], true
			r.decisionIdx++
		}
		take := r.tf
		if in.Suffix == isa.SufF {
			take = !take
		}
		if !take {
			return false, nil
		}
		r.tickASU(int64(r.cfg.BranchPenalty))
		r.closeChime(false)
		return true, r.jumpTo(in)
	case isa.OpSum, isa.OpSqrt, isa.OpCvt:
		return false, fmt.Errorf("%s has no scalar form in this subset", in.Op)
	}
	return false, fmt.Errorf("unreplayed scalar op %s", in.Op)
}

func (r *replay) jumpTo(in isa.Instr) error {
	for _, o := range in.Ops {
		if o.Kind == isa.KindLabel {
			idx, ok := r.prog.Labels[o.Label]
			if !ok {
				return fmt.Errorf("undefined label %q", o.Label)
			}
			r.pc = idx
			return nil
		}
	}
	return fmt.Errorf("branch without label")
}

// scalarMemStart delays a scalar access while vector traffic holds the
// single CPU port, and notifies the chime builder (split rule).
func (r *replay) scalarMemStart() int64 {
	start := r.clock
	if r.vectorPortFree > start {
		start = r.vectorPortFree
		r.pred.PortConflicts++
		r.chargeStall(LaneASU, start, CausePortArb)
	}
	if r.builder.NoteScalarMem() {
		r.closeChime(true)
	}
	return start
}

func (r *replay) scalarMemLat() int64 {
	lat := float64(r.cfg.ScalarLoadLat)
	if r.cfg.MemSlowdown > 1 {
		lat *= r.cfg.MemSlowdown
	}
	return int64(math.Ceil(lat))
}

func (r *replay) scalarLoad(in isa.Instr) error {
	if len(in.Ops) != 2 {
		return fmt.Errorf("scalar load needs 2 operands")
	}
	addr, addrKnown, err := r.effAddr(in.Ops[0])
	if err != nil {
		return err
	}
	start := r.scalarMemStart()
	r.clock = start + r.scalarMemLat()
	r.chargeIssue(LaneASU, r.clock)
	r.scalarPortFree = r.clock
	var v int64
	known := false
	// A floating-point load produces a real value the fast tier does not
	// carry; only integer loads read the symbolic cell map.
	if addrKnown && in.Suffix != isa.SufD && in.Suffix != isa.SufS {
		v, known = r.cellVal(addr)
	}
	dst := in.Ops[1].Reg
	switch dst.Class {
	case isa.ClassA:
		r.a[dst.N], r.aKnown[dst.N] = v, known
	case isa.ClassS:
		r.s[dst.N], r.sKnown[dst.N] = v, known
		r.sReady[dst.N] = r.clock
	default:
		return fmt.Errorf("bad scalar load destination %s", dst)
	}
	return nil
}

func (r *replay) scalarStore(in isa.Instr) error {
	if len(in.Ops) != 2 {
		return fmt.Errorf("scalar store needs 2 operands")
	}
	addr, addrKnown, err := r.effAddr(in.Ops[1])
	if err != nil {
		return err
	}
	start := r.scalarMemStart()
	r.clock = start + r.scalarMemLat()
	r.chargeIssue(LaneASU, r.clock)
	r.scalarPortFree = r.clock
	if !addrKnown {
		// A store to an unresolvable address could alias any integer
		// cell the replay later reads; refuse rather than guess.
		return fmt.Errorf("store to unmodeled address: %w", ErrDataDependent)
	}
	src := in.Ops[0].Reg
	// A floating-point store poisons the cell for integer readers: the
	// simulator writes real bits there, which the fast tier does not carry.
	floatStore := in.Suffix == isa.SufD || in.Suffix == isa.SufS
	switch src.Class {
	case isa.ClassA:
		r.setCell(addr, r.a[src.N], r.aKnown[src.N] && !floatStore)
		return nil
	case isa.ClassS:
		r.waitScalar(src)
		r.setCell(addr, r.s[src.N], r.sKnown[src.N] && !floatStore)
		return nil
	}
	return fmt.Errorf("bad scalar store source %s", src)
}

func (r *replay) scalarALU(in isa.Instr) error {
	r.tickASU(int64(r.cfg.ScalarOpLat))
	var dst isa.Reg
	switch len(in.Ops) {
	case 2:
		dst = in.Ops[1].Reg
	case 3:
		dst = in.Ops[2].Reg
	default:
		return fmt.Errorf("ALU op needs 2 or 3 operands")
	}
	if in.Suffix == isa.SufD || in.Suffix == isa.SufS {
		// Floating-point result: honor the timing side effects (waits on
		// vector-produced scalars) and mark the destination unmodeled.
		for _, o := range in.Ops[:len(in.Ops)-1] {
			if o.Kind == isa.KindReg && o.Reg.Class == isa.ClassS {
				r.waitScalar(o.Reg)
			}
		}
		if len(in.Ops) == 2 && in.Op != isa.OpNeg {
			r.waitScalar(dst) // two-operand form reads the destination
		}
		if dst.Class != isa.ClassS {
			return fmt.Errorf("cannot write float to %s", dst)
		}
		r.s[dst.N], r.sKnown[dst.N] = 0, false
		return nil
	}
	var x, y int64
	var xk, yk bool
	var err error
	if len(in.Ops) == 2 {
		if in.Op == isa.OpNeg {
			x, xk, err = r.intVal(in.Ops[0])
			if err != nil {
				return err
			}
			return r.setIntReg(dst, -x, xk)
		}
		x, xk, err = r.intVal(isa.RegOp(dst))
		if err != nil {
			return err
		}
		y, yk, err = r.intVal(in.Ops[0])
		if err != nil {
			return err
		}
	} else {
		x, xk, err = r.intVal(in.Ops[0])
		if err != nil {
			return err
		}
		y, yk, err = r.intVal(in.Ops[1])
		if err != nil {
			return err
		}
	}
	if !xk || !yk {
		return r.setIntReg(dst, 0, false)
	}
	v, err := intALU(in.Op, x, y)
	if err != nil {
		return err
	}
	return r.setIntReg(dst, v, true)
}

func intALU(op isa.Op, x, y int64) (int64, error) {
	switch op {
	case isa.OpAdd:
		return x + y, nil
	case isa.OpSub:
		return x - y, nil
	case isa.OpMul:
		return x * y, nil
	case isa.OpDiv:
		if y == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return x / y, nil
	case isa.OpAnd:
		return x & y, nil
	case isa.OpOr:
		return x | y, nil
	case isa.OpShf:
		if y >= 0 {
			return x << uint(y&63), nil
		}
		return x >> uint((-y)&63), nil
	}
	return 0, fmt.Errorf("no integer form for %s", op)
}

func (r *replay) scalarCompare(in isa.Instr) error {
	if len(in.Ops) != 2 {
		return fmt.Errorf("compare needs 2 operands")
	}
	r.tickASU(int64(r.cfg.ScalarOpLat))
	if in.Suffix == isa.SufD || in.Suffix == isa.SufS {
		for _, o := range in.Ops {
			if o.Kind == isa.KindReg && o.Reg.Class == isa.ClassS {
				r.waitScalar(o.Reg)
			}
		}
		r.tfKnown = false
		return nil
	}
	x, xk, err := r.intVal(in.Ops[0])
	if err != nil {
		return err
	}
	y, yk, err := r.intVal(in.Ops[1])
	if err != nil {
		return err
	}
	if !xk || !yk {
		r.tfKnown = false
		return nil
	}
	var cmp int
	switch {
	case x < y:
		cmp = -1
	case x > y:
		cmp = 1
	}
	switch in.Op {
	case isa.OpLe:
		r.tf = cmp <= 0
	case isa.OpLt:
		r.tf = cmp < 0
	case isa.OpGt:
		r.tf = cmp > 0
	case isa.OpGe:
		r.tf = cmp >= 0
	case isa.OpEq:
		r.tf = cmp == 0
	case isa.OpNe:
		r.tf = cmp != 0
	}
	r.tfKnown = true
	return nil
}

// execVector replays one vector instruction's stream timing under the
// chime model — the simulator's execVector minus every element.
func (r *replay) execVector(in isa.Instr) error {
	t, ok := isa.VectorTiming(in.Op)
	if !ok {
		return fmt.Errorf("no vector form for %s", in.Op)
	}
	for _, reg := range in.Sources() {
		if reg.Class == isa.ClassS {
			r.waitScalar(reg)
		}
	}
	r.clock += int64(r.cfg.DispatchLat)
	r.chargeIssue(LaneASU, r.clock)
	dispatchDone := r.clock

	if !r.vlKnown {
		return fmt.Errorf("vector length unknown: %w", ErrDataDependent)
	}
	vl := r.vl
	if vl <= 0 {
		r.clock += int64(t.X)
		r.chargeStall(LaneASU, r.clock, CauseStartup)
		return nil
	}

	if !r.builder.Fits(in) {
		r.closeChime(false)
	}
	newChime := r.builder.Empty()
	r.builder.Add(in)
	if vl > r.chimeVL {
		r.chimeVL = vl
	}

	// Stream entry time S with chronological attribution checkpoints,
	// exactly as the simulator computes it.
	type waitPoint struct {
		t     int64
		cause Cause
	}
	var wbuf [6]waitPoint
	waits := wbuf[:0]

	s := dispatchDone + int64(t.X)
	waits = append(waits,
		waitPoint{dispatchDone, CauseScalar},
		waitPoint{s, CauseStartup})
	pipe := in.Pipe()
	lane := int(pipe)
	pf := r.pipeFree[pipe]
	if r.cfg.Rules.Bubbles && r.pipeUsed[pipe] {
		pf += int64(t.B)
		waits = append(waits, waitPoint{pf, CauseBubble})
	}
	if pf > s {
		s = pf
	}
	r.pipeUsed[pipe] = true
	gateCause := CauseChimeSync
	if r.prevGateSplit {
		gateCause = CauseChimeSplit
	}
	if newChime {
		waits = append(waits, waitPoint{r.prevGate, gateCause})
		if r.prevGate > s {
			s = r.prevGate
		}
	} else {
		waits = append(waits, waitPoint{r.chimeStart, CauseChimeSync})
		if r.chimeStart > s {
			s = r.chimeStart
		}
	}

	var chainT int64
	for _, reg := range in.VectorReads() {
		w := r.vw[reg.N]
		if !w.valid {
			continue
		}
		if w.chime == r.chimeID && r.cfg.Rules.Chaining {
			dep := w.start + int64(w.y)
			if w.z > t.Z {
				dep += int64(math.Ceil((w.z - t.Z) * float64(vl-1)))
			}
			if dep > chainT {
				chainT = dep
			}
			if dep > s {
				s = dep
			}
		} else if w.fin > s {
			chainT = w.fin
			s = w.fin
		}
	}
	if chainT > 0 {
		waits = append(waits, waitPoint{chainT, CauseChain})
	}

	var stBank, stRefresh, stContention int64
	if in.IsMemory() {
		ea, err := r.vectorEA(in)
		if err != nil {
			return err
		}
		if r.scalarPortFree > s {
			r.pred.PortConflicts++
		}
		waits = append(waits, waitPoint{r.scalarPortFree, CausePortArb})
		if r.scalarPortFree > s {
			s = r.scalarPortFree
		}
		stBank, stRefresh, stContention, err = r.memStreamStall(s, ea, vl)
		if err != nil {
			return err
		}
		r.chimeMemStall += stBank + stRefresh + stContention
		r.pred.MemStalls += stBank + stRefresh + stContention
	}
	stall := stBank + stRefresh + stContention

	for i := 1; i < len(waits); i++ {
		for j := i; j > 0 && waits[j].t < waits[j-1].t; j-- {
			waits[j], waits[j-1] = waits[j-1], waits[j]
		}
	}
	for _, w := range waits {
		wt := w.t
		if wt > s {
			wt = s
		}
		r.chargeStall(lane, wt, w.cause)
	}

	if newChime {
		r.chimeStart = s
	}

	streamIn := int64(math.Ceil(t.Z * float64(vl)))
	streamEnd := s + streamIn
	r.chargeIssue(lane, streamEnd)
	r.chargeStall(lane, streamEnd+stBank, CauseBankConflict)
	r.chargeStall(lane, streamEnd+stBank+stRefresh, CauseRefresh)
	r.chargeStall(lane, streamEnd+stall, CauseContention)
	r.pipeFree[pipe] = s + streamIn + stall
	fin := s + int64(t.Y) + streamIn + stall
	if fin > r.maxEvent {
		r.maxEvent = fin
	}
	if in.IsMemory() && fin > r.vectorPortFree {
		r.vectorPortFree = fin
	}
	if d, ok := in.VectorWrite(); ok {
		r.vw[d.N] = vwriter{valid: true, chime: r.chimeID, start: s, y: t.Y, z: t.Z, fin: fin}
	}
	if in.Op == isa.OpSum {
		if d, ok := in.Dst(); ok && d.Class == isa.ClassS {
			r.sReady[d.N] = fin
			r.s[d.N], r.sKnown[d.N] = 0, false
		}
	}
	return nil
}

// vectorEA resolves the memory operand of a vector load or store; the
// fast tier needs the exact address for bank-phase math.
func (r *replay) vectorEA(in isa.Instr) (int64, error) {
	for _, o := range in.Ops {
		if o.Kind == isa.KindMem {
			addr, known, err := r.effAddr(o)
			if err != nil {
				return 0, err
			}
			if !known {
				return 0, fmt.Errorf("vector stream address unknown: %w", ErrDataDependent)
			}
			return addr, nil
		}
	}
	return 0, fmt.Errorf("vector memory op without memory operand")
}

// memStreamStall prices one vector memory stream: bank and refresh stalls
// from the memoized stall table, plus the multi-process contention
// surcharge. The same decomposition as the simulator's standalone path.
func (r *replay) memStreamStall(start, base int64, vl int) (bank, refresh, contention int64, err error) {
	stride := r.vs
	if !r.vsKnown {
		if r.cfg.BankConflicts {
			return 0, 0, 0, fmt.Errorf("vector stride unknown: %w", ErrDataDependent)
		}
		stride = isa.WordBytes
	}
	if !r.cfg.BankConflicts {
		stride = isa.WordBytes
	}
	if r.stallTab != nil {
		bank, refresh = r.stallTab.StreamStallParts(start, base, stride, vl)
	}
	if r.cfg.MemSlowdown > 1 {
		contention = int64(math.Ceil((r.cfg.MemSlowdown - 1) * float64(vl)))
	}
	return bank, refresh, contention, nil
}

func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxI64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
