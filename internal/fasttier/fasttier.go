// Package fasttier is the instant analytical serving tier: it predicts a
// compiled program's cycle count, CPL and per-lane stall attribution in
// microseconds, without cycle-accurate simulation.
//
// The predictor replays the program's *schedule* — the same chime
// formation, chaining, tailgating, port-arbitration and memory-stall
// equations the simulator applies (internal/vm shares them with the MACS
// bound via core.ChimeBuilder) — but performs no per-element work at all:
// no memory image, no vector register values, no functional execution.
// Vector streams cost one stall-table query (internal/mem memoizes them)
// instead of VL element operations, which is where the orders-of-magnitude
// speedup over simulation comes from. Integer scalar state (trip counts,
// address arithmetic, loop control) is tracked symbolically so strip
// mining and data layout resolve exactly; floating-point values are never
// computed. A program whose control flow depends on floating-point data
// or unprimed inputs is rejected with ErrDataDependent — callers fall back
// to the exact tier.
//
// Predictions carry a small calibrated per-kernel residual correction
// (internal/calib regenerates residuals_gen.go from simulator runs) and a
// stated error band, so callers can serve the fast answer with an honest
// confidence interval and verify asynchronously.
package fasttier

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"macs/internal/asm"
	"macs/internal/core"
	"macs/internal/isa"
)

// ErrDataDependent marks a program the fast tier cannot predict: its
// control flow (or a vector length / stride / address) depends on
// floating-point data or on memory the caller did not prime. The exact
// tier handles such programs.
var ErrDataDependent = errors.New("fasttier: control flow depends on data the fast tier does not model")

// Cause classifies one predicted non-issue cycle of a machine lane. The
// taxonomy maps one-to-one onto the simulator's vm.StallCause constants —
// same names, same order, same strings — so predicted and measured
// attribution are directly comparable. cmd/macsvet verifies the mapping
// statically (rule "tiermap").
//
// macsvet:exhaustive
type Cause int

// The predicted-attribution taxonomy, mirroring vm.Stall* constants.
const (
	CauseStartup Cause = iota
	CauseBubble
	CauseChain
	CauseChimeSync
	CauseChimeSplit
	CauseBankConflict
	CauseRefresh
	CauseContention
	CausePortArb
	CauseScalar
	CauseDrain

	// NumCauses is the size of the taxonomy.
	NumCauses
)

// causeNames must match vm's stallNames entry for entry; macsvet's tiermap
// rule compares the two literals.
var causeNames = [NumCauses]string{
	"startup", "bubble", "chain-wait", "chime-sync", "chime-split",
	"bank-conflict", "refresh", "contention", "port-arb", "scalar", "drain",
}

func (c Cause) String() string {
	if c < 0 || c >= NumCauses {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// Causes lists the taxonomy in declaration order.
func Causes() []Cause {
	out := make([]Cause, NumCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// Attribution lanes: index 0 is the ASU; 1..3 are the VP pipes, sharing
// isa.Pipe numbering (load/store, add, multiply) — the same convention as
// the simulator's ledger.
const (
	LaneASU  = 0
	NumLanes = 4
)

// LaneName returns the display name of a predicted-attribution lane.
func LaneName(lane int) string {
	if lane == LaneASU {
		return "asu"
	}
	return isa.Pipe(lane).String()
}

// LaneLedger is one lane's predicted cycle ledger.
type LaneLedger struct {
	// Issue counts predicted productive cycles (streaming for pipes,
	// scalar execution for the ASU).
	Issue int64
	// Stalls counts predicted non-issue cycles by cause.
	Stalls [NumCauses]int64
}

// Total returns all accounted cycles of the lane.
func (l LaneLedger) Total() int64 {
	t := l.Issue
	for _, v := range l.Stalls {
		t += v
	}
	return t
}

// StallTotal returns the lane's predicted non-issue cycles.
func (l LaneLedger) StallTotal() int64 { return l.Total() - l.Issue }

// Ledger is the full predicted per-lane attribution of one program.
type Ledger struct {
	Lanes [NumLanes]LaneLedger
}

// Cause sums one stall cause across all lanes.
func (a Ledger) Cause(c Cause) int64 {
	var sum int64
	for _, l := range a.Lanes {
		sum += l.Stalls[c]
	}
	return sum
}

// IssueCycles sums predicted issue cycles across all lanes.
func (a Ledger) IssueCycles() int64 {
	var sum int64
	for _, l := range a.Lanes {
		sum += l.Issue
	}
	return sum
}

// Totals returns the lane-summed ledger keyed by cause name, with issue
// cycles under "issue" — the same wire shape as the simulator's
// Attribution.Totals, so the two are directly diffable.
func (a Ledger) Totals() map[string]int64 {
	out := make(map[string]int64, NumCauses+1)
	if v := a.IssueCycles(); v != 0 {
		out["issue"] = v
	}
	for c := Cause(0); c < NumCauses; c++ {
		if v := a.Cause(c); v != 0 {
			out[c.String()] = v
		}
	}
	return out
}

// Conserved verifies the ledger invariant: every lane's issue plus stall
// cycles must equal the predicted cycle count.
func (a Ledger) Conserved(totalCycles int64) error {
	for lane := 0; lane < NumLanes; lane++ {
		if got := a.Lanes[lane].Total(); got != totalCycles {
			return fmt.Errorf("fasttier: ledger not conserved on lane %s: %d accounted, want %d",
				LaneName(lane), got, totalCycles)
		}
	}
	return nil
}

// Config controls the modeled machine. It mirrors the simulator knobs the
// timing model depends on; use DefaultConfig and adjust.
type Config struct {
	// VLMax is the hardware vector length.
	VLMax int
	// Rules are the chime formation rules shared with the MACS bound.
	Rules core.Rules
	// Memory geometry: interleaved bank count, bank busy time, refresh
	// schedule. Zero fields take the C-240 defaults, mirroring
	// vm.Machine.BankConfig.
	Banks         int
	BankCycle     int
	RefreshPeriod int
	RefreshLen    int
	// BankConflicts and RefreshStalls enable the corresponding
	// stall-table terms in vector memory streams.
	BankConflicts bool
	RefreshStalls bool
	// MemSlowdown >1 models multi-process memory contention.
	MemSlowdown float64
	// Scalar timing, in cycles (ASU latencies).
	ScalarLoadLat int
	ScalarOpLat   int
	BranchPenalty int
	DispatchLat   int
	// MaxInstrs aborts runaway control flow.
	MaxInstrs int64
}

// DefaultConfig returns the standard C-240 fast-tier configuration,
// matching vm.DefaultConfig's timing knobs.
func DefaultConfig() Config {
	return Config{
		VLMax:         isa.VLMax,
		Rules:         core.DefaultRules(),
		Banks:         isa.MemBanks,
		BankCycle:     isa.BankCycle,
		RefreshPeriod: isa.RefreshPeriod,
		RefreshLen:    isa.RefreshLen,
		BankConflicts: true,
		RefreshStalls: true,
		MemSlowdown:   1.0,
		ScalarLoadLat: 4,
		ScalarOpLat:   1,
		BranchPenalty: 2,
		DispatchLat:   1,
		MaxInstrs:     50_000_000,
	}
}

// Prediction is the fast tier's answer for one program.
type Prediction struct {
	// Cycles is the predicted run length of the whole program, before
	// residual correction.
	Cycles int64
	// RawCPL is Cycles divided by the caller's iteration count (0 when no
	// iteration count was given).
	RawCPL float64
	// CPL is the served prediction: RawCPL times the calibrated residual.
	CPL float64
	// Residual is the multiplicative correction applied (1 when the
	// program matched no calibration entry).
	Residual float64
	// ErrorBand is the stated relative error band of CPL versus the
	// simulator's measurement: calibrated kernels carry their fitted
	// band, unknown programs the conservative DefaultErrorBand.
	ErrorBand float64
	// Calibrated reports whether a fitted residual matched (by exact
	// program signature or by kernel class).
	Calibrated bool
	// Signature identifies the exact compiled program; Class is the
	// coarse kernel class used for residual fallback and divergence
	// grouping.
	Signature string
	Class     string
	// Instrs, VectorInstrs, ScalarInstrs and Chimes count the replayed
	// schedule; MemStalls and PortConflicts mirror the simulator's stats.
	Instrs        int64
	VectorInstrs  int64
	ScalarInstrs  int64
	Chimes        int64
	MemStalls     int64
	PortConflicts int64
	// Attr is the predicted per-lane stall attribution; it is conserved
	// against Cycles by construction.
	Attr Ledger

	// Interval reports that this prediction came from bounded enumeration
	// of data-dependent branch outcomes rather than a single bit-exact
	// replay. CyclesLo/CyclesHi bound the run length over every admitted
	// outcome vector; because each enumerated path is itself bit-exact and
	// the real execution follows one of them, the simulator's measurement
	// is guaranteed to land inside [CyclesLo, CyclesHi]. CPLLo/CPLHi are
	// the per-iteration forms of those raw bounds — deliberately left
	// uncalibrated so the containment guarantee survives. Paths counts the
	// complete paths enumerated; the point fields (Cycles, CPL, Attr, ...)
	// describe the worst-case path.
	Interval bool
	Paths    int
	CyclesLo int64
	CyclesHi int64
	CPLLo    float64
	CPLHi    float64
}

// Signature returns a stable identity for a compiled program: an FNV-64a
// hash of its canonical assembly text (data declarations included, so the
// same kernel at a different problem size is a different signature).
func Signature(p *asm.Program) string {
	h := fnv.New64a()
	h.Write([]byte(p.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Class returns the coarse kernel class of a program: the chime count and
// the memory/FP composition of its inner vectorized loop at full vector
// length. Residual lookup falls back to it when the exact signature is
// unknown, and the service groups divergence metrics by it.
func Class(p *asm.Program, rules core.Rules) string {
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		return "scalar"
	}
	chimes := core.Partition(loop.Body, rules)
	var mem, fp int
	for _, in := range loop.Body {
		if !in.IsVector() {
			continue
		}
		switch in.Class() {
		case isa.ClassLoad, isa.ClassStore:
			mem++
		case isa.ClassFPAdd, isa.ClassFPMul:
			fp++
		}
	}
	return fmt.Sprintf("c%d-m%d-f%d", len(chimes), mem, fp)
}

// Predictor is the pooled front door to the fast tier: it recycles
// replay state — most importantly the memoized stream-stall table, whose
// warmth is much of the fast tier's speed — across predictions. It is
// safe for concurrent use.
type Predictor struct {
	cfg  Config
	pool sync.Pool

	// memo caches finished predictions by (program, iterations, inputs).
	// A compiled program is immutable, so identical requests — the
	// serving tier's steady state — answer from here in nanoseconds; the
	// replay runs only on the first sight of a schedule.
	mu   sync.Mutex
	memo map[memoKey]Prediction
}

// memoKey identifies one prediction request. The program is keyed by
// pointer: asm.Programs are immutable once compiled, and a recompiled
// source simply misses and replays.
type memoKey struct {
	prog       *asm.Program
	iterations int64
	ints       string // canonical fingerprint of the primed integers
	interval   bool   // interval (path-enumerated) predictions keyed apart
}

// memoCap bounds the prediction memo; on overflow the memo is dropped
// wholesale (predictions are cheap to recompute, bookkeeping is not).
const memoCap = 512

// intsFingerprint renders the primed integers canonically (sorted) so
// map iteration order cannot split the memo.
func intsFingerprint(ints map[string]int64) string {
	if len(ints) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ints))
	for k := range ints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := make([]byte, 0, 16*len(keys))
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, '=')
		b = strconv.AppendInt(b, ints[k], 10)
		b = append(b, ';')
	}
	return string(b)
}

// NewPredictor creates a Predictor for one machine configuration.
func NewPredictor(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg, memo: make(map[memoKey]Prediction)}
	p.pool.New = func() any { return newReplay(cfg) }
	return p
}

// Config returns the predictor's machine configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Predict replays prog's schedule and returns the fast-tier prediction.
// iterations converts predicted cycles to CPL (0 skips the conversion);
// ints primes integer inputs by data-symbol name (e.g. "d_N") — the
// values that drive trip counts and addresses. It returns
// ErrDataDependent (wrapped) when the program's timing depends on data
// the fast tier does not model. Identical requests are memoized.
func (p *Predictor) Predict(prog *asm.Program, iterations int64, ints map[string]int64) (Prediction, error) {
	key := memoKey{prog: prog, iterations: iterations, ints: intsFingerprint(ints)}
	p.mu.Lock()
	pred, ok := p.memo[key]
	p.mu.Unlock()
	if ok {
		return pred, nil
	}
	r := p.pool.Get().(*replay)
	pred, err := r.predict(prog, iterations, ints)
	p.pool.Put(r)
	if err != nil {
		return pred, err
	}
	p.mu.Lock()
	if len(p.memo) >= memoCap {
		clear(p.memo)
	}
	p.memo[key] = pred
	p.mu.Unlock()
	return pred, nil
}

// Predict is the one-shot form of Predictor.Predict for callers without a
// predictor to pool state in.
func Predict(prog *asm.Program, iterations int64, ints map[string]int64, cfg Config) (Prediction, error) {
	return newReplay(cfg).predict(prog, iterations, ints)
}

// finishPrediction applies the calibrated residual and stamps identity.
func finishPrediction(pred *Prediction, prog *asm.Program, rules core.Rules, iterations int64) {
	pred.Signature = Signature(prog)
	pred.Class = Class(prog, rules)
	if iterations > 0 {
		pred.RawCPL = float64(pred.Cycles) / float64(iterations)
	}
	res, ok := ResidualFor(pred.Signature, pred.Class)
	pred.Residual = res.Scale
	pred.ErrorBand = res.Band
	pred.Calibrated = ok
	pred.CPL = pred.RawCPL * res.Scale
}

// Residual is one calibrated correction: the multiplicative scale mapping
// a raw fast-tier CPL onto the simulator's CPL for a kernel (class), and
// the relative error band observed when fitting it. The table lives in
// residuals_gen.go, regenerated by internal/calib from simulator runs and
// persisted alongside the ISA timing tables as committed Go source.
type Residual struct {
	Kernel string  // human label of the calibration kernel
	Scale  float64 // sim CPL / raw predicted CPL
	Band   float64 // stated relative error band after scaling
}

// DefaultErrorBand is the conservative band served for programs the
// calibration corpus does not cover.
const DefaultErrorBand = 0.05

// ResidualFor looks up the calibrated residual for a program: exact
// signature first, kernel class second. ok is false when neither matched
// and the identity residual with DefaultErrorBand is returned.
func ResidualFor(sig, class string) (Residual, bool) {
	if r, ok := residualsBySig[sig]; ok {
		return r, true
	}
	if r, ok := residualsByClass[class]; ok {
		return r, true
	}
	return Residual{Kernel: "uncalibrated", Scale: 1, Band: DefaultErrorBand}, false
}
