package fasttier

import (
	"errors"
	"fmt"

	"macs/internal/asm"
)

// Interval prediction: when a program branches on data the fast tier does
// not model (a float compare feeding a jbrs), a single replay cannot be
// bit-exact — but if the branch structure is bounded, the set of possible
// executions is small and each one CAN be replayed bit-exactly. The
// enumerator below explores that set with a depth-first search over
// branch-decision scripts: a replay that reaches an undecided branch
// stops with errNeedDecision, the script is extended with both outcomes,
// and each complete path contributes its exact cycle count. The answer
// is the envelope [min, max] over all paths, which provably contains the
// simulator's measurement because the real execution follows one of the
// enumerated decision vectors.
//
// The search is capped: programs whose data-dependent control flow is
// genuinely unbounded (an unknown trip count re-deciding the same branch
// every iteration) blow through maxIntervalDecisions and are still
// refused with ErrDataDependent, exactly as before.
const (
	// maxIntervalDecisions bounds the length of one decision script — the
	// number of data-dependent branch outcomes along a single path.
	maxIntervalDecisions = 16
	// maxIntervalPaths bounds the number of complete paths enumerated.
	maxIntervalPaths = 64
)

// predictInterval enumerates the admitted executions of prog and returns
// a prediction whose [CyclesLo, CyclesHi] envelope contains every one of
// them. The point fields describe the worst-case (slowest) path. It
// returns ErrDataDependent (wrapped) when the enumeration caps are
// exceeded or a path fails for a non-branch reason (unknown vector
// length, stride, or address).
func (r *replay) predictInterval(prog *asm.Program, iterations int64, ints map[string]int64) (Prediction, error) {
	stack := [][]bool{nil}
	var (
		paths    int
		have     bool
		lo, hi   int64
		loP, hiP Prediction
	)
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pred, err := r.run(prog, iterations, ints, d, true)
		switch {
		case err == nil:
			paths++
			if paths > maxIntervalPaths {
				return Prediction{}, fmt.Errorf("interval enumeration exceeded %d paths: %w",
					maxIntervalPaths, ErrDataDependent)
			}
			if !have || pred.Cycles < lo {
				lo, loP = pred.Cycles, pred
			}
			if !have || pred.Cycles > hi {
				hi, hiP = pred.Cycles, pred
			}
			have = true
		case errors.Is(err, errNeedDecision):
			if len(d) >= maxIntervalDecisions {
				return Prediction{}, fmt.Errorf("interval enumeration exceeded %d branch decisions: %w",
					maxIntervalDecisions, ErrDataDependent)
			}
			f := make([]bool, len(d)+1)
			copy(f, d)
			t := make([]bool, len(d)+1)
			copy(t, d)
			t[len(d)] = true
			stack = append(stack, f, t)
		default:
			// Any other failure — unknown VL/VS/address, runaway control
			// flow — poisons every path sharing the prefix; give up.
			return Prediction{}, err
		}
	}
	if !have {
		return Prediction{}, fmt.Errorf("interval enumeration found no complete path: %w", ErrDataDependent)
	}
	pred := hiP
	pred.Interval = true
	pred.Paths = paths
	pred.CyclesLo, pred.CyclesHi = lo, hi
	if iterations > 0 {
		pred.CPLLo = loP.RawCPL
		pred.CPLHi = hiP.RawCPL
	}
	return pred, nil
}

// PredictInterval is Predict's fallback for data-dependent programs: it
// enumerates the (bounded) set of branch outcomes and returns a
// prediction carrying the [CyclesLo, CyclesHi] envelope over every
// admitted execution, with the point fields describing the worst case.
// It returns ErrDataDependent (wrapped) when the control flow is not
// boundedly enumerable. Identical requests are memoized.
func (p *Predictor) PredictInterval(prog *asm.Program, iterations int64, ints map[string]int64) (Prediction, error) {
	key := memoKey{prog: prog, iterations: iterations, ints: intsFingerprint(ints), interval: true}
	p.mu.Lock()
	pred, ok := p.memo[key]
	p.mu.Unlock()
	if ok {
		return pred, nil
	}
	r := p.pool.Get().(*replay)
	pred, err := r.predictInterval(prog, iterations, ints)
	p.pool.Put(r)
	if err != nil {
		return pred, err
	}
	p.mu.Lock()
	if len(p.memo) >= memoCap {
		clear(p.memo)
	}
	p.memo[key] = pred
	p.mu.Unlock()
	return pred, nil
}

// PredictInterval is the one-shot form of Predictor.PredictInterval.
func PredictInterval(prog *asm.Program, iterations int64, ints map[string]int64, cfg Config) (Prediction, error) {
	return newReplay(cfg).predictInterval(prog, iterations, ints)
}
