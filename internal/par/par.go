// Package par provides the bounded fan-out primitive behind the parallel
// sweep runners: experiments tables, calibration, and lfkbench all map a
// fixed index space over a small worker pool with it.
//
// The contract is deliberately deterministic. Results land by index, so a
// parallel sweep assembles the same output slice as a sequential one; on
// error the lowest-index failure wins, matching what a sequential loop
// would have reported first.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: n < 1 selects GOMAXPROCS
// (use all cores), anything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for i in [0,n) on at most `workers` goroutines and
// waits for all of them. With workers <= 1 it degenerates to a plain
// sequential loop that stops at the first error — exactly the behavior
// the sweep loops had before they were parallelized. With workers > 1
// every index runs (no early cancellation; sweep items are cheap and
// independent) and the error with the lowest index is returned, so the
// reported failure does not depend on goroutine scheduling.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if i < firstIdx {
			firstIdx = i
			firstErr = err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ForEachCtx is ForEach under a context: once ctx is cancelled no new
// index is launched — indices already running finish (fn is never
// interrupted mid-flight; pass ctx into fn for that), and indices never
// claimed simply do not run. It returns the lowest-index fn error if one
// occurred before cancellation took effect, otherwise ctx.Err() when the
// sweep was cut short, otherwise nil. The sequential workers <= 1 path
// checks the context before every index, matching the parallel claim
// loop.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	claim := func() (int, bool) {
		if ctx.Err() != nil {
			return 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if i < firstIdx {
			firstIdx = i
			firstErr = err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
