package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var seen [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachLowestIndexError: with several failing indices, the reported
// error must be the lowest-index one regardless of worker count, so a
// parallel sweep fails the same way a sequential one would.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var calls atomic.Int32
		err := ForEach(workers, 50, func(i int) error {
			calls.Add(1)
			if i == 7 || i == 31 || i == 49 {
				return errors.New("boom at " + string(rune('0'+i/10)) + string(rune('0'+i%10)))
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if want := "boom at 07"; err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", workers, err.Error(), want)
		}
		if workers == 1 && calls.Load() != 8 {
			// Sequential mode stops at the first failure.
			t.Fatalf("sequential mode ran %d calls, want 8", calls.Load())
		}
	}
}

// TestForEachConcurrent exercises the claim/record paths under -race.
func TestForEachConcurrent(t *testing.T) {
	var sum atomic.Int64
	const n = 1000
	if err := ForEach(8, n, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}
