package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var seen [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachLowestIndexError: with several failing indices, the reported
// error must be the lowest-index one regardless of worker count, so a
// parallel sweep fails the same way a sequential one would.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var calls atomic.Int32
		err := ForEach(workers, 50, func(i int) error {
			calls.Add(1)
			if i == 7 || i == 31 || i == 49 {
				return errors.New("boom at " + string(rune('0'+i/10)) + string(rune('0'+i%10)))
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if want := "boom at 07"; err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", workers, err.Error(), want)
		}
		if workers == 1 && calls.Load() != 8 {
			// Sequential mode stops at the first failure.
			t.Fatalf("sequential mode ran %d calls, want 8", calls.Load())
		}
	}
}

// TestForEachConcurrent exercises the claim/record paths under -race.
func TestForEachConcurrent(t *testing.T) {
	var sum atomic.Int64
	const n = 1000
	if err := ForEach(8, n, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForEachCtxNoCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 50
		var seen [n]atomic.Int32
		if err := ForEachCtx(context.Background(), workers, n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForEachCtxCancelStopsLaunches: after cancellation no new index is
// claimed; in-flight indices finish; the call reports ctx.Err().
func TestForEachCtxCancelStopsLaunches(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int32
		const n = 10_000
		err := ForEachCtx(ctx, workers, n, func(i int) error {
			if calls.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Every worker may have already claimed one index when cancel
		// fires, but nothing close to the full space runs afterwards.
		if c := calls.Load(); int(c) >= n {
			t.Fatalf("workers=%d: all %d indices ran despite cancellation", workers, c)
		}
		cancel()
	}
}

// TestForEachCtxPreCancelled: a context cancelled before the call runs
// nothing at all.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// Parallel workers race one claim against the ctx check, but a
		// pre-cancelled context must stop the sequential path cold and
		// bound the parallel path to at most one claim per worker.
		if c := calls.Load(); int(c) > workers {
			t.Fatalf("workers=%d: %d calls ran on a dead context", workers, c)
		}
	}
	if err := ForEachCtx(ctx, 4, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("empty range on dead context: %v", err)
	}
}

// TestForEachCtxErrorBeatsCancel: an fn error recorded before
// cancellation is reported in preference to ctx.Err(), and the
// lowest-index rule still applies.
func TestForEachCtxErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			if i == 3 {
				cancel()
				return boom
			}
			return nil
		})
		cancel()
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}
