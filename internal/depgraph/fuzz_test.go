package depgraph_test

import (
	"testing"

	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/depgraph"
	"macs/internal/isa"
	"macs/internal/lfk"
	"macs/internal/mem"
	"macs/internal/verify"
	"macs/internal/vm"
)

// FuzzDepGraph feeds arbitrary kernel sources through compile -> verify
// -> dependence analysis -> simulation and asserts the analyzer's two
// core invariants on every verify-clean program: the intra-iteration
// dependence graph is a DAG, and the critical-path figures never exceed
// what the simulator actually measures. Seeds are the ten LFKs.
func FuzzDepGraph(f *testing.F) {
	for _, k := range lfk.All() {
		f.Add(k.Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := compiler.Compile(src, compiler.DefaultOptions())
		if err != nil {
			return
		}
		if verify.HasErrors(verify.Check(p)) {
			return
		}
		// The interval analysis must terminate and not panic on any
		// compilable program.
		iv := depgraph.Intervals(p)
		_ = depgraph.StreamFacts(p, iv, mem.DefaultConfig())

		cp, g, ok := depgraph.Analyze(p, isa.VLMax, depgraph.DefaultParams())
		if !ok {
			return
		}
		if !g.Acyclic() {
			t.Fatalf("dependence graph has an intra-iteration cycle:\n%s", p.String())
		}
		loop, _ := asm.InnerVectorLoop(p)

		cfg := vm.DefaultConfig()
		cfg.Trace = true
		cfg.MaxCycles = 2_000_000
		cfg.MaxInstrs = 2_000_000
		cpu := vm.New(cfg)
		if err := cpu.Load(p); err != nil {
			return
		}
		st, err := cpu.Run()
		if err != nil {
			return // runaway or runtime fault: no timing claim to check
		}

		passes := bodyPasses(cpu.Trace(), p, loop)
		if passes < 1 {
			return // the analyzed loop never executed
		}
		if b := cp.TotalBound(1); b > st.Cycles {
			t.Fatalf("one-pass t_CP %d exceeds simulated %d cycles:\n%s", b, st.Cycles, p.String())
		}
		if cp.StraightLine && singleEntry(p, loop) {
			if b := cp.TotalBound(passes); b > st.Cycles {
				t.Fatalf("t_CP TotalBound(%d) = %d exceeds simulated %d cycles:\n%s",
					passes, b, st.Cycles, p.String())
			}
		}
	})
}

// bodyPasses counts how many times the loop body executed, by counting
// trace events of a body vector instruction whose printed form is unique
// in the whole program (0 when no such witness exists).
func bodyPasses(trace []vm.TraceEvent, p *asm.Program, loop asm.Loop) int64 {
	witness := ""
	for i := loop.Start; i < loop.End; i++ {
		if !p.Instrs[i].IsVector() {
			continue
		}
		s := p.Instrs[i].String()
		unique := true
		for j, other := range p.Instrs {
			if j != i && other.String() == s {
				unique = false
				break
			}
		}
		if unique {
			witness = s
			break
		}
	}
	if witness == "" {
		return 0
	}
	var n int64
	for _, ev := range trace {
		if ev.Instr.String() == witness {
			n++
		}
	}
	return n
}

// singleEntry reports whether the loop region can only be entered once:
// the loop's own back edge is the program's sole backward branch, so no
// outer loop can re-enter it (which would break the carried-recurrence
// scaling between non-consecutive iterations).
func singleEntry(p *asm.Program, loop asm.Loop) bool {
	for i, in := range p.Instrs {
		if !in.IsBranch() || i == loop.End-1 {
			continue
		}
		for _, o := range in.Ops {
			if o.Kind != isa.KindLabel {
				continue
			}
			if t, ok := p.Labels[o.Label]; ok && t <= i {
				return false
			}
		}
	}
	return true
}
