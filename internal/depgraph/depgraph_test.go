package depgraph_test

import (
	"math"
	"testing"

	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/depgraph"
	"macs/internal/isa"
	"macs/internal/lfk"
	"macs/internal/mem"
	"macs/internal/vm"
)

func mustParse(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

const loopSrc = `mov #128,s0
L:
mov #64,vl
mov #8,vs
ld.d d_X,v0
add.d v0,v1,v2
st.d v2,d_Y
sub.w #64,s0
lt.w #0,s0
jbrs.t L
halt
.data d_X 1024
.data d_Y 1024
`

// hasEdge reports whether the graph contains an edge with the given
// shape, matching on resource name.
func hasEdge(g *depgraph.Graph, from, to int, kind depgraph.EdgeKind, res string, carried bool) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Kind == kind && e.Res == res && e.Carried == carried {
			return true
		}
	}
	return false
}

func TestBuildEdges(t *testing.T) {
	p := mustParse(t, loopSrc)
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		t.Fatal("no inner vector loop found")
	}
	g := depgraph.Build(loop.Body)
	if !g.Acyclic() {
		t.Fatal("graph not acyclic")
	}
	// Body indices: 0 mov vl, 1 mov vs, 2 ld, 3 add, 4 st, 5 sub, 6 lt, 7 jbrs.
	cases := []struct {
		from, to int
		kind     depgraph.EdgeKind
		res      string
		carried  bool
	}{
		{2, 3, depgraph.EdgeTrue, "v0", false}, // load feeds add
		{3, 4, depgraph.EdgeTrue, "v2", false}, // add feeds store
		{0, 2, depgraph.EdgeTrue, "vl", false}, // vl feeds vector ops
		{1, 2, depgraph.EdgeTrue, "vs", false}, // vs feeds memory stream
		{5, 6, depgraph.EdgeTrue, "s0", false}, // decrement feeds compare
		{6, 7, depgraph.EdgeTrue, "T", false},  // compare feeds branch
		{5, 5, depgraph.EdgeTrue, "s0", true},  // carried recurrence on s0
		{6, 5, depgraph.EdgeAnti, "s0", false}, // compare read before redefine? no: sub defines first
		{2, 3, depgraph.EdgeTrue, "v0", false},
	}
	for _, c := range cases[:7] {
		if !hasEdge(g, c.from, c.to, c.kind, c.res, c.carried) {
			t.Errorf("missing edge %d -%v(%s)-> %d carried=%v", c.from, c.kind, c.res, c.to, c.carried)
		}
	}
	if g.KindCount(depgraph.EdgeTrue) == 0 || g.Carried() == 0 {
		t.Fatalf("edge census: true=%d carried=%d", g.KindCount(depgraph.EdgeTrue), g.Carried())
	}
}

func TestCriticalPathLoop(t *testing.T) {
	p := mustParse(t, loopSrc)
	cp, g, ok := depgraph.Analyze(p, 64, depgraph.DefaultParams())
	if !ok {
		t.Fatal("Analyze found no vector loop")
	}
	if !g.Acyclic() {
		t.Fatal("graph not acyclic")
	}
	if !cp.StraightLine {
		t.Fatal("loop body should be straight-line")
	}
	if cp.Len <= 0 || cp.IISerial <= 0 || cp.II <= 0 || cp.CPL <= 0 {
		t.Fatalf("degenerate CP: %+v", cp)
	}
	// The chain ld -> add -> st must be at least the chained startups.
	if cp.Len < 3*10 {
		t.Errorf("Len = %d, want >= 30 (three chained Y=10 startups)", cp.Len)
	}
	if len(cp.Crit) < 2 {
		t.Errorf("critical chain too short: %v", cp.Crit)
	}
	// Carried s0 recurrence is scalar: one op latency per iteration.
	if cp.IICarried < 1 {
		t.Errorf("IICarried = %d, want >= 1", cp.IICarried)
	}
	if b := cp.TotalBound(2); b < cp.II {
		t.Errorf("TotalBound(2) = %d, want >= II = %d", b, cp.II)
	}
}

func TestIntervalArith(t *testing.T) {
	if got := depgraph.Point(3).Add(depgraph.Range(1, 2)); got != depgraph.Range(4, 5) {
		t.Errorf("3 + [1,2] = %v", got)
	}
	if got := depgraph.Range(1, 2).Sub(depgraph.Point(1)); got != depgraph.Range(0, 1) {
		t.Errorf("[1,2] - 1 = %v", got)
	}
	if got := depgraph.Range(-2, 3).Mul(depgraph.Point(-4)); got != depgraph.Range(-12, 8) {
		t.Errorf("[-2,3] * -4 = %v", got)
	}
	if got := depgraph.Range(1, 2).Join(depgraph.Range(5, 9)); got != depgraph.Range(1, 9) {
		t.Errorf("join = %v", got)
	}
	if got := depgraph.AtLeast(3).Meet(depgraph.AtMost(7)); got != depgraph.Range(3, 7) {
		t.Errorf("meet = %v", got)
	}
	top := depgraph.Top()
	if got := top.Add(depgraph.Point(1)); got != top {
		t.Errorf("top + 1 = %v", got)
	}
	// Saturation: near-overflow sums drop the moving bound.
	big := depgraph.Point(math.MaxInt64 - 1)
	if got := big.Add(depgraph.Point(10)); got.Bounded() {
		t.Errorf("overflowing add stayed bounded: %v", got)
	}
	w := depgraph.Range(0, 10).Widen(depgraph.Range(0, 5))
	if w.HiBnd || !w.LoBnd || w.Lo != 0 {
		t.Errorf("widen = %v, want [0,+inf]", w)
	}
}

func TestIntervalsRefinement(t *testing.T) {
	src := `mov #0,a0
L:
add.w #1,a0
lt.w a0,#10
jbrs.t L
st.l a0,d_out
halt
.data d_out 8
`
	p := mustParse(t, src)
	iv := depgraph.Intervals(p)
	// Instruction indices: 0 mov, 1 add, 2 lt, 3 jbrs, 4 st, 5 halt.
	a0 := isa.Reg{Class: isa.ClassA, N: 0}
	if got := iv.Reg(1, a0); got != depgraph.Range(0, 9) {
		t.Errorf("a0 before add = %v, want [0,9]", got)
	}
	if got := iv.Reg(4, a0); got != depgraph.Point(10) {
		t.Errorf("a0 at store = %v, want 10", got)
	}
}

func TestIntervalsVLClamp(t *testing.T) {
	src := `mov #4096,s0
mov s0,vl
halt
`
	p := mustParse(t, src)
	iv := depgraph.Intervals(p)
	got := iv.Reg(2, isa.VL())
	if got != depgraph.Range(0, int64(isa.VLMax)) && got != depgraph.Point(int64(isa.VLMax)) {
		t.Errorf("vl after clamped write = %v", got)
	}
	if !got.Bounded() || got.Hi > int64(isa.VLMax) {
		t.Errorf("vl not clamped: %v", got)
	}
}

func TestIntervalsWideningTerminates(t *testing.T) {
	// Unbounded count-up loop: the analysis must converge (widening) and
	// leave the counter unbounded above.
	src := `mov #0,a0
L:
add.w #3,a0
ld.l d_c,a1
eq.w #0,a1
jbrs.f L
st.l a0,d_c
halt
.data d_c 8
`
	p := mustParse(t, src)
	iv := depgraph.Intervals(p)
	a0 := isa.Reg{Class: isa.ClassA, N: 0}
	got := iv.Reg(1, a0)
	if !got.LoBnd || got.Lo != 0 {
		t.Errorf("a0 lower bound lost: %v", got)
	}
	if got.HiBnd {
		t.Errorf("a0 upper bound should have widened away: %v", got)
	}
}

func TestStreamFacts(t *testing.T) {
	src := `mov #64,vl
mov #8,vs
ld.d d_X,v0
mov #256,vs
ld.d d_X,v1
ld.l d_s,a0
mov a0,vs
ld.d d_X,v2
halt
.data d_X 32768
.data d_s 8
`
	p := mustParse(t, src)
	iv := depgraph.Intervals(p)
	facts := depgraph.StreamFacts(p, iv, mem.DefaultConfig())
	if len(facts) != 3 {
		t.Fatalf("got %d stream facts, want 3", len(facts))
	}
	if !facts[0].ConflictFree || facts[0].Conflicting {
		t.Errorf("unit stride: %+v", facts[0])
	}
	if sv, ok := facts[0].Stride.IsPoint(); !ok || sv != 8 {
		t.Errorf("unit stride interval = %v", facts[0].Stride)
	}
	if !facts[1].Conflicting || facts[1].ConflictFree {
		t.Errorf("bank-aligned stride: %+v", facts[1])
	}
	if facts[2].Proven() {
		t.Errorf("data-dependent stride should be unproven: %+v", facts[2])
	}
}

// TestLFKCriticalPath is the golden gate required by the issue: for all
// ten LFKs the critical-path bound must exist and never exceed the
// simulator's measured cycles, at the per-element level (t_CP <= measured
// CPL) and at the whole-run level (TotalBound <= cycles).
func TestLFKCriticalPath(t *testing.T) {
	cfg := vm.DefaultConfig()
	for _, k := range lfk.All() {
		c, err := lfk.Compile(k, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		st, _, err := c.Run(cfg)
		if err != nil {
			t.Fatalf("lfk%d sim: %v", k.ID, err)
		}
		cp, g, ok := depgraph.Analyze(c.Program, isa.VLMax, depgraph.DefaultParams())
		if !ok {
			t.Fatalf("lfk%d: no vector loop found", k.ID)
		}
		if !g.Acyclic() {
			t.Fatalf("lfk%d: dependence graph not acyclic", k.ID)
		}
		if cp.Len <= 0 {
			t.Errorf("lfk%d: no critical path", k.ID)
		}
		measuredCPL := float64(st.Cycles) / float64(k.Elements)
		if cp.StraightLine && cp.CPL > measuredCPL {
			t.Errorf("lfk%d: t_CP = %.3f exceeds measured CPL %.3f", k.ID, cp.CPL, measuredCPL)
		}
		strips := (int64(k.Elements) + int64(isa.VLMax) - 1) / int64(isa.VLMax)
		if b := cp.TotalBound(strips); b > st.Cycles {
			t.Errorf("lfk%d: TotalBound(%d) = %d exceeds simulated %d cycles",
				k.ID, strips, b, st.Cycles)
		}
	}
}
