// Package depgraph is the static dependence and value-range analyzer over
// compiled asm programs. It complements the MACS resource bounds (which
// say how fast the machine could stream the work) with two kinds of purely
// static facts:
//
//   - a register/memory data-dependence DAG over the inner loop body —
//     true (read-after-write), anti (write-after-read) and output
//     (write-after-write) edges, plus the loop-carried edges that cross
//     the strip-mine back branch — from which the critical-path bound
//     t_CP is computed with chaining-aware edge weights taken from the
//     same Table 1 timings the simulator uses (cp.go);
//   - an interval abstract interpretation over the whole program
//     (const-prop generalized to value ranges on scalar registers, VL and
//     VS, with branch-condition refinement and widening) that proves
//     bank-conflict freedom of vector streams, bounds effective
//     addresses for the static memory checker, and bounds data-dependent
//     trip counts (interval.go, facts.go).
//
// Every bound here is a provable lower bound on machine time: edge
// weights deliberately under-approximate the enforced stall so that
// t_CP <= measured cycles holds on every program (the depgraph fuzzer and
// the LFK golden tests pin this).
package depgraph

import (
	"fmt"

	"macs/internal/isa"
)

// EdgeKind classifies one dependence edge. The critical-path solver must
// handle every kind explicitly — cmd/macsvet's depgraph rule checks that
// the edgeWeight switch names each member.
//
// macsvet:exhaustive
type EdgeKind int

const (
	// EdgeTrue is a read-after-write (flow) dependence.
	EdgeTrue EdgeKind = iota
	// EdgeAnti is a write-after-read dependence.
	EdgeAnti
	// EdgeOutput is a write-after-write dependence.
	EdgeOutput

	// NumEdgeKinds is the size of the taxonomy.
	NumEdgeKinds
)

var edgeKindNames = [NumEdgeKinds]string{"true", "anti", "output"}

func (k EdgeKind) String() string {
	if k < 0 || k >= NumEdgeKinds {
		return fmt.Sprintf("edgekind(%d)", int(k))
	}
	return edgeKindNames[k]
}

// Edge is one dependence between two instructions of a loop body.
type Edge struct {
	// From and To index the body; a carried edge's To executes one
	// iteration after its From.
	From, To int
	Kind     EdgeKind
	// Carried marks a dependence across the loop back branch.
	Carried bool
	// Reg is the register carrying the dependence (zero value for the
	// scalar T flag and for memory-symbol edges).
	Reg isa.Reg
	// Res names the depended-on resource for display: a register, "T",
	// or a data symbol.
	Res string
	// Mem marks a memory-symbol dependence (store/load on the same
	// .data symbol).
	Mem bool
}

func (e Edge) String() string {
	c := ""
	if e.Carried {
		c = " carried"
	}
	return fmt.Sprintf("%d -%s(%s)%s-> %d", e.From, e.Kind, e.Res, c, e.To)
}

// Graph is the dependence DAG of one loop body. Non-carried edges always
// point forward in program order (the body is straight-line), so the
// graph restricted to them is acyclic by construction; Acyclic verifies
// the invariant for the fuzzer.
type Graph struct {
	Body  []isa.Instr
	Edges []Edge
}

// Register slots for dependence tracking: a, s and v registers, VL, VS,
// and the scalar comparison flag T (set by compares, read by jbrs).
const (
	gSlotA  = 0
	gSlotS  = gSlotA + isa.NumARegs
	gSlotV  = gSlotS + isa.NumSRegs
	gSlotVL = gSlotV + isa.NumVRegs
	gSlotVS = gSlotVL + 1
	gSlotT  = gSlotVS + 1
	numG    = gSlotT + 1
)

func gSlot(r isa.Reg) int {
	switch r.Class {
	case isa.ClassA:
		if r.N >= 0 && r.N < isa.NumARegs {
			return gSlotA + r.N
		}
	case isa.ClassS:
		if r.N >= 0 && r.N < isa.NumSRegs {
			return gSlotS + r.N
		}
	case isa.ClassV:
		if r.N >= 0 && r.N < isa.NumVRegs {
			return gSlotV + r.N
		}
	case isa.ClassVL:
		return gSlotVL
	case isa.ClassVS:
		return gSlotVS
	}
	return -1
}

func gSlotName(s int) string {
	switch {
	case s >= gSlotA && s < gSlotS:
		return fmt.Sprintf("a%d", s-gSlotA)
	case s >= gSlotS && s < gSlotV:
		return fmt.Sprintf("s%d", s-gSlotS)
	case s >= gSlotV && s < gSlotVL:
		return fmt.Sprintf("v%d", s-gSlotV)
	case s == gSlotVL:
		return "vl"
	case s == gSlotVS:
		return "vs"
	case s == gSlotT:
		return "T"
	}
	return fmt.Sprintf("slot%d", s)
}

func gSlotReg(s int) isa.Reg {
	switch {
	case s >= gSlotA && s < gSlotS:
		return isa.Reg{Class: isa.ClassA, N: s - gSlotA}
	case s >= gSlotS && s < gSlotV:
		return isa.Reg{Class: isa.ClassS, N: s - gSlotS}
	case s >= gSlotV && s < gSlotVL:
		return isa.Reg{Class: isa.ClassV, N: s - gSlotV}
	case s == gSlotVL:
		return isa.VL()
	case s == gSlotVS:
		return isa.VS()
	}
	return isa.Reg{} // T and memory edges carry the zero register
}

// useSlots returns the register slots an instruction reads: its explicit
// and implicit sources, the destination of a two-operand ALU form (which
// reads its destination), and the T flag for conditional branches.
func useSlots(in isa.Instr) []int {
	var out []int
	for _, r := range in.Sources() {
		if s := gSlot(r); s >= 0 {
			out = append(out, s)
		}
	}
	if isTwoOpALU(in) {
		if d, ok := in.Dst(); ok {
			if s := gSlot(d); s >= 0 {
				out = append(out, s)
			}
		}
	}
	if in.Op == isa.OpJbrs {
		out = append(out, gSlotT)
	}
	return out
}

// defSlots returns the register slots an instruction writes: its
// destination, and the T flag for compares.
func defSlots(in isa.Instr) []int {
	var out []int
	if d, ok := in.Dst(); ok {
		if s := gSlot(d); s >= 0 {
			out = append(out, s)
		}
	}
	if isCompare(in.Op) {
		out = append(out, gSlotT)
	}
	return out
}

func isTwoOpALU(in isa.Instr) bool {
	if len(in.Ops) != 2 || in.Op == isa.OpNeg {
		return false
	}
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr, isa.OpShf:
		return true
	}
	return false
}

func isCompare(op isa.Op) bool {
	switch op {
	case isa.OpLe, isa.OpLt, isa.OpGt, isa.OpGe, isa.OpEq, isa.OpNe:
		return true
	}
	return false
}

// memSym returns the data symbol a memory instruction touches, or "" for
// symbolless (pure register-addressed) accesses, which the builder
// conservatively ignores: a missed edge can only lower the critical-path
// bound, never raise it above the machine.
func memSym(in isa.Instr) (sym string, ok bool) {
	if !in.IsMemory() {
		return "", false
	}
	for _, o := range in.Ops {
		if o.Kind == isa.KindMem {
			return o.Sym, o.Sym != ""
		}
	}
	return "", false
}

// Build constructs the dependence graph of one loop body. The body is
// walked twice: the first pass emits intra-iteration edges, the second
// replays the body against the first pass's end state to emit the
// loop-carried edges (stopping per resource at its first redefinition).
// Memory dependences are tracked at data-symbol granularity.
func Build(body []isa.Instr) *Graph {
	g := &Graph{Body: body}

	lastDef := make([]int, numG)
	for i := range lastDef {
		lastDef[i] = -1
	}
	reads := make([][]int, numG)
	lastStore := map[string]int{}
	loads := map[string][]int{}

	emit := func(from, to int, kind EdgeKind, slot int, sym string, carried bool) {
		e := Edge{From: from, To: to, Kind: kind, Carried: carried}
		if sym != "" {
			e.Res, e.Mem = sym, true
		} else {
			e.Res, e.Reg = gSlotName(slot), gSlotReg(slot)
		}
		g.Edges = append(g.Edges, e)
	}

	// Pass 1: intra-iteration edges.
	for i, in := range body {
		for _, u := range useSlots(in) {
			if d := lastDef[u]; d >= 0 {
				emit(d, i, EdgeTrue, u, "", false)
			}
			reads[u] = append(reads[u], i)
		}
		if sym, ok := memSym(in); ok {
			if in.IsStore() {
				if d, ok := lastStore[sym]; ok {
					emit(d, i, EdgeOutput, 0, sym, false)
				}
				for _, r := range loads[sym] {
					if r != i {
						emit(r, i, EdgeAnti, 0, sym, false)
					}
				}
				lastStore[sym] = i
				loads[sym] = loads[sym][:0]
			} else {
				if d, ok := lastStore[sym]; ok {
					emit(d, i, EdgeTrue, 0, sym, false)
				}
				loads[sym] = append(loads[sym], i)
			}
		}
		for _, d := range defSlots(in) {
			for _, r := range reads[d] {
				if r != i {
					emit(r, i, EdgeAnti, d, "", false)
				}
			}
			if p := lastDef[d]; p >= 0 && p != i {
				emit(p, i, EdgeOutput, d, "", false)
			}
			lastDef[d] = i
			reads[d] = reads[d][:0]
		}
	}

	// Pass 2: loop-carried edges against the pass-1 end state. A slot
	// stops producing carried edges at its first redefinition in this
	// pass (the next iteration's own value takes over from there).
	dead := make([]bool, numG)
	deadSym := map[string]bool{}
	for i, in := range body {
		for _, u := range useSlots(in) {
			if dead[u] {
				continue
			}
			if d := lastDef[u]; d >= 0 {
				emit(d, i, EdgeTrue, u, "", true)
			}
		}
		if sym, ok := memSym(in); ok && !deadSym[sym] {
			if in.IsStore() {
				if d, ok := lastStore[sym]; ok {
					emit(d, i, EdgeOutput, 0, sym, true)
				}
				for _, r := range loads[sym] {
					emit(r, i, EdgeAnti, 0, sym, true)
				}
				deadSym[sym] = true
			} else if d, ok := lastStore[sym]; ok {
				emit(d, i, EdgeTrue, 0, sym, true)
			}
		}
		for _, d := range defSlots(in) {
			if dead[d] {
				continue
			}
			for _, r := range reads[d] {
				emit(r, i, EdgeAnti, d, "", true)
			}
			if p := lastDef[d]; p >= 0 {
				emit(p, i, EdgeOutput, d, "", true)
			}
			dead[d] = true
		}
	}
	return g
}

// Carried counts the loop-carried edges.
func (g *Graph) Carried() int {
	n := 0
	for _, e := range g.Edges {
		if e.Carried {
			n++
		}
	}
	return n
}

// KindCount counts edges of one kind.
func (g *Graph) KindCount(k EdgeKind) int {
	n := 0
	for _, e := range g.Edges {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Acyclic reports whether the graph restricted to non-carried edges is a
// DAG. It holds by construction (intra-iteration edges point forward in
// program order); the fuzzer asserts it on every generated program.
func (g *Graph) Acyclic() bool {
	for _, e := range g.Edges {
		if !e.Carried && e.From >= e.To {
			return false
		}
	}
	return true
}
