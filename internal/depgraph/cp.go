package depgraph

import (
	"math"

	"macs/internal/asm"
	"macs/internal/isa"
)

// Params are the ASU timing parameters the critical-path weights need,
// mirroring the simulator's (and fast tier's) scalar knobs.
type Params struct {
	// ScalarOpLat is the ASU cost of one non-memory scalar instruction.
	ScalarOpLat int
	// ScalarLoadLat is the ASU cost of one scalar memory access.
	ScalarLoadLat int
	// DispatchLat is the ASU cost of dispatching one vector instruction.
	DispatchLat int
	// BranchPenalty is the extra cost of a taken branch.
	BranchPenalty int
}

// DefaultParams returns the C-240 ASU parameters, matching
// vm.DefaultConfig and fasttier.DefaultConfig.
func DefaultParams() Params {
	return Params{ScalarOpLat: 1, ScalarLoadLat: 4, DispatchLat: 1, BranchPenalty: 2}
}

// CP is the critical-path analysis of one loop body.
//
// Every figure is a provable lower bound on machine time. Len is the
// longest true-dependence chain through one pass of the body at VL
// (chaining-aware weights). IISerial is the minimum ASU time of one pass
// (the ASU issues the body serially, so successive passes are at least
// this far apart). IICarried is the strongest loop-carried recurrence:
// the minimum delay between successive iterations imposed by a value an
// iteration computes and the next one consumes, evaluated at VL=1 so it
// holds for every strip including the short remainder. II is the
// per-pass initiation bound max(IISerial, IICarried), and CPL = II/VL is
// the reported t_CP in cycles per element — comparable to (and never
// above) the measured CPL whenever the body is straight-line.
type CP struct {
	VL  int
	Len int64
	// IISerial and IICarried bound the per-pass initiation interval;
	// II is their maximum.
	IISerial  int64
	IICarried int64
	II        int64
	// CPL is t_CP in cycles per element (0 when the body is not
	// straight-line: no per-pass claim can be made then).
	CPL float64
	// StraightLine reports whether the body is branch-free except for
	// the final back branch — the shape the per-pass bounds require.
	StraightLine bool
	// Crit is the instruction index chain realizing Len, producer first.
	Crit []int

	// Conservative internals for TotalBound, evaluated at VL=1 so they
	// hold for arbitrary per-strip vector lengths.
	len1 int64
	recs []recurrence
}

// recurrence is one carried dependence cycle: successive starts of its
// head instruction are at least cyc apart, and the first completion of
// the head costs at least prefix.
type recurrence struct {
	prefix, cyc int64
}

// edgeWeight returns a provable lower bound on the start-to-start delay
// one dependence edge enforces between its endpoint instructions, in
// cycles. ok is false when the edge does not constrain timing: anti and
// output dependences order register reuse without any enforced stall,
// and memory-symbol dependences are serialized by the shared port and
// pipe, not by the dependence itself. Every EdgeKind must be handled
// here — cmd/macsvet's depgraph rule checks the switch is exhaustive.
func edgeWeight(body []isa.Instr, e Edge, vl int, p Params) (w int64, ok bool) {
	switch e.Kind {
	case EdgeTrue:
		if e.Mem {
			return 0, false
		}
		prod := body[e.From]
		if prod.IsVector() {
			pt, hasT := isa.VectorTiming(prod.Op)
			if !hasT {
				return 0, false
			}
			if e.Reg.Class == isa.ClassV {
				// Chained consumer: first operand arrives Y cycles after
				// the producer starts, plus the rate mismatch over the
				// stream. This under-approximates both the chained case
				// (equality) and the cross-chime/unchained case (the
				// consumer then waits for the producer to finish).
				w = int64(pt.Y)
				var zc float64
				if cons := body[e.To]; cons.IsVector() {
					if ct, okc := isa.VectorTiming(cons.Op); okc {
						zc = ct.Z
					}
				}
				if pt.Z > zc && vl > 1 {
					w += int64(math.Ceil((pt.Z - zc) * float64(vl-1)))
				}
				return w, true
			}
			// Vector-produced scalar (sum.d): the consumer waits for the
			// reduction to finish streaming.
			return int64(pt.Y) + int64(math.Ceil(pt.Z*float64(vl))), true
		}
		// Scalar producer: the ASU is serial, so the consumer issues at
		// least the producer's latency later.
		if prod.IsMemory() {
			return int64(p.ScalarLoadLat), true
		}
		return int64(p.ScalarOpLat), true
	case EdgeAnti, EdgeOutput:
		return 0, false
	}
	return 0, false
}

// completion returns a lower bound on the cycles from an instruction's
// start to its last effect.
func completion(in isa.Instr, vl int, p Params) int64 {
	if in.IsVector() {
		if t, ok := isa.VectorTiming(in.Op); ok {
			return int64(t.Y) + int64(math.Ceil(t.Z*float64(vl)))
		}
		return int64(p.DispatchLat)
	}
	if in.IsMemory() {
		return int64(p.ScalarLoadLat)
	}
	if in.Op == isa.OpHalt {
		return 0
	}
	return int64(p.ScalarOpLat)
}

// asuCost returns the minimum ASU clock advance of one instruction — the
// per-pass serial floor. Taken-branch penalties are excluded (the final
// pass falls through), keeping the figure a floor for every pass.
func asuCost(in isa.Instr, p Params) int64 {
	switch {
	case in.IsVector():
		return int64(p.DispatchLat)
	case in.Op == isa.OpHalt:
		return 0
	case in.Op == isa.OpJmp:
		return int64(p.ScalarOpLat + p.BranchPenalty)
	case in.IsMemory():
		return int64(p.ScalarLoadLat)
	}
	return int64(p.ScalarOpLat)
}

// longestFrom computes, over the timing-relevant non-carried edges, the
// longest weighted path from src to every node (negative = unreachable).
// Non-carried edges point forward, so one sweep in index order relaxes
// every path.
func longestFrom(g *Graph, adj [][]int, src, vl int, p Params) []int64 {
	dist := make([]int64, len(g.Body))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	for i := src; i < len(g.Body); i++ {
		if dist[i] < 0 {
			continue
		}
		for _, ei := range adj[i] {
			e := g.Edges[ei]
			w, ok := edgeWeight(g.Body, e, vl, p)
			if !ok {
				continue
			}
			if d := dist[i] + w; d > dist[e.To] {
				dist[e.To] = d
			}
		}
	}
	return dist
}

// adjacency indexes non-carried edges by From.
func adjacency(g *Graph) [][]int {
	adj := make([][]int, len(g.Body))
	for ei, e := range g.Edges {
		if !e.Carried {
			adj[e.From] = append(adj[e.From], ei)
		}
	}
	return adj
}

// CriticalPath computes the dependence bounds of a loop body at vector
// length vl. straight reports whether the body is straight-line (no
// branch except the final back branch, no internal entry) — the caller
// established this from the surrounding program; the per-pass bounds
// (IISerial, IICarried, CPL, TotalBound scaling) are only claimed then.
func CriticalPath(g *Graph, vl int, p Params, straight bool) CP {
	if vl < 1 {
		vl = 1
	}
	cp := CP{VL: vl, StraightLine: straight}
	n := len(g.Body)
	if n == 0 {
		return cp
	}
	adj := adjacency(g)

	est := func(atVL int) ([]int64, []int) {
		d := make([]int64, n)
		pred := make([]int, n)
		for i := range pred {
			pred[i] = -1
		}
		for i := 0; i < n; i++ {
			for _, ei := range adj[i] {
				e := g.Edges[ei]
				w, ok := edgeWeight(g.Body, e, atVL, p)
				if !ok {
					continue
				}
				if v := d[i] + w; v > d[e.To] {
					d[e.To] = v
					pred[e.To] = i
				}
			}
		}
		return d, pred
	}

	// One-pass critical path at the requested VL, with the realizing
	// chain for display.
	d, pred := est(vl)
	best := 0
	for i := 0; i < n; i++ {
		if L := d[i] + completion(g.Body[i], vl, p); L > cp.Len {
			cp.Len = L
			best = i
		}
	}
	for i := best; i >= 0; i = pred[i] {
		cp.Crit = append(cp.Crit, i)
	}
	for l, r := 0, len(cp.Crit)-1; l < r; l, r = l+1, r-1 {
		cp.Crit[l], cp.Crit[r] = cp.Crit[r], cp.Crit[l]
	}

	// Conservative VL=1 variants for TotalBound and the carried
	// recurrences (sound for every strip length).
	d1, _ := est(1)
	for i := 0; i < n; i++ {
		if L := d1[i] + completion(g.Body[i], 1, p); L > cp.len1 {
			cp.len1 = L
		}
	}

	for i := 0; i < n; i++ {
		cp.IISerial += asuCost(g.Body[i], p)
	}

	// Carried recurrences: for a carried edge u -> v, the next
	// iteration's v starts at least w after this iteration's u, and u
	// depends on v through the in-iteration path v => u; the cycle length
	// bounds the initiation interval.
	fromCache := map[int][]int64{}
	for _, e := range g.Edges {
		if !e.Carried {
			continue
		}
		w, ok := edgeWeight(g.Body, e, 1, p)
		if !ok {
			continue
		}
		var cyc int64
		if e.To == e.From {
			cyc = w
		} else {
			dist, okc := fromCache[e.To]
			if !okc {
				dist = longestFrom(g, adj, e.To, 1, p)
				fromCache[e.To] = dist
			}
			if dist[e.From] < 0 {
				continue // no in-iteration path back: no cycle
			}
			cyc = dist[e.From] + w
		}
		if cyc > cp.IICarried {
			cp.IICarried = cyc
		}
		cp.recs = append(cp.recs, recurrence{
			prefix: d1[e.From] + completion(g.Body[e.From], 1, p),
			cyc:    cyc,
		})
	}

	cp.II = cp.IISerial
	if cp.IICarried > cp.II {
		cp.II = cp.IICarried
	}
	if straight {
		cp.CPL = float64(cp.II) / float64(vl)
	}
	return cp
}

// TotalBound returns a provable lower bound on the total cycles of a run
// that executes the body at least strips times (each pass handling at
// most VL elements). For non-straight-line bodies only the single-pass
// critical path is claimed.
func (c CP) TotalBound(strips int64) int64 {
	if strips < 1 {
		strips = 1
	}
	b := c.len1
	if c.StraightLine {
		if v := strips * c.IISerial; v > b {
			b = v
		}
		for _, r := range c.recs {
			if v := r.prefix + (strips-1)*r.cyc; v > b {
				b = v
			}
		}
	}
	return b
}

// Analyze builds the dependence graph and critical path of a program's
// inner vectorized loop. ok is false when the program has no vectorized
// loop. Straight-lineness is established against the whole program: no
// branch inside the body except the final back branch, and no branch
// anywhere targeting the body's interior.
func Analyze(p *asm.Program, vl int, params Params) (CP, *Graph, bool) {
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		return CP{}, nil, false
	}
	g := Build(loop.Body)
	return CriticalPath(g, vl, params, straightLine(p, loop)), g, true
}

// straightLine reports whether a loop body is branch-free except for its
// final back branch and is entered only at its head.
func straightLine(p *asm.Program, loop asm.Loop) bool {
	for i := loop.Start; i < loop.End-1; i++ {
		if p.Instrs[i].IsBranch() || p.Instrs[i].Op == isa.OpHalt {
			return false
		}
	}
	if !p.Instrs[loop.End-1].IsBranch() {
		return false
	}
	for i, in := range p.Instrs {
		if !in.IsBranch() || i == loop.End-1 {
			continue
		}
		for _, o := range in.Ops {
			if o.Kind != isa.KindLabel {
				continue
			}
			if t, ok := p.Labels[o.Label]; ok && t > loop.Start && t < loop.End {
				return false
			}
		}
	}
	return true
}
