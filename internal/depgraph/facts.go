package depgraph

import (
	"macs/internal/asm"
	"macs/internal/isa"
	"macs/internal/mem"
)

// StreamFact is what the interval analysis can prove about one vector
// memory instruction's bank behavior, from its statically inferred
// stride range alone.
type StreamFact struct {
	// Idx is the instruction index in the program.
	Idx   int
	Instr isa.Instr
	// Stride is the inferred VS range in bytes at the instruction.
	Stride Interval
	// VL is the inferred vector length range at the instruction.
	VL Interval
	// ConflictFree is true when every stride the range admits is
	// provably conflict-free against the bank layout (the stall table's
	// closed-form path applies with zero bank stalls).
	ConflictFree bool
	// Conflicting is true when every admitted stride provably revisits a
	// bank within its cycle time (stride ≡ 0 mod banks·word guarantees
	// the worst case).
	Conflicting bool
}

// Proven reports whether the analysis decided the stream either way.
func (f StreamFact) Proven() bool { return f.ConflictFree || f.Conflicting }

// strideProbeCap bounds how many distinct stride values a bounded range
// may admit and still be proven element by element.
const strideProbeCap = 1024

// StreamFacts classifies every vector memory stream of a program against
// the bank layout using the converged interval states. Streams whose
// stride range is unbounded (or too wide to probe) yield an unproven
// fact.
func StreamFacts(p *asm.Program, iv *IntervalResult, cfg mem.Config) []StreamFact {
	var out []StreamFact
	for i, in := range p.Instrs {
		if !in.IsVector() || !in.IsMemory() {
			continue
		}
		f := StreamFact{
			Idx:    i,
			Instr:  in,
			Stride: iv.Reg(i, isa.VS()),
			VL:     iv.Reg(i, isa.VL()),
		}
		if f.Stride.Bounded() && !f.Stride.Empty() && f.Stride.Hi-f.Stride.Lo < strideProbeCap {
			free, conflict := true, true
			for s := f.Stride.Lo; s <= f.Stride.Hi; s++ {
				if cfg.UnitStrideConflictFree(s) {
					conflict = false
				} else {
					free = false
				}
				if s != 0 && s%(int64(cfg.Banks)*isa.WordBytes) != 0 {
					conflict = false
				}
			}
			f.ConflictFree, f.Conflicting = free, conflict
		}
		out = append(out, f)
	}
	return out
}
