package depgraph

import (
	"fmt"
	"math"

	"macs/internal/asm"
	"macs/internal/isa"
)

// Interval is one value range over int64, possibly unbounded on either
// side. The zero value is the unconstrained interval (top).
type Interval struct {
	Lo, Hi int64
	// LoBnd and HiBnd report whether the corresponding bound holds; an
	// unbounded side's numeric field is meaningless.
	LoBnd, HiBnd bool
}

// Top returns the unconstrained interval.
func Top() Interval { return Interval{} }

// Point returns the singleton interval [v, v].
func Point(v int64) Interval { return Interval{Lo: v, Hi: v, LoBnd: true, HiBnd: true} }

// Range returns the interval [lo, hi].
func Range(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi, LoBnd: true, HiBnd: true} }

// AtLeast returns [lo, +inf); AtMost returns (-inf, hi].
func AtLeast(lo int64) Interval { return Interval{Lo: lo, LoBnd: true} }
func AtMost(hi int64) Interval  { return Interval{Hi: hi, HiBnd: true} }

// IsPoint reports whether the interval is a single value.
func (iv Interval) IsPoint() (int64, bool) {
	if iv.LoBnd && iv.HiBnd && iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// Bounded reports whether both sides are finite.
func (iv Interval) Bounded() bool { return iv.LoBnd && iv.HiBnd }

// Empty reports an infeasible interval (refinement produced lo > hi).
func (iv Interval) Empty() bool { return iv.LoBnd && iv.HiBnd && iv.Lo > iv.Hi }

func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.LoBnd {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.HiBnd {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	if p, ok := iv.IsPoint(); ok {
		return fmt.Sprintf("%d", p)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

// addSat adds with saturation detection; ok is false on overflow.
func addSat(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	var out Interval
	if iv.LoBnd && o.LoBnd {
		if v, ok := addSat(iv.Lo, o.Lo); ok {
			out.Lo, out.LoBnd = v, true
		}
	}
	if iv.HiBnd && o.HiBnd {
		if v, ok := addSat(iv.Hi, o.Hi); ok {
			out.Hi, out.HiBnd = v, true
		}
	}
	return out
}

// Neg returns the negated interval.
func (iv Interval) Neg() Interval {
	var out Interval
	if iv.HiBnd && iv.Hi != math.MinInt64 {
		out.Lo, out.LoBnd = -iv.Hi, true
	}
	if iv.LoBnd && iv.Lo != math.MinInt64 {
		out.Hi, out.HiBnd = -iv.Lo, true
	}
	return out
}

// Sub returns the interval difference.
func (iv Interval) Sub(o Interval) Interval { return iv.Add(o.Neg()) }

// Mul returns the interval product; unbounded unless both operands are
// bounded and no corner product overflows.
func (iv Interval) Mul(o Interval) Interval {
	if !iv.Bounded() || !o.Bounded() {
		return Top()
	}
	mul := func(a, b int64) (int64, bool) {
		if a == 0 || b == 0 {
			return 0, true
		}
		p := a * b
		if p/b != a {
			return 0, false
		}
		return p, true
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, a := range []int64{iv.Lo, iv.Hi} {
		for _, b := range []int64{o.Lo, o.Hi} {
			p, ok := mul(a, b)
			if !ok {
				return Top()
			}
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	return Range(lo, hi)
}

// Join returns the least interval containing both.
func (iv Interval) Join(o Interval) Interval {
	var out Interval
	if iv.LoBnd && o.LoBnd {
		out.LoBnd = true
		out.Lo = min64(iv.Lo, o.Lo)
	}
	if iv.HiBnd && o.HiBnd {
		out.HiBnd = true
		out.Hi = max64(iv.Hi, o.Hi)
	}
	return out
}

// Meet intersects two intervals; the result may be Empty.
func (iv Interval) Meet(o Interval) Interval {
	out := iv
	if o.LoBnd && (!out.LoBnd || o.Lo > out.Lo) {
		out.Lo, out.LoBnd = o.Lo, true
	}
	if o.HiBnd && (!out.HiBnd || o.Hi < out.Hi) {
		out.Hi, out.HiBnd = o.Hi, true
	}
	return out
}

// Widen drops any bound that moved since prev, guaranteeing termination
// of the fixpoint iteration.
func (iv Interval) Widen(prev Interval) Interval {
	out := iv
	if prev.LoBnd && iv.LoBnd && iv.Lo < prev.Lo {
		out.LoBnd = false
	}
	if !prev.LoBnd {
		out.LoBnd = false
	}
	if prev.HiBnd && iv.HiBnd && iv.Hi > prev.Hi {
		out.HiBnd = false
	}
	if !prev.HiBnd {
		out.HiBnd = false
	}
	return out
}

// Clamp intersects with [lo, hi] after the machine's clamp semantics
// (values below lo map to lo, above hi to hi), so the result is always
// bounded.
func (iv Interval) Clamp(lo, hi int64) Interval {
	l, h := lo, hi
	if iv.LoBnd {
		l = clamp64(iv.Lo, lo, hi)
	}
	if iv.HiBnd {
		h = clamp64(iv.Hi, lo, hi)
	}
	return Range(l, h)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Env is the abstract state at one program point: one interval per
// scalar register slot (a, s, vl, vs). Vector registers and the T flag
// carry no interval.
type Env struct {
	regs [gSlotT]Interval // a, s, v (unused), vl, vs
	live bool
}

// Reg returns the interval of one register (top for vector registers).
func (e *Env) Reg(r isa.Reg) Interval {
	s := gSlot(r)
	if s < 0 || s >= gSlotT || r.Class == isa.ClassV {
		return Top()
	}
	return e.regs[s]
}

func (e *Env) set(s int, iv Interval) {
	if s >= 0 && s < gSlotT {
		e.regs[s] = iv
	}
}

// join merges src into e; changed reports growth.
func (e *Env) join(src *Env) (changed bool) {
	if !src.live {
		return false
	}
	if !e.live {
		*e = *src
		return true
	}
	for i := range e.regs {
		n := e.regs[i].Join(src.regs[i])
		if n != e.regs[i] {
			e.regs[i] = n
			changed = true
		}
	}
	return changed
}

// widen joins src into e with widening on moved bounds.
func (e *Env) widen(src *Env) (changed bool) {
	if !src.live {
		return false
	}
	if !e.live {
		*e = *src
		return true
	}
	for i := range e.regs {
		n := e.regs[i].Join(src.regs[i]).Widen(e.regs[i])
		if n != e.regs[i] {
			e.regs[i] = n
			changed = true
		}
	}
	return changed
}

// IntervalResult carries the converged per-instruction entry states.
type IntervalResult struct {
	// Pre[i] is the abstract state before instruction i; Pre[i].live is
	// false for statically unreachable instructions.
	Pre []Env
}

// Reg returns the interval of a register before instruction idx.
func (r *IntervalResult) Reg(idx int, reg isa.Reg) Interval {
	if r == nil || idx < 0 || idx >= len(r.Pre) || !r.Pre[idx].live {
		return Top()
	}
	return r.Pre[idx].Reg(reg)
}

// widenAfter is the number of times a block's entry state may grow by
// plain join before widening kicks in; narrowRounds re-applies the
// transfer that many times afterwards to recover widened-away bounds.
const (
	widenAfter   = 3
	narrowRounds = 3
)

// cmpFact remembers the last scalar integer compare of a block so the
// branch that consumes it can refine operand ranges on its out-edges.
type cmpFact struct {
	valid bool
	op    isa.Op
	// slot/rhs describe "slot OP rhs" with rhs a known interval; when
	// the register was the right operand the op has been flipped.
	slot int
	rhs  Interval
}

// Intervals runs the interval abstract interpretation over a whole
// program: a forward fixpoint on its CFG with widening, constants and
// integer ALU folded to ranges, VL writes clamped to [0, VLMax] like the
// machine, and compare-plus-branch pairs refining ranges on both edges.
// Loads and floating-point results are unconstrained.
func Intervals(p *asm.Program) *IntervalResult {
	res := &IntervalResult{Pre: make([]Env, len(p.Instrs))}
	if len(p.Instrs) == 0 {
		return res
	}
	blocks, entry := buildBlocks(p)
	in := make([]Env, len(blocks))
	joins := make([]int, len(blocks))
	var e0 Env
	e0.live = true
	for i := range e0.regs {
		// Registers start zeroed, exactly as the machine images them.
		e0.regs[i] = Point(0)
	}
	in[entry] = e0

	flow := func(bi int, record bool) (outs []Env, targets []int) {
		st := in[bi]
		var cmp cmpFact
		b := blocks[bi]
		for i := b.start; i < b.end; i++ {
			if record {
				res.Pre[i] = st
			}
			stepInterval(&st, p.Instrs[i], &cmp)
		}
		if b.end == b.start {
			return nil, nil
		}
		last := p.Instrs[b.end-1]
		if last.Op == isa.OpJbrs && len(b.succs) > 0 && cmp.valid {
			// succs = [target, fallthrough?]: refine per edge. The taken
			// edge asserts the compare (inverted for .f), the
			// fallthrough edge its negation.
			takenTrue := last.Suffix != isa.SufF
			for si, succ := range b.succs {
				ref := st
				assert := takenTrue
				if si == 1 {
					assert = !assert
				}
				refine(&ref, cmp, assert)
				if ref.live {
					outs = append(outs, ref)
					targets = append(targets, succ)
				}
			}
			return outs, targets
		}
		for _, succ := range b.succs {
			outs = append(outs, st)
			targets = append(targets, succ)
		}
		return outs, targets
	}

	work := []int{entry}
	queued := make([]bool, len(blocks))
	queued[entry] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		queued[bi] = false
		outs, targets := flow(bi, false)
		for i, succ := range targets {
			var changed bool
			if joins[succ] >= widenAfter {
				changed = in[succ].widen(&outs[i])
			} else {
				changed = in[succ].join(&outs[i])
			}
			if changed {
				joins[succ]++
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	// Narrowing: re-apply the (monotone) transfer from the widened
	// post-fixpoint a few times with plain joins, recovering bounds the
	// widening discarded (e.g. a counter's loop-exit limit). Starting
	// above the least fixpoint keeps every round sound.
	for round := 0; round < narrowRounds; round++ {
		next := make([]Env, len(blocks))
		next[entry].join(&e0)
		for bi := range blocks {
			if !in[bi].live {
				continue
			}
			outs, targets := flow(bi, false)
			for i, succ := range targets {
				next[succ].join(&outs[i])
			}
		}
		in = next
	}
	// Recording pass over the converged states.
	for bi := range blocks {
		if in[bi].live {
			flow(bi, true)
		}
	}
	return res
}

// stepInterval applies one instruction to the abstract state.
func stepInterval(st *Env, in isa.Instr, cmp *cmpFact) {
	if isCompare(in.Op) {
		*cmp = compareFact(st, in)
		return
	}
	dst, hasDst := in.Dst()
	if !hasDst {
		return
	}
	s := gSlot(dst)
	if s < 0 || s >= gSlotT || dst.Class == isa.ClassV {
		return
	}
	if cmp.valid && s == cmp.slot {
		cmp.valid = false // the compared register is being overwritten
	}
	nv := Top()
	switch {
	case in.Suffix == isa.SufD || in.Suffix == isa.SufS:
		// Floating-point result: no integer range.
	case in.Op == isa.OpMov && len(in.Ops) == 2:
		nv = operandInterval(st, in.Ops[0])
	case in.Op == isa.OpLd:
		// Loaded values are runtime data.
	case isScalarIntALUOp(in):
		nv = aluInterval(st, in)
	case in.IsVector():
		// Vector op writing a scalar (sum.d) or other: unconstrained.
	}
	if s == gSlotVL {
		nv = nv.Clamp(0, int64(isa.VLMax))
	}
	st.set(s, nv)
}

func isScalarIntALUOp(in isa.Instr) bool {
	if in.IsVector() {
		return false
	}
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpNeg, isa.OpAnd, isa.OpOr, isa.OpShf:
		return len(in.Ops) == 2 || len(in.Ops) == 3
	}
	return false
}

func operandInterval(st *Env, o isa.Operand) Interval {
	switch o.Kind {
	case isa.KindImm:
		return Point(o.Imm)
	case isa.KindReg:
		return st.Reg(o.Reg)
	}
	return Top()
}

func aluInterval(st *Env, in isa.Instr) Interval {
	var x, y Interval
	dst := in.Ops[len(in.Ops)-1]
	if len(in.Ops) == 2 {
		if in.Op == isa.OpNeg {
			return operandInterval(st, in.Ops[0]).Neg()
		}
		x = operandInterval(st, dst)
		y = operandInterval(st, in.Ops[0])
	} else {
		x = operandInterval(st, in.Ops[0])
		y = operandInterval(st, in.Ops[1])
	}
	switch in.Op {
	case isa.OpAdd:
		return x.Add(y)
	case isa.OpSub:
		return x.Sub(y)
	case isa.OpMul:
		return x.Mul(y)
	case isa.OpDiv, isa.OpAnd, isa.OpOr, isa.OpShf:
		// Fold only point operands; ranges of these are rarely useful.
		xv, xok := x.IsPoint()
		yv, yok := y.IsPoint()
		if xok && yok {
			switch in.Op {
			case isa.OpDiv:
				if yv != 0 {
					return Point(xv / yv)
				}
			case isa.OpAnd:
				return Point(xv & yv)
			case isa.OpOr:
				return Point(xv | yv)
			case isa.OpShf:
				if yv >= 0 {
					return Point(xv << uint(yv&63))
				}
				return Point(xv >> uint((-yv)&63))
			}
		}
	}
	return Top()
}

// compareFact extracts a refinable fact from a scalar integer compare:
// one side a tracked register, the other a known interval.
func compareFact(st *Env, in isa.Instr) cmpFact {
	if in.Suffix == isa.SufD || in.Suffix == isa.SufS || len(in.Ops) != 2 {
		return cmpFact{}
	}
	slotOf := func(o isa.Operand) int {
		if o.Kind == isa.KindReg && o.Reg.Class != isa.ClassV {
			if s := gSlot(o.Reg); s >= 0 && s < gSlotT {
				return s
			}
		}
		return -1
	}
	l, r := slotOf(in.Ops[0]), slotOf(in.Ops[1])
	if l >= 0 {
		return cmpFact{valid: true, op: in.Op, slot: l, rhs: operandInterval(st, in.Ops[1])}
	}
	if r >= 0 {
		return cmpFact{valid: true, op: flipCmp(in.Op), slot: r, rhs: operandInterval(st, in.Ops[0])}
	}
	return cmpFact{}
}

// flipCmp rewrites "c OP x" as "x OP' c".
func flipCmp(op isa.Op) isa.Op {
	switch op {
	case isa.OpLe:
		return isa.OpGe
	case isa.OpLt:
		return isa.OpGt
	case isa.OpGt:
		return isa.OpLt
	case isa.OpGe:
		return isa.OpLe
	}
	return op // Eq, Ne are symmetric
}

// refine narrows the compared register's range along one branch edge.
// assert=true keeps states where "slot OP rhs" holds, false its negation.
func refine(st *Env, cmp cmpFact, assert bool) {
	op := cmp.op
	if !assert {
		switch op {
		case isa.OpLe:
			op = isa.OpGt
		case isa.OpLt:
			op = isa.OpGe
		case isa.OpGt:
			op = isa.OpLe
		case isa.OpGe:
			op = isa.OpLt
		case isa.OpEq:
			op = isa.OpNe
		case isa.OpNe:
			op = isa.OpEq
		}
	}
	cur := st.regs[cmp.slot]
	var ref Interval
	switch op {
	case isa.OpLe:
		if !cmp.rhs.HiBnd {
			return
		}
		ref = cur.Meet(AtMost(cmp.rhs.Hi))
	case isa.OpLt:
		if !cmp.rhs.HiBnd || cmp.rhs.Hi == math.MinInt64 {
			return
		}
		ref = cur.Meet(AtMost(cmp.rhs.Hi - 1))
	case isa.OpGe:
		if !cmp.rhs.LoBnd {
			return
		}
		ref = cur.Meet(AtLeast(cmp.rhs.Lo))
	case isa.OpGt:
		if !cmp.rhs.LoBnd || cmp.rhs.Lo == math.MaxInt64 {
			return
		}
		ref = cur.Meet(AtLeast(cmp.rhs.Lo + 1))
	case isa.OpEq:
		ref = cur.Meet(cmp.rhs)
	case isa.OpNe:
		// Only a point can be excluded, and only at a boundary.
		p, ok := cmp.rhs.IsPoint()
		if !ok {
			return
		}
		ref = cur
		if ref.LoBnd && ref.Lo == p {
			ref.Lo++
		}
		if ref.HiBnd && ref.Hi == p {
			ref.Hi--
		}
	default:
		return
	}
	if ref.Empty() {
		st.live = false
		return
	}
	st.set(cmp.slot, ref)
}

// iblock is one basic block of the interval CFG.
type iblock struct {
	start, end int
	// succs lists successor block indices: for a conditional branch the
	// taken target first, then the fallthrough.
	succs []int
}

// buildBlocks partitions a program into basic blocks (the same shape the
// verifier uses; duplicated here to keep the import graph acyclic).
func buildBlocks(p *asm.Program) (blocks []iblock, entry int) {
	n := len(p.Instrs)
	entryPC := 0
	if idx, ok := p.Labels["main"]; ok && idx >= 0 && idx < n {
		entryPC = idx
	}
	leader := make([]bool, n+1)
	leader[0] = true
	leader[entryPC] = true
	for i, in := range p.Instrs {
		if in.IsBranch() {
			leader[i+1] = true
			if t, ok := labelTarget(p, in); ok && t < n {
				leader[t] = true
			}
		}
		if in.Op == isa.OpHalt {
			leader[i+1] = true
		}
	}
	startOf := make(map[int]int)
	for i := 0; i < n; i++ {
		if leader[i] {
			startOf[i] = len(blocks)
			blocks = append(blocks, iblock{start: i})
		}
	}
	for bi := range blocks {
		end := n
		if bi+1 < len(blocks) {
			end = blocks[bi+1].start
		}
		blocks[bi].end = end
		if end == blocks[bi].start {
			continue
		}
		last := p.Instrs[end-1]
		switch {
		case last.Op == isa.OpHalt:
		case last.IsBranch():
			if t, ok := labelTarget(p, last); ok && t < n {
				blocks[bi].succs = append(blocks[bi].succs, startOf[t])
			}
			if last.Op == isa.OpJbrs && end < n {
				blocks[bi].succs = append(blocks[bi].succs, startOf[end])
			}
		default:
			if end < n {
				blocks[bi].succs = append(blocks[bi].succs, startOf[end])
			}
		}
	}
	return blocks, startOf[entryPC]
}

func labelTarget(p *asm.Program, in isa.Instr) (int, bool) {
	for _, o := range in.Ops {
		if o.Kind == isa.KindLabel {
			t, ok := p.Labels[o.Label]
			return t, ok && t >= 0
		}
	}
	return 0, false
}
