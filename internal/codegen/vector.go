package codegen

import (
	"fmt"

	"macs/internal/ftn"
	"macs/internal/isa"
	"macs/internal/vectorize"
)

// streamGroup is a set of memory streams sharing one advancing address
// register: same element stride and same loop-invariant base expression.
type streamGroup struct {
	strideElems int64
	baseKey     string
	base        ftn.Expr
	reg         isa.Reg
}

// vloop carries the state of one vector-loop emission.
type vloop struct {
	g      *gen
	res    *vectorize.Result
	groups map[string]*streamGroup
	order  []*vectorize.Node // emission order of vector-producing nodes
	// uses counts remaining consumers of each vector node; lastUse is the
	// position of the final consumer.
	uses    map[int]int
	lastUse map[int]int
	pos     map[int]int
	// scalars: slot register per scalar-operand node, or reload symbol
	// for overflow values fetched inside the loop (the LFK8 effect).
	slotOf   map[int]isa.Reg
	reloadOf map[int]string
	// vector register state.
	regOwner map[int]*vectorize.Node // reg number -> node
	nodeReg  map[int]isa.Reg         // node id -> register
	spilled  map[int]string          // node id -> spill symbol
	reserved map[int]bool            // accumulator registers
	pinned   map[int]bool            // operands of the instruction in flight
	accReg   []isa.Reg               // per reduction
	rrNext   int                     // round-robin allocation pointer
	curVS    int64
	emitted  map[int]bool
}

const revolvingSlot = 6 // s6 doubles as the in-loop reload register

// emitVectorLoop lowers a vectorized inner loop to a strip-mined vector
// loop in the style of the paper's LFK1 listing (§3.5).
func (g *gen) emitVectorLoop(res *vectorize.Result) error {
	v := &vloop{
		g:        g,
		res:      res,
		groups:   make(map[string]*streamGroup),
		uses:     make(map[int]int),
		lastUse:  make(map[int]int),
		pos:      make(map[int]int),
		slotOf:   make(map[int]isa.Reg),
		reloadOf: make(map[int]string),
		regOwner: make(map[int]*vectorize.Node),
		nodeReg:  make(map[int]isa.Reg),
		spilled:  make(map[int]string),
		reserved: make(map[int]bool),
		pinned:   make(map[int]bool),
		emitted:  make(map[int]bool),
		curVS:    -1,
	}
	if err := v.plan(); err != nil {
		return err
	}
	return v.emit()
}

// isScalarNode reports whether a node broadcasts a loop-invariant scalar
// (no vector register needed).
func isScalarNode(n *vectorize.Node) bool {
	switch n.Kind {
	case vectorize.NConst, vectorize.NScalar:
		return true
	case vectorize.NBin:
		return isScalarNode(n.X) && isScalarNode(n.Y)
	case vectorize.NNeg:
		return isScalarNode(n.X)
	}
	return false
}

// plan assigns stream groups, scalar slots and the emission order.
func (v *vloop) plan() error {
	res := v.res
	// Stream groups in first-appearance order.
	groupRegs := []isa.Reg{isa.A(3), isa.A(4), isa.A(5), isa.A(6), isa.A(7)}
	var scalars []*vectorize.Node
	seenScalar := make(map[int]bool)
	for _, n := range res.Nodes {
		switch {
		case n.Kind == vectorize.NLoad || n.Kind == vectorize.NStore:
			key := fmt.Sprintf("%d|%s", n.Aff.Stride, n.Aff.BaseKey())
			if _, ok := v.groups[key]; !ok {
				if len(v.groups) == len(groupRegs) {
					return fmt.Errorf("codegen: too many distinct memory stream groups (max %d)", len(groupRegs))
				}
				v.groups[key] = &streamGroup{
					strideElems: n.Aff.Stride,
					baseKey:     n.Aff.BaseKey(),
					base:        n.Aff.Base,
					reg:         groupRegs[len(v.groups)],
				}
			}
		case isScalarNode(n) && !seenScalar[n.ID]:
			if v.usedAsOperand(n) {
				seenScalar[n.ID] = true
				scalars = append(scalars, n)
			}
		}
	}
	// Scalar slot assignment: values that must be register-resident first
	// (array-element broadcasts and invariant arithmetic have no simple
	// reload address), then constants and plain scalars.
	slots := v.g.opts.FPSlots
	var mustResident, mayReload []*vectorize.Node
	for _, n := range scalars {
		if reloadSym(v.g, n) == "" {
			mustResident = append(mustResident, n)
		} else {
			mayReload = append(mayReload, n)
		}
	}
	ordered := append(append([]*vectorize.Node{}, mustResident...), mayReload...)
	resident := slots
	if len(ordered) > slots {
		resident = revolvingSlot - 1 // s1..s5 stay resident, s6 revolves
	}
	if len(mustResident) > resident {
		return fmt.Errorf("codegen: too many loop-invariant scalar operands (%d need residency, %d slots)", len(mustResident), resident)
	}
	for i, n := range ordered {
		if i < resident {
			v.slotOf[n.ID] = isa.S(i + 1)
		} else {
			v.reloadOf[n.ID] = reloadSym(v.g, n)
		}
	}
	// Reduction accumulators reserve the highest vector registers.
	if len(res.Reductions) > 4 {
		return fmt.Errorf("codegen: too many reductions (%d)", len(res.Reductions))
	}
	for i := range res.Reductions {
		r := isa.V(isa.NumVRegs - 1 - i)
		v.reserved[r.N] = true
		v.accReg = append(v.accReg, r)
	}
	// Emission order: depth-first from each sink in statement order, with
	// the deeper subtree first (Sethi-Ullman). This keeps each load next
	// to its consumer, reproducing the chime structure of the paper's fc
	// listing for LFK1.
	var visit func(n *vectorize.Node)
	visited := make(map[int]bool)
	visit = func(n *vectorize.Node) {
		if visited[n.ID] || isScalarNode(n) {
			return
		}
		visited[n.ID] = true
		for _, a := range n.After {
			visit(a) // anti-dependence: the old value is read first
		}
		x, y := n.X, n.Y
		if x != nil && y != nil && nodeDepth(y) > nodeDepth(x) {
			x, y = y, x
		}
		if x != nil {
			visit(x)
		}
		if y != nil {
			visit(y)
		}
		v.pos[n.ID] = len(v.order)
		v.order = append(v.order, n)
	}
	for _, st := range res.Stores {
		visit(st)
	}
	for _, r := range res.Reductions {
		visit(r.Expr)
	}
	// Consumer counts for register freeing.
	note := func(op, consumer *vectorize.Node) {
		if op == nil || isScalarNode(op) {
			return
		}
		v.uses[op.ID]++
		if p, ok := v.pos[consumer.ID]; ok && p > v.lastUse[op.ID] {
			v.lastUse[op.ID] = p
		}
	}
	for _, n := range v.order {
		note(n.X, n)
		note(n.Y, n)
	}
	for _, r := range res.Reductions {
		v.uses[r.Expr.ID]++
		v.lastUse[r.Expr.ID] = len(v.order) + 1
	}
	return nil
}

// usedAsOperand reports whether a scalar node feeds a vector operation
// (pure scalar subtrees of larger scalar nodes do not need their own slot).
func (v *vloop) usedAsOperand(n *vectorize.Node) bool {
	for _, m := range v.res.Nodes {
		for _, op := range []*vectorize.Node{m.X, m.Y} {
			if op == n && !isScalarNode(m) {
				return true
			}
		}
	}
	for _, r := range v.res.Reductions {
		if r.Expr == n {
			return true
		}
	}
	return false
}

// reloadSym returns the memory symbol a scalar-operand node can be
// reloaded from inside the loop, or "" when it has none.
func reloadSym(g *gen, n *vectorize.Node) string {
	switch n.Kind {
	case vectorize.NConst:
		return g.floatConst(n.Value)
	case vectorize.NScalar:
		if len(n.Scalar.Indices) == 0 {
			return SymName(n.Scalar.Name)
		}
	}
	return ""
}

func (v *vloop) emit() error {
	g := v.g
	ints := newPool(isa.A(0), isa.A(1), isa.A(2))
	res := v.res

	// Trip count: (hi - lo + step) / step, in s0 and a scratch slot.
	lo, hi := res.Loop.Lo, res.Loop.Hi
	step := ftn.Num{Val: float64(res.Step), IsInt: true}
	countExpr := ftn.Bin{Op: '/', L: ftn.Bin{Op: '+', L: ftn.Bin{Op: '-', L: hi, R: lo}, R: step}, R: step}
	rc, err := g.evalInt(countExpr, ints)
	if err != nil {
		return err
	}
	cntSym := g.scratchSym("vcnt", 8)
	g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(rc), isa.MemOp(cntSym, 0, isa.NoReg())}})
	g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.RegOp(rc), isa.RegOp(isa.S(0))}})
	ints.put(rc)
	end := g.freshLabel("VE")
	top := g.freshLabel("VL")
	g.emit(isa.Instr{Op: isa.OpLt, Suffix: isa.SufW, Ops: []isa.Operand{isa.ImmOp(0), isa.RegOp(isa.S(0))}})
	g.emit(isa.Instr{Op: isa.OpJbrs, Suffix: isa.SufF, Ops: []isa.Operand{isa.LabelOp(end)}})

	// Prologue: invariant scalars into their slots.
	if err := v.emitScalarSlots(ints); err != nil {
		return err
	}
	// Stream base registers: 8 * eval(base).
	for _, grp := range v.groupsInOrder() {
		if grp.base == nil {
			g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.ImmOp(0), isa.RegOp(grp.reg)}})
			continue
		}
		r, err := g.evalInt(grp.base, ints)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpMul, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(r), isa.ImmOp(8), isa.RegOp(r)}})
		g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.RegOp(r), isa.RegOp(grp.reg)}})
		ints.put(r)
	}
	// Reduction accumulators cleared from the zero vector. VL is set to
	// min(count, VLMax) — the hardware clamp on "mov s0,vl" — so short
	// loops do not pay for 128-element clears and sums.
	if len(res.Reductions) > 0 {
		g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.RegOp(isa.S(0)), isa.RegOp(isa.VL())}})
		v.setVS(8)
		for i := range res.Reductions {
			g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(g.zerosSym(), 0, isa.NoReg()), isa.RegOp(v.accReg[i])}})
		}
	}

	// Strip loop. VS is unknown at the loop head (the back edge arrives
	// with whatever stride the last memory operation used), so the first
	// memory operation of the body must re-establish it.
	g.placeLabel(top)
	v.curVS = -1
	g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.RegOp(isa.S(0)), isa.RegOp(isa.VL())}})
	for _, st := range res.Stores {
		if _, err := v.emitNode(st); err != nil {
			return err
		}
	}
	for i, r := range res.Reductions {
		op, err := v.emitNode(r.Expr)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpAdd, Suffix: isa.SufD, Ops: []isa.Operand{op, isa.RegOp(v.accReg[i]), isa.RegOp(v.accReg[i])}})
		v.release(r.Expr)
	}
	// Advance stream bases, decrement the count, loop.
	for _, grp := range v.groupsInOrder() {
		adv := 8 * grp.strideElems * int64(g.opts.VL)
		g.emit(isa.Instr{Op: isa.OpAdd, Suffix: isa.SufW, Ops: []isa.Operand{isa.ImmOp(adv), isa.RegOp(grp.reg)}})
	}
	g.emit(isa.Instr{Op: isa.OpSub, Suffix: isa.SufW, Ops: []isa.Operand{isa.ImmOp(int64(g.opts.VL)), isa.RegOp(isa.S(0))}})
	g.emit(isa.Instr{Op: isa.OpLt, Suffix: isa.SufW, Ops: []isa.Operand{isa.ImmOp(0), isa.RegOp(isa.S(0))}})
	g.emit(isa.Instr{Op: isa.OpJbrs, Suffix: isa.SufT, Ops: []isa.Operand{isa.LabelOp(top)}})

	// Epilogue: fold reductions into their targets and update secondary
	// induction variables.
	if len(res.Reductions) > 0 {
		// Final sums run at VL = min(count, VLMax): full strips filled all
		// VLMax partial slots, shorter totals touched only the first ones.
		rv, err := ints.get()
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(cntSym, 0, isa.NoReg()), isa.RegOp(rv)}})
		g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.RegOp(rv), isa.RegOp(isa.VL())}})
		ints.put(rv)
	}
	for i, r := range res.Reductions {
		g.emit(isa.Instr{Op: isa.OpSum, Suffix: isa.SufD, Ops: []isa.Operand{isa.RegOp(v.accReg[i]), isa.RegOp(isa.S(7))}})
		mem, err := g.lhsAddr(r.Target, ints)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{mem, isa.RegOp(isa.S(6))}})
		op := isa.OpAdd
		if r.Op == '-' {
			op = isa.OpSub
		}
		g.emit(isa.Instr{Op: op, Suffix: isa.SufD, Ops: []isa.Operand{isa.RegOp(isa.S(6)), isa.RegOp(isa.S(7)), isa.RegOp(isa.S(6))}})
		g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(isa.S(6)), mem}})
		if mem.Base.Class == isa.ClassA {
			ints.put(mem.Base)
		}
	}
	for _, si := range res.SecInds {
		ra, err := ints.get()
		if err != nil {
			return err
		}
		rb, err := ints.get()
		if err != nil {
			return err
		}
		varSym := SymName(si.Var)
		g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(varSym, 0, isa.NoReg()), isa.RegOp(ra)}})
		g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(cntSym, 0, isa.NoReg()), isa.RegOp(rb)}})
		if si.Inc != 1 {
			g.emit(isa.Instr{Op: isa.OpMul, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(rb), isa.ImmOp(si.Inc), isa.RegOp(rb)}})
		}
		g.emit(isa.Instr{Op: isa.OpAdd, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(ra), isa.RegOp(rb), isa.RegOp(ra)}})
		g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(ra), isa.MemOp(varSym, 0, isa.NoReg())}})
		ints.put(ra)
		ints.put(rb)
	}
	g.placeLabel(end)
	g.emit(isa.Instr{Op: isa.OpNop})
	return nil
}

// groupsInOrder returns stream groups by register number (stable).
func (v *vloop) groupsInOrder() []*streamGroup {
	out := make([]*streamGroup, 0, len(v.groups))
	for n := 3; n <= 7; n++ {
		for _, grp := range v.groups {
			if grp.reg == isa.A(n) {
				out = append(out, grp)
			}
		}
	}
	return out
}

// emitScalarSlots loads the loop's invariant scalar operands into their
// s-register slots.
func (v *vloop) emitScalarSlots(ints *regPool) error {
	g := v.g
	for _, n := range v.res.Nodes {
		slot, ok := v.slotOf[n.ID]
		if !ok {
			continue
		}
		switch n.Kind {
		case vectorize.NConst:
			g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(g.floatConst(n.Value), 0, isa.NoReg()), isa.RegOp(slot)}})
		case vectorize.NScalar:
			if len(n.Scalar.Indices) == 0 {
				g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(SymName(n.Scalar.Name), 0, isa.NoReg()), isa.RegOp(slot)}})
				continue
			}
			d, _ := g.prog.Decl(n.Scalar.Name)
			off, err := g.elementOffset(d, n.Scalar.Indices, ints)
			if err != nil {
				return err
			}
			g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(SymName(n.Scalar.Name), 0, off), isa.RegOp(slot)}})
			ints.put(off)
		default:
			// Invariant arithmetic: evaluate with scalar scratch and move
			// into the slot.
			if n.Src == nil {
				return fmt.Errorf("codegen: invariant node without source expression")
			}
			fps := newPool(isa.S(7), isa.S(6))
			r, err := g.evalFloat(n.Src, fps, ints)
			if err != nil {
				return err
			}
			g.emit(isa.Instr{Op: isa.OpMov, Suffix: isa.SufD, Ops: []isa.Operand{isa.RegOp(r), isa.RegOp(slot)}})
			fps.put(r)
		}
	}
	return nil
}

// setVS switches the vector stride register when needed.
func (v *vloop) setVS(bytes int64) {
	if v.curVS == bytes {
		return
	}
	v.g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.ImmOp(bytes), isa.RegOp(isa.VS())}})
	v.curVS = bytes
}

// scalarOperand returns the operand for a broadcast scalar node, emitting
// an in-loop reload when the value has no resident slot.
func (v *vloop) scalarOperand(n *vectorize.Node) (isa.Operand, error) {
	if slot, ok := v.slotOf[n.ID]; ok {
		return isa.RegOp(slot), nil
	}
	if sym, ok := v.reloadOf[n.ID]; ok {
		reload := isa.S(revolvingSlot)
		v.g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(sym, 0, isa.NoReg()), isa.RegOp(reload)}})
		return isa.RegOp(reload), nil
	}
	return isa.Operand{}, fmt.Errorf("codegen: scalar node %s has no slot", n)
}

// memOperand builds the memory operand of a load/store node.
func (v *vloop) memOperand(n *vectorize.Node) isa.Operand {
	key := fmt.Sprintf("%d|%s", n.Aff.Stride, n.Aff.BaseKey())
	grp := v.groups[key]
	return isa.MemOp(SymName(n.Array), 8*n.Aff.Const, grp.reg)
}

// nodeDepth is the height of a node's vector subtree (scalar broadcasts
// are free).
func nodeDepth(n *vectorize.Node) int {
	if n == nil || isScalarNode(n) {
		return 0
	}
	d := 1
	if x := nodeDepth(n.X); x+1 > d {
		d = x + 1
	}
	if y := nodeDepth(n.Y); y+1 > d {
		d = y + 1
	}
	return d
}

// allocReg finds a vector register for a node round-robin (like the fc
// compiler: a fresh register for each result, which keeps register-pair
// references per chime within the hardware limits), spilling the live
// value with the farthest next use when none is free.
func (v *vloop) allocReg(n *vectorize.Node) (isa.Reg, error) {
	for k := 0; k < isa.NumVRegs; k++ {
		r := (v.rrNext + k) % isa.NumVRegs
		if v.reserved[r] {
			continue
		}
		if _, busy := v.regOwner[r]; !busy {
			v.rrNext = (r + 1) % isa.NumVRegs
			v.regOwner[r] = n
			v.nodeReg[n.ID] = isa.V(r)
			return isa.V(r), nil
		}
	}
	// Spill the victim with the farthest last use, never a pinned operand
	// of the instruction being emitted.
	victimReg := -1
	far := -1
	for r, owner := range v.regOwner {
		if v.reserved[r] || v.pinned[owner.ID] {
			continue
		}
		if lu := v.lastUse[owner.ID]; lu > far {
			far = lu
			victimReg = r
		}
	}
	if victimReg < 0 {
		return isa.Reg{}, fmt.Errorf("codegen: no spillable vector register")
	}
	victim := v.regOwner[victimReg]
	sym := v.g.scratchSym(fmt.Sprintf("spill%d", victim.ID), int64(isa.VLMax)*8)
	v.setVS(8)
	v.g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(isa.V(victimReg)), isa.MemOp(sym, 0, isa.NoReg())}})
	v.spilled[victim.ID] = sym
	delete(v.nodeReg, victim.ID)
	v.regOwner[victimReg] = n
	v.nodeReg[n.ID] = isa.V(victimReg)
	return isa.V(victimReg), nil
}

// release decrements a node's pending uses, freeing its register after
// the last consumer.
func (v *vloop) release(n *vectorize.Node) {
	if n == nil || isScalarNode(n) {
		return
	}
	v.uses[n.ID]--
	if v.uses[n.ID] > 0 {
		return
	}
	if r, ok := v.nodeReg[n.ID]; ok {
		delete(v.regOwner, r.N)
		delete(v.nodeReg, n.ID)
	}
}

// nodeOperand materializes a node as an instruction operand: its vector
// register (reloading spills) or its scalar slot.
func (v *vloop) nodeOperand(n *vectorize.Node) (isa.Operand, error) {
	if isScalarNode(n) {
		return v.scalarOperand(n)
	}
	if r, ok := v.nodeReg[n.ID]; ok {
		return isa.RegOp(r), nil
	}
	if sym, ok := v.spilled[n.ID]; ok {
		r, err := v.allocReg(n)
		if err != nil {
			return isa.Operand{}, err
		}
		v.setVS(8)
		v.g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(sym, 0, isa.NoReg()), isa.RegOp(r)}})
		return isa.RegOp(r), nil
	}
	return isa.Operand{}, fmt.Errorf("codegen: node %s not materialized", n)
}

// emitNode emits a node (once) and returns its operand.
func (v *vloop) emitNode(n *vectorize.Node) (isa.Operand, error) {
	if isScalarNode(n) {
		return v.scalarOperand(n)
	}
	if v.emitted[n.ID] {
		return v.nodeOperand(n)
	}
	v.emitted[n.ID] = true
	for _, a := range n.After {
		// Anti-dependence: loads of the location this store overwrites.
		if _, err := v.emitNode(a); err != nil {
			return isa.Operand{}, err
		}
	}
	switch n.Kind {
	case vectorize.NLoad:
		v.setVS(8 * n.Aff.Stride)
		mem := v.memOperand(n)
		r, err := v.allocReg(n)
		if err != nil {
			return isa.Operand{}, err
		}
		v.g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{mem, isa.RegOp(r)}})
		return isa.RegOp(r), nil
	case vectorize.NStore:
		if isScalarNode(n.X) {
			// Storing a broadcast scalar: materialize it in a register.
			src, err := v.scalarOperand(n.X)
			if err != nil {
				return isa.Operand{}, err
			}
			r, err := v.allocReg(n)
			if err != nil {
				return isa.Operand{}, err
			}
			v.g.emit(isa.Instr{Op: isa.OpMov, Suffix: isa.SufD, Ops: []isa.Operand{src, isa.RegOp(r)}})
			v.setVS(8 * n.Aff.Stride)
			v.g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(r), v.memOperand(n)}})
			v.release(n) // frees the temporary register (no consumers)
			delete(v.regOwner, r.N)
			delete(v.nodeReg, n.ID)
			return isa.Operand{}, nil
		}
		if _, err := v.emitNode(n.X); err != nil {
			return isa.Operand{}, err
		}
		// Refresh the operand in case emitting other nodes spilled it.
		val, err := v.nodeOperand(n.X)
		if err != nil {
			return isa.Operand{}, err
		}
		v.setVS(8 * n.Aff.Stride)
		v.g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{val, v.memOperand(n)}})
		v.release(n.X)
		return isa.Operand{}, nil
	case vectorize.NNeg:
		if _, err := v.emitNode(n.X); err != nil {
			return isa.Operand{}, err
		}
		x, err := v.nodeOperand(n.X)
		if err != nil {
			return isa.Operand{}, err
		}
		v.release(n.X)
		r, err := v.allocReg(n)
		if err != nil {
			return isa.Operand{}, err
		}
		v.g.emit(isa.Instr{Op: isa.OpNeg, Suffix: isa.SufD, Ops: []isa.Operand{x, isa.RegOp(r)}})
		return isa.RegOp(r), nil
	case vectorize.NBin:
		// Emit vector subtrees deeper-first (matching the planned order);
		// scalar operands are fetched at use time so a reloaded value is
		// not clobbered by subtree emission.
		first, second := n.X, n.Y
		if nodeDepth(second) > nodeDepth(first) {
			first, second = second, first
		}
		if !isScalarNode(first) {
			if _, err := v.emitNode(first); err != nil {
				return isa.Operand{}, err
			}
		}
		if !isScalarNode(second) {
			if _, err := v.emitNode(second); err != nil {
				return isa.Operand{}, err
			}
		}
		v.pinned[n.X.ID], v.pinned[n.Y.ID] = true, true
		x, err := v.nodeOperand(n.X)
		if err != nil {
			return isa.Operand{}, err
		}
		y, err := v.nodeOperand(n.Y)
		if err != nil {
			return isa.Operand{}, err
		}
		delete(v.pinned, n.X.ID)
		delete(v.pinned, n.Y.ID)
		if isScalarNode(n.X) && isScalarNode(n.Y) {
			return isa.Operand{}, fmt.Errorf("codegen: both operands of a vector op are scalar")
		}
		if x.Kind == isa.KindReg && y.Kind == isa.KindReg &&
			x.Reg == isa.S(revolvingSlot) && y.Reg == isa.S(revolvingSlot) {
			return isa.Operand{}, fmt.Errorf("codegen: two reloaded scalars in one vector op")
		}
		v.release(n.X)
		v.release(n.Y)
		r, err := v.allocReg(n)
		if err != nil {
			return isa.Operand{}, err
		}
		op, err := binOp(n.Op)
		if err != nil {
			return isa.Operand{}, err
		}
		v.g.emit(isa.Instr{Op: op, Suffix: isa.SufD, Ops: []isa.Operand{x, y, isa.RegOp(r)}})
		return isa.RegOp(r), nil
	}
	return isa.Operand{}, fmt.Errorf("codegen: cannot emit node %s", n)
}
