// Package codegen lowers Fortran-subset programs to Convex-style assembly.
// Innermost loops that the vectorizer accepts become strip-mined (VL=128)
// vector loops in the style of the paper's LFK1 listing; everything else
// becomes scalar ASU code.
//
// Register conventions:
//
//	s0        strip-loop remaining element count
//	s1..s6    floating point constants/broadcast scalars of the vector
//	          loop (overflow values are reloaded inside the loop, which
//	          splits chimes exactly as the paper observes for LFK8)
//	s5..s7    scalar-code floating point scratch (outside vector loops)
//	a0..a2    scalar-code integer/address scratch
//	a3..a7    vector stream base offsets, one per (stride, base) group
//	v0..v7    vector DAG values; reduction accumulators are reserved
//	          across the strip loop
//
// Options and the Compile entry point live here; the vector-loop emitter
// is in vector.go.
package codegen

import (
	"fmt"
	"math"

	"macs/internal/asm"
	"macs/internal/ftn"
	"macs/internal/isa"
	"macs/internal/vectorize"
)

// Options tunes code generation; use DefaultOptions.
type Options struct {
	// VL is the strip length (hardware vector length).
	VL int
	// FPSlots is the number of s registers available for loop-resident
	// floating point scalars (s1..s1+FPSlots-1).
	FPSlots int
	// ForceScalar disables vectorization entirely (every loop compiles to
	// scalar code) — the baseline a vector machine is compared against.
	ForceScalar bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{VL: isa.VLMax, FPSlots: 6}
}

// Compile lowers a checked program to assembly.
func Compile(prog *ftn.Program, opts Options) (*asm.Program, error) {
	if opts.VL <= 0 || opts.VL > isa.VLMax {
		return nil, fmt.Errorf("codegen: bad VL %d", opts.VL)
	}
	g := &gen{
		prog:      prog,
		opts:      opts,
		out:       &asm.Program{},
		ftnLabels: make(map[int]string),
		interned:  make(map[string]string),
	}
	for _, d := range prog.Decls {
		g.out.AddData(asm.DataDef{Name: SymName(d.Name), Size: int64(d.Elems()) * 8})
	}
	// Pre-create assembly labels for Fortran statement labels.
	ftn.Walk(prog.Body, func(s ftn.Stmt) {
		if l := s.StmtLabel(); l != 0 {
			g.ftnLabels[l] = fmt.Sprintf("F%d", l)
		}
	})
	if err := g.emitBody(prog.Body); err != nil {
		return nil, err
	}
	g.emit(isa.Instr{Op: isa.OpHalt})
	if err := g.out.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: generated invalid assembly: %w", err)
	}
	return g.out, nil
}

// SymName maps a Fortran name to its assembly data symbol.
func SymName(name string) string { return "d_" + name }

type gen struct {
	prog      *ftn.Program
	opts      Options
	out       *asm.Program
	labelN    int
	ftnLabels map[int]string
	interned  map[string]string // value key -> symbol (float consts, temps)
	pending   []string          // labels to attach to the next instruction
}

func (g *gen) emit(in isa.Instr) {
	for _, l := range g.pending {
		g.out.SetLabel(l)
	}
	if len(g.pending) > 0 {
		in.Label = g.pending[0]
		g.pending = nil
	}
	g.out.Instrs = append(g.out.Instrs, in)
}

func (g *gen) placeLabel(name string) { g.pending = append(g.pending, name) }

func (g *gen) freshLabel(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

// floatConst interns a float constant in the data section.
func (g *gen) floatConst(v float64) string {
	key := fmt.Sprintf("f|%x", math.Float64bits(v))
	if s, ok := g.interned[key]; ok {
		return s
	}
	name := fmt.Sprintf("fc%d", len(g.interned))
	g.interned[key] = name
	g.out.AddData(asm.DataDef{Name: name, Size: 8, Init: []float64{v}})
	return name
}

// scratchSym interns a named scratch slot of the given size.
func (g *gen) scratchSym(tag string, size int64) string {
	key := "t|" + tag
	if s, ok := g.interned[key]; ok {
		return s
	}
	name := "tmp_" + tag
	g.interned[key] = name
	g.out.AddData(asm.DataDef{Name: name, Size: size})
	return name
}

// zerosSym interns the 128-element zero vector used to clear reduction
// accumulators (memory is zero-initialized).
func (g *gen) zerosSym() string {
	key := "z|"
	if s, ok := g.interned[key]; ok {
		return s
	}
	g.interned[key] = "zeros128"
	g.out.AddData(asm.DataDef{Name: "zeros128", Size: int64(isa.VLMax) * 8})
	return "zeros128"
}

// regPool hands out scratch registers and reports exhaustion.
type regPool struct {
	regs []isa.Reg
	used []bool
}

func newPool(regs ...isa.Reg) *regPool {
	return &regPool{regs: regs, used: make([]bool, len(regs))}
}

func (p *regPool) get() (isa.Reg, error) {
	for i, u := range p.used {
		if !u {
			p.used[i] = true
			return p.regs[i], nil
		}
	}
	return isa.Reg{}, fmt.Errorf("codegen: expression too deep for scratch registers")
}

func (p *regPool) put(r isa.Reg) {
	for i, reg := range p.regs {
		if reg == r {
			p.used[i] = false
			return
		}
	}
}

// emitBody lowers a statement list.
func (g *gen) emitBody(body []ftn.Stmt) error {
	for _, s := range body {
		if l := s.StmtLabel(); l != 0 {
			g.placeLabel(g.ftnLabels[l])
		}
		switch st := s.(type) {
		case *ftn.Assign:
			if err := g.emitScalarAssign(st); err != nil {
				return err
			}
		case *ftn.Continue:
			g.emit(isa.Instr{Op: isa.OpNop})
		case *ftn.Goto:
			g.emit(isa.Instr{Op: isa.OpJmp, Ops: []isa.Operand{isa.LabelOp(g.ftnLabels[st.Target])}})
		case *ftn.IfGoto:
			if err := g.emitIfGoto(st); err != nil {
				return err
			}
		case *ftn.DoStmt:
			if err := g.emitDo(st); err != nil {
				return err
			}
		default:
			return fmt.Errorf("codegen: unsupported statement %T", s)
		}
	}
	return nil
}

// emitDo lowers a DO loop: vectorized when innermost and analyzable,
// scalar otherwise.
func (g *gen) emitDo(do *ftn.DoStmt) error {
	if !g.opts.ForceScalar && isInnermost(do) {
		if res, err := vectorize.Vectorize(g.prog, do); err == nil {
			return g.emitVectorLoop(res)
		}
	}
	return g.emitScalarDo(do)
}

func isInnermost(do *ftn.DoStmt) bool {
	for _, s := range do.Body {
		if _, ok := s.(*ftn.DoStmt); ok {
			return false
		}
	}
	return true
}

// emitScalarDo lowers a DO loop entirely on the ASU.
func (g *gen) emitScalarDo(do *ftn.DoStmt) error {
	varSym := SymName(do.Var)
	top := g.freshLabel("LD")
	end := g.freshLabel("LE")
	ints := newPool(isa.A(0), isa.A(1), isa.A(2))
	r, err := g.evalInt(do.Lo, ints)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(r), isa.MemOp(varSym, 0, isa.NoReg())}})
	ints.put(r)
	g.placeLabel(top)
	// Exit test: var > hi (positive steps only).
	rv, err := g.evalInt(&ftn.Ref{Name: do.Var}, ints)
	if err != nil {
		return err
	}
	rh, err := g.evalInt(do.Hi, ints)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpGt, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(rv), isa.RegOp(rh)}})
	ints.put(rv)
	ints.put(rh)
	g.emit(isa.Instr{Op: isa.OpJbrs, Suffix: isa.SufT, Ops: []isa.Operand{isa.LabelOp(end)}})
	if err := g.emitBody(do.Body); err != nil {
		return err
	}
	// Increment.
	step := ftn.Expr(ftn.Num{Val: 1, IsInt: true})
	if do.Step != nil {
		step = do.Step
	}
	rv2, err := g.evalInt(&ftn.Ref{Name: do.Var}, ints)
	if err != nil {
		return err
	}
	rs, err := g.evalInt(step, ints)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpAdd, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(rv2), isa.RegOp(rs), isa.RegOp(rv2)}})
	g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(rv2), isa.MemOp(varSym, 0, isa.NoReg())}})
	ints.put(rv2)
	ints.put(rs)
	g.emit(isa.Instr{Op: isa.OpJmp, Ops: []isa.Operand{isa.LabelOp(top)}})
	g.placeLabel(end)
	g.emit(isa.Instr{Op: isa.OpNop})
	return nil
}

func (g *gen) emitIfGoto(st *ftn.IfGoto) error {
	lk, err := ftn.TypeOf(g.prog, st.Left)
	if err != nil {
		return err
	}
	rk, err := ftn.TypeOf(g.prog, st.Right)
	if err != nil {
		return err
	}
	var op isa.Op
	switch st.Rel {
	case "GT":
		op = isa.OpGt
	case "LT":
		op = isa.OpLt
	case "GE":
		op = isa.OpGe
	case "LE":
		op = isa.OpLe
	case "EQ":
		op = isa.OpEq
	case "NE":
		op = isa.OpNe
	default:
		return fmt.Errorf("codegen: unknown relation %s", st.Rel)
	}
	if lk == ftn.KindReal || rk == ftn.KindReal {
		fps := newPool(isa.S(1), isa.S(2), isa.S(3), isa.S(4), isa.S(5), isa.S(6), isa.S(7))
		ints := newPool(isa.A(0), isa.A(1), isa.A(2))
		l, err := g.evalFloat(st.Left, fps, ints)
		if err != nil {
			return err
		}
		r, err := g.evalFloat(st.Right, fps, ints)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: op, Suffix: isa.SufD, Ops: []isa.Operand{isa.RegOp(l), isa.RegOp(r)}})
	} else {
		ints := newPool(isa.A(0), isa.A(1), isa.A(2))
		l, err := g.evalInt(st.Left, ints)
		if err != nil {
			return err
		}
		r, err := g.evalInt(st.Right, ints)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: op, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(l), isa.RegOp(r)}})
	}
	g.emit(isa.Instr{Op: isa.OpJbrs, Suffix: isa.SufT, Ops: []isa.Operand{isa.LabelOp(g.ftnLabels[st.Target])}})
	return nil
}

// emitScalarAssign lowers an assignment outside any vector loop.
func (g *gen) emitScalarAssign(a *ftn.Assign) error {
	ints := newPool(isa.A(0), isa.A(1), isa.A(2))
	lk, err := ftn.TypeOf(g.prog, a.LHS)
	if err != nil {
		return err
	}
	if lk == ftn.KindInt {
		r, err := g.evalInt(a.RHS, ints)
		if err != nil {
			return err
		}
		mem, err := g.lhsAddr(a.LHS, ints)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(r), mem}})
		ints.put(r)
		return nil
	}
	fps := newPool(isa.S(1), isa.S(2), isa.S(3), isa.S(4), isa.S(5), isa.S(6), isa.S(7))
	r, err := g.evalFloat(a.RHS, fps, ints)
	if err != nil {
		return err
	}
	mem, err := g.lhsAddr(a.LHS, ints)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpSt, Suffix: isa.SufL, Ops: []isa.Operand{isa.RegOp(r), mem}})
	fps.put(r)
	return nil
}

// lhsAddr builds the memory operand of an assignment target.
func (g *gen) lhsAddr(r *ftn.Ref, ints *regPool) (isa.Operand, error) {
	d, ok := g.prog.Decl(r.Name)
	if !ok {
		return isa.Operand{}, fmt.Errorf("codegen: undeclared %s", r.Name)
	}
	if len(r.Indices) == 0 {
		return isa.MemOp(SymName(r.Name), 0, isa.NoReg()), nil
	}
	reg, err := g.elementOffset(d, r.Indices, ints)
	if err != nil {
		return isa.Operand{}, err
	}
	return isa.MemOp(SymName(r.Name), 0, reg), nil
}

// elementOffset computes the byte offset of an array element into an
// address register (column-major, 1-based).
func (g *gen) elementOffset(d ftn.Decl, indices []ftn.Expr, ints *regPool) (isa.Reg, error) {
	acc, err := ints.get()
	if err != nil {
		return acc, err
	}
	g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.ImmOp(0), isa.RegOp(acc)}})
	mult := int64(1)
	for i, ix := range indices {
		r, err := g.evalInt(ix, ints)
		if err != nil {
			return acc, err
		}
		g.emit(isa.Instr{Op: isa.OpSub, Suffix: isa.SufW, Ops: []isa.Operand{isa.ImmOp(1), isa.RegOp(r)}})
		if mult != 1 {
			g.emit(isa.Instr{Op: isa.OpMul, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(r), isa.ImmOp(mult), isa.RegOp(r)}})
		}
		g.emit(isa.Instr{Op: isa.OpAdd, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(acc), isa.RegOp(r), isa.RegOp(acc)}})
		ints.put(r)
		mult *= int64(d.Dims[i])
	}
	g.emit(isa.Instr{Op: isa.OpMul, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(acc), isa.ImmOp(8), isa.RegOp(acc)}})
	return acc, nil
}

// evalInt evaluates an integer expression into an address register.
func (g *gen) evalInt(e ftn.Expr, ints *regPool) (isa.Reg, error) {
	switch x := e.(type) {
	case ftn.Num:
		if !x.IsInt {
			return isa.Reg{}, fmt.Errorf("codegen: real literal in integer context")
		}
		r, err := ints.get()
		if err != nil {
			return r, err
		}
		g.emit(isa.Instr{Op: isa.OpMov, Ops: []isa.Operand{isa.ImmOp(int64(x.Val)), isa.RegOp(r)}})
		return r, nil
	case ftn.Neg:
		r, err := g.evalInt(x.X, ints)
		if err != nil {
			return r, err
		}
		g.emit(isa.Instr{Op: isa.OpNeg, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(r), isa.RegOp(r)}})
		return r, nil
	case *ftn.Ref:
		if len(x.Indices) != 0 {
			return isa.Reg{}, fmt.Errorf("codegen: integer arrays are not supported")
		}
		r, err := ints.get()
		if err != nil {
			return r, err
		}
		g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(SymName(x.Name), 0, isa.NoReg()), isa.RegOp(r)}})
		return r, nil
	case ftn.Bin:
		l, err := g.evalInt(x.L, ints)
		if err != nil {
			return l, err
		}
		r, err := g.evalInt(x.R, ints)
		if err != nil {
			return r, err
		}
		op, err := binOp(x.Op)
		if err != nil {
			return l, err
		}
		g.emit(isa.Instr{Op: op, Suffix: isa.SufW, Ops: []isa.Operand{isa.RegOp(l), isa.RegOp(r), isa.RegOp(l)}})
		ints.put(r)
		return l, nil
	}
	return isa.Reg{}, fmt.Errorf("codegen: unsupported integer expression %T", e)
}

// evalFloat evaluates a real expression into a scalar register.
func (g *gen) evalFloat(e ftn.Expr, fps, ints *regPool) (isa.Reg, error) {
	switch x := e.(type) {
	case ftn.Num:
		r, err := fps.get()
		if err != nil {
			return r, err
		}
		g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(g.floatConst(x.Val), 0, isa.NoReg()), isa.RegOp(r)}})
		return r, nil
	case ftn.Neg:
		r, err := g.evalFloat(x.X, fps, ints)
		if err != nil {
			return r, err
		}
		g.emit(isa.Instr{Op: isa.OpNeg, Suffix: isa.SufD, Ops: []isa.Operand{isa.RegOp(r), isa.RegOp(r)}})
		return r, nil
	case *ftn.Ref:
		d, ok := g.prog.Decl(x.Name)
		if !ok {
			return isa.Reg{}, fmt.Errorf("codegen: undeclared %s", x.Name)
		}
		if d.Kind != ftn.KindReal {
			return isa.Reg{}, fmt.Errorf("codegen: integer %s in real scalar context", x.Name)
		}
		r, err := fps.get()
		if err != nil {
			return r, err
		}
		if len(x.Indices) == 0 {
			g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(SymName(x.Name), 0, isa.NoReg()), isa.RegOp(r)}})
			return r, nil
		}
		off, err := g.elementOffset(d, x.Indices, ints)
		if err != nil {
			return r, err
		}
		g.emit(isa.Instr{Op: isa.OpLd, Suffix: isa.SufL, Ops: []isa.Operand{isa.MemOp(SymName(x.Name), 0, off), isa.RegOp(r)}})
		ints.put(off)
		return r, nil
	case ftn.Bin:
		// Deeper subtree first (Sethi-Ullman) to bound register pressure.
		var l, r isa.Reg
		var err error
		if exprDepth(x.R) > exprDepth(x.L) {
			r, err = g.evalFloat(x.R, fps, ints)
			if err != nil {
				return r, err
			}
			l, err = g.evalFloat(x.L, fps, ints)
		} else {
			l, err = g.evalFloat(x.L, fps, ints)
			if err != nil {
				return l, err
			}
			r, err = g.evalFloat(x.R, fps, ints)
		}
		if err != nil {
			return l, err
		}
		op, err := binOp(x.Op)
		if err != nil {
			return l, err
		}
		g.emit(isa.Instr{Op: op, Suffix: isa.SufD, Ops: []isa.Operand{isa.RegOp(l), isa.RegOp(r), isa.RegOp(l)}})
		fps.put(r)
		return l, nil
	}
	return isa.Reg{}, fmt.Errorf("codegen: unsupported real expression %T", e)
}

// exprDepth is the height of an expression tree.
func exprDepth(e ftn.Expr) int {
	switch x := e.(type) {
	case ftn.Bin:
		l, r := exprDepth(x.L), exprDepth(x.R)
		if r > l {
			l = r
		}
		return l + 1
	case ftn.Neg:
		return exprDepth(x.X) + 1
	default:
		return 1
	}
}

func binOp(op byte) (isa.Op, error) {
	switch op {
	case '+':
		return isa.OpAdd, nil
	case '-':
		return isa.OpSub, nil
	case '*':
		return isa.OpMul, nil
	case '/':
		return isa.OpDiv, nil
	}
	return isa.OpNop, fmt.Errorf("codegen: unknown operator %c", op)
}
