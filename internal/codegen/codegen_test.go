package codegen

import (
	"strings"
	"testing"

	"macs/internal/asm"
	"macs/internal/core"
	"macs/internal/ftn"
	"macs/internal/isa"
)

func compile(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := ftn.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSymName(t *testing.T) {
	if SymName("X") != "d_X" {
		t.Errorf("SymName(X) = %q", SymName("X"))
	}
}

func TestBadVL(t *testing.T) {
	prog := ftn.MustParse("PROGRAM P\nREAL A\nA = 1.0\nEND")
	for _, vl := range []int{0, -1, 129} {
		opts := DefaultOptions()
		opts.VL = vl
		if _, err := Compile(prog, opts); err == nil {
			t.Errorf("VL=%d accepted", vl)
		}
	}
}

func TestGeneratedAssemblyValidates(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL A(256), B(256)
INTEGER N, I
DO I = 1, N
  B(I) = A(I)*2.0
ENDDO
END
`)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round trip through text.
	q, err := asm.Parse(p.String())
	if err != nil {
		t.Fatalf("generated assembly does not re-parse: %v\n%s", err, p)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Errorf("round trip changed length %d -> %d", len(p.Instrs), len(q.Instrs))
	}
}

func TestStripLoopStructure(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL A(256), B(256)
INTEGER N, I
DO I = 1, N
  B(I) = A(I)*2.0
ENDDO
END
`)
	text := p.String()
	for _, want := range []string{
		"mov s0,vl",      // VL from the remaining count
		"sub.w #128,s0",  // strip decrement
		"lt.w #0,s0",     // continue test
		"add.w #1024,a3", // unit-stride group advance (128*8)
	} {
		if !strings.Contains(text, want) {
			t.Errorf("strip loop missing %q:\n%s", want, text)
		}
	}
}

func TestVSSwitchBetweenStrides(t *testing.T) {
	// Two strides in one loop: the body must set VS before each group's
	// first access, including after the back edge.
	p := compile(t, `
PROGRAM P
REAL A(4096), B(4096)
INTEGER N, I
DO I = 1, N
  B(I) = A(3*I)
ENDDO
END
`)
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		t.Fatal("no vector loop")
	}
	var vsSets int
	for _, in := range loop.Body {
		if in.Op == isa.OpMov && len(in.Ops) == 2 && in.Ops[1].Kind == isa.KindReg && in.Ops[1].Reg == isa.VS() {
			vsSets++
		}
	}
	if vsSets < 2 {
		t.Errorf("expected two VS switches in the loop body, got %d:\n%s", vsSets, p)
	}
}

func TestScalarBroadcastOperandsUseSlots(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL A(256), B(256), Q, R
INTEGER N, I
DO I = 1, N
  B(I) = Q*A(I) + R
ENDDO
END
`)
	loop, _ := asm.InnerVectorLoop(p)
	// No scalar loads inside the loop: two constants fit the slots.
	for _, in := range loop.Body {
		if !in.IsVector() && in.IsMemory() {
			t.Errorf("scalar memory access inside loop: %s", in)
		}
	}
}

func TestConstantOverflowReloadsInLoop(t *testing.T) {
	// Eight distinct constants exceed the six slots: the loop must
	// contain scalar reloads (the LFK8 effect), splitting chimes.
	p := compile(t, `
PROGRAM P
REAL A(256), B(256)
REAL C1, C2, C3, C4, C5, C6, C7, C8
INTEGER N, I
DO I = 1, N
  B(I) = C1*A(I) + C2*A(I) + C3*A(I) + C4*A(I) + C5*A(I) + C6*A(I) + C7*A(I) + C8*A(I)
ENDDO
END
`)
	loop, _ := asm.InnerVectorLoop(p)
	var reloads int
	for _, in := range loop.Body {
		if !in.IsVector() && in.IsLoad() {
			reloads++
		}
	}
	if reloads < 3 {
		t.Errorf("expected scalar constant reloads in loop, got %d:\n%s", reloads, p)
	}
	// And they split chimes: more chimes than the 2-3 a slot-resident
	// version would need.
	chimes := core.Partition(loop.Body, core.DefaultRules())
	if len(chimes) < 3 {
		t.Errorf("reloads should split chimes: got %d", len(chimes))
	}
}

func TestVectorRegisterSpill(t *testing.T) {
	// Nine simultaneously-live vector values force a spill with 8 regs.
	var b strings.Builder
	b.WriteString("PROGRAM P\nREAL B(512)\n")
	b.WriteString("REAL A1(512), A2(512), A3(512), A4(512), A5(512), A6(512), A7(512), A8(512), A9(512)\n")
	b.WriteString("INTEGER N, I\nDO I = 1, N\n")
	// Sum of products of pairs that keeps all nine loads live: the
	// pairwise products reference loads far apart.
	b.WriteString("  B(I) = (A1(I)-A2(I)) * (A3(I)-A4(I)) * (A5(I)-A6(I)) * (A7(I)-A8(I)) * A9(I) + A1(I)*A3(I)*A5(I)*A7(I)*A9(I)\n")
	b.WriteString("ENDDO\nEND\n")
	p := compile(t, b.String())
	loop, _ := asm.InnerVectorLoop(p)
	mac := core.WorkloadFromAssembly(loop.Body)
	// Spill traffic shows as extra vector loads or stores beyond the 9
	// input loads and 1 output store.
	if mac.Loads+mac.Stores <= 10 {
		t.Logf("no spill needed (allocator fit the DAG): loads=%d stores=%d", mac.Loads, mac.Stores)
	}
	// Whatever the allocator did, the code must be valid and runnable.
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeStrideCodegen(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL W(512), OUT(512)
INTEGER N, I, K
I = 300
CDIR$ IVDEP
DO K = 1, N
  OUT(K) = W(I-K)
ENDDO
END
`)
	loop, _ := asm.InnerVectorLoop(p)
	var negVS bool
	for _, in := range loop.Body {
		if in.Op == isa.OpMov && len(in.Ops) == 2 && in.Ops[0].Kind == isa.KindImm && in.Ops[0].Imm == -8 {
			negVS = true
		}
	}
	if !negVS {
		t.Errorf("negative-stride loop should set vs to -8:\n%s", p)
	}
}

func TestReductionEpilogue(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL A(512), Q
INTEGER N, I
DO I = 1, N
  Q = Q + A(I)
ENDDO
END
`)
	text := p.String()
	for _, want := range []string{"sum.d", "zeros128", "st.l s6,d_Q"} {
		if !strings.Contains(text, want) {
			t.Errorf("reduction epilogue missing %q:\n%s", want, text)
		}
	}
}

func TestTooManyStreamGroups(t *testing.T) {
	// Six distinct strides exceed the five address registers.
	src := `
PROGRAM P
REAL A(8192), B(8192)
INTEGER N, I
CDIR$ IVDEP
DO I = 1, N
  B(I) = A(2*I) + A(3*I) + A(5*I) + A(7*I) + A(11*I) + A(13*I)
ENDDO
END
`
	prog := ftn.MustParse(src)
	if _, err := Compile(prog, DefaultOptions()); err == nil {
		t.Error("six stride groups should exceed the address registers")
	} else if !strings.Contains(err.Error(), "stream groups") {
		// Must fail with the informative error, not something random.
		t.Errorf("unexpected error: %v", err)
	}
}

func TestIfGotoFloatComparison(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL A, B
INTEGER I
A = 1.0
B = 2.0
IF (A .LT. B) GOTO 10
A = 9.0
10 CONTINUE
END
`)
	var hasFloatCmp bool
	for _, in := range p.Instrs {
		if in.Op == isa.OpLt && in.Suffix == isa.SufD {
			hasFloatCmp = true
		}
	}
	if !hasFloatCmp {
		t.Errorf("float IF should emit lt.d:\n%s", p)
	}
}

func TestLabeledStatementsResolve(t *testing.T) {
	p := compile(t, `
PROGRAM P
INTEGER I
I = 0
100 CONTINUE
I = I + 1
IF (I .LT. 3) GOTO 100
END
`)
	if _, ok := p.Labels["F100"]; !ok {
		t.Errorf("Fortran label 100 not mapped:\n%s", p)
	}
}

func TestElementOffsetMultiDim(t *testing.T) {
	// Column-major: A(2,3) in A(4,8) is element (2-1)+(3-1)*4 = 9.
	p := compile(t, `
PROGRAM P
REAL A(4,8), Q
Q = A(2,3)
END
`)
	text := p.String()
	// The offset computation multiplies by the leading dimension 4 and by
	// 8 bytes.
	if !strings.Contains(text, "#4") || !strings.Contains(text, "#8") {
		t.Errorf("multi-dim offset arithmetic missing:\n%s", text)
	}
}

func TestZeroTripVectorLoopSkips(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL A(128), B(128)
INTEGER N, I
DO I = 1, N
  B(I) = A(I)
ENDDO
END
`)
	text := p.String()
	if !strings.Contains(text, "jbrs.f") {
		t.Errorf("zero-trip guard missing:\n%s", text)
	}
}

func TestDocumentedRegisterConventions(t *testing.T) {
	// The strip counter is s0 and stream bases start at a3 per the
	// package conventions.
	p := compile(t, `
PROGRAM P
REAL A(256), B(256)
INTEGER N, I
DO I = 1, N
  B(I) = A(I)
ENDDO
END
`)
	text := p.String()
	if !strings.Contains(text, "mov s0,vl") {
		t.Error("s0 is not the strip counter")
	}
	if !strings.Contains(text, "(a3)") {
		t.Error("a3 is not the first stream base")
	}
}

func TestCompileErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"mixed int/real compare", `
PROGRAM P
INTEGER I
REAL R
I = 1
R = 1.0
IF (I .GT. R) GOTO 10
10 CONTINUE
END
`, "real scalar context"}, // no implicit int->real conversion in this subset
		{"deep int expr", `
PROGRAM P
INTEGER A, B, C, D, E, F
A = ((B+C)*(D+E))*((B+D)*(C+F))*((B+F)*(C+D))
END
`, "too deep"},
	}
	for _, tc := range cases {
		prog, err := ftn.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		_, cerr := Compile(prog, DefaultOptions())
		if tc.want == "" {
			if cerr != nil {
				t.Errorf("%s: unexpected error %v", tc.name, cerr)
			}
			continue
		}
		if cerr == nil || !strings.Contains(cerr.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, cerr, tc.want)
		}
	}
}

func TestScalarDoWithStep(t *testing.T) {
	p := compile(t, `
PROGRAM P
REAL A(64), T
INTEGER I
T = 0.0
DO I = 1, 9, 2
  T = T + A(I)
ENDDO
END
`)
	// Reduction with array target is vectorized... T is scalar: the loop
	// vectorizes; just check it emits something valid either way.
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScalarLoops(t *testing.T) {
	// Two scalar levels around a vector loop; all three compile.
	p := compile(t, `
PROGRAM P
REAL A(64,8)
INTEGER I, J, K, N
DO K = 1, 2
DO J = 1, 8
DO I = 1, N
  A(I,J) = A(I,J) + 1.0
ENDDO
ENDDO
ENDDO
END
`)
	loops := 0
	for _, in := range p.Instrs {
		if in.Op == isa.OpJbrs {
			loops++
		}
	}
	if loops < 3 {
		t.Errorf("expected at least 3 loop branches, got %d", loops)
	}
}
