package service

import (
	"sort"
	"sync"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// latency histogram buckets; an implicit +Inf bucket follows.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// histogram is a fixed-bucket latency histogram in milliseconds.
type histogram struct {
	counts []int64 // len(latencyBucketsMS)+1, last is +Inf
	sumMS  float64
	maxMS  float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBucketsMS)+1)}
}

func (h *histogram) observe(ms float64) {
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.counts[i]++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// Metrics collects per-endpoint request counters and latency
// distributions. Cache, queue and dedup figures live on their owners and
// are merged into the Snapshot by the Service.
type Metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	count  int64
	errors int64
	hist   *histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics)}
}

// Observe records one finished request against endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[endpoint]
	if !ok {
		e = &endpointMetrics{hist: newHistogram()}
		m.endpoints[endpoint] = e
	}
	e.count++
	if failed {
		e.errors++
	}
	e.hist.observe(float64(d) / float64(time.Millisecond))
}

// BucketCount is one cumulative histogram bucket: requests that finished
// in at most LEMS milliseconds (LEMS < 0 encodes +Inf).
type BucketCount struct {
	LEMS  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// LatencySnapshot summarizes one endpoint's latency distribution.
type LatencySnapshot struct {
	MeanMS  float64       `json:"mean_ms"`
	MaxMS   float64       `json:"max_ms"`
	Buckets []BucketCount `json:"buckets"`
}

// EndpointSnapshot is one endpoint's counters on /metrics.
type EndpointSnapshot struct {
	Count   int64           `json:"count"`
	Errors  int64           `json:"errors"`
	Latency LatencySnapshot `json:"latency"`
}

// Snapshot is the full /metrics document.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Cache         CacheStats                  `json:"cache"`
	Queue         PoolStats                   `json:"queue"`
	// DedupShared counts requests that attached to another request's
	// in-flight computation instead of starting their own.
	DedupShared int64 `json:"dedup_shared"`
	// PipelineRuns counts actual executions of the underlying analysis
	// pipeline (cache misses that ran to completion or error).
	PipelineRuns int64 `json:"pipeline_runs"`
	// StallCycles aggregates simulated cycle attribution by cause (issue
	// cycles under "issue") over every fresh pipeline run.
	StallCycles map[string]int64 `json:"stall_cycles"`
	// SimPool reports the analyzer's simulator pool: CPUs created versus
	// runs served by a recycled one.
	SimPool SimPoolStats `json:"sim_pool"`
	// FastTier reports the analytical tier: requests served, fallbacks,
	// and the live predicted-vs-simulated divergence per kernel class.
	FastTier FastTierStats `json:"fast_tier"`
	// Persistent reports the disk-backed second-level cache; all-zero
	// (Enabled false) when the service runs memory-only.
	Persistent DiskCacheStats `json:"persistent_cache"`
}

// FastTierStats is the fast_tier section of /metrics.
type FastTierStats struct {
	// Served counts fresh fast-tier computations (tier=fast and the fast
	// half of tier=auto). Cache hits and singleflight waiters are
	// excluded, so a kernel replayed N times counts once.
	Served int64 `json:"served"`
	// Fallbacks counts auto requests whose timing was data-dependent and
	// were served by the simulator instead.
	Fallbacks int64 `json:"fallbacks"`
	// Verified counts completed predicted-vs-simulated comparisons (the
	// sum of the per-class sample counts).
	Verified int64 `json:"verified"`
	// Classes is the divergence aggregate per calibration class.
	Classes map[string]DivergenceStats `json:"classes,omitempty"`
}

// DivergenceStats summarizes |predicted − simulated| / simulated over
// the auto-tier requests of one kernel class.
type DivergenceStats struct {
	Count      int64   `json:"count"`
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
}

// SimPoolStats is the simulator-pool section of /metrics.
type SimPoolStats struct {
	Created  int64 `json:"created"`
	Recycled int64 `json:"recycled"`
}

// snapshotEndpoints renders the per-endpoint section.
func (m *Metrics) snapshotEndpoints() map[string]EndpointSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(m.endpoints))
	for name, e := range m.endpoints {
		ls := LatencySnapshot{MaxMS: e.hist.maxMS}
		if e.count > 0 {
			ls.MeanMS = e.hist.sumMS / float64(e.count)
		}
		var cum int64
		for i, n := range e.hist.counts {
			cum += n
			le := -1.0 // +Inf
			if i < len(latencyBucketsMS) {
				le = latencyBucketsMS[i]
			}
			ls.Buckets = append(ls.Buckets, BucketCount{LEMS: le, Count: cum})
		}
		out[name] = EndpointSnapshot{Count: e.count, Errors: e.errors, Latency: ls}
	}
	return out
}
