package service

import (
	"sort"
	"sync"
	"time"

	"macs/internal/obs"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// endpoint latency histogram buckets; an implicit +Inf bucket follows.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// stageBucketsMS bound the per-stage histograms: pipeline stages run in
// microseconds to low milliseconds, an order of magnitude under whole
// requests, so they get their own finer scale.
var stageBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// histogram is a fixed-bucket latency histogram in milliseconds.
type histogram struct {
	buckets []float64 // upper bounds; an implicit +Inf bucket follows
	counts  []int64   // len(buckets)+1, last is +Inf
	sumMS   float64
	maxMS   float64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]int64, len(buckets)+1)}
}

func (h *histogram) observe(ms float64) {
	i := sort.SearchFloat64s(h.buckets, ms)
	h.counts[i]++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// Metrics collects per-endpoint request counters and latency
// distributions, per-stage pipeline latency distributions, and per-item
// batch outcomes. Cache, queue and dedup figures live on their owners and
// are merged into the Snapshot by the Service.
type Metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	stages    map[string]*stageMetrics
	// batchItems counts individual batch items by outcome ("ok",
	// "cached", "error") — batch items do not inflate the per-endpoint
	// request counters with a second label dimension; they get their own
	// family instead.
	batchItems map[string]int64
}

type endpointMetrics struct {
	count  int64
	errors int64
	hist   *histogram
}

type stageMetrics struct {
	count int64
	hist  *histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:      time.Now(),
		endpoints:  make(map[string]*endpointMetrics),
		stages:     make(map[string]*stageMetrics),
		batchItems: make(map[string]int64),
	}
}

// Observe records one finished request against endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[endpoint]
	if !ok {
		e = &endpointMetrics{hist: newHistogram(latencyBucketsMS)}
		m.endpoints[endpoint] = e
	}
	e.count++
	if failed {
		e.errors++
	}
	e.hist.observe(float64(d) / float64(time.Millisecond))
}

// ObserveStage folds one pipeline stage duration (from a request trace's
// span records) into the per-stage latency histograms.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stages[stage]
	if !ok {
		st = &stageMetrics{hist: newHistogram(stageBucketsMS)}
		m.stages[stage] = st
	}
	st.count++
	st.hist.observe(float64(d) / float64(time.Millisecond))
}

// ObserveBatchItem records the outcome of one item of a batch request
// ("ok", "cached" or "error").
func (m *Metrics) ObserveBatchItem(outcome string) {
	m.mu.Lock()
	m.batchItems[outcome]++
	m.mu.Unlock()
}

// BucketCount is one cumulative histogram bucket: requests that finished
// in at most LEMS milliseconds (LEMS < 0 encodes +Inf).
type BucketCount struct {
	LEMS  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// LatencySnapshot summarizes one endpoint's latency distribution.
type LatencySnapshot struct {
	MeanMS  float64       `json:"mean_ms"`
	MaxMS   float64       `json:"max_ms"`
	Buckets []BucketCount `json:"buckets"`
}

// EndpointSnapshot is one endpoint's counters on /metrics.
type EndpointSnapshot struct {
	Count   int64           `json:"count"`
	Errors  int64           `json:"errors"`
	Latency LatencySnapshot `json:"latency"`
}

// Snapshot is the full /metrics document.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	// Stages breaks request latency down by pipeline stage (compile,
	// verify, bound, load, prime, simulate, predict, cache-lookup, ...),
	// folded from request traces' span records.
	Stages map[string]StageSnapshot `json:"stages,omitempty"`
	// BatchItems counts individual batch items by outcome ("ok",
	// "cached", "error") — the per-endpoint counters see one "batch"
	// request regardless of item count.
	BatchItems map[string]int64 `json:"batch_items,omitempty"`
	Cache      CacheStats       `json:"cache"`
	Queue      PoolStats        `json:"queue"`
	// DedupShared counts requests that attached to another request's
	// in-flight computation instead of starting their own.
	DedupShared int64 `json:"dedup_shared"`
	// PipelineRuns counts actual executions of the underlying analysis
	// pipeline (cache misses that ran to completion or error).
	PipelineRuns int64 `json:"pipeline_runs"`
	// StallCycles aggregates simulated cycle attribution by cause (issue
	// cycles under "issue") over every fresh pipeline run.
	StallCycles map[string]int64 `json:"stall_cycles"`
	// SimPool reports the analyzer's simulator pool: CPUs created versus
	// runs served by a recycled one.
	SimPool SimPoolStats `json:"sim_pool"`
	// FastTier reports the analytical tier: requests served, fallbacks,
	// and the live predicted-vs-simulated divergence per kernel class.
	FastTier FastTierStats `json:"fast_tier"`
	// Explore reports the design-space sweep economics: sweeps completed
	// and grid points scored, pruned and simulated.
	Explore ExploreStats `json:"explore"`
	// Persistent reports the disk-backed second-level cache; all-zero
	// (Enabled false) when the service runs memory-only.
	Persistent DiskCacheStats `json:"persistent_cache"`
	// SimCycles is the total number of simulated clock cycles executed by
	// fresh pipeline runs (cache hits replay no cycles).
	SimCycles int64 `json:"sim_cycles"`
	// Runtime is the most recent Go-runtime sample; zero (SampledAt unset)
	// when the sampler is off (Config.RuntimeSample == 0).
	Runtime obs.RuntimeStats `json:"runtime,omitempty"`
}

// StageSnapshot is one pipeline stage's latency distribution.
type StageSnapshot struct {
	Count   int64           `json:"count"`
	Latency LatencySnapshot `json:"latency"`
}

// FastTierStats is the fast_tier section of /metrics.
type FastTierStats struct {
	// Served counts fresh fast-tier computations (tier=fast and the fast
	// half of tier=auto). Cache hits and singleflight waiters are
	// excluded, so a kernel replayed N times counts once.
	Served int64 `json:"served"`
	// Fallbacks counts auto requests whose timing was data-dependent and
	// were served by the simulator instead.
	Fallbacks int64 `json:"fallbacks"`
	// Verified counts completed predicted-vs-simulated comparisons (the
	// sum of the per-class sample counts).
	Verified int64 `json:"verified"`
	// Classes is the divergence aggregate per calibration class.
	Classes map[string]DivergenceStats `json:"classes,omitempty"`
}

// DivergenceStats summarizes |predicted − simulated| / simulated over
// the auto-tier requests of one kernel class.
type DivergenceStats struct {
	Count      int64   `json:"count"`
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
}

// SimPoolStats is the simulator-pool section of /metrics.
type SimPoolStats struct {
	Created  int64 `json:"created"`
	Recycled int64 `json:"recycled"`
}

// latencySnapshot renders one histogram's distribution summary.
func latencySnapshot(h *histogram, count int64) LatencySnapshot {
	ls := LatencySnapshot{MaxMS: h.maxMS}
	if count > 0 {
		ls.MeanMS = h.sumMS / float64(count)
	}
	var cum int64
	for i, n := range h.counts {
		cum += n
		le := -1.0 // +Inf
		if i < len(h.buckets) {
			le = h.buckets[i]
		}
		ls.Buckets = append(ls.Buckets, BucketCount{LEMS: le, Count: cum})
	}
	return ls
}

// snapshotEndpoints renders the per-endpoint section.
func (m *Metrics) snapshotEndpoints() map[string]EndpointSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(m.endpoints))
	for name, e := range m.endpoints {
		out[name] = EndpointSnapshot{
			Count:   e.count,
			Errors:  e.errors,
			Latency: latencySnapshot(e.hist, e.count),
		}
	}
	return out
}

// snapshotStages renders the per-stage section; nil before the first
// traced request.
func (m *Metrics) snapshotStages() map[string]StageSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.stages) == 0 {
		return nil
	}
	out := make(map[string]StageSnapshot, len(m.stages))
	for name, st := range m.stages {
		out[name] = StageSnapshot{Count: st.count, Latency: latencySnapshot(st.hist, st.count)}
	}
	return out
}

// snapshotBatchItems renders the batch-item outcome counters; nil before
// the first batch request.
func (m *Metrics) snapshotBatchItems() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.batchItems) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m.batchItems))
	for k, v := range m.batchItems {
		out[k] = v
	}
	return out
}
