package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"macs"
	"macs/internal/obs"
)

// maxBodyBytes bounds request bodies; kernel sources are tiny, priming
// arrays are at most a few thousand floats.
const maxBodyBytes = 4 << 20

// NewHandler wires the service into an http.Handler:
//
//	POST /v1/analyze   full pipeline; ?tier=exact|fast|auto selects the
//	                   serving tier (auto: fast answer now, exact
//	                   verification async); ?trace=1 embeds the request's
//	                   span/lane trace in the response
//	POST /v1/batch     many kernels in one request; per-kernel results
//	                   stream back as NDJSON lines in completion order
//	                   (?tier= overrides every item's tier)
//	POST /v1/explore   design-space sweep: a machine-parameter grid over one
//	                   kernel; each simulated survivor streams back as an
//	                   NDJSON "point" event, then a "done" event carries the
//	                   ranked summary (bounded, cancellable, cached whole)
//	POST /v1/bound     bounds hierarchy only
//	POST /v1/check     static verification only (diagnostics, no execution)
//	POST /v1/ax        A-process / X-process measurement
//	GET  /v1/lfk/{id}  one case-study kernel, bounds + measurement + diagnosis
//	GET  /v1/trace/{id} one retained request trace as Chrome trace_event
//	                   JSON (spans merged with simulator lanes)
//	GET  /healthz      liveness
//	GET  /metrics      JSON counters, cache/queue stats, latency histograms;
//	                   ?format=prom serves the Prometheus text exposition
//
// Every analysis request runs under the service's RequestTimeout, is
// logged structurally (endpoint, status, duration, trace ID) and carries
// its trace ID in the X-Macs-Trace response header.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", traced(s, "analyze", func(w http.ResponseWriter, r *http.Request) {
		tier := r.URL.Query().Get("tier")
		wantTrace := r.URL.Query().Get("trace") == "1"
		handleJSON(s, w, r, func(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, error) {
			if tier != "" {
				req.Tier = tier
			}
			resp, err := s.Analyze(ctx, req)
			if err == nil && wantTrace {
				if tr := obs.FromContext(ctx); tr != nil {
					v := tr.View()
					resp.Trace = &v
				}
			}
			return resp, err
		})
	}))
	mux.HandleFunc("POST /v1/batch", traced(s, "batch", func(w http.ResponseWriter, r *http.Request) {
		handleBatch(s, w, r)
	}))
	mux.HandleFunc("POST /v1/explore", traced(s, "explore", func(w http.ResponseWriter, r *http.Request) {
		handleExplore(s, w, r)
	}))
	mux.HandleFunc("POST /v1/bound", traced(s, "bound", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(s, w, r, func(ctx context.Context, req BoundRequest) (BoundResponse, error) {
			return s.Bound(ctx, req)
		})
	}))
	mux.HandleFunc("POST /v1/check", traced(s, "check", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(s, w, r, func(ctx context.Context, req CheckRequest) (CheckResponse, error) {
			return s.Check(ctx, req)
		})
	}))
	mux.HandleFunc("POST /v1/ax", traced(s, "ax", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(s, w, r, func(ctx context.Context, req AXRequest) (AXResponse, error) {
			return s.AX(ctx, req)
		})
	}))
	mux.HandleFunc("GET /v1/lfk/{id}", traced(s, "lfk", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad kernel id %q", r.PathValue("id")))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		resp, err := s.LFK(ctx, id)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))
	mux.HandleFunc("GET /v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		v, ok := s.TraceByID(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown or evicted trace %q", id))
			return
		}
		b, err := obs.ChromeTrace(v)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b) //nolint:errcheck // client went away
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", obs.PromContentType)
			w.Write(RenderProm(s.Metrics())) //nolint:errcheck // client went away
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return recoverPanic(s.log, accessLog(s.log, mux))
}

// traced wraps one /v1/ endpoint with a request trace: a fresh trace ID
// (surfaced in the X-Macs-Trace response header and the access log), a
// root span named after the endpoint, and — after the handler returns —
// the fold of the trace's stage durations into the per-stage histograms
// plus retention of the snapshot for GET /v1/trace/{id}.
func traced(s *Service, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace("")
		ctx := obs.NewContext(r.Context(), tr)
		ctx, root := obs.Start(ctx, endpoint)
		w.Header().Set("X-Macs-Trace", tr.ID())
		h(w, r.WithContext(ctx))
		root.End()
		s.finishTrace(tr)
	}
}

// handleJSON decodes a JSON body, applies the request timeout, runs the
// endpoint and writes the JSON response or mapped error.
func handleJSON[Req, Resp any](s *Service, w http.ResponseWriter, r *http.Request, fn func(context.Context, Req) (Resp, error)) {
	var req Req
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp, err := fn(ctx, req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch decodes a batch request and streams per-item results back
// as NDJSON, flushing after every line so clients see each kernel as it
// completes. Batch-level failures (malformed body, empty batch, closed
// service) answer with a normal JSON error status before the stream
// starts; per-item failures are lines inside the stream.
func handleBatch(s *Service, w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if tier := r.URL.Query().Get("tier"); tier != "" {
		for i := range req.Items {
			req.Items[i].Tier = tier
		}
	}
	// Validate before committing to a 200 stream: once the NDJSON body
	// starts, the status line is gone.
	if err := s.checkBatch(req); err != nil {
		writeServiceError(w, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	err := s.AnalyzeBatch(ctx, req, func(item BatchItemResult) {
		enc.Encode(item) //nolint:errcheck // client went away
		if flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil {
		// The stream already carries a 200; all we can do is log-level
		// surface via a final error line (emit was never called).
		enc.Encode(BatchItemResult{Index: -1, Error: err.Error()}) //nolint:errcheck // client went away
	}
}

// handleExplore decodes a sweep request and streams its events back as
// NDJSON: one "point" line per simulated survivor as it completes, then
// the "done" summary line. Sweep-level failures (bad grid, too many
// points, closed service) answer with a JSON error status before the
// stream starts; a failure mid-sweep becomes a terminal "error" line.
func handleExplore(s *Service, w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Validate before committing to a 200 stream: once the NDJSON body
	// starts, the status line is gone.
	if _, err := s.checkExplore(req); err != nil {
		writeServiceError(w, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	err := s.Explore(ctx, req, func(ev ExploreEvent) {
		enc.Encode(ev) //nolint:errcheck // client went away
		if flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil {
		enc.Encode(ExploreEvent{Type: "error", Error: err.Error()}) //nolint:errcheck // client went away
	}
}

// writeServiceError maps service errors onto HTTP status codes:
// backpressure → 429 + Retry-After, timeout → 504, cancelled client →
// 499 (nginx convention), a program rejected by the static checker →
// 422 with the full diagnostic list in the body, anything else
// (compile/analysis failures) → 422.
func writeServiceError(w http.ResponseWriter, err error) {
	var verr *macs.VerifyError
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, 499, err)
	case errors.As(err, &verr):
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":       err.Error(),
			"diagnostics": verr.Diags,
		})
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += n
	return n, err
}

// recoverPanic is the outermost middleware: a panic anywhere in request
// handling answers 500 instead of killing the connection (and, under
// http.Server, only that goroutine). The static checker makes such
// panics unreachable for verified inputs; this is the backstop for the
// paths it cannot see.
func recoverPanic(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Error("panic in request handler",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", v,
					"stack", string(debug.Stack()),
				)
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// accessLog emits one structured line per request.
func accessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur", time.Since(start),
			"remote", r.RemoteAddr,
		}
		if id := sw.Header().Get("X-Macs-Trace"); id != "" {
			attrs = append(attrs, "trace", id)
		}
		log.Info("http", attrs...)
	})
}
