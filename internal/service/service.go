// Package service turns the one-shot MACS pipeline (compile → bound →
// simulate → A/X → diagnose) into a long-lived, concurrent analysis
// service: a bounded worker pool with queue backpressure, a
// content-addressed LRU result cache with singleflight deduplication of
// concurrent identical requests, and an observability layer (counters,
// latency histograms, cache and queue stats). The HTTP front end lives
// in http.go; cmd/macsd is the daemon around it.
//
// The service wraps the public macs facade and never reaches into the
// simulator, so serving semantics and model semantics stay decoupled.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"macs"
	"macs/internal/compiler"
	"macs/internal/explore"
	"macs/internal/obs"
)

// Config sizes the service. Zero fields take the Default values.
type Config struct {
	// Workers is the number of concurrent pipeline executions.
	Workers int
	// QueueSize bounds pending jobs; beyond it Submit sheds load (429).
	QueueSize int
	// CacheSize bounds the result cache, in entries.
	CacheSize int
	// CacheDir, when non-empty, adds a persistent second-level cache
	// behind the in-memory LRU: results are appended to disk segments in
	// this directory and survive restarts. Entries written under a
	// different schema version or pipeline configuration self-invalidate
	// on open.
	CacheDir string
	// RequestTimeout bounds one request end to end (queue wait included).
	RequestTimeout time.Duration
	// Compiler, VM and Rules configure the pipeline for every request
	// and are part of every cache key.
	Compiler macs.CompilerOptions
	VM       macs.VMConfig
	Rules    macs.Rules
	// DefaultTier serves analyze requests that do not name a tier:
	// "exact" (empty), "fast" or "auto".
	DefaultTier string
	// RuntimeSample, when > 0, starts a periodic Go-runtime sampler (heap,
	// GC, goroutines) at that interval and surfaces the latest sample on
	// /metrics in both formats. Zero leaves the sampler off.
	RuntimeSample time.Duration
	// TraceKeep bounds how many completed request traces are retained for
	// GET /v1/trace/{id}; 0 takes the default (128).
	TraceKeep int
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
}

// DefaultConfig returns production-shaped defaults: one worker per CPU,
// a queue twice as deep, and the paper's C-240 model configuration.
func DefaultConfig() Config {
	vmCfg := macs.DefaultVMConfig()
	// A bounded trace ring keeps the most recent vector timing events of
	// every run so traced requests can merge simulator lanes into their
	// timeline; the ring is cheap enough to leave on unconditionally.
	vmCfg.TraceRing = defaultTraceRing
	return Config{
		Workers:        runtime.NumCPU(),
		QueueSize:      2 * runtime.NumCPU(),
		CacheSize:      512,
		RequestTimeout: 30 * time.Second,
		Compiler:       macs.DefaultCompilerOptions(),
		VM:             vmCfg,
		Rules:          macs.DefaultRules(),
		TraceKeep:      defaultTraceKeep,
	}
}

const (
	// defaultTraceRing bounds the per-run vector timing event buffer.
	defaultTraceRing = 4096
	// defaultTraceKeep bounds the completed-trace store.
	defaultTraceKeep = 128
)

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueSize <= 0 {
		c.QueueSize = d.QueueSize
	}
	if c.CacheSize <= 0 {
		c.CacheSize = d.CacheSize
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.TraceKeep <= 0 {
		c.TraceKeep = d.TraceKeep
	}
	if c.Compiler == (macs.CompilerOptions{}) {
		c.Compiler = d.Compiler
	}
	c.VM = mergeVMDefaults(c.VM, d.VM)
	if c.Rules == (macs.Rules{}) {
		c.Rules = d.Rules
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	return c
}

// mergeVMDefaults fills only the zero fields of a caller's VM
// configuration with the defaults. A fully zero config takes the
// defaults wholesale (including the default-true booleans); a partial
// config keeps every field the caller set — a custom memory model or
// timing table is never silently clobbered just because VLMax was left
// unset. Boolean fields of a partial config are taken as given: false
// there is a deliberate choice, since Go cannot distinguish "unset" from
// "disabled".
func mergeVMDefaults(c, d macs.VMConfig) macs.VMConfig {
	if c == (macs.VMConfig{}) {
		return d
	}
	if c.VLMax == 0 {
		c.VLMax = d.VLMax
	}
	if c.Rules == (macs.Rules{}) {
		c.Rules = d.Rules
	}
	if c.Banks == 0 {
		c.Banks = d.Banks
	}
	if c.BankCycle == 0 {
		c.BankCycle = d.BankCycle
	}
	if c.RefreshPeriod == 0 {
		c.RefreshPeriod = d.RefreshPeriod
	}
	if c.RefreshLen == 0 {
		c.RefreshLen = d.RefreshLen
	}
	if c.MemSlowdown == 0 {
		c.MemSlowdown = d.MemSlowdown
	}
	if c.ScalarLoadLat == 0 {
		c.ScalarLoadLat = d.ScalarLoadLat
	}
	if c.ScalarOpLat == 0 {
		c.ScalarOpLat = d.ScalarOpLat
	}
	if c.BranchPenalty == 0 {
		c.BranchPenalty = d.BranchPenalty
	}
	if c.DispatchLat == 0 {
		c.DispatchLat = d.DispatchLat
	}
	if c.MemSize == 0 {
		c.MemSize = d.MemSize
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = d.MaxCycles
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = d.MaxInstrs
	}
	if c.TraceRing == 0 && !c.Trace {
		c.TraceRing = d.TraceRing
	}
	return c
}

// flight is one in-progress computation shared by every concurrent
// request with the same key (singleflight). The flight's context is
// detached from any single waiter; when the last waiter gives up, the
// flight is cancelled so queued work is skipped, not executed.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// Service is the concurrent MACS analysis engine.
type Service struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	disk    *DiskCache // nil when Config.CacheDir is empty or unusable
	metrics *Metrics
	log     *slog.Logger
	// analyzer recycles simulator state (memory image, vector registers,
	// memoized stream-stall tables) across cache-miss analyses instead of
	// allocating a fresh multi-megabyte CPU per request.
	analyzer *macs.Analyzer

	mu      sync.Mutex
	flights map[Key]*flight

	// fastTier aggregates fast-tier serving counters and the
	// predicted-vs-simulated divergence sampled by auto-tier requests.
	fastTier *fastTierTracker
	// closeMu guards closed and orders verifyWG.Add against Close's
	// verifyWG.Wait: a verification is only registered while the service
	// is accepting work, so Wait can never miss a late Add.
	closeMu sync.Mutex
	closed  bool
	// verifyWG tracks in-flight asynchronous exact verifications spawned
	// by auto-tier requests, so Close drains them.
	verifyWG sync.WaitGroup

	// explorers is the shared per-machine evaluator registry behind
	// /v1/explore: simulator pools and fast-tier prediction memos keyed by
	// canonical machine fingerprint, kept warm across sweep requests.
	explorers *explore.Evaluators
	// explore sweep economics: grid points scored, answered analytically,
	// and simulated exactly, across every fresh sweep.
	exploreSweeps    atomic.Int64
	exploreSwept     atomic.Int64
	explorePruned    atomic.Int64
	exploreSimulated atomic.Int64

	dedupShared  atomic.Int64
	pipelineRuns atomic.Int64
	// simCycles totals the simulated clock cycles of every fresh exact
	// run; cache hits replay no cycles and add nothing.
	simCycles atomic.Int64

	// sampler periodically snapshots the Go runtime when
	// Config.RuntimeSample > 0; nil otherwise.
	sampler *obs.RuntimeSampler

	// traceMu guards traces, a bounded FIFO of completed request traces
	// keyed for GET /v1/trace/{id}.
	traceMu    sync.Mutex
	traces     map[string]obs.TraceView
	traceOrder []string

	// attrMu guards attrTotals, the service-wide aggregate of simulated
	// stall-attribution cycles by cause (plus "issue"), summed over every
	// fresh pipeline run and surfaced on /metrics.
	attrMu     sync.Mutex
	attrTotals map[string]int64
}

// New builds a Service and starts its worker pool. When Config.CacheDir
// is set, the persistent cache is opened (or created) there; an unusable
// directory is logged and the service runs memory-only rather than
// failing to start.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:        cfg,
		pool:       NewPool(cfg.Workers, cfg.QueueSize),
		cache:      NewCache(cfg.CacheSize),
		metrics:    NewMetrics(),
		log:        cfg.Logger,
		analyzer:   macs.NewAnalyzer(cfg.VM),
		explorers:  explore.NewEvaluators(cfg.VM),
		flights:    make(map[Key]*flight),
		fastTier:   newFastTierTracker(),
		attrTotals: make(map[string]int64),
		traces:     make(map[string]obs.TraceView),
	}
	if cfg.RuntimeSample > 0 {
		s.sampler = obs.StartRuntimeSampler(cfg.RuntimeSample)
	}
	if cfg.CacheDir != "" {
		fp, err := configFingerprint(cfg)
		if err == nil {
			s.disk, err = OpenDiskCache(cfg.CacheDir, fp)
		}
		if err != nil {
			s.log.Warn("persistent cache disabled", "dir", cfg.CacheDir, "err", err)
		} else {
			ds := s.disk.Stats()
			s.log.Info("persistent cache open", "dir", cfg.CacheDir,
				"entries", ds.Entries, "segments", ds.Segments, "invalidated", ds.Invalidated)
		}
	}
	return s
}

// configFingerprint hashes everything that determines a cached result's
// meaning: the persistent-cache schema version and the pipeline
// configuration. The machine half goes in through the canonical
// vm.Machine fingerprint — the same keying scheme the prediction memo
// and the explore engine use — and the run-bound remainder of the VM
// config rides alongside. Segments written under a different fingerprint
// are dropped on open, so stale schemas and stale machine models
// self-invalidate.
func configFingerprint(cfg Config) (string, error) {
	run := cfg.VM
	run.Machine = macs.Machine{} // keyed separately via Fingerprint
	k, err := NewKey("cache-fingerprint", fmt.Sprintf("v%d", diskCacheVersion),
		cfg.Compiler, cfg.VM.Machine.Fingerprint(), run, cfg.Rules)
	return string(k), err
}

// recordAttr merges one run's lane-summed stall attribution into the
// service-wide totals. Only fresh pipeline runs call it, so cache hits do
// not inflate the counters.
func (s *Service) recordAttr(a macs.Attribution) {
	totals := a.Totals()
	if len(totals) == 0 {
		return
	}
	s.attrMu.Lock()
	for k, v := range totals {
		s.attrTotals[k] += v
	}
	s.attrMu.Unlock()
}

// stallCycles snapshots the aggregate attribution counters.
func (s *Service) stallCycles() map[string]int64 {
	s.attrMu.Lock()
	defer s.attrMu.Unlock()
	out := make(map[string]int64, len(s.attrTotals))
	for k, v := range s.attrTotals {
		out[k] = v
	}
	return out
}

// Close drains the service: the accept gate flips first, so no new
// request or asynchronous verification can register afterwards, then
// every already-accepted queued and in-flight job — including the exact
// verifications spawned by auto-tier requests — runs to completion
// before Close returns. Requests arriving after Close fail with
// ErrClosed.
func (s *Service) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.verifyWG.Wait()
	s.pool.Close()
	if s.disk != nil {
		s.disk.Close()
	}
	s.sampler.Stop() // nil-safe
}

// finishTrace folds a completed request trace into the per-stage latency
// histograms and retains its snapshot for GET /v1/trace/{id}, evicting
// the oldest once TraceKeep is exceeded.
func (s *Service) finishTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	for stage, d := range tr.StageDurations() {
		s.metrics.ObserveStage(stage, d)
	}
	v := tr.View()
	if v.ID == "" {
		return
	}
	s.traceMu.Lock()
	if _, ok := s.traces[v.ID]; !ok {
		s.traceOrder = append(s.traceOrder, v.ID)
	}
	s.traces[v.ID] = v
	for len(s.traceOrder) > s.cfg.TraceKeep {
		delete(s.traces, s.traceOrder[0])
		s.traceOrder = s.traceOrder[1:]
	}
	s.traceMu.Unlock()
}

// TraceByID returns the retained snapshot of one completed request trace.
func (s *Service) TraceByID(id string) (obs.TraceView, bool) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	v, ok := s.traces[id]
	return v, ok
}

// acceptGate rejects work arriving after Close flipped the closed flag.
// Checking it at every public entry point (rather than relying on the
// pool's own closed state) keeps shutdown an accept-gate + drain: an
// in-flight auto-tier request can no longer spawn a verification into a
// pool that is about to close.
func (s *Service) acceptGate() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Metrics returns the full observability snapshot served on /metrics.
func (s *Service) Metrics() Snapshot {
	return Snapshot{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Endpoints:     s.metrics.snapshotEndpoints(),
		Stages:        s.metrics.snapshotStages(),
		BatchItems:    s.metrics.snapshotBatchItems(),
		Cache:         s.cache.Stats(),
		Queue:         s.pool.Stats(),
		DedupShared:   s.dedupShared.Load(),
		PipelineRuns:  s.pipelineRuns.Load(),
		StallCycles:   s.stallCycles(),
		SimPool:       s.simPool(),
		FastTier:      s.fastTier.snapshot(),
		Explore:       s.exploreStats(),
		Persistent:    s.diskStats(),
		SimCycles:     s.simCycles.Load(),
		Runtime:       s.sampler.Stats(), // nil-safe: zero when off
	}
}

func (s *Service) diskStats() DiskCacheStats {
	if s.disk == nil {
		return DiskCacheStats{}
	}
	return s.disk.Stats()
}

// PipelineRuns reports how many times the underlying pipeline actually
// executed — the dedup and cache tests assert on it.
func (s *Service) PipelineRuns() int64 { return s.pipelineRuns.Load() }

func (s *Service) simPool() SimPoolStats {
	created, recycled := s.analyzer.PoolStats()
	return SimPoolStats{Created: created, Recycled: recycled}
}

// decodeFunc rehydrates one persisted JSON value into the concrete
// response type its cache key stores; each endpoint passes its own.
type decodeFunc func([]byte) (any, error)

// decodeJSON builds the decodeFunc for one response type. The returned
// value is a *T, matching what the compute closures put in the memory
// cache, so callers type-assert identically on both paths.
func decodeJSON[T any]() decodeFunc {
	return func(b []byte) (any, error) {
		v := new(T)
		if err := json.Unmarshal(b, v); err != nil {
			return nil, err
		}
		return v, nil
	}
}

// do is the heart of the service: memory-cache lookup, persistent-cache
// fill, singleflight attach or lead, pool submission with backpressure,
// and context-bounded waiting. It returns (value, servedFromCache,
// fresh, error): cached is true when the value came from either cache
// level, fresh is true only when this call actually executed fn (cache
// hits and dedup waiters report false) — the fast-tier counters key off
// it so replayed requests are not double-counted. dec may be nil for
// results that should not persist.
func (s *Service) do(ctx context.Context, key Key, dec decodeFunc, fn func() (any, error)) (any, bool, bool, error) {
	_, sp := obs.Start(ctx, "cache-lookup")
	v, hit := s.cache.Get(key)
	sp.End()
	if hit {
		return v, true, false, nil
	}
	_, sp = obs.Start(ctx, "disk-lookup")
	v, hit = s.diskGet(key, dec)
	sp.End()
	if hit {
		s.cache.Put(key, v)
		return v, true, false, nil
	}

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.mu.Unlock()
		s.dedupShared.Add(1)
		_, sp = obs.Start(ctx, "singleflight-wait")
		v, err := s.wait(ctx, f)
		sp.End()
		return v, false, false, err
	}
	// Lead a new flight. Its context is detached from this request so a
	// single waiter's timeout cannot kill a computation others share; it
	// is cancelled only when every waiter has gone away.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	s.flights[key] = f
	s.mu.Unlock()

	executed := false
	err := s.pool.Submit(fctx, func(jctx context.Context) {
		var v any
		var jerr error
		if jerr = jctx.Err(); jerr == nil {
			s.pipelineRuns.Add(1)
			executed = true
			v, jerr = fn()
		}
		s.mu.Lock()
		f.val, f.err = v, jerr
		if s.flights[key] == f {
			delete(s.flights, key)
		}
		s.mu.Unlock()
		if jerr == nil {
			s.cache.Put(key, v)
			s.diskPut(key, dec, v)
		}
		cancel()
		close(f.done)
	})
	if err != nil {
		// The queue rejected the job. Fail the flight (not just this
		// caller): a waiter may have attached while the lock was
		// released, and it must see the error rather than hang.
		s.mu.Lock()
		f.err = err
		if s.flights[key] == f {
			delete(s.flights, key)
		}
		s.mu.Unlock()
		cancel()
		close(f.done)
		return nil, false, false, err
	}
	// The flight-wait span covers queue time plus compute time as seen by
	// the leading request; the compute closure's own stage spans nest as
	// siblings under the same root (the flight context snapshot predates
	// this span).
	_, sp = obs.Start(ctx, "flight-wait")
	v, err = s.wait(ctx, f)
	sp.End()
	if err != nil {
		// executed must not be read here: on a waiter timeout the worker
		// may still be writing it. A successful wait happens-after the
		// flight's close(done), which orders the write.
		return nil, false, false, err
	}
	return v, false, executed, nil
}

// diskGet consults the persistent cache and rehydrates a hit through the
// endpoint's decoder. Undecodable entries (a schema the fingerprint did
// not catch) are treated as misses.
func (s *Service) diskGet(key Key, dec decodeFunc) (any, bool) {
	if s.disk == nil || dec == nil {
		return nil, false
	}
	b, ok := s.disk.Get(key)
	if !ok {
		return nil, false
	}
	v, err := dec(b)
	if err != nil {
		s.log.Warn("persistent cache entry undecodable", "key", string(key), "err", err)
		return nil, false
	}
	return v, true
}

// diskPut persists one fresh result. Write failures degrade to
// memory-only caching, never to request failures.
func (s *Service) diskPut(key Key, dec decodeFunc, v any) {
	if s.disk == nil || dec == nil {
		return
	}
	b, err := json.Marshal(v)
	if err == nil {
		err = s.disk.Put(key, b)
	}
	if err != nil {
		s.log.Warn("persistent cache write failed", "key", string(key), "err", err)
	}
}

// wait blocks until the flight completes or ctx expires. A waiter that
// gives up deregisters; the last one to leave cancels the flight so a
// still-queued job is skipped by the worker.
func (s *Service) wait(ctx context.Context, f *flight) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		s.mu.Lock()
		f.waiters--
		abandon := f.waiters == 0
		s.mu.Unlock()
		if abandon {
			f.cancel()
		}
		return nil, ctx.Err()
	}
}

// observe wraps one endpoint call with timing and structured logging.
func (s *Service) observe(endpoint string, start time.Time, cached bool, err error) {
	d := time.Since(start)
	s.metrics.Observe(endpoint, d, err != nil)
	if err != nil {
		s.log.Info("request", "endpoint", endpoint, "dur", d, "err", err)
		return
	}
	s.log.Info("request", "endpoint", endpoint, "dur", d, "cached", cached)
}

// Priming carries memory inputs for a simulation request: scalar
// integers, scalar reals and real arrays, by Fortran variable name. It
// is part of the cache key — different inputs are different results.
type Priming struct {
	Ints   map[string]int64     `json:"ints,omitempty"`
	Reals  map[string]float64   `json:"reals,omitempty"`
	Arrays map[string][]float64 `json:"arrays,omitempty"`
}

// primeFunc renders a Priming into the prime callback the facade takes.
func (p Priming) primeFunc() func(*macs.CPU) error {
	if len(p.Ints) == 0 && len(p.Reals) == 0 && len(p.Arrays) == 0 {
		return nil
	}
	return func(c *macs.CPU) error {
		m := c.Memory()
		addr := func(name string) (int64, error) {
			base, ok := m.SymbolAddr(compiler.DataSym(name))
			if !ok {
				return 0, fmt.Errorf("service: priming unknown variable %q", name)
			}
			return base, nil
		}
		for name, v := range p.Ints {
			base, err := addr(name)
			if err != nil {
				return err
			}
			if err := m.WriteI64(base, v); err != nil {
				return err
			}
		}
		for name, v := range p.Reals {
			base, err := addr(name)
			if err != nil {
				return err
			}
			if err := m.WriteF64(base, v); err != nil {
				return err
			}
		}
		for name, vals := range p.Arrays {
			base, err := addr(name)
			if err != nil {
				return err
			}
			for i, v := range vals {
				if err := m.WriteF64(base+int64(i)*8, v); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// fastInts rekeys the integer primings by data symbol, the shape the
// fast tier's predictor reads. Reals and arrays are irrelevant to it:
// float data never steers the timing model (a program whose schedule
// depends on it is data-dependent and falls back to the simulator).
func (p Priming) fastInts() map[string]int64 {
	if len(p.Ints) == 0 {
		return nil
	}
	out := make(map[string]int64, len(p.Ints))
	for name, v := range p.Ints {
		out[compiler.DataSym(name)] = v
	}
	return out
}

// AnalyzeRequest asks for the full pipeline: compile, bound, simulate.
type AnalyzeRequest struct {
	Source string `json:"source"`
	// Iterations converts measured cycles to CPL; 0 skips the conversion.
	Iterations int64   `json:"iterations,omitempty"`
	Prime      Priming `json:"prime,omitempty"`
	// Tier selects how the request is served: "exact" (cycle-level
	// simulation, the default), "fast" (analytical prediction only, in
	// microseconds) or "auto" (fast answer immediately, exact
	// verification asynchronously, divergence recorded on /metrics). The
	// ?tier= query parameter overrides it; empty falls back to the
	// service's configured default.
	Tier string `json:"tier,omitempty"`
}

// BoundsView is the MA/MAC/MACS hierarchy in CPL, JSON-shaped.
type BoundsView struct {
	TMA    float64 `json:"t_ma"`
	TMAC   float64 `json:"t_mac"`
	TMACS  float64 `json:"t_macs"`
	TMACSF float64 `json:"t_macs_f"`
	TMACSM float64 `json:"t_macs_m"`
	// TCP is the dependence critical-path lower bound (0 when the
	// analyzer made no per-element claim).
	TCP    float64 `json:"t_cp"`
	Chimes int     `json:"chimes"`
	VL     int     `json:"vl"`
}

func boundsView(a macs.Analysis) BoundsView {
	return BoundsView{
		TMA:    a.TMA,
		TMAC:   a.TMAC,
		TMACS:  a.MACS.CPL,
		TMACSF: a.MACSF.CPL,
		TMACSM: a.MACSM.CPL,
		TCP:    a.TCP,
		Chimes: len(a.MACS.Chimes),
		VL:     a.VL,
	}
}

// AnalyzeResponse is the outcome of POST /v1/analyze.
type AnalyzeResponse struct {
	// Tier reports how the response was actually served: "exact", "fast"
	// or "auto" (fast answer, exact verification in flight). An auto
	// request whose program is data-dependent falls back and reports
	// "exact".
	Tier        string     `json:"tier"`
	Bounds      BoundsView `json:"bounds"`
	MeasuredCPL float64    `json:"measured_cpl"`
	// PredictedCPL and ErrorBand carry the fast tier's calibrated
	// prediction and its stated relative error band; Class is the
	// calibration class the residual resolved through. Exact-tier
	// responses leave all three zero.
	PredictedCPL float64 `json:"predicted_cpl,omitempty"`
	ErrorBand    float64 `json:"error_band,omitempty"`
	Class        string  `json:"class,omitempty"`
	// Interval marks a fast-tier answer obtained by enumerating the
	// program's data-dependent branch outcomes: PredictedCPLLo/Hi (raw,
	// uncalibrated) and CyclesLo/Hi bound every admitted execution, and
	// the simulated measurement is guaranteed to land inside. Paths counts
	// the enumerated executions. Point fields describe the worst case.
	Interval       bool    `json:"interval,omitempty"`
	Paths          int     `json:"paths,omitempty"`
	PredictedCPLLo float64 `json:"predicted_cpl_lo,omitempty"`
	PredictedCPLHi float64 `json:"predicted_cpl_hi,omitempty"`
	CyclesLo       int64   `json:"cycles_lo,omitempty"`
	CyclesHi       int64   `json:"cycles_hi,omitempty"`
	Cycles         int64   `json:"cycles"`
	Iterations     int64   `json:"iterations"`
	// Stats carries the full simulator statistics; fast-tier responses,
	// which run no simulator, omit it.
	Stats  *macs.Stats `json:"stats,omitempty"`
	Report string      `json:"report"`
	// Attribution is the run's lane-summed stall attribution by cause
	// (issue cycles under "issue"); a conserved ledger sums to
	// 4 lanes × Cycles.
	Attribution map[string]int64 `json:"attribution,omitempty"`
	// Cached reports whether this response was served from the result
	// cache rather than a fresh pipeline execution.
	Cached bool `json:"cached"`
	// Trace is the request's span/lane snapshot, filled only when the
	// caller asked for it (?trace=1). It is attached after the cache copy,
	// so cached entries never carry a stale trace.
	Trace *obs.TraceView `json:"trace,omitempty"`
}

// Analyze runs (or recalls) the pipeline for one kernel source, under
// the tier the request (or the service default) selects.
func (s *Service) Analyze(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, error) {
	if err := s.acceptGate(); err != nil {
		return AnalyzeResponse{}, err
	}
	name := req.Tier
	if name == "" {
		name = s.cfg.DefaultTier
	}
	tier, err := macs.ParseTier(name)
	if err != nil {
		s.observe("analyze", time.Now(), false, err)
		return AnalyzeResponse{}, err
	}
	switch tier {
	case macs.TierExact:
		return s.analyzeExact(ctx, req)
	case macs.TierFast:
		resp, _, err := s.analyzeFast(ctx, req, macs.TierFast)
		return resp, err
	case macs.TierAuto:
		return s.analyzeAuto(ctx, req)
	}
	return AnalyzeResponse{}, fmt.Errorf("service: unhandled tier %v", tier)
}

// analyzeExact is the simulated path: compile, bound, simulate.
func (s *Service) analyzeExact(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, error) {
	start := time.Now()
	key, err := NewKey("analyze", req.Source, s.cfg.Compiler, s.cfg.VM, s.cfg.Rules, req.Iterations, req.Prime)
	if err != nil {
		s.observe("analyze", start, false, err)
		return AnalyzeResponse{}, err
	}
	v, cached, _, err := s.do(ctx, key, decodeJSON[AnalyzeResponse](), func() (any, error) {
		// The request context rides into the closure for its trace values
		// only; cancellation is governed by the flight context the worker
		// checks before calling this.
		res, err := s.analyzer.AnalyzeSourceCtx(ctx, req.Source, req.Iterations, req.Prime.primeFunc())
		if err != nil {
			return nil, err
		}
		s.recordAttr(res.Stats.Attr)
		s.simCycles.Add(res.Stats.Cycles)
		return &AnalyzeResponse{
			Tier:        macs.TierExact.String(),
			Bounds:      boundsView(res.Analysis),
			MeasuredCPL: res.MeasuredCPL,
			Cycles:      res.Stats.Cycles,
			Iterations:  res.Iterations,
			Stats:       &res.Stats,
			Report:      res.Report(),
			Attribution: res.Stats.Attr.Totals(),
		}, nil
	})
	s.observe("analyze", start, cached, err)
	if err != nil {
		return AnalyzeResponse{}, err
	}
	resp := *v.(*AnalyzeResponse)
	resp.Cached = cached
	return resp, nil
}

// BoundRequest asks for the model only — no simulation.
type BoundRequest struct {
	Source string `json:"source"`
}

// BoundResponse is the outcome of POST /v1/bound.
type BoundResponse struct {
	Bounds BoundsView `json:"bounds"`
	Cached bool       `json:"cached"`
}

// Bound computes (or recalls) the MA/MAC/MACS hierarchy for a source.
func (s *Service) Bound(ctx context.Context, req BoundRequest) (BoundResponse, error) {
	if err := s.acceptGate(); err != nil {
		return BoundResponse{}, err
	}
	start := time.Now()
	key, err := NewKey("bound", req.Source, s.cfg.Compiler, s.cfg.VM, s.cfg.Rules, int64(0))
	if err != nil {
		s.observe("bound", start, false, err)
		return BoundResponse{}, err
	}
	v, cached, _, err := s.do(ctx, key, decodeJSON[BoundResponse](), func() (any, error) {
		a, err := macs.BoundSourceCtx(ctx, req.Source)
		if err != nil {
			return nil, err
		}
		return &BoundResponse{Bounds: boundsView(a)}, nil
	})
	s.observe("bound", start, cached, err)
	if err != nil {
		return BoundResponse{}, err
	}
	resp := *v.(*BoundResponse)
	resp.Cached = cached
	return resp, nil
}

// CheckRequest asks for static verification only: compile the source and
// run the checker, but never simulate or bound it.
type CheckRequest struct {
	Source string `json:"source"`
}

// CheckResponse is the outcome of POST /v1/check. OK means no
// error-severity findings; warnings and infos ride along either way.
type CheckResponse struct {
	OK          bool              `json:"ok"`
	Diagnostics []macs.Diagnostic `json:"diagnostics"`
	// Rendered carries the diagnostics formatted with the instruction text
	// they anchor to, for human display.
	Rendered []string `json:"rendered,omitempty"`
	Cached   bool     `json:"cached"`
}

// Check compiles a source and statically verifies the generated code.
// Findings are the result, not an error: a program full of problems still
// answers 200 with OK=false.
func (s *Service) Check(ctx context.Context, req CheckRequest) (CheckResponse, error) {
	if err := s.acceptGate(); err != nil {
		return CheckResponse{}, err
	}
	start := time.Now()
	key, err := NewKey("check", req.Source, s.cfg.Compiler, s.cfg.VM, s.cfg.Rules, int64(0))
	if err != nil {
		s.observe("check", start, false, err)
		return CheckResponse{}, err
	}
	v, cached, _, err := s.do(ctx, key, decodeJSON[CheckResponse](), func() (any, error) {
		p, err := macs.Compile(req.Source, s.cfg.Compiler)
		if err != nil {
			return nil, err
		}
		ds := macs.Verify(p)
		resp := &CheckResponse{OK: !hasVerifyErrors(ds), Diagnostics: ds}
		for _, d := range ds {
			resp.Rendered = append(resp.Rendered, d.Render(p))
		}
		return resp, nil
	})
	s.observe("check", start, cached, err)
	if err != nil {
		return CheckResponse{}, err
	}
	resp := *v.(*CheckResponse)
	resp.Cached = cached
	return resp, nil
}

func hasVerifyErrors(ds []macs.Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == macs.SevError {
			return true
		}
	}
	return false
}

// AXRequest asks for the A-process / X-process measurement of a source.
type AXRequest struct {
	Source string  `json:"source"`
	Prime  Priming `json:"prime,omitempty"`
}

// AXResponse is the outcome of POST /v1/ax, in raw cycles.
type AXResponse struct {
	TP     int64 `json:"t_p_cycles"`
	TA     int64 `json:"t_a_cycles"`
	TX     int64 `json:"t_x_cycles"`
	Cached bool  `json:"cached"`
}

// AX compiles a source and measures its A- and X-process run times.
func (s *Service) AX(ctx context.Context, req AXRequest) (AXResponse, error) {
	if err := s.acceptGate(); err != nil {
		return AXResponse{}, err
	}
	start := time.Now()
	key, err := NewKey("ax", req.Source, s.cfg.Compiler, s.cfg.VM, s.cfg.Rules, int64(0), req.Prime)
	if err != nil {
		s.observe("ax", start, false, err)
		return AXResponse{}, err
	}
	v, cached, _, err := s.do(ctx, key, decodeJSON[AXResponse](), func() (any, error) {
		p, err := macs.Compile(req.Source, s.cfg.Compiler)
		if err != nil {
			return nil, err
		}
		m, err := macs.MeasureAX(p, s.cfg.VM, req.Prime.primeFunc())
		if err != nil {
			return nil, err
		}
		return &AXResponse{TP: m.TP, TA: m.TA, TX: m.TX}, nil
	})
	s.observe("ax", start, cached, err)
	if err != nil {
		return AXResponse{}, err
	}
	resp := *v.(*AXResponse)
	resp.Cached = cached
	return resp, nil
}

// LFKResponse is the outcome of GET /v1/lfk/{id}: the bounds hierarchy,
// the measured and A/X performance, validation status and the §4.4
// diagnosis for one case-study kernel.
type LFKResponse struct {
	ID        int        `json:"id"`
	Name      string     `json:"name"`
	Bounds    BoundsView `json:"bounds"`
	TP        float64    `json:"t_p"`
	TA        float64    `json:"t_a"`
	TX        float64    `json:"t_x"`
	Validated bool       `json:"validated"`
	Diagnosis string     `json:"diagnosis"`
	// Attribution is the measured run's lane-summed stall attribution by
	// cause (issue cycles under "issue").
	Attribution map[string]int64 `json:"attribution,omitempty"`
	Cached      bool             `json:"cached"`
}

// LFK runs (or recalls) the full case-study pipeline for one kernel id.
func (s *Service) LFK(ctx context.Context, id int) (LFKResponse, error) {
	if err := s.acceptGate(); err != nil {
		return LFKResponse{}, err
	}
	start := time.Now()
	key, err := NewKey("lfk", fmt.Sprintf("%d", id), s.cfg.Compiler, s.cfg.VM, s.cfg.Rules, int64(0))
	if err != nil {
		s.observe("lfk", start, false, err)
		return LFKResponse{}, err
	}
	v, cached, _, err := s.do(ctx, key, decodeJSON[LFKResponse](), func() (any, error) {
		k, err := macs.KernelByID(id)
		if err != nil {
			return nil, err
		}
		cfg := macs.DefaultExperimentConfig()
		cfg.VM = s.cfg.VM
		cfg.Compiler = s.cfg.Compiler
		r, err := macs.RunKernel(k, cfg)
		if err != nil {
			return nil, err
		}
		diag := macs.Diagnose(macs.DiagnosisInputs{
			Analysis: r.Analysis,
			TP:       k.CPL(r.AX.TP),
			TA:       k.CPL(r.AX.TA),
			TX:       k.CPL(r.AX.TX),
			Attr:     &r.Stats.Attr,
		})
		s.recordAttr(r.Stats.Attr)
		return &LFKResponse{
			ID:          k.ID,
			Name:        k.Name,
			Bounds:      boundsView(r.Analysis),
			TP:          k.CPL(r.Cycles),
			TA:          k.CPL(r.AX.TA),
			TX:          k.CPL(r.AX.TX),
			Validated:   r.Validated,
			Diagnosis:   diag.String(),
			Attribution: r.Stats.Attr.Totals(),
		}, nil
	})
	s.observe("lfk", start, cached, err)
	if err != nil {
		return LFKResponse{}, err
	}
	resp := *v.(*LFKResponse)
	resp.Cached = cached
	return resp, nil
}
