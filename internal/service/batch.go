package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"macs/internal/obs"
	"macs/internal/par"
)

// This file is the batch half of the serving layer: POST /v1/batch
// accepts many kernels in one request, fans them out across the worker
// pool, and streams per-kernel results back as NDJSON as each one
// completes. Items reuse the per-kernel cache keys and singleflight
// group, so a mixed hot/cold batch (or duplicate kernels inside one
// batch) dedups exactly like the same kernels sent one at a time.

// maxBatchItems bounds one batch request; beyond it callers should
// split, which also keeps a single request's NDJSON stream and timeout
// budget sane.
const maxBatchItems = 256

// BatchRequest asks for many analyses in one request. Each item is a
// full AnalyzeRequest (source, iterations, priming, tier); the ?tier=
// query parameter, when present, overrides every item's tier just as it
// overrides a single analyze request's.
type BatchRequest struct {
	Items []AnalyzeRequest `json:"items"`
}

// BatchItemResult is one NDJSON line of a batch response: the item's
// position in the request, and either its analysis or its error. Items
// fail independently — one invalid kernel costs one error line, never
// the whole batch.
type BatchItemResult struct {
	Index  int              `json:"index"`
	Result *AnalyzeResponse `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// AnalyzeBatch runs every item of a batch through the normal analyze
// path — tier selection, cache, singleflight, worker pool — fanning out
// at most Workers items concurrently via par.ForEach, and calls emit
// with each item's result as it completes (emit is serialized; results
// arrive in completion order, identified by Index). Per-item failures
// are reported through their result line; AnalyzeBatch itself only
// fails for a malformed batch or a closed service.
func (s *Service) AnalyzeBatch(ctx context.Context, req BatchRequest, emit func(BatchItemResult)) error {
	start := time.Now()
	if err := s.checkBatch(req); err != nil {
		s.observe("batch", start, false, err)
		return err
	}

	// par.ForEachCtx clamps workers to the item count; bounding fan-out
	// to the pool size keeps one batch from flooding the queue and
	// shedding its own items. The context carries the client disconnect:
	// once it fires, items not yet claimed are never launched, so an
	// abandoned batch stops consuming the pool.
	var emitMu sync.Mutex
	err := par.ForEachCtx(ctx, s.cfg.Workers, len(req.Items), func(i int) error {
		ictx, sp := obs.Start(ctx, "batch-item")
		resp, err := s.Analyze(ictx, req.Items[i])
		sp.End()
		item := BatchItemResult{Index: i}
		switch {
		case err != nil:
			item.Error = err.Error()
			s.metrics.ObserveBatchItem("error")
		case resp.Cached:
			item.Result = &resp
			s.metrics.ObserveBatchItem("cached")
		default:
			item.Result = &resp
			s.metrics.ObserveBatchItem("ok")
		}
		emitMu.Lock()
		emit(item)
		emitMu.Unlock()
		return nil // per-item errors ride in the result line
	})
	s.observe("batch", start, false, err)
	return err
}

// checkBatch validates a batch request against the accept gate and the
// size limits without running anything — the HTTP layer calls it before
// committing to a streaming 200.
func (s *Service) checkBatch(req BatchRequest) error {
	if err := s.acceptGate(); err != nil {
		return err
	}
	if len(req.Items) == 0 {
		return fmt.Errorf("service: empty batch")
	}
	if len(req.Items) > maxBatchItems {
		return fmt.Errorf("service: batch of %d items exceeds the %d-item limit", len(req.Items), maxBatchItems)
	}
	return nil
}
