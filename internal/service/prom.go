package service

import (
	"macs/internal/obs"
)

// This file renders the /metrics snapshot in the Prometheus text
// exposition format (GET /metrics?format=prom) through the hand-rolled
// writer in internal/obs — no client library, per the repo's
// zero-dependency policy. The inventory mirrors the JSON snapshot:
// per-endpoint counters and latency histograms, per-stage histograms,
// batch-item outcomes, both cache levels, queue and simulator-pool
// gauges, fast-tier divergence per calibration class, stall-cause
// attribution, and the Go-runtime sample when the sampler is on.

// RenderProm renders one metrics snapshot as a Prometheus exposition
// document. The output always passes obs.ParseProm — the CI scrape gate
// and the golden tests hold it to that.
func RenderProm(snap Snapshot) []byte {
	w := obs.NewPromWriter()

	w.Gauge("macsd_uptime_seconds", "Seconds since the service started.",
		obs.Sample{Value: snap.UptimeSeconds})

	var reqs, errs []obs.Sample
	var durs []obs.HistSample
	for _, name := range obs.SortedLabelKeys(snap.Endpoints) {
		e := snap.Endpoints[name]
		lbl := []obs.Label{{Name: "endpoint", Value: name}}
		reqs = append(reqs, obs.Sample{Labels: lbl, Value: float64(e.Count)})
		errs = append(errs, obs.Sample{Labels: lbl, Value: float64(e.Errors)})
		durs = append(durs, histFromLatency(lbl, e.Latency, e.Count))
	}
	if len(reqs) > 0 {
		w.Counter("macsd_requests_total", "Requests by endpoint.", reqs...)
		w.Counter("macsd_request_errors_total", "Failed requests by endpoint.", errs...)
		w.Histogram("macsd_request_duration_seconds", "Request latency by endpoint.", durs...)
	}

	var stages []obs.HistSample
	for _, name := range obs.SortedLabelKeys(snap.Stages) {
		st := snap.Stages[name]
		stages = append(stages, histFromLatency(
			[]obs.Label{{Name: "stage", Value: name}}, st.Latency, st.Count))
	}
	if len(stages) > 0 {
		w.Histogram("macsd_stage_duration_seconds",
			"Pipeline stage latency, folded from request traces.", stages...)
	}

	var items []obs.Sample
	for _, outcome := range obs.SortedLabelKeys(snap.BatchItems) {
		items = append(items, obs.Sample{
			Labels: []obs.Label{{Name: "outcome", Value: outcome}},
			Value:  float64(snap.BatchItems[outcome]),
		})
	}
	if len(items) > 0 {
		w.Counter("macsd_batch_items_total", "Batch items by outcome.", items...)
	}

	w.Counter("macsd_cache_hits_total", "In-memory result cache hits.",
		obs.Sample{Value: float64(snap.Cache.Hits)})
	w.Counter("macsd_cache_misses_total", "In-memory result cache misses.",
		obs.Sample{Value: float64(snap.Cache.Misses)})
	w.Counter("macsd_cache_evictions_total", "In-memory result cache evictions.",
		obs.Sample{Value: float64(snap.Cache.Evictions)})
	w.Gauge("macsd_cache_entries", "In-memory result cache occupancy.",
		obs.Sample{Value: float64(snap.Cache.Entries)})
	w.Gauge("macsd_cache_capacity", "In-memory result cache capacity.",
		obs.Sample{Value: float64(snap.Cache.Capacity)})

	w.Gauge("macsd_persistent_cache_enabled", "1 when the disk cache is open.",
		obs.Sample{Value: boolGauge(snap.Persistent.Enabled)})
	if snap.Persistent.Enabled {
		w.Gauge("macsd_persistent_cache_entries", "Disk cache entries.",
			obs.Sample{Value: float64(snap.Persistent.Entries)})
		w.Gauge("macsd_persistent_cache_segments", "Disk cache segment files.",
			obs.Sample{Value: float64(snap.Persistent.Segments)})
		w.Gauge("macsd_persistent_cache_bytes", "Disk cache size in bytes.",
			obs.Sample{Value: float64(snap.Persistent.Bytes)})
		w.Counter("macsd_persistent_cache_hits_total", "Disk cache hits.",
			obs.Sample{Value: float64(snap.Persistent.Hits)})
		w.Counter("macsd_persistent_cache_misses_total", "Disk cache misses.",
			obs.Sample{Value: float64(snap.Persistent.Misses)})
		w.Counter("macsd_persistent_cache_writes_total", "Disk cache writes.",
			obs.Sample{Value: float64(snap.Persistent.Writes)})
		w.Counter("macsd_persistent_cache_invalidated_total",
			"Disk cache segments dropped on open for a stale fingerprint.",
			obs.Sample{Value: float64(snap.Persistent.Invalidated)})
	}

	w.Gauge("macsd_queue_workers", "Worker pool size.",
		obs.Sample{Value: float64(snap.Queue.Workers)})
	w.Gauge("macsd_queue_in_flight", "Jobs executing right now.",
		obs.Sample{Value: float64(snap.Queue.InFlight)})
	w.Gauge("macsd_queue_depth", "Jobs waiting in the queue.",
		obs.Sample{Value: float64(snap.Queue.Depth)})
	w.Gauge("macsd_queue_capacity", "Queue capacity before load shedding.",
		obs.Sample{Value: float64(snap.Queue.Capacity)})
	w.Counter("macsd_queue_rejected_total", "Jobs shed with 429 at a full queue.",
		obs.Sample{Value: float64(snap.Queue.Rejected)})
	w.Counter("macsd_queue_completed_total", "Jobs run to completion.",
		obs.Sample{Value: float64(snap.Queue.Done)})

	w.Counter("macsd_dedup_shared_total",
		"Requests served by attaching to another request's in-flight computation.",
		obs.Sample{Value: float64(snap.DedupShared)})
	w.Counter("macsd_pipeline_runs_total", "Actual executions of the analysis pipeline.",
		obs.Sample{Value: float64(snap.PipelineRuns)})
	w.Counter("macsd_sim_cycles_total", "Simulated clock cycles executed by fresh runs.",
		obs.Sample{Value: float64(snap.SimCycles)})

	var stalls []obs.Sample
	for _, cause := range obs.SortedLabelKeys(snap.StallCycles) {
		stalls = append(stalls, obs.Sample{
			Labels: []obs.Label{{Name: "cause", Value: cause}},
			Value:  float64(snap.StallCycles[cause]),
		})
	}
	if len(stalls) > 0 {
		w.Counter("macsd_stall_cycles_total",
			"Simulated cycle attribution by cause (issue cycles under \"issue\").", stalls...)
	}

	w.Counter("macsd_sim_pool_created_total", "Simulator CPUs built by the pool.",
		obs.Sample{Value: float64(snap.SimPool.Created)})
	w.Counter("macsd_sim_pool_recycled_total", "Analyses served by a recycled simulator.",
		obs.Sample{Value: float64(snap.SimPool.Recycled)})

	w.Counter("macsd_fast_tier_served_total", "Fresh fast-tier computations.",
		obs.Sample{Value: float64(snap.FastTier.Served)})
	w.Counter("macsd_fast_tier_fallbacks_total",
		"Auto requests served by the simulator after a data-dependent refusal.",
		obs.Sample{Value: float64(snap.FastTier.Fallbacks)})
	w.Counter("macsd_fast_tier_verified_total",
		"Completed predicted-vs-simulated comparisons.",
		obs.Sample{Value: float64(snap.FastTier.Verified)})
	if len(snap.FastTier.Classes) > 0 {
		var counts, means, maxes []obs.Sample
		for _, class := range obs.SortedLabelKeys(snap.FastTier.Classes) {
			d := snap.FastTier.Classes[class]
			lbl := []obs.Label{{Name: "class", Value: class}}
			counts = append(counts, obs.Sample{Labels: lbl, Value: float64(d.Count)})
			means = append(means, obs.Sample{Labels: lbl, Value: d.MeanRelErr})
			maxes = append(maxes, obs.Sample{Labels: lbl, Value: d.MaxRelErr})
		}
		w.Counter("macsd_fast_tier_divergence_samples_total",
			"Divergence samples by calibration class.", counts...)
		w.Gauge("macsd_fast_tier_mean_rel_err",
			"Mean |predicted-simulated|/simulated by calibration class.", means...)
		w.Gauge("macsd_fast_tier_max_rel_err",
			"Max |predicted-simulated|/simulated by calibration class.", maxes...)
	}

	w.Counter("macsd_explore_sweeps_total", "Completed fresh design-space sweeps.",
		obs.Sample{Value: float64(snap.Explore.Sweeps)})
	w.Counter("macsd_explore_points_swept_total",
		"Grid points scored by the fast tier across all sweeps.",
		obs.Sample{Value: float64(snap.Explore.Swept)})
	w.Counter("macsd_explore_points_pruned_total",
		"Grid points answered analytically without simulation.",
		obs.Sample{Value: float64(snap.Explore.Pruned)})
	w.Counter("macsd_explore_points_simulated_total",
		"Grid points promoted to exact simulation.",
		obs.Sample{Value: float64(snap.Explore.Simulated)})
	w.Gauge("macsd_explore_machines",
		"Distinct machine descriptions with warm evaluator state.",
		obs.Sample{Value: float64(snap.Explore.Machines)})

	if !snap.Runtime.SampledAt.IsZero() {
		rt := snap.Runtime
		w.Gauge("go_goroutines", "Goroutines at the last runtime sample.",
			obs.Sample{Value: float64(rt.Goroutines)})
		w.Gauge("go_heap_alloc_bytes", "Live heap bytes at the last runtime sample.",
			obs.Sample{Value: float64(rt.HeapAllocBytes)})
		w.Gauge("go_heap_sys_bytes", "Heap bytes obtained from the OS.",
			obs.Sample{Value: float64(rt.HeapSysBytes)})
		w.Gauge("go_heap_objects", "Live heap objects at the last runtime sample.",
			obs.Sample{Value: float64(rt.HeapObjects)})
		w.Counter("go_gc_runs_total", "Completed GC cycles.",
			obs.Sample{Value: float64(rt.GCRuns)})
		w.Counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.",
			obs.Sample{Value: rt.GCPauseTotalSecs})
		w.Gauge("go_last_gc_pause_seconds", "Most recent GC pause.",
			obs.Sample{Value: rt.LastGCPauseSecs})
	}

	return w.Bytes()
}

// histFromLatency converts a snapshot latency distribution (cumulative
// bucket counts in milliseconds, -1 encoding +Inf) into an exposition
// histogram in seconds. The snapshot's +Inf bucket becomes the series
// count; the sum is reconstructed from the mean.
func histFromLatency(labels []obs.Label, ls LatencySnapshot, count int64) obs.HistSample {
	h := obs.HistSample{Labels: labels, Count: count, Sum: ls.MeanMS / 1e3 * float64(count)}
	for _, b := range ls.Buckets {
		if b.LEMS < 0 {
			continue // +Inf: the writer appends it from Count
		}
		h.Buckets = append(h.Buckets, obs.Bucket{LE: b.LEMS / 1e3, CumCount: b.Count})
	}
	return h
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
