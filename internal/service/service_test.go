package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"macs"
)

const saxpySrc = `
PROGRAM SAXPY
REAL X(2048), Y(2048), A
INTEGER N, K
DO K = 1, N
  Y(K) = Y(K) + A*X(K)
ENDDO
END
`

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestAnalyzeAndCacheFlag(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source:     saxpySrc,
		Iterations: 64,
		Prime:      Priming{Ints: map[string]int64{"N": 64}, Reals: map[string]float64{"A": 2.5}},
	}
	r1, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first request served from cache")
	}
	if r1.Bounds.TMACS <= 0 || r1.Cycles <= 0 || r1.MeasuredCPL <= 0 {
		t.Fatalf("implausible result: %+v", r1)
	}
	r2, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical second request missed the cache")
	}
	if r2.Bounds != r1.Bounds || r2.Cycles != r1.Cycles {
		t.Fatal("cached result differs from computed result")
	}
	if got := s.PipelineRuns(); got != 1 {
		t.Fatalf("pipeline ran %d times; want 1", got)
	}
}

// TestConcurrentIdenticalRequestsDedup is the singleflight guarantee:
// many concurrent identical requests share exactly one execution.
// Run under -race.
func TestConcurrentIdenticalRequestsDedup(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueSize: 64})
	req := AnalyzeRequest{Source: saxpySrc, Iterations: 32,
		Prime: Priming{Ints: map[string]int64{"N": 32}}}

	const clients = 16
	var wg sync.WaitGroup
	results := make([]AnalyzeResponse, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Analyze(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if results[i].Cycles != results[0].Cycles {
			t.Fatalf("client %d saw different cycles", i)
		}
	}
	if got := s.PipelineRuns(); got != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests; want 1", got, clients)
	}
	m := s.Metrics()
	if m.DedupShared+m.Cache.Hits < clients-1 {
		t.Fatalf("dedup+hits = %d; want >= %d", m.DedupShared+m.Cache.Hits, clients-1)
	}
}

// TestQueueFullBackpressure: with the lone worker blocked and the queue
// full, a new request fails fast with ErrQueueFull.
func TestQueueFullBackpressure(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 1})
	release := make(chan struct{})
	defer close(release)
	if err := s.pool.Submit(context.Background(), func(context.Context) { <-release }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.pool.Stats().InFlight == 1 })
	if err := s.pool.Submit(context.Background(), func(context.Context) {}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Analyze(context.Background(), AnalyzeRequest{Source: saxpySrc})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Analyze with full queue: %v; want ErrQueueFull", err)
	}
}

// TestRequestTimeoutCancelsQueuedWork: a request whose context expires
// while its job is still queued returns DeadlineExceeded, and the
// abandoned job is skipped — the pipeline never runs for it.
func TestRequestTimeoutCancelsQueuedWork(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 4})
	release := make(chan struct{})
	if err := s.pool.Submit(context.Background(), func(context.Context) { <-release }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.pool.Stats().InFlight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Analyze(ctx, AnalyzeRequest{Source: saxpySrc})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Analyze = %v; want DeadlineExceeded", err)
	}

	close(release)
	s.Close() // drain: the abandoned job is dequeued (and skipped) here
	if got := s.PipelineRuns(); got != 0 {
		t.Fatalf("pipeline ran %d times for an abandoned request; want 0", got)
	}
}

// TestCloseDrainsInFlightRequests: jobs accepted before shutdown finish
// and deliver results; Close blocks until they do.
func TestCloseDrainsInFlightRequests(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 4})
	release := make(chan struct{})
	if err := s.pool.Submit(context.Background(), func(context.Context) { <-release }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.pool.Stats().InFlight == 1 })

	type out struct {
		resp AnalyzeResponse
		err  error
	}
	done := make(chan out, 1)
	go func() {
		var o out
		o.resp, o.err = s.Analyze(context.Background(), AnalyzeRequest{Source: saxpySrc, Iterations: 16,
			Prime: Priming{Ints: map[string]int64{"N": 16}}})
		done <- o
	}()
	waitFor(t, func() bool { return s.pool.Stats().Depth == 1 })

	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	s.Close() // must wait for the queued analysis to run

	o := <-done
	if o.err != nil {
		t.Fatalf("drained request failed: %v", o.err)
	}
	if o.resp.Bounds.TMACS <= 0 {
		t.Fatalf("drained request returned empty result: %+v", o.resp)
	}
	if got := s.PipelineRuns(); got != 1 {
		t.Fatalf("pipeline ran %d times; want 1", got)
	}
}

// TestWithDefaultsPartialVMConfig is the regression test for the silent
// VM-config clobbering bug: a caller's partial VM configuration (custom
// memory model, VLMax left unset) used to be thrown away wholesale and
// replaced with the defaults. Only the zero fields may be defaulted.
func TestWithDefaultsPartialVMConfig(t *testing.T) {
	cfg := Config{VM: macs.VMConfig{Machine: macs.Machine{
		MemSlowdown:   2.5,
		BankConflicts: true,
		RefreshStalls: true,
	}}}
	got := cfg.withDefaults().VM
	if got.MemSlowdown != 2.5 {
		t.Fatalf("partial VM config clobbered: MemSlowdown = %v, want 2.5", got.MemSlowdown)
	}
	d := macs.DefaultVMConfig()
	if got.VLMax != d.VLMax {
		t.Fatalf("unset VLMax not defaulted: %d, want %d", got.VLMax, d.VLMax)
	}
	if got.Rules != d.Rules || got.MemSize != d.MemSize || got.MaxCycles != d.MaxCycles ||
		got.MaxInstrs != d.MaxInstrs || got.ScalarLoadLat != d.ScalarLoadLat {
		t.Fatalf("unset fields not defaulted: %+v", got)
	}
	if !got.BankConflicts || !got.RefreshStalls {
		t.Fatalf("caller-set booleans lost: %+v", got)
	}

	// A fully zero VM config still takes the defaults wholesale,
	// including the default-true booleans — plus the service's bounded
	// trace ring, which the serving layer enables on top of the facade's
	// defaults so traced requests can merge simulator lanes.
	want := d
	want.TraceRing = defaultTraceRing
	if def := (Config{}).withDefaults().VM; def != want {
		t.Fatalf("zero VM config = %+v, want defaults %+v", def, want)
	}

	// The partially-configured service actually works end to end.
	s := newTestService(t, Config{Workers: 1, QueueSize: 4,
		VM: macs.VMConfig{Machine: macs.Machine{MemSlowdown: 2.0, BankConflicts: true, RefreshStalls: true}}})
	r, err := s.Analyze(context.Background(), AnalyzeRequest{Source: saxpySrc, Iterations: 32,
		Prime: Priming{Ints: map[string]int64{"N": 32}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Fatalf("implausible result under partial VM config: %+v", r)
	}
}

// TestAnalyzeAfterCloseErrClosed: Close is an accept gate — every public
// entry point refuses new work with ErrClosed afterwards instead of
// reaching into the drained pool.
func TestAnalyzeAfterCloseErrClosed(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 4})
	s.Close()
	ctx := context.Background()
	if _, err := s.Analyze(ctx, AnalyzeRequest{Source: saxpySrc}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Analyze after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Bound(ctx, BoundRequest{Source: saxpySrc}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Bound after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Check(ctx, CheckRequest{Source: saxpySrc}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Check after Close = %v, want ErrClosed", err)
	}
	if _, err := s.AX(ctx, AXRequest{Source: saxpySrc}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AX after Close = %v, want ErrClosed", err)
	}
	if _, err := s.LFK(ctx, 12); !errors.Is(err, ErrClosed) {
		t.Fatalf("LFK after Close = %v, want ErrClosed", err)
	}
	err := s.AnalyzeBatch(ctx, BatchRequest{Items: []AnalyzeRequest{{Source: saxpySrc}}}, func(BatchItemResult) {})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("AnalyzeBatch after Close = %v, want ErrClosed", err)
	}
}

// saxpyVariant builds a distinct-but-valid kernel source per dim, so a
// stress test can force fresh computations (distinct cache keys) at will.
func saxpyVariant(dim int) string {
	return fmt.Sprintf(`
PROGRAM SAXPY
REAL X(%d), Y(%d), A
INTEGER N, K
DO K = 1, N
  Y(K) = Y(K) + A*X(K)
ENDDO
END
`, dim, dim)
}

// TestCloseRacesAutoTierRequests is the regression test for the
// Service.Close shutdown race: verifyWG.Wait used to run with nothing
// stopping an in-flight auto-tier request from calling verifyWG.Add
// after Wait returned, leaking a verification into a closed pool (and
// racing the WaitGroup). With the accept gate the interleaving is safe:
// run under -race.
func TestCloseRacesAutoTierRequests(t *testing.T) {
	for round := 0; round < 4; round++ {
		s := New(Config{Workers: 4, QueueSize: 64})
		ctx := context.Background()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for j := 0; j < 50; j++ {
					// Distinct sources force fresh fast computations, so
					// every successful request tries to spawn a verification.
					req := AnalyzeRequest{
						Source: saxpyVariant(64 + round*1000 + g*100 + j),
						Tier:   "auto",
						Prime:  Priming{Ints: map[string]int64{"N": 8}},
					}
					_, err := s.Analyze(ctx, req)
					if errors.Is(err, ErrClosed) {
						return
					}
					if err != nil && !errors.Is(err, ErrQueueFull) {
						t.Errorf("auto analyze: %v", err)
						return
					}
				}
			}(g)
		}
		close(start)
		time.Sleep(time.Duration(1+round) * 5 * time.Millisecond)
		s.Close()
		wg.Wait()
		if _, err := s.Analyze(ctx, AnalyzeRequest{Source: saxpySrc}); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: Analyze after Close = %v, want ErrClosed", round, err)
		}
	}
}

func TestBoundNoSimulation(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	r, err := s.Bound(context.Background(), BoundRequest{Source: saxpySrc})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bounds.TMA <= 0 || r.Bounds.TMACS < r.Bounds.TMAC {
		t.Fatalf("implausible hierarchy: %+v", r.Bounds)
	}
	r2, err := s.Bound(context.Background(), BoundRequest{Source: saxpySrc})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second bound request missed the cache")
	}
}

func TestAXEndpointMeasures(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	r, err := s.AX(context.Background(), AXRequest{Source: saxpySrc,
		Prime: Priming{Ints: map[string]int64{"N": 32}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.TP <= 0 || r.TA <= 0 || r.TX <= 0 {
		t.Fatalf("implausible A/X measurement: %+v", r)
	}
}

func TestAnalyzeCompileErrorNotCached(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 4})
	req := AnalyzeRequest{Source: "PROGRAM P\nREAL X(8)\nINTEGER K\nX(1) = 1.0\nEND\n"}
	if _, err := s.Analyze(context.Background(), req); err == nil {
		t.Fatal("analyze of loop-less source succeeded; want error")
	}
	if _, err := s.Analyze(context.Background(), req); err == nil {
		t.Fatal("second analyze succeeded; want error again")
	}
	// Both attempts executed: failures are not cached.
	if got := s.PipelineRuns(); got != 2 {
		t.Fatalf("pipeline ran %d times; want 2 (errors uncached)", got)
	}
	if got := s.cache.Len(); got != 0 {
		t.Fatalf("cache holds %d entries after failures; want 0", got)
	}
}

// TestSingleflightLateWaiterAfterLeaderTimeout drives the edge where the
// leader's context expires while its job is still queued and another
// request attaches to the abandoned flight afterwards: the late waiter
// must observe a result or an error — never hang — and PipelineRuns must
// stay consistent with what actually executed.
func TestSingleflightLateWaiterAfterLeaderTimeout(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 8})

	// Occupy the single worker so the leader's job cannot start.
	release := make(chan struct{})
	started := make(chan struct{})
	if err := s.pool.Submit(context.Background(), func(context.Context) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	req := AnalyzeRequest{Source: saxpySrc}
	lctx, lcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer lcancel()
	if _, err := s.Analyze(lctx, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader error = %v, want deadline exceeded", err)
	}

	// The leader was the only waiter, so its departure cancelled the
	// flight while the job sits in the queue. Attach a late waiter.
	waiterErr := make(chan error, 1)
	var waiterResp AnalyzeResponse
	go func() {
		wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer wcancel()
		r, err := s.Analyze(wctx, req)
		waiterResp = r
		waiterErr <- err
	}()

	// Let the waiter attach (or lead a fresh flight — both are legal
	// interleavings), then free the worker.
	time.Sleep(20 * time.Millisecond)
	close(release)

	select {
	case err := <-waiterErr:
		runs := s.PipelineRuns()
		switch {
		case err == nil:
			// The waiter led (or re-led) a live flight and got a result.
			if waiterResp.Cycles <= 0 {
				t.Errorf("waiter result implausible: %+v", waiterResp)
			}
			if runs != 1 {
				t.Errorf("pipeline ran %d times; want 1", runs)
			}
		case errors.Is(err, context.Canceled):
			// The waiter attached to the abandoned flight and saw its
			// cancellation; nothing executed.
			if runs != 0 {
				t.Errorf("cancelled flight but pipeline ran %d times", runs)
			}
		default:
			t.Errorf("waiter error = %v, want nil or context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("late waiter hung")
	}

	// The service must still be fully usable: a fresh request succeeds.
	r, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Fatalf("post-edge analyze implausible: %+v", r)
	}
}

// TestSingleflightWaiterAttachedBeforeLeaderTimeout covers the sibling
// interleaving: a second waiter attaches while the leader is still
// waiting, the leader then times out, and the surviving waiter keeps the
// flight alive to completion.
func TestSingleflightWaiterAttachedBeforeLeaderTimeout(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 8})
	release := make(chan struct{})
	started := make(chan struct{})
	if err := s.pool.Submit(context.Background(), func(context.Context) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	req := AnalyzeRequest{Source: saxpySrc}
	leaderErr := make(chan error, 1)
	lctx, lcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer lcancel()
	go func() {
		_, err := s.Analyze(lctx, req)
		leaderErr <- err
	}()

	// Attach the second waiter while the leader is still queued.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flights) == 1
	})
	waiterErr := make(chan error, 1)
	go func() {
		wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer wcancel()
		_, err := s.Analyze(wctx, req)
		waiterErr <- err
	}()
	waitFor(t, func() bool { return s.dedupShared.Load() == 1 })

	if err := <-leaderErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader error = %v, want deadline exceeded", err)
	}
	close(release)
	select {
	case err := <-waiterErr:
		if err != nil {
			t.Fatalf("surviving waiter error = %v, want result", err)
		}
		if got := s.PipelineRuns(); got != 1 {
			t.Errorf("pipeline ran %d times; want 1", got)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("surviving waiter hung")
	}
}
