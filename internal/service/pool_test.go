package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 8)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		for {
			err := p.Submit(context.Background(), func(context.Context) { n.Add(1) })
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	p.Close()
	if n.Load() != 20 {
		t.Fatalf("ran %d jobs; want 20", n.Load())
	}
}

func TestPoolQueueOverflow(t *testing.T) {
	p := NewPool(1, 2)
	release := make(chan struct{})
	// Occupy the single worker...
	if err := p.Submit(context.Background(), func(context.Context) { <-release }); err != nil {
		t.Fatal(err)
	}
	// ...wait until it is actually in flight so the queue is empty...
	waitFor(t, func() bool { return p.Stats().InFlight == 1 })
	// ...fill the queue...
	for i := 0; i < 2; i++ {
		if err := p.Submit(context.Background(), func(context.Context) {}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// ...and the next submit must shed load.
	err := p.Submit(context.Background(), func(context.Context) {})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v; want ErrQueueFull", err)
	}
	if got := p.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d; want 1", got)
	}
	close(release)
	p.Close()
}

// TestPoolCloseDrains checks graceful shutdown: Close returns only after
// queued and in-flight jobs finish, and they all actually ran.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(1, 4)
	var n atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	p.Submit(context.Background(), func(context.Context) { //nolint:errcheck
		close(started)
		<-release
		n.Add(1)
	})
	<-started
	for i := 0; i < 3; i++ {
		if err := p.Submit(context.Background(), func(context.Context) { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	p.Close() // must block until all 4 jobs completed
	if n.Load() != 4 {
		t.Fatalf("drained %d jobs; want 4", n.Load())
	}
	if err := p.Submit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v; want ErrClosed", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
