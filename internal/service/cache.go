package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Key is the content address of one analysis result: the SHA-256 over
// the request kind, the kernel source and every configuration field that
// can change the outcome. Identical requests hash to identical keys, so
// the cache and the singleflight group both dedup on it.
type Key string

// NewKey hashes the parts that determine an analysis result. Each part
// is JSON-encoded into the hash (the encoder's trailing newline acts as
// an unambiguous separator for the string parts).
func NewKey(kind, source string, parts ...any) (Key, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(kind); err != nil {
		return "", err
	}
	if err := enc.Encode(source); err != nil {
		return "", err
	}
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("service: hashing cache key: %w", err)
		}
	}
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// Cache is a bounded LRU over completed analysis results, keyed by
// content address. Values must be treated as immutable once stored —
// readers on other goroutines share them.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key Key
	val any
}

// NewCache returns an LRU cache holding at most capacity entries
// (clamped to at least 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores v under k, evicting the least recently used entry when the
// cache is at capacity.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of the cache, exposed on
// /metrics.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
