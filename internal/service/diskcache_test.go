package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"macs"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	val := []byte(`{"cycles":1234}`)
	if err := c.Put(Key("k1"), val); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(Key("k1"))
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get(k1) = %q, %v; want %q", got, ok, val)
	}
	if _, ok := c.Get(Key("absent")); ok {
		t.Fatal("Get(absent) hit")
	}
	// Entries are immutable: a duplicate Put is a no-op, not a rewrite.
	if err := c.Put(Key("k1"), []byte(`{"cycles":9}`)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("after duplicate Put: %+v, want 1 write / 1 entry", st)
	}
	if got, _ := c.Get(Key("k1")); !bytes.Equal(got, val) {
		t.Fatalf("duplicate Put rewrote the entry: %q", got)
	}
	c.Close()

	// Reopen with the same fingerprint: the index is rebuilt by scanning
	// and the entry is a warm hit.
	c2, err := OpenDiskCache(dir, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", c2.Len())
	}
	got, ok = c2.Get(Key("k1"))
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("reopened Get(k1) = %q, %v; want %q", got, ok, val)
	}
}

func TestDiskCacheFingerprintInvalidation(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(Key("k1"), []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A different fingerprint (schema bump, different pipeline config)
	// must drop the stale segment rather than serve wrong answers.
	c2, err := OpenDiskCache(dir, "fp-b")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 0 {
		t.Fatalf("stale entries survived a fingerprint change: Len = %d", c2.Len())
	}
	if st := c2.Stats(); st.Invalidated != 1 {
		t.Fatalf("invalidated = %d, want 1", st.Invalidated)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("stale segment files left behind: %v", segs)
	}
}

func TestDiskCacheTornTail(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{"k1", "k2"} {
		if err := c.Put(k, []byte(`{"v":"`+string(k)+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	// Simulate a crash mid-append: a half-written JSON line at the tail.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"k3","v":{"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The intact prefix survives; the torn record is ignored.
	c2, err := OpenDiskCache(dir, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 2 {
		t.Fatalf("after torn tail Len = %d, want 2", c2.Len())
	}
	for _, k := range []Key{"k1", "k2"} {
		if _, ok := c2.Get(k); !ok {
			t.Fatalf("entry %s lost to the torn tail", k)
		}
	}
	if _, ok := c2.Get(Key("k3")); ok {
		t.Fatal("torn record served")
	}
	// The store stays writable after recovery (a fresh segment).
	if err := c2.Put(Key("k4"), []byte(`4`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(Key("k4")); !ok {
		t.Fatal("post-recovery Put not readable")
	}
}

// TestServiceWarmRestartZeroRuns is the persistence acceptance test: a
// service with a cache dir analyzes a batch, shuts down, and a fresh
// service over the same dir serves the identical batch entirely from
// the persistent cache — zero pipeline runs.
func TestServiceWarmRestartZeroRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 4, QueueSize: 64, CacheDir: dir}
	batch := lfkBatch(t, 10)
	ctx := context.Background()

	s := New(cfg)
	res := runBatch(t, s, ctx, batch)
	if len(res) != len(batch.Items) {
		t.Fatalf("cold batch emitted %d results, want %d", len(res), len(batch.Items))
	}
	for i, r := range res {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("cold item %d: %+v", i, r)
		}
	}
	if got := s.PipelineRuns(); got != int64(len(batch.Items)) {
		t.Fatalf("cold batch ran the pipeline %d times, want %d", got, len(batch.Items))
	}
	m := s.Metrics()
	if !m.Persistent.Enabled || m.Persistent.Writes != int64(len(batch.Items)) {
		t.Fatalf("persistent cache after cold batch: %+v", m.Persistent)
	}
	s.Close()

	s2 := New(cfg)
	defer s2.Close()
	res2 := runBatch(t, s2, ctx, batch)
	if len(res2) != len(batch.Items) {
		t.Fatalf("warm batch emitted %d results, want %d", len(res2), len(batch.Items))
	}
	for i, r := range res2 {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("warm item %d: %+v", i, r)
		}
		if !r.Result.Cached {
			t.Fatalf("warm item %d missed the cache", i)
		}
	}
	if got := s2.PipelineRuns(); got != 0 {
		t.Fatalf("warm restart ran the pipeline %d times, want 0", got)
	}
	m2 := s2.Metrics()
	if m2.Persistent.Hits < int64(len(batch.Items)) {
		t.Fatalf("persistent hits = %d, want >= %d (%+v)", m2.Persistent.Hits, len(batch.Items), m2.Persistent)
	}

	// The warm results match the cold run bit-for-bit where it matters.
	for i := range res {
		if res[i].Result.Cycles != res2[i].Result.Cycles {
			t.Fatalf("item %d: cold %d cycles, warm %d", i, res[i].Result.Cycles, res2[i].Result.Cycles)
		}
	}
}

// TestServiceUnusableCacheDir: a cache dir that cannot be created must
// degrade to memory-only service, not fail startup.
func TestServiceUnusableCacheDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Config{Workers: 1, QueueSize: 4, CacheDir: filepath.Join(file, "cache")})
	r, err := s.Analyze(context.Background(), AnalyzeRequest{Source: saxpySrc, Iterations: 16,
		Prime: Priming{Ints: map[string]int64{"N": 16}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Fatalf("memory-only fallback broken: %+v", r)
	}
	if m := s.Metrics(); m.Persistent.Enabled {
		t.Fatal("persistent cache reported enabled over an unusable dir")
	}
}

// TestConfigFingerprintMachineKeyed pins the cache keying scheme to the
// canonical machine fingerprint: two services differing only in a machine
// field (bank count) must not share persisted results, while run-bound
// knobs that do not change result meaning for identical requests still
// key independently. A fresh service over a cache dir written under a
// different machine drops the stale segment on open.
func TestConfigFingerprintMachineKeyed(t *testing.T) {
	base := Config{Workers: 1, QueueSize: 4}
	fpA, err := configFingerprint(base.withDefaults())
	if err != nil {
		t.Fatal(err)
	}

	// Same config → same fingerprint (deterministic keying).
	fpA2, err := configFingerprint(base.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpA2 {
		t.Fatalf("fingerprint not deterministic")
	}

	// A machine change moves the fingerprint.
	diff := base
	diff.VM.Machine = macs.DefaultMachine()
	diff.VM.Machine.Banks = 16
	fpB, err := configFingerprint(diff.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if fpB == fpA {
		t.Fatalf("bank-count change did not move the cache fingerprint")
	}

	// A run-bound change (instruction budget) also moves it — budgets can
	// change whether a result exists at all.
	run := base
	run.VM.MaxInstrs = 12345
	fpC, err := configFingerprint(run.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if fpC == fpA {
		t.Fatalf("run-config change did not move the cache fingerprint")
	}

	// End to end: a cache written under machine A self-invalidates when a
	// service with machine B opens the same directory.
	dir := t.TempDir()
	cfgA := Config{Workers: 2, QueueSize: 8, CacheDir: dir}
	sA := New(cfgA)
	if _, err := sA.Analyze(context.Background(), AnalyzeRequest{Source: saxpySrc, Iterations: 16,
		Prime: Priming{Ints: map[string]int64{"N": 16}}}); err != nil {
		t.Fatal(err)
	}
	if w := sA.Metrics().Persistent.Writes; w != 1 {
		t.Fatalf("machine A wrote %d entries, want 1", w)
	}
	sA.Close()

	cfgB := cfgA
	cfgB.VM.Machine = macs.DefaultMachine()
	cfgB.VM.Machine.Banks = 16
	sB := New(cfgB)
	defer sB.Close()
	m := sB.Metrics()
	if !m.Persistent.Enabled {
		t.Fatal("persistent cache not enabled under machine B")
	}
	if m.Persistent.Invalidated != 1 || m.Persistent.Entries != 0 {
		t.Fatalf("machine change did not invalidate the cache: %+v", m.Persistent)
	}
}
