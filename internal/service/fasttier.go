package service

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"macs"
	"macs/internal/obs"
)

// This file is the serving side of the analytical fast tier: the
// tier=fast path answers from the compiled schedule in microseconds,
// and the tier=auto path serves that answer immediately while an
// asynchronous exact simulation verifies it, feeding the fast_tier
// divergence section of /metrics.

// fastTierTracker aggregates fast-tier serving counters and the
// predicted-vs-simulated divergence sampled whenever one request ran
// both tiers, grouped by the prediction's calibration class.
type fastTierTracker struct {
	mu        sync.Mutex
	served    int64
	fallbacks int64
	classes   map[string]*divergenceAgg
}

type divergenceAgg struct {
	count  int64
	sumRel float64
	maxRel float64
}

func newFastTierTracker() *fastTierTracker {
	return &fastTierTracker{classes: make(map[string]*divergenceAgg)}
}

// recordServed counts one fresh fast-tier computation. Cache hits and
// singleflight waiters do not call it: a kernel replayed N times is one
// computation, not N, so the served counter tracks distinct work.
func (t *fastTierTracker) recordServed() {
	t.mu.Lock()
	t.served++
	t.mu.Unlock()
}

// recordFallback counts one auto request the fast tier could not answer
// (data-dependent timing) that was served by the simulator instead.
func (t *fastTierTracker) recordFallback() {
	t.mu.Lock()
	t.fallbacks++
	t.mu.Unlock()
}

// recordDivergence folds one predicted-vs-simulated comparison into the
// per-class aggregate.
func (t *fastTierTracker) recordDivergence(class string, relErr float64) {
	if class == "" {
		class = "unknown"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.classes[class]
	if !ok {
		a = &divergenceAgg{}
		t.classes[class] = a
	}
	a.count++
	a.sumRel += relErr
	if relErr > a.maxRel {
		a.maxRel = relErr
	}
}

func (t *fastTierTracker) snapshot() FastTierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := FastTierStats{Served: t.served, Fallbacks: t.fallbacks}
	if len(t.classes) > 0 {
		out.Classes = make(map[string]DivergenceStats, len(t.classes))
		keys := make([]string, 0, len(t.classes))
		for class := range t.classes {
			keys = append(keys, class)
		}
		sort.Strings(keys)
		for _, class := range keys {
			a := t.classes[class]
			out.Verified += a.count
			out.Classes[class] = DivergenceStats{
				Count:      a.count,
				MeanRelErr: a.sumRel / float64(a.count),
				MaxRelErr:  a.maxRel,
			}
		}
	}
	return out
}

// analyzeFast serves one request through the analytical tier only. The
// cache key is distinct from the exact tier's — the two answer different
// questions — but shared between tier=fast and tier=auto requests, which
// compute the same prediction. The second return value reports whether
// this call ran a fresh prediction (as opposed to a cache hit or a
// singleflight attach); the serving counters and the auto tier's
// verification key off it so a kernel replayed N times lands one served
// count and one divergence sample, not N.
func (s *Service) analyzeFast(ctx context.Context, req AnalyzeRequest, tier macs.Tier) (AnalyzeResponse, bool, error) {
	start := time.Now()
	key, err := NewKey("analyze-fast", req.Source, s.cfg.Compiler, s.cfg.VM, s.cfg.Rules, req.Iterations, req.Prime)
	if err != nil {
		s.observe("analyze-fast", start, false, err)
		return AnalyzeResponse{}, false, err
	}
	v, cached, fresh, err := s.do(ctx, key, decodeJSON[AnalyzeResponse](), func() (any, error) {
		res, err := s.analyzer.PredictSourceCtx(ctx, req.Source, req.Iterations, req.Prime.fastInts())
		if err != nil && errors.Is(err, macs.ErrDataDependent) {
			// The single-path replay refused: try the path enumerator,
			// which serves a static [lo, hi] envelope when the
			// data-dependent control flow is boundedly enumerable.
			res, err = s.analyzer.PredictSourceIntervalCtx(ctx, req.Source, req.Iterations, req.Prime.fastInts())
		}
		if err != nil {
			return nil, err
		}
		p := res.Prediction
		return &AnalyzeResponse{
			Bounds:         boundsView(res.Analysis),
			PredictedCPL:   p.CPL,
			ErrorBand:      p.ErrorBand,
			Class:          p.Class,
			Interval:       p.Interval,
			Paths:          p.Paths,
			PredictedCPLLo: p.CPLLo,
			PredictedCPLHi: p.CPLHi,
			CyclesLo:       p.CyclesLo,
			CyclesHi:       p.CyclesHi,
			Cycles:         p.Cycles,
			Iterations:     res.Iterations,
			Report:         res.Report(),
			Attribution:    p.Attr.Totals(),
		}, nil
	})
	s.observe("analyze-fast", start, cached, err)
	if err != nil {
		return AnalyzeResponse{}, false, err
	}
	resp := *v.(*AnalyzeResponse)
	resp.Tier = tier.String()
	resp.Cached = cached
	if fresh {
		s.fastTier.recordServed()
	}
	return resp, fresh, nil
}

// analyzeAuto serves the fast prediction immediately and verifies it
// against the simulator asynchronously. A program whose timing the fast
// tier cannot model falls back to the exact tier inline. Only a fresh
// prediction spawns a verification: a cached fast answer was already
// verified when it was computed, so replaying it must not add duplicate
// divergence samples.
func (s *Service) analyzeAuto(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, error) {
	resp, fresh, err := s.analyzeFast(ctx, req, macs.TierAuto)
	if err != nil {
		if errors.Is(err, macs.ErrDataDependent) {
			s.fastTier.recordFallback()
			return s.analyzeExact(ctx, req)
		}
		return AnalyzeResponse{}, err
	}
	if fresh {
		s.verifyAsync(ctx, req, resp)
	}
	return resp, nil
}

// verifyAsync runs the exact tier in the background for a fast answer
// already served, and records the relative divergence between predicted
// and simulated cycles. The exact run goes through the normal cache and
// worker pool, so a later tier=exact request for the same source is a
// cache hit. Registration is gated on the service's closed flag under
// closeMu: either the verification registers before Close flips the flag
// (and Close's verifyWG.Wait drains it), or it observes the flag and
// never starts — verifyWG.Add can no longer race Close's Wait into a
// closed pool.
func (s *Service) verifyAsync(rctx context.Context, req AnalyzeRequest, fast AnalyzeResponse) {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.verifyWG.Add(1)
	s.closeMu.Unlock()
	go func() {
		defer s.verifyWG.Done()
		// WithoutCancel keeps the requester's trace values (so the
		// verification's spans land on the originating trace while it is
		// live) but detaches its deadline: the verification outlives the
		// request that spawned it.
		ctx, cancel := context.WithTimeout(context.WithoutCancel(rctx), s.cfg.RequestTimeout)
		defer cancel()
		ctx, sp := obs.Start(ctx, "verify-exact")
		exact, err := s.analyzeExact(ctx, req)
		sp.End()
		if err != nil {
			s.log.Warn("fast-tier verification failed", "err", err)
			return
		}
		if exact.Cycles <= 0 {
			return
		}
		rel := math.Abs(float64(fast.Cycles-exact.Cycles)) / float64(exact.Cycles)
		s.fastTier.recordDivergence(fast.Class, rel)
		if fast.Interval {
			// Interval answers promise containment, not a point band: the
			// simulated measurement must land inside [CyclesLo, CyclesHi].
			if exact.Cycles < fast.CyclesLo || exact.Cycles > fast.CyclesHi {
				s.log.Warn("fast-tier interval does not contain the simulated measurement",
					"class", fast.Class,
					"cycles_lo", fast.CyclesLo,
					"cycles_hi", fast.CyclesHi,
					"simulated_cycles", exact.Cycles,
				)
			}
			return
		}
		if fast.ErrorBand > 0 && rel > fast.ErrorBand {
			s.log.Warn("fast-tier prediction outside its error band",
				"class", fast.Class,
				"predicted_cycles", fast.Cycles,
				"simulated_cycles", exact.Cycles,
				"rel_err", rel,
				"band", fast.ErrorBand,
			)
		}
	}()
}
