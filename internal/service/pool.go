package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Errors returned by Pool.Submit. ErrQueueFull is the backpressure
// signal: the HTTP layer maps it to 429 + Retry-After.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrClosed    = errors.New("service: pool closed")
)

// task is one queued unit of work. ctx is checked by the job closure
// before expensive work starts, so requests abandoned by every waiter
// are skipped instead of executed.
type task struct {
	ctx context.Context
	fn  func(context.Context)
}

// Pool is a bounded worker pool: a fixed number of goroutines draining a
// bounded queue. Submit never blocks — when the queue is full it fails
// fast with ErrQueueFull so callers can shed load instead of piling up.
type Pool struct {
	queue chan task
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	inFlight atomic.Int64
	rejected atomic.Int64
	done     atomic.Int64
	workers  int
}

// NewPool starts workers goroutines over a queue of queueSize pending
// jobs. Both are clamped to at least 1.
func NewPool(workers, queueSize int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueSize < 1 {
		queueSize = 1
	}
	p := &Pool{queue: make(chan task, queueSize), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		p.inFlight.Add(1)
		t.fn(t.ctx)
		p.inFlight.Add(-1)
		p.done.Add(1)
	}
}

// Submit enqueues fn for execution with ctx. It returns immediately:
// ErrQueueFull if the queue is at capacity, ErrClosed after Close.
func (p *Pool) Submit(ctx context.Context, fn func(context.Context)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.queue <- task{ctx: ctx, fn: fn}:
		return nil
	default:
		p.rejected.Add(1)
		return ErrQueueFull
	}
}

// Close stops accepting new work and blocks until every queued and
// in-flight job has finished — the drain half of graceful shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// PoolStats is a point-in-time snapshot of the pool, exposed on /metrics.
type PoolStats struct {
	Workers  int   `json:"workers"`
	InFlight int64 `json:"in_flight"`
	Depth    int   `json:"queue_depth"`
	Capacity int   `json:"queue_capacity"`
	Rejected int64 `json:"rejected"`
	Done     int64 `json:"completed"`
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:  p.workers,
		InFlight: p.inFlight.Load(),
		Depth:    len(p.queue),
		Capacity: cap(p.queue),
		Rejected: p.rejected.Load(),
		Done:     p.done.Load(),
	}
}
