package service

import (
	"context"
	"fmt"
	"time"

	"macs/internal/explore"
	"macs/internal/vm"
)

// This file is the design-space half of the serving layer: POST
// /v1/explore accepts a kernel and a machine-parameter grid, sweeps the
// grid through the two-stage explore engine (fast-tier score every
// point, simulate the top fraction), and streams each simulated survivor
// back as an NDJSON event as its measurement completes. Whole sweeps are
// cached — memory LRU plus the persistent disk cache — under a key that
// includes the grid, so a repeated sweep replays its events without
// running anything; the per-machine simulator pools and prediction memos
// live in one shared evaluator registry so even cold sweeps reuse warm
// machine state.

// maxExplorePoints bounds one sweep request. 4096 points keep a single
// request's wall time and response size sane; larger spaces should be
// split along an axis.
const maxExplorePoints = 4096

// ExploreRequest asks for one grid sweep over one kernel.
type ExploreRequest struct {
	// Name labels the sweep in events and reports; informational.
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
	// Iterations converts cycles to CPL; 0 skips the conversion.
	Iterations int64   `json:"iterations,omitempty"`
	Prime      Priming `json:"prime,omitempty"`
	// Grid declares the swept machine space. An empty grid sweeps exactly
	// one point: the service's configured machine.
	Grid explore.Grid `json:"grid"`
	// TopFrac is the fraction of points promoted to exact simulation
	// (0 takes the engine default, 5%); MinTop floors the survivor count.
	TopFrac float64 `json:"top_frac,omitempty"`
	MinTop  int     `json:"min_top,omitempty"`
}

// ExploreResponse is the terminal summary of a sweep — and the unit the
// result cache stores. Ranked holds only the simulated survivors,
// best-first; pruned points are counted but not shipped (their scores
// are reproducible in microseconds).
type ExploreResponse struct {
	Name      string `json:"name,omitempty"`
	Swept     int    `json:"swept"`
	Pruned    int    `json:"pruned"`
	Simulated int    `json:"simulated"`
	// Fallback reports that the program was data-dependent and every
	// point was simulated (no pruning).
	Fallback bool `json:"fallback,omitempty"`
	// Ranked is the simulated survivors ordered by measured cycles.
	Ranked []explore.Point `json:"ranked"`
	Cached bool            `json:"cached"`
}

// ExploreEvent is one NDJSON line of an explore response: a "point"
// event per simulated survivor (completion order, unranked), then one
// terminal "done" event carrying the summary — or "error" if the sweep
// failed after the stream began.
type ExploreEvent struct {
	Type   string           `json:"type"`
	Point  *explore.Point   `json:"point,omitempty"`
	Result *ExploreResponse `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// checkExplore validates a request and builds its engine without running
// anything — the HTTP layer calls it before committing to a streaming
// 200. The grid's base machine defaults to the service's configured
// machine, so an axis-free request sweeps exactly the machine /v1/analyze
// simulates.
func (s *Service) checkExplore(req ExploreRequest) (*explore.Engine, error) {
	if err := s.acceptGate(); err != nil {
		return nil, err
	}
	if req.Source == "" {
		return nil, fmt.Errorf("service: explore request has no source")
	}
	if n := req.Grid.Size(); n > maxExplorePoints {
		return nil, fmt.Errorf("service: grid of %d points exceeds the %d-point limit", n, maxExplorePoints)
	}
	if req.TopFrac < 0 || req.TopFrac > 1 {
		return nil, fmt.Errorf("service: top_frac %g outside [0,1]", req.TopFrac)
	}
	if req.Grid.Base == (vm.Machine{}) {
		req.Grid.Base = s.cfg.VM.Machine
	}
	return explore.New(req.Grid, explore.Options{
		Run:        s.cfg.VM,
		Compiler:   s.cfg.Compiler,
		TopFrac:    req.TopFrac,
		MinTop:     req.MinTop,
		Workers:    s.cfg.Workers,
		Evaluators: s.explorers,
	})
}

// Explore sweeps the request's grid over its kernel, calling emit with a
// "point" event per simulated survivor as it completes and a terminal
// "done" event with the ranked summary (emit is serialized). Cached
// sweeps — from either cache level — replay their survivor events in
// rank order and mark the summary Cached.
func (s *Service) Explore(ctx context.Context, req ExploreRequest, emit func(ExploreEvent)) error {
	start := time.Now()
	eng, err := s.checkExplore(req)
	if err != nil {
		s.observe("explore", start, false, err)
		return err
	}

	key, err := NewKey("explore", req.Source, s.cfg.Compiler, s.cfg.VM, s.cfg.Rules,
		req.Iterations, req.Prime, req.Grid, req.TopFrac, req.MinTop)
	if err != nil {
		s.observe("explore", start, false, err)
		return err
	}
	if v, ok := s.cache.Get(key); ok {
		s.replayExplore(*v.(*ExploreResponse), emit)
		s.observe("explore", start, true, nil)
		return nil
	}
	if v, ok := s.diskGet(key, decodeJSON[ExploreResponse]()); ok {
		s.cache.Put(key, v)
		s.replayExplore(*v.(*ExploreResponse), emit)
		s.observe("explore", start, true, nil)
		return nil
	}

	sw, err := eng.Sweep(ctx, explore.Request{
		Name:       req.Name,
		Source:     req.Source,
		Iterations: req.Iterations,
		Ints:       req.Prime.fastInts(),
		Prime:      vmPrime(req.Prime),
		Observe: func(p explore.Point) {
			emit(ExploreEvent{Type: "point", Point: &p})
		},
	})
	if err != nil {
		s.observe("explore", start, false, err)
		return err
	}
	s.exploreSweeps.Add(1)
	s.exploreSwept.Add(int64(sw.Swept))
	s.explorePruned.Add(int64(sw.Pruned))
	s.exploreSimulated.Add(int64(sw.Simulated))

	resp := &ExploreResponse{
		Name:      sw.Name,
		Swept:     sw.Swept,
		Pruned:    sw.Pruned,
		Simulated: sw.Simulated,
		Fallback:  sw.Fallback,
	}
	for _, p := range sw.Ranked() {
		if !p.Simulated {
			break
		}
		resp.Ranked = append(resp.Ranked, p)
	}
	dec := decodeJSON[ExploreResponse]()
	s.cache.Put(key, resp)
	s.diskPut(key, dec, resp)
	emit(ExploreEvent{Type: "done", Result: resp})
	s.observe("explore", start, false, nil)
	return nil
}

// replayExplore re-emits a cached sweep's event stream: each ranked
// survivor as a point event, then the summary marked Cached.
func (s *Service) replayExplore(resp ExploreResponse, emit func(ExploreEvent)) {
	for i := range resp.Ranked {
		emit(ExploreEvent{Type: "point", Point: &resp.Ranked[i]})
	}
	resp.Cached = true
	emit(ExploreEvent{Type: "done", Result: &resp})
}

// vmPrime adapts a Priming to the raw simulator callback the explore
// engine takes (the engine runs below the macs facade). macs.CPU is an
// alias of vm.CPU, so the facade-shaped primeFunc applies directly.
func vmPrime(p Priming) func(*vm.CPU) error {
	return p.primeFunc()
}

// ExploreStats is the explore section of /metrics.
type ExploreStats struct {
	// Sweeps counts completed fresh sweeps (cached replays excluded).
	Sweeps int64 `json:"sweeps"`
	// Swept, Pruned and Simulated total the grid points those sweeps
	// scored, answered analytically, and simulated exactly.
	Swept     int64 `json:"points_swept"`
	Pruned    int64 `json:"points_pruned"`
	Simulated int64 `json:"points_simulated"`
	// Machines is the number of distinct machine descriptions with warm
	// evaluator state (simulator pool + prediction memo).
	Machines int `json:"machines"`
}

func (s *Service) exploreStats() ExploreStats {
	return ExploreStats{
		Sweeps:    s.exploreSweeps.Load(),
		Swept:     s.exploreSwept.Load(),
		Pruned:    s.explorePruned.Load(),
		Simulated: s.exploreSimulated.Load(),
		Machines:  s.explorers.Machines(),
	}
}
