package service

import (
	"context"
	"testing"
)

// dataDepSrc branches on a floating-point comparison the single-path
// replay cannot resolve — but both branch outcomes converge, so the
// interval enumerator serves it with a two-path [lo, hi] envelope
// instead of refusing.
const dataDepSrc = `
PROGRAM DATADEP
REAL X(128), S
INTEGER N, K
DO K = 1, N
  X(K) = X(K) + S
ENDDO
IF (S .LT. 1.0) GOTO 10
10 CONTINUE
END
`

// unboundedSrc re-decides a floating-point comparison on every trip of a
// backward branch: its data-dependent control flow is not boundedly
// enumerable, so even the interval enumerator refuses and an auto
// request must fall back to the simulator.
const unboundedSrc = `
PROGRAM UNBND
REAL X(128), S
INTEGER N, K
DO K = 1, N
  X(K) = X(K) + S
ENDDO
100 CONTINUE
S = S + 1.0
IF (S .LT. X(1)) GOTO 100
END
`

func TestAnalyzeFastTier(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source:     saxpySrc,
		Iterations: 64,
		Prime:      Priming{Ints: map[string]int64{"N": 64}},
		Tier:       "fast",
	}
	r1, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tier != "fast" {
		t.Fatalf("tier = %q, want fast", r1.Tier)
	}
	if r1.PredictedCPL <= 0 || r1.ErrorBand <= 0 || r1.Cycles <= 0 {
		t.Fatalf("implausible fast result: %+v", r1)
	}
	if r1.MeasuredCPL != 0 {
		t.Fatalf("fast tier reported a measured CPL %g without simulating", r1.MeasuredCPL)
	}
	if r1.Bounds.TMACS <= 0 {
		t.Fatalf("fast tier lost the bounds hierarchy: %+v", r1.Bounds)
	}
	if len(r1.Attribution) == 0 {
		t.Fatal("fast tier returned no predicted attribution")
	}
	r2, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical second fast request missed the cache")
	}
	// served counts fresh computations, not requests: the replay was a
	// cache hit, so two requests pin the counter at exactly 1.
	m := s.Metrics()
	if m.FastTier.Served != 1 {
		t.Fatalf("fast_tier.served = %d, want 1 (cache hits must not count)", m.FastTier.Served)
	}
}

// TestAnalyzeAutoTier: an auto request answers with the fast prediction
// immediately and the asynchronous exact verification lands a divergence
// sample on /metrics — and warms the exact-tier cache.
func TestAnalyzeAutoTier(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source:     saxpySrc,
		Iterations: 64,
		Prime:      Priming{Ints: map[string]int64{"N": 64}},
		Tier:       "auto",
	}
	r, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "auto" {
		t.Fatalf("tier = %q, want auto", r.Tier)
	}
	if r.PredictedCPL <= 0 || r.Cycles <= 0 {
		t.Fatalf("implausible auto result: %+v", r)
	}

	s.verifyWG.Wait() // let the async exact verification finish

	m := s.Metrics()
	ft := m.FastTier
	if ft.Verified != 1 {
		t.Fatalf("fast_tier.verified = %d, want 1", ft.Verified)
	}
	d, ok := ft.Classes[r.Class]
	if !ok {
		t.Fatalf("fast_tier.classes missing %q: %+v", r.Class, ft.Classes)
	}
	if d.Count != 1 {
		t.Fatalf("class %s divergence count = %d, want 1", r.Class, d.Count)
	}
	// The replay ports the simulator's timing equations exactly, so the
	// divergence must sit inside the stated band (and, today, at zero).
	if d.MaxRelErr > r.ErrorBand {
		t.Fatalf("divergence %.4f exceeds the stated band %.4f", d.MaxRelErr, r.ErrorBand)
	}

	// Replaying the same auto request N times serves from the cache and
	// must not add divergence samples: one kernel is one sample, however
	// often it is replayed.
	for i := 0; i < 3; i++ {
		rr, err := s.Analyze(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Cached {
			t.Fatalf("auto replay %d missed the cache", i)
		}
	}
	s.verifyWG.Wait()
	m = s.Metrics()
	if m.FastTier.Verified != 1 {
		t.Fatalf("fast_tier.verified = %d after replays, want 1 (replays must not add samples)", m.FastTier.Verified)
	}
	if d := m.FastTier.Classes[r.Class]; d.Count != 1 {
		t.Fatalf("class %s divergence count = %d after replays, want 1", r.Class, d.Count)
	}
	if m.FastTier.Served != 1 {
		t.Fatalf("fast_tier.served = %d after replays, want 1", m.FastTier.Served)
	}

	// The verification ran through the normal exact path: a follow-up
	// exact request is a cache hit.
	exact, err := s.Analyze(context.Background(), AnalyzeRequest{
		Source:     req.Source,
		Iterations: req.Iterations,
		Prime:      req.Prime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Cached {
		t.Fatal("exact request after auto verification missed the cache")
	}
	if exact.Tier != "exact" {
		t.Fatalf("exact response tier = %q", exact.Tier)
	}
	// Predicted and simulated cycles agree bit-exactly for this kernel.
	if exact.Cycles != r.Cycles {
		t.Fatalf("predicted %d cycles, simulated %d", r.Cycles, exact.Cycles)
	}
}

// TestAnalyzeFastInterval: a program the single-path replay refuses as
// data-dependent is now served by the interval enumerator with a static
// [lo, hi] bound — and that bound contains the simulator's measurement.
func TestAnalyzeFastInterval(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source:     dataDepSrc,
		Iterations: 16,
		Prime:      Priming{Ints: map[string]int64{"N": 16}},
		Tier:       "fast",
	}
	r, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatalf("interval-servable program refused: %v", err)
	}
	if !r.Interval {
		t.Fatalf("response not marked interval: %+v", r)
	}
	if r.Paths < 2 {
		t.Fatalf("paths = %d, want >= 2 (one per branch outcome)", r.Paths)
	}
	if r.CyclesLo <= 0 || r.CyclesLo > r.CyclesHi || r.Cycles != r.CyclesHi {
		t.Fatalf("implausible interval: lo=%d hi=%d point=%d", r.CyclesLo, r.CyclesHi, r.Cycles)
	}
	if r.PredictedCPLLo <= 0 || r.PredictedCPLLo > r.PredictedCPLHi {
		t.Fatalf("implausible CPL interval: [%g, %g]", r.PredictedCPLLo, r.PredictedCPLHi)
	}

	// Containment: the simulated measurement lands inside the bound.
	req.Tier = "exact"
	exact, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cycles < r.CyclesLo || exact.Cycles > r.CyclesHi {
		t.Fatalf("simulated %d cycles outside interval [%d, %d]",
			exact.Cycles, r.CyclesLo, r.CyclesHi)
	}
	if m := s.Metrics(); m.FastTier.Fallbacks != 0 {
		t.Fatalf("interval serving counted %d fallbacks, want 0", m.FastTier.Fallbacks)
	}
}

// TestAnalyzeAutoFallback: a program whose data-dependent control flow
// is not boundedly enumerable cannot be served by the fast tier at all;
// auto falls back to the simulator inline and counts the fallback on
// /metrics.
func TestAnalyzeAutoFallback(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source: unboundedSrc,
		Prime:  Priming{Ints: map[string]int64{"N": 16}},
		Tier:   "auto",
	}
	r, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "exact" {
		t.Fatalf("fallback response tier = %q, want exact", r.Tier)
	}
	if r.Cycles <= 0 {
		t.Fatalf("fallback produced no simulation: %+v", r)
	}
	if r.PredictedCPL != 0 {
		t.Fatalf("fallback carries a prediction: %+v", r)
	}
	m := s.Metrics()
	if m.FastTier.Fallbacks != 1 {
		t.Fatalf("fast_tier.fallbacks = %d, want 1", m.FastTier.Fallbacks)
	}

	// An explicit tier=fast request for the same program is an error, not
	// a silent fallback.
	req.Tier = "fast"
	if _, err := s.Analyze(context.Background(), req); err == nil {
		t.Fatal("tier=fast on a data-dependent program succeeded; want error")
	}
}

func TestAnalyzeTierValidationAndDefault(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 4})
	if _, err := s.Analyze(context.Background(), AnalyzeRequest{Source: saxpySrc, Tier: "warp"}); err == nil {
		t.Fatal("unknown tier accepted")
	}

	// A service configured with DefaultTier "fast" serves untagged
	// requests through the fast tier.
	fastDefault := newTestService(t, Config{Workers: 1, QueueSize: 4, DefaultTier: "fast"})
	r, err := fastDefault.Analyze(context.Background(), AnalyzeRequest{
		Source: saxpySrc,
		Prime:  Priming{Ints: map[string]int64{"N": 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "fast" {
		t.Fatalf("default-tier response tier = %q, want fast", r.Tier)
	}
	// An explicit tier in the request still wins over the default.
	r, err = fastDefault.Analyze(context.Background(), AnalyzeRequest{
		Source: saxpySrc,
		Prime:  Priming{Ints: map[string]int64{"N": 32}},
		Tier:   "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "exact" {
		t.Fatalf("explicit exact tier served as %q", r.Tier)
	}
}
