package service

import (
	"context"
	"testing"
)

// dataDepSrc branches on a floating-point comparison, which the fast
// tier cannot resolve: predicting it must fail with ErrDataDependent
// and an auto request must fall back to the simulator.
const dataDepSrc = `
PROGRAM DATADEP
REAL X(128), S
INTEGER N, K
DO K = 1, N
  X(K) = X(K) + S
ENDDO
IF (S .LT. 1.0) GOTO 10
10 CONTINUE
END
`

func TestAnalyzeFastTier(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source:     saxpySrc,
		Iterations: 64,
		Prime:      Priming{Ints: map[string]int64{"N": 64}},
		Tier:       "fast",
	}
	r1, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tier != "fast" {
		t.Fatalf("tier = %q, want fast", r1.Tier)
	}
	if r1.PredictedCPL <= 0 || r1.ErrorBand <= 0 || r1.Cycles <= 0 {
		t.Fatalf("implausible fast result: %+v", r1)
	}
	if r1.MeasuredCPL != 0 {
		t.Fatalf("fast tier reported a measured CPL %g without simulating", r1.MeasuredCPL)
	}
	if r1.Bounds.TMACS <= 0 {
		t.Fatalf("fast tier lost the bounds hierarchy: %+v", r1.Bounds)
	}
	if len(r1.Attribution) == 0 {
		t.Fatal("fast tier returned no predicted attribution")
	}
	r2, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical second fast request missed the cache")
	}
	// served counts fresh computations, not requests: the replay was a
	// cache hit, so two requests pin the counter at exactly 1.
	m := s.Metrics()
	if m.FastTier.Served != 1 {
		t.Fatalf("fast_tier.served = %d, want 1 (cache hits must not count)", m.FastTier.Served)
	}
}

// TestAnalyzeAutoTier: an auto request answers with the fast prediction
// immediately and the asynchronous exact verification lands a divergence
// sample on /metrics — and warms the exact-tier cache.
func TestAnalyzeAutoTier(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source:     saxpySrc,
		Iterations: 64,
		Prime:      Priming{Ints: map[string]int64{"N": 64}},
		Tier:       "auto",
	}
	r, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "auto" {
		t.Fatalf("tier = %q, want auto", r.Tier)
	}
	if r.PredictedCPL <= 0 || r.Cycles <= 0 {
		t.Fatalf("implausible auto result: %+v", r)
	}

	s.verifyWG.Wait() // let the async exact verification finish

	m := s.Metrics()
	ft := m.FastTier
	if ft.Verified != 1 {
		t.Fatalf("fast_tier.verified = %d, want 1", ft.Verified)
	}
	d, ok := ft.Classes[r.Class]
	if !ok {
		t.Fatalf("fast_tier.classes missing %q: %+v", r.Class, ft.Classes)
	}
	if d.Count != 1 {
		t.Fatalf("class %s divergence count = %d, want 1", r.Class, d.Count)
	}
	// The replay ports the simulator's timing equations exactly, so the
	// divergence must sit inside the stated band (and, today, at zero).
	if d.MaxRelErr > r.ErrorBand {
		t.Fatalf("divergence %.4f exceeds the stated band %.4f", d.MaxRelErr, r.ErrorBand)
	}

	// Replaying the same auto request N times serves from the cache and
	// must not add divergence samples: one kernel is one sample, however
	// often it is replayed.
	for i := 0; i < 3; i++ {
		rr, err := s.Analyze(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Cached {
			t.Fatalf("auto replay %d missed the cache", i)
		}
	}
	s.verifyWG.Wait()
	m = s.Metrics()
	if m.FastTier.Verified != 1 {
		t.Fatalf("fast_tier.verified = %d after replays, want 1 (replays must not add samples)", m.FastTier.Verified)
	}
	if d := m.FastTier.Classes[r.Class]; d.Count != 1 {
		t.Fatalf("class %s divergence count = %d after replays, want 1", r.Class, d.Count)
	}
	if m.FastTier.Served != 1 {
		t.Fatalf("fast_tier.served = %d after replays, want 1", m.FastTier.Served)
	}

	// The verification ran through the normal exact path: a follow-up
	// exact request is a cache hit.
	exact, err := s.Analyze(context.Background(), AnalyzeRequest{
		Source:     req.Source,
		Iterations: req.Iterations,
		Prime:      req.Prime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Cached {
		t.Fatal("exact request after auto verification missed the cache")
	}
	if exact.Tier != "exact" {
		t.Fatalf("exact response tier = %q", exact.Tier)
	}
	// Predicted and simulated cycles agree bit-exactly for this kernel.
	if exact.Cycles != r.Cycles {
		t.Fatalf("predicted %d cycles, simulated %d", r.Cycles, exact.Cycles)
	}
}

// TestAnalyzeAutoFallback: a data-dependent program cannot be served by
// the fast tier; auto falls back to the simulator inline and counts the
// fallback on /metrics.
func TestAnalyzeAutoFallback(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{
		Source: dataDepSrc,
		Prime:  Priming{Ints: map[string]int64{"N": 16}},
		Tier:   "auto",
	}
	r, err := s.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "exact" {
		t.Fatalf("fallback response tier = %q, want exact", r.Tier)
	}
	if r.Cycles <= 0 {
		t.Fatalf("fallback produced no simulation: %+v", r)
	}
	if r.PredictedCPL != 0 {
		t.Fatalf("fallback carries a prediction: %+v", r)
	}
	m := s.Metrics()
	if m.FastTier.Fallbacks != 1 {
		t.Fatalf("fast_tier.fallbacks = %d, want 1", m.FastTier.Fallbacks)
	}

	// An explicit tier=fast request for the same program is an error, not
	// a silent fallback.
	req.Tier = "fast"
	if _, err := s.Analyze(context.Background(), req); err == nil {
		t.Fatal("tier=fast on a data-dependent program succeeded; want error")
	}
}

func TestAnalyzeTierValidationAndDefault(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 4})
	if _, err := s.Analyze(context.Background(), AnalyzeRequest{Source: saxpySrc, Tier: "warp"}); err == nil {
		t.Fatal("unknown tier accepted")
	}

	// A service configured with DefaultTier "fast" serves untagged
	// requests through the fast tier.
	fastDefault := newTestService(t, Config{Workers: 1, QueueSize: 4, DefaultTier: "fast"})
	r, err := fastDefault.Analyze(context.Background(), AnalyzeRequest{
		Source: saxpySrc,
		Prime:  Priming{Ints: map[string]int64{"N": 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "fast" {
		t.Fatalf("default-tier response tier = %q, want fast", r.Tier)
	}
	// An explicit tier in the request still wins over the default.
	r, err = fastDefault.Analyze(context.Background(), AnalyzeRequest{
		Source: saxpySrc,
		Prime:  Priming{Ints: map[string]int64{"N": 32}},
		Tier:   "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "exact" {
		t.Fatalf("explicit exact tier served as %q", r.Tier)
	}
}
