package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// This file is the persistent second level of the result cache: a
// disk-backed, append-only segment store keyed by the same SHA-256
// content address as the in-memory LRU. Results written here survive
// restarts, so a warm macsd replica serves yesterday's kernels without
// a single pipeline run. The store is deliberately simple — append-only
// segment files of JSON records, an index rebuilt by scanning on open —
// because the content-addressed keys make entries immutable: a key is
// either present with the one correct value or absent.

const (
	// diskCacheVersion is baked into every segment header through the
	// config fingerprint. Bump it whenever a persisted response schema
	// changes shape; old segments then self-invalidate on open.
	diskCacheVersion = 1

	// diskSegmentMaxBytes rotates the active segment once it grows past
	// this size, keeping any single file cheap to scan on open.
	diskSegmentMaxBytes = 4 << 20

	diskMagic = "macs-cache"
)

// segmentHeader is the first line of every segment file. A segment whose
// header does not match the store's magic, version and configuration
// fingerprint is stale — written by an older schema or a differently
// configured pipeline — and is deleted on open.
type segmentHeader struct {
	Magic       string `json:"magic"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// diskRecord is one persisted cache entry: a JSON line in a segment.
type diskRecord struct {
	K Key             `json:"k"`
	V json.RawMessage `json:"v"`
}

// diskRef locates one record's line inside a segment file.
type diskRef struct {
	path string
	off  int64
	len  int64
}

// DiskCache is the persistent cache store. It is safe for concurrent
// use; Get reads records directly from their segment, Put appends to the
// active segment under a lock.
type DiskCache struct {
	dir         string
	fingerprint string

	mu      sync.Mutex
	index   map[Key]diskRef
	cur     *os.File // active segment, nil until the first Put after open
	curPath string
	curSize int64
	seq     int // next segment sequence number
	segs    int
	bytes   int64

	hits, misses, writes, invalidated int64
}

// OpenDiskCache opens (or creates) the segment store in dir. Existing
// segments with a matching header are scanned to rebuild the index;
// segments written under a different version or configuration
// fingerprint are deleted, so stale schemas self-invalidate. A segment's
// unparseable tail (a crash mid-append) is truncated from the index but
// its intact prefix is kept.
func OpenDiskCache(dir, fingerprint string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: persistent cache: %w", err)
	}
	c := &DiskCache{
		dir:         dir,
		fingerprint: fingerprint,
		index:       make(map[Key]diskRef),
		seq:         1,
	}
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("service: persistent cache: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if n := segmentSeq(p); n >= c.seq {
			c.seq = n + 1
		}
		ok, size, err := c.loadSegment(p)
		if err != nil {
			return nil, err
		}
		if !ok {
			c.invalidated++
			os.Remove(p) //nolint:errcheck // stale segment; best-effort cleanup
			continue
		}
		c.segs++
		c.bytes += size
	}
	return c, nil
}

// segmentSeq extracts the sequence number from a segment filename;
// 0 for names that do not parse (they never collide with generated ones).
func segmentSeq(path string) int {
	var n int
	if _, err := fmt.Sscanf(filepath.Base(path), "seg-%d.log", &n); err != nil {
		return 0
	}
	return n
}

// loadSegment scans one segment into the index. It returns ok=false for
// a segment whose header mismatches (stale), and the number of bytes of
// intact records it indexed.
func (c *DiskCache) loadSegment(path string) (ok bool, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, fmt.Errorf("service: persistent cache: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), diskSegmentMaxBytes+(1<<20))
	if !sc.Scan() {
		return false, 0, nil // empty or unreadable: treat as stale
	}
	headerLine := sc.Bytes()
	var h segmentHeader
	if err := json.Unmarshal(headerLine, &h); err != nil ||
		h.Magic != diskMagic || h.Version != diskCacheVersion || h.Fingerprint != c.fingerprint {
		return false, 0, nil
	}
	off := int64(len(headerLine)) + 1
	for sc.Scan() {
		line := sc.Bytes()
		n := int64(len(line)) + 1
		var rec diskRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" {
			// A torn tail from a crash mid-append: keep what precedes it,
			// ignore the rest.
			break
		}
		c.index[rec.K] = diskRef{path: path, off: off, len: int64(len(line))}
		off += n
	}
	return true, off, nil
}

// Get returns the persisted JSON value for k, if present.
func (c *DiskCache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	ref, ok := c.index[k]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()

	// Records are immutable once indexed, so the read needs no lock.
	f, err := os.Open(ref.path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	buf := make([]byte, ref.len)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return nil, false
	}
	var rec diskRecord
	if err := json.Unmarshal(buf, &rec); err != nil || rec.K != k {
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return rec.V, true
}

// Put appends one entry to the active segment. Entries are
// content-addressed and immutable, so a key already present is a no-op.
func (c *DiskCache) Put(k Key, val []byte) error {
	line, err := json.Marshal(diskRecord{K: k, V: val})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[k]; ok {
		return nil
	}
	if c.cur == nil {
		if err := c.openSegmentLocked(); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := c.cur.Write(buf); err != nil {
		return err
	}
	c.index[k] = diskRef{path: c.curPath, off: c.curSize, len: int64(len(line))}
	c.curSize += int64(len(buf))
	c.bytes += int64(len(buf))
	c.writes++
	if c.curSize >= diskSegmentMaxBytes {
		c.cur.Close() //nolint:errcheck // rotation; next Put reopens
		c.cur = nil
	}
	return nil
}

// openSegmentLocked starts a fresh segment with its header line.
// Callers hold c.mu.
func (c *DiskCache) openSegmentLocked() error {
	path := filepath.Join(c.dir, fmt.Sprintf("seg-%06d.log", c.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var header bytes.Buffer
	if err := json.NewEncoder(&header).Encode(segmentHeader{
		Magic:       diskMagic,
		Version:     diskCacheVersion,
		Fingerprint: c.fingerprint,
	}); err != nil {
		f.Close() //nolint:errcheck // header encode failed; file unused
		return err
	}
	if _, err := f.Write(header.Bytes()); err != nil {
		f.Close() //nolint:errcheck // header write failed; file unused
		return err
	}
	c.seq++
	c.segs++
	c.cur, c.curPath, c.curSize = f, path, int64(header.Len())
	c.bytes += int64(header.Len())
	return nil
}

// Len returns the number of persisted entries.
func (c *DiskCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Close flushes and closes the active segment. Get keeps working after
// Close (reads open their segment per call); only writes stop.
func (c *DiskCache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != nil {
		c.cur.Close() //nolint:errcheck // shutdown; nothing to do about it
		c.cur = nil
	}
}

// DiskCacheStats is the persistent_cache section of /metrics.
type DiskCacheStats struct {
	Enabled  bool  `json:"enabled"`
	Entries  int   `json:"entries"`
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Writes   int64 `json:"writes"`
	// Invalidated counts segments dropped on open because their version
	// or configuration fingerprint did not match.
	Invalidated int64 `json:"invalidated"`
}

// Stats returns a snapshot of the store's counters.
func (c *DiskCache) Stats() DiskCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return DiskCacheStats{
		Enabled:     true,
		Entries:     len(c.index),
		Segments:    c.segs,
		Bytes:       c.bytes,
		Hits:        c.hits,
		Misses:      c.misses,
		Writes:      c.writes,
		Invalidated: c.invalidated,
	}
}
