package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"macs/internal/obs"
)

// TestMetricsConcurrentSnapshot storms Observe/ObserveStage/
// ObserveBatchItem from many goroutines while others take snapshots —
// under -race this is the lock-discipline proof for the registry — and
// then checks nothing was lost.
func TestMetricsConcurrentSnapshot(t *testing.T) {
	m := NewMetrics()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.snapshotEndpoints()
				m.snapshotStages()
				m.snapshotBatchItems()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				m.Observe("analyze", time.Duration(i)*time.Microsecond, i%7 == 0)
				m.ObserveStage("simulate", time.Duration(i)*time.Microsecond)
				m.ObserveBatchItem("ok")
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	const want = writers * perWriter
	if got := m.snapshotEndpoints()["analyze"].Count; got != want {
		t.Errorf("endpoint count = %d, want %d", got, want)
	}
	if got := m.snapshotStages()["simulate"].Count; got != want {
		t.Errorf("stage count = %d, want %d", got, want)
	}
	if got := m.snapshotBatchItems()["ok"]; got != want {
		t.Errorf("batch items = %d, want %d", got, want)
	}
	// The endpoint histogram's +Inf bucket must agree with the count.
	lat := m.snapshotEndpoints()["analyze"].Latency
	if inf := lat.Buckets[len(lat.Buckets)-1]; inf.LEMS >= 0 || inf.Count != want {
		t.Errorf("+Inf bucket = %+v, want cumulative %d", inf, want)
	}
}

// TestRenderPromGolden pins the exposition rendering: HELP/TYPE
// comments, label escaping (round-tripped through the validating
// parser), histogram bucket structure, and bucket monotonicity.
func TestRenderPromGolden(t *testing.T) {
	weird := "an\"aly\\ze\nx" // every escapable byte of the format
	snap := Snapshot{
		UptimeSeconds: 1.5,
		Endpoints: map[string]EndpointSnapshot{
			weird: {Count: 4, Errors: 1, Latency: LatencySnapshot{
				MeanMS: 2, MaxMS: 8,
				Buckets: []BucketCount{{LEMS: 1, Count: 1}, {LEMS: 5, Count: 3}, {LEMS: -1, Count: 4}},
			}},
		},
		Stages: map[string]StageSnapshot{
			"simulate": {Count: 2, Latency: LatencySnapshot{
				MeanMS: 0.5, MaxMS: 0.9,
				Buckets: []BucketCount{{LEMS: 0.25, Count: 0}, {LEMS: 1, Count: 2}, {LEMS: -1, Count: 2}},
			}},
		},
		BatchItems:  map[string]int64{"ok": 3, "error": 1},
		StallCycles: map[string]int64{"issue": 100, "chime": 40},
		SimCycles:   1234,
		FastTier: FastTierStats{Served: 2, Verified: 1, Classes: map[string]DivergenceStats{
			"saxpy": {Count: 1, MeanRelErr: 0.01, MaxRelErr: 0.02},
		}},
	}
	text := string(RenderProm(snap))

	fams, err := obs.ParseProm(text)
	if err != nil {
		t.Fatalf("RenderProm output rejected by ParseProm: %v\n%s", err, text)
	}
	byName := map[string]obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	for _, golden := range []string{
		"# HELP macsd_requests_total Requests by endpoint.",
		"# TYPE macsd_requests_total counter",
		"# TYPE macsd_request_duration_seconds histogram",
		`macsd_requests_total{endpoint="an\"aly\\ze\nx"} 4`,
		`macsd_request_duration_seconds_bucket{endpoint="an\"aly\\ze\nx",le="+Inf"} 4`,
		"# TYPE macsd_stage_duration_seconds histogram",
		`macsd_stage_duration_seconds_bucket{stage="simulate",le="0.001"} 2`,
		`macsd_batch_items_total{outcome="ok"} 3`,
		`macsd_stall_cycles_total{cause="issue"} 100`,
		"macsd_sim_cycles_total 1234",
		`macsd_fast_tier_mean_rel_err{class="saxpy"} 0.01`,
		"macsd_uptime_seconds 1.5",
	} {
		if !strings.Contains(text, golden+"\n") {
			t.Errorf("exposition missing line %q\n%s", golden, text)
		}
	}

	// The weird endpoint label must round-trip through the parser's
	// unescaping back to the original string.
	found := false
	for _, s := range byName["macsd_requests_total"].Samples {
		if s.Labels["endpoint"] == weird {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped endpoint label did not round-trip: %+v", byName["macsd_requests_total"].Samples)
	}

	// Histogram buckets must be monotone in le with _count == +Inf (the
	// parser already enforces this; assert it independently here so a
	// parser regression cannot mask a writer regression).
	hist := byName["macsd_request_duration_seconds"]
	var lastCum float64 = -1
	var infCum, count float64
	for _, s := range hist.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if s.Value < lastCum {
				t.Errorf("bucket le=%s count %v < previous %v", s.Labels["le"], s.Value, lastCum)
			}
			lastCum = s.Value
			if s.Labels["le"] == "+Inf" {
				infCum = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	if infCum != count || count != 4 {
		t.Errorf("+Inf bucket %v != count %v (want 4)", infCum, count)
	}
}

// TestRenderPromEmptySnapshot: a zero snapshot (fresh daemon, nothing
// observed) must still render a valid document with the always-on
// families.
func TestRenderPromEmptySnapshot(t *testing.T) {
	fams, err := obs.ParseProm(string(RenderProm(Snapshot{})))
	if err != nil {
		t.Fatalf("empty snapshot rejected: %v", err)
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name] = true
	}
	for _, want := range []string{
		"macsd_uptime_seconds", "macsd_cache_hits_total", "macsd_queue_workers",
		"macsd_pipeline_runs_total", "macsd_sim_cycles_total", "macsd_fast_tier_served_total",
	} {
		if !names[want] {
			t.Errorf("empty snapshot missing family %s", want)
		}
	}
}

// TestHTTPMetricsPromUnderLoad scrapes /metrics?format=prom concurrently
// with live analyze traffic; every scrape must be a valid exposition
// document (and under -race, a clean snapshot of the counters).
func TestHTTPMetricsPromUnderLoad(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, QueueSize: 16})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				req := AnalyzeRequest{Source: saxpySrc, Iterations: int64(16 + w*4 + i),
					Prime: Priming{Ints: map[string]int64{"N": 16}}}
				resp := postJSON(t, srv.URL+"/v1/analyze", req)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	scrapeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(srv.URL + "/metrics?format=prom")
			if err != nil {
				scrapeErr <- err
				return
			}
			if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
				scrapeErr <- fmt.Errorf("content type = %q", ct)
				resp.Body.Close()
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				scrapeErr <- err
				return
			}
			if _, err := obs.ParseProm(string(b)); err != nil {
				scrapeErr <- fmt.Errorf("scrape %d invalid: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	// After the storm the endpoint counters surface in the exposition.
	resp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fams, err := obs.ParseProm(string(b))
	if err != nil {
		t.Fatal(err)
	}
	var reqTotal float64
	for _, f := range fams {
		if f.Name != "macsd_requests_total" {
			continue
		}
		for _, s := range f.Samples {
			if s.Labels["endpoint"] == "analyze" {
				reqTotal = s.Value
			}
		}
	}
	if reqTotal != 16 {
		t.Errorf("macsd_requests_total{endpoint=analyze} = %v, want 16", reqTotal)
	}
}

// chromeExport mirrors the trace_event document shape for decoding.
type chromeExport struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Dur  int64          `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestHTTPAnalyzeTraceE2E is the issue's acceptance path: one
// ?trace=1 request yields a trace ID whose Chrome export contains
// nested spans for every executed pipeline stage plus simulator lane
// events merged from the VM trace.
func TestHTTPAnalyzeTraceE2E(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{Source: saxpySrc, Iterations: 32,
		Prime: Priming{Ints: map[string]int64{"N": 32}}}

	resp := postJSON(t, srv.URL+"/v1/analyze?trace=1", req)
	id := resp.Header.Get("X-Macs-Trace")
	if id == "" {
		t.Fatal("no X-Macs-Trace header")
	}
	r1 := decode[AnalyzeResponse](t, resp)
	if r1.Trace == nil {
		t.Fatal("?trace=1 response has no trace block")
	}
	if r1.Trace.ID != id {
		t.Fatalf("trace block id %q != header %q", r1.Trace.ID, id)
	}
	spans := map[string]bool{}
	for _, sp := range r1.Trace.Spans {
		spans[sp.Name] = true
	}
	for _, stage := range []string{"analyze", "cache-lookup", "compile", "verify", "bound",
		"pool-checkout", "load", "prime", "simulate"} {
		if !spans[stage] {
			t.Errorf("trace missing span %q (have %v)", stage, spans)
		}
	}
	if len(r1.Trace.Lanes) == 0 {
		t.Error("trace carries no simulator lane events")
	}

	// An untraced request must not carry a trace block (and a cached
	// replay must not leak the first request's trace).
	r2 := decode[AnalyzeResponse](t, postJSON(t, srv.URL+"/v1/analyze", req))
	if r2.Trace != nil {
		t.Errorf("untraced request carries trace block %+v", r2.Trace)
	}

	// The stored trace replays as Chrome trace_event JSON.
	cresp, err := http.Get(srv.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("trace export status = %d", cresp.StatusCode)
	}
	if ct := cresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("trace export content type = %q", ct)
	}
	var doc chromeExport
	if err := json.NewDecoder(cresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	var stageEvents, laneEvents, nested int
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		switch e.PID {
		case 0:
			stageEvents++
			if _, ok := e.Args["parent"]; ok {
				nested++
			}
		case 1:
			laneEvents++
		}
	}
	if stageEvents < 8 || nested == 0 {
		t.Errorf("chrome export: %d stage events (%d nested), want the full pipeline", stageEvents, nested)
	}
	if laneEvents == 0 {
		t.Error("chrome export has no simulator lane events")
	}

	// Stage durations folded into /metrics per-stage histograms.
	msnap := decode[Snapshot](t, mustGet(t, srv.URL+"/metrics"))
	if msnap.Stages["simulate"].Count < 1 {
		t.Errorf("stage metrics missing simulate: %+v", msnap.Stages)
	}
	if msnap.SimCycles <= 0 {
		t.Errorf("sim_cycles = %d, want > 0", msnap.SimCycles)
	}

	// Unknown trace IDs 404.
	nf, err := http.Get(srv.URL + "/v1/trace/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nf.Body)
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", nf.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
