package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"macs/internal/lfk"
)

// lfkBatch builds a batch request from the first n case-study kernels.
func lfkBatch(t *testing.T, n int) BatchRequest {
	t.Helper()
	ks := lfk.All()
	if n > len(ks) {
		t.Fatalf("want %d kernels, have %d", n, len(ks))
	}
	var req BatchRequest
	for _, k := range ks[:n] {
		req.Items = append(req.Items, AnalyzeRequest{
			Source:     k.Source,
			Iterations: int64(k.Elements),
			Prime:      Priming{Ints: k.Ints, Reals: k.Reals, Arrays: k.Arrays},
		})
	}
	return req
}

// runBatch collects a batch's emitted results ordered by item index.
func runBatch(t *testing.T, s *Service, ctx context.Context, req BatchRequest) []BatchItemResult {
	t.Helper()
	byIndex := make(map[int]BatchItemResult, len(req.Items))
	err := s.AnalyzeBatch(ctx, req, func(r BatchItemResult) {
		if _, dup := byIndex[r.Index]; dup {
			t.Errorf("index %d emitted twice", r.Index)
		}
		byIndex[r.Index] = r
	})
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	out := make([]BatchItemResult, 0, len(byIndex))
	for i := 0; i < len(req.Items); i++ {
		r, ok := byIndex[i]
		if !ok {
			t.Fatalf("no result emitted for index %d", i)
		}
		out = append(out, r)
	}
	return out
}

// TestAnalyzeBatchDedup: a mixed hot/cold batch reuses the per-kernel
// cache — the pipeline runs only for the cold kernels, and in-batch
// duplicates collapse through singleflight to a single run.
func TestAnalyzeBatchDedup(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueSize: 64})
	ctx := context.Background()
	batch := lfkBatch(t, 4)

	// Pre-warm the first two kernels.
	for i := 0; i < 2; i++ {
		if _, err := s.Analyze(ctx, batch.Items[i]); err != nil {
			t.Fatal(err)
		}
	}
	warm := s.PipelineRuns()
	if warm != 2 {
		t.Fatalf("pre-warm runs = %d, want 2", warm)
	}

	// Duplicate one cold kernel inside the batch: six items, two hot,
	// three distinct cold sources.
	batch.Items = append(batch.Items, batch.Items[3], batch.Items[3])
	res := runBatch(t, s, ctx, batch)
	for i, r := range res {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
	if !res[0].Result.Cached || !res[1].Result.Cached {
		t.Fatal("pre-warmed items missed the cache")
	}
	if got := s.PipelineRuns(); got != warm+2 {
		t.Fatalf("batch ran the pipeline %d more times, want 2 (cold kernels only)", got-warm)
	}
}

// TestAnalyzeBatchPerItemError: one invalid kernel costs one error line;
// the other items still complete and the batch call itself succeeds.
func TestAnalyzeBatchPerItemError(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 16})
	batch := lfkBatch(t, 2)
	batch.Items = append([]AnalyzeRequest{{Source: "NOT FORTRAN ("}}, batch.Items...)

	res := runBatch(t, s, context.Background(), batch)
	if res[0].Error == "" || res[0].Result != nil {
		t.Fatalf("invalid item 0: %+v, want error line", res[0])
	}
	for i := 1; i < 3; i++ {
		if res[i].Error != "" || res[i].Result == nil {
			t.Fatalf("valid item %d failed alongside the invalid one: %+v", i, res[i])
		}
	}
}

func TestAnalyzeBatchValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 4})
	ctx := context.Background()
	if err := s.AnalyzeBatch(ctx, BatchRequest{}, func(BatchItemResult) {}); err == nil {
		t.Fatal("empty batch accepted")
	}
	big := BatchRequest{Items: make([]AnalyzeRequest, maxBatchItems+1)}
	if err := s.AnalyzeBatch(ctx, big, func(BatchItemResult) {}); err == nil {
		t.Fatalf("batch of %d items accepted", len(big.Items))
	}
}

// TestHTTPBatchNDJSON is the batch acceptance test: ten case-study
// kernels, three already hot, posted to /v1/batch — ten NDJSON lines
// stream back, one per item, and the pipeline runs only for the seven
// cold kernels.
func TestHTTPBatchNDJSON(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueSize: 64})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	ctx := context.Background()

	batch := lfkBatch(t, 10)
	for i := 0; i < 3; i++ {
		if _, err := s.Analyze(ctx, batch.Items[i]); err != nil {
			t.Fatal(err)
		}
	}
	warm := s.PipelineRuns()

	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q, want application/x-ndjson", ct)
	}

	seen := make(map[int]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var item BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if item.Error != "" || item.Result == nil {
			t.Fatalf("line %d: %+v", lines, item)
		}
		if seen[item.Index] {
			t.Fatalf("index %d streamed twice", item.Index)
		}
		seen[item.Index] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 10 || len(seen) != 10 {
		t.Fatalf("streamed %d lines over %d indices, want 10/10", lines, len(seen))
	}
	if got := s.PipelineRuns(); got != warm+7 {
		t.Fatalf("batch ran the pipeline %d more times, want 7 (cold kernels only)", got-warm)
	}
}

// TestHTTPBatchTierOverrideAndErrors: the ?tier= query parameter
// overrides every item, malformed bodies fail before the stream starts,
// and an in-stream invalid kernel is one error line.
func TestHTTPBatchTierOverrideAndErrors(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 16})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	batch := lfkBatch(t, 2)
	batch.Items = append(batch.Items, AnalyzeRequest{Source: "NOT FORTRAN ("})
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/batch?tier=fast", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	var okLines, errLines int
	for sc.Scan() {
		var item BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		switch {
		case item.Error != "":
			errLines++
			if item.Index != 2 {
				t.Fatalf("error line for index %d, want 2: %+v", item.Index, item)
			}
		case item.Result != nil:
			okLines++
			if item.Result.Tier != "fast" {
				t.Fatalf("?tier=fast not applied to item %d: tier = %q", item.Index, item.Result.Tier)
			}
		default:
			t.Fatalf("empty line: %+v", item)
		}
	}
	if okLines != 2 || errLines != 1 {
		t.Fatalf("got %d ok / %d error lines, want 2/1", okLines, errLines)
	}

	// Malformed JSON fails with 400 before any stream begins.
	resp, err = http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch status = %d, want 400", resp.StatusCode)
	}
	// An empty batch is rejected up front, too.
	resp, err = http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(`{"items":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty batch status = %d, want 422", resp.StatusCode)
	}
}
