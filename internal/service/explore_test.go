package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"macs/internal/explore"
)

func exploreReq(grid explore.Grid) ExploreRequest {
	return ExploreRequest{
		Name:       "saxpy",
		Source:     saxpySrc,
		Iterations: 16,
		Prime:      Priming{Ints: map[string]int64{"N": 16}},
		Grid:       grid,
		TopFrac:    0.25,
	}
}

func TestServiceExplore(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	grid := explore.Grid{Axes: []explore.Axis{
		{Param: "banks", Values: []float64{8, 16, 32, 64}},
		{Param: "vlmax", Values: []float64{64, 128}},
	}}

	var points []ExploreEvent
	var done *ExploreResponse
	err := s.Explore(context.Background(), exploreReq(grid), func(ev ExploreEvent) {
		switch ev.Type {
		case "point":
			points = append(points, ev)
		case "done":
			done = ev.Result
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if done == nil {
		t.Fatal("no done event")
	}
	if done.Swept != 8 || done.Simulated != 2 || done.Pruned != 6 {
		t.Fatalf("sweep economics = %d/%d/%d", done.Swept, done.Simulated, done.Pruned)
	}
	if len(points) != done.Simulated || len(done.Ranked) != done.Simulated {
		t.Fatalf("streamed %d points, ranked %d, want %d", len(points), len(done.Ranked), done.Simulated)
	}
	if done.Cached {
		t.Fatal("fresh sweep marked cached")
	}
	if done.Ranked[0].Rank != 1 || done.Ranked[0].Stats == nil {
		t.Fatalf("winner = %+v", done.Ranked[0])
	}
	m := s.Metrics()
	if m.Explore.Sweeps != 1 || m.Explore.Swept != 8 || m.Explore.Pruned != 6 || m.Explore.Simulated != 2 {
		t.Fatalf("explore metrics = %+v", m.Explore)
	}
	if m.Explore.Machines == 0 {
		t.Fatal("no warm evaluator state recorded")
	}

	// A repeated sweep replays from the cache: same events, Cached
	// summary, counters unchanged.
	var points2 int
	var done2 *ExploreResponse
	err = s.Explore(context.Background(), exploreReq(grid), func(ev ExploreEvent) {
		switch ev.Type {
		case "point":
			points2++
		case "done":
			done2 = ev.Result
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if done2 == nil || !done2.Cached {
		t.Fatalf("cached replay summary = %+v", done2)
	}
	if points2 != done.Simulated {
		t.Fatalf("cached replay streamed %d points, want %d", points2, done.Simulated)
	}
	if done2.Ranked[0].Cycles != done.Ranked[0].Cycles {
		t.Fatalf("cached winner diverged: %d vs %d", done2.Ranked[0].Cycles, done.Ranked[0].Cycles)
	}
	if got := s.Metrics().Explore.Sweeps; got != 1 {
		t.Fatalf("cached replay ran a fresh sweep: %d", got)
	}
}

func TestServiceExploreValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 4})
	emit := func(ExploreEvent) { t.Fatal("emit on invalid request") }

	req := exploreReq(explore.Grid{Axes: []explore.Axis{{Param: "warp", Values: []float64{1}}}})
	if err := s.Explore(context.Background(), req, emit); err == nil {
		t.Fatal("unknown parameter accepted")
	}

	// 8^5 = 32768 points exceeds the bound.
	big := explore.Grid{}
	for _, p := range []string{"banks", "bank-cycle", "vlmax", "refresh-period", "refresh-len"} {
		big.Axes = append(big.Axes, explore.Axis{Param: p, Values: []float64{1, 2, 3, 4, 5, 6, 7, 8}})
	}
	if err := s.Explore(context.Background(), exploreReq(big), emit); err == nil {
		t.Fatal("oversized grid accepted")
	}

	req = exploreReq(explore.Grid{})
	req.Source = ""
	if err := s.Explore(context.Background(), req, emit); err == nil {
		t.Fatal("empty source accepted")
	}

	req = exploreReq(explore.Grid{})
	req.TopFrac = 1.5
	if err := s.Explore(context.Background(), req, emit); err == nil {
		t.Fatal("top_frac > 1 accepted")
	}
}

func TestHTTPExplore(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, QueueSize: 8})
	grid := explore.Grid{Axes: []explore.Axis{
		{Param: "banks", Values: []float64{16, 32}},
		{Param: "refresh-stalls", Values: []float64{0, 1}},
	}}

	resp := postJSON(t, srv.URL+"/v1/explore", exploreReq(grid))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var pointLines int
	var done *ExploreResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		var ev ExploreEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "point":
			if done != nil {
				t.Fatal("point event after done")
			}
			pointLines++
		case "done":
			done = ev.Result
		case "error":
			t.Fatalf("error event: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil {
		t.Fatal("stream ended without a done event")
	}
	if done.Swept != 4 || pointLines != done.Simulated {
		t.Fatalf("swept %d, %d point lines, %d simulated", done.Swept, pointLines, done.Simulated)
	}

	// An invalid grid answers a JSON error before the stream starts.
	bad := postJSON(t, srv.URL+"/v1/explore", exploreReq(explore.Grid{
		Axes: []explore.Axis{{Param: "warp", Values: []float64{1}}}}))
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad grid status = %d", bad.StatusCode)
	}
	e := decode[map[string]string](t, bad)
	if !strings.Contains(e["error"], "unknown parameter") {
		t.Fatalf("bad grid error = %q", e["error"])
	}
}

func TestPromExploreFamilies(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 4})
	if err := s.Explore(context.Background(),
		exploreReq(explore.Grid{Axes: []explore.Axis{{Param: "banks", Values: []float64{16, 32}}}}),
		func(ExploreEvent) {}); err != nil {
		t.Fatal(err)
	}
	text := string(RenderProm(s.Metrics()))
	for _, family := range []string{
		"macsd_explore_sweeps_total 1",
		"macsd_explore_points_swept_total 2",
		"macsd_explore_points_pruned_total 1",
		"macsd_explore_points_simulated_total 1",
		"macsd_explore_machines",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("exposition missing %q:\n%s", family, text)
		}
	}
}
