package service

import (
	"fmt"
	"testing"

	"macs"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	c.Get("b") // miss
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 2 misses, 1 entry", s)
	}
	if got, want := s.HitRate, 1.0/3.0; got != want {
		t.Fatalf("hit rate = %v; want %v", got, want)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch "a" so "b" is now the least recently used.
	c.Get("a")
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; want LRU evicted")
	}
	for _, k := range []Key{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want resident", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats = %+v; want 1 eviction, 3 entries", s)
	}
}

func TestCachePutExistingRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert
	c.Put("c", 3)  // evicts b, the LRU
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Fatalf("Get(a) = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; want evicted")
	}
}

// TestKeySensitivity flips every request-relevant configuration field
// and checks each variant hashes to a distinct key.
func TestKeySensitivity(t *testing.T) {
	opts := macs.DefaultCompilerOptions()
	cfg := macs.DefaultVMConfig()
	rules := macs.DefaultRules()
	src := "PROGRAM P\nEND\n"
	mk := func(kind, src string, opts macs.CompilerOptions, cfg macs.VMConfig, rules macs.Rules, iters int64, prime Priming) Key {
		t.Helper()
		k, err := NewKey(kind, src, opts, cfg, rules, iters, prime)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	base := mk("analyze", src, opts, cfg, rules, 0, Priming{})
	variants := map[string]Key{}

	variants["kind"] = mk("bound", src, opts, cfg, rules, 0, Priming{})
	variants["source"] = mk("analyze", src+" ", opts, cfg, rules, 0, Priming{})
	variants["iterations"] = mk("analyze", src, opts, cfg, rules, 7, Priming{})
	variants["prime"] = mk("analyze", src, opts, cfg, rules, 0, Priming{Ints: map[string]int64{"N": 5}})

	o := opts
	o.VL = 64
	variants["compiler.VL"] = mk("analyze", src, o, cfg, rules, 0, Priming{})
	o = opts
	o.FPSlots = 2
	variants["compiler.FPSlots"] = mk("analyze", src, o, cfg, rules, 0, Priming{})
	o = opts
	o.ForceScalar = true
	variants["compiler.ForceScalar"] = mk("analyze", src, o, cfg, rules, 0, Priming{})

	v := cfg
	v.MemSlowdown = 2.0
	variants["vm.MemSlowdown"] = mk("analyze", src, opts, v, rules, 0, Priming{})
	v = cfg
	v.BankConflicts = !v.BankConflicts
	variants["vm.BankConflicts"] = mk("analyze", src, opts, v, rules, 0, Priming{})

	r := rules
	r.Chaining = !r.Chaining
	variants["rules.Chaining"] = mk("analyze", src, opts, cfg, r, 0, Priming{})
	r = rules
	r.Bubbles = !r.Bubbles
	variants["rules.Bubbles"] = mk("analyze", src, opts, cfg, r, 0, Priming{})

	seen := map[Key]string{base: "base"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}

	// Determinism: identical inputs, identical key (maps included).
	p := Priming{Ints: map[string]int64{"N": 1, "M": 2}, Reals: map[string]float64{"A": 1.5}}
	k1 := mk("analyze", src, opts, cfg, rules, 3, p)
	k2 := mk("analyze", src, opts, cfg, rules, 3, p)
	if k1 != k2 {
		t.Fatal("identical requests hashed to different keys")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines under
// -race; correctness here is "no race, no panic, counters consistent".
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := Key(fmt.Sprintf("k%d", (g+i)%16))
				if _, ok := c.Get(k); !ok {
					c.Put(k, i)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	s := c.Stats()
	if s.Entries > 8 {
		t.Fatalf("cache over capacity: %d entries", s.Entries)
	}
	if s.Hits+s.Misses != 8*200 {
		t.Fatalf("lookups = %d; want %d", s.Hits+s.Misses, 8*200)
	}
}
