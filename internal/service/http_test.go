package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"macs"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if m := decode[map[string]string](t, resp); m["status"] != "ok" {
		t.Fatalf("healthz body = %v", m)
	}
}

func TestHTTPAnalyzeRoundTrip(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{Source: saxpySrc, Iterations: 32,
		Prime: Priming{Ints: map[string]int64{"N": 32}, Reals: map[string]float64{"A": 1.5}}}

	resp := postJSON(t, srv.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}
	r1 := decode[AnalyzeResponse](t, resp)
	if r1.Bounds.TMACS <= 0 || r1.Cycles <= 0 || r1.Cached {
		t.Fatalf("implausible first response: %+v", r1)
	}
	if !strings.Contains(r1.Report, "t_MACS") {
		t.Fatalf("report missing hierarchy: %q", r1.Report)
	}

	r2 := decode[AnalyzeResponse](t, postJSON(t, srv.URL+"/v1/analyze", req))
	if !r2.Cached {
		t.Fatal("second identical request not served from cache")
	}

	// The cache hit is visible on /metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[Snapshot](t, mresp)
	if snap.Cache.Hits < 1 || snap.PipelineRuns != 1 {
		t.Fatalf("metrics: %+v; want >=1 cache hit and exactly 1 pipeline run", snap.Cache)
	}
	if ep, ok := snap.Endpoints["analyze"]; !ok || ep.Count != 2 {
		t.Fatalf("endpoint metrics = %+v; want analyze count 2", snap.Endpoints)
	}
}

func TestHTTPBoundAndErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	r := decode[BoundResponse](t, postJSON(t, srv.URL+"/v1/bound", BoundRequest{Source: saxpySrc}))
	if r.Bounds.TMACS <= 0 {
		t.Fatalf("bound response: %+v", r)
	}

	// Malformed body → 400.
	resp, err := http.Post(srv.URL+"/v1/bound", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d; want 400", resp.StatusCode)
	}

	// Source the pipeline rejects → 422.
	resp = postJSON(t, srv.URL+"/v1/bound", BoundRequest{Source: "PROGRAM P\nEND\n"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("loop-less source status = %d; want 422", resp.StatusCode)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 1, QueueSize: 1})
	release := make(chan struct{})
	defer close(release)
	if err := s.pool.Submit(context.Background(), func(context.Context) { <-release }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.pool.Stats().InFlight == 1 })
	if err := s.pool.Submit(context.Background(), func(context.Context) {}); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, srv.URL+"/v1/analyze", AnalyzeRequest{Source: saxpySrc})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue status = %d; want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
}

func TestHTTPLFK(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel run in -short mode")
	}
	_, srv := newTestServer(t, Config{Workers: 2, QueueSize: 8})
	resp, err := http.Get(srv.URL + "/v1/lfk/12")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lfk status = %d", resp.StatusCode)
	}
	r := decode[LFKResponse](t, resp)
	if r.ID != 12 || !r.Validated || r.Bounds.TMACS <= 0 || r.TP <= 0 {
		t.Fatalf("lfk response: %+v", r)
	}
	if r.Diagnosis == "" {
		t.Fatal("lfk response missing diagnosis")
	}

	// Unknown / excluded kernel → 422; junk id → 400.
	resp, err = http.Get(srv.URL + "/v1/lfk/5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("lfk/5 status = %d; want 422", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/lfk/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lfk/abc status = %d; want 400", resp.StatusCode)
	}
}

func TestHTTPCheck(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	resp := postJSON(t, srv.URL+"/v1/check", CheckRequest{Source: saxpySrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d", resp.StatusCode)
	}
	r := decode[CheckResponse](t, resp)
	if !r.OK {
		t.Fatalf("compiled SAXPY does not verify clean: %+v", r.Diagnostics)
	}
	if r.Cached {
		t.Fatal("first check served from cache")
	}
	for _, d := range r.Diagnostics {
		if d.Severity == macs.SevError {
			t.Errorf("unexpected error diagnostic: %+v", d)
		}
	}
	r2 := decode[CheckResponse](t, postJSON(t, srv.URL+"/v1/check", CheckRequest{Source: saxpySrc}))
	if !r2.Cached {
		t.Fatal("second identical check not served from cache")
	}

	// A source the compiler rejects is still a plain 422.
	resp = postJSON(t, srv.URL+"/v1/check", CheckRequest{Source: "PROGRAM P\nDO K = oops(\nEND\n"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("loop-less source status = %d; want 422", resp.StatusCode)
	}
}

func TestWriteServiceErrorVerify(t *testing.T) {
	// A program rejected by the static checker answers 422 with the full
	// diagnostic list in the body, not just an error string.
	verr := &macs.VerifyError{Diags: []macs.Diagnostic{
		{Severity: macs.SevError, Instr: 3, Message: "use of s1 before definition"},
		{Severity: macs.SevWarning, Instr: 5, Message: "stride warning"},
	}}
	rec := httptest.NewRecorder()
	writeServiceError(rec, fmt.Errorf("analyze: %w", verr))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("verify rejection status = %d; want 422", rec.Code)
	}
	var body struct {
		Error       string            `json:"error"`
		Diagnostics []macs.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Diagnostics) != 2 || body.Diagnostics[0].Message != "use of s1 before definition" {
		t.Fatalf("422 body diagnostics = %+v", body.Diagnostics)
	}
}

func TestHTTPRecoverPanic(t *testing.T) {
	// The outermost middleware turns a handler panic into a 500.
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	h := recoverPanic(log, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/analyze", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d; want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Fatalf("500 body = %q", rec.Body.String())
	}
}

func TestHTTPPayloadTooLarge(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	// A body over maxBodyBytes must come back as 413, not 400.
	big := `{"source":"` + strings.Repeat("C", maxBodyBytes+1) + `"}`
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d; want 413", resp.StatusCode)
	}
	// A small malformed body is still a plain 400.
	resp2, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d; want 400", resp2.StatusCode)
	}
}

func TestHTTPAnalyzeAttribution(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{Source: saxpySrc, Iterations: 2048,
		Prime: Priming{Ints: map[string]int64{"N": 2048}, Reals: map[string]float64{"A": 1.5}}}
	resp := postJSON(t, srv.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}
	r := decode[AnalyzeResponse](t, resp)
	if len(r.Attribution) == 0 {
		t.Fatal("analyze response has empty attribution breakdown")
	}
	// The lane-summed ledger is conserved: it covers 4 lanes x Cycles.
	var sum int64
	for _, v := range r.Attribution {
		sum += v
	}
	if want := 4 * r.Cycles; sum != want {
		t.Errorf("attribution sum = %d, want 4*cycles = %d", sum, want)
	}
	if r.Attribution["issue"] == 0 {
		t.Error("attribution missing issue cycles")
	}
	// Refresh runs 8 of every 400 cycles: its share of run time on a long
	// memory-streaming kernel sits near that 2% duty cycle.
	share := float64(r.Attribution["refresh"]) / float64(r.Cycles)
	if share < 0.005 || share > 0.04 {
		t.Errorf("refresh share = %.4f of cycles, want ~0.02", share)
	}
	// The aggregate counters on /metrics saw the same run.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[Snapshot](t, mresp)
	if m.StallCycles["refresh"] != r.Attribution["refresh"] {
		t.Errorf("metrics stall_cycles[refresh] = %d, want %d", m.StallCycles["refresh"], r.Attribution["refresh"])
	}
	// A cache hit must not double-count the aggregate.
	resp2 := postJSON(t, srv.URL+"/v1/analyze", req)
	r2 := decode[AnalyzeResponse](t, resp2)
	if !r2.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if got := s.stallCycles()["refresh"]; got != r.Attribution["refresh"] {
		t.Errorf("cache hit inflated stall_cycles[refresh]: %d vs %d", got, r.Attribution["refresh"])
	}
}

// TestHTTPAnalyzeTierQueryParam: ?tier= selects the serving tier over
// HTTP, overrides the body, and the fast_tier metrics section reflects
// the auto-tier divergence samples.
func TestHTTPAnalyzeTierQueryParam(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 2, QueueSize: 8})
	req := AnalyzeRequest{Source: saxpySrc, Iterations: 32,
		Prime: Priming{Ints: map[string]int64{"N": 32}}, Tier: "exact"}

	resp := postJSON(t, srv.URL+"/v1/analyze?tier=fast", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tier=fast status = %d", resp.StatusCode)
	}
	r := decode[AnalyzeResponse](t, resp)
	if r.Tier != "fast" {
		t.Fatalf("tier = %q, want fast (query param overrides body)", r.Tier)
	}
	if r.PredictedCPL <= 0 || r.ErrorBand <= 0 {
		t.Fatalf("fast response missing prediction: %+v", r)
	}

	// A different iteration count is a different cache key, so the auto
	// request runs a fresh prediction and spawns one verification.
	autoReq := req
	autoReq.Iterations = 64
	resp = postJSON(t, srv.URL+"/v1/analyze?tier=auto", autoReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tier=auto status = %d", resp.StatusCode)
	}
	if r = decode[AnalyzeResponse](t, resp); r.Tier != "auto" {
		t.Fatalf("tier = %q, want auto", r.Tier)
	}
	s.verifyWG.Wait()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[Snapshot](t, mresp)
	if m.FastTier.Served != 2 || m.FastTier.Verified != 1 {
		t.Fatalf("fast_tier = %+v, want served = 2 and verified = 1", m.FastTier)
	}

	resp = postJSON(t, srv.URL+"/v1/analyze?tier=warp", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown tier status = %d, want 422", resp.StatusCode)
	}
	resp.Body.Close()
}
