package explore

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"macs"
	"macs/internal/lfk"
	"macs/internal/vm"
)

func TestGridSizeAndPoints(t *testing.T) {
	g := Grid{Axes: []Axis{
		{Param: "banks", Values: []float64{16, 32}},
		{Param: "refresh-stalls", Values: []float64{0, 1}},
		{Param: "vlmax", Values: []float64{64, 128, 256}},
	}}
	if got := g.Size(); got != 12 {
		t.Fatalf("Size = %d, want 12", got)
	}
	pts, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("Points = %d, want 12", len(pts))
	}
	// Last axis varies fastest; first point is the first value of every
	// axis applied to the default base.
	want := vm.DefaultMachine()
	want.Banks = 16
	want.RefreshStalls = false
	want.VLMax = 64
	if pts[0] != want {
		t.Fatalf("point 0 = %+v, want %+v", pts[0], want)
	}
	if pts[1].VLMax != 128 || pts[1].Banks != 16 {
		t.Fatalf("odometer order wrong: point 1 = %+v", pts[1])
	}
	if pts[11].Banks != 32 || pts[11].VLMax != 256 || !pts[11].RefreshStalls {
		t.Fatalf("last point = %+v", pts[11])
	}
	// An axis-free grid has exactly one point: the base.
	solo, err := Grid{}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 1 || solo[0] != vm.DefaultMachine() {
		t.Fatalf("axis-free grid = %+v", solo)
	}
}

func TestGridValidation(t *testing.T) {
	cases := []Grid{
		{Axes: []Axis{{Param: "warp-drive", Values: []float64{1}}}},
		{Axes: []Axis{{Param: "banks"}}},
		{Axes: []Axis{{Param: "banks", Values: []float64{1.5}}}},
		{Axes: []Axis{{Param: "banks", Values: []float64{0}}}},
		{Axes: []Axis{{Param: "chaining", Values: []float64{2}}}},
		{Axes: []Axis{{Param: "mem-slowdown", Values: []float64{-1}}}},
	}
	for i, g := range cases {
		if _, err := g.Points(); err == nil {
			t.Errorf("case %d: bad grid accepted: %+v", i, g)
		}
	}
}

// TestSweepOnePointDifferential is the bit-equivalence gate of the
// explore engine: a 1-point grid over the default machine must reproduce
// plain macs.AnalyzeSourceVM exactly — cycles, full statistics and
// attribution ledger, bounds hierarchy, CPL — on all ten case-study
// kernels. Any divergence means the sweep path and the serving path
// simulate different machines.
func TestSweepOnePointDifferential(t *testing.T) {
	eng, err := New(Grid{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range lfk.All() {
		sw, err := eng.Sweep(context.Background(), Request{
			Name:       k.Name,
			Source:     k.Source,
			Iterations: int64(k.Elements),
			Ints:       k.DataInts(),
			Prime:      k.PrimeFunc(),
		})
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		if sw.Swept != 1 || sw.Simulated != 1 || sw.Pruned != 0 {
			t.Fatalf("lfk%d: 1-point sweep counts = %d/%d/%d", k.ID, sw.Swept, sw.Simulated, sw.Pruned)
		}
		p := sw.Points[0]
		if !p.Simulated || p.Rank != 1 {
			t.Fatalf("lfk%d: sole point not the simulated winner: %+v", k.ID, p)
		}

		res, err := macs.AnalyzeSourceVM(k.Source, int64(k.Elements), vm.DefaultConfig(), k.PrimeFunc())
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		if p.Cycles != res.Stats.Cycles {
			t.Errorf("lfk%d: cycles %d, AnalyzeSourceVM %d", k.ID, p.Cycles, res.Stats.Cycles)
		}
		if !reflect.DeepEqual(*p.Stats, res.Stats) {
			t.Errorf("lfk%d: stats diverge:\nexplore: %+v\nanalyze: %+v", k.ID, *p.Stats, res.Stats)
		}
		if p.CPL != res.MeasuredCPL {
			t.Errorf("lfk%d: CPL %v, AnalyzeSourceVM %v", k.ID, p.CPL, res.MeasuredCPL)
		}
		a := res.Analysis
		want := Bounds{TMA: a.TMA, TMAC: a.TMAC, TMACS: a.MACS.CPL, TCP: a.TCP, Chimes: len(a.MACS.Chimes)}
		if p.Bounds != want {
			t.Errorf("lfk%d: bounds %+v, AnalyzeSourceVM %+v", k.ID, p.Bounds, want)
		}
	}
}

// TestSweepShortVLDifferential pins the per-VL compile: a 1-point grid
// over a VLMax=64 machine must agree bit-for-bit with AnalyzeSourceVM
// under the same machine — the strip length is burned in at compile
// time, so both paths must recompile at the machine's vector length
// rather than hardware-clamp a VL=128 program (which would silently
// skip half of every strip).
func TestSweepShortVLDifferential(t *testing.T) {
	grid := Grid{Axes: []Axis{{Param: "vlmax", Values: []float64{64}}}}
	eng, err := New(grid, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.VLMax = 64
	for _, k := range lfk.All() {
		sw, err := eng.Sweep(context.Background(), Request{
			Source:     k.Source,
			Iterations: int64(k.Elements),
			Ints:       k.DataInts(),
			Prime:      k.PrimeFunc(),
		})
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		p := sw.Points[0]
		res, err := macs.AnalyzeSourceVM(k.Source, int64(k.Elements), cfg, k.PrimeFunc())
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		if p.Cycles != res.Stats.Cycles {
			t.Errorf("lfk%d: cycles %d, AnalyzeSourceVM %d", k.ID, p.Cycles, res.Stats.Cycles)
		}
		if !reflect.DeepEqual(*p.Stats, res.Stats) {
			t.Errorf("lfk%d: stats diverge:\nexplore: %+v\nanalyze: %+v", k.ID, *p.Stats, res.Stats)
		}
	}
}

// randomGrid builds a seeded random grid over machine knobs that change
// real timing behavior.
func randomGrid(rng *rand.Rand) Grid {
	pick := func(vals []float64, n int) []float64 {
		out := make([]float64, 0, n)
		perm := rng.Perm(len(vals))
		for _, i := range perm[:n] {
			out = append(out, vals[i])
		}
		return out
	}
	return Grid{Axes: []Axis{
		{Param: "banks", Values: pick([]float64{8, 16, 17, 32, 64}, 2)},
		{Param: "bank-cycle", Values: pick([]float64{4, 8, 12, 16}, 2)},
		{Param: "vlmax", Values: pick([]float64{32, 64, 128}, 2)},
		{Param: "chaining", Values: []float64{0, 1}},
	}}
}

// TestSweepNeverDropsWinner is the pruning-safety property: on seeded
// random grids, the two-stage sweep's rank-1 machine must be the same
// machine an exhaustive simulation of every point would crown. The fast
// tier's replay is bit-exact for these kernels, so its ranking is the
// simulator's ranking and the winner always survives the cut.
func TestSweepNeverDropsWinner(t *testing.T) {
	k, err := lfk.ByID(7)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Source:     k.Source,
		Iterations: int64(k.Elements),
		Ints:       k.DataInts(),
		Prime:      k.PrimeFunc(),
	}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		grid := randomGrid(rng)

		pruned, err := New(grid, Options{TopFrac: 0.05, MinTop: 1})
		if err != nil {
			t.Fatal(err)
		}
		sw, err := pruned.Sweep(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sw.Fallback {
			t.Fatalf("seed %d: unexpected data-dependent fallback", seed)
		}

		exhaustive, err := New(grid, Options{TopFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		truth, err := exhaustive.Sweep(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if truth.Simulated != truth.Swept {
			t.Fatalf("seed %d: exhaustive sweep simulated %d of %d", seed, truth.Simulated, truth.Swept)
		}

		got, want := sw.Best(), truth.Best()
		if got.Fingerprint != want.Fingerprint {
			t.Errorf("seed %d: pruned winner %+v (cycles %d), exhaustive winner %+v (cycles %d)",
				seed, got.Machine, got.Cycles, want.Machine, want.Cycles)
		}
		if got.Cycles != want.Cycles {
			t.Errorf("seed %d: winner cycles %d vs exhaustive %d", seed, got.Cycles, want.Cycles)
		}
	}
}

// TestSweepPruningEconomics checks the two-stage bookkeeping on a larger
// grid: at the default 5% fraction, at least 10x fewer simulations than
// an exhaustive sweep, every survivor measured and ranked, every pruned
// point still scored and bounded.
func TestSweepPruningEconomics(t *testing.T) {
	k, err := lfk.ByID(7)
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid{Axes: []Axis{
		{Param: "banks", Values: []float64{8, 16, 24, 32, 48, 64}},
		{Param: "refresh-period", Values: []float64{200, 300, 400, 500, 600}},
		{Param: "vlmax", Values: []float64{32, 64, 96, 128}},
	}}
	eng, err := New(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := eng.Sweep(context.Background(), Request{
		Source:     k.Source,
		Iterations: int64(k.Elements),
		Ints:       k.DataInts(),
		Prime:      k.PrimeFunc(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Swept != 120 {
		t.Fatalf("swept %d, want 120", sw.Swept)
	}
	if sw.Simulated != 6 { // ceil(0.05 * 120)
		t.Fatalf("simulated %d, want 6", sw.Simulated)
	}
	if sw.Pruned != 114 {
		t.Fatalf("pruned %d, want 114", sw.Pruned)
	}
	if ratio := float64(sw.Swept) / float64(sw.Simulated); ratio < 10 {
		t.Fatalf("pruning ratio %.1fx below the 10x floor", ratio)
	}
	ranks := map[int]bool{}
	for _, p := range sw.Points {
		if p.Simulated {
			if p.Rank < 1 || p.Rank > sw.Simulated || p.Stats == nil || p.Cycles <= 0 {
				t.Fatalf("bad survivor %+v", p)
			}
			if ranks[p.Rank] {
				t.Fatalf("duplicate rank %d", p.Rank)
			}
			ranks[p.Rank] = true
			if err := p.Stats.Attr.Conserved(p.Cycles); err != nil {
				t.Fatalf("survivor %d: %v", p.Index, err)
			}
		} else {
			if p.Rank != 0 || p.Stats != nil {
				t.Fatalf("pruned point carries survivor state: %+v", p)
			}
			if p.PredictedCycles <= 0 {
				t.Fatalf("pruned point %d not scored", p.Index)
			}
		}
		if p.Bounds.TMACS <= 0 || p.Bounds.TMA <= 0 {
			t.Fatalf("point %d missing bounds: %+v", p.Index, p.Bounds)
		}
		if p.Fingerprint == "" {
			t.Fatalf("point %d missing fingerprint", p.Index)
		}
	}
	// Ranked returns survivors first, best first.
	ranked := sw.Ranked()
	if !ranked[0].Simulated || ranked[0].Rank != 1 {
		t.Fatalf("Ranked()[0] = %+v", ranked[0])
	}
	for i := 1; i < sw.Simulated; i++ {
		if ranked[i].Cycles < ranked[i-1].Cycles {
			t.Fatalf("Ranked order broken at %d", i)
		}
	}
	if ranked[sw.Simulated].Simulated {
		t.Fatalf("pruned points not after survivors")
	}
}

// TestSweepCancellation: a cancelled context stops the sweep.
func TestSweepCancellation(t *testing.T) {
	k, err := lfk.ByID(7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Grid{Axes: []Axis{{Param: "banks", Values: []float64{8, 16, 32, 64}}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Sweep(ctx, Request{Source: k.Source, Ints: k.DataInts()}); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}

// TestSharedEvaluators: engines sharing a registry share per-machine
// state, keyed by fingerprint.
func TestSharedEvaluators(t *testing.T) {
	shared := NewEvaluators(vm.DefaultConfig())
	g := Grid{Axes: []Axis{{Param: "banks", Values: []float64{16, 32}}}}
	for i := 0; i < 2; i++ {
		if _, err := New(g, Options{Evaluators: shared}); err != nil {
			t.Fatal(err)
		}
	}
	k, err := lfk.ByID(7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Evaluators: shared, TopFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sweep(context.Background(), Request{
		Source: k.Source, Iterations: int64(k.Elements),
		Ints: k.DataInts(), Prime: k.PrimeFunc(),
	}); err != nil {
		t.Fatal(err)
	}
	if got := shared.Machines(); got != 2 {
		t.Fatalf("shared registry holds %d machines, want 2", got)
	}
}
