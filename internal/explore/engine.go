package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"macs"
	"macs/internal/calib"
	"macs/internal/core"
	"macs/internal/fasttier"
	"macs/internal/isa"
	"macs/internal/par"
	"macs/internal/vm"
)

// DefaultTopFrac is the fraction of the grid the exact simulator runs on
// when Options.TopFrac is zero: 5% of the points, the Concorde-style
// two-stage recipe's default.
const DefaultTopFrac = 0.05

// Options configures an Engine.
type Options struct {
	// Run is the run-bound configuration template (memory size, budgets,
	// tracing); its Machine field is replaced by each grid point. The zero
	// value takes vm.DefaultConfig.
	Run vm.Config
	// Compiler configures the one compile each kernel gets. The zero
	// value takes the default options.
	Compiler macs.CompilerOptions
	// TopFrac is the fraction of grid points promoted to exact
	// simulation, ranked by fast-tier predicted cycles; 0 takes
	// DefaultTopFrac, and at least MinTop points always survive.
	TopFrac float64
	// MinTop floors the survivor count; 0 takes 1.
	MinTop int
	// Workers bounds sweep concurrency; <1 uses all cores.
	Workers int
	// Evaluators, when non-nil, shares per-machine state (simulator pools,
	// fast-tier predictors) with other engines — the serving layer holds
	// one registry across requests so repeated sweeps keep their stall
	// tables and prediction memos warm. Nil gives the engine its own.
	Evaluators *Evaluators
}

// evaluator is the per-machine state of a sweep: the concrete run
// configuration, the fast-tier predictor (with its memo and pooled
// replayers) and the pooled exact simulators. Machines are recognized by
// canonical fingerprint, so two grids naming the same machine share one
// evaluator.
type evaluator struct {
	cfg  vm.Config
	pred *fasttier.Predictor
	pool *vm.Pool
}

// Evaluators is a fingerprint-keyed registry of per-machine evaluators,
// safe for concurrent use and shareable between engines. It also caches
// compiled programs by (source, compiler options): the fast tier's
// prediction memo is keyed by program pointer, so handing repeated
// sweeps the same *Program is what lets a warm sweep skip the schedule
// replay for every machine it has already scored.
type Evaluators struct {
	run vm.Config
	mu  sync.Mutex
	m   map[string]*evaluator

	progMu sync.Mutex
	progs  map[progKey]*macs.Program
}

// progKey identifies one compile: a source text at one set of compiler
// options (the VL having been set to the machine's effective length).
type progKey struct {
	src  string
	opts macs.CompilerOptions
}

// progCap bounds the program cache; on overflow it is dropped wholesale
// (compiles are cheap to redo, eviction bookkeeping is not).
const progCap = 128

// NewEvaluators creates a shared evaluator registry over one run
// template. The template's own Machine field is irrelevant — it is
// replaced by each requested machine.
func NewEvaluators(run vm.Config) *Evaluators {
	if run == (vm.Config{}) {
		run = vm.DefaultConfig()
	}
	return &Evaluators{
		run:   run,
		m:     make(map[string]*evaluator),
		progs: make(map[progKey]*macs.Program),
	}
}

// get returns (creating on first sight) the evaluator for one machine.
func (e *Evaluators) get(m vm.Machine) *evaluator {
	fp := m.Fingerprint()
	e.mu.Lock()
	defer e.mu.Unlock()
	if ev, ok := e.m[fp]; ok {
		return ev
	}
	cfg := e.run.WithMachine(m)
	ev := &evaluator{
		cfg:  cfg,
		pred: fasttier.NewPredictor(calib.FastTierConfig(cfg)),
		pool: vm.NewPool(cfg),
	}
	e.m[fp] = ev
	return ev
}

// program returns the compiled and verified program for one source at
// one set of compiler options, compiling on first sight.
func (e *Evaluators) program(src string, opts macs.CompilerOptions) (*macs.Program, error) {
	k := progKey{src, opts}
	e.progMu.Lock()
	p, ok := e.progs[k]
	e.progMu.Unlock()
	if ok {
		return p, nil
	}
	prog, err := macs.Compile(src, opts)
	if err != nil {
		return nil, err
	}
	if err := macs.VerifyProgram(prog); err != nil {
		return nil, err
	}
	e.progMu.Lock()
	if len(e.progs) >= progCap {
		e.progs = make(map[progKey]*macs.Program)
	}
	e.progs[k] = prog
	e.progMu.Unlock()
	return prog, nil
}

// Machines reports how many distinct machines the registry has built
// state for.
func (e *Evaluators) Machines() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.m)
}

// Engine sweeps one grid over kernels. Create with New; an Engine may
// run many Sweeps (one per kernel) and is safe for concurrent use.
type Engine struct {
	opts   Options
	points []vm.Machine
	evals  *Evaluators
}

// New validates the grid, materializes its points and builds the engine.
func New(grid Grid, opts Options) (*Engine, error) {
	points, err := grid.Points()
	if err != nil {
		return nil, err
	}
	if opts.Run == (vm.Config{}) {
		opts.Run = vm.DefaultConfig()
	}
	if opts.Compiler == (macs.CompilerOptions{}) {
		opts.Compiler = macs.DefaultCompilerOptions()
	}
	if opts.TopFrac <= 0 {
		opts.TopFrac = DefaultTopFrac
	}
	if opts.TopFrac > 1 {
		opts.TopFrac = 1
	}
	if opts.MinTop < 1 {
		opts.MinTop = 1
	}
	opts.Workers = par.Workers(opts.Workers)
	evals := opts.Evaluators
	if evals == nil {
		evals = NewEvaluators(opts.Run)
	}
	return &Engine{opts: opts, points: points, evals: evals}, nil
}

// Points returns the number of machine points in the engine's grid.
func (e *Engine) Points() int { return len(e.points) }

// Bounds is the analytical bounds hierarchy of one grid point: the MACS
// family plus the dependence critical path, in CPL.
type Bounds struct {
	TMA    float64 `json:"t_ma"`
	TMAC   float64 `json:"t_mac"`
	TMACS  float64 `json:"t_macs"`
	TCP    float64 `json:"t_cp"`
	Chimes int     `json:"chimes"`
}

// Point is one evaluated grid point. Every point carries the analytical
// bounds and the fast-tier score; only simulated survivors carry exact
// cycles, CPL and the per-lane stall attribution.
type Point struct {
	// Index is the point's position in grid order.
	Index int `json:"index"`
	// Machine is the point's hardware description; Fingerprint its
	// canonical hash.
	Machine     vm.Machine `json:"machine"`
	Fingerprint string     `json:"fingerprint"`
	// Bounds is the MACS hierarchy under this machine's VL and rules.
	Bounds Bounds `json:"bounds"`
	// PredictedCycles and PredictedCPL are the stage-1 fast-tier score
	// (calibrated CPL; cycles are raw). In a data-dependent fallback
	// sweep both are zero.
	PredictedCycles int64   `json:"predicted_cycles"`
	PredictedCPL    float64 `json:"predicted_cpl"`
	// Simulated marks a stage-2 survivor; Rank is its 1-based position
	// among survivors by measured cycles (0 for pruned points).
	Simulated bool `json:"simulated"`
	Rank      int  `json:"rank,omitempty"`
	// Cycles, CPL and Stats are the exact measurement (survivors only).
	Cycles int64     `json:"cycles,omitempty"`
	CPL    float64   `json:"cpl,omitempty"`
	Stats  *vm.Stats `json:"stats,omitempty"`
}

// Score returns the cycles the sweep ranked the point by: measured when
// simulated, predicted otherwise.
func (p Point) Score() int64 {
	if p.Simulated {
		return p.Cycles
	}
	return p.PredictedCycles
}

// Request is one kernel to sweep the grid over.
type Request struct {
	// Name labels the sweep (e.g. "lfk7"); informational.
	Name string
	// Source is the kernel's Fortran-subset source, compiled once.
	Source string
	// Iterations converts cycles to CPL; 0 skips the conversion.
	Iterations int64
	// Ints primes the fast tier's integer inputs by data-symbol name
	// (e.g. "d_N"; see macs.DataSymbol) — trip counts and layout.
	Ints map[string]int64
	// Prime, when non-nil, primes each simulator before a survivor's
	// exact run, exactly as in macs.AnalyzeSourceVM.
	Prime func(*vm.CPU) error
	// Observe, when non-nil, is called once per simulated survivor as its
	// measurement completes (serialized, completion order, before ranks
	// are assigned) — the serving layer streams these.
	Observe func(Point)
}

// Sweep is the outcome of sweeping the grid over one kernel.
type Sweep struct {
	Name string `json:"name,omitempty"`
	// Points holds every grid point, in grid order.
	Points []Point `json:"points"`
	// Swept, Pruned and Simulated count the two-stage economics:
	// Swept = len(Points), Simulated survivors ran exactly,
	// Pruned = Swept - Simulated were answered by the fast tier alone.
	Swept     int `json:"swept"`
	Pruned    int `json:"pruned"`
	Simulated int `json:"simulated"`
	// Fallback reports that the fast tier rejected the program as
	// data-dependent and every point was simulated (no pruning).
	Fallback bool `json:"fallback,omitempty"`
}

// Ranked returns the sweep's points ordered best-first: simulated
// survivors by measured cycles, then pruned points by predicted cycles,
// index breaking ties.
func (s *Sweep) Ranked() []Point {
	out := make([]Point, len(s.Points))
	copy(out, s.Points)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Simulated != out[j].Simulated {
			return out[i].Simulated
		}
		if a, b := out[i].Score(), out[j].Score(); a != b {
			return a < b
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Best returns the winning point (rank 1).
func (s *Sweep) Best() Point {
	for _, p := range s.Points {
		if p.Rank == 1 {
			return p
		}
	}
	return Point{}
}

// boundsKey memoizes per-machine analytical bounds: the hierarchy
// depends only on the vector length and the chime rules, so a grid
// varying memory geometry over thousands of points computes it once.
type boundsKey struct {
	vl    int
	rules core.Rules
}

// effVL is the vector length point m's program is compiled at: the
// machine's VLMax clamped to the ISA ceiling (a longer-VL machine simply
// leaves its extra length unused), or the engine's compiler default when
// the machine does not say.
func (e *Engine) effVL(m vm.Machine) int {
	switch {
	case m.VLMax <= 0:
		return e.opts.Compiler.VL
	case m.VLMax > isa.VLMax:
		return isa.VLMax
	}
	return m.VLMax
}

// Sweep evaluates every grid point for one kernel: compile once per
// distinct vector length, score every point with the fast tier, simulate
// the top fraction. It is cancellable through ctx — once ctx fires, no
// new point is launched and the sweep returns ctx's error.
func (e *Engine) Sweep(ctx context.Context, req Request) (*Sweep, error) {
	// A program's strip length is burned in at compile time — the strip
	// loop advances its streams and decrements its count by the
	// compile-time VL — so a machine with a different VLMax needs its own
	// compile: running a VL=128 program on a VLMax=32 machine would clamp
	// every strip to 32 elements and silently skip three quarters of the
	// work. A grid holds at most a handful of distinct vector lengths, so
	// compilation stays shared across every other axis.
	progOf := make(map[int]*macs.Program)
	for _, m := range e.points {
		vl := e.effVL(m)
		if _, ok := progOf[vl]; ok {
			continue
		}
		copts := e.opts.Compiler
		copts.VL = vl
		prog, err := e.evals.program(req.Source, copts)
		if err != nil {
			return nil, err
		}
		progOf[vl] = prog
	}

	n := len(e.points)
	sw := &Sweep{Name: req.Name, Points: make([]Point, n), Swept: n}

	// Analytical bounds, memoized by the (VL, rules) combinations the
	// grid actually contains — typically one, at most a handful.
	boundsOf := make(map[boundsKey]Bounds)
	for _, m := range e.points {
		k := boundsKey{e.effVL(m), m.Rules}
		if _, ok := boundsOf[k]; ok {
			continue
		}
		a, err := macs.BoundCompiled(req.Source, progOf[k.vl], k.vl, m.Rules)
		if err != nil {
			return nil, err
		}
		boundsOf[k] = Bounds{
			TMA:    a.TMA,
			TMAC:   a.TMAC,
			TMACS:  a.MACS.CPL,
			TCP:    a.TCP,
			Chimes: len(a.MACS.Chimes),
		}
	}

	// Stage 1: fast-tier score for every point, in parallel. Data
	// dependence is a property of the program, not of the machine; the
	// first rejection flips the whole sweep into exhaustive simulation.
	var dataDependent sync.Once
	fallback := false
	err := par.ForEachCtx(ctx, e.opts.Workers, n, func(i int) error {
		m := e.points[i]
		p := Point{
			Index:       i,
			Machine:     m,
			Fingerprint: m.Fingerprint(),
			Bounds:      boundsOf[boundsKey{e.effVL(m), m.Rules}],
		}
		pred, err := e.evals.get(m).pred.Predict(progOf[e.effVL(m)], req.Iterations, req.Ints)
		switch {
		case errors.Is(err, fasttier.ErrDataDependent):
			dataDependent.Do(func() { fallback = true })
		case err != nil:
			return fmt.Errorf("explore: point %d: %w", i, err)
		default:
			p.PredictedCycles = pred.Cycles
			p.PredictedCPL = pred.CPL
		}
		sw.Points[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	sw.Fallback = fallback

	// Stage 2: exact simulation of the survivors. Without fallback the
	// survivor set is the top TopFrac of points by predicted cycles
	// (fewer predicted cycles = faster machine = better); under fallback
	// it is everything.
	survivors := make([]int, 0, n)
	if fallback {
		for i := 0; i < n; i++ {
			survivors = append(survivors, i)
		}
	} else {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			pa, pb := sw.Points[order[a]], sw.Points[order[b]]
			if pa.PredictedCycles != pb.PredictedCycles {
				return pa.PredictedCycles < pb.PredictedCycles
			}
			return pa.Index < pb.Index
		})
		top := int(math.Ceil(e.opts.TopFrac * float64(n)))
		if top < e.opts.MinTop {
			top = e.opts.MinTop
		}
		if top > n {
			top = n
		}
		survivors = append(survivors, order[:top]...)
	}
	sw.Simulated = len(survivors)
	sw.Pruned = n - sw.Simulated

	var observeMu sync.Mutex
	err = par.ForEachCtx(ctx, e.opts.Workers, len(survivors), func(j int) error {
		i := survivors[j]
		p := &sw.Points[i]
		ev := e.evals.get(p.Machine)
		cpu := ev.pool.Get()
		defer ev.pool.Put(cpu)
		if err := cpu.Load(progOf[e.effVL(p.Machine)]); err != nil {
			return fmt.Errorf("explore: point %d: %w", i, err)
		}
		if req.Prime != nil {
			if err := req.Prime(cpu); err != nil {
				return fmt.Errorf("explore: point %d: %w", i, err)
			}
		}
		st, err := cpu.Run()
		if err != nil {
			return fmt.Errorf("explore: point %d: %w", i, err)
		}
		p.Simulated = true
		p.Cycles = st.Cycles
		p.Stats = &st
		if req.Iterations > 0 {
			p.CPL = float64(st.Cycles) / float64(req.Iterations)
		}
		if req.Observe != nil {
			observeMu.Lock()
			req.Observe(*p)
			observeMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Rank the survivors by measured cycles.
	sort.Slice(survivors, func(a, b int) bool {
		pa, pb := sw.Points[survivors[a]], sw.Points[survivors[b]]
		if pa.Cycles != pb.Cycles {
			return pa.Cycles < pb.Cycles
		}
		return pa.Index < pb.Index
	})
	for rank, i := range survivors {
		sw.Points[i].Rank = rank + 1
	}
	return sw, nil
}
