// Package explore is the design-space exploration engine: it sweeps a
// declared grid of machine variants over a kernel and ranks the machines,
// at interactive speed, by running the expensive cycle-level simulator on
// only a small top fraction of the space.
//
// The paper models one machine (the Convex C-240), but the simulator has
// always been fully parameterized; with the machine description split out
// as vm.Machine, a sweep varies Machines while compiling the kernel
// exactly once. Evaluation is two-stage, in the spirit of hierarchical
// modeling: the analytical fast tier (internal/fasttier) scores every
// grid point in microseconds — for the non-data-dependent programs it
// admits, its cycle count is bit-exact against the simulator, so the
// ranking it induces is the true ranking — and exact simulation with full
// per-lane stall attribution runs only on the top-K survivors, explaining
// *why* each one wins or loses. Programs the fast tier rejects
// (ErrDataDependent) fall back to simulating every point: correctness
// over pruning.
package explore

import (
	"fmt"
	"math"
	"sort"

	"macs/internal/vm"
)

// Axis is one swept parameter: a name from Params and the values it
// takes. Values are declared as float64 so one axis type covers integer
// knobs (banks), real knobs (mem-slowdown) and boolean knobs (0/1);
// integer and boolean parameters reject non-integral values.
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// Grid declares a parameter sweep: a base machine and the axes varied
// over it. The grid's points are the cartesian product of the axis
// values applied to the base; a grid with no axes has exactly one point,
// the base machine itself.
type Grid struct {
	// Base is the machine every point starts from; the zero value takes
	// vm.DefaultMachine (the C-240).
	Base vm.Machine `json:"base"`
	Axes []Axis     `json:"axes,omitempty"`
}

// paramKind classifies a parameter's value domain.
type paramKind int

const (
	kindInt paramKind = iota
	kindFloat
	kindBool
)

// param is one settable machine knob.
type param struct {
	kind  paramKind
	doc   string
	apply func(*vm.Machine, float64)
}

// params is the registry of sweepable machine knobs. Boolean knobs take
// 0 or 1; integer knobs must be positive integers.
var params = map[string]param{
	"banks": {kindInt, "interleaved memory bank count",
		func(m *vm.Machine, v float64) { m.Banks = int(v) }},
	"bank-cycle": {kindInt, "bank busy cycles per access",
		func(m *vm.Machine, v float64) { m.BankCycle = int(v) }},
	"refresh-period": {kindInt, "cycles between memory refreshes",
		func(m *vm.Machine, v float64) { m.RefreshPeriod = int(v) }},
	"refresh-len": {kindInt, "cycles each refresh lasts",
		func(m *vm.Machine, v float64) { m.RefreshLen = int(v) }},
	"vlmax": {kindInt, "hardware vector length",
		func(m *vm.Machine, v float64) { m.VLMax = int(v) }},
	"mem-slowdown": {kindFloat, "memory contention multiplier",
		func(m *vm.Machine, v float64) { m.MemSlowdown = v }},
	"scalar-load-lat": {kindInt, "scalar load/store latency",
		func(m *vm.Machine, v float64) { m.ScalarLoadLat = int(v) }},
	"scalar-op-lat": {kindInt, "scalar ALU latency",
		func(m *vm.Machine, v float64) { m.ScalarOpLat = int(v) }},
	"branch-penalty": {kindInt, "taken-branch penalty cycles",
		func(m *vm.Machine, v float64) { m.BranchPenalty = int(v) }},
	"dispatch-lat": {kindInt, "vector dispatch cycles",
		func(m *vm.Machine, v float64) { m.DispatchLat = int(v) }},
	"bank-conflicts": {kindBool, "model bank-busy stalls",
		func(m *vm.Machine, v float64) { m.BankConflicts = v != 0 }},
	"refresh-stalls": {kindBool, "model refresh stalls",
		func(m *vm.Machine, v float64) { m.RefreshStalls = v != 0 }},
	"chaining": {kindBool, "allow dependent instructions to share a chime",
		func(m *vm.Machine, v float64) { m.Rules.Chaining = v != 0 }},
	"no-memory-chaining": {kindBool, "forbid chaining out of vector loads (Cray-1-like)",
		func(m *vm.Machine, v float64) { m.Rules.NoMemoryChaining = v != 0 }},
	"pair-rule": {kindBool, "enforce the register pair rule",
		func(m *vm.Machine, v float64) { m.Rules.PairRule = v != 0 }},
	"split-rule": {kindBool, "split chimes at scalar memory accesses",
		func(m *vm.Machine, v float64) { m.Rules.SplitRule = v != 0 }},
	"bubbles": {kindBool, "charge tailgating bubbles",
		func(m *vm.Machine, v float64) { m.Rules.Bubbles = v != 0 }},
}

// Params lists the sweepable parameter names, sorted, each with a short
// description — the CLI's -axis help and the spec-file vocabulary.
func Params() []string {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = fmt.Sprintf("%-18s %s", name, params[name].doc)
	}
	return out
}

// checkAxis validates one axis against the parameter registry.
func checkAxis(a Axis) error {
	p, ok := params[a.Param]
	if !ok {
		return fmt.Errorf("explore: unknown parameter %q", a.Param)
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("explore: axis %q has no values", a.Param)
	}
	for _, v := range a.Values {
		switch p.kind {
		case kindInt:
			if v != math.Trunc(v) || v < 1 {
				return fmt.Errorf("explore: axis %q: value %g is not a positive integer", a.Param, v)
			}
		case kindBool:
			if v != 0 && v != 1 {
				return fmt.Errorf("explore: axis %q: value %g is not 0 or 1", a.Param, v)
			}
		case kindFloat:
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return fmt.Errorf("explore: axis %q: value %g is not a positive real", a.Param, v)
			}
		}
	}
	return nil
}

// Size returns the number of grid points (the product of the axis
// lengths; 1 for an axis-free grid) without materializing them.
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Points validates the grid and materializes every machine point in
// lexicographic axis order (the last axis varies fastest).
func (g Grid) Points() ([]vm.Machine, error) {
	base := g.Base
	if base == (vm.Machine{}) {
		base = vm.DefaultMachine()
	}
	for _, a := range g.Axes {
		if err := checkAxis(a); err != nil {
			return nil, err
		}
	}
	out := make([]vm.Machine, 0, g.Size())
	idx := make([]int, len(g.Axes))
	for {
		m := base
		for ai, a := range g.Axes {
			params[a.Param].apply(&m, a.Values[idx[ai]])
		}
		out = append(out, m)
		// Odometer increment, last axis fastest.
		ai := len(g.Axes) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(g.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return out, nil
		}
	}
}
