// Package obs is the observability layer of the serving stack: request
// traces built from lightweight context-propagated spans, a hand-rolled
// Prometheus text-exposition writer and validating parser, a Chrome
// trace_event exporter that merges pipeline spans with the simulator's
// per-lane timing rows, and a periodic Go-runtime sampler.
//
// The span API is designed so the pipeline can be instrumented
// unconditionally: when no Trace rides the context, Start is a single
// context.Value lookup returning a nil *Span whose End is a no-op —
// nanoseconds, no allocation — so the hot paths (and their benchmarks)
// pay nothing when tracing is off.
//
//	ctx, sp := obs.Start(ctx, "simulate")
//	... stage work ...
//	sp.End()
//
// Spans nest through the context: a Start under an already-started span
// records that span as its parent, so one request's trace reconstructs
// the full HTTP → stage → sub-stage hierarchy. The package is
// stdlib-only and imports nothing from the rest of the module, so every
// layer (vm included) can depend on it.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// Trace is one request's collection of completed (and in-progress)
// spans, plus optionally the simulator's per-lane timing events anchored
// under one span. It is safe for concurrent use: batch fan-out items and
// asynchronous verifications may start spans from several goroutines.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []spanRecord
	lanes []LaneEvent
	// laneAnchor is the index of the span whose start anchors the lane
	// events' cycle timestamps (-1: none).
	laneAnchor int
}

// spanRecord is the immutable part of a span kept on the trace.
type spanRecord struct {
	name   string
	parent int // index into spans, -1 for roots
	start  time.Time
	dur    time.Duration
	ended  bool
}

// Span is one live span handle. A nil *Span is valid and inert — every
// method is a no-op — which is what Start returns when the context
// carries no Trace.
type Span struct {
	trace *Trace
	idx   int
}

// LaneEvent is one simulator lane occupancy interval, in clock cycles
// relative to the start of the run. Lane names the row ("add pipe");
// Args ride into the Chrome export verbatim.
type LaneEvent struct {
	Lane  string         `json:"lane"`
	Name  string         `json:"name"`
	Start int64          `json:"start"`
	Dur   int64          `json:"dur"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewID returns a fresh 16-hex-character trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the
		// clock rather than take down request handling.
		now := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts an empty trace. An empty id gets a fresh one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{id: id, start: time.Now(), laneAnchor: -1}
}

// ID returns the trace's identifier.
func (t *Trace) ID() string { return t.id }

// Start returns the trace's creation time.
func (t *Trace) Start() time.Time { return t.start }

// startSpan records a new span under the given parent index.
func (t *Trace) startSpan(name string, parent int) *Span {
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, spanRecord{name: name, parent: parent, start: time.Now()})
	t.mu.Unlock()
	return &Span{trace: t, idx: idx}
}

// End completes the span. Safe on nil spans and idempotent: only the
// first End records the duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	r := &t.spans[s.idx]
	if !r.ended {
		r.ended = true
		r.dur = time.Since(r.start)
	}
	t.mu.Unlock()
}

// AddLanes attaches simulator lane events to the trace, anchored at the
// given span (cycle 0 of the events maps to the span's start in the
// merged Chrome timeline). Later calls replace earlier ones — a trace
// carries the lanes of its one simulated run.
func (t *Trace) AddLanes(anchor *Span, events []LaneEvent) {
	if t == nil || len(events) == 0 {
		return
	}
	idx := -1
	if anchor != nil && anchor.trace == t {
		idx = anchor.idx
	}
	t.mu.Lock()
	t.lanes = append(t.lanes[:0], events...)
	t.laneAnchor = idx
	t.mu.Unlock()
}

// SpanView is one completed span in a trace snapshot: its name, start
// offset from the trace's origin, duration, and parent span index (-1
// for roots). Offsets and durations are in microseconds, the Chrome
// trace_event unit.
type SpanView struct {
	Name     string `json:"name"`
	Parent   int    `json:"parent"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
	Complete bool   `json:"complete"`
}

// TraceView is the JSON-shaped snapshot of a trace: what the service
// embeds in a response's optional trace block.
type TraceView struct {
	ID    string     `json:"id"`
	Spans []SpanView `json:"spans"`
	// Lanes carries the simulator's per-lane events of the traced run,
	// in cycles; empty when the request ran no simulation.
	Lanes []LaneEvent `json:"lanes,omitempty"`
}

// View snapshots the trace. In-progress spans report their duration so
// far with Complete false.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{ID: t.id, Spans: make([]SpanView, len(t.spans))}
	for i, r := range t.spans {
		d := r.dur
		if !r.ended {
			d = time.Since(r.start)
		}
		v.Spans[i] = SpanView{
			Name:     r.name,
			Parent:   r.parent,
			StartUS:  r.start.Sub(t.start).Microseconds(),
			DurUS:    d.Microseconds(),
			Complete: r.ended,
		}
	}
	if len(t.lanes) > 0 {
		v.Lanes = append(v.Lanes, t.lanes...)
	}
	return v
}

// StageDurations folds the trace's completed spans into a per-name
// duration sum — what the service feeds its per-stage latency
// histograms. Nested spans each contribute their own time (the caller's
// histogram semantics are per-stage, not exclusive-time).
func (t *Trace) StageDurations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	out := make(map[string]time.Duration, len(t.spans))
	for _, r := range t.spans {
		if r.ended {
			out[r.name] += r.dur
		}
	}
	return out
}
