package obs

import "context"

// NewContext returns ctx carrying the trace. Spans started under the
// returned context attach to t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// FromContext returns the trace riding ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// Start begins a span named name under the current span of ctx (or as a
// root when none is open) and returns a context under which children
// nest inside it. When ctx carries no Trace, Start is a no-op costing
// one context.Value lookup: it returns ctx unchanged and a nil *Span
// whose End does nothing, so unconditionally instrumented code paths
// stay free when tracing is disabled.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := -1
	if ps, ok := ctx.Value(spanKey).(*Span); ok && ps != nil && ps.trace == t {
		parent = ps.idx
	}
	sp := t.startSpan(name, parent)
	return context.WithValue(ctx, spanKey, sp), sp
}
