package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// This file is the independent validator for the text exposition format
// the PromWriter emits: the golden tests parse what the writer wrote,
// and CI scrapes a running macsd's /metrics?format=prom through it. It
// deliberately checks the rules a hand-rolled writer is most likely to
// break — header ordering, family grouping, label escaping, histogram
// bucket monotonicity and +Inf/count agreement — rather than being a
// full scrape-protocol implementation.

var (
	promNameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string // full series name, e.g. foo_bucket
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family: its headers and samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParseProm parses and validates an exposition document, returning its
// families in order of appearance. Any format violation is an error.
func ParseProm(text string) ([]PromFamily, error) {
	var (
		families []PromFamily
		byName   = map[string]*PromFamily{}
		current  *PromFamily // family whose group is open
		closed   = map[string]bool{}
	)
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		families = append(families, PromFamily{Name: name})
		f := &families[len(families)-1]
		byName[name] = f
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" { // plain comment
				continue
			}
			if !promNameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if closed[name] {
				return nil, fmt.Errorf("line %d: family %q reopened after its group ended", lineNo, name)
			}
			if current != nil && current.Name != name {
				closed[current.Name] = true
			}
			f := family(name)
			current = f
			switch kind {
			case "HELP":
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: HELP for %q after its samples", lineNo, name)
				}
				f.Help = rest
			case "TYPE":
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, rest, name)
				}
				f.Type = rest
			}
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := sampleFamily(s.Name, byName)
		if closed[famName] {
			return nil, fmt.Errorf("line %d: sample %q outside its family's group", lineNo, s.Name)
		}
		f, ok := byName[famName]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE header", lineNo, s.Name)
		}
		if f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q before a TYPE for %q", lineNo, s.Name, famName)
		}
		if current != nil && current.Name != famName {
			closed[current.Name] = true
			current = f
		}
		f.Samples = append(f.Samples, s)
	}

	for i := range families {
		if err := validateFamily(&families[i]); err != nil {
			return nil, err
		}
	}
	return families, nil
}

// parseComment splits a "# HELP name text" / "# TYPE name type" line;
// other comments return kind "".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	word, tail, _ := strings.Cut(body, " ")
	if word != "HELP" && word != "TYPE" {
		return "", "", "", nil
	}
	name, rest, ok := strings.Cut(tail, " ")
	if name == "" {
		return "", "", "", fmt.Errorf("malformed %s comment", word)
	}
	if word == "TYPE" && !ok {
		return "", "", "", fmt.Errorf("TYPE for %q names no type", name)
	}
	return word, name, rest, nil
}

// parseSample parses one "name{a="b",...} value" line.
func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !promNameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid series name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A trailing timestamp is legal in the format; the writer never emits
	// one, and rejecting it keeps the validator strict about our output.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {name="value",...} block starting at text[0]=='{'
// and returns the index just past the closing brace.
func parseLabels(text string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if text[i] == '}' {
			return i + 1, nil
		}
		j := strings.IndexByte(text[i:], '=')
		if j < 0 {
			return 0, fmt.Errorf("malformed label block %q", text)
		}
		name := text[i : i+j]
		if !promLabelRE.MatchString(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += j + 1
		if i >= len(text) || text[i] != '"' {
			return 0, fmt.Errorf("unquoted value for label %q", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(text) {
				return 0, fmt.Errorf("unterminated value for label %q", name)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, fmt.Errorf("dangling escape in label %q", name)
				}
				switch text[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, fmt.Errorf("invalid escape \\%c in label %q", text[i+1], name)
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = b.String()
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// sampleFamily maps a series name to its family: exact match, or the
// histogram/summary suffixes of a declared family.
func sampleFamily(series string, byName map[string]*PromFamily) string {
	if _, ok := byName[series]; ok {
		return series
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(series, suf); ok {
			if _, ok := byName[base]; ok {
				return base
			}
		}
	}
	return series
}

// validateFamily applies the per-family semantic checks: legal series
// names for the declared type, no duplicate series, and for histograms
// bucket monotonicity plus +Inf/count agreement per label set.
func validateFamily(f *PromFamily) error {
	seen := map[string]bool{}
	for _, s := range f.Samples {
		if f.Type == "histogram" {
			switch {
			case s.Name == f.Name+"_bucket", s.Name == f.Name+"_sum", s.Name == f.Name+"_count":
			default:
				return fmt.Errorf("family %q: unexpected histogram series %q", f.Name, s.Name)
			}
		} else if s.Name != f.Name {
			return fmt.Errorf("family %q: unexpected series %q", f.Name, s.Name)
		}
		id := s.Name + "|" + labelSig(s.Labels, false)
		if seen[id] {
			return fmt.Errorf("family %q: duplicate series %s{%s}", f.Name, s.Name, labelSig(s.Labels, false))
		}
		seen[id] = true
	}
	if f.Type != "histogram" {
		return nil
	}

	type histAgg struct {
		les     []float64
		cums    []float64
		count   float64
		hasCnt  bool
		hasInf  bool
		infCum  float64
		lastLE  float64
		ordered bool
	}
	byLabels := map[string]*histAgg{}
	agg := func(sig string) *histAgg {
		a, ok := byLabels[sig]
		if !ok {
			a = &histAgg{ordered: true, lastLE: math.Inf(-1)}
			byLabels[sig] = a
		}
		return a
	}
	for _, s := range f.Samples {
		sig := labelSig(s.Labels, true)
		a := agg(sig)
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %q: bucket without le label", f.Name)
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("family %q: bad le %q: %w", f.Name, leStr, err)
			}
			if le <= a.lastLE {
				a.ordered = false
			}
			a.lastLE = le
			if math.IsInf(le, 1) {
				a.hasInf = true
				a.infCum = s.Value
			}
			a.les = append(a.les, le)
			a.cums = append(a.cums, s.Value)
		case f.Name + "_count":
			a.count = s.Value
			a.hasCnt = true
		}
	}
	for sig, a := range byLabels {
		if len(a.les) == 0 {
			return fmt.Errorf("family %q{%s}: histogram series without buckets", f.Name, sig)
		}
		if !a.ordered {
			return fmt.Errorf("family %q{%s}: bucket le bounds not strictly increasing", f.Name, sig)
		}
		for i := 1; i < len(a.cums); i++ {
			if a.cums[i] < a.cums[i-1] {
				return fmt.Errorf("family %q{%s}: bucket counts decrease at le=%s",
					f.Name, sig, formatLE(a.les[i]))
			}
		}
		if !a.hasInf {
			return fmt.Errorf("family %q{%s}: no +Inf bucket", f.Name, sig)
		}
		if a.hasCnt && a.infCum != a.count {
			return fmt.Errorf("family %q{%s}: +Inf bucket %g != count %g",
				f.Name, sig, a.infCum, a.count)
		}
	}
	return nil
}

// labelSig renders a label set as a canonical signature; dropLE removes
// the histogram bucket label so buckets of one series group together.
func labelSig(labels map[string]string, dropLE bool) string {
	parts := make([]string, 0, len(labels))
	for _, k := range SortedLabelKeys(labels) {
		if dropLE && k == "le" {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	return strings.Join(parts, ",")
}
