package obs

import (
	"encoding/json"
	"sort"
)

// This file renders a completed trace as a Chrome trace_event JSON
// document (chrome://tracing, Perfetto): the request's nested pipeline
// spans on one "request" thread, and — when the traced run simulated —
// the simulator's per-lane occupancy rows merged into the same timeline,
// anchored at the start of the span that ran the simulation. Span
// timestamps are wall-clock microseconds from the trace origin; lane
// events are clock cycles displayed as microseconds, so one simulated
// cycle renders as one microsecond inside the simulate span's window.

// chromeEvent is one entry of the trace_event format ("X" complete
// events plus "M" metadata naming processes and threads).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts,omitempty"`
	Dur  int64          `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	chromePIDRequest = 0 // pipeline spans
	chromePIDSim     = 1 // simulator lanes
)

// ChromeTrace renders the trace's spans, merged with its simulator lane
// events, as Chrome trace_event JSON.
func ChromeTrace(v TraceView) ([]byte, error) {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	doc.TraceEvents = append(doc.TraceEvents,
		chromeEvent{Name: "process_name", Ph: "M", PID: chromePIDRequest,
			Args: map[string]any{"name": "request " + v.ID}},
		chromeEvent{Name: "thread_name", Ph: "M", PID: chromePIDRequest, TID: 0,
			Args: map[string]any{"name": "pipeline"}},
	)
	for i, sp := range v.Spans {
		dur := sp.DurUS
		if dur <= 0 {
			dur = 1
		}
		args := map[string]any{"span": i}
		if sp.Parent >= 0 && sp.Parent < len(v.Spans) {
			args["parent"] = v.Spans[sp.Parent].Name
		}
		if !sp.Complete {
			args["complete"] = false
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			PID:  chromePIDRequest,
			TID:  0,
			TS:   sp.StartUS,
			Dur:  dur,
			Args: args,
		})
	}

	if len(v.Lanes) > 0 {
		// Anchor the cycle timeline at the simulate span when one exists,
		// so the lane rows render inside the stage that produced them.
		var anchorUS int64
		for _, sp := range v.Spans {
			if sp.Name == "simulate" {
				anchorUS = sp.StartUS
				break
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: chromePIDSim,
			Args: map[string]any{"name": "simulator lanes (1 cycle = 1us)"},
		})
		// Stable lane → tid assignment in first-appearance order.
		tids := map[string]int{}
		var names []string
		for _, e := range v.Lanes {
			if _, ok := tids[e.Lane]; !ok {
				tids[e.Lane] = len(tids)
				names = append(names, e.Lane)
			}
		}
		sort.Slice(names, func(i, j int) bool { return tids[names[i]] < tids[names[j]] })
		for _, lane := range names {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: chromePIDSim, TID: tids[lane],
				Args: map[string]any{"name": lane},
			})
		}
		for _, e := range v.Lanes {
			dur := e.Dur
			if dur <= 0 {
				dur = 1
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: e.Name,
				Ph:   "X",
				PID:  chromePIDSim,
				TID:  tids[e.Lane],
				TS:   anchorUS + e.Start,
				Dur:  dur,
				Args: e.Args,
			})
		}
	}
	return json.MarshalIndent(doc, "", " ")
}
