package obs

import (
	"math"
	"strings"
	"testing"
)

// TestPromWriterGolden pins the exposition text byte for byte: HELP/TYPE
// ordering, label rendering, escaping, histogram bucket + sum/count
// series and value formatting.
func TestPromWriterGolden(t *testing.T) {
	w := NewPromWriter()
	w.Counter("macsd_requests_total", "Requests by endpoint.",
		Sample{Labels: []Label{{"endpoint", "analyze"}}, Value: 42},
		Sample{Labels: []Label{{"endpoint", "batch"}}, Value: 7},
	)
	w.Gauge("macsd_queue_depth", "Jobs waiting in the queue.", Sample{Value: 3})
	w.Counter("macsd_odd_labels_total", `Escaping: backslash \ quote " newline.`,
		Sample{Labels: []Label{{"path", "a\\b\"c\nd"}}, Value: 1},
	)
	w.Histogram("macsd_request_duration_seconds", "Request latency.",
		HistSample{
			Labels:  []Label{{"endpoint", "analyze"}},
			Buckets: []Bucket{{LE: 0.001, CumCount: 2}, {LE: 0.01, CumCount: 5}},
			Sum:     0.0325,
			Count:   6,
		},
	)

	want := strings.Join([]string{
		`# HELP macsd_requests_total Requests by endpoint.`,
		`# TYPE macsd_requests_total counter`,
		`macsd_requests_total{endpoint="analyze"} 42`,
		`macsd_requests_total{endpoint="batch"} 7`,
		`# HELP macsd_queue_depth Jobs waiting in the queue.`,
		`# TYPE macsd_queue_depth gauge`,
		`macsd_queue_depth 3`,
		`# HELP macsd_odd_labels_total Escaping: backslash \\ quote " newline.`,
		`# TYPE macsd_odd_labels_total counter`,
		`macsd_odd_labels_total{path="a\\b\"c\nd"} 1`,
		`# HELP macsd_request_duration_seconds Request latency.`,
		`# TYPE macsd_request_duration_seconds histogram`,
		`macsd_request_duration_seconds_bucket{endpoint="analyze",le="0.001"} 2`,
		`macsd_request_duration_seconds_bucket{endpoint="analyze",le="0.01"} 5`,
		`macsd_request_duration_seconds_bucket{endpoint="analyze",le="+Inf"} 6`,
		`macsd_request_duration_seconds_sum{endpoint="analyze"} 0.0325`,
		`macsd_request_duration_seconds_count{endpoint="analyze"} 6`,
		``,
	}, "\n")
	if got := string(w.Bytes()); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// And the validator must accept its own writer's output.
	fams, err := ParseProm(string(w.Bytes()))
	if err != nil {
		t.Fatalf("parser rejected writer output: %v", err)
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4", len(fams))
	}
}

func TestParsePromRoundTripsEscapes(t *testing.T) {
	w := NewPromWriter()
	odd := "a\\b\"c\nd"
	w.Counter("x_total", "h", Sample{Labels: []Label{{"l", odd}}, Value: 1})
	fams, err := ParseProm(string(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["l"]; got != odd {
		t.Fatalf("label round trip: got %q want %q", got, odd)
	}
}

func TestParsePromRejectsViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the error
	}{
		{
			"sample without TYPE",
			"foo 1\n",
			"no preceding TYPE",
		},
		{
			"TYPE after samples",
			"# TYPE foo counter\nfoo 1\n# TYPE bar gauge\nbar 1\n# TYPE foo counter\n",
			"reopened",
		},
		{
			"interleaved family groups",
			"# TYPE foo counter\nfoo 1\n# TYPE bar gauge\nbar 1\nfoo 2\n",
			"outside its family's group",
		},
		{
			"unknown type",
			"# TYPE foo flurble\nfoo 1\n",
			"unknown TYPE",
		},
		{
			"bad escape",
			"# TYPE foo counter\nfoo{l=\"a\\qb\"} 1\n",
			"invalid escape",
		},
		{
			"duplicate series",
			"# TYPE foo counter\nfoo{a=\"x\"} 1\nfoo{a=\"x\"} 2\n",
			"duplicate series",
		},
		{
			"buckets out of order",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"0.01\"} 1\nh_bucket{le=\"0.001\"} 2\nh_bucket{le=\"+Inf\"} 3\n" +
				"h_sum 1\nh_count 3\n",
			"not strictly increasing",
		},
		{
			"bucket counts decrease",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"0.001\"} 5\nh_bucket{le=\"0.01\"} 3\nh_bucket{le=\"+Inf\"} 5\n" +
				"h_sum 1\nh_count 5\n",
			"counts decrease",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"0.001\"} 1\nh_sum 1\nh_count 1\n",
			"no +Inf bucket",
		},
		{
			"+Inf disagrees with count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= count",
		},
		{
			"stray histogram series",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\nh_quantile 1\n",
			"no preceding TYPE",
		},
		{
			"bad metric name",
			"# TYPE 9foo counter\n9foo 1\n",
			"invalid metric name",
		},
		{
			"bad label name",
			"# TYPE foo counter\nfoo{9l=\"x\"} 1\n",
			"invalid label name",
		},
		{
			"unterminated label block",
			"# TYPE foo counter\nfoo{l=\"x\" 1\n",
			"malformed label",
		},
		{
			"bad value",
			"# TYPE foo counter\nfoo x\n",
			"bad value",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProm(tc.text)
			if err == nil {
				t.Fatalf("parser accepted invalid input:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParsePromAcceptsSpecialValues(t *testing.T) {
	text := "# TYPE foo gauge\nfoo{k=\"a\"} +Inf\nfoo{k=\"b\"} -Inf\nfoo{k=\"c\"} NaN\n"
	fams, err := ParseProm(text)
	if err != nil {
		t.Fatal(err)
	}
	s := fams[0].Samples
	if !math.IsInf(s[0].Value, 1) || !math.IsInf(s[1].Value, -1) || !math.IsNaN(s[2].Value) {
		t.Fatalf("special values parsed wrong: %+v", s)
	}
}

func TestFormatValue(t *testing.T) {
	for v, want := range map[float64]string{
		0:           "0",
		1.5:         "1.5",
		math.Inf(1): "+Inf",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
