package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutTraceIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "compile")
	if sp != nil {
		t.Fatalf("Start without a trace returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a trace replaced the context")
	}
	sp.End() // must not panic
	var nilTrace *Trace
	if v := nilTrace.View(); v.ID != "" || len(v.Spans) != 0 {
		t.Fatalf("nil trace view not empty: %+v", v)
	}
	if d := nilTrace.StageDurations(); d != nil {
		t.Fatalf("nil trace stage durations: %v", d)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("abc")
	ctx := NewContext(context.Background(), tr)

	ctx, root := Start(ctx, "analyze")
	cctx, compile := Start(ctx, "compile")
	compile.End()
	_, sim := Start(ctx, "simulate")
	_, inner := Start(cctx, "lex") // nests under compile even after its End
	inner.End()
	sim.End()
	root.End()

	v := tr.View()
	if v.ID != "abc" {
		t.Fatalf("trace id = %q", v.ID)
	}
	want := []struct {
		name   string
		parent int
	}{
		{"analyze", -1},
		{"compile", 0},
		{"simulate", 0},
		{"lex", 1},
	}
	if len(v.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d: %+v", len(v.Spans), len(want), v.Spans)
	}
	for i, w := range want {
		if v.Spans[i].Name != w.name || v.Spans[i].Parent != w.parent {
			t.Errorf("span %d = %q parent %d, want %q parent %d",
				i, v.Spans[i].Name, v.Spans[i].Parent, w.name, w.parent)
		}
		if !v.Spans[i].Complete {
			t.Errorf("span %q not complete", w.name)
		}
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTrace("")
	ctx := NewContext(context.Background(), tr)
	_, sp := Start(ctx, "x")
	sp.End()
	d1 := tr.View().Spans[0].DurUS
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if d2 := tr.View().Spans[0].DurUS; d2 != d1 {
		t.Fatalf("second End changed duration: %d -> %d", d1, d2)
	}
}

func TestStageDurations(t *testing.T) {
	tr := NewTrace("")
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, sp := Start(ctx, "item")
		sp.End()
	}
	_, open := Start(ctx, "open")
	_ = open // never ended: must not contribute
	d := tr.StageDurations()
	if _, ok := d["open"]; ok {
		t.Fatalf("unfinished span leaked into stage durations")
	}
	if _, ok := d["item"]; !ok {
		t.Fatalf("completed spans missing from stage durations: %v", d)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := NewTrace("")
	ctx := NewContext(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, sp := Start(ctx, "item")
				sp.End()
			}
		}()
	}
	// Concurrent readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.View()
				tr.StageDurations()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.View().Spans); n != 1600 {
		t.Fatalf("got %d spans, want 1600", n)
	}
}

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestChromeTraceMergesLanes(t *testing.T) {
	tr := NewTrace("deadbeef00000000")
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "analyze")
	_, sim := Start(ctx, "simulate")
	tr.AddLanes(sim, []LaneEvent{
		{Lane: "add pipe", Name: "vadd", Start: 0, Dur: 10, Args: map[string]any{"vl": 128}},
		{Lane: "load/store pipe", Name: "vload", Start: 2, Dur: 12},
	})
	sim.End()
	root.End()

	b, err := ChromeTrace(tr.View())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	var spanNames, laneNames, threadNames []string
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			if e["pid"].(float64) == chromePIDRequest {
				spanNames = append(spanNames, e["name"].(string))
			} else {
				laneNames = append(laneNames, e["name"].(string))
			}
		case "M":
			if e["name"] == "thread_name" {
				args := e["args"].(map[string]any)
				threadNames = append(threadNames, args["name"].(string))
			}
		}
	}
	if strings.Join(spanNames, ",") != "analyze,simulate" {
		t.Errorf("span events = %v", spanNames)
	}
	if strings.Join(laneNames, ",") != "vadd,vload" {
		t.Errorf("lane events = %v", laneNames)
	}
	joined := strings.Join(threadNames, ",")
	for _, want := range []string{"pipeline", "add pipe", "load/store pipe"} {
		if !strings.Contains(joined, want) {
			t.Errorf("thread names %q missing %q", joined, want)
		}
	}
}

func TestRuntimeSampler(t *testing.T) {
	s := StartRuntimeSampler(time.Second)
	defer s.Stop()
	st := s.Stats()
	if st.SampledAt.IsZero() {
		t.Fatalf("sampler did not sample immediately")
	}
	if st.Goroutines <= 0 || st.HeapAllocBytes == 0 {
		t.Fatalf("implausible runtime sample: %+v", st)
	}
	var nilSampler *RuntimeSampler
	if got := nilSampler.Stats(); !got.SampledAt.IsZero() {
		t.Fatalf("nil sampler returned a sample")
	}
	nilSampler.Stop()
}

// BenchmarkStartDisabled pins the disabled-path cost: one context.Value
// lookup and two nil checks. The ≤2% facade overhead budget in
// bench_test.go rests on this staying in the nanoseconds.
func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "stage")
		sp.End()
	}
}

func BenchmarkStartEnabled(b *testing.B) {
	tr := NewTrace("")
	ctx := NewContext(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "stage")
		sp.End()
	}
}
