package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeStats is one sample of the Go runtime's health: the figures a
// capacity dashboard watches (heap, GC, goroutines). Zero value means
// "never sampled".
type RuntimeStats struct {
	SampledAt        time.Time `json:"sampled_at"`
	Goroutines       int       `json:"goroutines"`
	HeapAllocBytes   uint64    `json:"heap_alloc_bytes"`
	HeapSysBytes     uint64    `json:"heap_sys_bytes"`
	HeapObjects      uint64    `json:"heap_objects"`
	GCRuns           uint32    `json:"gc_runs"`
	GCPauseTotalSecs float64   `json:"gc_pause_total_seconds"`
	LastGCPauseSecs  float64   `json:"last_gc_pause_seconds"`
}

// sampleRuntime reads the runtime counters once.
func sampleRuntime() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s := RuntimeStats{
		SampledAt:        time.Now(),
		Goroutines:       runtime.NumGoroutine(),
		HeapAllocBytes:   m.HeapAlloc,
		HeapSysBytes:     m.HeapSys,
		HeapObjects:      m.HeapObjects,
		GCRuns:           m.NumGC,
		GCPauseTotalSecs: float64(m.PauseTotalNs) / 1e9,
	}
	if m.NumGC > 0 {
		s.LastGCPauseSecs = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
	}
	return s
}

// RuntimeSampler periodically snapshots the Go runtime so /metrics can
// serve heap, GC and goroutine figures without paying a ReadMemStats
// stop-the-world on every scrape.
type RuntimeSampler struct {
	mu    sync.Mutex
	stats RuntimeStats
	stop  chan struct{}
	done  chan struct{}
}

// StartRuntimeSampler samples immediately, then every interval until
// Stop. Intervals under a second are clamped to a second — ReadMemStats
// is not free.
func StartRuntimeSampler(interval time.Duration) *RuntimeSampler {
	if interval < time.Second {
		interval = time.Second
	}
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	s.mu.Lock()
	s.stats = sampleRuntime()
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				st := sampleRuntime()
				s.mu.Lock()
				s.stats = st
				s.mu.Unlock()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stats returns the most recent sample. Safe on a nil sampler, which
// reports a zero (never-sampled) snapshot — callers render that as
// "sampler off".
func (s *RuntimeSampler) Stats() RuntimeStats {
	if s == nil {
		return RuntimeStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Stop halts the sampling loop. Safe to call once; nil-safe.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
