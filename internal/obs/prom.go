package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a hand-rolled Prometheus text-exposition (version 0.0.4)
// writer. No client library: the serving layer's metric inventory is
// small and fixed, and the repo policy is zero new dependencies. The
// writer enforces the format's structural rules by construction — one
// HELP/TYPE header per family, all of a family's samples in one group,
// histogram bucket sets completed with a +Inf bucket equal to the
// count — and promparse.go is the independent validator the tests and
// the CI scrape gate run against the output.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair. Order is preserved as given.
type Label struct {
	Name  string
	Value string
}

// Sample is one series of a counter or gauge family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Bucket is one finite histogram bucket: the cumulative count of
// observations ≤ LE. The writer appends the +Inf bucket itself.
type Bucket struct {
	LE       float64
	CumCount int64
}

// HistSample is one series of a histogram family: its finite buckets
// (cumulative, in increasing LE order), the sum of observations and the
// total count.
type HistSample struct {
	Labels  []Label
	Buckets []Bucket
	Sum     float64
	Count   int64
}

// PromWriter accumulates one exposition document. Families must be
// written one at a time (all samples together), which is exactly the
// grouping rule of the format.
type PromWriter struct {
	buf  bytes.Buffer
	seen map[string]bool
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{seen: map[string]bool{}}
}

// Bytes returns the exposition document accumulated so far.
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }

// header emits the HELP/TYPE pair for a family, once.
func (w *PromWriter) header(name, help, typ string) {
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.buf, "# TYPE %s %s\n", name, typ)
}

// Counter writes one counter family with all its samples.
func (w *PromWriter) Counter(name, help string, samples ...Sample) {
	w.header(name, help, "counter")
	for _, s := range samples {
		w.sample(name, s.Labels, s.Value)
	}
}

// Gauge writes one gauge family with all its samples.
func (w *PromWriter) Gauge(name, help string, samples ...Sample) {
	w.header(name, help, "gauge")
	for _, s := range samples {
		w.sample(name, s.Labels, s.Value)
	}
}

// Histogram writes one histogram family with all its series. Each
// series' finite buckets are emitted in the given order followed by the
// +Inf bucket carrying the total count, then the _sum and _count lines.
func (w *PromWriter) Histogram(name, help string, series ...HistSample) {
	w.header(name, help, "histogram")
	for _, h := range series {
		for _, b := range h.Buckets {
			w.sample(name+"_bucket", append(append([]Label{}, h.Labels...),
				Label{"le", formatLE(b.LE)}), float64(b.CumCount))
		}
		w.sample(name+"_bucket", append(append([]Label{}, h.Labels...),
			Label{"le", "+Inf"}), float64(h.Count))
		w.sample(name+"_sum", h.Labels, h.Sum)
		w.sample(name+"_count", h.Labels, float64(h.Count))
	}
}

func (w *PromWriter) sample(name string, labels []Label, v float64) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			fmt.Fprintf(&w.buf, `%s="%s"`, l.Name, escapeLabel(l.Value))
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(v))
	w.buf.WriteByte('\n')
}

// formatValue renders a sample value; Prometheus accepts Go's 'g'
// shortest representation plus the spelled-out specials.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLE renders a finite bucket bound for the le label.
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and line feed.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and line feed only (quotes
// are legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// SortedLabelKeys returns m's keys sorted — the helper every renderer
// uses to emit map-backed families deterministically.
func SortedLabelKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
