package ftn

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Print renders a Program back to canonical subset source: one
// declaration per line, fully parenthesized expressions, upper-case
// identifiers (the lexer's normal form). Printing then re-parsing yields
// the same program, and re-printing that yields identical text — the
// fixpoint the fuzz targets assert.
func Print(p *Program) string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "PROGRAM %s\n", p.Name)
	}
	for _, d := range p.Decls {
		b.WriteString(d.Kind.String())
		b.WriteByte(' ')
		b.WriteString(d.Name)
		if len(d.Dims) > 0 {
			b.WriteByte('(')
			for i, dim := range d.Dims {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(dim))
			}
			b.WriteByte(')')
		}
		b.WriteByte('\n')
	}
	printBody(&b, p.Body, 0)
	b.WriteString("END\n")
	return b.String()
}

func printBody(b *strings.Builder, body []Stmt, depth int) {
	for _, s := range body {
		printStmt(b, s, depth)
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	prefix := strings.Repeat("  ", depth)
	if l := s.StmtLabel(); l != 0 {
		prefix = strconv.Itoa(l) + " " + prefix
	}
	switch st := s.(type) {
	case *DoStmt:
		if st.IVDep {
			b.WriteString("CDIR$ IVDEP\n")
		}
		fmt.Fprintf(b, "%sDO %s = %s, %s", prefix, st.Var, exprString(st.Lo), exprString(st.Hi))
		if st.Step != nil {
			fmt.Fprintf(b, ", %s", exprString(st.Step))
		}
		b.WriteByte('\n')
		printBody(b, st.Body, depth+1)
		fmt.Fprintf(b, "%sENDDO\n", strings.Repeat("  ", depth))
	case *Assign:
		fmt.Fprintf(b, "%s%s = %s\n", prefix, refString(st.LHS), exprString(st.RHS))
	case *IfGoto:
		fmt.Fprintf(b, "%sIF (%s .%s. %s) GOTO %d\n",
			prefix, exprString(st.Left), st.Rel, exprString(st.Right), st.Target)
	case *Goto:
		fmt.Fprintf(b, "%sGOTO %d\n", prefix, st.Target)
	case *Continue:
		fmt.Fprintf(b, "%sCONTINUE\n", prefix)
	}
}

func exprString(e Expr) string {
	switch x := e.(type) {
	case Num:
		return numString(x)
	case *Ref:
		return refString(x)
	case Bin:
		return "(" + exprString(x.L) + " " + string(x.Op) + " " + exprString(x.R) + ")"
	case Neg:
		return "(-" + exprString(x.X) + ")"
	}
	return e.String()
}

func refString(r *Ref) string {
	if len(r.Indices) == 0 {
		return r.Name
	}
	parts := make([]string, len(r.Indices))
	for i, ix := range r.Indices {
		parts[i] = exprString(ix)
	}
	return r.Name + "(" + strings.Join(parts, ",") + ")"
}

// numString formats a literal so the lexer tokenizes it back to the same
// value: integers as plain digits while the int64 conversion is exact,
// reals always with a decimal point (the lexer needs one before any
// exponent), in strconv's shortest-round-trip form.
func numString(n Num) string {
	v := n.Val
	if n.IsInt && v >= math.MinInt64 && v < math.MaxInt64 && v == math.Trunc(v) {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'G', -1, 64)
	if !strings.Contains(s, ".") {
		if i := strings.IndexAny(s, "E"); i >= 0 {
			s = s[:i] + ".0" + s[i:]
		} else {
			s += ".0"
		}
	}
	return s
}
