package ftn

import (
	"testing"
)

func interpret(t *testing.T, src string, prime func(*Env)) *Env {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(p)
	if prime != nil {
		prime(env)
	}
	if err := Interpret(p, env); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestInterpretSimpleLoop(t *testing.T) {
	env := interpret(t, `
PROGRAM P
REAL A(16)
INTEGER I
DO I = 1, 10
  A(I) = 2.0
ENDDO
END
`, nil)
	for i := 0; i < 10; i++ {
		if env.Reals["A"][i] != 2.0 {
			t.Fatalf("A[%d] = %v", i, env.Reals["A"][i])
		}
	}
	if env.Reals["A"][10] != 0 {
		t.Error("A(11) written beyond loop bound")
	}
}

func TestInterpretGotoCascade(t *testing.T) {
	// The LFK2 control structure: GOTO loop around a DO.
	env := interpret(t, `
PROGRAM P
INTEGER II, N, COUNT
II = N
COUNT = 0
100 CONTINUE
II = II / 2
COUNT = COUNT + 1
IF (II .GT. 1) GOTO 100
END
`, func(e *Env) { e.Ints["N"] = 64 })
	if env.Ints["COUNT"] != 6 {
		t.Errorf("COUNT = %d, want 6", env.Ints["COUNT"])
	}
}

func TestInterpretGotoOutOfDo(t *testing.T) {
	// A GOTO inside a DO targeting an outer-level label exits the loop.
	env := interpret(t, `
PROGRAM P
INTEGER I, HIT
DO I = 1, 100
  HIT = I
  IF (I .GE. 3) GOTO 200
ENDDO
200 CONTINUE
END
`, nil)
	if env.Ints["HIT"] != 3 {
		t.Errorf("HIT = %d, want 3 (early exit)", env.Ints["HIT"])
	}
}

func TestInterpretNestedDo(t *testing.T) {
	env := interpret(t, `
PROGRAM P
REAL A(4,4)
INTEGER I, J
DO J = 1, 4
DO I = 1, 4
  A(I,J) = 1.0
ENDDO
ENDDO
END
`, nil)
	for i := 0; i < 16; i++ {
		if env.Reals["A"][i] != 1.0 {
			t.Fatalf("A[%d] = %v", i, env.Reals["A"][i])
		}
	}
}

func TestInterpretDoStep(t *testing.T) {
	env := interpret(t, `
PROGRAM P
REAL A(32)
INTEGER I
DO I = 1, 9, 3
  A(I) = 5.0
ENDDO
END
`, nil)
	for i, want := range map[int]float64{0: 5, 3: 5, 6: 5, 1: 0, 2: 0} {
		if got := env.Reals["A"][i]; got != want {
			t.Errorf("A[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestInterpretErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"PROGRAM P\nINTEGER I\nI = 1/0\nEND", "division by zero"},
		{"PROGRAM P\nREAL A(4)\nINTEGER I\nI = 9\nA(I) = 1.0\nEND", "out of range"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		env := NewEnv(p)
		err = Interpret(p, env)
		if err == nil {
			t.Errorf("%q: expected error", tc.src)
		}
	}
}

func TestInterpretStepLimit(t *testing.T) {
	p := MustParse("PROGRAM P\nINTEGER I\n10 CONTINUE\nI = I + 1\nGOTO 10\nEND")
	env := NewEnv(p)
	if err := Interpret(p, env); err == nil {
		t.Error("infinite GOTO should hit the step limit")
	}
}

func TestCloseEnough(t *testing.T) {
	if !CloseEnough(1.0, 1.0+1e-12) {
		t.Error("tiny differences should pass")
	}
	if CloseEnough(1.0, 1.001) {
		t.Error("large differences should fail")
	}
	if !CloseEnough(0, 0) {
		t.Error("zeros should pass")
	}
}
