package ftn

import "fmt"

// Check runs semantic analysis: declarations resolve, array ranks match,
// index and DO-bound expressions are integer, integer variables are not
// assigned real values, and GOTO targets exist.
func Check(p *Program) error {
	seen := make(map[string]bool)
	for _, d := range p.Decls {
		if seen[d.Name] {
			return fmt.Errorf("ftn: %s declared twice", d.Name)
		}
		seen[d.Name] = true
		if len(d.Dims) > 3 {
			return fmt.Errorf("ftn: %s: at most 3 dimensions supported", d.Name)
		}
	}
	labels := make(map[int]bool)
	var err error
	Walk(p.Body, func(s Stmt) {
		if err != nil {
			return
		}
		if l := s.StmtLabel(); l != 0 {
			if labels[l] {
				err = fmt.Errorf("ftn: duplicate label %d", l)
				return
			}
			labels[l] = true
		}
	})
	if err != nil {
		return err
	}
	if err := checkBody(p, p.Body); err != nil {
		return err
	}
	var gerr error
	Walk(p.Body, func(s Stmt) {
		if gerr != nil {
			return
		}
		var tgt int
		switch st := s.(type) {
		case *Goto:
			tgt = st.Target
		case *IfGoto:
			tgt = st.Target
		default:
			return
		}
		if !labels[tgt] {
			gerr = fmt.Errorf("ftn: GOTO to undefined label %d", tgt)
		}
	})
	return gerr
}

func checkBody(p *Program, body []Stmt) error {
	for _, s := range body {
		switch st := s.(type) {
		case *Assign:
			lk, err := checkRef(p, st.LHS)
			if err != nil {
				return err
			}
			rk, err := TypeOf(p, st.RHS)
			if err != nil {
				return err
			}
			if lk == KindInt && rk == KindReal {
				return fmt.Errorf("ftn: cannot assign REAL to INTEGER %s", st.LHS.Name)
			}
		case *DoStmt:
			d, ok := p.Decl(st.Var)
			if !ok {
				return fmt.Errorf("ftn: undeclared DO variable %s", st.Var)
			}
			if d.Kind != KindInt || d.IsArray() {
				return fmt.Errorf("ftn: DO variable %s must be an INTEGER scalar", st.Var)
			}
			for _, e := range []Expr{st.Lo, st.Hi, st.Step} {
				if e == nil {
					continue
				}
				k, err := TypeOf(p, e)
				if err != nil {
					return err
				}
				if k != KindInt {
					return fmt.Errorf("ftn: DO bounds of %s must be INTEGER", st.Var)
				}
			}
			if err := checkBody(p, st.Body); err != nil {
				return err
			}
		case *IfGoto:
			for _, e := range []Expr{st.Left, st.Right} {
				if _, err := TypeOf(p, e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkRef(p *Program, r *Ref) (BasicKind, error) {
	d, ok := p.Decl(r.Name)
	if !ok {
		return KindReal, fmt.Errorf("ftn: undeclared variable %s", r.Name)
	}
	if len(r.Indices) != len(d.Dims) {
		return d.Kind, fmt.Errorf("ftn: %s has %d dimensions, referenced with %d indices", r.Name, len(d.Dims), len(r.Indices))
	}
	for _, ix := range r.Indices {
		k, err := TypeOf(p, ix)
		if err != nil {
			return d.Kind, err
		}
		if k != KindInt {
			return d.Kind, fmt.Errorf("ftn: index of %s must be INTEGER", r.Name)
		}
	}
	return d.Kind, nil
}

// TypeOf infers the type of an expression: integer arithmetic stays
// integer; any real operand promotes to real (Fortran mixed-mode rules).
func TypeOf(p *Program, e Expr) (BasicKind, error) {
	switch x := e.(type) {
	case Num:
		if x.IsInt {
			return KindInt, nil
		}
		return KindReal, nil
	case *Ref:
		return checkRef(p, x)
	case Neg:
		return TypeOf(p, x.X)
	case Bin:
		lk, err := TypeOf(p, x.L)
		if err != nil {
			return lk, err
		}
		rk, err := TypeOf(p, x.R)
		if err != nil {
			return rk, err
		}
		if lk == KindReal || rk == KindReal {
			return KindReal, nil
		}
		return KindInt, nil
	}
	return KindReal, fmt.Errorf("ftn: unknown expression %T", e)
}
