package ftn

import (
	"fmt"
	"math"
)

// Env holds a program's variables for direct AST interpretation: arrays
// and scalars by name. Interpret is the compiler-independent reference
// semantics used for differential testing of the compile-and-simulate
// pipeline.
type Env struct {
	Reals  map[string][]float64 // arrays and scalars (scalars have len 1)
	Ints   map[string]int64
	params *Program
	steps  int
}

// NewEnv allocates storage for every declaration, zero-initialized.
func NewEnv(p *Program) *Env {
	e := &Env{
		Reals:  make(map[string][]float64),
		Ints:   make(map[string]int64),
		params: p,
	}
	for _, d := range p.Decls {
		if d.Kind == KindReal {
			e.Reals[d.Name] = make([]float64, d.Elems())
		} else {
			e.Ints[d.Name] = 0
		}
	}
	return e
}

// maxInterpSteps bounds runaway GOTO loops.
const maxInterpSteps = 50_000_000

// Interpret executes the program directly over the AST.
func Interpret(p *Program, env *Env) error {
	env.params = p
	_, err := env.exec(p.Body)
	return err
}

// exec runs a statement list. It returns a pending GOTO target (nonzero)
// when a label is not found at this nesting level, for the caller to
// resolve.
func (e *Env) exec(body []Stmt) (pendingGoto int, err error) {
	i := 0
	for i < len(body) {
		if e.steps++; e.steps > maxInterpSteps {
			return 0, fmt.Errorf("ftn: interpreter step limit exceeded")
		}
		s := body[i]
		switch st := s.(type) {
		case *Assign:
			if err := e.assign(st); err != nil {
				return 0, err
			}
		case *Continue:
			// label carrier only
		case *Goto:
			if j, ok := findLabel(body, st.Target); ok {
				i = j
				continue
			}
			return st.Target, nil
		case *IfGoto:
			take, err := e.cond(st)
			if err != nil {
				return 0, err
			}
			if take {
				if j, ok := findLabel(body, st.Target); ok {
					i = j
					continue
				}
				return st.Target, nil
			}
		case *DoStmt:
			pend, err := e.execDo(st)
			if err != nil {
				return 0, err
			}
			if pend != 0 {
				if j, ok := findLabel(body, pend); ok {
					i = j
					continue
				}
				return pend, nil
			}
		default:
			return 0, fmt.Errorf("ftn: cannot interpret %T", s)
		}
		i++
	}
	return 0, nil
}

func findLabel(body []Stmt, target int) (int, bool) {
	for j, s := range body {
		if s.StmtLabel() == target {
			return j, true
		}
	}
	return 0, false
}

func (e *Env) execDo(do *DoStmt) (pendingGoto int, err error) {
	lo, err := e.intExpr(do.Lo)
	if err != nil {
		return 0, err
	}
	hi, err := e.intExpr(do.Hi)
	if err != nil {
		return 0, err
	}
	step := int64(1)
	if do.Step != nil {
		if step, err = e.intExpr(do.Step); err != nil {
			return 0, err
		}
	}
	if step == 0 {
		return 0, fmt.Errorf("ftn: zero DO step")
	}
	for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
		e.Ints[do.Var] = v
		pend, err := e.exec(do.Body)
		if err != nil {
			return 0, err
		}
		if pend != 0 {
			return pend, nil
		}
	}
	return 0, nil
}

func (e *Env) cond(st *IfGoto) (bool, error) {
	lk, err := TypeOf(e.params, st.Left)
	if err != nil {
		return false, err
	}
	rk, err := TypeOf(e.params, st.Right)
	if err != nil {
		return false, err
	}
	var cmp int
	if lk == KindReal || rk == KindReal {
		l, err := e.realExpr(st.Left)
		if err != nil {
			return false, err
		}
		r, err := e.realExpr(st.Right)
		if err != nil {
			return false, err
		}
		switch {
		case l < r:
			cmp = -1
		case l > r:
			cmp = 1
		}
	} else {
		l, err := e.intExpr(st.Left)
		if err != nil {
			return false, err
		}
		r, err := e.intExpr(st.Right)
		if err != nil {
			return false, err
		}
		switch {
		case l < r:
			cmp = -1
		case l > r:
			cmp = 1
		}
	}
	switch st.Rel {
	case "GT":
		return cmp > 0, nil
	case "LT":
		return cmp < 0, nil
	case "GE":
		return cmp >= 0, nil
	case "LE":
		return cmp <= 0, nil
	case "EQ":
		return cmp == 0, nil
	case "NE":
		return cmp != 0, nil
	}
	return false, fmt.Errorf("ftn: unknown relation %s", st.Rel)
}

func (e *Env) assign(a *Assign) error {
	d, ok := e.params.Decl(a.LHS.Name)
	if !ok {
		return fmt.Errorf("ftn: undeclared %s", a.LHS.Name)
	}
	if d.Kind == KindInt {
		v, err := e.intExpr(a.RHS)
		if err != nil {
			return err
		}
		e.Ints[a.LHS.Name] = v
		return nil
	}
	v, err := e.realExpr(a.RHS)
	if err != nil {
		return err
	}
	idx := int64(0)
	if len(a.LHS.Indices) > 0 {
		var err error
		idx, err = e.elemIndex(d, a.LHS.Indices)
		if err != nil {
			return err
		}
	}
	arr := e.Reals[a.LHS.Name]
	if idx < 0 || idx >= int64(len(arr)) {
		return fmt.Errorf("ftn: %s index %d out of range", a.LHS.Name, idx)
	}
	arr[idx] = v
	return nil
}

// elemIndex linearizes 1-based column-major indices.
func (e *Env) elemIndex(d Decl, indices []Expr) (int64, error) {
	var off, mult int64 = 0, 1
	for i, ix := range indices {
		v, err := e.intExpr(ix)
		if err != nil {
			return 0, err
		}
		off += (v - 1) * mult
		mult *= int64(d.Dims[i])
	}
	return off, nil
}

func (e *Env) intExpr(x Expr) (int64, error) {
	switch v := x.(type) {
	case Num:
		if !v.IsInt {
			return 0, fmt.Errorf("ftn: real literal in integer expression")
		}
		return int64(v.Val), nil
	case Neg:
		n, err := e.intExpr(v.X)
		return -n, err
	case *Ref:
		if len(v.Indices) != 0 {
			return 0, fmt.Errorf("ftn: integer arrays unsupported")
		}
		n, ok := e.Ints[v.Name]
		if !ok {
			return 0, fmt.Errorf("ftn: %s is not an integer", v.Name)
		}
		return n, nil
	case Bin:
		l, err := e.intExpr(v.L)
		if err != nil {
			return 0, err
		}
		r, err := e.intExpr(v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, fmt.Errorf("ftn: integer division by zero")
			}
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("ftn: bad integer expression %T", x)
}

func (e *Env) realExpr(x Expr) (float64, error) {
	switch v := x.(type) {
	case Num:
		return v.Val, nil
	case Neg:
		n, err := e.realExpr(v.X)
		return -n, err
	case *Ref:
		d, ok := e.params.Decl(v.Name)
		if !ok {
			return 0, fmt.Errorf("ftn: undeclared %s", v.Name)
		}
		if d.Kind == KindInt {
			return float64(e.Ints[v.Name]), nil
		}
		idx := int64(0)
		if len(v.Indices) > 0 {
			var err error
			idx, err = e.elemIndex(d, v.Indices)
			if err != nil {
				return 0, err
			}
		}
		arr := e.Reals[v.Name]
		if idx < 0 || idx >= int64(len(arr)) {
			return 0, fmt.Errorf("ftn: %s index %d out of range", v.Name, idx)
		}
		return arr[idx], nil
	case Bin:
		l, err := e.realExpr(v.L)
		if err != nil {
			return 0, err
		}
		r, err := e.realExpr(v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("ftn: bad real expression %T", x)
}

// Close enough for differential testing: vectorized reductions reassociate.
func CloseEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}
