// Package ftn implements the Fortran-subset front end used to express the
// Livermore kernels: a lexer, parser, AST and semantic analysis. The
// subset covers what the ten LFKs of the paper's case study need: REAL and
// INTEGER declarations with up to three array dimensions (column-major,
// 1-based), assignments, nested DO/ENDDO loops with optional step, labeled
// CONTINUE, GOTO, IF (...) GOTO, and the CDIR$ IVDEP vectorization
// directive.
package ftn

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIdent
	TokInt
	TokReal
	TokLParen
	TokRParen
	TokComma
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokRel   // .GT. .LT. .GE. .LE. .EQ. .NE.
	TokLabel // leading statement label
	TokIVDep // CDIR$ IVDEP directive
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of file"
	case TokNewline:
		return "end of line"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokReal:
		return "real number"
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokComma:
		return ","
	case TokAssign:
		return "="
	case TokPlus:
		return "+"
	case TokMinus:
		return "-"
	case TokStar:
		return "*"
	case TokSlash:
		return "/"
	case TokRel:
		return "relational operator"
	case TokLabel:
		return "label"
	case TokIVDep:
		return "IVDEP directive"
	}
	return "token?"
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string  // identifier name, relational op name (GT, LE, ...)
	Int  int64   // TokInt, TokLabel
	Real float64 // TokReal
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case TokInt, TokLabel:
		return fmt.Sprintf("%s %d", t.Kind, t.Int)
	case TokReal:
		return fmt.Sprintf("%s %g", t.Kind, t.Real)
	default:
		return t.Kind.String()
	}
}
