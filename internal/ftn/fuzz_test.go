package ftn_test

import (
	"testing"

	"macs/internal/ftn"
	"macs/internal/lfk"
)

// FuzzFtnParse asserts the Fortran-subset front end never panics on
// arbitrary input, and that parse→print→parse is a fixpoint: printing a
// parsed program yields source that parses back to a program printing
// identically.
func FuzzFtnParse(f *testing.F) {
	for _, k := range lfk.All() {
		f.Add(k.Source)
	}
	f.Add("PROGRAM P\nREAL X(8)\nDO K = 1, 8\n  X(K) = X(K) + 1.5E-3\nENDDO\nEND\n")
	f.Add("10 CONTINUE\nGOTO 10\nEND\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := ftn.Parse(src)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		c1 := ftn.Print(p1)
		p2, err := ftn.Parse(c1)
		if err != nil {
			t.Fatalf("printed source does not re-parse: %v\ninput: %q\nprinted: %q", err, src, c1)
		}
		if c2 := ftn.Print(p2); c2 != c1 {
			t.Fatalf("print is not a fixpoint\ninput: %q\nfirst:  %q\nsecond: %q", src, c1, c2)
		}
	})
}

// TestPrintRoundTripLFK pins the property on the ten case-study kernels
// outside the fuzzer, so a plain `go test` exercises it too.
func TestPrintRoundTripLFK(t *testing.T) {
	for _, k := range lfk.All() {
		p1, err := ftn.Parse(k.Source)
		if err != nil {
			t.Fatalf("LFK%d: %v", k.ID, err)
		}
		c1 := ftn.Print(p1)
		p2, err := ftn.Parse(c1)
		if err != nil {
			t.Fatalf("LFK%d: printed source does not re-parse: %v\n%s", k.ID, err, c1)
		}
		if c2 := ftn.Print(p2); c2 != c1 {
			t.Errorf("LFK%d: print not a fixpoint:\n%s\nvs\n%s", k.ID, c1, c2)
		}
	}
}
