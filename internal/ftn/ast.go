package ftn

import (
	"fmt"
	"strings"
)

// BasicKind is a declared type.
type BasicKind int

// The two basic types of the subset.
const (
	KindReal BasicKind = iota
	KindInt
)

func (k BasicKind) String() string {
	if k == KindInt {
		return "INTEGER"
	}
	return "REAL"
}

// Decl declares a scalar (Dims empty) or an array with up to three
// dimensions (column-major, 1-based, as in Fortran).
type Decl struct {
	Name string
	Kind BasicKind
	Dims []int
}

// IsArray reports whether the declaration is an array.
func (d Decl) IsArray() bool { return len(d.Dims) > 0 }

// Elems returns the total element count of an array (1 for scalars).
func (d Decl) Elems() int {
	n := 1
	for _, dim := range d.Dims {
		n *= dim
	}
	return n
}

// Program is a parsed compilation unit.
type Program struct {
	Name  string
	Decls []Decl
	Body  []Stmt
}

// Decl looks up a declaration by name.
func (p *Program) Decl(name string) (Decl, bool) {
	for _, d := range p.Decls {
		if d.Name == name {
			return d, true
		}
	}
	return Decl{}, false
}

// Stmt is a statement. Each may carry a numeric statement label.
type Stmt interface {
	StmtLabel() int
	stmtNode()
}

type stmtBase struct{ Label int }

func (s stmtBase) StmtLabel() int { return s.Label }
func (stmtBase) stmtNode()        {}

// Assign is "lhs = rhs"; the LHS is a scalar or array element reference.
type Assign struct {
	stmtBase
	LHS *Ref
	RHS Expr
}

// DoStmt is "DO var = lo, hi [, step] ... ENDDO". IVDep records a CDIR$
// IVDEP directive immediately preceding the loop.
type DoStmt struct {
	stmtBase
	Var   string
	Lo    Expr
	Hi    Expr
	Step  Expr // nil means 1
	Body  []Stmt
	IVDep bool
}

// IfGoto is "IF (l REL r) GOTO n".
type IfGoto struct {
	stmtBase
	Left   Expr
	Rel    string // GT, LT, GE, LE, EQ, NE
	Right  Expr
	Target int
}

// Goto is "GOTO n".
type Goto struct {
	stmtBase
	Target int
}

// Continue is a labeled (or bare) CONTINUE.
type Continue struct {
	stmtBase
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	String() string
}

// Num is a numeric literal.
type Num struct {
	Val   float64
	IsInt bool
}

func (Num) exprNode() {}
func (n Num) String() string {
	if n.IsInt {
		return fmt.Sprintf("%d", int64(n.Val))
	}
	return fmt.Sprintf("%g", n.Val)
}

// Ref is a variable or array element reference.
type Ref struct {
	Name    string
	Indices []Expr // nil for scalars
}

func (Ref) exprNode() {}
func (r Ref) String() string {
	if len(r.Indices) == 0 {
		return r.Name
	}
	parts := make([]string, len(r.Indices))
	for i, e := range r.Indices {
		parts[i] = e.String()
	}
	return r.Name + "(" + strings.Join(parts, ",") + ")"
}

// Bin is a binary arithmetic expression; Op is one of + - * /.
type Bin struct {
	Op   byte
	L, R Expr
}

func (Bin) exprNode() {}
func (b Bin) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

// Neg is unary minus.
type Neg struct{ X Expr }

func (Neg) exprNode()        {}
func (n Neg) String() string { return "(-" + n.X.String() + ")" }

// Walk visits every statement in a body, recursing into DO bodies.
func Walk(body []Stmt, f func(Stmt)) {
	for _, s := range body {
		f(s)
		if do, ok := s.(*DoStmt); ok {
			Walk(do.Body, f)
		}
	}
}

// WalkExprs visits every expression of a statement (not recursing into
// nested statements).
func WalkExprs(s Stmt, f func(Expr)) {
	switch st := s.(type) {
	case *Assign:
		walkExpr(st.RHS, f)
		for _, ix := range st.LHS.Indices {
			walkExpr(ix, f)
		}
	case *DoStmt:
		walkExpr(st.Lo, f)
		walkExpr(st.Hi, f)
		if st.Step != nil {
			walkExpr(st.Step, f)
		}
	case *IfGoto:
		walkExpr(st.Left, f)
		walkExpr(st.Right, f)
	}
}

func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case Bin:
		walkExpr(x.L, f)
		walkExpr(x.R, f)
	case Neg:
		walkExpr(x.X, f)
	case *Ref:
		for _, ix := range x.Indices {
			walkExpr(ix, f)
		}
	}
}
