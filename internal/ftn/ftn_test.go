package ftn

import (
	"strings"
	"testing"
)

const lfk1Src = `
PROGRAM LFK1
REAL X(2001), Y(2001), ZX(2048)
REAL Q, R, T
INTEGER N, K
DO K = 1, N
  X(K) = Q + Y(K)*(R*ZX(K+10) + T*ZX(K+11))
ENDDO
END
`

func TestParseLFK1(t *testing.T) {
	p, err := Parse(lfk1Src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "LFK1" {
		t.Errorf("program name %q, want LFK1", p.Name)
	}
	if len(p.Decls) != 8 {
		t.Fatalf("decls = %d, want 8", len(p.Decls))
	}
	x, ok := p.Decl("X")
	if !ok || x.Kind != KindReal || len(x.Dims) != 1 || x.Dims[0] != 2001 {
		t.Errorf("decl X = %+v", x)
	}
	if len(p.Body) != 1 {
		t.Fatalf("body has %d stmts, want 1", len(p.Body))
	}
	do, ok := p.Body[0].(*DoStmt)
	if !ok {
		t.Fatalf("body[0] is %T, want DoStmt", p.Body[0])
	}
	if do.Var != "K" || do.Step != nil || do.IVDep {
		t.Errorf("do = %+v", do)
	}
	if len(do.Body) != 1 {
		t.Fatalf("loop body has %d stmts", len(do.Body))
	}
	asg := do.Body[0].(*Assign)
	if asg.LHS.Name != "X" || len(asg.LHS.Indices) != 1 {
		t.Errorf("assign LHS = %+v", asg.LHS)
	}
	want := "(Q + (Y(K) * ((R * ZX((K + 10))) + (T * ZX((K + 11))))))"
	if got := asg.RHS.String(); got != want {
		t.Errorf("RHS = %s, want %s", got, want)
	}
}

func TestParseGotoLoop(t *testing.T) {
	src := `
PROGRAM LFK2
REAL X(2048), V(2048)
INTEGER N, II, IPNT, IPNTP, I, K
II = N
IPNTP = 0
100 CONTINUE
IPNT = IPNTP
IPNTP = IPNTP + II
II = II / 2
I = IPNTP + 1
CDIR$ IVDEP
DO K = IPNT + 2, IPNTP, 2
  I = I + 1
  X(I) = X(K) - V(K)*X(K-1) - V(K+1)*X(K+1)
ENDDO
IF (II .GT. 1) GOTO 100
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var do *DoStmt
	var ifg *IfGoto
	var cont *Continue
	Walk(p.Body, func(s Stmt) {
		switch st := s.(type) {
		case *DoStmt:
			do = st
		case *IfGoto:
			ifg = st
		case *Continue:
			cont = st
		}
	})
	if do == nil || !do.IVDep {
		t.Fatal("DO with IVDEP not found")
	}
	if do.Step == nil {
		t.Fatal("DO step missing")
	}
	if ifg == nil || ifg.Rel != "GT" || ifg.Target != 100 {
		t.Fatalf("IfGoto = %+v", ifg)
	}
	if cont == nil || cont.StmtLabel() != 100 {
		t.Fatalf("labeled CONTINUE = %+v", cont)
	}
}

func TestParseMultiDim(t *testing.T) {
	src := `
PROGRAM P
REAL U(5,101,2), DU(101)
INTEGER KX, KY, N
DO KX = 2, 3
DO KY = 2, N
  DU(KY) = U(KX,KY+1,1) - U(KX,KY-1,1)
ENDDO
ENDDO
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := p.Decl("U")
	if len(u.Dims) != 3 || u.Elems() != 5*101*2 {
		t.Errorf("U dims = %v", u.Dims)
	}
	outer := p.Body[0].(*DoStmt)
	inner := outer.Body[0].(*DoStmt)
	asg := inner.Body[0].(*Assign)
	ref := asg.RHS.(Bin).L.(*Ref)
	if ref.Name != "U" || len(ref.Indices) != 3 {
		t.Errorf("U ref = %+v", ref)
	}
}

func TestRealLiterals(t *testing.T) {
	src := `
PROGRAM P
REAL W(64)
INTEGER I
DO I = 1, 10
  W(I) = 0.0100
ENDDO
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	asg := p.Body[0].(*DoStmt).Body[0].(*Assign)
	n, ok := asg.RHS.(Num)
	if !ok || n.IsInt || n.Val != 0.01 {
		t.Errorf("literal = %+v", asg.RHS)
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := `
C This is a comment
! also a comment
PROGRAM P
REAL A
A = 1.5
END
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared", "PROGRAM P\nREAL A\nA = B\nEND", "undeclared"},
		{"rank", "PROGRAM P\nREAL A(4)\nINTEGER I\nA(1,2) = 0.0\nEND", "dimensions"},
		{"real index", "PROGRAM P\nREAL A(4), R\nA(R) = 0.0\nEND", "INTEGER"},
		{"int assign real", "PROGRAM P\nINTEGER I\nI = 1.5\nEND", "cannot assign"},
		{"do var real", "PROGRAM P\nREAL R\nDO R = 1, 5\nENDDO\nEND", "INTEGER scalar"},
		{"goto missing", "PROGRAM P\nINTEGER I\nGOTO 55\nEND", "undefined label"},
		{"dup label", "PROGRAM P\nINTEGER I\n10 CONTINUE\n10 CONTINUE\nEND", "duplicate label"},
		{"dup decl", "PROGRAM P\nREAL A\nREAL A\nA = 1.0\nEND", "declared twice"},
		{"real do bound", "PROGRAM P\nINTEGER I\nREAL R\nDO I = 1, R\nENDDO\nEND", "must be INTEGER"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"PROGRAM P\nREAL A\nA = \nEND",         // missing RHS
		"PROGRAM P\nREAL A\nA = (1.0\nEND",     // unbalanced paren
		"PROGRAM P\nDO K = 1\nENDDO\nEND",      // missing hi bound
		"PROGRAM P\nIF (1 .GT. 2) 5\nEND",      // IF without GOTO
		"PROGRAM P\nREAL A(0)\nEND",            // zero dimension
		"PROGRAM P\nREAL A\nA = 1 .XX. 2\nEND", // unknown relational
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMixedModePromotion(t *testing.T) {
	p := MustParse("PROGRAM P\nREAL A\nINTEGER I\nA = 2.0*I\nEND")
	asg := p.Body[0].(*Assign)
	k, err := TypeOf(p, asg.RHS)
	if err != nil || k != KindReal {
		t.Errorf("2.0*I type = %v, %v; want REAL", k, err)
	}
	p2 := MustParse("PROGRAM P\nINTEGER I, J\nI = J/2\nEND")
	asg2 := p2.Body[0].(*Assign)
	k2, _ := TypeOf(p2, asg2.RHS)
	if k2 != KindInt {
		t.Errorf("J/2 type = %v, want INTEGER", k2)
	}
}

func TestUnaryMinus(t *testing.T) {
	p := MustParse("PROGRAM P\nREAL A, B\nA = -B + 1.0\nEND")
	asg := p.Body[0].(*Assign)
	b, ok := asg.RHS.(Bin)
	if !ok || b.Op != '+' {
		t.Fatalf("RHS = %s", asg.RHS)
	}
	if _, ok := b.L.(Neg); !ok {
		t.Errorf("left operand = %s, want negation", b.L)
	}
}

func TestWalkVisitsNested(t *testing.T) {
	p := MustParse(`
PROGRAM P
REAL A(10)
INTEGER I, J
DO I = 1, 3
DO J = 1, 3
A(J) = 1.0
ENDDO
ENDDO
END
`)
	var count int
	Walk(p.Body, func(Stmt) { count++ })
	if count != 3 {
		t.Errorf("Walk visited %d statements, want 3", count)
	}
}

func TestExponentLiteral(t *testing.T) {
	p := MustParse("PROGRAM P\nREAL A\nA = 1.5E-3\nEND")
	asg := p.Body[0].(*Assign)
	n := asg.RHS.(Num)
	if n.Val != 0.0015 {
		t.Errorf("1.5E-3 = %v", n.Val)
	}
}

func TestDExponentLiteral(t *testing.T) {
	p := MustParse("PROGRAM P\nREAL A\nA = 1.5D-3\nEND")
	asg := p.Body[0].(*Assign)
	if n := asg.RHS.(Num); n.Val != 0.0015 {
		t.Errorf("1.5D-3 = %v", n.Val)
	}
}

func TestRelationalWithoutSpaces(t *testing.T) {
	p := MustParse("PROGRAM P\nINTEGER I\nI = 5\nIF (I.GT.3) GOTO 10\n10 CONTINUE\nEND")
	var found bool
	Walk(p.Body, func(s Stmt) {
		if ig, ok := s.(*IfGoto); ok && ig.Rel == "GT" {
			found = true
		}
	})
	if !found {
		t.Error("I.GT.3 not parsed as relational")
	}
}

func TestLowercaseSource(t *testing.T) {
	p := MustParse("program p\nreal a(10)\ninteger i\ndo i = 1, 5\n  a(i) = 1.0\nenddo\nend")
	if p.Name != "P" {
		t.Errorf("name = %q (case-insensitive uppercasing)", p.Name)
	}
	if _, ok := p.Decl("A"); !ok {
		t.Error("lowercase decl not uppercased")
	}
}

func TestTrailingDotLiteral(t *testing.T) {
	p := MustParse("PROGRAM P\nREAL A\nA = 2. + 1.5\nEND")
	asg := p.Body[0].(*Assign)
	b := asg.RHS.(Bin)
	if n := b.L.(Num); n.IsInt || n.Val != 2.0 {
		t.Errorf("'2.' parsed as %+v", n)
	}
}

func TestLeadingDotLiteral(t *testing.T) {
	p := MustParse("PROGRAM P\nREAL A\nA = .5\nEND")
	asg := p.Body[0].(*Assign)
	if n := asg.RHS.(Num); n.Val != 0.5 {
		t.Errorf("'.5' = %v", n.Val)
	}
}
