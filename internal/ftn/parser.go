package ftn

import "fmt"

// Parse parses Fortran-subset source into a Program and runs semantic
// analysis.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse for known-good sources; it panics on error. It is a
// test fixture helper only — production code handles Parse's error, and
// macsvet enforces that no non-test file calls it.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("ftn: line %d: expected %s, found %s", t.Line, k, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.pos++
	}
}

func (p *parser) parseProgram() (*Program, error) {
	p.skipNewlines()
	prog := &Program{}
	if t := p.cur(); t.Kind == TokIdent && t.Text == "PROGRAM" {
		p.pos++
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		prog.Name = name.Text
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
	}
	// Declarations.
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind != TokIdent || (t.Text != "REAL" && t.Text != "INTEGER") {
			break
		}
		p.pos++
		kind := KindReal
		if t.Text == "INTEGER" {
			kind = KindInt
		}
		for {
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			d := Decl{Name: name.Text, Kind: kind}
			if p.accept(TokLParen) {
				for {
					dim, err := p.expect(TokInt)
					if err != nil {
						return nil, err
					}
					if dim.Int <= 0 {
						return nil, fmt.Errorf("ftn: line %d: dimension must be positive", dim.Line)
					}
					d.Dims = append(d.Dims, int(dim.Int))
					if !p.accept(TokComma) {
						break
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			prog.Decls = append(prog.Decls, d)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
	}
	// Body until END.
	body, err := p.parseBody("END")
	if err != nil {
		return nil, err
	}
	prog.Body = body
	return prog, nil
}

// parseBody parses statements until the given terminator keyword.
func (p *parser) parseBody(term string) ([]Stmt, error) {
	var body []Stmt
	ivdep := false
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind == TokEOF {
			if term == "" {
				return body, nil
			}
			return nil, fmt.Errorf("ftn: unexpected end of file, expected %s", term)
		}
		if t.Kind == TokIVDep {
			p.pos++
			ivdep = true
			p.skipNewlines()
			continue
		}
		label := 0
		if t.Kind == TokLabel {
			label = int(t.Int)
			p.pos++
			t = p.cur()
		}
		if t.Kind == TokIdent && t.Text == term {
			if label != 0 {
				return nil, fmt.Errorf("ftn: line %d: label on %s not supported", t.Line, term)
			}
			p.pos++
			return body, nil
		}
		st, err := p.parseStmt(label, &ivdep)
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
}

func (p *parser) parseStmt(label int, ivdep *bool) (Stmt, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, fmt.Errorf("ftn: line %d: expected statement, found %s", t.Line, t)
	}
	wantIVDep := *ivdep
	*ivdep = false
	switch t.Text {
	case "DO":
		p.pos++
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var step Expr
		if p.accept(TokComma) {
			step, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		body, err := p.parseBody("ENDDO")
		if err != nil {
			return nil, err
		}
		return &DoStmt{stmtBase: stmtBase{label}, Var: v.Text, Lo: lo, Hi: hi, Step: step, Body: body, IVDep: wantIVDep}, nil
	case "IF":
		p.pos++
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		left, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		rel, err := p.expect(TokRel)
		if err != nil {
			return nil, err
		}
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		kw, err := p.expect(TokIdent)
		if err != nil || kw.Text != "GOTO" {
			return nil, fmt.Errorf("ftn: line %d: IF must be followed by GOTO in this subset", t.Line)
		}
		tgt, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		return &IfGoto{stmtBase: stmtBase{label}, Left: left, Rel: rel.Text, Right: right, Target: int(tgt.Int)}, nil
	case "GOTO":
		p.pos++
		tgt, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		return &Goto{stmtBase: stmtBase{label}, Target: int(tgt.Int)}, nil
	case "CONTINUE":
		p.pos++
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		return &Continue{stmtBase: stmtBase{label}}, nil
	}
	// Assignment.
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &Assign{stmtBase: stmtBase{label}, LHS: lhs, RHS: rhs}, nil
}

func (p *parser) parseRef() (*Ref, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	r := &Ref{Name: name.Text}
	if p.accept(TokLParen) {
		for {
			ix, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Indices = append(r.Indices, ix)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// parseExpr parses + and - (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	neg := false
	if p.accept(TokMinus) {
		neg = true
	} else {
		p.accept(TokPlus)
	}
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if neg {
		left = Neg{left}
	}
	for {
		switch p.cur().Kind {
		case TokPlus:
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = Bin{'+', left, r}
		case TokMinus:
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = Bin{'-', left, r}
		default:
			return left, nil
		}
	}
}

// parseTerm parses * and /.
func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokStar:
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = Bin{'*', left, r}
		case TokSlash:
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = Bin{'/', left, r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		return Num{Val: float64(t.Int), IsInt: true}, nil
	case TokReal:
		p.pos++
		return Num{Val: t.Real}, nil
	case TokIdent:
		return p.parseRef()
	case TokLParen:
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokMinus:
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Neg{x}, nil
	}
	return nil, fmt.Errorf("ftn: line %d: expected expression, found %s", t.Line, t)
}
