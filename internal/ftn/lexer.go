package ftn

import (
	"fmt"
	"strconv"
	"strings"
)

// Lex tokenizes Fortran-subset source. Statements are newline-separated;
// lines starting with C, c or ! are comments; CDIR$ IVDEP becomes a
// TokIVDep token; a leading integer on a line is a statement label.
// Identifiers and keywords are case-insensitive (returned upper-cased).
func Lex(src string) ([]Token, error) {
	var toks []Token
	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if trimmed[0] == '!' || ((trimmed[0] == 'C' || trimmed[0] == 'c') && strings.HasPrefix(strings.ToUpper(trimmed), "CDIR$") == false && len(strings.Fields(trimmed)[0]) == 1) {
			continue
		}
		upper := strings.ToUpper(trimmed)
		if strings.HasPrefix(upper, "CDIR$") {
			if strings.Contains(upper, "IVDEP") {
				toks = append(toks, Token{Kind: TokIVDep, Line: lineno + 1})
				toks = append(toks, Token{Kind: TokNewline, Line: lineno + 1})
			}
			continue
		}
		lineToks, err := lexLine(upper, lineno+1)
		if err != nil {
			return nil, err
		}
		toks = append(toks, lineToks...)
		toks = append(toks, Token{Kind: TokNewline, Line: lineno + 1})
	}
	toks = append(toks, Token{Kind: TokEOF})
	return toks, nil
}

func lexLine(s string, line int) ([]Token, error) {
	var toks []Token
	i := 0
	atStart := true
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
			continue
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			// Relational operators look like .GT. — handled below; here a
			// '.' must start a real literal (.5).
			j := i
			isReal := false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9') {
				j++
			}
			if j < len(s) && s[j] == '.' {
				// Could be "1." or "1.5" or "1.EQ." — a digit or end or
				// non-letter after '.' means a real literal.
				if j+1 >= len(s) || !isLetter(s[j+1]) {
					isReal = true
					j++
					for j < len(s) && s[j] >= '0' && s[j] <= '9' {
						j++
					}
				}
			}
			if j < len(s) && (s[j] == 'E' || s[j] == 'D') && isReal {
				k := j + 1
				if k < len(s) && (s[k] == '+' || s[k] == '-') {
					k++
				}
				if k < len(s) && s[k] >= '0' && s[k] <= '9' {
					for k < len(s) && s[k] >= '0' && s[k] <= '9' {
						k++
					}
					j = k
				}
			}
			text := s[i:j]
			if isReal {
				v, err := strconv.ParseFloat(strings.Replace(text, "D", "E", 1), 64)
				if err != nil {
					return nil, fmt.Errorf("ftn: line %d: bad real literal %q", line, text)
				}
				toks = append(toks, Token{Kind: TokReal, Real: v, Line: line})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("ftn: line %d: bad integer literal %q", line, text)
				}
				kind := TokInt
				if atStart {
					kind = TokLabel
				}
				toks = append(toks, Token{Kind: kind, Int: v, Line: line})
			}
			i = j
		case c == '.':
			// Relational operator .XX.
			j := strings.IndexByte(s[i+1:], '.')
			if j < 0 {
				return nil, fmt.Errorf("ftn: line %d: unterminated relational operator", line)
			}
			name := s[i+1 : i+1+j]
			switch name {
			case "GT", "LT", "GE", "LE", "EQ", "NE":
				toks = append(toks, Token{Kind: TokRel, Text: name, Line: line})
			default:
				return nil, fmt.Errorf("ftn: line %d: unknown operator .%s.", line, name)
			}
			i += j + 2
		case isLetter(c):
			j := i
			for j < len(s) && (isLetter(s[j]) || s[j] >= '0' && s[j] <= '9' || s[j] == '_') {
				j++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: s[i:j], Line: line})
			i = j
		case c == '(':
			toks = append(toks, Token{Kind: TokLParen, Line: line})
			i++
		case c == ')':
			toks = append(toks, Token{Kind: TokRParen, Line: line})
			i++
		case c == ',':
			toks = append(toks, Token{Kind: TokComma, Line: line})
			i++
		case c == '=':
			toks = append(toks, Token{Kind: TokAssign, Line: line})
			i++
		case c == '+':
			toks = append(toks, Token{Kind: TokPlus, Line: line})
			i++
		case c == '-':
			toks = append(toks, Token{Kind: TokMinus, Line: line})
			i++
		case c == '*':
			toks = append(toks, Token{Kind: TokStar, Line: line})
			i++
		case c == '/':
			toks = append(toks, Token{Kind: TokSlash, Line: line})
			i++
		default:
			return nil, fmt.Errorf("ftn: line %d: unexpected character %q", line, c)
		}
		atStart = false
	}
	return toks, nil
}

func isLetter(c byte) bool { return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' }
