package mem

import "macs/internal/isa"

// BankModel tracks the busy state of the interleaved banks for one access
// stream and answers timing queries: given an address and the cycle at
// which the CPU wants to access it, when can the access proceed?
//
// A bank is busy for cfg.BankCycle cycles after each access. During a
// refresh window (every RefreshPeriod cycles, RefreshLen long) the whole
// memory is unavailable.
//
// A BankModel is not safe for concurrent use; the probing methods reuse a
// scratch buffer.
type BankModel struct {
	cfg       Config
	busyUntil []int64
	scratch   []int64 // zero-state probe buffer for StreamStallParts
}

// NewBankModel creates a bank timing model.
func NewBankModel(cfg Config) *BankModel {
	return &BankModel{cfg: cfg, busyUntil: make([]int64, cfg.Banks)}
}

// Config returns the model's configuration.
func (b *BankModel) Config() Config { return b.cfg }

// Reset clears all bank busy state.
func (b *BankModel) Reset() {
	for i := range b.busyUntil {
		b.busyUntil[i] = 0
	}
}

// Access performs one timed access at or after cycle now and returns the
// cycle at which the access actually starts (the bank then stays busy for
// BankCycle cycles).
func (b *BankModel) Access(addr, now int64) int64 {
	bank := b.cfg.BankOf(addr)
	t := now
	if b.busyUntil[bank] > t {
		t = b.busyUntil[bank]
	}
	t = b.cfg.NextFree(t)
	b.busyUntil[bank] = t + int64(b.cfg.BankCycle)
	return t
}

// StreamStall computes the extra cycles (beyond one per element) that a
// vector memory stream of n elements with the given byte stride suffers
// from bank conflicts and refresh, when its first element accesses memory
// at cycle start. It is a pure function of the model configuration; it
// does not disturb the model's bank state.
func (b *BankModel) StreamStall(start int64, base int64, strideBytes int64, n int) int64 {
	bank, refresh := b.StreamStallParts(start, base, strideBytes, n)
	return bank + refresh
}

// StreamStallParts is StreamStall with the stall decomposed by mechanism:
// cycles spent waiting for a busy bank versus cycles spent waiting out
// refresh windows (bankStall + refreshStall == StreamStall). Like
// StreamStall it probes zero bank state rather than disturbing the
// model's. This is the naive reference walk; StallTable is the memoized
// fast path, and the two must agree exactly (see the differential tests).
func (b *BankModel) StreamStallParts(start, base, strideBytes int64, n int) (bankStall, refreshStall int64) {
	if n <= 0 {
		return 0, 0
	}
	if b.scratch == nil {
		b.scratch = make([]int64, b.cfg.Banks)
	} else {
		clear(b.scratch)
	}
	return streamWalk(b.cfg, b.scratch, start, base, strideBytes, n)
}

// Stream performs a timed n-element access stream against the model,
// mutating bank state (unlike StreamStall's probe): element k wants to
// access at start+k plus accumulated stalls. It returns the extra stall
// cycles beyond one access per cycle. Use for co-simulation where
// multiple CPUs share the banks.
func (b *BankModel) Stream(start, base, strideBytes int64, n int) int64 {
	if n <= 0 {
		return 0
	}
	bank, refresh := streamWalk(b.cfg, b.busyUntil, start, base, strideBytes, n)
	return bank + refresh
}

// streamWalk is the one element-level walk behind Stream, StreamStall,
// StreamStallParts and the StallTable miss path: it advances an n-element
// access stream (first element wanting cycle start, each later element one
// cycle after its predecessor completes) against the per-bank busy state
// in busy, which it mutates, and returns the stall split into bank-busy
// and refresh waits.
func streamWalk(cfg Config, busy []int64, start, base, strideBytes int64, n int) (bankStall, refreshStall int64) {
	t := start
	addr := base
	for i := 0; i < n; i++ {
		// Access decomposed: first wait for the bank to go idle, then for
		// the next refresh-free cycle.
		bank := cfg.BankOf(addr)
		bt := t
		if busy[bank] > bt {
			bt = busy[bank]
		}
		at := cfg.NextFree(bt)
		bankStall += bt - t
		refreshStall += at - bt
		busy[bank] = at + int64(cfg.BankCycle)
		t = at + 1 // next element wants to go the following cycle
		addr += strideBytes
	}
	return bankStall, refreshStall
}

// UnitStrideConflictFree reports whether a stream with the given byte
// stride can run at one access per cycle with no bank conflicts: the bank
// revisit interval must be at least the bank cycle time.
func (cfg Config) UnitStrideConflictFree(strideBytes int64) bool {
	if strideBytes == 0 {
		return false
	}
	words := strideBytes / isa.WordBytes
	if words == 0 {
		words = 1
	}
	if words < 0 {
		words = -words
	}
	g := gcd(words, int64(cfg.Banks))
	revisit := int64(cfg.Banks) / g
	return revisit >= int64(cfg.BankCycle)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
