// Package mem implements the Convex C-240 memory subsystem: flat functional
// storage with symbol allocation, a 32-bank interleaved timing model with
// periodic refresh, and a five-port arbiter (four CPUs plus I/O) used for
// the multi-process contention experiments (paper §2, §3.2, §4.2).
package mem

import (
	"encoding/binary"
	"fmt"
	"math"

	"macs/internal/isa"
)

// Config holds the memory system timing parameters. The zero value is not
// useful; use DefaultConfig.
type Config struct {
	Banks          int  // number of interleaved banks
	BankCycle      int  // bank busy time per access, in clock cycles
	RefreshPeriod  int  // cycles between refreshes
	RefreshLen     int  // cycles each refresh lasts
	RefreshEnabled bool // model refresh stalls
}

// DefaultConfig returns the standard C-240 configuration: 32 banks, 8-cycle
// bank cycle, refresh every 400 cycles lasting 8 cycles.
func DefaultConfig() Config {
	return Config{
		Banks:          isa.MemBanks,
		BankCycle:      isa.BankCycle,
		RefreshPeriod:  isa.RefreshPeriod,
		RefreshLen:     isa.RefreshLen,
		RefreshEnabled: true,
	}
}

// Memory is the functional storage shared by all CPUs: a flat byte array
// with bump allocation of named symbols. It carries no timing state.
type Memory struct {
	bytes   []byte
	symbols map[string]int64
	sizes   map[string]int64
	next    int64
	// dirty is the write high-water mark (one past the highest byte ever
	// written), so Reset can rezero only what a run actually touched
	// instead of reallocating the whole image.
	dirty int64
}

// New creates a memory of the given size in bytes.
func New(size int64) *Memory {
	return &Memory{
		bytes:   make([]byte, size),
		symbols: make(map[string]int64),
		sizes:   make(map[string]int64),
		next:    64, // keep address 0 unmapped to catch null dereferences
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int64 { return int64(len(m.bytes)) }

// Reset restores the memory to its freshly-created state — all bytes zero,
// no symbols — without reallocating. Only the written region is rezeroed,
// which is what makes pooled simulator reuse cheap: a reset after a
// kernel run touches kilobytes, not the whole multi-megabyte image.
func (m *Memory) Reset() {
	clear(m.bytes[:m.dirty])
	clear(m.symbols)
	clear(m.sizes)
	m.next = 64
	m.dirty = 0
}

// Alloc reserves size bytes for a named symbol, 8-byte aligned, and returns
// its base address. Allocating an existing name returns the existing base
// (sizes must then match).
func (m *Memory) Alloc(name string, size int64) (int64, error) {
	if size < 0 {
		return 0, errNegativeSize(name)
	}
	if addr, ok := m.symbols[name]; ok {
		if prev := m.sizes[name]; prev != size {
			return 0, errResize(name, size, prev)
		}
		return addr, nil
	}
	addr := (m.next + 7) &^ 7
	// addr > len-size rather than addr+size > len: the latter overflows
	// int64 for huge sizes and would wrap to a false pass.
	if size > int64(len(m.bytes)) || addr > int64(len(m.bytes))-size {
		return 0, fmt.Errorf("mem: out of memory allocating %q (%d bytes)", name, size)
	}
	m.symbols[name] = addr
	m.sizes[name] = size
	m.next = addr + size
	return addr, nil
}

// SymbolAddr resolves a symbol name to its base address.
func (m *Memory) SymbolAddr(name string) (int64, bool) {
	a, ok := m.symbols[name]
	return a, ok
}

func (m *Memory) check(addr int64, n int64) error {
	// addr > len-n rather than addr+n > len: avoids int64 overflow near
	// the top of the address space.
	if addr < 0 || n < 0 || n > int64(len(m.bytes)) || addr > int64(len(m.bytes))-n {
		return fmt.Errorf("mem: access at %d (+%d) out of range [0,%d)", addr, n, len(m.bytes))
	}
	return nil
}

// ReadF64 loads a 64-bit float.
func (m *Memory) ReadF64(addr int64) (float64, error) {
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	bits := binary.LittleEndian.Uint64(m.bytes[addr:])
	return math.Float64frombits(bits), nil
}

// WriteF64 stores a 64-bit float.
func (m *Memory) WriteF64(addr int64, v float64) error {
	if err := m.check(addr, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(m.bytes[addr:], math.Float64bits(v))
	if addr+8 > m.dirty {
		m.dirty = addr + 8
	}
	return nil
}

// ReadI64 loads a 64-bit integer.
func (m *Memory) ReadI64(addr int64) (int64, error) {
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(m.bytes[addr:])), nil
}

// WriteI64 stores a 64-bit integer.
func (m *Memory) WriteI64(addr int64, v int64) error {
	if err := m.check(addr, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(m.bytes[addr:], uint64(v))
	if addr+8 > m.dirty {
		m.dirty = addr + 8
	}
	return nil
}

// BankOf returns the interleaved bank index of an address under cfg:
// consecutive 8-byte words map to consecutive banks.
func (cfg Config) BankOf(addr int64) int {
	w := addr / isa.WordBytes
	b := int(w % int64(cfg.Banks))
	if b < 0 {
		b += cfg.Banks
	}
	return b
}

// InRefresh reports whether the given cycle falls inside a refresh window.
// Negative cycles are treated on the same periodic schedule (the phase is
// normalized into [0, RefreshPeriod)).
func (cfg Config) InRefresh(cycle int64) bool {
	if !cfg.RefreshEnabled || cfg.RefreshPeriod <= 0 {
		return false
	}
	off := cycle % int64(cfg.RefreshPeriod)
	if off < 0 {
		off += int64(cfg.RefreshPeriod)
	}
	return off < int64(cfg.RefreshLen)
}

// NextFree returns the first cycle at or after now that is outside any
// refresh window. Negative cycles follow the same normalized schedule.
func (cfg Config) NextFree(now int64) int64 {
	if !cfg.RefreshEnabled || cfg.RefreshPeriod <= 0 {
		return now
	}
	off := now % int64(cfg.RefreshPeriod)
	if off < 0 {
		off += int64(cfg.RefreshPeriod)
	}
	if off < int64(cfg.RefreshLen) {
		return now + int64(cfg.RefreshLen) - off
	}
	return now
}
