// Package mem implements the Convex C-240 memory subsystem: flat functional
// storage with symbol allocation, a 32-bank interleaved timing model with
// periodic refresh, and a five-port arbiter (four CPUs plus I/O) used for
// the multi-process contention experiments (paper §2, §3.2, §4.2).
package mem

import (
	"encoding/binary"
	"fmt"
	"math"

	"macs/internal/isa"
)

// Config holds the memory system timing parameters. The zero value is not
// useful; use DefaultConfig.
type Config struct {
	Banks          int  // number of interleaved banks
	BankCycle      int  // bank busy time per access, in clock cycles
	RefreshPeriod  int  // cycles between refreshes
	RefreshLen     int  // cycles each refresh lasts
	RefreshEnabled bool // model refresh stalls
}

// DefaultConfig returns the standard C-240 configuration: 32 banks, 8-cycle
// bank cycle, refresh every 400 cycles lasting 8 cycles.
func DefaultConfig() Config {
	return Config{
		Banks:          isa.MemBanks,
		BankCycle:      isa.BankCycle,
		RefreshPeriod:  isa.RefreshPeriod,
		RefreshLen:     isa.RefreshLen,
		RefreshEnabled: true,
	}
}

// Memory is the functional storage shared by all CPUs: a flat byte array
// with bump allocation of named symbols. It carries no timing state.
type Memory struct {
	bytes   []byte
	symbols map[string]int64
	next    int64
}

// New creates a memory of the given size in bytes.
func New(size int64) *Memory {
	return &Memory{
		bytes:   make([]byte, size),
		symbols: make(map[string]int64),
		next:    64, // keep address 0 unmapped to catch null dereferences
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int64 { return int64(len(m.bytes)) }

// Alloc reserves size bytes for a named symbol, 8-byte aligned, and returns
// its base address. Allocating an existing name returns the existing base
// (sizes must then match).
func (m *Memory) Alloc(name string, size int64) (int64, error) {
	if addr, ok := m.symbols[name]; ok {
		return addr, nil
	}
	if size < 0 {
		return 0, fmt.Errorf("mem: negative size for %q", name)
	}
	addr := (m.next + 7) &^ 7
	if addr+size > int64(len(m.bytes)) {
		return 0, fmt.Errorf("mem: out of memory allocating %q (%d bytes)", name, size)
	}
	m.symbols[name] = addr
	m.next = addr + size
	return addr, nil
}

// SymbolAddr resolves a symbol name to its base address.
func (m *Memory) SymbolAddr(name string) (int64, bool) {
	a, ok := m.symbols[name]
	return a, ok
}

func (m *Memory) check(addr int64, n int64) error {
	if addr < 0 || addr+n > int64(len(m.bytes)) {
		return fmt.Errorf("mem: access at %d (+%d) out of range [0,%d)", addr, n, len(m.bytes))
	}
	return nil
}

// ReadF64 loads a 64-bit float.
func (m *Memory) ReadF64(addr int64) (float64, error) {
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	bits := binary.LittleEndian.Uint64(m.bytes[addr:])
	return math.Float64frombits(bits), nil
}

// WriteF64 stores a 64-bit float.
func (m *Memory) WriteF64(addr int64, v float64) error {
	if err := m.check(addr, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(m.bytes[addr:], math.Float64bits(v))
	return nil
}

// ReadI64 loads a 64-bit integer.
func (m *Memory) ReadI64(addr int64) (int64, error) {
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(m.bytes[addr:])), nil
}

// WriteI64 stores a 64-bit integer.
func (m *Memory) WriteI64(addr int64, v int64) error {
	if err := m.check(addr, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(m.bytes[addr:], uint64(v))
	return nil
}

// BankOf returns the interleaved bank index of an address under cfg:
// consecutive 8-byte words map to consecutive banks.
func (cfg Config) BankOf(addr int64) int {
	w := addr / isa.WordBytes
	b := int(w % int64(cfg.Banks))
	if b < 0 {
		b += cfg.Banks
	}
	return b
}

// InRefresh reports whether the given cycle falls inside a refresh window.
func (cfg Config) InRefresh(cycle int64) bool {
	if !cfg.RefreshEnabled || cfg.RefreshPeriod <= 0 {
		return false
	}
	return cycle%int64(cfg.RefreshPeriod) < int64(cfg.RefreshLen)
}

// NextFree returns the first cycle at or after now that is outside any
// refresh window.
func (cfg Config) NextFree(now int64) int64 {
	if !cfg.RefreshEnabled || cfg.RefreshPeriod <= 0 {
		return now
	}
	if off := now % int64(cfg.RefreshPeriod); off < int64(cfg.RefreshLen) {
		return now + int64(cfg.RefreshLen) - off
	}
	return now
}
