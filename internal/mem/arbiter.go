package mem

// This file models the five-port memory arbiter (four CPUs plus I/O) used
// to study multi-process contention (paper §4.2): when all four processors
// run different programs, memory contention typically degrades an access
// stream from one access per 40 ns cycle to one per 56-64 ns; four copies
// of the same executable fall into lockstep and lose only 5-10%.

// Stream describes one port's access pattern for a contention simulation.
type Stream struct {
	Base        int64 // first address
	StrideBytes int64 // address increment per access
	IssueEvery  int   // try one access every IssueEvery cycles (>=1)
	Jitter      bool  // re-randomize phase at strip boundaries (different-program behaviour)
	Strip       int   // accesses per strip before a jitter break (if Jitter)
	seed        uint64
}

// PortStats reports the outcome for one stream.
type PortStats struct {
	Accesses        int
	Cycles          int64
	CyclesPerAccess float64 // average issue-to-issue interval achieved
	StallCycles     int64
}

// SimulateContention runs the given access streams through the banked
// memory for the requested number of accesses per stream and reports each
// stream's achieved access rate. Arbitration is per-bank: an access waits
// while its target bank is busy or the memory is refreshing; ties in the
// same cycle are granted in rotating port priority order.
func SimulateContention(cfg Config, streams []Stream, accessesPerStream int) []PortStats {
	type portState struct {
		Stream
		addr      int64
		nextTry   int64
		remaining int
		inStrip   int
		stats     PortStats
	}
	ports := make([]*portState, len(streams))
	for i, s := range streams {
		if s.IssueEvery < 1 {
			s.IssueEvery = 1
		}
		if s.Strip <= 0 {
			s.Strip = 128
		}
		s.seed = uint64(2*i + 1)
		ports[i] = &portState{Stream: s, addr: s.Base, remaining: accessesPerStream}
	}
	busyUntil := make([]int64, cfg.Banks)
	var cycle int64
	prio := 0
	active := len(ports)
	for active > 0 {
		// Grant at most one access per port per cycle, rotating priority.
		grantedBanks := make(map[int]bool, len(ports))
		for k := 0; k < len(ports); k++ {
			p := ports[(prio+k)%len(ports)]
			if p.remaining <= 0 || p.nextTry > cycle {
				continue
			}
			bank := cfg.BankOf(p.addr)
			if grantedBanks[bank] || busyUntil[bank] > cycle || cfg.InRefresh(cycle) {
				p.stats.StallCycles++
				continue
			}
			grantedBanks[bank] = true
			busyUntil[bank] = cycle + int64(cfg.BankCycle)
			p.addr += p.StrideBytes
			p.remaining--
			p.stats.Accesses++
			p.inStrip++
			p.nextTry = cycle + int64(p.IssueEvery)
			if p.Jitter && p.inStrip >= p.Strip {
				// Different programs: between strips the CPU does scalar
				// work of pseudo-random length, breaking any lockstep.
				p.inStrip = 0
				p.seed = xorshift(p.seed)
				p.nextTry += int64(p.seed % 17)
				p.seed = xorshift(p.seed)
				p.addr = p.Base + int64(p.seed%64)*8
			}
			if p.remaining == 0 {
				p.stats.Cycles = cycle + 1
				active--
			}
		}
		prio++
		cycle++
	}
	out := make([]PortStats, len(ports))
	for i, p := range ports {
		p.stats.CyclesPerAccess = float64(p.stats.Cycles) / float64(max(1, p.stats.Accesses))
		out[i] = p.stats
	}
	return out
}

// ContentionSlowdown compares each of nStreams access streams run alone
// against the same streams run concurrently and returns the average ratio
// of achieved access intervals (>= 1). With jitter false all streams are
// identical unit-stride copies of the same executable, which fall into
// lockstep (paper: 5-10% degradation). With jitter true the streams model
// different programs — different strides and pseudo-random scalar breaks —
// which contend much harder (paper: one access per 56-64 ns vs 40 ns peak).
func ContentionSlowdown(cfg Config, nStreams int, jitter bool, accesses int) float64 {
	streams := make([]Stream, nStreams)
	for i := range streams {
		s := Stream{Base: int64(i) * 8192, StrideBytes: 8, IssueEvery: 1, Strip: 128}
		if jitter {
			// Different programs: a mix of unit and non-unit strides plus
			// strip-boundary phase breaks keeps the streams re-colliding.
			strides := []int64{8, 24, 40, 8, 16, 56}
			s.StrideBytes = strides[i%len(strides)]
			s.Jitter = true
			s.Strip = 32 + 16*(i%3)
		}
		streams[i] = s
	}
	var ratio float64
	together := SimulateContention(cfg, streams, accesses)
	for i, s := range streams {
		solo := SimulateContention(cfg, []Stream{s}, accesses)
		ratio += together[i].CyclesPerAccess / solo[0].CyclesPerAccess
	}
	return ratio / float64(nStreams)
}

func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
