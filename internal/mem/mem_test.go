package mem

import (
	"math"
	"testing"
	"testing/quick"

	"macs/internal/isa"
)

func TestAllocAndSymbols(t *testing.T) {
	m := New(1 << 16)
	a1, err := m.Alloc("x", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a1%8 != 0 || a1 == 0 {
		t.Errorf("Alloc returned unaligned or null address %d", a1)
	}
	a2, err := m.Alloc("y", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a2 < a1+1024 {
		t.Errorf("y (%d) overlaps x (%d..%d)", a2, a1, a1+1024)
	}
	// Re-alloc of the same name returns the same base.
	a3, err := m.Alloc("x", 1024)
	if err != nil || a3 != a1 {
		t.Errorf("re-Alloc(x) = %d,%v, want %d,nil", a3, err, a1)
	}
	if got, ok := m.SymbolAddr("x"); !ok || got != a1 {
		t.Errorf("SymbolAddr(x) = %d,%v", got, ok)
	}
	if _, ok := m.SymbolAddr("zz"); ok {
		t.Error("SymbolAddr(zz) should fail")
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	m := New(256)
	if _, err := m.Alloc("big", 1024); err == nil {
		t.Error("Alloc beyond memory size should fail")
	}
	if _, err := m.Alloc("neg", -1); err == nil {
		t.Error("negative Alloc should fail")
	}
}

func TestAllocSizeMismatch(t *testing.T) {
	m := New(1 << 16)
	if _, err := m.Alloc("x", 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc("x", 2048); err == nil {
		t.Error("re-Alloc with different size should fail")
	}
	if _, err := m.Alloc("x", -1); err == nil {
		t.Error("re-Alloc with negative size should fail")
	}
	if _, err := m.Alloc("x", 1024); err != nil {
		t.Errorf("re-Alloc with matching size should succeed: %v", err)
	}
}

func TestAllocOverflowGuard(t *testing.T) {
	m := New(1 << 12)
	// A size near MaxInt64 must not wrap addr+size past the bound check.
	if _, err := m.Alloc("huge", math.MaxInt64-32); err == nil {
		t.Error("near-MaxInt64 Alloc should fail, not overflow")
	}
}

func TestCheckOverflowGuard(t *testing.T) {
	m := New(1 << 12)
	// addr near MaxInt64 plus the 8-byte access width must not wrap.
	if _, err := m.ReadF64(math.MaxInt64 - 4); err == nil {
		t.Error("near-MaxInt64 read should fail, not overflow")
	}
	if err := m.WriteF64(math.MaxInt64-4, 1); err == nil {
		t.Error("near-MaxInt64 write should fail, not overflow")
	}
}

func TestRefreshNegativeCycles(t *testing.T) {
	cfg := DefaultConfig()
	// Negative cycles follow the same periodic schedule: -400 and -396 are
	// in the window that spans [-400, -392); -390 is not.
	if !cfg.InRefresh(-400) || !cfg.InRefresh(-396) {
		t.Error("cycles -400 and -396 are inside a refresh window")
	}
	if cfg.InRefresh(-390) {
		t.Error("cycle -390 is outside refresh")
	}
	if got := cfg.NextFree(-396); got != -392 {
		t.Errorf("NextFree(-396) = %d, want -392", got)
	}
	if got := cfg.NextFree(-390); got != -390 {
		t.Errorf("NextFree(-390) = %d, want -390", got)
	}
	// NextFree never goes backwards.
	for _, c := range []int64{-801, -400, -399, -8, -1, 0, 7, 8} {
		if got := cfg.NextFree(c); got < c {
			t.Errorf("NextFree(%d) = %d went backwards", c, got)
		}
	}
}

func TestStreamStallPartsSumToStall(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBankModel(cfg)
	cases := []struct {
		start, base, stride int64
		n                   int
	}{
		{0, 0, 8, 128},
		{390, 0, 32 * 8, 64}, // same-bank stream crossing a refresh
		{0, 64, 8 * 8, 128},  // 4-cycle bank revisit
		{1234, 8, 40, 200},   // odd stride
		{0, 0, 8, 0},         // empty stream
	}
	for _, tt := range cases {
		bank, refresh := b.StreamStallParts(tt.start, tt.base, tt.stride, tt.n)
		if bank < 0 || refresh < 0 {
			t.Errorf("StreamStallParts(%+v) negative parts: %d, %d", tt, bank, refresh)
		}
		if sum, want := bank+refresh, b.StreamStall(tt.start, tt.base, tt.stride, tt.n); sum != want {
			t.Errorf("StreamStallParts(%+v) sum = %d, want StreamStall %d", tt, sum, want)
		}
	}
	// With refresh on and a same-bank stride the refresh component is
	// nonzero when the stream crosses a window.
	_, refresh := b.StreamStallParts(390, 0, 32*8, 64)
	if refresh <= 0 {
		t.Error("stream crossing refresh window should attribute refresh stall")
	}
	cfgOff := cfg
	cfgOff.RefreshEnabled = false
	bOff := NewBankModel(cfgOff)
	if _, r := bOff.StreamStallParts(390, 0, 32*8, 64); r != 0 {
		t.Errorf("refresh disabled should attribute 0 refresh stall, got %d", r)
	}
}

func TestReadWriteF64(t *testing.T) {
	m := New(4096)
	addr, _ := m.Alloc("a", 64)
	if err := m.WriteF64(addr+8, 3.25); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadF64(addr + 8)
	if err != nil || v != 3.25 {
		t.Fatalf("ReadF64 = %v,%v, want 3.25", v, err)
	}
	if _, err := m.ReadF64(int64(m.Size())); err == nil {
		t.Error("out-of-range read should fail")
	}
	if err := m.WriteF64(-8, 1); err == nil {
		t.Error("negative-address write should fail")
	}
}

func TestReadWriteI64(t *testing.T) {
	m := New(4096)
	addr, _ := m.Alloc("a", 64)
	if err := m.WriteI64(addr, -42); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadI64(addr)
	if err != nil || v != -42 {
		t.Fatalf("ReadI64 = %v,%v, want -42", v, err)
	}
}

func TestQuickF64RoundTrip(t *testing.T) {
	m := New(1 << 12)
	addr, _ := m.Alloc("a", 8)
	f := func(v float64) bool {
		if err := m.WriteF64(addr, v); err != nil {
			return false
		}
		got, err := m.ReadF64(addr)
		return err == nil && (got == v || (got != got && v != v)) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankInterleaving(t *testing.T) {
	cfg := DefaultConfig()
	// Consecutive words map to consecutive banks.
	for w := 0; w < 64; w++ {
		want := w % cfg.Banks
		if got := cfg.BankOf(int64(w * 8)); got != want {
			t.Errorf("BankOf(word %d) = %d, want %d", w, got, want)
		}
	}
	// Bytes within a word map to the same bank.
	if cfg.BankOf(8) != cfg.BankOf(15) {
		t.Error("bytes of one word must share a bank")
	}
}

func TestRefreshWindows(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.InRefresh(0) || !cfg.InRefresh(7) {
		t.Error("cycles 0..7 are in the first refresh window")
	}
	if cfg.InRefresh(8) || cfg.InRefresh(399) {
		t.Error("cycles 8..399 are outside refresh")
	}
	if !cfg.InRefresh(400) {
		t.Error("cycle 400 starts the next refresh")
	}
	if got := cfg.NextFree(402); got != 408 {
		t.Errorf("NextFree(402) = %d, want 408", got)
	}
	if got := cfg.NextFree(100); got != 100 {
		t.Errorf("NextFree(100) = %d, want 100", got)
	}
	cfg.RefreshEnabled = false
	if cfg.InRefresh(0) {
		t.Error("refresh disabled should never be in refresh")
	}
	if got := cfg.NextFree(3); got != 3 {
		t.Errorf("NextFree with refresh off = %d, want 3", got)
	}
}

func TestBankModelAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	b := NewBankModel(cfg)
	// First access proceeds immediately; a second access to the same bank
	// one cycle later waits for the bank cycle.
	if got := b.Access(0, 10); got != 10 {
		t.Errorf("first access at %d, want 10", got)
	}
	if got := b.Access(0, 11); got != 18 {
		t.Errorf("same-bank access at %d, want 18 (10+8)", got)
	}
	// A different bank is free.
	if got := b.Access(8, 11); got != 11 {
		t.Errorf("other-bank access at %d, want 11", got)
	}
	b.Reset()
	if got := b.Access(0, 0); got != 0 {
		t.Errorf("after Reset access at %d, want 0", got)
	}
}

func TestBankModelRefreshStall(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBankModel(cfg)
	// An access landing inside the refresh window waits for its end.
	if got := b.Access(0, 402); got != 408 {
		t.Errorf("access during refresh at %d, want 408", got)
	}
}

func TestStreamStallUnitStride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	b := NewBankModel(cfg)
	// Unit stride never revisits a bank within its busy time: no stalls.
	if got := b.StreamStall(0, 0, 8, 128); got != 0 {
		t.Errorf("unit-stride stall = %d, want 0", got)
	}
	// Stride 2 and 4 words are still conflict-free on 32 banks.
	if got := b.StreamStall(0, 0, 16, 128); got != 0 {
		t.Errorf("stride-2 stall = %d, want 0", got)
	}
	if got := b.StreamStall(0, 0, 32, 128); got != 0 {
		t.Errorf("stride-4 stall = %d, want 0", got)
	}
}

func TestStreamStallBankConflicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	b := NewBankModel(cfg)
	// Stride 32 words hits the same bank every access: each access after
	// the first stalls BankCycle-1 cycles.
	n := 16
	got := b.StreamStall(0, 0, 32*8, n)
	want := int64((n - 1) * (cfg.BankCycle - 1))
	if got != want {
		t.Errorf("same-bank stream stall = %d, want %d", got, want)
	}
	// Stride 8 words revisits each bank every 4 cycles: 4 stall cycles each.
	got = b.StreamStall(0, 0, 8*8, 8)
	if got <= 0 {
		t.Errorf("stride-8-words stream should stall, got %d", got)
	}
}

func TestUnitStrideConflictFree(t *testing.T) {
	cfg := DefaultConfig()
	tests := []struct {
		strideBytes int64
		want        bool
	}{
		{8, true},    // unit
		{16, true},   // 2 words
		{32, true},   // 4 words: revisit every 8 >= 8
		{40, true},   // 5 words, odd: full cycle
		{64, false},  // 8 words: revisit every 4 < 8
		{256, false}, // 32 words: same bank
		{0, false},
	}
	for _, tt := range tests {
		if got := cfg.UnitStrideConflictFree(tt.strideBytes); got != tt.want {
			t.Errorf("UnitStrideConflictFree(%d) = %v, want %v", tt.strideBytes, got, tt.want)
		}
	}
}

func TestStreamStallDoesNotDisturbState(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBankModel(cfg)
	b.Access(0, 20)
	before := b.busyUntil[0]
	b.StreamStall(0, 0, 8, 64)
	if b.busyUntil[0] != before {
		t.Error("StreamStall mutated bank state")
	}
}

func TestSimulateContentionSinglePort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	stats := SimulateContention(cfg, []Stream{{Base: 0, StrideBytes: 8, IssueEvery: 1}}, 1000)
	if stats[0].Accesses != 1000 {
		t.Fatalf("accesses = %d, want 1000", stats[0].Accesses)
	}
	if stats[0].CyclesPerAccess > 1.01 {
		t.Errorf("single unit-stride stream cycles/access = %v, want ~1.0", stats[0].CyclesPerAccess)
	}
}

func TestSimulateContentionLockstep(t *testing.T) {
	// Four identical phase-shifted streams (same executable) fall into
	// lockstep: degradation stays mild (paper: 5-10%).
	cfg := DefaultConfig()
	slow := ContentionSlowdown(cfg, 4, false, 4000)
	if slow < 1.0 || slow > 1.25 {
		t.Errorf("lockstep slowdown = %v, want within [1.0, 1.25]", slow)
	}
}

func TestSimulateContentionDifferentPrograms(t *testing.T) {
	// Four different programs (jittered strips) contend harder: the paper
	// reports one access per 56-64 ns vs the 40 ns peak (1.4x-1.6x).
	cfg := DefaultConfig()
	slow := ContentionSlowdown(cfg, 4, true, 4000)
	if slow < 1.15 || slow > 1.8 {
		t.Errorf("different-program slowdown = %v, want within [1.15, 1.8]", slow)
	}
}

func TestContentionMoreStreamsIsSlower(t *testing.T) {
	cfg := DefaultConfig()
	s2 := ContentionSlowdown(cfg, 2, true, 2000)
	s4 := ContentionSlowdown(cfg, 4, true, 2000)
	if s4 < s2 {
		t.Errorf("4-stream slowdown (%v) should be >= 2-stream (%v)", s4, s2)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Banks != 32 || cfg.BankCycle != 8 || cfg.RefreshPeriod != 400 || cfg.RefreshLen != 8 {
		t.Errorf("DefaultConfig = %+v, want 32 banks, 8-cycle, 400/8 refresh", cfg)
	}
	if isa.RefreshFactor != 1.02 {
		t.Errorf("RefreshFactor = %v, want 1.02", isa.RefreshFactor)
	}
}
