package mem

import "macs/internal/isa"

// StallTable is the memoized fast path for vector-stream stall queries.
// The element-level walk behind StreamStallParts is a pure function of the
// model configuration and four stream parameters, and on the C-240 the
// bank pattern is periodic: with word-aligned base and stride, element i
// hits bank (base/8 + i*stride/8) mod Banks, so the walk's outcome depends
// only on the start cycle's phase within the refresh period, the starting
// bank, the word stride modulo the bank count, and the element count. The
// table caches the walk keyed by exactly that tuple, with a closed-form
// path for conflict-free strides that skips the walk entirely.
//
// A StallTable answers identically to BankModel.StreamStallParts on every
// input (enforced by differential tests); it exists only to make repeated
// queries cheap. It is not safe for concurrent use — each simulated CPU
// owns one.
type StallTable struct {
	cfg     Config
	memo    map[streamKey]stallParts
	scratch []int64

	hits, misses, closed int64
}

// streamKey identifies one equivalence class of stream-stall queries.
type streamKey struct {
	phase   int32 // start cycle modulo the refresh period (0 when refresh is off)
	baseW   int16 // starting bank: (base/WordBytes) mod Banks
	strideW int16 // word stride mod Banks, normalized to [0, Banks)
	n       int32
}

type stallParts struct{ bank, refresh int64 }

// maxMemoEntries bounds the table; beyond it new classes are computed but
// not retained (the working set of real programs is far smaller).
const maxMemoEntries = 1 << 16

// NewStallTable creates an empty table for one memory configuration.
func NewStallTable(cfg Config) *StallTable {
	return &StallTable{
		cfg:     cfg,
		memo:    make(map[streamKey]stallParts),
		scratch: make([]int64, cfg.Banks),
	}
}

// Config returns the table's memory configuration.
func (t *StallTable) Config() Config { return t.cfg }

// Stats reports cache behaviour: memoized walks served from the table,
// walks computed fresh, and queries answered by the closed form.
func (t *StallTable) Stats() (hits, misses, closedForm int64) {
	return t.hits, t.misses, t.closed
}

// StreamStall is StreamStallParts summed over both mechanisms.
func (t *StallTable) StreamStall(start, base, strideBytes int64, n int) int64 {
	bank, refresh := t.StreamStallParts(start, base, strideBytes, n)
	return bank + refresh
}

// StreamStallParts answers exactly as BankModel.StreamStallParts — the
// stall of an n-element stream decomposed into bank-busy and refresh
// cycles — but through the memo table (or the conflict-free closed form)
// instead of a fresh element walk per query.
func (t *StallTable) StreamStallParts(start, base, strideBytes int64, n int) (bankStall, refreshStall int64) {
	if n <= 0 {
		return 0, 0
	}
	cfg := t.cfg
	// Zero-initialized bank state means "idle since cycle 0", so a stream
	// starting at a negative cycle sees every bank as busy until 0 — the
	// phase-class argument (and the conflict-free closed form) only hold
	// for non-negative starts. Word alignment is required for the bank
	// pattern to be periodic in the element index.
	aligned := start >= 0 && base%isa.WordBytes == 0 && strideBytes%isa.WordBytes == 0
	refreshOn := cfg.RefreshEnabled && cfg.RefreshPeriod > 0
	// Closed form: a conflict-free stride never waits on a busy bank, so
	// only refresh windows can stall it, and those are computable window by
	// window instead of element by element. Requires a well-formed refresh
	// schedule (windows shorter than the period) so the walk's
	// one-element-per-free-cycle progression holds.
	if aligned && cfg.UnitStrideConflictFree(strideBytes) &&
		(!refreshOn || cfg.RefreshLen < cfg.RefreshPeriod) {
		t.closed++
		return 0, refreshOnlyStall(cfg, start, n)
	}
	if aligned && n <= 1<<30 {
		key := streamKey{
			baseW:   int16(modI64(base/isa.WordBytes, int64(cfg.Banks))),
			strideW: int16(modI64(strideBytes/isa.WordBytes, int64(cfg.Banks))),
			n:       int32(n),
		}
		if refreshOn {
			key.phase = int32(modI64(start, int64(cfg.RefreshPeriod)))
		}
		if p, ok := t.memo[key]; ok {
			t.hits++
			return p.bank, p.refresh
		}
		t.misses++
		bank, refresh := t.walk(start, base, strideBytes, n)
		if len(t.memo) < maxMemoEntries {
			t.memo[key] = stallParts{bank, refresh}
		}
		return bank, refresh
	}
	// Unaligned accesses fall outside the periodic-pattern argument
	// (integer division by the word size no longer distributes over the
	// element index); answer them with the plain walk.
	return t.walk(start, base, strideBytes, n)
}

func (t *StallTable) walk(start, base, strideBytes int64, n int) (bankStall, refreshStall int64) {
	clear(t.scratch)
	return streamWalk(t.cfg, t.scratch, start, base, strideBytes, n)
}

// refreshOnlyStall is the closed form for streams that never wait on a
// busy bank: accesses proceed one per cycle except that an access landing
// inside a refresh window waits out its remainder. It walks refresh
// windows (O(n/RefreshPeriod)) rather than elements.
func refreshOnlyStall(cfg Config, start int64, n int) int64 {
	if !cfg.RefreshEnabled || cfg.RefreshPeriod <= 0 {
		return 0
	}
	period, length := int64(cfg.RefreshPeriod), int64(cfg.RefreshLen)
	t := start
	remaining := int64(n)
	var stall int64
	for remaining > 0 {
		off := modI64(t, period)
		if off < length {
			// One access waits out the window's remainder...
			stall += length - off
			t += length - off
			off = length
		}
		// ...then accesses stream one per cycle until the next window.
		free := period - off
		if free >= remaining {
			break
		}
		remaining -= free
		t += free
	}
	return stall
}

// modI64 is the non-negative remainder of v modulo m (m > 0).
func modI64(v, m int64) int64 {
	r := v % m
	if r < 0 {
		r += m
	}
	return r
}
