package mem

import (
	"testing"
	"testing/quick"
)

func noRefresh() Config {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	return cfg
}

func TestSharedBanksBasicAccess(t *testing.T) {
	b := NewSharedBanks(noRefresh())
	if got := b.Access(0, 10); got != 10 {
		t.Errorf("first access at %d, want 10", got)
	}
	// Same bank, overlapping: pushed past the busy span.
	if got := b.Access(0, 11); got != 18 {
		t.Errorf("conflicting access at %d, want 18", got)
	}
	// Different bank: free.
	if got := b.Access(8, 11); got != 11 {
		t.Errorf("other bank at %d, want 11", got)
	}
}

func TestSharedBanksGapReuse(t *testing.T) {
	b := NewSharedBanks(noRefresh())
	// Reserve [100,108) and [200,208); a later request at 110 fits the gap.
	b.Access(0, 100)
	b.Access(0, 200)
	if got := b.Access(0, 110); got != 110 {
		t.Errorf("gap access at %d, want 110 (gap reuse)", got)
	}
	// A request needing more room than the remaining gap goes after 208.
	if got := b.Access(0, 195); got != 208 {
		t.Errorf("tight access at %d, want 208", got)
	}
}

func TestSharedBanksRefresh(t *testing.T) {
	b := NewSharedBanks(DefaultConfig())
	if got := b.Access(0, 402); got != 408 {
		t.Errorf("access during refresh at %d, want 408", got)
	}
}

func TestSharedBanksStreamUnitStride(t *testing.T) {
	b := NewSharedBanks(noRefresh())
	if stall := b.Stream(0, 0, 8, 128); stall != 0 {
		t.Errorf("unit-stride stream stall = %d, want 0", stall)
	}
	// A second identical stream shifted by 1: rides one bank-cycle behind.
	stall := b.Stream(1, 0, 8, 128)
	if stall == 0 || stall > 16 {
		t.Errorf("trailing stream stall = %d, want small positive", stall)
	}
}

func TestSharedBanksDisjointStreamsNoStall(t *testing.T) {
	b := NewSharedBanks(noRefresh())
	// Streams at disjoint times never interfere regardless of walk order.
	if stall := b.Stream(1000, 0, 8, 128); stall != 0 {
		t.Errorf("first stream stall %d", stall)
	}
	if stall := b.Stream(0, 0, 8, 128); stall != 0 {
		t.Errorf("earlier-time stream stall = %d, want 0 (gap reuse)", stall)
	}
}

func TestSharedBanksSameBankStream(t *testing.T) {
	b := NewSharedBanks(noRefresh())
	// Stride 32 words: every element the same bank -> 7 stall cycles each
	// after the first.
	stall := b.Stream(0, 0, 256, 16)
	want := int64(15 * 7)
	if stall != want {
		t.Errorf("same-bank stream stall = %d, want %d", stall, want)
	}
}

// TestSharedBanksInvariants: spans stay sorted, non-overlapping, and
// merged under random access sequences.
func TestSharedBanksInvariants(t *testing.T) {
	f := func(seeds []uint32) bool {
		b := NewSharedBanks(noRefresh())
		for _, s := range seeds {
			addr := int64(s%512) * 8
			now := int64(s % 4096)
			b.Access(addr, now)
		}
		for bank, spans := range b.banks {
			for i := range spans {
				if spans[i].e <= spans[i].s {
					t.Logf("bank %d: empty span %v", bank, spans[i])
					return false
				}
				if i > 0 && spans[i-1].e >= spans[i].s {
					t.Logf("bank %d: overlap/unmerged %v %v", bank, spans[i-1], spans[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSharedBanksNeverDoubleBooks: every access gets a slot that was free
// at reservation time; two consecutive same-bank accesses never start
// within a bank cycle of each other.
func TestSharedBanksNeverDoubleBooks(t *testing.T) {
	f := func(seeds []uint32) bool {
		b := NewSharedBanks(noRefresh())
		starts := make(map[int][]int64)
		for _, s := range seeds {
			addr := int64(s%64) * 8
			bank := b.cfg.BankOf(addr)
			at := b.Access(addr, int64(s%1024))
			starts[bank] = append(starts[bank], at)
		}
		for _, ts := range starts {
			seen := make(map[int64]bool)
			for _, at := range ts {
				for d := int64(0); d < int64(b.cfg.BankCycle); d++ {
					if seen[at+d] {
						return false
					}
				}
				seen[at] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
