package mem

import "fmt"

// Layout assigns symbol base addresses using exactly the same address
// arithmetic as Memory.Alloc — bump allocation from address 64, 8-byte
// aligned — without allocating a byte image. The analytical fast tier
// uses it to predict the addresses the loader will hand out, so its
// bank-phase math agrees with the simulator's by construction: both sides
// share this one definition of where symbols land.
type Layout struct {
	symbols map[string]int64
	sizes   map[string]int64
	next    int64
}

// NewLayout returns an empty layout with the loader's base address.
func NewLayout() *Layout {
	return &Layout{
		symbols: make(map[string]int64),
		sizes:   make(map[string]int64),
		next:    layoutBase,
	}
}

// layoutBase is the first allocatable address; Memory.New keeps address 0
// unmapped to catch null dereferences and Layout must agree.
const layoutBase = 64

// Place assigns a base address to a named symbol, mirroring Memory.Alloc:
// placing an existing name returns its existing base (sizes must match).
func (l *Layout) Place(name string, size int64) (int64, error) {
	if size < 0 {
		return 0, errNegativeSize(name)
	}
	if addr, ok := l.symbols[name]; ok {
		if prev := l.sizes[name]; prev != size {
			return 0, errResize(name, size, prev)
		}
		return addr, nil
	}
	addr := (l.next + 7) &^ 7
	l.symbols[name] = addr
	l.sizes[name] = size
	l.next = addr + size
	return addr, nil
}

// Addr resolves a placed symbol to its base address.
func (l *Layout) Addr(name string) (int64, bool) {
	a, ok := l.symbols[name]
	return a, ok
}

// Reset forgets every placement, reusing the maps.
func (l *Layout) Reset() {
	clear(l.symbols)
	clear(l.sizes)
	l.next = layoutBase
}

func errNegativeSize(name string) error {
	return fmt.Errorf("mem: negative size for %q", name)
}

func errResize(name string, size, prev int64) error {
	return fmt.Errorf("mem: symbol %q re-allocated with size %d (was %d)", name, size, prev)
}
