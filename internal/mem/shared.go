package mem

import "sort"

// SharedBanks is the bank timing model used for multi-CPU co-simulation.
// Unlike BankModel's single next-free time per bank, it tracks busy
// *intervals*, so a stream reserved later in walk order can still use
// earlier gaps — without this, whole-stream reservations from different
// CPUs would serialize even when their actual time windows never overlap.
type SharedBanks struct {
	cfg   Config
	banks [][]span
}

// span is one busy interval [s, e).
type span struct{ s, e int64 }

// NewSharedBanks creates the interval-tracking model.
func NewSharedBanks(cfg Config) *SharedBanks {
	return &SharedBanks{cfg: cfg, banks: make([][]span, cfg.Banks)}
}

// Config returns the model configuration.
func (b *SharedBanks) Config() Config { return b.cfg }

// Access reserves the earliest bank-busy slot of length BankCycle
// starting at or after now, honoring refresh windows, and returns its
// start time.
func (b *SharedBanks) Access(addr, now int64) int64 {
	bank := b.cfg.BankOf(addr)
	spans := b.banks[bank]
	bc := int64(b.cfg.BankCycle)

	place := b.cfg.NextFree(now)
	// Consider spans that end after the candidate; earlier ones cannot
	// overlap [place, place+bc).
	i := sort.Search(len(spans), func(k int) bool { return spans[k].e > place })
	for i < len(spans) && place+bc > spans[i].s {
		place = b.cfg.NextFree(spans[i].e)
		i++
	}
	b.insert(bank, span{place, place + bc})
	return place
}

// insert merges a new busy span into the bank's sorted interval list.
func (b *SharedBanks) insert(bank int, sp span) {
	spans := b.banks[bank]
	i := sort.Search(len(spans), func(k int) bool { return spans[k].s >= sp.s })
	// Merge with predecessor when touching.
	if i > 0 && spans[i-1].e >= sp.s {
		i--
		sp.s = spans[i].s
		sp.e = maxI64(sp.e, spans[i].e)
	}
	// Absorb successors the span now covers or touches.
	j := i
	for j < len(spans) && spans[j].s <= sp.e {
		sp.e = maxI64(sp.e, spans[j].e)
		j++
	}
	tail := append([]span(nil), spans[j:]...) // copy before clobbering
	out := append(spans[:i], sp)
	b.banks[bank] = append(out, tail...)
}

// Stream reserves an n-element access stream starting at or after start
// and returns the stall cycles beyond one access per cycle.
func (b *SharedBanks) Stream(start, base, strideBytes int64, n int) int64 {
	if n <= 0 {
		return 0
	}
	t := start
	var stall int64
	addr := base
	for i := 0; i < n; i++ {
		at := b.Access(addr, t)
		stall += at - t
		t = at + 1
		addr += strideBytes
	}
	return stall
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
