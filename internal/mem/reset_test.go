package mem

import "testing"

// TestMemoryReset verifies Reset restores a freshly-created state: old
// symbols are gone, written bytes are rezeroed (via the dirty high-water
// mark), and allocation starts over at the base address.
func TestMemoryReset(t *testing.T) {
	m := New(1 << 16)
	a1, err := m.Alloc("x", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteF64(a1+64, 3.25); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteI64(a1, -7); err != nil {
		t.Fatal(err)
	}

	m.Reset()

	if _, ok := m.SymbolAddr("x"); ok {
		t.Fatal("symbol survived Reset")
	}
	a2, err := m.Alloc("y", 64)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatalf("allocation after Reset starts at %d, want %d", a2, a1)
	}
	// Re-allocating a previously used name with a different size must work.
	if _, err := m.Alloc("x", 256); err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < 128; off += 8 {
		v, err := m.ReadF64(a1 + off)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("byte region not rezeroed at offset %d: %v", off, v)
		}
	}
}
