package mem

import (
	"math/rand"
	"testing"
)

// TestStallTableMatchesNaive is the differential gate of the memoized fast
// path: on a sweep of strides, phases, bases and lengths — including
// unaligned and negative ones — StallTable must answer bit-identically to
// the naive element walk, both on a cold table and on the memoized second
// query.
func TestStallTableMatchesNaive(t *testing.T) {
	configs := []Config{
		DefaultConfig(),
		{Banks: 32, BankCycle: 8, RefreshPeriod: 400, RefreshLen: 8, RefreshEnabled: false},
		{Banks: 16, BankCycle: 4, RefreshPeriod: 100, RefreshLen: 3, RefreshEnabled: true},
		{Banks: 8, BankCycle: 11, RefreshPeriod: 37, RefreshLen: 5, RefreshEnabled: true},
		{Banks: 32, BankCycle: 8, RefreshPeriod: 8, RefreshLen: 8, RefreshEnabled: true}, // degenerate: refresh fills the period
	}
	strides := []int64{0, 8, -8, 16, 64, 96, 256, 264, 2048, 4, 12, -20, 1}
	starts := []int64{0, 1, 7, 8, 399, 400, 401, 1234567, -5, -400}
	bases := []int64{0, 8, 64, 120, 2048, 4, 9, -16}
	lengths := []int{0, 1, 2, 31, 32, 64, 127, 128}

	for ci, cfg := range configs {
		naive := NewBankModel(cfg)
		fast := NewStallTable(cfg)
		for _, stride := range strides {
			for _, start := range starts {
				for _, base := range bases {
					for _, n := range lengths {
						wb, wr := naive.StreamStallParts(start, base, stride, n)
						for pass := 0; pass < 2; pass++ { // cold then memoized
							gb, gr := fast.StreamStallParts(start, base, stride, n)
							if gb != wb || gr != wr {
								t.Fatalf("cfg %d stride=%d start=%d base=%d n=%d pass=%d: fast=(%d,%d) naive=(%d,%d)",
									ci, stride, start, base, n, pass, gb, gr, wb, wr)
							}
						}
					}
				}
			}
		}
	}
}

// TestStallTableRandomized fuzzes the differential property with random
// parameters, biased toward word-aligned streams (the memoized classes).
func TestStallTableRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	naive := NewBankModel(cfg)
	fast := NewStallTable(cfg)
	for i := 0; i < 5000; i++ {
		start := rng.Int63n(10_000) - 500
		base := rng.Int63n(1 << 20)
		stride := rng.Int63n(64) - 16
		if i%4 != 0 { // mostly aligned
			base &^= 7
			stride *= 8
		}
		n := rng.Intn(130)
		if i%2 == 1 {
			// Draw from a small key space so memoized classes repeat.
			start = int64(rng.Intn(3))
			base = int64(rng.Intn(3) * 8)
			stride = int64((rng.Intn(3) + 1) * 64) // bank-conflicting strides
			n = 96 + rng.Intn(2)
		}
		wb, wr := naive.StreamStallParts(start, base, stride, n)
		gb, gr := fast.StreamStallParts(start, base, stride, n)
		if gb != wb || gr != wr {
			t.Fatalf("start=%d base=%d stride=%d n=%d: fast=(%d,%d) naive=(%d,%d)",
				start, base, stride, n, gb, gr, wb, wr)
		}
	}
	hits, misses, closed := fast.Stats()
	if hits == 0 || misses == 0 || closed == 0 {
		t.Fatalf("sweep did not exercise all paths: hits=%d misses=%d closed=%d", hits, misses, closed)
	}
}

// TestStreamSharedWalkEquivalence pins the dedup of Stream onto the same
// core walk: a mutating Stream over fresh state equals StreamStall of the
// same parameters.
func TestStreamSharedWalkEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	for _, stride := range []int64{8, 16, 256, 0, 24} {
		for _, start := range []int64{0, 5, 397} {
			fresh := NewBankModel(cfg)
			got := fresh.Stream(start, 64, stride, 128)
			want := NewBankModel(cfg).StreamStall(start, 64, stride, 128)
			if got != want {
				t.Fatalf("stride=%d start=%d: Stream=%d StreamStall=%d", stride, start, got, want)
			}
		}
	}
}

func BenchmarkStreamStallNaive(b *testing.B) {
	b.ReportAllocs()
	m := NewBankModel(DefaultConfig())
	for i := 0; i < b.N; i++ {
		m.StreamStallParts(int64(i%400), 1024, 256, 128)
	}
}

func BenchmarkStreamStallMemoized(b *testing.B) {
	b.ReportAllocs()
	t := NewStallTable(DefaultConfig())
	for i := 0; i < b.N; i++ {
		t.StreamStallParts(int64(i%400), 1024, 256, 128)
	}
}
