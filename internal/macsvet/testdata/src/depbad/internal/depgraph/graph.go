// Package depgraph exercises the depgraph rule: the EdgeKind enum has
// lost its exhaustiveness marker and the CP solver's edgeWeight switch
// deliberately skips EdgeOutput.
package depgraph

// EdgeKind classifies a dependence edge. (The marker is deliberately
// absent here.)
type EdgeKind int

// Kinds.
const (
	EdgeTrue EdgeKind = iota
	EdgeAnti
	EdgeOutput
	NumEdgeKinds
)

// edgeWeight misses EdgeOutput: a new kind defaulting to zero latency.
func edgeWeight(k EdgeKind) int {
	switch k {
	case EdgeTrue:
		return 4
	case EdgeAnti:
		return 0
	}
	return 0
}
