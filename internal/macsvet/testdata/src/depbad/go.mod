module depbad

go 1.22
