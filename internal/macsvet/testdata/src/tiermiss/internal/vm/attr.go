// Package vm is the simulator side of the missing-member fixture.
package vm

// StallCause is the simulator's stall taxonomy.
type StallCause int

// Stalls.
const (
	StallStartup StallCause = iota
	StallBubble
	StallChain
	NumStallCauses
)

var stallNames = [NumStallCauses]string{"startup", "bubble", "chain-wait"}
