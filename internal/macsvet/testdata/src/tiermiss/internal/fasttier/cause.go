// Package fasttier exercises the tiermap rule's missing-member mode:
// the fast tier declares one fewer Cause than vm declares StallCauses.
package fasttier

// Cause is the fast tier's stall taxonomy.
type Cause int

// Causes; StallChain's counterpart is missing entirely.
const (
	CauseStartup Cause = iota
	CauseBubble
	NumCauses
)

var causeNames = [NumCauses]string{"startup", "bubble"}
