module tiermiss

go 1.22
