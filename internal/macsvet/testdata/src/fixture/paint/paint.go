// Package paint switches over an imported marked enum.
package paint

import "fixture/enums"

// Pick misses Green and Blue.
func Pick(c enums.Color) bool {
	switch c {
	case enums.Red:
		return true
	}
	return false
}
