// Package enums exercises the exhaustive rule.
package enums

// Color is a marked enum.
//
// macsvet:exhaustive
type Color int

// Colors, plus a size sentinel the rule must skip.
const (
	Red Color = iota
	Green
	Blue
	numColors
)

// Shade is an unmarked enum; partial switches over it are fine.
type Shade int

// Shades.
const (
	Light Shade = iota
	Dark
)

// Partial misses Blue; the default clause does not excuse it.
func Partial(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	default:
		return "?"
	}
}

// Complete names every member and is clean.
func Complete(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return "?"
}

// Unmarked switches partially over Shade without a marker: clean.
func Unmarked(s Shade) string {
	switch s {
	case Light:
		return "light"
	}
	return "dark"
}
