// Package obs is a parse-only stand-in for the real module's span API,
// giving the spanend fixtures an import target.
package obs

import "context"

// Span is a fixture span.
type Span struct{}

// End closes the span.
func (*Span) End() {}

// Start opens a span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
