// Package fasttier exercises the tiermap rule: its taxonomy must mirror
// the vm fixture's member for member — and deliberately does not.
package fasttier

// Cause is the fast tier's stall taxonomy.
type Cause int

// Causes; CauseWrong breaks the bijection (vm's third member is
// StallChain).
const (
	CauseStartup Cause = iota
	CauseBubble
	CauseWrong
	NumCauses
)

// causeNames diverges from stallNames in entry 1.
var causeNames = [NumCauses]string{"startup", "hiccup", "chain-wait"}
