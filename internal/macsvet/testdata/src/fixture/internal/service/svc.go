// Package service is the fixture's request-handling root.
package service

import "fixture/eng"

// Handle drives the engine.
func Handle() { eng.Run(false) }
