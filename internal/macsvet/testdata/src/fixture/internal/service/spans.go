package service

import (
	"context"
	"errors"

	"fixture/internal/obs"
)

// Trace starts two spans the spanend rule must flag: one whose error
// check can return before End, and one discarded outright.
func Trace(ctx context.Context) error {
	_, sp := obs.Start(ctx, "lookup")
	err := step()
	if err != nil {
		return err // leaves with sp open
	}
	sp.End()

	_, _ = obs.Start(ctx, "discarded")
	return nil
}

// Orphan starts a span and forgets it.
func Orphan(ctx context.Context) {
	_, sp := obs.Start(ctx, "orphan")
	_ = sp
}

// Clean is the compliant shape: End in the same block, defer accepted.
func Clean(ctx context.Context) {
	ctx, root := obs.Start(ctx, "root")
	defer root.End()
	_, sp := obs.Start(ctx, "step")
	_ = step()
	sp.End()
}

func step() error { return errors.New("nope") }
