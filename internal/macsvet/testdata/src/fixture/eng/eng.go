// Package eng is imported by the fixture service, so its panics are
// request-reachable.
package eng

import "errors"

// Run contains a naked panic the nopanic rule must flag.
func Run(bad bool) {
	if bad {
		panic("engine exploded")
	}
}

// MustRun is a panicking test helper; its own panic is exempt.
func MustRun() {
	if err := Safe(); err != nil {
		panic(err)
	}
}

// Safe returns its failure.
func Safe() error { return errors.New("nope") }
