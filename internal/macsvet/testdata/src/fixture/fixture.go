// Package fixture is the module root: its Tier enum has more members
// than tierNames names, which the tiermap rule must flag.
package fixture

// Tier selects a serving tier.
type Tier int

// Tiers.
const (
	TierExact Tier = iota
	TierFast
	NumTiers
)

// tierNames is one entry short.
var tierNames = [NumTiers]string{"exact"}
