package caller

import (
	"testing"

	"fixture/eng"
)

// Test files may use Must helpers freely.
func TestMustRun(t *testing.T) {
	defer func() { recover() }()
	eng.MustRun()
	t.Error("unreachable")
}
