// Package caller misuses a Must helper outside tests. It is not
// reachable from the fixture service, so only the musttest rule fires.
package caller

import "fixture/eng"

// Misuse calls a panicking Must helper from production code.
func Misuse() { eng.MustRun() }
