module fpbad

go 1.22
