// Package vm is a fingerprint-rule fixture: a Machine whose Fingerprint
// method forgot two fields — one named, one embedded.
package vm

import "fmt"

type Geometry struct {
	Banks int
}

type Machine struct {
	VLMax       int
	MemSlowdown float64
	Geometry
}

func (m Machine) Fingerprint() string {
	return fmt.Sprintf("vlmax=%d;", m.VLMax)
}
