package macsvet

import (
	"fmt"
	"go/ast"
	"go/token"
)

// checkISATiming enforces the opcode/timing-table invariant of
// internal/isa: every Op constant must appear in the opNames table and in
// exactly one of the Table 1 timings map or the scalarOnly set. The rule
// is a no-op for modules without that package (test fixtures).
func checkISATiming(m *Module) []Finding {
	p := m.Pkgs[m.Path+"/internal/isa"]
	if p == nil {
		return nil
	}
	var ops []string
	var opPos []token.Pos
	tables := map[string]map[string]bool{
		"opNames": nil, "timings": nil, "scalarOnly": nil,
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				cur := ""
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					switch {
					case vs.Type != nil:
						cur = ""
						if id, ok := vs.Type.(*ast.Ident); ok {
							cur = id.Name
						}
					case len(vs.Values) > 0:
						cur = ""
					}
					if cur != "Op" {
						continue
					}
					for _, n := range vs.Names {
						if n.Name == "_" || sentinel(n.Name) {
							continue
						}
						ops = append(ops, n.Name)
						opPos = append(opPos, n.Pos())
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for i, name := range vs.Names {
						if _, want := tables[name.Name]; !want || i >= len(vs.Values) {
							continue
						}
						cl, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						tables[name.Name] = literalKeys(cl)
					}
				}
			}
		}
	}
	var fs []Finding
	for name, keys := range tables {
		if keys == nil {
			return []Finding{{
				Pos:     m.Fset.Position(token.NoPos),
				Rule:    "isatiming",
				Message: fmt.Sprintf("internal/isa: table %s not found as a composite-literal var", name),
			}}
		}
	}
	for i, op := range ops {
		pos := m.Fset.Position(opPos[i])
		if !tables["opNames"][op] {
			fs = append(fs, Finding{Pos: pos, Rule: "isatiming",
				Message: fmt.Sprintf("%s has no opNames entry (String would print op?)", op)})
		}
		inTiming, inScalar := tables["timings"][op], tables["scalarOnly"][op]
		switch {
		case inTiming && inScalar:
			fs = append(fs, Finding{Pos: pos, Rule: "isatiming",
				Message: fmt.Sprintf("%s is in both timings and scalarOnly; pick one", op)})
		case !inTiming && !inScalar:
			fs = append(fs, Finding{Pos: pos, Rule: "isatiming",
				Message: fmt.Sprintf("%s has neither a Table 1 timing nor a scalarOnly declaration", op)})
		}
	}
	return fs
}

// literalKeys returns the identifier keys of a keyed composite literal
// (map or indexed-array).
func literalKeys(cl *ast.CompositeLit) map[string]bool {
	keys := map[string]bool{}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			keys[id.Name] = true
		}
	}
	return keys
}
