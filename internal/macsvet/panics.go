package macsvet

import (
	"fmt"
	"go/ast"
	"strings"
)

// serviceReachable returns the set of module packages reachable from
// internal/service's import graph, internal/service included. These are
// the packages a request can execute.
func serviceReachable(m *Module) map[string]bool {
	start := m.Path + "/internal/service"
	if m.Pkgs[start] == nil {
		return nil
	}
	seen := map[string]bool{start: true}
	work := []string{start}
	for len(work) > 0 {
		p := m.Pkgs[work[0]]
		work = work[1:]
		if p == nil {
			continue
		}
		for _, imps := range p.Imports {
			for _, path := range imps {
				if !strings.HasPrefix(path, m.Path) || seen[path] {
					continue
				}
				seen[path] = true
				work = append(work, path)
			}
		}
	}
	return seen
}

// checkPanics flags naked panic() calls in non-test code of packages
// reachable from service request handling. Must* helpers are exempt:
// they are documented test-only and the musttest rule keeps them out of
// production call sites.
func checkPanics(m *Module) []Finding {
	reachable := serviceReachable(m)
	var fs []Finding
	for path := range reachable {
		p := m.Pkgs[path]
		if p == nil {
			continue
		}
		for _, f := range p.Files {
			walkFuncs(f, func(fn string, call *ast.CallExpr) {
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" || isMustName(fn) {
					return
				}
				fs = append(fs, Finding{
					Pos:  m.Fset.Position(call.Pos()),
					Rule: "nopanic",
					Message: fmt.Sprintf(
						"naked panic in %s, reachable from service request handling; return an error instead", fn),
				})
			})
		}
	}
	return fs
}

// checkMustCalls flags non-test calls to module-internal Must* helpers
// that panic. Error-returning functions that happen to be named Must
// (the verify gate) are not helpers in that sense and stay legal.
func checkMustCalls(m *Module) []Finding {
	var fs []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			imps := p.Imports[f]
			walkFuncs(f, func(fn string, call *ast.CallExpr) {
				if isMustName(fn) {
					return // Must helpers may delegate to each other
				}
				var qual, name string
				switch e := call.Fun.(type) {
				case *ast.Ident:
					name = e.Name
				case *ast.SelectorExpr:
					if x, ok := e.X.(*ast.Ident); ok {
						qual, name = x.Name, e.Sel.Name
					}
				}
				if !isMustName(name) {
					return
				}
				targetPkg := p.ImportPath
				if qual != "" {
					targetPkg = imps[qual]
					if !strings.HasPrefix(targetPkg, m.Path) {
						return // stdlib regexp.MustCompile and friends
					}
				}
				if !funcPanics(m.Pkgs[targetPkg], name) {
					return
				}
				fs = append(fs, Finding{
					Pos:  m.Fset.Position(call.Pos()),
					Rule: "musttest",
					Message: fmt.Sprintf(
						"%s panics on error and is a test-only helper; call the non-Must form and handle the error", name),
				})
			})
		}
	}
	return fs
}

// isMustName reports whether a function name follows the Must* panicking
// helper convention.
func isMustName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Must")
	if !ok {
		return false
	}
	return rest == "" || rest[0] >= 'A' && rest[0] <= 'Z'
}

// funcPanics reports whether pkg declares a function of that name whose
// body contains a panic call.
func funcPanics(pkg *Pkg, name string) bool {
	if pkg == nil {
		return false
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Body == nil {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// walkFuncs visits every call expression in a file, reporting the name
// of the enclosing top-level function (function literals inherit it).
func walkFuncs(f *ast.File, visit func(fn string, call *ast.CallExpr)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				visit(fd.Name.Name, call)
			}
			return true
		})
	}
}
