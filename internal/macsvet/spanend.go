package macsvet

import (
	"fmt"
	"go/ast"
)

// checkSpanEnd enforces the span discipline of the observability layer:
// every *obs.Span obtained from obs.Start in the facade (package macs)
// or the serving layer (internal/service) must be ended in the same
// statement list that started it, before any statement that can return
// out of the function. The discipline keeps traces complete — an
// unended span never reaches the Chrome export and silently drops its
// stage from /metrics latency histograms — and keeping Start/End in one
// block is what makes the property statically checkable at all.
func checkSpanEnd(m *Module) []Finding {
	obsPath := m.Path + "/internal/obs"
	var fs []Finding
	for _, imp := range []string{m.Path, m.Path + "/internal/service"} {
		p := m.Pkgs[imp]
		if p == nil {
			continue
		}
		for _, f := range p.Files {
			locals := map[string]bool{}
			for local, path := range p.Imports[f] {
				if path == obsPath {
					locals[local] = true
				}
			}
			if len(locals) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				var list []ast.Stmt
				switch s := n.(type) {
				case *ast.BlockStmt:
					list = s.List
				case *ast.CaseClause:
					list = s.Body
				case *ast.CommClause:
					list = s.Body
				default:
					return true
				}
				fs = append(fs, checkSpanList(m, locals, list)...)
				return true
			})
		}
	}
	return fs
}

// checkSpanList scans one statement list for obs.Start assignments and
// verifies each span's End call follows in the same list with no
// escaping statement in between.
func checkSpanList(m *Module, locals map[string]bool, list []ast.Stmt) []Finding {
	var fs []Finding
	for i, st := range list {
		name, ok := spanStart(locals, st)
		if !ok {
			continue
		}
		pos := m.Fset.Position(st.Pos())
		if name == "_" {
			fs = append(fs, Finding{Pos: pos, Rule: "spanend",
				Message: "span from obs.Start is discarded and can never be ended"})
			continue
		}
		ended := false
		var leak ast.Stmt
		for _, next := range list[i+1:] {
			if isSpanEnd(next, name) {
				ended = true
				break
			}
			if escapes(next) {
				leak = next
				break
			}
		}
		switch {
		case leak != nil:
			fs = append(fs, Finding{Pos: m.Fset.Position(leak.Pos()), Rule: "spanend",
				Message: fmt.Sprintf("span %q can leave the function before %s.End() (started at line %d)",
					name, name, pos.Line)})
		case !ended:
			fs = append(fs, Finding{Pos: pos, Rule: "spanend",
				Message: fmt.Sprintf("span %q is not ended in the block that starts it", name)})
		}
	}
	return fs
}

// spanStart reports the span variable bound by st when st is an
// assignment whose sole right-hand side is a call to obs.Start (under
// any local import name bound to the obs package).
func spanStart(locals map[string]bool, st ast.Stmt) (string, bool) {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || !locals[pkg.Name] {
		return "", false
	}
	// obs.Start returns (ctx, *Span); the span is the last binding.
	id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// isSpanEnd reports whether st is name.End() — either called directly
// or deferred (a defer reached before any return ends on all paths).
func isSpanEnd(st ast.Stmt, name string) bool {
	var call *ast.CallExpr
	switch s := st.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}

// escapes reports whether executing st can leave the enclosing function:
// a return statement anywhere inside it, function literals excluded
// (their returns exit the literal, not the function under analysis).
func escapes(st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}
