package macsvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// checkFingerprint enforces the machine-description hashing contract:
// every field of vm.Machine must be written into the hash by its
// Fingerprint method. Fingerprint is the one keying scheme shared by the
// persistent result cache, the fast-tier prediction memo and the explore
// engine's per-machine state — a field added to Machine but not to the
// hash makes two different machines collide, and a stale cache entry or
// memoized schedule silently answers for the wrong hardware. The rule
// requires each field name to appear as a selector on the method's
// receiver somewhere in the body; it is a no-op for modules whose
// internal/vm declares no Machine struct (test fixtures).
func checkFingerprint(m *Module) []Finding {
	vm := m.Pkgs[m.Path+"/internal/vm"]
	if vm == nil {
		return nil
	}
	st, stPos := findStruct(vm, "Machine")
	if st == nil {
		return nil
	}
	var fields []string
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			// Embedded field: its promoted name is the type's base name.
			fields = append(fields, embeddedName(f.Type))
			continue
		}
		for _, n := range f.Names {
			fields = append(fields, n.Name)
		}
	}
	fn := findMethod(vm, "Machine", "Fingerprint")
	if fn == nil {
		return []Finding{{Pos: m.Fset.Position(stPos), Rule: "fingerprint",
			Message: "vm.Machine has no Fingerprint method; machine-keyed caches have lost their canonical key"}}
	}
	recv := receiverName(fn)
	covered := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			covered[sel.Sel.Name] = true
		}
		return true
	})
	var missing []string
	for _, f := range fields {
		if !covered[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		return []Finding{{Pos: m.Fset.Position(fn.Pos()), Rule: "fingerprint",
			Message: fmt.Sprintf("Fingerprint does not hash Machine field(s) %s; machines differing only there would share one cache key",
				strings.Join(missing, ", "))}}
	}
	return nil
}

// findStruct returns the named struct type declared in p, or nil.
func findStruct(p *Pkg, name string) (*ast.StructType, token.Pos) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st, ts.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}

// findMethod returns the declaration of recvType's named method in p
// (value or pointer receiver), or nil.
func findMethod(p *Pkg, recvType, name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recvType {
				return fd
			}
		}
	}
	return nil
}

// receiverName returns the method's receiver identifier ("" for a blank
// or anonymous receiver — then nothing can be covered, which is correct:
// such a Fingerprint reads no fields).
func receiverName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List[0].Names) == 1 {
		return fn.Recv.List[0].Names[0].Name
	}
	return ""
}

// embeddedName returns the promoted field name of an embedded type.
func embeddedName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
