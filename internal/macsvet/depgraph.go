package macsvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// checkDepGraph enforces the dependence-analyzer contract the generic
// exhaustive rule cannot see: internal/depgraph's EdgeKind enum must
// carry the macsvet:exhaustive marker, and the critical-path solver's
// edgeWeight function must contain a switch naming every member. The
// generic rule only fires when a switch names SOME member — if the
// solver's switch were deleted or rewritten as an if-chain, it would go
// silent while every new edge kind silently contributed zero latency to
// t_CP. The rule is a no-op for modules without the package (fixtures).
func checkDepGraph(m *Module) []Finding {
	dg := m.Pkgs[m.Path+"/internal/depgraph"]
	if dg == nil {
		return nil
	}
	var fs []Finding
	kinds, kindPos := typedConsts(dg, "EdgeKind")
	if len(kinds) == 0 {
		fs = append(fs, Finding{Pos: m.Fset.Position(pkgPos(dg)), Rule: "depgraph",
			Message: "internal/depgraph: no EdgeKind members found; the dependence-edge taxonomy is gone"})
		return fs
	}
	if !enumMarked(dg, "EdgeKind") {
		fs = append(fs, Finding{Pos: m.Fset.Position(kindPos[0]), Rule: "depgraph",
			Message: "EdgeKind lost its macsvet:exhaustive marker; switches over edge kinds are no longer checked"})
	}
	fn := findFunc(dg, "edgeWeight")
	if fn == nil {
		fs = append(fs, Finding{Pos: m.Fset.Position(kindPos[0]), Rule: "depgraph",
			Message: "internal/depgraph: no edgeWeight function; the CP solver no longer decides a timing contribution per edge kind"})
		return fs
	}
	covered := map[string]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, cn := range caseNames(sw) {
			if cn.qual == "" {
				covered[cn.name] = true
			}
		}
		return true
	})
	var missing []string
	for _, k := range kinds {
		if !covered[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		fs = append(fs, Finding{Pos: m.Fset.Position(fn.Pos()), Rule: "depgraph",
			Message: fmt.Sprintf("edgeWeight does not handle edge kind(s) %s; every EdgeKind member must decide its critical-path timing contribution",
				strings.Join(missing, ", "))})
	}
	return fs
}

// enumMarked reports whether typeName's declaration in p carries the
// macsvet:exhaustive marker.
func enumMarked(p *Pkg, typeName string) bool {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if ts.Name.Name == typeName &&
					(hasMarker(gd.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment)) {
					return true
				}
			}
		}
	}
	return false
}

// findFunc returns the declaration of the named top-level function in p,
// or nil.
func findFunc(p *Pkg, name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// pkgPos returns a real source anchor for package-level findings: the
// package clause of the first source file. Diagnostics must always carry
// a file:line (token.NoPos renders as "-", which breaks the CLI's
// file:line:col contract).
func pkgPos(p *Pkg) token.Pos {
	if len(p.Files) > 0 {
		return p.Files[0].Package
	}
	return token.NoPos
}
