package macsvet

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureFindings runs every rule over the crafted violation fixture
// and checks the exact set of findings.
func TestFixtureFindings(t *testing.T) {
	fs, err := Run(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		file, rule, msg string
	}{
		{"caller/caller.go", "musttest", "MustRun panics on error"},
		{"eng/eng.go", "nopanic", "naked panic in Run"},
		{"enums/enums.go", "exhaustive", "missing Blue"},
		{"fixture.go", "tiermap", "tierNames has 1 entries for 2 Tier members"},
		{"internal/fasttier/cause.go", "tiermap", "must be CauseChain"},
		{"internal/fasttier/cause.go", "tiermap", `causeNames[1] = "hiccup", stallNames[1] = "bubble"`},
		{"paint/paint.go", "exhaustive", "missing Green, Blue"},
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(fs), len(want), fs)
	}
	for i, w := range want {
		f := fs[i]
		if !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), w.file) {
			t.Errorf("finding %d in %s, want %s", i, f.Pos.Filename, w.file)
		}
		if f.Rule != w.rule {
			t.Errorf("finding %d rule = %s, want %s", i, f.Rule, w.rule)
		}
		if !strings.Contains(f.Message, w.msg) {
			t.Errorf("finding %d message = %q, want substring %q", i, f.Message, w.msg)
		}
	}
}

// TestModuleClean runs macsvet over the real module: the repo must obey
// its own invariants.
func TestModuleClean(t *testing.T) {
	fs, err := Run(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("module finding: %s", f)
	}
}

func TestIsMustName(t *testing.T) {
	for name, want := range map[string]bool{
		"Must":        true,
		"MustParse":   true,
		"MustCompile": true,
		"Mustache":    false,
		"mustParse":   false,
		"Parse":       false,
	} {
		if got := isMustName(name); got != want {
			t.Errorf("isMustName(%q) = %v, want %v", name, got, want)
		}
	}
}
