package macsvet

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureFindings runs every rule over the crafted violation fixture
// and checks the exact set of findings.
func TestFixtureFindings(t *testing.T) {
	fs, err := Run(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		file, rule, msg string
	}{
		{"caller/caller.go", "musttest", "MustRun panics on error"},
		{"eng/eng.go", "nopanic", "naked panic in Run"},
		{"enums/enums.go", "exhaustive", "missing Blue"},
		{"fixture.go", "tiermap", "tierNames has 1 entries for 2 Tier members"},
		{"internal/fasttier/cause.go", "tiermap", "must be CauseChain"},
		{"internal/fasttier/cause.go", "tiermap", `causeNames[1] = "hiccup", stallNames[1] = "bubble"`},
		{"internal/service/spans.go", "spanend", `span "sp" can leave the function before sp.End()`},
		{"internal/service/spans.go", "spanend", "discarded and can never be ended"},
		{"internal/service/spans.go", "spanend", `span "sp" is not ended in the block that starts it`},
		{"paint/paint.go", "exhaustive", "missing Green, Blue"},
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(fs), len(want), fs)
	}
	for i, w := range want {
		f := fs[i]
		if !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), w.file) {
			t.Errorf("finding %d in %s, want %s", i, f.Pos.Filename, w.file)
		}
		if f.Rule != w.rule {
			t.Errorf("finding %d rule = %s, want %s", i, f.Rule, w.rule)
		}
		if !strings.Contains(f.Message, w.msg) {
			t.Errorf("finding %d message = %q, want substring %q", i, f.Message, w.msg)
		}
	}
}

// TestModuleClean runs macsvet over the real module: the repo must obey
// its own invariants.
func TestModuleClean(t *testing.T) {
	fs, err := Run(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("module finding: %s", f)
	}
}

func TestIsMustName(t *testing.T) {
	for name, want := range map[string]bool{
		"Must":        true,
		"MustParse":   true,
		"MustCompile": true,
		"Mustache":    false,
		"mustParse":   false,
		"Parse":       false,
	} {
		if got := isMustName(name); got != want {
			t.Errorf("isMustName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestTierMapMissingMember pins the tiermap rule's missing-member mode:
// a fast tier that declares fewer Cause members than vm declares
// StallCauses breaks the bijection, and both the member count and the
// name-table length surface with real source positions.
func TestTierMapMissingMember(t *testing.T) {
	fs, err := Run(filepath.Join("testdata", "src", "tiermiss"))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		file, rule, msg string
	}{
		{"internal/fasttier/cause.go", "tiermap", "fasttier declares 2 Cause members, vm declares 3"},
		{"internal/fasttier/cause.go", "tiermap", "causeNames has 2 entries, stallNames has 3"},
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(fs), len(want), fs)
	}
	for i, w := range want {
		f := fs[i]
		if !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), w.file) {
			t.Errorf("finding %d in %s, want %s", i, f.Pos.Filename, w.file)
		}
		if f.Rule != w.rule || !strings.Contains(f.Message, w.msg) {
			t.Errorf("finding %d = %s: %s, want %s containing %q", i, f.Rule, f.Message, w.rule, w.msg)
		}
	}
}

// TestDepGraphRule pins the depgraph rule: a CP solver whose edgeWeight
// switch skips an edge kind, under an enum that lost its exhaustiveness
// marker, produces both findings.
func TestDepGraphRule(t *testing.T) {
	fs, err := Run(filepath.Join("testdata", "src", "depbad"))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		file, rule, msg string
	}{
		{"internal/depgraph/graph.go", "depgraph", "lost its macsvet:exhaustive marker"},
		{"internal/depgraph/graph.go", "depgraph", "edgeWeight does not handle edge kind(s) EdgeOutput"},
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(fs), len(want), fs)
	}
	for i, w := range want {
		f := fs[i]
		if !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), w.file) {
			t.Errorf("finding %d in %s, want %s", i, f.Pos.Filename, w.file)
		}
		if f.Rule != w.rule || !strings.Contains(f.Message, w.msg) {
			t.Errorf("finding %d = %s: %s, want %s containing %q", i, f.Rule, f.Message, w.rule, w.msg)
		}
	}
}

// TestFingerprintRule pins the fingerprint rule: a vm.Machine whose
// Fingerprint method skips fields — including an embedded one — is one
// finding naming every missing field.
func TestFingerprintRule(t *testing.T) {
	fs, err := Run(filepath.Join("testdata", "src", "fpbad"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1:\n%v", len(fs), fs)
	}
	f := fs[0]
	if f.Rule != "fingerprint" {
		t.Fatalf("rule = %s, want fingerprint", f.Rule)
	}
	if !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), "internal/vm/machine.go") {
		t.Errorf("finding in %s, want internal/vm/machine.go", f.Pos.Filename)
	}
	if !strings.Contains(f.Message, "MemSlowdown, Geometry") {
		t.Errorf("message = %q, want the missing fields MemSlowdown, Geometry", f.Message)
	}
}

// TestFindingsCarryPositions: every finding from every fixture anchors
// to a real file:line — the CLI prints file:line:col: rule: message, and
// token.NoPos would render as "-", breaking that contract.
func TestFindingsCarryPositions(t *testing.T) {
	for _, fixture := range []string{"fixture", "tiermiss", "depbad", "fpbad"} {
		fs, err := Run(filepath.Join("testdata", "src", fixture))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if f.Pos.Filename == "" || f.Pos.Line <= 0 {
				t.Errorf("%s: finding without a source position: %s", fixture, f)
			}
			if !strings.Contains(f.String(), ".go:") {
				t.Errorf("%s: finding does not render file:line: %q", fixture, f.String())
			}
		}
	}
}
