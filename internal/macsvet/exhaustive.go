package macsvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// marker in a type declaration's doc comment opting the enum into the
// exhaustive-switch rule.
const exhaustiveMarker = "macsvet:exhaustive"

// enum is one marked enum type and its members.
type enum struct {
	pkgPath  string
	typeName string
	members  []string
	member   map[string]bool
}

// collectEnums finds every type marked macsvet:exhaustive and gathers its
// members: constants of that type declared in the same package, iota
// blocks included, size sentinels (num*/Num*) excluded.
func collectEnums(m *Module) []*enum {
	var enums []*enum
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					if hasMarker(gd.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
						enums = append(enums, &enum{
							pkgPath:  p.ImportPath,
							typeName: ts.Name.Name,
							member:   map[string]bool{},
						})
					}
				}
			}
		}
	}
	for _, e := range enums {
		p := m.Pkgs[e.pkgPath]
		for _, f := range p.Files {
			collectMembers(f, e)
		}
	}
	return enums
}

func hasMarker(cg *ast.CommentGroup) bool {
	return cg != nil && strings.Contains(cg.Text(), exhaustiveMarker)
}

// collectMembers scans const blocks for members of e's type. A ValueSpec
// with neither type nor values repeats the previous spec (the iota
// idiom); one with values but no type resets the tracked type.
func collectMembers(f *ast.File, e *enum) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		cur := ""
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			switch {
			case vs.Type != nil:
				cur = ""
				if id, ok := vs.Type.(*ast.Ident); ok {
					cur = id.Name
				}
			case len(vs.Values) > 0:
				cur = ""
			}
			if cur != e.typeName {
				continue
			}
			for _, n := range vs.Names {
				if n.Name == "_" || sentinel(n.Name) {
					continue
				}
				if !e.member[n.Name] {
					e.member[n.Name] = true
					e.members = append(e.members, n.Name)
				}
			}
		}
	}
}

// checkExhaustive flags switches that name some but not all members of a
// marked enum.
func checkExhaustive(m *Module) []Finding {
	enums := collectEnums(m)
	if len(enums) == 0 {
		return nil
	}
	var fs []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			imps := p.Imports[f]
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				names := caseNames(sw)
				for _, e := range enums {
					covered := map[string]bool{}
					for _, cn := range names {
						if !e.member[cn.name] {
							continue
						}
						samePkg := cn.qual == "" && p.ImportPath == e.pkgPath
						imported := cn.qual != "" && imps[cn.qual] == e.pkgPath
						if samePkg || imported {
							covered[cn.name] = true
						}
					}
					if len(covered) == 0 {
						continue
					}
					var missing []string
					for _, mem := range e.members {
						if !covered[mem] {
							missing = append(missing, mem)
						}
					}
					if len(missing) > 0 {
						fs = append(fs, Finding{
							Pos:  m.Fset.Position(sw.Pos()),
							Rule: "exhaustive",
							Message: fmt.Sprintf("switch on %s covers %d of %d members; missing %s",
								e.typeName, len(covered), len(e.members), strings.Join(missing, ", ")),
						})
					}
				}
				return true
			})
		}
	}
	return fs
}

// caseName is one case-clause expression: a bare identifier or a
// package-qualified selector.
type caseName struct {
	qual, name string
}

func caseNames(sw *ast.SwitchStmt) []caseName {
	var out []caseName
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			switch e := expr.(type) {
			case *ast.Ident:
				out = append(out, caseName{name: e.Name})
			case *ast.SelectorExpr:
				if x, ok := e.X.(*ast.Ident); ok {
					out = append(out, caseName{qual: x.Name, name: e.Sel.Name})
				}
			}
		}
	}
	return out
}
