// Package macsvet implements the repo's custom static analyzers: checks
// over the module's own Go source that the compiler cannot express and
// the tests only probe dynamically. It is stdlib-only (go/parser +
// go/ast), loads the whole module from its root, and reports findings
// with file positions; cmd/macsvet is the CLI run in CI.
//
// Rules:
//
//   - exhaustive: a switch over an enum type whose declaration doc
//     carries a "macsvet:exhaustive" marker must name every member of
//     the enum (sentinel constants with a num/Num prefix excluded); a
//     default clause does not excuse a missing member, because the
//     marker exists precisely to surface switches that silently ignore
//     newly added members.
//   - isatiming: every isa.Op constant appears in the opNames table and
//     in exactly one of the Table 1 timings map or the scalarOnly set,
//     so an opcode cannot be added without deciding its vector timing.
//   - tiermap: the fast tier's stall taxonomy (fasttier.Cause, causeNames)
//     is a name-and-order bijection with the simulator's (vm.StallCause,
//     stallNames) — the import graph keeps the packages apart, so the
//     correspondence is enforced here — and macs.tierNames names every
//     declared Tier.
//   - depgraph: internal/depgraph's EdgeKind enum keeps its
//     macsvet:exhaustive marker and the critical-path solver's
//     edgeWeight function contains a switch naming every member, so an
//     edge kind cannot be added without deciding its timing
//     contribution to t_CP.
//   - nopanic: no naked panic() in non-test code of any package
//     reachable from internal/service's import graph — a panic there is
//     a crashed request at best and a dead daemon at worst. Functions
//     named Must* are exempt: they are documented test-only helpers.
//   - musttest: module-internal Must* helpers that panic may only be
//     called from _test.go files (or from other Must* helpers).
//   - fingerprint: every field of vm.Machine is written into the hash
//     by its Fingerprint method — the canonical key shared by the
//     persistent result cache, the fast-tier prediction memo and the
//     explore engine — so a machine knob cannot be added without
//     invalidating caches that depend on it.
//   - spanend: every *obs.Span started via obs.Start in the facade
//     (package macs) or in internal/service is ended in the statement
//     list that started it, before any statement that can return out of
//     the function — an unended span drops its stage from traces and
//     the /metrics latency histograms.
package macsvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation, anchored to a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// Pkg is one parsed package of the module.
type Pkg struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File // non-test sources
	TestFiles  []*ast.File
	FileNames  map[*ast.File]string
	// Imports maps each non-test file's local import names to their
	// import paths.
	Imports map[*ast.File]map[string]string
}

// Module is the parsed module under analysis.
type Module struct {
	Path string // module path from go.mod
	Root string
	Fset *token.FileSet
	Pkgs map[string]*Pkg // by import path
}

// Load parses every package under root (the directory holding go.mod),
// skipping testdata, vendor, hidden and underscore-prefixed directories.
func Load(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet(), Pkgs: map[string]*Pkg{}}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("macsvet: %w", err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		p := m.Pkgs[imp]
		if p == nil {
			p = &Pkg{
				ImportPath: imp,
				Dir:        dir,
				FileNames:  map[*ast.File]string{},
				Imports:    map[*ast.File]map[string]string{},
			}
			m.Pkgs[imp] = p
		}
		p.FileNames[f] = path
		if strings.HasSuffix(path, "_test.go") {
			p.TestFiles = append(p.TestFiles, f)
			return nil
		}
		p.Name = f.Name.Name
		p.Files = append(p.Files, f)
		p.Imports[f] = importMap(f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Resolve default local names of module-internal imports to the real
	// package names (a directory's base name is only a convention).
	for _, p := range m.Pkgs {
		for _, imps := range p.Imports {
			for local, path := range imps {
				if tp, ok := m.Pkgs[path]; ok && local == filepath.Base(path) && tp.Name != "" {
					delete(imps, local)
					imps[tp.Name] = path
				}
			}
		}
	}
	return m, nil
}

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("macsvet: %w (run from the module root)", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("macsvet: no module line in %s", gomod)
}

func importMap(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		local := filepath.Base(path)
		if spec.Name != nil {
			local = spec.Name.Name
			if local == "_" || local == "." {
				continue
			}
		}
		out[local] = path
	}
	return out
}

// Run loads the module rooted at root and applies every rule.
func Run(root string) ([]Finding, error) {
	m, err := Load(root)
	if err != nil {
		return nil, err
	}
	var fs []Finding
	fs = append(fs, checkExhaustive(m)...)
	fs = append(fs, checkISATiming(m)...)
	fs = append(fs, checkTierMap(m)...)
	fs = append(fs, checkDepGraph(m)...)
	fs = append(fs, checkFingerprint(m)...)
	fs = append(fs, checkPanics(m)...)
	fs = append(fs, checkMustCalls(m)...)
	fs = append(fs, checkSpanEnd(m)...)
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return fs[i].Rule < fs[j].Rule
	})
	return fs, nil
}

// sentinel reports whether a constant name is an enum-size sentinel
// (numOps, NumStallCauses) rather than a member.
func sentinel(name string) bool {
	return strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num")
}
