package macsvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// checkTierMap enforces the fast-tier/simulator correspondence that the
// import graph forbids expressing in code (internal/fasttier must not
// import internal/vm):
//
//   - every fasttier.Cause constant maps onto the vm attribution
//     taxonomy: member i must be Cause<X> where vm's member i is
//     Stall<X>, a name-and-order bijection;
//   - the causeNames and stallNames string tables agree element-wise,
//     so the two tiers' attribution ledgers share a wire vocabulary;
//   - the macs.Tier enum's tierNames table has exactly one entry per
//     declared tier, so a new tier cannot be added without naming it.
//
// The rule is a no-op for modules without these packages (test fixtures).
func checkTierMap(m *Module) []Finding {
	ft := m.Pkgs[m.Path+"/internal/fasttier"]
	vm := m.Pkgs[m.Path+"/internal/vm"]
	root := m.Pkgs[m.Path]
	if ft == nil || vm == nil {
		return nil
	}
	var fs []Finding

	causes, causePos := typedConsts(ft, "Cause")
	stalls, stallPos := typedConsts(vm, "StallCause")
	if len(causes) != len(stalls) {
		pos := pkgPos(ft)
		if len(causePos) > 0 {
			pos = causePos[0]
		}
		fs = append(fs, Finding{Pos: m.Fset.Position(pos), Rule: "tiermap",
			Message: fmt.Sprintf("fasttier declares %d Cause members, vm declares %d StallCause members; the taxonomies must be bijective",
				len(causes), len(stalls))})
	}
	for i := 0; i < len(causes) && i < len(stalls); i++ {
		want := "Cause" + strings.TrimPrefix(stalls[i], "Stall")
		if causes[i] != want {
			fs = append(fs, Finding{Pos: m.Fset.Position(causePos[i]), Rule: "tiermap",
				Message: fmt.Sprintf("fasttier cause #%d is %s; vm's #%d is %s, so it must be %s",
					i, causes[i], i, stalls[i], want)})
		}
		_ = stallPos
	}

	causeNames, cnPos := stringTable(ft, "causeNames")
	stallNames, _ := stringTable(vm, "stallNames")
	switch {
	case causeNames == nil:
		fs = append(fs, Finding{Pos: m.Fset.Position(pkgPos(ft)), Rule: "tiermap",
			Message: "internal/fasttier: causeNames not found as a composite-literal var"})
	case stallNames == nil:
		fs = append(fs, Finding{Pos: m.Fset.Position(pkgPos(vm)), Rule: "tiermap",
			Message: "internal/vm: stallNames not found as a composite-literal var"})
	case len(causeNames) != len(stallNames):
		fs = append(fs, Finding{Pos: m.Fset.Position(cnPos), Rule: "tiermap",
			Message: fmt.Sprintf("causeNames has %d entries, stallNames has %d; the wire vocabularies must match",
				len(causeNames), len(stallNames))})
	default:
		for i := range causeNames {
			if causeNames[i] != stallNames[i] {
				fs = append(fs, Finding{Pos: m.Fset.Position(cnPos), Rule: "tiermap",
					Message: fmt.Sprintf("causeNames[%d] = %q, stallNames[%d] = %q; the two tiers would report the same stall under different names",
						i, causeNames[i], i, stallNames[i])})
			}
		}
	}

	if root != nil {
		tiers, tierPos := typedConsts(root, "Tier")
		tierNames, tnPos := stringTable(root, "tierNames")
		switch {
		case len(tiers) == 0:
			// No Tier enum (older module snapshot): nothing to check.
		case tierNames == nil:
			fs = append(fs, Finding{Pos: m.Fset.Position(tierPos[0]), Rule: "tiermap",
				Message: "macs: tierNames not found as a composite-literal var"})
		case len(tierNames) != len(tiers):
			fs = append(fs, Finding{Pos: m.Fset.Position(tnPos), Rule: "tiermap",
				Message: fmt.Sprintf("tierNames has %d entries for %d Tier members; every tier must be named",
					len(tierNames), len(tiers))})
		}
	}
	return fs
}

// typedConsts returns the named members of type typeName declared in
// const blocks of p, in declaration order, sentinels excluded.
func typedConsts(p *Pkg, typeName string) ([]string, []token.Pos) {
	var names []string
	var poss []token.Pos
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			cur := ""
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				switch {
				case vs.Type != nil:
					cur = ""
					if id, ok := vs.Type.(*ast.Ident); ok {
						cur = id.Name
					}
				case len(vs.Values) > 0:
					cur = ""
				}
				if cur != typeName {
					continue
				}
				for _, n := range vs.Names {
					if n.Name == "_" || sentinel(n.Name) {
						continue
					}
					names = append(names, n.Name)
					poss = append(poss, n.Pos())
				}
			}
		}
	}
	return names, poss
}

// stringTable returns the ordered string elements of the composite
// literal assigned to var name in p, or nil if no such var exists.
func stringTable(p *Pkg, name string) ([]string, token.Pos) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					var out []string
					for _, elt := range cl.Elts {
						if bl, ok := elt.(*ast.BasicLit); ok && bl.Kind == token.STRING {
							out = append(out, strings.Trim(bl.Value, `"`))
						}
					}
					return out, cl.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}
