package vm

import (
	"strings"
	"testing"

	"macs/internal/asm"
	"macs/internal/isa"
)

// runErr runs a source expecting an error containing want.
func runErr(t *testing.T, src, want string) {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := New(DefaultConfig())
	if err := c.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err = c.Run()
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestScalarIntegerOps(t *testing.T) {
	src := `
	mov #12,s0
	mov #10,s1
	and.w s0,s1,s2
	or.w s0,s1,s3
	shf.w s0,#2,s4
	neg.w s0,s5
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if got := c.SInt(2); got != 8 {
		t.Errorf("and = %d, want 8", got)
	}
	if got := c.SInt(3); got != 14 {
		t.Errorf("or = %d, want 14", got)
	}
	if got := c.SInt(4); got != 48 {
		t.Errorf("shl = %d, want 48", got)
	}
	if got := c.SInt(5); got != -12 {
		t.Errorf("neg = %d, want -12", got)
	}
}

func TestShiftRight(t *testing.T) {
	c, _ := run(t, DefaultConfig(), "\tmov #48,s0\n\tshf.w s0,#-2,s1", nil)
	if got := c.SInt(1); got != 12 {
		t.Errorf("shr = %d, want 12", got)
	}
}

func TestIntegerDivisionByZero(t *testing.T) {
	runErr(t, "\tmov #5,s0\n\tmov #0,s1\n\tdiv.w s0,s1,s2", "division by zero")
}

func TestFloatCompares(t *testing.T) {
	src := `
.data a 8 1.5
.data b 8 2.5
	ld.l a,s0
	ld.l b,s1
	lt.d s0,s1
	jbrs.f BAD
	ge.d s1,s0
	jbrs.f BAD
	eq.d s0,s0
	jbrs.f BAD
	ne.d s0,s1
	jbrs.f BAD
	le.d s0,s0
	jbrs.f BAD
	gt.d s1,s0
	jbrs.f BAD
	mov #1,s7
	halt
BAD:
	mov #0,s7
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if c.SInt(7) != 1 {
		t.Error("float comparison chain failed")
	}
}

func TestVectorSqrt(t *testing.T) {
	src := `
	mov #4,s0
	mov s0,vl
	sqrt.d v0,v1
`
	cpu, _ := run(t, DefaultConfig(), src, func(c *CPU) {
		c.SetV(0, []float64{4, 9, 16, 25})
	})
	want := []float64{2, 3, 4, 5}
	for k, w := range want {
		if got := cpu.VElem(1, k); got != w {
			t.Errorf("sqrt[%d] = %v, want %v", k, got, w)
		}
	}
}

func TestVectorNegAliasing(t *testing.T) {
	src := `
	mov #4,s0
	mov s0,vl
	neg.d v0,v0
`
	cpu, _ := run(t, DefaultConfig(), src, func(c *CPU) {
		c.SetV(0, []float64{1, -2, 3, -4})
	})
	want := []float64{-1, 2, -3, 4}
	for k, w := range want {
		if got := cpu.VElem(0, k); got != w {
			t.Errorf("neg[%d] = %v, want %v", k, got, w)
		}
	}
}

func TestVectorMovBroadcast(t *testing.T) {
	src := `
.data q 8 7.5
	ld.l q,s1
	mov #4,s0
	mov s0,vl
	mov.d s1,v0
`
	cpu, _ := run(t, DefaultConfig(), src, nil)
	for k := 0; k < 4; k++ {
		if got := cpu.VElem(0, k); got != 7.5 {
			t.Errorf("broadcast[%d] = %v", k, got)
		}
	}
}

func TestVectorDivide(t *testing.T) {
	src := `
	mov #4,s0
	mov s0,vl
	div.d v0,v1,v2
`
	cpu, st := run(t, DefaultConfig(), src, func(c *CPU) {
		c.SetV(0, []float64{10, 20, 30, 40})
		c.SetV(1, []float64{2, 4, 5, 8})
	})
	want := []float64{5, 5, 6, 5}
	for k, w := range want {
		if got := cpu.VElem(2, k); got != w {
			t.Errorf("div[%d] = %v, want %v", k, got, w)
		}
	}
	// Divide runs at Z = 4.
	if st.Cycles < 4*4 {
		t.Errorf("divide cycles = %d, want >= 16", st.Cycles)
	}
}

func TestScalarMovD(t *testing.T) {
	src := `
.data a 8 3.25
	ld.l a,s0
	mov.d s0,s1
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if got := c.SFloat(1); got != 3.25 {
		t.Errorf("mov.d = %v", got)
	}
}

func TestUndefinedRuntimeErrors(t *testing.T) {
	runErr(t, "\tsum.w s0,s1", "no scalar form")
	runErr(t, "\tmov #1,s0,s1", "mov needs 2 operands")
}

func TestPipeUtilizationStats(t *testing.T) {
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #20,s0
L1:
	ld.l a(a0),v0
	mul.d v0,v1,v2
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`
	_, st := run(t, DefaultConfig(), src, nil)
	ldu := st.Utilization(isa.PipeLoadStore)
	mulu := st.Utilization(isa.PipeMul)
	addu := st.Utilization(isa.PipeAdd)
	if ldu < 0.8 || ldu > 1.0 {
		t.Errorf("load/store utilization = %.2f, want near 1.0", ldu)
	}
	if mulu < 0.8 {
		t.Errorf("multiply utilization = %.2f, want near 1.0 (chained)", mulu)
	}
	if addu != 0 {
		t.Errorf("add pipe utilization = %.2f, want 0", addu)
	}
}

func TestStatsCyclesMonotone(t *testing.T) {
	// More iterations, more cycles.
	mk := func(n int) int64 {
		src := strings.Replace(`
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #N,s0
L1:
	ld.l a(a0),v0
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`, "N", strings.Repeat("1", 1), 1) // placeholder; patched below
		_ = src
		p := asm.MustParse(strings.Replace(src, "#1,s0", "#"+itoa(n)+",s0", 1))
		c := New(DefaultConfig())
		if err := c.Load(p); err != nil {
			t.Fatal(err)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	if !(mk(5) < mk(10) && mk(10) < mk(20)) {
		t.Error("cycles not monotone in iterations")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
