package vm

import (
	"encoding/json"
	"fmt"

	"macs/internal/isa"
	"macs/internal/obs"
)

// traceRing is a bounded ring buffer of TraceEvents: cheap always-on
// tracing for long runs, keeping only the most recent events.
type traceRing struct {
	buf     []TraceEvent
	pos     int
	full    bool
	dropped int64
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]TraceEvent, 0, capacity)}
}

// reset empties the ring for reuse (events() copies out, so the buffer
// itself is never aliased by returned slices).
func (r *traceRing) reset() {
	r.buf = r.buf[:0]
	r.pos = 0
	r.full = false
	r.dropped = 0
}

func (r *traceRing) push(e TraceEvent) {
	if cap(r.buf) == 0 {
		r.dropped++
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.full = true
	r.dropped++
	r.buf[r.pos] = e
	r.pos = (r.pos + 1) % cap(r.buf)
}

// events returns the buffered events oldest-first.
func (r *traceRing) events() []TraceEvent {
	if !r.full {
		return append([]TraceEvent(nil), r.buf...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.pos:]...)
	out = append(out, r.buf[:r.pos]...)
	return out
}

// TraceEvents returns the recorded vector timing events oldest-first: the
// unbounded trace when Config.Trace is set, otherwise the contents of the
// bounded ring buffer (Config.TraceRing), otherwise nil.
func (c *CPU) TraceEvents() []TraceEvent {
	if c.cfg.Trace {
		return c.trace
	}
	if c.ring != nil {
		return c.ring.events()
	}
	return nil
}

// TraceDropped reports how many events the bounded ring buffer discarded
// (0 when tracing is unbounded or disabled).
func (c *CPU) TraceDropped() int64 {
	if c.ring == nil {
		return 0
	}
	return c.ring.dropped
}

// LaneEvents converts vector timing events into the generic per-lane
// shape the observability layer's merged Chrome export takes: one row
// per VP pipe, one interval per vector instruction (stream entry to last
// element), timestamps in clock cycles. The args mirror ChromeTrace's.
func LaneEvents(events []TraceEvent) []obs.LaneEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]obs.LaneEvent, 0, len(events))
	for _, e := range events {
		dur := e.Finish - e.Start
		if dur <= 0 {
			dur = 1
		}
		out = append(out, obs.LaneEvent{
			Lane:  fmt.Sprintf("%s pipe", e.Instr.Pipe()),
			Name:  e.Instr.String(),
			Start: e.Start,
			Dur:   dur,
			Args: map[string]any{
				"chime":        e.Chime,
				"vl":           e.VL,
				"stall":        e.Stall,
				"dispatch":     e.Dispatch,
				"first_result": e.FirstResult,
			},
		})
	}
	return out
}

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" metadata events naming the pipe rows).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts,omitempty"`
	Dur  int64          `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders vector timing events as a Chrome trace_event JSON
// document (load it in chrome://tracing or Perfetto): one row per VP pipe,
// one complete event per vector instruction spanning stream entry to last
// element, with chime, VL and stall cycles in the args. Timestamps are in
// clock cycles (displayed as microseconds by the viewer).
func ChromeTrace(events []TraceEvent) ([]byte, error) {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	used := map[int]bool{}
	for _, e := range events {
		used[int(e.Instr.Pipe())] = true
	}
	for _, p := range []isa.Pipe{isa.PipeLoadStore, isa.PipeAdd, isa.PipeMul} {
		if !used[int(p)] {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: int(p),
			Args: map[string]any{"name": fmt.Sprintf("%s pipe", p)},
		})
	}
	for _, e := range events {
		dur := e.Finish - e.Start
		if dur <= 0 {
			dur = 1
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: e.Instr.String(),
			Ph:   "X",
			PID:  0,
			TID:  int(e.Instr.Pipe()),
			TS:   e.Start,
			Dur:  dur,
			Args: map[string]any{
				"chime":        e.Chime,
				"vl":           e.VL,
				"stall":        e.Stall,
				"dispatch":     e.Dispatch,
				"first_result": e.FirstResult,
			},
		})
	}
	return json.MarshalIndent(doc, "", " ")
}
