package vm

import (
	"reflect"
	"sync"
	"testing"

	"macs/internal/asm"
)

// poolTestSrc exercises scalar code, strided vector memory (bank
// conflicts + refresh), chaining and a reduction — enough machinery that
// a stale field surviving Reset would change the outcome.
const poolTestSrc = `
.data a 4096
.data b 4096
	mov #256,vs
	mov #128,s2
	mov s2,vl
	mov #4,s0
L1:
	ld.l a(a0),v0
	add.d v0,v1,v2
	mul.d v2,v0,v3
	st.l v3,b(a0)
	sum.d v2,s5
	add.w #8,a0
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`

func runOn(t *testing.T, c *CPU, src string) Stats {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	m := c.Memory()
	base, _ := m.SymbolAddr("a")
	for i := 0; i < 256; i++ {
		if err := m.WriteF64(base+int64(i*8), 1.5+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestResetEquivalence is the pooled-reset gate: running on a Reset CPU —
// repeatedly, and after a different intervening program — must reproduce
// the fresh CPU's Stats (attribution ledger included) and results
// exactly.
func TestResetEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	fresh := New(cfg)
	want := runOn(t, fresh, poolTestSrc)
	wantS5 := fresh.SFloat(5)

	reused := New(cfg)
	other := `
.data c 1024
	mov #8,vs
	mov #64,s1
	mov s1,vl
	ld.l c(a0),v7
	neg.d v7,v1
	st.l v1,c(a0)
`
	for round := 0; round < 3; round++ {
		if round > 0 {
			reused.Reset()
			runOn(t, reused, other) // dirty every corner of the state
			reused.Reset()
		}
		got := runOn(t, reused, poolTestSrc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: stats diverge after Reset:\ngot  %+v\nwant %+v", round, got, want)
		}
		if s5 := reused.SFloat(5); s5 != wantS5 {
			t.Fatalf("round %d: s5 = %v, want %v", round, s5, wantS5)
		}
		if err := got.Attr.Conserved(got.Cycles); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestResetNaiveFastEquivalence runs the same program over the memoized
// fast path and the naive reference path; Stats must be bit-identical.
func TestResetNaiveFastEquivalence(t *testing.T) {
	fastCfg := DefaultConfig()
	naiveCfg := DefaultConfig()
	naiveCfg.NaiveMemPath = true

	fast := New(fastCfg)
	naive := New(naiveCfg)
	for round := 0; round < 2; round++ { // second round hits the memo table
		gotFast := runOn(t, fast, poolTestSrc)
		gotNaive := runOn(t, naive, poolTestSrc)
		if !reflect.DeepEqual(gotFast, gotNaive) {
			t.Fatalf("round %d: fast and naive paths diverge:\nfast  %+v\nnaive %+v", round, gotFast, gotNaive)
		}
		fast.Reset()
		naive.Reset()
	}
}

// TestResetDropsTraceAliasing: a trace returned before Reset must not be
// clobbered by the next run.
func TestResetDropsTraceAliasing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	c := New(cfg)
	runOn(t, c, poolTestSrc)
	tr := c.TraceEvents()
	if len(tr) == 0 {
		t.Fatal("no trace events")
	}
	snapshot := append([]TraceEvent(nil), tr...)
	c.Reset()
	runOn(t, c, poolTestSrc)
	if !reflect.DeepEqual(tr, snapshot) {
		t.Fatal("trace returned before Reset was mutated by the next run")
	}
}

// TestPoolConcurrent hammers one pool from many goroutines under -race:
// every run must match the single-threaded reference exactly.
func TestPoolConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	want := runOn(t, New(cfg), poolTestSrc)

	pool := NewPool(cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c := pool.Get()
				p, err := asm.Parse(poolTestSrc)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Load(p); err != nil {
					errs <- err
					return
				}
				m := c.Memory()
				base, _ := m.SymbolAddr("a")
				for k := 0; k < 256; k++ {
					if err := m.WriteF64(base+int64(k*8), 1.5+float64(k)); err != nil {
						errs <- err
						return
					}
				}
				st, err := c.Run()
				if err != nil {
					errs <- err
					return
				}
				pool.Put(c)
				if !reflect.DeepEqual(st, want) {
					errs <- errMismatch{}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	created, returned := pool.Stats()
	if returned == 0 {
		t.Fatal("pool never recycled a CPU")
	}
	if created > 64 {
		t.Fatalf("pool created %d CPUs for 64 runs on 8 goroutines", created)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "pooled run stats diverge from fresh reference" }
