// Package vm implements a cycle-level simulator of one Convex C-240 CPU:
// the Address/Scalar Unit (ASU) executing scalar instructions in order, and
// the Vector Processor (VP) executing vector instructions grouped into
// chimes on its three function pipes with operand chaining and tailgating
// bubbles (paper §2, §3.2, §3.3).
//
// Timing semantics (chime-synchronized VP):
//
//   - Vector instructions are grouped into chimes using the same issue
//     rules as the MACS bound (core.ChimeBuilder), because those rules are
//     a description of the hardware's own chime formation.
//   - A chime's first instruction begins streaming no earlier than the
//     previous chime's start plus that chime's cost (Z_max*VL + sum of
//     bubbles + memory stalls) — the serialization the paper's calibration
//     loops observe — and no earlier than its pipe's tailgate time.
//   - Within a chime, a dependent instruction chains: it begins streaming
//     when the producer's first element result is available (Figure 2).
//     Across chimes, a consumer waits for the producer to complete.
//   - Vector memory streams suffer bank-conflict and refresh stalls from
//     the internal/mem bank model; scalar memory accesses contend with
//     vector streams for the single CPU memory port.
//
// Functional execution runs in lockstep with the timing model, so programs
// compute real results that can be validated against reference code.
package vm

import (
	"macs/internal/isa"
)

// Config controls one simulation: the Machine being simulated (embedded,
// so the machine knobs read as cfg.VLMax, cfg.Banks, ... exactly as
// before the split) plus the run-bound settings — memory image size,
// runaway budgets, the memory-path selector and tracing. Use
// DefaultConfig and adjust.
type Config struct {
	// Machine describes the simulated hardware; see vm.Machine. Its
	// fields are promoted, and it marshals flat, so the wire and cache-key
	// shape of a Config predates the machine/run split.
	Machine
	// MemSize is the size of the simulated memory in bytes.
	MemSize int64
	// MaxCycles and MaxInstrs abort runaway programs.
	MaxCycles int64
	MaxInstrs int64
	// NaiveMemPath disables the memoized stream-stall table and answers
	// every vector memory stream with the naive per-element bank walk. The
	// two paths are bit-equivalent (the fast-path differential tests gate
	// on it); this flag exists to keep the reference implementation alive
	// and selectable.
	NaiveMemPath bool
	// Trace records per-vector-instruction timing events (Figure 2).
	Trace bool
	// TraceRing, when > 0 and Trace is off, records the most recent
	// TraceRing vector timing events in a bounded ring buffer — cheap
	// always-on tracing for long runs. Retrieve with CPU.TraceEvents,
	// export with ChromeTrace.
	TraceRing int
}

// DefaultConfig returns the standard C-240 configuration.
func DefaultConfig() Config {
	return Config{
		Machine:   DefaultMachine(),
		MemSize:   16 << 20,
		MaxCycles: 1 << 40,
		MaxInstrs: 200_000_000,
	}
}

// WithMachine returns the run configuration with its machine description
// replaced — the explore engine's way of stamping one run template over
// every point of a sweep.
func (c Config) WithMachine(m Machine) Config {
	c.Machine = m
	return c
}

// Stats aggregates a run's outcome.
type Stats struct {
	Cycles        int64 // completion time of the whole program
	Instrs        int64 // instructions executed
	VectorInstrs  int64
	ScalarInstrs  int64
	Chimes        int64
	MemStalls     int64 // bank + refresh stall cycles in vector streams
	PortConflicts int64 // scalar accesses delayed by vector streams
	VectorFlops   int64 // element results from the add and multiply pipes
	ScalarFlops   int64
	VectorElems   int64 // elements moved by vector loads and stores
	// PipeBusy accumulates input-side streaming cycles per VP pipe
	// (indexed by isa.Pipe); divide by Cycles for utilization.
	PipeBusy [4]int64
	// Attr is the per-lane stall-attribution ledger: for every lane (the
	// ASU plus the three VP pipes) issue cycles plus attributed stall
	// cycles exactly equal Cycles once the run finishes (conservation;
	// see Attribution.Conserved).
	Attr Attribution
}

// Utilization returns the fraction of the run each pipe spent streaming.
func (s Stats) Utilization(p isa.Pipe) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.PipeBusy[p]) / float64(s.Cycles)
}

// TraceEvent records the timing of one vector instruction.
type TraceEvent struct {
	Instr       isa.Instr
	Chime       int64 // chime sequence number (1-based)
	Dispatch    int64 // ASU dispatch completion
	Start       int64 // stream entry time S
	FirstResult int64 // S + Y
	Finish      int64 // last element written
	Stall       int64 // memory stall cycles inside the stream
	VL          int
}
