package vm

import (
	"sync"
	"sync/atomic"
)

// Pool recycles CPUs of one configuration. A fresh CPU carries a
// multi-megabyte memory image and per-register vector buffers; under a
// busy service every cache-miss analysis was paying that allocation. A
// pooled CPU instead pays a Reset proportional to what the previous run
// wrote, and keeps its memoized stream-stall table warm across runs.
//
// Get returns a CPU ready to Load; Put resets it and makes it available
// again. The pool is safe for concurrent use; each CPU must still be used
// by one goroutine at a time.
type Pool struct {
	cfg    Config
	p      sync.Pool
	news   atomic.Int64
	reuses atomic.Int64
}

// NewPool creates a pool of CPUs with the given configuration.
func NewPool(cfg Config) *Pool {
	pl := &Pool{cfg: cfg}
	pl.p.New = func() any {
		pl.news.Add(1)
		return New(cfg)
	}
	return pl
}

// Config returns the pool's CPU configuration.
func (p *Pool) Config() Config { return p.cfg }

// Get returns a reset CPU, creating one if the pool is empty.
func (p *Pool) Get() *CPU {
	c, ok := p.p.Get().(*CPU)
	if !ok {
		// Unreachable: the pool only ever holds *CPU. Fail safe with a
		// fresh simulator rather than panicking in a serving path.
		return New(p.cfg)
	}
	if c.prog != nil || c.halted {
		// Defensive: a CPU returned without Reset (Put always resets, so
		// only a foreign Put could cause this).
		c.Reset()
	}
	return c
}

// Put resets a CPU and returns it to the pool. Putting nil is a no-op. The
// CPU must not be used after Put.
func (p *Pool) Put(c *CPU) {
	if c == nil {
		return
	}
	c.Reset()
	p.reuses.Add(1)
	p.p.Put(c)
}

// Stats reports how many CPUs the pool has created and how many Puts have
// returned one for reuse.
func (p *Pool) Stats() (created, returned int64) {
	return p.news.Load(), p.reuses.Load()
}
