package vm

import (
	"fmt"

	"macs/internal/mem"
)

// Cluster co-simulates up to four C-240 CPUs sharing the 32-bank memory
// (paper §2: "the four processors can request and the 32 memory banks can
// satisfy one memory access per processor per cycle" under no conflicts;
// §4.2 studies what contention does in practice).
//
// Each CPU runs its own program against its own functional memory; the
// banks are shared for timing only, via a common BankModel that every
// vector memory stream reserves cycles in. The scheduler always advances
// the CPU with the smallest local clock, so streams enter the shared
// banks in global time order.
type Cluster struct {
	cpus   []*CPU
	shared *mem.SharedBanks
}

// NewCluster builds a cluster of len(cfgs) CPUs sharing one bank model.
// Refresh is modeled in the shared banks.
func NewCluster(cfgs []Config) *Cluster {
	bankCfg := mem.DefaultConfig()
	if len(cfgs) > 0 {
		bankCfg.RefreshEnabled = cfgs[0].RefreshStalls
	}
	cl := &Cluster{shared: mem.NewSharedBanks(bankCfg)}
	for _, cfg := range cfgs {
		c := New(cfg)
		c.SetSharedBank(cl.shared)
		cl.cpus = append(cl.cpus, c)
	}
	return cl
}

// CPU returns the i-th processor (for loading and priming).
func (cl *Cluster) CPU(i int) *CPU { return cl.cpus[i] }

// Size returns the number of CPUs.
func (cl *Cluster) Size() int { return len(cl.cpus) }

// Run co-simulates all CPUs to completion and returns per-CPU stats.
func (cl *Cluster) Run() ([]Stats, error) {
	if len(cl.cpus) == 0 {
		return nil, fmt.Errorf("vm: empty cluster")
	}
	active := make([]bool, len(cl.cpus))
	remaining := 0
	for i, c := range cl.cpus {
		if c.prog != nil {
			active[i] = true
			remaining++
		}
	}
	if remaining == 0 {
		return nil, fmt.Errorf("vm: no programs loaded in cluster")
	}
	for remaining > 0 {
		// Advance the active CPU whose next memory stream is earliest.
		best := -1
		for i, c := range cl.cpus {
			if !active[i] {
				continue
			}
			if best < 0 || c.horizon() < cl.cpus[best].horizon() {
				best = i
			}
		}
		done, err := cl.cpus[best].Step()
		if err != nil {
			return nil, fmt.Errorf("vm: cluster cpu %d: %w", best, err)
		}
		if done {
			active[best] = false
			remaining--
		}
	}
	out := make([]Stats, len(cl.cpus))
	for i, c := range cl.cpus {
		out[i] = c.Stats()
	}
	return out, nil
}
