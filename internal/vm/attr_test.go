package vm

import (
	"encoding/json"
	"fmt"
	"testing"

	"macs/internal/isa"
)

// checkConserved asserts the attribution invariant: for every lane,
// issue cycles plus attributed stall cycles exactly equal total cycles.
func checkConserved(t *testing.T, st Stats) {
	t.Helper()
	if err := st.Attr.Conserved(st.Cycles); err != nil {
		t.Errorf("attribution not conserved: %v", err)
	}
}

func TestAttrConservationScalarOnly(t *testing.T) {
	src := `
	mov #10,s0
	mov #0,s1
L1:
	add.w s0,s1,s1
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`
	_, st := run(t, DefaultConfig(), src, nil)
	checkConserved(t, st)
	asu := st.Attr.Lanes[LaneASU]
	if asu.Issue == 0 {
		t.Error("scalar program should have ASU issue cycles")
	}
	// Idle pipes are all drain.
	for _, p := range []isa.Pipe{isa.PipeLoadStore, isa.PipeAdd, isa.PipeMul} {
		la := st.Attr.Lanes[p]
		if la.Issue != 0 {
			t.Errorf("%s pipe issued %d cycles in a scalar program", p, la.Issue)
		}
		if la.Stalls[StallDrain] != st.Cycles {
			t.Errorf("%s pipe drain = %d, want %d", p, la.Stalls[StallDrain], st.Cycles)
		}
	}
}

func TestAttrConservationVectorLoop(t *testing.T) {
	src := `
.data a 65536
.data b 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #20,s0
L1:
	ld.l a(a0),v2
	mul.d v2,v1,v0
	add.d v0,v3,v5
	st.l v5,b(a0)
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`
	for _, refresh := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.RefreshStalls = refresh
		_, st := run(t, cfg, src, nil)
		checkConserved(t, st)
		for _, p := range []isa.Pipe{isa.PipeLoadStore, isa.PipeAdd, isa.PipeMul} {
			if st.Attr.Lanes[p].Issue == 0 {
				t.Errorf("refresh=%v: %s pipe should have issue cycles", refresh, p)
			}
		}
		if st.Attr.Cause(StallStartup) == 0 {
			t.Errorf("refresh=%v: vector program should attribute startup cycles", refresh)
		}
		ref := st.Attr.Cause(StallRefresh)
		if refresh && ref == 0 {
			t.Error("refresh enabled: expected attributed refresh cycles")
		}
		if !refresh && ref != 0 {
			t.Errorf("refresh disabled: attributed %d refresh cycles", ref)
		}
	}
}

func TestAttrBankConflicts(t *testing.T) {
	// Stride 32 words hits the same bank every access.
	src := `
.data a 1048576
	mov #256,vs
	mov #128,s1
	mov s1,vl
	ld.l a(a0),v0
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, st := run(t, cfg, src, nil)
	checkConserved(t, st)
	if st.Attr.Cause(StallBankConflict) == 0 {
		t.Error("same-bank stride should attribute bank-conflict cycles")
	}
	if got := st.Attr.Cause(StallBankConflict) + st.Attr.Cause(StallRefresh); got != st.MemStalls {
		t.Errorf("bank+refresh attribution = %d, want MemStalls %d", got, st.MemStalls)
	}
}

func TestAttrChainWaitAndBubble(t *testing.T) {
	// Three dependent vector ops in one chime chain; startup gaps between
	// chained starts appear as chain-wait on the consumer pipes.
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	ld.l a(a0),v0
	mul.d v0,v1,v2
	add.d v2,v3,v4
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, st := run(t, cfg, src, nil)
	checkConserved(t, st)
	if st.Attr.Cause(StallChain) == 0 {
		t.Error("chained chime should attribute chain-wait cycles")
	}
}

func TestAttrChimeSplitOnScalarMemory(t *testing.T) {
	// A scalar load between vector instructions forces a chime split
	// (issue rule 4): the next chime's gate is attributed as chime-split.
	src := `
.data a 65536
.data q 8 2.0
	mov #8,vs
	mov #128,s1
	mov s1,vl
	ld.l a(a0),v0
	add.d v0,v1,v2
	ld.l q,s2
	mul.d v2,s2,v3
	add.d v3,v1,v4
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, st := run(t, cfg, src, nil)
	checkConserved(t, st)
	if st.Attr.Cause(StallChimeSplit) == 0 {
		t.Error("scalar-memory chime split should attribute chime-split cycles")
	}
}

func TestAttrTotalsAndShare(t *testing.T) {
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	ld.l a(a0),v0
	add.d v0,v1,v2
`
	_, st := run(t, DefaultConfig(), src, nil)
	tot := st.Attr.Totals()
	if tot["issue"] == 0 {
		t.Error("Totals missing issue bucket")
	}
	var sum int64
	for _, v := range tot {
		sum += v
	}
	if want := int64(NumLanes) * st.Cycles; sum != want {
		t.Errorf("Totals sum = %d, want NumLanes*Cycles = %d", sum, want)
	}
	if s := st.Attr.Share(StallStartup); s < 0 || s > 1 {
		t.Errorf("Share out of range: %v", s)
	}
	if st.Attr.Empty() {
		t.Error("attribution should not be empty after a run")
	}
	var zero Attribution
	if !zero.Empty() {
		t.Error("zero attribution should be empty")
	}
}

func TestAttrJSONRoundTrip(t *testing.T) {
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	ld.l a(a0),v0
	mul.d v0,v1,v2
`
	_, st := run(t, DefaultConfig(), src, nil)
	b, err := json.Marshal(st.Attr)
	if err != nil {
		t.Fatal(err)
	}
	var got Attribution
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != st.Attr {
		t.Errorf("JSON round trip mismatch:\n got %+v\nwant %+v", got, st.Attr)
	}
	// Keys are stable cause names, not array indices.
	var doc map[string]struct {
		Issue  int64            `json:"issue"`
		Stalls map[string]int64 `json:"stalls"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["asu"]; !ok {
		t.Errorf("marshaled attribution missing asu lane: %s", b)
	}
}

func TestStallCauseNames(t *testing.T) {
	seen := map[string]bool{}
	for c := StallCause(0); c < NumStallCauses; c++ {
		n := c.String()
		if n == "" || seen[n] {
			t.Errorf("cause %d has empty or duplicate name %q", c, n)
		}
		seen[n] = true
	}
	if LaneName(LaneASU) != "asu" {
		t.Errorf("LaneName(ASU) = %q", LaneName(LaneASU))
	}
	if LaneName(int(isa.PipeAdd)) == "" {
		t.Error("LaneName(PipeAdd) empty")
	}
}

func TestTraceRingBounded(t *testing.T) {
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #30,s0
L1:
	ld.l a(a0),v2
	add.d v2,v1,v0
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`
	cfg := DefaultConfig()
	cfg.TraceRing = 8
	cpu, st := run(t, cfg, src, nil)
	checkConserved(t, st)
	ev := cpu.TraceEvents()
	if len(ev) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(ev))
	}
	// 60 vector instructions issued; ring dropped the rest.
	if cpu.TraceDropped() != st.VectorInstrs-8 {
		t.Errorf("dropped = %d, want %d", cpu.TraceDropped(), st.VectorInstrs-8)
	}
	// Oldest-first and the newest events are the last chimes.
	for i := 1; i < len(ev); i++ {
		if ev[i].Chime < ev[i-1].Chime {
			t.Errorf("ring events out of order: chime %d before %d", ev[i-1].Chime, ev[i].Chime)
		}
	}
	// Full trace takes precedence when enabled.
	cfg.Trace = true
	cpu2, _ := run(t, cfg, src, nil)
	if got := len(cpu2.TraceEvents()); int64(got) != st.VectorInstrs {
		t.Errorf("full trace kept %d events, want %d", got, st.VectorInstrs)
	}
	if cpu2.TraceDropped() != 0 {
		t.Errorf("full trace dropped %d", cpu2.TraceDropped())
	}
}

func TestChromeTraceJSON(t *testing.T) {
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	ld.l a(a0),v0
	mul.d v0,v1,v2
	add.d v2,v3,v4
`
	cfg := DefaultConfig()
	cfg.Trace = true
	cpu, _ := run(t, cfg, src, nil)
	b, err := ChromeTrace(cpu.TraceEvents())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("ChromeTrace produced invalid JSON: %v", err)
	}
	var x, m int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			x++
			if e.Dur <= 0 {
				t.Errorf("event %q has non-positive dur %d", e.Name, e.Dur)
			}
		case "M":
			m++
		}
	}
	if x != 3 {
		t.Errorf("ChromeTrace has %d X events, want 3", x)
	}
	if m != 3 {
		t.Errorf("ChromeTrace has %d pipe metadata events, want 3", m)
	}
	// Empty input still yields a valid document.
	if _, err := ChromeTrace(nil); err != nil {
		t.Errorf("ChromeTrace(nil): %v", err)
	}
}

// TestAttrConservationProperty sweeps VL, stride, refresh and slowdown to
// stress the invariant across timing paths.
func TestAttrConservationProperty(t *testing.T) {
	for _, vl := range []int{1, 7, 64, 128} {
		for _, vs := range []int{8, 64, 256} {
			for _, slow := range []float64{1.0, 1.4} {
				src := fmt.Sprintf(`
.data a 1048576
.data b 1048576
.data q 8 2.0
	mov #%d,vs
	mov #%d,s1
	mov s1,vl
	mov #5,s0
L1:
	ld.l a(a0),v2
	mul.d v2,v1,v0
	ld.l q,s3
	add.d v0,s3,v5
	st.l v5,b(a0)
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`, vs, vl)
				cfg := DefaultConfig()
				cfg.MemSlowdown = slow
				_, st := run(t, cfg, src, nil)
				checkConserved(t, st)
			}
		}
	}
}
