package vm

import (
	"fmt"
	"math"
	"testing"

	"macs/internal/asm"
)

func run(t *testing.T, cfg Config, src string, prime func(*CPU)) (*CPU, Stats) {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(cfg)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if prime != nil {
		prime(c)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

func TestScalarArithmetic(t *testing.T) {
	src := `
	mov #10,s0
	mov #3,s1
	add.w s0,s1,s2
	sub.w s0,s1,s3
	mul.w s0,s1,s4
	div.w s0,s1,s5
	add.w #5,s2
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if got := c.SInt(2); got != 18 {
		t.Errorf("s2 = %d, want 18 (10+3+5)", got)
	}
	if got := c.SInt(3); got != 7 {
		t.Errorf("s3 = %d, want 7", got)
	}
	if got := c.SInt(4); got != 30 {
		t.Errorf("s4 = %d, want 30", got)
	}
	if got := c.SInt(5); got != 3 {
		t.Errorf("s5 = %d, want 3", got)
	}
}

func TestScalarFloatArithmetic(t *testing.T) {
	src := `
.data a 8 2.5
.data b 8 4.0
	ld.l a,s0
	ld.l b,s1
	add.d s0,s1,s2
	mul.d s0,s1,s3
	sub.d s1,s0,s4
	div.d s1,s0,s5
	neg.d s2,s6
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if got := c.SFloat(2); got != 6.5 {
		t.Errorf("s2 = %v, want 6.5", got)
	}
	if got := c.SFloat(3); got != 10.0 {
		t.Errorf("s3 = %v, want 10", got)
	}
	if got := c.SFloat(4); got != 1.5 {
		t.Errorf("s4 = %v, want 1.5", got)
	}
	if got := c.SFloat(5); got != 1.6 {
		t.Errorf("s5 = %v, want 1.6", got)
	}
	if got := c.SFloat(6); got != -6.5 {
		t.Errorf("s6 = %v, want -6.5", got)
	}
}

func TestScalarLoop(t *testing.T) {
	// Sum 1..10 with a scalar loop.
	src := `
	mov #0,s0
	mov #1,s1
L1:
	add.w s0,s1,s0
	add.w #1,s1
	le.w s1,#10
	jbrs.t L1
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if got := c.SInt(0); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestBranchSenses(t *testing.T) {
	src := `
	mov #1,s0
	eq.w s0,#2
	jbrs.f L1
	mov #99,s1
L1:
	mov #7,s2
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if got := c.SInt(1); got != 0 {
		t.Errorf("jbrs.f not taken: s1 = %d, want 0", got)
	}
	if got := c.SInt(2); got != 7 {
		t.Errorf("s2 = %d, want 7", got)
	}
}

func TestVectorAddStore(t *testing.T) {
	src := `
.data a 1024
.data b 1024
.data c 1024
	mov #8,vs
	mov #64,s0
	mov s0,vl
	ld.l a(a0),v0
	ld.l b(a0),v1
	add.d v0,v1,v2
	st.l v2,c(a0)
`
	cpu, _ := run(t, DefaultConfig(), src, func(c *CPU) {
		m := c.Memory()
		a, _ := m.SymbolAddr("a")
		b, _ := m.SymbolAddr("b")
		for k := 0; k < 64; k++ {
			m.WriteF64(a+int64(k*8), float64(k))
			m.WriteF64(b+int64(k*8), 100.0)
		}
	})
	m := cpu.Memory()
	cBase, _ := m.SymbolAddr("c")
	for k := 0; k < 64; k++ {
		got, _ := m.ReadF64(cBase + int64(k*8))
		if got != float64(k)+100 {
			t.Fatalf("c[%d] = %v, want %v", k, got, float64(k)+100)
		}
	}
}

func TestVectorStridedLoad(t *testing.T) {
	src := `
.data a 2048
	mov #16,vs
	mov #8,s0
	mov s0,vl
	ld.l a(a0),v0
`
	cpu, _ := run(t, DefaultConfig(), src, func(c *CPU) {
		m := c.Memory()
		a, _ := m.SymbolAddr("a")
		for k := 0; k < 32; k++ {
			m.WriteF64(a+int64(k*8), float64(k))
		}
	})
	for k := 0; k < 8; k++ {
		if got := cpu.VElem(0, k); got != float64(2*k) {
			t.Errorf("v0[%d] = %v, want %v (stride 2)", k, got, float64(2*k))
		}
	}
}

func TestVectorSumReduction(t *testing.T) {
	src := `
.data a 1024
	mov #8,vs
	mov #100,s0
	mov s0,vl
	ld.l a(a0),v0
	sum.d v0,s1
`
	cpu, _ := run(t, DefaultConfig(), src, func(c *CPU) {
		m := c.Memory()
		a, _ := m.SymbolAddr("a")
		for k := 0; k < 100; k++ {
			m.WriteF64(a+int64(k*8), 1.5)
		}
	})
	if got := cpu.SFloat(1); got != 150 {
		t.Errorf("sum = %v, want 150", got)
	}
}

func TestVectorScalarOperand(t *testing.T) {
	src := `
.data a 1024
.data q 8 2.5
	ld.l q,s1
	mov #8,vs
	mov #16,s0
	mov s0,vl
	ld.l a(a0),v0
	mul.d v0,s1,v1
`
	cpu, _ := run(t, DefaultConfig(), src, func(c *CPU) {
		m := c.Memory()
		a, _ := m.SymbolAddr("a")
		for k := 0; k < 16; k++ {
			m.WriteF64(a+int64(k*8), float64(k))
		}
	})
	for k := 0; k < 16; k++ {
		if got := cpu.VElem(1, k); got != 2.5*float64(k) {
			t.Errorf("v1[%d] = %v, want %v", k, got, 2.5*float64(k))
		}
	}
}

func TestVLClamp(t *testing.T) {
	src := `
	mov #500,s0
	mov s0,vl
	add.d v0,v1,v2
`
	cpu, st := run(t, DefaultConfig(), src, nil)
	_ = cpu
	// VL clamps to 128: the vector add processes 128 elements.
	if st.VectorFlops != 128 {
		t.Errorf("VectorFlops = %d, want 128 (VL clamped)", st.VectorFlops)
	}
}

func TestVLZeroIsNoOp(t *testing.T) {
	src := `
	mov #0,s0
	mov s0,vl
	add.d v0,v1,v2
`
	_, st := run(t, DefaultConfig(), src, nil)
	if st.VectorFlops != 0 {
		t.Errorf("VectorFlops = %d, want 0", st.VectorFlops)
	}
	if st.Chimes != 0 {
		t.Errorf("Chimes = %d, want 0 for VL=0", st.Chimes)
	}
}

// TestFigure2Chaining reproduces the paper's Figure 2: a chained
// ld/add/mul chime of VL=128 takes about 162 cycles; unchained it takes
// about 422.
func TestFigure2Chaining(t *testing.T) {
	src := `
.data a 2048
	mov #8,vs
	mov #128,s0
	mov s0,vl
	ld.l a(a0),v0
	add.d v0,v1,v2
	mul.d v2,v3,v5
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, st := run(t, cfg, src, nil)
	// Paper: 162 cycles (plus our small dispatch skew and the scalar
	// prologue of 4 instructions).
	if st.Cycles < 160 || st.Cycles > 175 {
		t.Errorf("chained chime = %d cycles, want about 162 (paper Figure 2)", st.Cycles)
	}
	if st.Chimes != 1 {
		t.Errorf("chimes = %d, want 1", st.Chimes)
	}

	cfg.Rules.Chaining = false
	_, st = run(t, cfg, src, nil)
	if st.Cycles < 410 || st.Cycles > 435 {
		t.Errorf("unchained = %d cycles, want about 422 (paper Figure 2)", st.Cycles)
	}
	if st.Chimes != 3 {
		t.Errorf("unchained chimes = %d, want 3", st.Chimes)
	}
}

// TestSteadyStateChimeCost verifies the tailgating model: repeating the
// paper's chime 2 (ld+mul+add, bubbles 2+1+1) costs VL + sum(B) = 132
// cycles per iteration in steady state (the paper's calibration loop
// measured 133.33).
func TestSteadyStateChimeCost(t *testing.T) {
	mkSrc := func(n int64) string {
		return fmt.Sprintf(`
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #%d,s0
L1:
	ld.l a(a0),v2
	mul.d v2,v1,v0
	add.d v0,v3,v5
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`, n)
	}
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	cycles := func(n int64) int64 {
		p := asm.MustParse(mkSrc(n))
		c := New(cfg)
		if err := c.Load(p); err != nil {
			t.Fatal(err)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	delta := float64(cycles(60)-cycles(10)) / 50
	if delta < 131 || delta > 134 {
		t.Errorf("steady-state chime cost = %.2f cycles, want 132 (paper Eq. 13)", delta)
	}
}

func TestScalarVectorPortConflict(t *testing.T) {
	// A scalar load right after a vector load must wait for the vector
	// memory stream to drain (single port per CPU).
	src := `
.data a 2048
.data q 8 1.0
	mov #8,vs
	mov #128,s0
	mov s0,vl
	ld.l a(a0),v0
	ld.l q,s1
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, st := run(t, cfg, src, nil)
	if st.PortConflicts == 0 {
		t.Error("scalar load should conflict with vector stream")
	}
	// The scalar load completes only after the vector load drains (~140).
	if st.Cycles < 140 {
		t.Errorf("cycles = %d, want >= 140 (port serialization)", st.Cycles)
	}
}

func TestBankConflictStride(t *testing.T) {
	// Stride of 32 words hits one bank: the stream stalls BankCycle-1
	// cycles per element.
	src := `
.data a 65536
	mov #256,vs
	mov #128,s0
	mov s0,vl
	ld.l a(a0),v0
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, st := run(t, cfg, src, nil)
	if st.MemStalls < 800 {
		t.Errorf("same-bank stride stalls = %d, want about 127*7", st.MemStalls)
	}
	cfg.BankConflicts = false
	_, st2 := run(t, cfg, src, nil)
	if st2.MemStalls != 0 {
		t.Errorf("bank conflicts disabled: stalls = %d, want 0", st2.MemStalls)
	}
}

func TestRefreshStalls(t *testing.T) {
	// A long run of unit-stride vector loads crosses refresh windows.
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #20,s0
L1:
	ld.l a(a0),v0
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`
	cfg := DefaultConfig()
	_, st := run(t, cfg, src, nil)
	if st.MemStalls == 0 {
		t.Error("expected refresh stalls in a long memory stream")
	}
	// Roughly 8 cycles per 400: near 2%.
	frac := float64(st.MemStalls) / float64(st.Cycles)
	if frac < 0.005 || frac > 0.035 {
		t.Errorf("refresh stall fraction = %.3f, want near 0.02", frac)
	}
	cfg.RefreshStalls = false
	_, st2 := run(t, cfg, src, nil)
	if st2.MemStalls != 0 {
		t.Errorf("refresh disabled: stalls = %d, want 0", st2.MemStalls)
	}
}

func TestMemSlowdownIncreasesCycles(t *testing.T) {
	src := `
.data a 65536
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #10,s0
L1:
	ld.l a(a0),v0
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, base := run(t, cfg, src, nil)
	cfg.MemSlowdown = 1.5
	_, slow := run(t, cfg, src, nil)
	ratio := float64(slow.Cycles) / float64(base.Cycles)
	if ratio < 1.3 || ratio > 1.7 {
		t.Errorf("MemSlowdown 1.5 gave cycle ratio %.2f, want about 1.5", ratio)
	}
}

func TestTraceEvents(t *testing.T) {
	src := `
.data a 2048
	mov #8,vs
	mov #128,s0
	mov s0,vl
	ld.l a(a0),v0
	add.d v0,v1,v2
`
	cfg := DefaultConfig()
	cfg.Trace = true
	cpu, _ := run(t, cfg, src, nil)
	tr := cpu.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d events, want 2", len(tr))
	}
	ld, add := tr[0], tr[1]
	if ld.Chime != 1 || add.Chime != 1 {
		t.Errorf("both should be chime 1: got %d, %d", ld.Chime, add.Chime)
	}
	if add.Start < ld.FirstResult {
		t.Errorf("chained add starts at %d, before producer first result %d", add.Start, ld.FirstResult)
	}
	if ld.Finish <= ld.Start || add.Finish <= add.Start {
		t.Error("finish must follow start")
	}
}

// lfk1Program is a hand-written complete LFK1 (hydro fragment):
// X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11)), k = 1..n, with n = 1001.
const lfk1Program = `
.data x 8192
.data y 8192
.data zx 8192
.data qc 8 0.5
.data rc 8 0.25
.data tc 8 0.125
main:
	ld.l qc,s7
	ld.l rc,s1
	ld.l tc,s3
	mov #0,a5
	mov #1001,s0
	mov #8,vs
L7:
	mov s0,vl
	ld.l zx+80(a5),v0
	mul.d v0,s1,v1
	ld.l zx+88(a5),v2
	mul.d v2,s3,v0
	add.d v1,v0,v3
	ld.l y(a5),v1
	mul.d v1,v3,v2
	add.d v2,s7,v0
	st.l v0,x(a5)
	add.w #1024,a5
	sub.w #128,s0
	lt.w #0,s0
	jbrs.t L7
`

func primeLFK1(c *CPU) {
	m := c.Memory()
	y, _ := m.SymbolAddr("y")
	zx, _ := m.SymbolAddr("zx")
	for k := 0; k < 1024; k++ {
		m.WriteF64(y+int64(k*8), 0.001*float64(k)+0.5)
		m.WriteF64(zx+int64(k*8), 0.002*float64(k)+0.25)
	}
}

func TestLFK1Functional(t *testing.T) {
	cpu, _ := run(t, DefaultConfig(), lfk1Program, primeLFK1)
	m := cpu.Memory()
	x, _ := m.SymbolAddr("x")
	q, r, tc := 0.5, 0.25, 0.125
	yv := func(k int) float64 { return 0.001*float64(k) + 0.5 }
	zxv := func(k int) float64 { return 0.002*float64(k) + 0.25 }
	for k := 0; k < 1001; k++ {
		want := q + yv(k)*(r*zxv(k+10)+tc*zxv(k+11))
		got, _ := m.ReadF64(x + int64(k*8))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestLFK1TimingAboveMACSBound(t *testing.T) {
	// The measured CPL must sit at or above the MACS bound (4.200 CPL)
	// and within a plausible distance (paper measured 4.26).
	_, st := run(t, DefaultConfig(), lfk1Program, primeLFK1)
	cpl := float64(st.Cycles) / 1001 // CPL = cycles per high-level iteration
	if cpl < 4.20 {
		t.Errorf("measured CPL %.3f below MACS bound 4.200", cpl)
	}
	if cpl > 4.60 {
		t.Errorf("measured CPL %.3f too far above bound (paper: 4.26)", cpl)
	}
	// 4 chimes per strip, 8 strips.
	if st.Chimes != 32 {
		t.Errorf("chimes = %d, want 32", st.Chimes)
	}
}

func TestStatsCounters(t *testing.T) {
	_, st := run(t, DefaultConfig(), lfk1Program, primeLFK1)
	// 5 FP vector ops per strip iteration covering 1001 elements each.
	if st.VectorFlops != 5*1001 {
		t.Errorf("VectorFlops = %d, want %d", st.VectorFlops, 5*1001)
	}
	if st.VectorElems != 4*1001 {
		t.Errorf("VectorElems = %d, want %d", st.VectorElems, 4*1001)
	}
	if st.ScalarInstrs == 0 || st.VectorInstrs != 9*8 {
		t.Errorf("instr mix: scalar=%d vector=%d, want vector=72", st.ScalarInstrs, st.VectorInstrs)
	}
}

func TestExecutionLimits(t *testing.T) {
	src := `
L1:
	jmp L1
`
	cfg := DefaultConfig()
	cfg.MaxInstrs = 100
	p := asm.MustParse(src)
	c := New(cfg)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("infinite loop should hit the instruction limit")
	}
}

func TestHalt(t *testing.T) {
	src := `
	mov #5,s0
	halt
	mov #9,s0
`
	c, _ := run(t, DefaultConfig(), src, nil)
	if got := c.SInt(0); got != 5 {
		t.Errorf("s0 = %d, want 5 (halt stops execution)", got)
	}
}

func TestUndefinedSymbolAtRuntime(t *testing.T) {
	// Validate catches undefined symbols at load; runtime errors surface
	// for out-of-range addresses.
	src := `
.data a 16
	mov #100000000,a0
	ld.l a(a0),s0
`
	p := asm.MustParse(src)
	c := New(DefaultConfig())
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("out-of-range access should error")
	}
}

func TestNegativeStride(t *testing.T) {
	src := `
.data a 1024
	mov #-8,vs
	mov #4,s0
	mov s0,vl
	mov #56,a0
	ld.l a(a0),v0
`
	cpu, _ := run(t, DefaultConfig(), src, func(c *CPU) {
		m := c.Memory()
		a, _ := m.SymbolAddr("a")
		for k := 0; k < 8; k++ {
			m.WriteF64(a+int64(k*8), float64(k))
		}
	})
	// Elements 7,6,5,4 in reverse.
	for k := 0; k < 4; k++ {
		if got := cpu.VElem(0, k); got != float64(7-k) {
			t.Errorf("v0[%d] = %v, want %v", k, got, float64(7-k))
		}
	}
}

func TestPairRuleSerializesInVM(t *testing.T) {
	// Two chimes forced by the pair read rule take about twice as long as
	// one chained chime.
	src := `
	mov #128,s0
	mov s0,vl
	add.d v2,v6,v6
	mul.d v6,v1,v4
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	_, st := run(t, cfg, src, nil)
	if st.Chimes != 2 {
		t.Fatalf("chimes = %d, want 2 (pair rule)", st.Chimes)
	}
	// mul waits for the add to complete: at least 2*128 cycles.
	if st.Cycles < 256 {
		t.Errorf("cycles = %d, want >= 256 (serialized chimes)", st.Cycles)
	}
	cfg.Rules.PairRule = false
	_, st2 := run(t, cfg, src, nil)
	if st2.Chimes != 1 {
		t.Fatalf("pair rule off: chimes = %d, want 1", st2.Chimes)
	}
	if st2.Cycles >= st.Cycles {
		t.Errorf("pair rule off should be faster: %d >= %d", st2.Cycles, st.Cycles)
	}
}

func TestDispatchAfterVectorScalarResult(t *testing.T) {
	// A scalar store of a reduction result waits for the reduction.
	src := `
.data a 2048
.data out 8
	mov #8,vs
	mov #128,s0
	mov s0,vl
	ld.l a(a0),v0
	sum.d v0,s1
	st.l s1,out
`
	cfg := DefaultConfig()
	cfg.RefreshStalls = false
	cpu, st := run(t, cfg, src, func(c *CPU) {
		m := c.Memory()
		a, _ := m.SymbolAddr("a")
		for k := 0; k < 128; k++ {
			m.WriteF64(a+int64(k*8), 2.0)
		}
	})
	m := cpu.Memory()
	out, _ := m.SymbolAddr("out")
	got, _ := m.ReadF64(out)
	if got != 256 {
		t.Errorf("stored sum = %v, want 256", got)
	}
	// The reduction chains off the load and drains at Z=1.35 per element:
	// the dependent store cannot complete before ~190 cycles.
	if st.Cycles < 190 {
		t.Errorf("cycles = %d, want >= 190 (reduction drain)", st.Cycles)
	}
}
