package vm

import (
	"fmt"
	"testing"

	"macs/internal/asm"
)

// memLoop is a memory-hungry loop: iters iterations of four unit-stride
// streams (the worst case for shared banks).
func memLoop(iters int) string {
	return fmt.Sprintf(`
.data a 262144
	mov #8,vs
	mov #128,s1
	mov s1,vl
	mov #%d,s0
L1:
	ld.l a(a0),v0
	ld.l a+2048(a0),v1
	ld.l a+4096(a0),v2
	st.l v0,a+8192(a0)
	add.w #1024,a0
	sub.w #128,s0
	lt.w #0,s0
	jbrs.t L1
`, iters)
}

func soloCycles(t *testing.T, src string) int64 {
	t.Helper()
	p := asm.MustParse(src)
	cpu := New(DefaultConfig())
	if err := cpu.Load(p); err != nil {
		t.Fatal(err)
	}
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st.Cycles
}

func clusterCycles(t *testing.T, srcs []string) []Stats {
	t.Helper()
	cfgs := make([]Config, len(srcs))
	for i := range cfgs {
		cfgs[i] = DefaultConfig()
	}
	cl := NewCluster(cfgs)
	for i, src := range srcs {
		if err := cl.CPU(i).Load(asm.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestClusterSingleCPUNearSolo(t *testing.T) {
	src := memLoop(40)
	solo := soloCycles(t, src)
	stats := clusterCycles(t, []string{src})
	ratio := float64(stats[0].Cycles) / float64(solo)
	// The shared model accumulates bank state across streams where the
	// per-stream probe does not; allow a small difference only.
	if ratio < 0.95 || ratio > 1.15 {
		t.Errorf("1-CPU cluster %d cycles vs solo %d (ratio %.2f)", stats[0].Cycles, solo, ratio)
	}
}

func TestClusterContentionDegradesThroughput(t *testing.T) {
	src := memLoop(40)
	solo := soloCycles(t, src)
	stats := clusterCycles(t, []string{src, src, src, src})
	var worst float64
	for i, st := range stats {
		ratio := float64(st.Cycles) / float64(solo)
		if ratio < 0.98 {
			t.Errorf("cpu %d faster under contention: ratio %.2f", i, ratio)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	if worst < 1.02 {
		t.Errorf("no contention effect at 4 CPUs: worst ratio %.3f", worst)
	}
	// Paper §4.2: same-executable lockstep costs 5-10%, different
	// programs up to ~60%; co-simulated identical programs should land
	// in between, never beyond ~2x.
	if worst > 2.0 {
		t.Errorf("contention ratio %.2f implausibly high", worst)
	}
	t.Logf("4-CPU identical-program degradation: %.1f%%", 100*(worst-1))
}

func TestClusterMixedPrograms(t *testing.T) {
	// A memory-bound and a compute-bound program share the banks: the
	// compute-bound one barely degrades.
	memSrc := memLoop(40)
	fpSrc := `
	mov #128,s1
	mov s1,vl
	mov #40,s0
L1:
	mul.d v0,v1,v2
	add.d v2,v3,v4
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`
	soloFP := soloCycles(t, fpSrc)
	stats := clusterCycles(t, []string{memSrc, fpSrc, memSrc, fpSrc})
	for _, i := range []int{1, 3} {
		ratio := float64(stats[i].Cycles) / float64(soloFP)
		if ratio > 1.05 {
			t.Errorf("compute-bound cpu %d degraded %.2fx by memory traffic it never issues", i, ratio)
		}
	}
}

func TestClusterFunctionalIsolation(t *testing.T) {
	// Each CPU computes on its own memory: results are identical to solo
	// runs even under contention.
	src := `
.data a 4096
.data out 4096
	mov #8,vs
	mov #64,s1
	mov s1,vl
	ld.l a(a0),v0
	add.d v0,v0,v1
	st.l v1,out(a0)
`
	cl := NewCluster([]Config{DefaultConfig(), DefaultConfig()})
	for i := 0; i < 2; i++ {
		if err := cl.CPU(i).Load(asm.MustParse(src)); err != nil {
			t.Fatal(err)
		}
		m := cl.CPU(i).Memory()
		base, _ := m.SymbolAddr("a")
		for k := 0; k < 64; k++ {
			m.WriteF64(base+int64(k*8), float64(k+i*1000))
		}
	}
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m := cl.CPU(i).Memory()
		out, _ := m.SymbolAddr("out")
		for k := 0; k < 64; k++ {
			want := 2 * float64(k+i*1000)
			got, _ := m.ReadF64(out + int64(k*8))
			if got != want {
				t.Fatalf("cpu %d out[%d] = %v, want %v", i, k, got, want)
			}
		}
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := NewCluster(nil).Run(); err == nil {
		t.Error("empty cluster should error")
	}
	cl := NewCluster([]Config{DefaultConfig()})
	if _, err := cl.Run(); err == nil {
		t.Error("cluster with no loaded programs should error")
	}
}

func TestClusterStaggeredCompletion(t *testing.T) {
	// Different lengths: the long program keeps running after the short
	// one retires, and both finish.
	stats := clusterCycles(t, []string{memLoop(5), memLoop(50)})
	if stats[1].Cycles <= stats[0].Cycles {
		t.Errorf("long program (%d) should outlast short (%d)", stats[1].Cycles, stats[0].Cycles)
	}
}
