package vm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"macs/internal/asm"
	"macs/internal/core"
)

// randomLoop builds a random-but-valid vectorized loop body: a mix of
// loads, stores and FP operations over the eight vector registers, with
// data produced before it is consumed.
func randomLoop(r *rand.Rand, nInstr int) string {
	var b strings.Builder
	b.WriteString(".data arr 524288\n")
	b.WriteString("\tmov #8,vs\n\tmov #128,s1\n\tmov s1,vl\n\tmov #12,s0\nL1:\n")
	off := 0
	written := [8]bool{}
	for i := 0; i < nInstr; i++ {
		switch r.Intn(5) {
		case 0, 1: // load
			d := r.Intn(8)
			fmt.Fprintf(&b, "\tld.l arr+%d(a0),v%d\n", off, d)
			written[d] = true
			off += 2048
		case 2: // store something defined
			s := r.Intn(8)
			if !written[s] {
				fmt.Fprintf(&b, "\tld.l arr+%d(a0),v%d\n", off, s)
				written[s] = true
				off += 2048
			}
			fmt.Fprintf(&b, "\tst.l v%d,arr+%d(a0)\n", s, off)
			off += 2048
		case 3: // add-pipe op
			x, y, d := r.Intn(8), r.Intn(8), r.Intn(8)
			op := []string{"add", "sub", "neg"}[r.Intn(3)]
			if op == "neg" {
				fmt.Fprintf(&b, "\tneg.d v%d,v%d\n", x, d)
			} else {
				fmt.Fprintf(&b, "\t%s.d v%d,v%d,v%d\n", op, x, y, d)
			}
			written[d] = true
		case 4: // multiply-pipe op
			x, y, d := r.Intn(8), r.Intn(8), r.Intn(8)
			fmt.Fprintf(&b, "\tmul.d v%d,v%d,v%d\n", x, y, d)
			written[d] = true
		}
	}
	b.WriteString("\tsub.w #1,s0\n\tlt.w #0,s0\n\tjbrs.t L1\n")
	return b.String()
}

// TestSimulatorNeverBeatsMACSBound is the adversarial property at the
// heart of the reproduction: for random programs, steady-state measured
// cycles per iteration can never fall below the MACS bound, because the
// simulator's chime dispatch honors at least the constraints the bound
// charges.
func TestSimulatorNeverBeatsMACSBound(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(12)
		src := randomLoop(r, n)
		p, err := asm.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		loop, ok := asm.InnerVectorLoop(p)
		if !ok {
			continue
		}
		bound := core.MACSBound(loop.Body, 128, core.DefaultRules())

		cfg := DefaultConfig()
		cfg.RefreshStalls = false
		rules := cfg.Rules
		rules.Refresh = false
		boundNoRefresh := core.MACSBound(loop.Body, 128, rules)

		cpu := New(cfg)
		if err := cpu.Load(p); err != nil {
			t.Fatal(err)
		}
		st, err := cpu.Run()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		perIter := float64(st.Cycles) / 12
		if perIter+1 < boundNoRefresh.Cycles {
			t.Errorf("trial %d: measured %.1f cycles/iter below MACS bound %.1f\n%s",
				trial, perIter, boundNoRefresh.Cycles, src)
		}
		_ = bound
	}
}

// TestRandomProgramsChimeAccounting: the simulator's chime count per
// iteration equals the partitioner's chime count (they share the rules).
func TestRandomProgramsChimeAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		src := randomLoop(r, 2+r.Intn(10))
		p, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		loop, _ := asm.InnerVectorLoop(p)
		want := len(core.Partition(loop.Body, core.DefaultRules()))
		cpu := New(DefaultConfig())
		if err := cpu.Load(p); err != nil {
			t.Fatal(err)
		}
		st, err := cpu.Run()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		// 12 iterations; wrap-around may merge or split at most one chime
		// per boundary relative to the static partition.
		lo, hi := int64((want-1)*12), int64((want+1)*12)
		if st.Chimes < lo || st.Chimes > hi {
			t.Errorf("trial %d: %d chimes executed, partitioner says %d/iter\n%s",
				trial, st.Chimes, want, src)
		}
	}
}

// TestRandomProgramsAblationOrdering: disabling chaining can never make a
// random program faster.
func TestRandomProgramsAblationOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		src := randomLoop(r, 3+r.Intn(8))
		run := func(chain bool) int64 {
			p := asm.MustParse(src)
			cfg := DefaultConfig()
			cfg.Rules.Chaining = chain
			cpu := New(cfg)
			if err := cpu.Load(p); err != nil {
				t.Fatal(err)
			}
			st, err := cpu.Run()
			if err != nil {
				t.Fatalf("%v\n%s", err, src)
			}
			return st.Cycles
		}
		with, without := run(true), run(false)
		if without < with {
			t.Errorf("trial %d: no-chaining faster (%d < %d)\n%s", trial, without, with, src)
		}
	}
}

// TestRandomProgramsDeterminism: identical runs produce identical cycle
// counts and results.
func TestRandomProgramsDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	src := randomLoop(r, 10)
	run := func() (int64, float64) {
		p := asm.MustParse(src)
		cpu := New(DefaultConfig())
		if err := cpu.Load(p); err != nil {
			t.Fatal(err)
		}
		st, err := cpu.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, cpu.VElem(3, 17)
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Errorf("nondeterministic: %d/%v vs %d/%v", c1, v1, c2, v2)
	}
}
