package vm

import (
	"fmt"
	"math"

	"macs/internal/isa"
	"macs/internal/mem"
)

// closeChime retires the forming chime: it fixes the gate time before
// which the next chime may not start streaming (the chime-synchronized
// serialization the paper's calibration loops observe) and bounds ASU
// runahead to one chime. split records whether the close was forced by
// the scalar-memory split rule, so gate waits behind this chime can be
// attributed to the split rather than ordinary chime serialization.
func (c *CPU) closeChime(split bool) {
	cur, ok := c.builder.Flush()
	if !ok {
		c.chimeMemStall = 0
		return
	}
	c.stats.Chimes++
	cost := cur.ZMax * float64(c.chimeVL)
	if c.cfg.Rules.Bubbles {
		cost += float64(cur.SumB)
	}
	c.prevGate = c.chimeStart + int64(math.Ceil(cost)) + c.chimeMemStall
	c.prevGateSplit = split
	if c.prevGate > c.maxEvent {
		c.maxEvent = c.prevGate
	}
	c.lastChimeStart = c.chimeStart
	if c.clock < c.lastChimeStart {
		// The ASU cannot run more than one chime ahead of the VP.
		c.clock = c.lastChimeStart
		cause := StallChimeSync
		if split {
			cause = StallChimeSplit
		}
		c.chargeStall(LaneASU, c.clock, cause)
	}
	c.chimeID++
	c.chimeMemStall = 0
	c.chimeVL = 0
}

// execVector dispatches one vector instruction: computes its stream timing
// under the chime model and executes it functionally.
func (c *CPU) execVector(in isa.Instr) error {
	t, ok := isa.VectorTiming(in.Op)
	if !ok {
		return fmt.Errorf("no vector form for %s", in.Op)
	}
	// Vector instructions reading vector-produced scalars wait for them.
	for _, r := range in.Sources() {
		if r.Class == isa.ClassS {
			c.waitScalar(r)
		}
	}
	c.clock += int64(c.cfg.DispatchLat)
	c.chargeIssue(LaneASU, c.clock)
	dispatchDone := c.clock

	vl := c.vl
	if vl <= 0 {
		// A zero-length vector instruction is a no-op taking only its
		// startup overhead.
		c.clock += int64(t.X)
		c.chargeStall(LaneASU, c.clock, StallStartup)
		return nil
	}

	if !c.builder.Fits(in) {
		c.closeChime(false)
	}
	newChime := c.builder.Empty()
	c.builder.Add(in)
	if vl > c.chimeVL {
		c.chimeVL = vl
	}

	// Stream entry time S, with each constraint kept as an attribution
	// checkpoint: after S is fixed, the pipe's wait [frontier, S] is
	// attributed chronologically across the checkpoints in ascending
	// order, so each cause is charged exactly the span it was binding
	// beyond all earlier constraints (no double counting, exact
	// conservation).
	type waitPoint struct {
		t     int64
		cause StallCause
	}
	var wbuf [6]waitPoint
	waits := wbuf[:0]

	// The tailgating bubble applies only when the instruction actually
	// follows another down the same pipe.
	s := dispatchDone + int64(t.X)
	waits = append(waits,
		waitPoint{dispatchDone, StallScalar},
		waitPoint{s, StallStartup})
	pipe := in.Pipe()
	lane := int(pipe)
	pf := c.pipeFree[pipe]
	if c.cfg.Rules.Bubbles && c.pipeUsed[pipe] {
		pf += int64(t.B)
		waits = append(waits, waitPoint{pf, StallBubble})
	}
	if pf > s {
		s = pf
	}
	c.pipeUsed[pipe] = true
	gateCause := StallChimeSync
	if c.prevGateSplit {
		gateCause = StallChimeSplit
	}
	if newChime {
		waits = append(waits, waitPoint{c.prevGate, gateCause})
		if c.prevGate > s {
			s = c.prevGate
		}
	} else {
		waits = append(waits, waitPoint{c.chimeStart, StallChimeSync})
		if c.chimeStart > s {
			s = c.chimeStart
		}
	}

	// Data dependences on vector registers.
	var chainT int64
	for _, r := range in.VectorReads() {
		w := c.vw[r.N]
		if !w.valid {
			continue
		}
		if w.chime == c.chimeID && c.cfg.Rules.Chaining {
			// Chaining: element k is consumed no earlier than the
			// producer writes it (Figure 2): S >= S_p + Y_p, plus a rate
			// correction when the producer streams slower.
			dep := w.start + int64(w.y)
			if w.z > t.Z {
				dep += int64(math.Ceil((w.z - t.Z) * float64(vl-1)))
			}
			if dep > chainT {
				chainT = dep
			}
			if dep > s {
				s = dep
			}
		} else if w.fin > s {
			// Cross-chime (or unchained) consumers wait for completion.
			chainT = w.fin
			s = w.fin
		}
	}
	if chainT > 0 {
		waits = append(waits, waitPoint{chainT, StallChain})
	}
	// Write-after-write needs no explicit constraint: streams are issued
	// in order and the pipe input constraint keeps a later writer a full
	// stream behind an earlier same-pipe writer, which is exactly how the
	// paper's calibration loops reuse one register across iterations.

	// Memory port and stream stalls.
	var st memStall
	var stall int64
	var ea int64
	if in.IsMemory() {
		var err error
		ea, err = c.vectorEA(in)
		if err != nil {
			return err
		}
		if c.scalarPortFree > s {
			c.stats.PortConflicts++
		}
		waits = append(waits, waitPoint{c.scalarPortFree, StallPortArb})
		if c.scalarPortFree > s {
			s = c.scalarPortFree
		}
		st = c.memStreamStall(s, ea, vl)
		stall = st.total()
		c.chimeMemStall += stall
		c.stats.MemStalls += stall
	}

	// Attribute the pipe's pre-stream wait, then its streaming interval.
	// Stable insertion sort: waits holds at most six checkpoints, and the
	// sort.Slice closure forced the buffer to escape — a heap allocation
	// per vector instruction. Same comparison, same tie order.
	for i := 1; i < len(waits); i++ {
		for j := i; j > 0 && waits[j].t < waits[j-1].t; j-- {
			waits[j], waits[j-1] = waits[j-1], waits[j]
		}
	}
	for _, w := range waits {
		wt := w.t
		if wt > s {
			wt = s
		}
		c.chargeStall(lane, wt, w.cause)
	}

	if newChime {
		c.chimeStart = s
	}

	streamIn := int64(math.Ceil(t.Z * float64(vl)))
	streamEnd := s + streamIn
	c.chargeIssue(lane, streamEnd)
	c.chargeStall(lane, streamEnd+st.bank, StallBankConflict)
	c.chargeStall(lane, streamEnd+st.bank+st.refresh, StallRefresh)
	c.chargeStall(lane, streamEnd+stall, StallContention)
	c.pipeFree[pipe] = s + streamIn + stall
	c.stats.PipeBusy[pipe] += streamIn + stall
	fin := s + int64(t.Y) + streamIn + stall
	if fin > c.maxEvent {
		c.maxEvent = fin
	}
	if in.IsMemory() && fin > c.vectorPortFree {
		c.vectorPortFree = fin
	}
	if d, ok := in.VectorWrite(); ok {
		c.vw[d.N] = vwriter{valid: true, chime: c.chimeID, start: s, y: t.Y, z: t.Z, fin: fin}
	}
	if in.Op == isa.OpSum {
		// Reduction result lands in a scalar register when the stream
		// drains.
		if d, ok := in.Dst(); ok && d.Class == isa.ClassS {
			c.sReady[d.N] = fin
		}
	}

	if c.cfg.Trace || c.ring != nil {
		ev := TraceEvent{
			Instr:       in,
			Chime:       c.chimeID + 1,
			Dispatch:    dispatchDone,
			Start:       s,
			FirstResult: s + int64(t.Y),
			Finish:      fin,
			Stall:       stall,
			VL:          vl,
		}
		if c.cfg.Trace {
			c.trace = append(c.trace, ev)
		} else {
			c.ring.push(ev)
		}
	}

	return c.execVectorFunc(in, vl, ea)
}

// vectorEA resolves the memory operand of a vector load or store.
func (c *CPU) vectorEA(in isa.Instr) (int64, error) {
	for _, o := range in.Ops {
		if o.Kind == isa.KindMem {
			return c.effAddr(o)
		}
	}
	return 0, fmt.Errorf("vector memory op without memory operand")
}

// memStall decomposes one vector stream's stall cycles by mechanism.
type memStall struct {
	bank       int64 // bank-busy conflicts (incl. shared-bank contention)
	refresh    int64 // refresh windows
	contention int64 // multi-process memory slowdown surcharge
}

func (m memStall) total() int64 { return m.bank + m.refresh + m.contention }

// memStreamStall returns the stall cycles a vector memory stream suffers
// from bank conflicts, refresh, and multi-process contention, decomposed
// by cause. In cluster mode the stream runs against the banks shared with
// the other CPUs (mutating their state) and the whole shared-bank wait is
// booked as bank conflict; standalone it probes zero-state bank timing —
// through the memoized stall table on the fast path, or a fresh naive
// bank walk when Config.NaiveMemPath keeps the reference implementation
// in charge (the two are bit-equivalent).
func (c *CPU) memStreamStall(start, base int64, vl int) memStall {
	var st memStall
	stride := c.vs
	if !c.cfg.BankConflicts {
		stride = isa.WordBytes // unit stride never conflicts
	}
	switch {
	case c.sharedBank != nil:
		st.bank = c.sharedBank.Stream(start, base, stride, vl)
	case c.stallTab != nil:
		st.bank, st.refresh = c.stallTab.StreamStallParts(start, base, stride, vl)
	case c.cfg.BankConflicts || c.cfg.RefreshStalls:
		cfg := c.bankCfg
		cfg.RefreshEnabled = c.cfg.RefreshStalls
		bm := mem.NewBankModel(cfg)
		st.bank, st.refresh = bm.StreamStallParts(start, base, stride, vl)
	}
	if c.cfg.MemSlowdown > 1 {
		st.contention = int64(math.Ceil((c.cfg.MemSlowdown - 1) * float64(vl)))
	}
	return st
}

// vecOperand returns an element accessor for a vector-op operand:
// vector registers index per element, scalar registers and immediates
// broadcast.
func (c *CPU) vecOperand(o isa.Operand) (func(k int) float64, error) {
	switch o.Kind {
	case isa.KindReg:
		switch o.Reg.Class {
		case isa.ClassV:
			vec := c.v[o.Reg.N]
			return func(k int) float64 { return vec[k] }, nil
		case isa.ClassS:
			val := math.Float64frombits(c.s[o.Reg.N])
			return func(int) float64 { return val }, nil
		}
	case isa.KindImm:
		val := float64(o.Imm)
		return func(int) float64 { return val }, nil
	}
	return nil, fmt.Errorf("bad vector operand %s", o)
}

// execVectorFunc performs the functional (value) semantics of a vector
// instruction over vl elements.
func (c *CPU) execVectorFunc(in isa.Instr, vl int, ea int64) error {
	switch in.Op {
	case isa.OpLd:
		dst := in.Ops[len(in.Ops)-1].Reg
		if dst.Class != isa.ClassV {
			return fmt.Errorf("vector load into %s", dst)
		}
		for k := 0; k < vl; k++ {
			v, err := c.mem.ReadF64(ea + int64(k)*c.vs)
			if err != nil {
				return err
			}
			c.v[dst.N][k] = v
		}
		c.stats.VectorElems += int64(vl)
		return nil
	case isa.OpSt:
		src := in.Ops[0].Reg
		if src.Class != isa.ClassV {
			return fmt.Errorf("vector store from %s", src)
		}
		for k := 0; k < vl; k++ {
			if err := c.mem.WriteF64(ea+int64(k)*c.vs, c.v[src.N][k]); err != nil {
				return err
			}
		}
		c.stats.VectorElems += int64(vl)
		return nil
	case isa.OpSum:
		src := in.Ops[0].Reg
		if src.Class != isa.ClassV || len(in.Ops) != 2 {
			return fmt.Errorf("sum needs v,s operands")
		}
		var acc float64
		for k := 0; k < vl; k++ {
			acc += c.v[src.N][k]
		}
		c.stats.VectorFlops += int64(vl)
		return c.setFloatReg(in.Ops[1].Reg, acc)
	case isa.OpNeg, isa.OpMov:
		if len(in.Ops) != 2 {
			return fmt.Errorf("%s needs 2 operands", in.Op)
		}
		src, err := c.vecOperand(in.Ops[0])
		if err != nil {
			return err
		}
		dst := in.Ops[1].Reg
		if dst.Class != isa.ClassV {
			return fmt.Errorf("vector %s into %s", in.Op, dst)
		}
		for k := 0; k < vl; k++ {
			v := src(k)
			if in.Op == isa.OpNeg {
				v = -v
			}
			c.v[dst.N][k] = v
		}
		if in.Op == isa.OpNeg {
			c.stats.VectorFlops += int64(vl)
		}
		return nil
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv:
		if len(in.Ops) != 3 {
			return fmt.Errorf("%s needs 3 operands", in.Op)
		}
		x, err := c.vecOperand(in.Ops[0])
		if err != nil {
			return err
		}
		y, err := c.vecOperand(in.Ops[1])
		if err != nil {
			return err
		}
		dst := in.Ops[2].Reg
		if dst.Class != isa.ClassV {
			return fmt.Errorf("vector %s into %s", in.Op, dst)
		}
		out := c.vscratch[:vl]
		for k := 0; k < vl; k++ {
			a, b := x(k), y(k)
			switch in.Op {
			case isa.OpAdd:
				out[k] = a + b
			case isa.OpSub:
				out[k] = a - b
			case isa.OpMul:
				out[k] = a * b
			case isa.OpDiv:
				out[k] = a / b
			}
		}
		copy(c.v[dst.N], out)
		c.stats.VectorFlops += int64(vl)
		return nil
	case isa.OpSqrt:
		if len(in.Ops) != 2 {
			return fmt.Errorf("sqrt needs 2 operands")
		}
		src, err := c.vecOperand(in.Ops[0])
		if err != nil {
			return err
		}
		dst := in.Ops[1].Reg
		if dst.Class != isa.ClassV {
			return fmt.Errorf("vector sqrt into %s", dst)
		}
		for k := 0; k < vl; k++ {
			c.v[dst.N][k] = math.Sqrt(src(k))
		}
		c.stats.VectorFlops += int64(vl)
		return nil
	}
	return fmt.Errorf("unimplemented vector op %s", in.Op)
}
