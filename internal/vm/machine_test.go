package vm

import (
	"encoding/json"
	"reflect"
	"testing"

	"macs/internal/mem"
)

// TestFingerprintDistinguishesEveryField flips each Machine field in turn
// (via reflection, so a field added without updating this test still gets
// covered) and requires the fingerprint to change. A field the
// fingerprint ignores would let two different machines share cached
// results.
func TestFingerprintDistinguishesEveryField(t *testing.T) {
	base := DefaultMachine()
	fp := base.Fingerprint()
	if fp2 := DefaultMachine().Fingerprint(); fp2 != fp {
		t.Fatalf("fingerprint not deterministic: %s vs %s", fp, fp2)
	}

	perturb := func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Int:
			v.SetInt(v.Int() + 1)
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.Float64:
			v.SetFloat(v.Float() + 0.5)
		case reflect.Struct:
			// Flip the struct's first bool/int field (Rules).
			for i := 0; i < v.NumField(); i++ {
				f := v.Field(i)
				if f.Kind() == reflect.Bool {
					f.SetBool(!f.Bool())
					return
				}
			}
			panic("no perturbable field in nested struct")
		default:
			panic("unhandled kind " + v.Kind().String())
		}
	}

	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		m := base
		perturb(reflect.ValueOf(&m).Elem().Field(i))
		if m == base {
			t.Fatalf("field %s: perturbation had no effect", rt.Field(i).Name)
		}
		if m.Fingerprint() == fp {
			t.Errorf("field %s not covered by Fingerprint", rt.Field(i).Name)
		}
	}
}

// TestFingerprintStable pins the default machine's fingerprint. Changing
// it invalidates every persisted cache entry, so it must only move when
// the machine description genuinely changes.
func TestFingerprintStable(t *testing.T) {
	const want = 13 // fields in Machine; update alongside Fingerprint
	if got := reflect.TypeOf(Machine{}).NumField(); got != want {
		t.Fatalf("Machine has %d fields, test expects %d — update Fingerprint and this pin", got, want)
	}
	fp := DefaultMachine().Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}
}

func TestBankConfigDefaults(t *testing.T) {
	// A zero-geometry machine keeps the C-240 memory system.
	m := Machine{RefreshStalls: true}
	got := m.BankConfig()
	want := mem.DefaultConfig()
	want.RefreshEnabled = true
	if got != want {
		t.Fatalf("zero-geometry BankConfig = %+v, want %+v", got, want)
	}

	// Set fields override; unset fields still fall back.
	m = Machine{Banks: 16, RefreshPeriod: 500}
	got = m.BankConfig()
	if got.Banks != 16 || got.RefreshPeriod != 500 {
		t.Fatalf("overrides not applied: %+v", got)
	}
	if got.BankCycle != mem.DefaultConfig().BankCycle || got.RefreshLen != mem.DefaultConfig().RefreshLen {
		t.Fatalf("fallbacks not applied: %+v", got)
	}
	if got.RefreshEnabled {
		t.Fatalf("RefreshEnabled should track RefreshStalls")
	}
}

// TestConfigJSONFlat: embedding Machine in Config must keep the wire
// shape flat — clients set "VLMax" or "Banks" at the top level, exactly
// as before the machine split.
func TestConfigJSONFlat(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"VLMax":64,"Banks":16,"MemSize":1024,"Trace":true}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.VLMax != 64 || cfg.Banks != 16 || cfg.MemSize != 1024 || !cfg.Trace {
		t.Fatalf("flat decode failed: %+v", cfg)
	}
	out, err := json.Marshal(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(out, &top); err != nil {
		t.Fatal(err)
	}
	if _, nested := top["Machine"]; nested {
		t.Fatalf("Config marshals with a nested Machine object: %s", out)
	}
	if _, ok := top["VLMax"]; !ok {
		t.Fatalf("promoted fields missing from wire shape: %s", out)
	}
}

func TestWithMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	m := DefaultMachine()
	m.Banks = 17
	got := cfg.WithMachine(m)
	if got.Banks != 17 || !got.Trace || got.MemSize != cfg.MemSize {
		t.Fatalf("WithMachine = %+v", got)
	}
}
