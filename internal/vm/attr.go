// Stall attribution (paper §4.4, made measurable): during simulation every
// lane of the machine — the ASU plus the three VP function pipes — has each
// cycle of the run classified as either issue (the lane doing its own work)
// or one of a fixed taxonomy of stall causes. The ledger is exact by
// construction: each lane's accounted frontier only ever advances, every
// advance is attributed to exactly one bucket, and at the end of the run
// each lane is topped up to the final cycle count with StallDrain. The
// invariant Issue + sum(Stalls) == Stats.Cycles holds per lane
// (Attribution.Conserved), which is what makes the attribution trustworthy
// as an explanation of where the gap between bound and measurement went.
package vm

import (
	"encoding/json"
	"fmt"

	"macs/internal/isa"
)

// StallCause classifies one non-issue cycle of a machine lane.
//
// macsvet:exhaustive
type StallCause int

// The attribution taxonomy. Pipe lanes use all of them; the ASU lane uses
// the dependence/serialization causes (chain wait, chime sync/split, port
// arbitration) plus drain.
const (
	// StallStartup is vector startup overhead: the X cycles before a
	// stream enters its pipe (and, for a zero-length vector instruction,
	// the whole instruction).
	StallStartup StallCause = iota
	// StallBubble is the tailgating bubble B between successive streams
	// down one pipe (the handshaking restart penalty).
	StallBubble
	// StallChain is an operand-dependence wait: a consumer waiting for a
	// producer's first element (chaining) or completion (cross-chime), or
	// the ASU waiting for a vector-produced scalar.
	StallChain
	// StallChimeSync is time spent waiting behind the previous chime's
	// gate — the chime-synchronized serialization of the VP.
	StallChimeSync
	// StallChimeSplit is a gate wait behind a chime that was closed early
	// by the scalar-memory split rule (the LFK8 signature).
	StallChimeSplit
	// StallBankConflict is bank-busy wait inside a vector memory stream
	// (including shared-bank contention in cluster mode).
	StallBankConflict
	// StallRefresh is wait on memory refresh windows.
	StallRefresh
	// StallContention is the multi-process memory slowdown surcharge
	// (Config.MemSlowdown > 1).
	StallContention
	// StallPortArb is CPU memory-port arbitration: scalar and vector
	// accesses serializing on the single port.
	StallPortArb
	// StallScalar is scalar (ASU) work a pipe sat idle behind before its
	// next vector instruction was dispatched.
	StallScalar
	// StallDrain is lane idle time with no work pending: trailing drain
	// at the end of the run, or a pipe the program never exercises.
	StallDrain

	// NumStallCauses is the size of the taxonomy.
	NumStallCauses
)

var stallNames = [NumStallCauses]string{
	"startup", "bubble", "chain-wait", "chime-sync", "chime-split",
	"bank-conflict", "refresh", "contention", "port-arb", "scalar", "drain",
}

func (c StallCause) String() string {
	if c < 0 || c >= NumStallCauses {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return stallNames[c]
}

// StallCauses lists the taxonomy in declaration order.
func StallCauses() []StallCause {
	out := make([]StallCause, NumStallCauses)
	for i := range out {
		out[i] = StallCause(i)
	}
	return out
}

// Attribution lanes: index 0 is the ASU; indices 1..3 are the VP pipes and
// share isa.Pipe numbering (load/store, add, multiply).
const (
	LaneASU  = 0
	NumLanes = 4
)

// LaneName returns the display name of an attribution lane.
func LaneName(lane int) string {
	if lane == LaneASU {
		return "asu"
	}
	return isa.Pipe(lane).String()
}

// LaneAttribution is one lane's cycle ledger.
type LaneAttribution struct {
	// Issue counts cycles the lane spent doing its own work: streaming
	// elements (pipes) or executing scalar instructions (ASU).
	Issue int64
	// Stalls counts non-issue cycles by cause.
	Stalls [NumStallCauses]int64
}

// Total returns all accounted cycles of the lane (== Stats.Cycles when the
// ledger is conserved).
func (l LaneAttribution) Total() int64 {
	t := l.Issue
	for _, v := range l.Stalls {
		t += v
	}
	return t
}

// StallTotal returns the lane's non-issue cycles.
func (l LaneAttribution) StallTotal() int64 { return l.Total() - l.Issue }

// Attribution is the full per-lane ledger of one run.
type Attribution struct {
	Lanes [NumLanes]LaneAttribution
}

// Empty reports whether nothing has been attributed.
func (a Attribution) Empty() bool {
	for _, l := range a.Lanes {
		if l.Total() != 0 {
			return false
		}
	}
	return true
}

// Cause sums one stall cause across all lanes.
func (a Attribution) Cause(c StallCause) int64 {
	var sum int64
	for _, l := range a.Lanes {
		sum += l.Stalls[c]
	}
	return sum
}

// IssueCycles sums issue cycles across all lanes.
func (a Attribution) IssueCycles() int64 {
	var sum int64
	for _, l := range a.Lanes {
		sum += l.Issue
	}
	return sum
}

// Totals returns the lane-summed ledger keyed by cause name, with issue
// cycles under "issue". Zero buckets are omitted.
func (a Attribution) Totals() map[string]int64 {
	out := make(map[string]int64, NumStallCauses+1)
	if v := a.IssueCycles(); v != 0 {
		out["issue"] = v
	}
	for c := StallCause(0); c < NumStallCauses; c++ {
		if v := a.Cause(c); v != 0 {
			out[c.String()] = v
		}
	}
	return out
}

// Share returns a cause's fraction of all accounted lane-cycles
// (NumLanes × Stats.Cycles for a conserved ledger).
func (a Attribution) Share(c StallCause) float64 {
	var total int64
	for _, l := range a.Lanes {
		total += l.Total()
	}
	if total == 0 {
		return 0
	}
	return float64(a.Cause(c)) / float64(total)
}

// Conserved verifies the ledger invariant: every lane's issue plus
// attributed stall cycles must exactly equal the run's total cycles. It
// returns nil when the ledger balances and a descriptive error naming the
// first unbalanced lane otherwise.
func (a Attribution) Conserved(totalCycles int64) error {
	for lane := 0; lane < NumLanes; lane++ {
		if got := a.Lanes[lane].Total(); got != totalCycles {
			return fmt.Errorf("vm: attribution not conserved on lane %s: issue %d + stalls %d = %d, want %d cycles",
				LaneName(lane), a.Lanes[lane].Issue, a.Lanes[lane].StallTotal(), got, totalCycles)
		}
	}
	return nil
}

// laneAttrJSON is the wire shape of one lane: named buckets instead of a
// positional array, so the JSON survives taxonomy reordering.
type laneAttrJSON struct {
	Issue  int64            `json:"issue"`
	Stalls map[string]int64 `json:"stalls,omitempty"`
}

// MarshalJSON renders the ledger as an object keyed by lane name with
// named stall buckets (zero buckets omitted).
func (a Attribution) MarshalJSON() ([]byte, error) {
	out := make(map[string]laneAttrJSON, NumLanes)
	for lane := 0; lane < NumLanes; lane++ {
		l := a.Lanes[lane]
		j := laneAttrJSON{Issue: l.Issue}
		for c, v := range l.Stalls {
			if v != 0 {
				if j.Stalls == nil {
					j.Stalls = make(map[string]int64)
				}
				j.Stalls[StallCause(c).String()] = v
			}
		}
		out[LaneName(lane)] = j
	}
	return json.Marshal(out)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (a *Attribution) UnmarshalJSON(data []byte) error {
	var in map[string]laneAttrJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*a = Attribution{}
	for lane := 0; lane < NumLanes; lane++ {
		j, ok := in[LaneName(lane)]
		if !ok {
			continue
		}
		a.Lanes[lane].Issue = j.Issue
		for name, v := range j.Stalls {
			c, ok := stallByName(name)
			if !ok {
				return fmt.Errorf("vm: unknown stall cause %q", name)
			}
			a.Lanes[lane].Stalls[c] = v
		}
	}
	return nil
}

func stallByName(name string) (StallCause, bool) {
	for c, n := range stallNames {
		if n == name {
			return StallCause(c), true
		}
	}
	return 0, false
}

// chargeStall advances a lane's accounted frontier to t, attributing the
// advance to cause; it is a no-op when t is not ahead of the frontier, so
// overlapped waits are never double-counted.
func (c *CPU) chargeStall(lane int, t int64, cause StallCause) {
	if t > c.laneTime[lane] {
		c.stats.Attr.Lanes[lane].Stalls[cause] += t - c.laneTime[lane]
		c.laneTime[lane] = t
	}
}

// chargeIssue advances a lane's accounted frontier to t as productive
// issue cycles.
func (c *CPU) chargeIssue(lane int, t int64) {
	if t > c.laneTime[lane] {
		c.stats.Attr.Lanes[lane].Issue += t - c.laneTime[lane]
		c.laneTime[lane] = t
	}
}

// tickASU advances the ASU clock by n busy cycles and books them as issue.
func (c *CPU) tickASU(n int64) {
	c.clock += n
	c.chargeIssue(LaneASU, c.clock)
}
