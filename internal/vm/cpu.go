package vm

import (
	"fmt"
	"math"

	"macs/internal/asm"
	"macs/internal/core"
	"macs/internal/isa"
	"macs/internal/mem"
)

// vwriter records the in-flight producer of a vector register for the
// chaining and completion constraints.
type vwriter struct {
	valid bool
	chime int64
	start int64
	y     int
	z     float64
	fin   int64
}

// CPU is one simulated C-240 processor with its timing state. Create with
// New, load a program with Load, execute with Run.
type CPU struct {
	cfg  Config
	mem  *mem.Memory
	prog *asm.Program

	// Architectural state.
	a  [isa.NumARegs]int64
	s  [isa.NumSRegs]uint64
	v  [isa.NumVRegs][]float64
	vl int
	vs int64
	tf bool
	pc int

	// Timing state.
	clock          int64
	pipeFree       [4]int64 // indexed by isa.Pipe (PipeNone unused)
	pipeUsed       [4]bool
	vw             [isa.NumVRegs]vwriter
	sReady         [isa.NumSRegs]int64
	vectorPortFree int64
	scalarPortFree int64
	builder        *core.ChimeBuilder
	chimeID        int64
	chimeStart     int64
	chimeMemStall  int64
	chimeVL        int
	lastChimeStart int64
	prevGate       int64
	maxEvent       int64
	bankCfg        mem.Config

	sharedBank BankReserver
	halted     bool
	finished   bool

	// stallTab memoizes vector-stream stall queries across streams and —
	// because Reset keeps it — across pooled runs. Nil when the config
	// models neither bank conflicts nor refresh, or when NaiveMemPath
	// keeps the reference walk in charge.
	stallTab *mem.StallTable
	// vscratch is the vector ALU staging buffer (results are computed here
	// before being copied to the destination register, so aliased operands
	// read consistent values without a per-instruction allocation).
	vscratch []float64

	stats Stats
	trace []TraceEvent
	ring  *traceRing

	// Attribution state: per-lane accounted frontiers (see attr.go) and
	// whether the chime that set prevGate was closed by the split rule.
	laneTime      [NumLanes]int64
	prevGateSplit bool
}

// New creates a CPU with the given configuration.
func New(cfg Config) *CPU {
	c := &CPU{
		cfg:     cfg,
		mem:     mem.New(cfg.MemSize),
		builder: core.NewChimeBuilder(cfg.Rules),
		vs:      isa.WordBytes,
		vl:      cfg.VLMax,
	}
	for i := range c.v {
		c.v[i] = make([]float64, cfg.VLMax)
	}
	c.vscratch = make([]float64, cfg.VLMax)
	c.bankCfg = cfg.BankConfig()
	if (cfg.BankConflicts || cfg.RefreshStalls) && !cfg.NaiveMemPath {
		c.stallTab = mem.NewStallTable(c.bankCfg)
	}
	if !cfg.Trace && cfg.TraceRing > 0 {
		c.ring = newTraceRing(cfg.TraceRing)
	}
	return c
}

// Reset returns the CPU to its freshly-created state without reallocating
// its memory image, vector registers or chime builder, so a pooled
// simulator can run back-to-back programs with per-run cost proportional
// to what the previous run touched. The memoized stream-stall table
// survives the reset — its answers depend only on the configuration, and
// keeping it warm is much of the point of pooling. Any shared bank model
// is detached; re-attach with SetSharedBank if the next run co-simulates.
func (c *CPU) Reset() {
	c.mem.Reset()
	c.prog = nil
	c.a = [isa.NumARegs]int64{}
	c.s = [isa.NumSRegs]uint64{}
	for i := range c.v {
		clear(c.v[i])
	}
	c.vl = c.cfg.VLMax
	c.vs = isa.WordBytes
	c.tf = false
	c.pc = 0

	c.clock = 0
	c.pipeFree = [4]int64{}
	c.pipeUsed = [4]bool{}
	c.vw = [isa.NumVRegs]vwriter{}
	c.sReady = [isa.NumSRegs]int64{}
	c.vectorPortFree = 0
	c.scalarPortFree = 0
	c.builder.Reset()
	c.chimeID = 0
	c.chimeStart = 0
	c.chimeMemStall = 0
	c.chimeVL = 0
	c.lastChimeStart = 0
	c.prevGate = 0
	c.maxEvent = 0

	c.sharedBank = nil
	c.halted = false
	c.finished = false
	c.stats = Stats{}
	// Returned trace slices must survive the next run: drop, don't truncate.
	c.trace = nil
	if c.ring != nil {
		c.ring.reset()
	}
	c.laneTime = [NumLanes]int64{}
	c.prevGateSplit = false
}

// Memory returns the CPU's functional memory (for priming inputs and
// reading results in tests and harnesses).
func (c *CPU) Memory() *mem.Memory { return c.mem }

// SetS primes a scalar register with a float value; SetA primes an address
// register; SetSInt primes a scalar register with an integer.
func (c *CPU) SetS(n int, v float64)  { c.s[n] = math.Float64bits(v) }
func (c *CPU) SetSInt(n int, v int64) { c.s[n] = uint64(v) }
func (c *CPU) SetA(n int, v int64)    { c.a[n] = v }

// SFloat and AVal read registers after a run.
func (c *CPU) SFloat(n int) float64 { return math.Float64frombits(c.s[n]) }
func (c *CPU) SInt(n int) int64     { return int64(c.s[n]) }
func (c *CPU) AVal(n int) int64     { return c.a[n] }

// VElem reads one vector register element.
func (c *CPU) VElem(n, k int) float64 { return c.v[n][k] }

// SetV primes a vector register with values (for calibration loops and
// tests); remaining elements are zeroed.
func (c *CPU) SetV(n int, vals []float64) {
	for k := range c.v[n] {
		if k < len(vals) {
			c.v[n][k] = vals[k]
		} else {
			c.v[n][k] = 0
		}
	}
}

// Load resolves the program's data symbols into memory and prepares
// execution at instruction 0 (or label "main" if present).
func (c *CPU) Load(p *asm.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.prog = p
	for _, d := range p.Data {
		addr, err := c.mem.Alloc(d.Name, d.Size)
		if err != nil {
			return err
		}
		for i, v := range d.Init {
			if err := c.mem.WriteF64(addr+int64(i*8), v); err != nil {
				return err
			}
		}
	}
	c.pc = 0
	if idx, ok := p.Labels["main"]; ok {
		c.pc = idx
	}
	return nil
}

// Trace returns the recorded vector timing events (empty unless
// Config.Trace was set).
func (c *CPU) Trace() []TraceEvent { return c.trace }

// Stats returns statistics accumulated so far.
func (c *CPU) Stats() Stats { return c.stats }

// Step executes one instruction. It returns done=true when the program
// has halted or fallen off the end (finish accounting is applied then).
func (c *CPU) Step() (done bool, err error) {
	if c.prog == nil {
		return true, fmt.Errorf("vm: no program loaded")
	}
	if c.halted || c.pc < 0 || c.pc >= len(c.prog.Instrs) {
		c.finish()
		return true, nil
	}
	in := c.prog.Instrs[c.pc]
	c.stats.Instrs++
	if c.stats.Instrs > c.cfg.MaxInstrs || c.clock > c.cfg.MaxCycles {
		return true, fmt.Errorf("vm: execution limit exceeded at pc=%d (%s)", c.pc, in)
	}
	var jumped bool
	if in.IsVector() {
		c.stats.VectorInstrs++
		err = c.execVector(in)
	} else {
		c.stats.ScalarInstrs++
		if in.Op == isa.OpHalt {
			c.halted = true
			c.finish()
			return true, nil
		}
		jumped, err = c.execScalar(in)
	}
	if err != nil {
		return true, fmt.Errorf("vm: pc=%d (%s): %w", c.pc, in, err)
	}
	if !jumped {
		c.pc++
	}
	if c.pc < 0 || c.pc >= len(c.prog.Instrs) {
		c.halted = true
		c.finish()
		return true, nil
	}
	return false, nil
}

func (c *CPU) finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.closeChime(false)
	c.stats.Cycles = maxI64(c.clock, c.maxEvent, c.prevGate)
	// Conservation: top every lane's ledger up to the final cycle count.
	// What remains unaccounted at this point is drain — trailing time a
	// lane spent with no work left (or, for an unused pipe, the whole
	// run).
	for lane := 0; lane < NumLanes; lane++ {
		c.chargeStall(lane, c.stats.Cycles, StallDrain)
	}
}

// Clock returns the ASU's current time in cycles (advances as the
// program executes; used by the cluster scheduler).
func (c *CPU) Clock() int64 { return c.clock }

// horizon is the time around which this CPU's next vector stream will
// enter the shared memory: its chime gate runs ahead of the ASU clock.
// The cluster scheduler orders CPUs by this so bank reservations happen
// in (approximately) global stream-time order.
func (c *CPU) horizon() int64 { return maxI64(c.clock, c.prevGate, c.chimeStart) }

// BankReserver is the timing interface of a shared memory system:
// reserving an n-element stream returns its stall cycles.
type BankReserver interface {
	Stream(start, base, strideBytes int64, n int) int64
}

// SetSharedBank attaches a shared memory bank model: vector memory
// streams then contend with other CPUs using the same model.
func (c *CPU) SetSharedBank(b BankReserver) { c.sharedBank = b }

// Run executes the loaded program until it halts or falls off the end and
// returns the run statistics.
func (c *CPU) Run() (Stats, error) {
	for {
		done, err := c.Step()
		if err != nil {
			return c.stats, err
		}
		if done {
			return c.stats, nil
		}
	}
}

// effAddr computes a memory operand's effective address.
func (c *CPU) effAddr(o isa.Operand) (int64, error) {
	addr := o.Disp
	if o.Sym != "" {
		base, ok := c.mem.SymbolAddr(o.Sym)
		if !ok {
			return 0, fmt.Errorf("undefined symbol %q", o.Sym)
		}
		addr += base
	}
	if o.Base.Class == isa.ClassA {
		addr += c.a[o.Base.N]
	}
	return addr, nil
}

// intVal reads an operand as an integer (for .w arithmetic, moves, VL/VS).
func (c *CPU) intVal(o isa.Operand) (int64, error) {
	switch o.Kind {
	case isa.KindImm:
		return o.Imm, nil
	case isa.KindReg:
		switch o.Reg.Class {
		case isa.ClassA:
			return c.a[o.Reg.N], nil
		case isa.ClassS:
			c.waitScalar(o.Reg)
			return int64(c.s[o.Reg.N]), nil
		case isa.ClassVL:
			return int64(c.vl), nil
		case isa.ClassVS:
			return c.vs, nil
		}
	}
	return 0, fmt.Errorf("operand %s is not an integer source", o)
}

// floatVal reads an operand as a float (for .d arithmetic).
func (c *CPU) floatVal(o isa.Operand) (float64, error) {
	switch o.Kind {
	case isa.KindImm:
		return float64(o.Imm), nil
	case isa.KindReg:
		if o.Reg.Class == isa.ClassS {
			c.waitScalar(o.Reg)
			return math.Float64frombits(c.s[o.Reg.N]), nil
		}
	}
	return 0, fmt.Errorf("operand %s is not a float source", o)
}

// waitScalar delays the ASU until a vector-produced scalar is available.
func (c *CPU) waitScalar(r isa.Reg) {
	if r.Class == isa.ClassS && c.sReady[r.N] > c.clock {
		c.clock = c.sReady[r.N]
		c.chargeStall(LaneASU, c.clock, StallChain)
	}
}

func (c *CPU) setIntReg(r isa.Reg, v int64) error {
	switch r.Class {
	case isa.ClassA:
		c.a[r.N] = v
	case isa.ClassS:
		c.s[r.N] = uint64(v)
	case isa.ClassVL:
		c.vl = int(clampI64(v, 0, int64(c.cfg.VLMax)))
	case isa.ClassVS:
		c.vs = v
	default:
		return fmt.Errorf("cannot write integer to %s", r)
	}
	return nil
}

func (c *CPU) setFloatReg(r isa.Reg, v float64) error {
	if r.Class != isa.ClassS {
		return fmt.Errorf("cannot write float to %s", r)
	}
	c.s[r.N] = math.Float64bits(v)
	return nil
}

// execScalar executes one ASU instruction, advancing the ASU clock by its
// latency. It returns jumped=true when control transferred.
func (c *CPU) execScalar(in isa.Instr) (jumped bool, err error) {
	switch in.Op {
	case isa.OpNop:
		c.tickASU(int64(c.cfg.ScalarOpLat))
		return false, nil
	case isa.OpMov:
		if len(in.Ops) != 2 {
			return false, fmt.Errorf("mov needs 2 operands")
		}
		c.tickASU(int64(c.cfg.ScalarOpLat))
		dst := in.Ops[1].Reg
		if in.Suffix == isa.SufD && dst.Class == isa.ClassS && in.Ops[0].Kind == isa.KindReg && in.Ops[0].Reg.Class == isa.ClassS {
			c.waitScalar(in.Ops[0].Reg)
			c.s[dst.N] = c.s[in.Ops[0].Reg.N]
			return false, nil
		}
		v, err := c.intVal(in.Ops[0])
		if err != nil {
			return false, err
		}
		return false, c.setIntReg(dst, v)
	case isa.OpLd:
		return false, c.scalarLoad(in)
	case isa.OpSt:
		return false, c.scalarStore(in)
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpNeg, isa.OpAnd, isa.OpOr, isa.OpShf:
		return false, c.scalarALU(in)
	case isa.OpLe, isa.OpLt, isa.OpGt, isa.OpGe, isa.OpEq, isa.OpNe:
		return false, c.scalarCompare(in)
	case isa.OpJmp:
		c.tickASU(int64(c.cfg.ScalarOpLat + c.cfg.BranchPenalty))
		// A control transfer ends the forming chime: the ASU cannot keep
		// filling a chime past a branch (the bound's per-iteration chime
		// partition relies on this).
		c.closeChime(false)
		return true, c.jumpTo(in)
	case isa.OpJbrs:
		c.tickASU(int64(c.cfg.ScalarOpLat))
		take := c.tf
		if in.Suffix == isa.SufF {
			take = !take
		}
		if !take {
			return false, nil
		}
		c.tickASU(int64(c.cfg.BranchPenalty))
		c.closeChime(false)
		return true, c.jumpTo(in)
	case isa.OpSum, isa.OpSqrt, isa.OpCvt:
		return false, fmt.Errorf("%s has no scalar form in this subset", in.Op)
	}
	return false, fmt.Errorf("unimplemented scalar op %s", in.Op)
}

func (c *CPU) jumpTo(in isa.Instr) error {
	for _, o := range in.Ops {
		if o.Kind == isa.KindLabel {
			idx, ok := c.prog.Labels[o.Label]
			if !ok {
				return fmt.Errorf("undefined label %q", o.Label)
			}
			c.pc = idx
			return nil
		}
	}
	return fmt.Errorf("branch without label")
}

// scalarMemStart delays a scalar access while vector memory traffic holds
// the single CPU port, and notifies the chime builder (split rule).
func (c *CPU) scalarMemStart() int64 {
	start := c.clock
	if c.vectorPortFree > start {
		start = c.vectorPortFree
		c.stats.PortConflicts++
		c.chargeStall(LaneASU, start, StallPortArb)
	}
	if c.builder.NoteScalarMem() {
		c.closeChime(true)
	}
	return start
}

func (c *CPU) scalarMemLat() int64 {
	lat := float64(c.cfg.ScalarLoadLat)
	if c.cfg.MemSlowdown > 1 {
		lat *= c.cfg.MemSlowdown
	}
	return int64(math.Ceil(lat))
}

func (c *CPU) scalarLoad(in isa.Instr) error {
	if len(in.Ops) != 2 {
		return fmt.Errorf("scalar load needs 2 operands")
	}
	addr, err := c.effAddr(in.Ops[0])
	if err != nil {
		return err
	}
	start := c.scalarMemStart()
	c.clock = start + c.scalarMemLat()
	c.chargeIssue(LaneASU, c.clock)
	c.scalarPortFree = c.clock
	dst := in.Ops[1].Reg
	switch dst.Class {
	case isa.ClassA:
		v, err := c.mem.ReadI64(addr)
		if err != nil {
			return err
		}
		c.a[dst.N] = v
	case isa.ClassS:
		v, err := c.mem.ReadF64(addr)
		if err != nil {
			return err
		}
		c.s[dst.N] = math.Float64bits(v)
		c.sReady[dst.N] = c.clock
	default:
		return fmt.Errorf("bad scalar load destination %s", dst)
	}
	return nil
}

func (c *CPU) scalarStore(in isa.Instr) error {
	if len(in.Ops) != 2 {
		return fmt.Errorf("scalar store needs 2 operands")
	}
	addr, err := c.effAddr(in.Ops[1])
	if err != nil {
		return err
	}
	start := c.scalarMemStart()
	c.clock = start + c.scalarMemLat()
	c.chargeIssue(LaneASU, c.clock)
	c.scalarPortFree = c.clock
	src := in.Ops[0].Reg
	switch src.Class {
	case isa.ClassA:
		return c.mem.WriteI64(addr, c.a[src.N])
	case isa.ClassS:
		c.waitScalar(src)
		return c.mem.WriteF64(addr, math.Float64frombits(c.s[src.N]))
	}
	return fmt.Errorf("bad scalar store source %s", src)
}

func (c *CPU) scalarALU(in isa.Instr) error {
	c.tickASU(int64(c.cfg.ScalarOpLat))
	// Two-operand form: dst = dst OP src (e.g. add.w #1024,a5).
	// Three-operand form: dst = src1 OP src2.
	var dst isa.Reg
	switch len(in.Ops) {
	case 2:
		dst = in.Ops[1].Reg
	case 3:
		dst = in.Ops[2].Reg
	default:
		return fmt.Errorf("ALU op needs 2 or 3 operands")
	}
	if in.Suffix == isa.SufD || in.Suffix == isa.SufS {
		var x, y float64
		var err error
		if len(in.Ops) == 2 {
			if in.Op == isa.OpNeg {
				x, err = c.floatVal(in.Ops[0])
				if err != nil {
					return err
				}
				c.stats.ScalarFlops++
				return c.setFloatReg(dst, -x)
			}
			y, err = c.floatVal(isa.RegOp(dst))
			if err != nil {
				return err
			}
			x, err = c.floatVal(in.Ops[0])
			if err != nil {
				return err
			}
			x, y = y, x // dst OP src
		} else {
			x, err = c.floatVal(in.Ops[0])
			if err != nil {
				return err
			}
			y, err = c.floatVal(in.Ops[1])
			if err != nil {
				return err
			}
		}
		r, err := floatALU(in.Op, x, y)
		if err != nil {
			return err
		}
		c.stats.ScalarFlops++
		return c.setFloatReg(dst, r)
	}
	// Integer (.w / .l) arithmetic.
	var x, y int64
	var err error
	if len(in.Ops) == 2 {
		if in.Op == isa.OpNeg {
			x, err = c.intVal(in.Ops[0])
			if err != nil {
				return err
			}
			return c.setIntReg(dst, -x)
		}
		x, err = c.intVal(isa.RegOp(dst))
		if err != nil {
			return err
		}
		y, err = c.intVal(in.Ops[0])
		if err != nil {
			return err
		}
	} else {
		x, err = c.intVal(in.Ops[0])
		if err != nil {
			return err
		}
		y, err = c.intVal(in.Ops[1])
		if err != nil {
			return err
		}
	}
	r, err := intALU(in.Op, x, y)
	if err != nil {
		return err
	}
	return c.setIntReg(dst, r)
}

func floatALU(op isa.Op, x, y float64) (float64, error) {
	switch op {
	case isa.OpAdd:
		return x + y, nil
	case isa.OpSub:
		return x - y, nil
	case isa.OpMul:
		return x * y, nil
	case isa.OpDiv:
		return x / y, nil
	}
	return 0, fmt.Errorf("no scalar float form for %s", op)
}

func intALU(op isa.Op, x, y int64) (int64, error) {
	switch op {
	case isa.OpAdd:
		return x + y, nil
	case isa.OpSub:
		return x - y, nil
	case isa.OpMul:
		return x * y, nil
	case isa.OpDiv:
		if y == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return x / y, nil
	case isa.OpAnd:
		return x & y, nil
	case isa.OpOr:
		return x | y, nil
	case isa.OpShf:
		if y >= 0 {
			return x << uint(y&63), nil
		}
		return x >> uint((-y)&63), nil
	}
	return 0, fmt.Errorf("no integer form for %s", op)
}

func (c *CPU) scalarCompare(in isa.Instr) error {
	if len(in.Ops) != 2 {
		return fmt.Errorf("compare needs 2 operands")
	}
	c.tickASU(int64(c.cfg.ScalarOpLat))
	var cmp int
	if in.Suffix == isa.SufD || in.Suffix == isa.SufS {
		x, err := c.floatVal(in.Ops[0])
		if err != nil {
			return err
		}
		y, err := c.floatVal(in.Ops[1])
		if err != nil {
			return err
		}
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		}
	} else {
		x, err := c.intVal(in.Ops[0])
		if err != nil {
			return err
		}
		y, err := c.intVal(in.Ops[1])
		if err != nil {
			return err
		}
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		}
	}
	switch in.Op {
	case isa.OpLe:
		c.tf = cmp <= 0
	case isa.OpLt:
		c.tf = cmp < 0
	case isa.OpGt:
		c.tf = cmp > 0
	case isa.OpGe:
		c.tf = cmp >= 0
	case isa.OpEq:
		c.tf = cmp == 0
	case isa.OpNe:
		c.tf = cmp != 0
	}
	return nil
}

func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxI64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
