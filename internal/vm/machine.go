package vm

import (
	"crypto/sha256"
	"fmt"

	"macs/internal/core"
	"macs/internal/isa"
	"macs/internal/mem"
)

// Machine is the description of one hypothetical machine: everything
// about the hardware the timing model depends on, and nothing about how
// a particular run is driven (memory image size, instruction budgets,
// tracing — those stay in Config). Splitting the two is what makes
// design-space exploration cheap: a sweep varies Machines while sharing
// one compiled program and one run configuration, and every per-machine
// cache (the prediction memo, the stream-stall table, the persistent
// result cache) keys off Fingerprint.
//
// The zero value is not a useful machine; use DefaultMachine and adjust.
// Machine is comparable, so it can key maps directly when a hash is not
// needed.
type Machine struct {
	// VLMax is the hardware vector length (128 on the C-240).
	VLMax int
	// Rules are the chime formation rules shared with the MACS bound:
	// chaining, the register pair rule, the memory-port split rule,
	// tailgating bubbles.
	Rules core.Rules
	// Memory geometry: interleaved bank count, bank busy time per access,
	// and the refresh schedule (cycles between refreshes, cycles each one
	// lasts). Zero fields fall back to the C-240 values (32 banks, 8-cycle
	// bank busy, refresh every 400 cycles for 8), so configurations from
	// before the machine split keep their meaning.
	Banks         int
	BankCycle     int
	RefreshPeriod int
	RefreshLen    int
	// BankConflicts enables bank-busy stalls for non-unit strides.
	BankConflicts bool
	// RefreshStalls enables real refresh stalls in vector memory streams.
	RefreshStalls bool
	// MemSlowdown multiplies the per-element cost of vector memory
	// streams and scalar memory latency; >1 models multi-process memory
	// contention (paper §4.2). 1.0 means an otherwise idle machine.
	MemSlowdown float64
	// Scalar timing: ASU latencies in cycles.
	ScalarLoadLat int // scalar load/store
	ScalarOpLat   int // scalar ALU op, move, compare
	BranchPenalty int // extra cycles for a taken branch
	DispatchLat   int // ASU cycles to dispatch a vector instruction
}

// DefaultMachine returns the paper's Convex C-240.
func DefaultMachine() Machine {
	return Machine{
		VLMax:         isa.VLMax,
		Rules:         core.DefaultRules(),
		Banks:         isa.MemBanks,
		BankCycle:     isa.BankCycle,
		RefreshPeriod: isa.RefreshPeriod,
		RefreshLen:    isa.RefreshLen,
		BankConflicts: true,
		RefreshStalls: true,
		MemSlowdown:   1.0,
		ScalarLoadLat: 4,
		ScalarOpLat:   1,
		BranchPenalty: 2,
		DispatchLat:   1,
	}
}

// BankConfig renders the machine's memory geometry as the bank model's
// configuration. Zero geometry fields take the C-240 defaults — a Machine
// that only sets the knobs that existed before the split (or a sparse
// sweep point) still describes a well-formed memory system rather than a
// zero-bank one.
func (m Machine) BankConfig() mem.Config {
	c := mem.DefaultConfig()
	if m.Banks > 0 {
		c.Banks = m.Banks
	}
	if m.BankCycle > 0 {
		c.BankCycle = m.BankCycle
	}
	if m.RefreshPeriod > 0 {
		c.RefreshPeriod = m.RefreshPeriod
	}
	if m.RefreshLen > 0 {
		c.RefreshLen = m.RefreshLen
	}
	c.RefreshEnabled = m.RefreshStalls
	return c
}

// Fingerprint returns the canonical content hash of the machine
// description — the one keying scheme shared by the persistent result
// cache, the fast-tier prediction memo and the explore engine's
// per-machine state. Every Machine field is written to the hash by name,
// so two machines collide only when they are the same machine; the
// macsvet "fingerprint" rule statically verifies that no field can be
// added to Machine without being folded in here.
func (m Machine) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "vlmax=%d;", m.VLMax)
	fmt.Fprintf(h, "rules=%+v;", m.Rules)
	fmt.Fprintf(h, "banks=%d;", m.Banks)
	fmt.Fprintf(h, "bankcycle=%d;", m.BankCycle)
	fmt.Fprintf(h, "refreshperiod=%d;", m.RefreshPeriod)
	fmt.Fprintf(h, "refreshlen=%d;", m.RefreshLen)
	fmt.Fprintf(h, "bankconflicts=%t;", m.BankConflicts)
	fmt.Fprintf(h, "refreshstalls=%t;", m.RefreshStalls)
	fmt.Fprintf(h, "memslowdown=%g;", m.MemSlowdown)
	fmt.Fprintf(h, "scalarloadlat=%d;", m.ScalarLoadLat)
	fmt.Fprintf(h, "scalaroplat=%d;", m.ScalarOpLat)
	fmt.Fprintf(h, "branchpenalty=%d;", m.BranchPenalty)
	fmt.Fprintf(h, "dispatchlat=%d;", m.DispatchLat)
	return fmt.Sprintf("%x", h.Sum(nil))
}
