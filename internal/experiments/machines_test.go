package experiments

import "testing"

func TestMachineComparison(t *testing.T) {
	rows, err := RunMachineComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]MachineRow{}
	for _, r := range rows {
		if !r.Validated {
			t.Errorf("%s: functional validation failed", r.Name)
		}
		if r.AvgMeasuredCPF < r.AvgMACSCPF {
			t.Errorf("%s: measured %.3f below bound %.3f", r.Name, r.AvgMeasuredCPF, r.AvgMACSCPF)
		}
		byName[r.Name[:4]] = r
		t.Logf("%-40s bound %6.2f MFLOPS, measured %6.2f MFLOPS", r.Name, r.BoundMFLOPS, r.MFLOPS)
	}
	// The C-240's flexible chaining and VL=128 beat both Cray-like
	// configurations on this workload.
	c240 := byName["Conv"]
	for tag, r := range byName {
		if tag == "Conv" {
			continue
		}
		if r.MFLOPS >= c240.MFLOPS {
			t.Errorf("%s (%.2f MFLOPS) should trail the C-240 (%.2f)", r.Name, r.MFLOPS, c240.MFLOPS)
		}
	}
}
