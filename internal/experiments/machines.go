package experiments

import (
	"macs/internal/asm"
	"macs/internal/compiler"
	"macs/internal/core"
	"macs/internal/isa"
	"macs/internal/lfk"
	"macs/internal/vm"
)

// Machine is a named machine configuration — the paper's conclusion
// argues the MACS approach "can be generalized ... to assess a broad
// range of machines"; these presets demonstrate it on vector machines
// the paper compares the C-240 against (§3.3).
type Machine struct {
	Name     string
	VM       vm.Config
	Compiler compiler.Options
}

// Machines returns the comparison set:
//
//   - Convex C-240: the paper's machine (VL=128, flexible chaining).
//   - Cray-1-like: VL=64 and no chaining out of memory loads (the
//     Cray-1's rigid chain-slot limitation, §3.3: chaining on the C-240
//     "appears to be much more flexible than the Cray-1").
//   - Cray-2-like: no chaining at all (§3.3: "with the notable exception
//     of the Cray-2").
func Machines() []Machine {
	c240 := Machine{Name: "Convex C-240", VM: vm.DefaultConfig(), Compiler: compiler.DefaultOptions()}

	cray1 := Machine{Name: "Cray-1-like (VL=64, no memory chaining)", VM: vm.DefaultConfig(), Compiler: compiler.DefaultOptions()}
	cray1.VM.VLMax = 64
	cray1.VM.Rules.NoMemoryChaining = true
	cray1.Compiler.VL = 64

	cray2 := Machine{Name: "Cray-2-like (no chaining)", VM: vm.DefaultConfig(), Compiler: compiler.DefaultOptions()}
	cray2.VM.Rules.Chaining = false

	return []Machine{c240, cray1, cray2}
}

// MachineRow summarizes one machine over the ten-kernel suite.
type MachineRow struct {
	Name string
	// AvgMACSCPF and AvgMeasuredCPF are suite averages in cycles/flop;
	// MFLOPS are the harmonic means at the 25 MHz clock.
	AvgMACSCPF, AvgMeasuredCPF float64
	BoundMFLOPS, MFLOPS        float64
	// Validated is false if any kernel's output failed validation.
	Validated bool
}

// RunMachineComparison runs the full suite on every machine preset.
func RunMachineComparison() ([]MachineRow, error) {
	var rows []MachineRow
	for _, m := range Machines() {
		row := MachineRow{Name: m.Name, Validated: true}
		var sumBound, sumMeasured float64
		for _, k := range lfk.All() {
			c, err := lfk.Compile(k, m.Compiler)
			if err != nil {
				return nil, err
			}
			st, cpu, err := c.Run(m.VM)
			if err != nil {
				return nil, err
			}
			if err := c.Validate(cpu); err != nil {
				row.Validated = false
			}
			loop, _ := innerLoopOf(c)
			bound := core.MACSBound(loop, m.VM.VLMax, m.VM.Rules)
			f := float64(k.FlopsPerIteration())
			sumBound += bound.CPL / f
			sumMeasured += k.CPF(st.Cycles)
		}
		n := float64(len(lfk.All()))
		row.AvgMACSCPF = sumBound / n
		row.AvgMeasuredCPF = sumMeasured / n
		row.BoundMFLOPS = core.HarmonicMeanMFLOPS([]float64{row.AvgMACSCPF})
		row.MFLOPS = core.HarmonicMeanMFLOPS([]float64{row.AvgMeasuredCPF})
		rows = append(rows, row)
	}
	return rows, nil
}

// innerLoopOf extracts a compiled kernel's vector inner loop body.
func innerLoopOf(c *lfk.Compiled) ([]isa.Instr, bool) {
	loop, ok := asm.InnerVectorLoop(c.Program)
	if !ok {
		return nil, false
	}
	return loop.Body, true
}
