package experiments

import (
	"reflect"
	"testing"

	"macs/internal/calib"
)

// TestRunAllParallelMatchesSequential is the sweep-runner gate: fanning
// the kernels out over goroutines must reproduce the sequential results
// exactly — same order, same Stats, same attribution ledgers.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel sweep")
	}
	seq := Default()
	parCfg := Default()
	parCfg.Parallel = 4

	want, err := RunAll(seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAll(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel RunAll returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		// Kernel carries a func-valued Reference field, which DeepEqual
		// can never match across two lfk.All() calls — compare its ID and
		// every measured field instead.
		if got[i].Kernel.ID != want[i].Kernel.ID {
			t.Fatalf("result %d: kernel %d, want %d", i, got[i].Kernel.ID, want[i].Kernel.ID)
		}
		g, w := got[i], want[i]
		g.Kernel, w.Kernel = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("lfk%d: parallel result diverges from sequential:\ngot  %+v\nwant %+v",
				want[i].Kernel.ID, g, w)
		}
	}
}

func TestTablesParallelMatchSequential(t *testing.T) {
	seq := Default()
	parCfg := Default()
	parCfg.Parallel = 4

	t2s, err := Table2(seq)
	if err != nil {
		t.Fatal(err)
	}
	t2p, err := Table2(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t2p, t2s) {
		t.Fatal("parallel Table2 diverges from sequential")
	}

	t3s, err := Table3(seq)
	if err != nil {
		t.Fatal(err)
	}
	t3p, err := Table3(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t3p, t3s) {
		t.Fatal("parallel Table3 diverges from sequential")
	}
}

func TestCalibrateAllNMatchesSequential(t *testing.T) {
	cfg := Default()
	want, err := calib.CalibrateAll(cfg.VM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := calib.CalibrateAllN(cfg.VM, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel calibration diverges from sequential")
	}
}
