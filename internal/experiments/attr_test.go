package experiments

import (
	"testing"

	"macs/internal/lfk"
	"macs/internal/vm"
)

// TestAttributionConservedAllKernels is the acceptance check for the
// stall-attribution ledger: on every kernel of the ten-LFK case study,
// each lane's issue plus attributed stall cycles must exactly equal the
// run's total cycle count.
func TestAttributionConservedAllKernels(t *testing.T) {
	cfg := Default()
	for _, k := range lfk.All() {
		r, err := RunKernel(k, cfg)
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		if r.Stats.Cycles != r.Cycles {
			t.Errorf("lfk%d: Stats.Cycles %d != Cycles %d", k.ID, r.Stats.Cycles, r.Cycles)
		}
		if err := r.Stats.Attr.Conserved(r.Stats.Cycles); err != nil {
			t.Errorf("lfk%d: %v", k.ID, err)
		}
		if r.Stats.Attr.Empty() {
			t.Errorf("lfk%d: empty attribution ledger", k.ID)
		}
		// Vector kernels must book pipe issue cycles; refresh is on in the
		// default config, so long runs attribute refresh stall somewhere.
		if r.Stats.Attr.IssueCycles() == 0 {
			t.Errorf("lfk%d: no issue cycles attributed", k.ID)
		}
	}
}

// TestAttributionRefreshShare checks the refresh duty cycle surfaces in
// the ledger: the C-240 refreshes 8 of every 400 cycles (2%), so on a
// long memory-heavy kernel the attributed refresh share of memory-pipe
// time lands near that, and vanishes with refresh disabled.
func TestAttributionRefreshShare(t *testing.T) {
	k, err := lfk.ByID(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	r, err := RunKernel(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refresh := r.Stats.Attr.Cause(vm.StallRefresh)
	if refresh == 0 {
		t.Fatal("refresh enabled but no refresh cycles attributed")
	}
	// Share of the load/store pipe's cycles (the lane that eats refresh).
	share := float64(r.Stats.Attr.Lanes[1].Stalls[vm.StallRefresh]) / float64(r.Stats.Cycles)
	if share < 0.005 || share > 0.04 {
		t.Errorf("load/store refresh share = %.4f, want ~0.02 (2%% duty cycle)", share)
	}
	cfg.VM.RefreshStalls = false
	r2, err := RunKernel(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats.Attr.Cause(vm.StallRefresh); got != 0 {
		t.Errorf("refresh disabled but %d refresh cycles attributed", got)
	}
	if r2.Stats.Cycles >= r.Stats.Cycles {
		t.Errorf("disabling refresh should not slow the run: %d vs %d", r2.Stats.Cycles, r.Stats.Cycles)
	}
}
